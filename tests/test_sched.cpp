#include <gtest/gtest.h>

#include "sched/calendar.hpp"
#include "sched/edf_queue.hpp"
#include "sched/id_codec.hpp"
#include "sched/priority_map.hpp"
#include "sched/wctt.hpp"

namespace rtec {
namespace {

using literals::operator""_ns;
using literals::operator""_us;
using literals::operator""_ms;

// ------------------------------------------------------------------ id codec

TEST(IdCodec, RoundTrip) {
  for (const CanIdFields f : {CanIdFields{0, 0, 0}, CanIdFields{255, 127, 16383},
                              CanIdFields{7, 42, 1234}}) {
    EXPECT_EQ(decode_can_id(encode_can_id(f)), f);
  }
}

TEST(IdCodec, PriorityOccupiesTopBits) {
  // A lower priority value must always produce a lower (= more dominant)
  // identifier, regardless of TxNode and etag.
  const std::uint32_t hi = encode_can_id({5, 127, kMaxEtag});
  const std::uint32_t lo = encode_can_id({6, 0, 0});
  EXPECT_LT(hi, lo);
}

TEST(IdCodec, TxNodeBreaksTiesWithinPriority) {
  const std::uint32_t a = encode_can_id({10, 3, kMaxEtag});
  const std::uint32_t b = encode_can_id({10, 4, 0});
  EXPECT_LT(a, b);
}

TEST(IdCodec, FitsIn29Bits) {
  EXPECT_LE(encode_can_id({255, 127, kMaxEtag}), kMaxExtendedId);
}

TEST(IdCodec, ClassRanges) {
  EXPECT_EQ(classify_priority(0), TrafficClass::kHrt);
  EXPECT_EQ(classify_priority(1), TrafficClass::kSrt);
  EXPECT_EQ(classify_priority(250), TrafficClass::kSrt);
  EXPECT_EQ(classify_priority(251), TrafficClass::kNrt);
  EXPECT_EQ(classify_priority(255), TrafficClass::kNrt);
}

TEST(IdCodec, PriorityRelationHrtSrtNrt) {
  // 0 <= P_HRT < P_SRT < P_NRT (§3.3): any HRT id beats any SRT id beats
  // any NRT id on the bus.
  const std::uint32_t hrt = encode_can_id({kHrtPriority, 127, kMaxEtag});
  const std::uint32_t srt = encode_can_id({kSrtPriorityMin, 0, 0});
  const std::uint32_t nrt = encode_can_id({kNrtPriorityMin, 0, 0});
  EXPECT_LT(hrt, srt);
  EXPECT_LT(encode_can_id({kSrtPriorityMax, 127, kMaxEtag}), nrt);
}

// ---------------------------------------------------------------------- wctt

TEST(Wctt, FaultFreeEqualsWorstCaseFrame) {
  const BusConfig bus{1'000'000};
  EXPECT_EQ(hrt_wctt(8, {0}, bus).ns(),
            worst_case_frame_duration(8, true, bus).ns());
}

TEST(Wctt, EachOmissionAddsFailedAttempt) {
  const BusConfig bus{1'000'000};
  const Duration base = hrt_wctt(4, {0}, bus);
  const Duration one = hrt_wctt(4, {1}, bus);
  const Duration two = hrt_wctt(4, {2}, bus);
  const Duration failed_attempt = one - base;
  EXPECT_EQ((two - one).ns(), failed_attempt.ns());
  // A failed attempt costs at most a full frame + error frame + intermission.
  EXPECT_EQ(failed_attempt.ns(),
            (worst_case_wire_bits(4, true) + kErrorFrameBits + kIntermissionBits) *
                1000);
}

TEST(Wctt, BlockingTimeIsLongestFramePlusIntermission) {
  const BusConfig bus{1'000'000};
  EXPECT_EQ(max_blocking_time(bus).ns(),
            (worst_case_wire_bits(8, true) + kIntermissionBits) * 1000);
}

TEST(Wctt, SlotWindowComposition) {
  const BusConfig bus{1'000'000};
  EXPECT_EQ(hrt_slot_window(8, {2}, bus).ns(),
            (max_blocking_time(bus) + hrt_wctt(8, {2}, bus)).ns());
}

// ------------------------------------------------------------------ calendar

Calendar::Config cal_cfg(Duration round = 10_ms, Duration gap = 40_us) {
  Calendar::Config cfg;
  cfg.round_length = round;
  cfg.gap = gap;
  cfg.bus = BusConfig{1'000'000};
  return cfg;
}

SlotSpec slot_at(Duration lst, Etag etag = 10, NodeId pub = 1, int dlc = 8,
                 int k = 0) {
  SlotSpec s;
  s.lst_offset = lst;
  s.dlc = dlc;
  s.fault.omission_degree = k;
  s.etag = etag;
  s.publisher = pub;
  return s;
}

TEST(Calendar, AcceptsDisjointSlots) {
  Calendar cal{cal_cfg()};
  EXPECT_TRUE(cal.reserve(slot_at(500_us, 10)).has_value());
  EXPECT_TRUE(cal.reserve(slot_at(2_ms, 11)).has_value());
  EXPECT_TRUE(cal.reserve(slot_at(5_ms, 12)).has_value());
  EXPECT_EQ(cal.size(), 3u);
}

TEST(Calendar, RejectsOverlap) {
  Calendar cal{cal_cfg()};
  ASSERT_TRUE(cal.reserve(slot_at(1_ms, 10)).has_value());
  const auto r = cal.reserve(slot_at(1_ms + 100_us, 11));
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error(), AdmissionError::kOverlap);
}

TEST(Calendar, RejectsIdenticalWindows) {
  Calendar cal{cal_cfg()};
  ASSERT_TRUE(cal.reserve(slot_at(1_ms, 10)).has_value());
  EXPECT_FALSE(cal.reserve(slot_at(1_ms, 11)).has_value());
}

TEST(Calendar, RejectsContainedWindow) {
  Calendar cal{cal_cfg()};
  // Big window (k=3) containing a small one.
  ASSERT_TRUE(cal.reserve(slot_at(2_ms, 10, 1, 8, 3)).has_value());
  EXPECT_FALSE(cal.reserve(slot_at(2_ms + 200_us, 11, 2, 0, 0)).has_value());
}

TEST(Calendar, EnforcesMinimumGap) {
  Calendar cal{cal_cfg(10_ms, 40_us)};
  ASSERT_TRUE(cal.reserve(slot_at(1_ms, 10)).has_value());
  const SlotTiming t0 = cal.timing(0);
  // A slot whose ready time is only 10 us after slot 0's deadline: rejected.
  const Duration lst_bad = t0.deadline_offset + 10_us + cal.t_wait();
  EXPECT_FALSE(cal.reserve(slot_at(lst_bad, 11)).has_value());
  // With a 50 us gap it fits.
  const Duration lst_ok = t0.deadline_offset + 50_us + cal.t_wait();
  EXPECT_TRUE(cal.reserve(slot_at(lst_ok, 11)).has_value());
}

TEST(Calendar, RejectsWindowOutsideRound) {
  Calendar cal{cal_cfg()};
  // LST too early: ready = LST - t_wait < 0.
  const auto early = cal.reserve(slot_at(50_us, 10));
  ASSERT_FALSE(early.has_value());
  EXPECT_EQ(early.error(), AdmissionError::kWindowOutsideRound);
  // Deadline beyond the round.
  const auto late = cal.reserve(slot_at(10_ms - 50_us, 11));
  ASSERT_FALSE(late.has_value());
  EXPECT_EQ(late.error(), AdmissionError::kWindowOutsideRound);
}

TEST(Calendar, RejectsBadSpecs) {
  Calendar cal{cal_cfg()};
  SlotSpec s = slot_at(1_ms);
  s.dlc = 9;
  EXPECT_EQ(cal.reserve(s).error(), AdmissionError::kBadSpec);
  s = slot_at(1_ms);
  s.fault.omission_degree = -1;
  EXPECT_EQ(cal.reserve(s).error(), AdmissionError::kBadSpec);
}

TEST(Calendar, TimingDerivation) {
  Calendar cal{cal_cfg()};
  ASSERT_TRUE(cal.reserve(slot_at(1_ms, 10, 1, 8, 2)).has_value());
  const SlotTiming t = cal.timing(0);
  EXPECT_EQ(t.lst_offset.ns(), (1_ms).ns());
  EXPECT_EQ((t.lst_offset - t.ready_offset).ns(), cal.t_wait().ns());
  EXPECT_EQ((t.deadline_offset - t.lst_offset).ns(),
            hrt_wctt(8, {2}, cal.config().bus).ns());
}

TEST(Calendar, InstanceIteration) {
  Calendar cal{cal_cfg(10_ms)};
  ASSERT_TRUE(cal.reserve(slot_at(1_ms, 10)).has_value());
  const auto first = cal.instance_at_or_after(0, TimePoint::origin());
  EXPECT_EQ(first.round, 0u);
  EXPECT_EQ(first.lst.ns(), (1_ms).ns());
  // Just after the first ready time, the next instance is one round later.
  const auto second = cal.instance_at_or_after(0, first.ready + 1_ns);
  EXPECT_EQ(second.round, 1u);
  EXPECT_EQ(second.lst.ns(), (11_ms).ns());
  // Far in the future.
  const auto far = cal.instance_at_or_after(
      0, TimePoint::origin() + Duration::seconds(1));
  EXPECT_EQ(far.round, 100u);
}

TEST(Calendar, SubRateSlotInstances) {
  Calendar cal{cal_cfg(10_ms)};
  SlotSpec s = slot_at(1_ms, 10);
  s.period_rounds = 3;
  s.phase_round = 1;
  ASSERT_TRUE(cal.reserve(s).has_value());
  // First instance in round 1, then rounds 4, 7, ...
  const auto first = cal.instance_at_or_after(0, TimePoint::origin());
  EXPECT_EQ(first.round, 1u);
  EXPECT_EQ(first.lst.ns(), (11_ms).ns());
  const auto second = cal.instance_at_or_after(0, first.ready + 1_ns);
  EXPECT_EQ(second.round, 4u);
  EXPECT_EQ(second.lst.ns(), (41_ms).ns());
  // Querying from far ahead lands on the right phase.
  const auto far = cal.instance_at_or_after(
      0, TimePoint::origin() + Duration::milliseconds(95));
  EXPECT_EQ(far.round, 10u);
}

TEST(Calendar, SubRateSpecValidation) {
  Calendar cal{cal_cfg()};
  SlotSpec s = slot_at(1_ms, 10);
  s.period_rounds = 0;
  EXPECT_EQ(cal.reserve(s).error(), AdmissionError::kBadSpec);
  s.period_rounds = 2;
  s.phase_round = 2;  // phase must be < period
  EXPECT_EQ(cal.reserve(s).error(), AdmissionError::kBadSpec);
  s.phase_round = 1;
  EXPECT_TRUE(cal.reserve(s).has_value());
}

TEST(Calendar, ReservedFractionAccounting) {
  Calendar cal{cal_cfg(10_ms, 40_us)};
  ASSERT_TRUE(cal.reserve(slot_at(1_ms, 10)).has_value());
  const SlotTiming t = cal.timing(0);
  const double expect =
      static_cast<double>((t.deadline_offset - t.ready_offset + 40_us).ns()) /
      1e7;
  EXPECT_NEAR(cal.reserved_fraction(), expect, 1e-12);
}

// ---------------------------------------------------------------- edf queue

TEST(EdfQueue, PopsInDeadlineOrder) {
  EdfQueue<int> q;
  (void)q.push(TimePoint::origin() + 3_ms, 3);
  (void)q.push(TimePoint::origin() + 1_ms, 1);
  (void)q.push(TimePoint::origin() + 2_ms, 2);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(EdfQueue, FifoAmongEqualDeadlines) {
  EdfQueue<int> q;
  const TimePoint d = TimePoint::origin() + 1_ms;
  (void)q.push(d, 10);
  (void)q.push(d, 20);
  (void)q.push(d, 30);
  EXPECT_EQ(q.pop(), 10);
  EXPECT_EQ(q.pop(), 20);
  EXPECT_EQ(q.pop(), 30);
}

TEST(EdfQueue, RemoveByHandle) {
  EdfQueue<int> q;
  const auto h1 = q.push(TimePoint::origin() + 1_ms, 1);
  (void)q.push(TimePoint::origin() + 2_ms, 2);
  EXPECT_TRUE(q.contains(h1));
  EXPECT_EQ(q.remove(h1), 1);
  EXPECT_FALSE(q.contains(h1));
  EXPECT_EQ(q.remove(h1), std::nullopt);  // already gone
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.pop(), 2);
}

TEST(EdfQueue, PeekDoesNotRemove) {
  EdfQueue<int> q;
  (void)q.push(TimePoint::origin() + 5_ms, 42);
  ASSERT_NE(q.peek(), nullptr);
  EXPECT_EQ(*q.peek(), 42);
  EXPECT_EQ(q.earliest_deadline().ns(), (5_ms).ns());
  EXPECT_EQ(q.size(), 1u);
}

// -------------------------------------------------------------- priority map

DeadlinePriorityMap map_with(Duration slot, Priority pmin = 1,
                             Priority pmax = 250) {
  DeadlinePriorityMap::Config cfg;
  cfg.p_min = pmin;
  cfg.p_max = pmax;
  cfg.slot_length = slot;
  return DeadlinePriorityMap{cfg};
}

TEST(PriorityMap, CloserDeadlineHigherPriority) {
  const auto map = map_with(100_us);
  const TimePoint now = TimePoint::origin();
  const Priority near = map.priority_for(now, now + 150_us);
  const Priority far = map.priority_for(now, now + 950_us);
  EXPECT_LT(near, far);
}

TEST(PriorityMap, BandBoundaries) {
  const auto map = map_with(100_us);
  const TimePoint now = TimePoint::origin();
  // laxity in (0, 100us] -> band p_min.
  EXPECT_EQ(map.priority_for(now, now + 1_ns), 1);
  EXPECT_EQ(map.priority_for(now, now + 100_us), 1);
  // laxity just over one slot -> next band.
  EXPECT_EQ(map.priority_for(now, now + 100_us + 1_ns), 2);
  EXPECT_EQ(map.priority_for(now, now + 200_us), 2);
}

TEST(PriorityMap, OverdueMapsToMostUrgent) {
  const auto map = map_with(100_us);
  const TimePoint now = TimePoint::origin() + 10_ms;
  EXPECT_EQ(map.priority_for(now, now - 5_ms), 1);
  EXPECT_EQ(map.priority_for(now, now), 1);
}

TEST(PriorityMap, HorizonSaturation) {
  const auto map = map_with(100_us, 1, 10);
  const TimePoint now = TimePoint::origin();
  EXPECT_EQ(map.horizon().ns(), (1_ms).ns());  // 10 bands * 100 us
  // Beyond the horizon everything collapses to p_max — the incorrect-order
  // hazard the paper discusses.
  EXPECT_EQ(map.priority_for(now, now + 2_ms), 10);
  EXPECT_EQ(map.priority_for(now, now + 100_ms), 10);
}

TEST(PriorityMap, PromotionInstantsWalkTheBoundaries) {
  const auto map = map_with(100_us);
  const TimePoint now = TimePoint::origin();
  const TimePoint deadline = now + 350_us;  // band 4 (laxity in (300,400])
  EXPECT_EQ(map.priority_for(now, deadline), 4);
  const TimePoint p1 = map.next_promotion(now, deadline);
  EXPECT_EQ(p1.ns(), (deadline - 300_us).ns());
  EXPECT_EQ(map.priority_for(p1, deadline), 3);
  const TimePoint p2 = map.next_promotion(p1, deadline);
  EXPECT_EQ(p2.ns(), (deadline - 200_us).ns());
  const TimePoint p3 = map.next_promotion(p2, deadline);
  EXPECT_EQ(p3.ns(), (deadline - 100_us).ns());
  EXPECT_EQ(map.priority_for(p3, deadline), 1);
  EXPECT_EQ(map.next_promotion(p3, deadline).ns(), TimePoint::max().ns());
}

TEST(PriorityMap, MonotoneNonDecreasingUrgencyOverTime) {
  const auto map = map_with(130_us);
  const TimePoint deadline = TimePoint::origin() + 7'777_us;
  Priority prev = 255;
  for (std::int64_t t = 0; t <= 8'000; t += 37) {
    const TimePoint now = TimePoint::origin() + Duration::microseconds(t);
    const Priority p = map.priority_for(now, deadline);
    if (now <= deadline || true) {
      // Priority value must never increase as time advances.
      EXPECT_LE(p, prev) << "at t=" << t;
      prev = p;
    }
  }
  EXPECT_EQ(prev, 1);  // ends at the most urgent band
}

}  // namespace
}  // namespace rtec
