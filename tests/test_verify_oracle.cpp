#include <gtest/gtest.h>

#include <string>

#include "analysis/oracle.hpp"
#include "analysis/topology.hpp"
#include "analysis/verify.hpp"

// Differential-oracle tests: the static verifier's composed end-to-end
// bounds are checked against the sharded simulator on the same chain-4
// and star-3 shapes the engine's bit-identity tests pin down. Clean
// topologies must produce zero RTEC-T011 findings across every seed
// (bounds hold, admissions justified); a rejected topology must be
// *observably* bad in simulation (the rejection is not conservatism).

namespace rtec::analysis {
namespace {

using namespace rtec::literals;

TopologyInput input_of(const std::string& text) {
  const auto spec = parse_topology_spec(text);
  EXPECT_TRUE(spec.has_value()) << (spec ? "" : spec.error().message);
  TopologyInput input;
  if (spec) input.spec = *spec;
  return input;
}

/// Four segments in a chain, every link bridging the end-to-end subject;
/// a second route only spans the middle link; local chatter on two
/// segments. All budgets comfortable — the verifier accepts.
constexpr const char* kChain4 = R"(topology v1
segment id=0
segment id=1
segment id=2
segment id=3
link id=0 a=0 b=1 latency_us=250
link id=1 a=1 b=2 latency_us=250
link id=2 a=2 b=3 latency_us=250
bridge link=0 etag=40
bridge link=1 etag=40
bridge link=2 etag=40
bridge link=1 etag=41
route etag=40 from=0 to=3 period_us=7000 hop_deadline_us=10000 e2e_deadline_us=80000
route etag=41 from=1 to=2 period_us=9000 hop_deadline_us=10000 e2e_deadline_us=30000
stream segment=0 class=srt node=3 etag=20 dlc=8 period_us=5000
stream segment=2 class=srt node=5 etag=21 dlc=8 period_us=4000
)";

/// Hub-and-spoke: segment 0 is the hub, the spoke-to-spoke route crosses
/// both links through the hub.
constexpr const char* kStar3 = R"(topology v1
segment id=0
segment id=1
segment id=2
link id=0 a=0 b=1 latency_us=250
link id=1 a=0 b=2 latency_us=250
bridge link=0 etag=40
bridge link=1 etag=40
route etag=40 from=1 to=2 period_us=7000 hop_deadline_us=10000 e2e_deadline_us=60000
stream segment=0 class=srt node=3 etag=20 dlc=8 period_us=5000
)";

void expect_clean_oracle(const char* topo, const char* what) {
  OracleOptions options;
  options.seeds = {1, 2, 3};
  options.sim_time = 100_ms;
  const TopologyInput input = input_of(topo);

  // Precondition: the verifier itself accepts the topology.
  ASSERT_FALSE(verify_topology(input).has_errors()) << what;

  const OracleResult result = run_differential_oracle(input, options);
  ASSERT_TRUE(result.ran) << what << ": " << result.skip_reason;
  EXPECT_TRUE(result.report.findings.empty()) << what;
  ASSERT_EQ(result.observations.size(),
            input.spec.routes.size() * options.seeds.size())
      << what;
  for (const RouteObservation& ob : result.observations) {
    EXPECT_TRUE(ob.statically_admitted) << what;
    EXPECT_GT(ob.delivered, 0u)
        << what << ": route " << ob.route << " seed " << ob.seed;
    EXPECT_GT(ob.max_latency, Duration::zero()) << what;
    EXPECT_LE(ob.max_latency, ob.bound)
        << what << ": route " << ob.route << " seed " << ob.seed;
    EXPECT_LE(ob.max_latency,
              input.spec.routes[ob.route].e2e_deadline)
        << what;
  }
}

TEST(VerifyOracle, ChainOfFourSegmentsAgreesAcrossSeeds) {
  expect_clean_oracle(kChain4, "chain4");
}

TEST(VerifyOracle, StarOfThreeSegmentsAgreesAcrossSeeds) {
  expect_clean_oracle(kStar3, "star3");
}

TEST(VerifyOracle, RejectedDeadlineIsObservablyMissedInSimulation) {
  // e2e deadline 300 µs over a 250 µs gateway plus two frame times: the
  // verifier rejects (RTEC-T009) and the simulation confirms the miss on
  // every seed — no verifier-rejected deadline runs cleanly.
  const TopologyInput input = input_of(R"(topology v1
segment id=0
segment id=1
link id=0 a=0 b=1 latency_us=250
bridge link=0 etag=40
route etag=40 from=0 to=1 period_us=7000 hop_deadline_us=1000 e2e_deadline_us=300
)");
  const LintReport static_report = verify_topology(input);
  bool rejected = false;
  for (const Finding& f : static_report.findings)
    if (f.rule == Rule::kE2eDeadline) rejected = true;
  ASSERT_TRUE(rejected);

  OracleOptions options;
  options.seeds = {1, 2, 3};
  options.sim_time = 100_ms;
  const OracleResult result = run_differential_oracle(input, options);
  ASSERT_TRUE(result.ran) << result.skip_reason;
  for (const RouteObservation& ob : result.observations) {
    EXPECT_FALSE(ob.statically_admitted);
    ASSERT_GT(ob.delivered, 0u);
    EXPECT_GT(ob.max_latency, input.spec.routes[0].e2e_deadline)
        << "seed " << ob.seed;
    // Within the (rejecting) verifier's bound nonetheless: the bound
    // derivation itself stays sound.
    EXPECT_LE(ob.max_latency, ob.bound) << "seed " << ob.seed;
  }
  EXPECT_TRUE(result.report.findings.empty());
}

TEST(VerifyOracle, OverloadedSegmentContradictsItsHopBound) {
  // 8-byte frames every 120 µs cannot fit a 1 Mbit/s bus: the verifier
  // rejects on bandwidth (RTEC-T007) and the oracle's observed latencies
  // blow through the hop-deadline-composed bound as the backlog grows —
  // the two rejections corroborate each other (RTEC-T011 records that the
  // bound, taken alone, was refuted).
  const TopologyInput input = input_of(R"(topology v1
segment id=0
segment id=1
link id=0 a=0 b=1 latency_us=250
bridge link=0 etag=40
route etag=40 from=0 to=1 period_us=120 hop_deadline_us=500 e2e_deadline_us=50000
)");
  const LintReport static_report = verify_topology(input);
  bool overloaded = false;
  for (const Finding& f : static_report.findings)
    if (f.rule == Rule::kSegmentOverload &&
        f.severity == Severity::kError)
      overloaded = true;
  ASSERT_TRUE(overloaded);

  OracleOptions options;
  options.seeds = {1};
  options.sim_time = 100_ms;
  const OracleResult result = run_differential_oracle(input, options);
  ASSERT_TRUE(result.ran) << result.skip_reason;
  bool bound_refuted = false;
  for (const Finding& f : result.report.findings)
    if (f.rule == Rule::kOracleDisagreement) bound_refuted = true;
  EXPECT_TRUE(bound_refuted);
}

TEST(VerifyOracle, SkipsWhatItCannotSimulate) {
  // Structural errors: nothing sound to build.
  const OracleResult broken = run_differential_oracle(input_of(R"(topology v1
segment id=0
link id=0 a=0 b=7 latency_us=250
route etag=40 from=0 to=7 period_us=1000 hop_deadline_us=1000 e2e_deadline_us=9000
)"));
  EXPECT_FALSE(broken.ran);
  EXPECT_FALSE(broken.skip_reason.empty());

  // Zero forward latency: the handoff channel cannot exist.
  const OracleResult stalled = run_differential_oracle(input_of(R"(topology v1
segment id=0
segment id=1
link id=0 a=0 b=1 latency_us=0
bridge link=0 etag=40
route etag=40 from=0 to=1 period_us=1000 hop_deadline_us=1000 e2e_deadline_us=9000
)"));
  EXPECT_FALSE(stalled.ran);
  EXPECT_NE(stalled.skip_reason.find("latency"), std::string::npos);

  // Calendar images attached: the oracle replays the SRT layer only.
  TopologyInput with_calendar = input_of(R"(topology v1
segment id=0
segment id=1
link id=0 a=0 b=1 latency_us=250
bridge link=0 etag=40
route etag=40 from=0 to=1 period_us=7000 hop_deadline_us=1000 e2e_deadline_us=9000
)");
  with_calendar.calendars.emplace(0, CalendarImage{});
  const OracleResult hrt = run_differential_oracle(with_calendar);
  EXPECT_FALSE(hrt.ran);
  EXPECT_NE(hrt.skip_reason.find("calendar"), std::string::npos);
}

}  // namespace
}  // namespace rtec::analysis
