#include <gtest/gtest.h>

#include "core/gateway.hpp"
#include "core/hrtec.hpp"
#include "core/scenario.hpp"

namespace rtec {
namespace {

using literals::operator""_ns;
using literals::operator""_us;
using literals::operator""_ms;

Node::ClockParams perfect() {
  Node::ClockParams p;
  p.granularity = 1_ns;
  return p;
}

struct GatewayFixture : ::testing::Test {
  Scenario scn;
  Node* a1 = nullptr;  // publisher on network A
  Node* a2 = nullptr;  // subscriber on network A
  Node* b1 = nullptr;  // subscriber on network B
  Node* gw_a = nullptr;
  Node* gw_b = nullptr;
  std::unique_ptr<Gateway> gateway;

  GatewayFixture()
      : scn{[] {
          Scenario::Config cfg;
          cfg.networks = 2;
          return cfg;
        }()} {}

  static constexpr Duration kForwardLatency = Duration::microseconds(10);

  void SetUp() override {
    a1 = &scn.add_node(1, perfect(), /*network=*/0);
    a2 = &scn.add_node(2, perfect(), 0);
    b1 = &scn.add_node(11, perfect(), /*network=*/1);
    gw_a = &scn.add_node(20, perfect(), 0);
    gw_b = &scn.add_node(21, perfect(), 1);
    gateway = std::make_unique<Gateway>(
        *gw_a, *gw_b, scn.link_gateway(*gw_a, *gw_b, kForwardLatency));
  }
};

TEST_F(GatewayFixture, NetworksAreIsolatedWithoutBridge) {
  Srtec pub{a1->middleware()};
  Srtec sub_b{b1->middleware()};
  ASSERT_TRUE(pub.announce(subject_of("x/data"), {}, nullptr).has_value());
  int rx_b = 0;
  ASSERT_TRUE(
      sub_b.subscribe(subject_of("x/data"), {}, [&] { ++rx_b; }, nullptr)
          .has_value());
  Event e;
  e.content = {1};
  ASSERT_TRUE(pub.publish(std::move(e)).has_value());
  scn.run_for(5_ms);
  EXPECT_EQ(rx_b, 0);  // different bus; no physical path
}

TEST_F(GatewayFixture, SrtEventsForwardedAcrossNetworks) {
  ASSERT_TRUE(gateway->bridge_srt(subject_of("x/data"), 5_ms, 10_ms).has_value());

  Srtec pub{a1->middleware()};
  Srtec sub_b{b1->middleware()};
  ASSERT_TRUE(pub.announce(subject_of("x/data"), {}, nullptr).has_value());
  int rx_b = 0;
  std::vector<std::uint8_t> payload;
  ASSERT_TRUE(sub_b.subscribe(subject_of("x/data"), {},
                              [&] {
                                if (auto e = sub_b.getEvent()) {
                                  ++rx_b;
                                  payload = e->content;
                                }
                              },
                              nullptr)
                  .has_value());
  Event e;
  e.content = {0xAB, 0xCD};
  ASSERT_TRUE(pub.publish(std::move(e)).has_value());
  scn.run_for(5_ms);
  EXPECT_EQ(rx_b, 1);
  EXPECT_EQ(payload, (std::vector<std::uint8_t>{0xAB, 0xCD}));
  EXPECT_EQ(gateway->counters().forwarded_a_to_b, 1u);
  EXPECT_EQ(gateway->counters().forwarded_b_to_a, 0u);
}

TEST_F(GatewayFixture, BridgeIsBidirectional) {
  ASSERT_TRUE(gateway->bridge_srt(subject_of("x/data"), 5_ms, 10_ms).has_value());
  Srtec pub_b{b1->middleware()};
  Srtec sub_a{a2->middleware()};
  ASSERT_TRUE(pub_b.announce(subject_of("x/data"), {}, nullptr).has_value());
  int rx_a = 0;
  ASSERT_TRUE(sub_a.subscribe(subject_of("x/data"), {},
                              [&] {
                                ++rx_a;
                                (void)sub_a.getEvent();
                              },
                              nullptr)
                  .has_value());
  Event e;
  e.content = {7};
  ASSERT_TRUE(pub_b.publish(std::move(e)).has_value());
  scn.run_for(5_ms);
  EXPECT_EQ(rx_a, 1);
  EXPECT_EQ(gateway->counters().forwarded_b_to_a, 1u);
}

TEST_F(GatewayFixture, NoEchoLoop) {
  ASSERT_TRUE(gateway->bridge_srt(subject_of("x/data"), 5_ms, 10_ms).has_value());
  Srtec pub{a1->middleware()};
  ASSERT_TRUE(pub.announce(subject_of("x/data"), {}, nullptr).has_value());
  Event e;
  e.content = {1};
  ASSERT_TRUE(pub.publish(std::move(e)).has_value());
  scn.run_for(50_ms);  // plenty of time for any echo to circulate
  // Exactly one forward, nothing bounced back and forth.
  EXPECT_EQ(gateway->counters().forwarded_a_to_b, 1u);
  EXPECT_EQ(gateway->counters().forwarded_b_to_a, 0u);
}

TEST_F(GatewayFixture, LocalOnlySubscriberIgnoresForwardedEvents) {
  ASSERT_TRUE(gateway->bridge_srt(subject_of("x/data"), 5_ms, 10_ms).has_value());

  Srtec pub_a{a1->middleware()};
  ASSERT_TRUE(pub_a.announce(subject_of("x/data"), {}, nullptr).has_value());

  // On network B: one plain subscriber, one LocalOnly subscriber.
  Srtec plain{b1->middleware()};
  int plain_rx = 0;
  ASSERT_TRUE(plain.subscribe(subject_of("x/data"), {},
                              [&] {
                                ++plain_rx;
                                const auto e = plain.getEvent();
                                ASSERT_TRUE(e.has_value());
                                // Remote origin is tagged.
                                EXPECT_EQ(e->attributes.origin_network, 0xff);
                              },
                              nullptr)
                  .has_value());
  Node& b2 = scn.add_node(12, perfect(), 1);
  scn.register_gateway(21, 1);  // idempotent for the new node's benefit
  Srtec local_only{b2.middleware()};
  int local_rx = 0;
  ASSERT_TRUE(local_only.subscribe(subject_of("x/data"),
                                   AttributeList{attr::LocalOnly{}},
                                   [&] { ++local_rx; }, nullptr)
                  .has_value());

  Event e;
  e.content = {1};
  ASSERT_TRUE(pub_a.publish(std::move(e)).has_value());
  scn.run_for(5_ms);
  EXPECT_EQ(plain_rx, 1);
  EXPECT_EQ(local_rx, 0);  // filtered: event originated on network A
}

TEST_F(GatewayFixture, NrtBulkBridgedWithReassembly) {
  ASSERT_TRUE(gateway->bridge_nrt(subject_of("x/blob"), /*fragmented=*/true,
                                  kNrtPriorityMax)
                  .has_value());
  const AttributeList frag{attr::Fragmentation{true}};
  Nrtec pub{a1->middleware()};
  Nrtec sub{b1->middleware()};
  ASSERT_TRUE(pub.announce(subject_of("x/blob"), frag, nullptr).has_value());
  std::vector<std::uint8_t> got;
  ASSERT_TRUE(sub.subscribe(subject_of("x/blob"), frag,
                            [&] {
                              if (auto e = sub.getEvent()) got = e->content;
                            },
                            nullptr)
                  .has_value());
  Event blob;
  blob.content.assign(500, 0x5A);
  ASSERT_TRUE(pub.publish(std::move(blob)).has_value());
  scn.run_for(50_ms);
  ASSERT_EQ(got.size(), 500u);
  EXPECT_EQ(got[0], 0x5A);
  EXPECT_EQ(got[499], 0x5A);
}

TEST_F(GatewayFixture, HrtBridgedViaOwnReservationOnTheFarSide) {
  // The HRT-bridging recipe from gateway.hpp: HRT channels are not
  // bridged automatically (a reservation only means something inside one
  // calendar); instead the gateway subscribes on A and re-publishes into
  // a slot reserved FOR THE GATEWAY on B. End-to-end latency is then the
  // sum of both slots' windows, and B-side subscribers keep the full
  // jitter-free delivery semantics.
  const Subject subject = subject_of("hrt/bridged");
  const Etag etag = *scn.binding().bind(subject);
  SlotSpec slot_a;
  slot_a.lst_offset = 1_ms;
  slot_a.etag = etag;
  slot_a.publisher = 1;  // a1 publishes on network A
  ASSERT_TRUE(scn.calendar(0).reserve(slot_a).has_value());
  SlotSpec slot_b;
  slot_b.lst_offset = 4_ms;  // later in the round: time to forward
  slot_b.etag = etag;
  slot_b.publisher = 21;  // the gateway's B-side stack owns the B slot
  ASSERT_TRUE(scn.calendar(1).reserve(slot_b).has_value());

  Hrtec pub{a1->middleware()};
  ASSERT_TRUE(pub.announce(subject, {}, nullptr).has_value());

  // Gateway glue: subscribe on A, re-publish on B.
  Hrtec gw_sub{gw_a->middleware()};
  Hrtec gw_pub{gw_b->middleware()};
  ASSERT_TRUE(gw_pub.announce(subject, {}, nullptr).has_value());
  ASSERT_TRUE(gw_sub.subscribe(subject, {},
                               [&] {
                                 while (auto e = gw_sub.getEvent()) {
                                   Event fwd;
                                   fwd.content = std::move(e->content);
                                   (void)gw_pub.publish(std::move(fwd));
                                 }
                               },
                               nullptr)
                  .has_value());

  Hrtec sub{b1->middleware()};
  std::vector<TimePoint> deliveries;
  ASSERT_TRUE(sub.subscribe(subject, AttributeList{attr::QueueCapacity{8}},
                            [&] {
                              (void)sub.getEvent();
                              deliveries.push_back(b1->clock().now());
                            },
                            nullptr)
                  .has_value());

  for (int r = 0; r < 3; ++r) {
    scn.sim().schedule_at(TimePoint::origin() + 10_ms * r, [&] {
      Event e;
      e.content = {0x42};
      (void)pub.publish(std::move(e));
    });
  }
  scn.run_for(35_ms);

  // Every event crossed both segments and was delivered exactly at the
  // B-side slot deadlines (A delivery ~1.157 ms -> B slot ready 3.84 ms
  // of the same round -> B delivery at its deadline).
  ASSERT_EQ(deliveries.size(), 3u);
  const auto b_first = scn.calendar(1).instance_at_or_after(
      scn.calendar(1).size() - 1, TimePoint::origin());
  for (int r = 0; r < 3; ++r)
    EXPECT_EQ(deliveries[static_cast<std::size_t>(r)].ns(),
              (b_first.deadline + 10_ms * r).ns());
}

TEST_F(GatewayFixture, IndependentCalendarsPerNetwork) {
  // Reserve the same LST on both networks for different publishers —
  // separate calendars must both accept.
  SlotSpec s;
  s.lst_offset = 2_ms;
  s.etag = *scn.binding().bind(subject_of("hrt/a"));
  s.publisher = 1;
  ASSERT_TRUE(scn.calendar(0).reserve(s).has_value());
  SlotSpec s2;
  s2.lst_offset = 2_ms;
  s2.etag = *scn.binding().bind(subject_of("hrt/b"));
  s2.publisher = 11;
  ASSERT_TRUE(scn.calendar(1).reserve(s2).has_value());

  // And HRT streams run concurrently without interfering (separate buses).
  Hrtec pub_a{a1->middleware()};
  Hrtec pub_b{b1->middleware()};
  ASSERT_TRUE(pub_a.announce(subject_of("hrt/a"), {}, nullptr).has_value());
  ASSERT_TRUE(pub_b.announce(subject_of("hrt/b"), {}, nullptr).has_value());
  Hrtec sub_a{a2->middleware()};
  int rx = 0;
  ASSERT_TRUE(
      sub_a.subscribe(subject_of("hrt/a"), {}, [&] { ++rx; }, nullptr)
          .has_value());
  Event e1;
  e1.content = {1};
  ASSERT_TRUE(pub_a.publish(std::move(e1)).has_value());
  Event e2;
  e2.content = {2};
  ASSERT_TRUE(pub_b.publish(std::move(e2)).has_value());
  scn.run_for(5_ms);
  EXPECT_EQ(rx, 1);
}

// Three segments in a chain, two gateways. Without transit forwarding a
// subject travels exactly one hop: the default gateway subscription is
// LocalOnly, so the second gateway ignores what the first forwarded into
// the middle segment. With forward_transit the event relays end to end,
// and the no-echo property still holds (sender exclusion, acyclic chain).
TEST(GatewayTransit, ChainRelaysOnlyWithForwardTransit) {
  for (const bool transit : {false, true}) {
    Scenario::Config cfg;
    cfg.networks = 3;
    Scenario scn{cfg};
    Node& pub_node = scn.add_node(1, perfect(), 0);
    Node& sub_node = scn.add_node(11, perfect(), 2);
    Node& g0a = scn.add_node(20, perfect(), 0);
    Node& g0b = scn.add_node(21, perfect(), 1);
    Node& g1a = scn.add_node(22, perfect(), 1);
    Node& g1b = scn.add_node(23, perfect(), 2);
    Gateway gw0{g0a, g0b, scn.link_gateway(g0a, g0b, 250_us)};
    Gateway gw1{g1a, g1b, scn.link_gateway(g1a, g1b, 250_us)};
    const Subject subj = subject_of("chain/data");
    ASSERT_TRUE(gw0.bridge_srt(subj, 5_ms, 10_ms, transit).has_value());
    ASSERT_TRUE(gw1.bridge_srt(subj, 5_ms, 10_ms, transit).has_value());

    Srtec pub{pub_node.middleware()};
    ASSERT_TRUE(pub.announce(subj, {}, nullptr).has_value());
    Srtec sub{sub_node.middleware()};
    int rx = 0;
    ASSERT_TRUE(sub.subscribe(subj, {},
                              [&] {
                                while (sub.getEvent()) ++rx;
                              },
                              nullptr)
                    .has_value());
    Event e;
    e.content = {0x42};
    ASSERT_TRUE(pub.publish(std::move(e)).has_value());
    scn.run_for(50_ms);

    EXPECT_EQ(rx, transit ? 1 : 0) << "transit=" << transit;
    EXPECT_EQ(gw0.counters().forwarded_a_to_b, 1u);
    EXPECT_EQ(gw1.counters().forwarded_a_to_b, transit ? 1u : 0u);
    // Nothing circulates back toward the publisher in either mode.
    EXPECT_EQ(gw0.counters().forwarded_b_to_a, 0u);
    EXPECT_EQ(gw1.counters().forwarded_b_to_a, 0u);
  }
}

}  // namespace
}  // namespace rtec
