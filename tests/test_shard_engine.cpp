#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/handoff.hpp"
#include "sim/shard_engine.hpp"
#include "sim/simulator.hpp"

// Kernel injected lane + conservative shard engine (sim/shard_engine.hpp):
// the ordering rules that make sharded execution bit-identical to
// sequential execution, and the lookahead/barrier machinery itself.

namespace rtec {
namespace {

using literals::operator""_ns;
using literals::operator""_us;
using literals::operator""_ms;

TimePoint at_ns(std::int64_t t) { return TimePoint::from_ns(t); }

// --- Simulator injected lane -------------------------------------------

TEST(InjectedLane, RunsAfterLocalEventsAtEqualTimestamp) {
  Simulator sim;
  std::vector<std::string> log;
  sim.schedule_injected(at_ns(100), /*channel=*/0, /*seq=*/0,
                        [&] { log.push_back("inj"); });
  sim.schedule_at(at_ns(100), [&] { log.push_back("local1"); });
  sim.schedule_at(at_ns(100), [&] { log.push_back("local2"); });
  sim.run_until(at_ns(100));
  // Locals keep FIFO order and all precede the injected event, even though
  // the injection was scheduled first.
  EXPECT_EQ(log, (std::vector<std::string>{"local1", "local2", "inj"}));
}

TEST(InjectedLane, OrderIsChannelThenSequenceNotInsertionTime) {
  // Two interleavings of the same injected set must execute identically:
  // the tie-break key is (channel, seq), never the insertion order.
  const auto run = [](bool reversed) {
    Simulator sim;
    std::vector<std::string> log;
    const auto inject = [&](std::uint32_t chan, std::uint64_t seq) {
      sim.schedule_injected(at_ns(50), chan, seq, [&log, chan, seq] {
        log.push_back("c" + std::to_string(chan) + "s" + std::to_string(seq));
      });
    };
    if (reversed) {
      inject(2, 0);
      inject(1, 1);
      inject(1, 0);
    } else {
      inject(1, 0);
      inject(1, 1);
      inject(2, 0);
    }
    sim.run_until(at_ns(50));
    return log;
  };
  const std::vector<std::string> want{"c1s0", "c1s1", "c2s0"};
  EXPECT_EQ(run(false), want);
  EXPECT_EQ(run(true), want);
}

TEST(InjectedLane, EventsScheduledByInjectedCallbackUseTheLocalBand) {
  Simulator sim;
  std::vector<std::string> log;
  sim.schedule_injected(at_ns(10), 0, 0, [&] {
    log.push_back("inj0");
    // Same-timestamp local event scheduled from inside an injected
    // callback: it sorts in the local band, but having already passed it,
    // the heap pops it after the current event — before the next injected
    // entry only if its key says so. The local band precedes the injected
    // band, so it runs before inj1.
    sim.schedule_at(at_ns(10), [&] { log.push_back("local"); });
  });
  sim.schedule_injected(at_ns(10), 0, 1, [&] { log.push_back("inj1"); });
  sim.run_until(at_ns(10));
  EXPECT_EQ(log, (std::vector<std::string>{"inj0", "local", "inj1"}));
}

TEST(InjectedLane, PeekAndRunBefore) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(at_ns(10), [&] { ++fired; });
  sim.schedule_at(at_ns(20), [&] { ++fired; });
  auto h = sim.schedule_at(at_ns(5), [&] { ++fired; });
  sim.cancel(h);

  EXPECT_EQ(sim.peek_next_time().ns(), 10);  // pruned the cancelled front
  sim.run_before(at_ns(20));                 // strictly-before horizon
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now().ns(), 10);  // parked at the last executed event
  EXPECT_EQ(sim.peek_next_time().ns(), 20);
  sim.run_before(at_ns(21));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.peek_next_time(), TimePoint::max());
}

// --- HandoffChannel ----------------------------------------------------

TEST(HandoffChannel, UnbufferedInjectsImmediatelyWithLatencyStamp) {
  Simulator sim;
  HandoffChannel chan{sim, /*id=*/3, /*latency=*/10_us, /*batch=*/nullptr};
  std::vector<std::int64_t> deliveries;
  sim.schedule_at(at_ns(1000), [&] {
    chan.post(sim.now(), [&] { deliveries.push_back(sim.now().ns()); });
  });
  sim.run_until(at_ns(1'000'000));
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0], 1000 + 10'000);
  EXPECT_EQ(chan.posted(), 1u);
  EXPECT_FALSE(chan.buffered());
}

TEST(HandoffBatch, HoldsUntilDrainAndPreservesFifo) {
  Simulator dest;
  HandoffBatch batch{dest};
  HandoffChannel chan{dest, 1, 5_us, &batch};
  std::vector<int> order;
  chan.post(at_ns(100), [&] { order.push_back(0); });
  chan.post(at_ns(100), [&] { order.push_back(1); });  // same send slot
  chan.post(at_ns(100), [&] { order.push_back(2); });
  EXPECT_TRUE(chan.buffered());
  EXPECT_EQ(batch.pending(), 3u);
  EXPECT_EQ(dest.pending(), 0u);

  EXPECT_EQ(batch.drain(), 3u);
  EXPECT_EQ(batch.pending(), 0u);
  EXPECT_EQ(dest.pending(), 3u);
  dest.run_until(at_ns(100) + 5_us);
  // All three release at the same stamped instant, in post order.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(HandoffBatch, ReleaseStampsSurviveBatchingAcrossChannels) {
  // Two channels of one direction share a batch. Posts interleave in an
  // order adversarial to both channel id and release time; every delivery
  // must still land at exactly send + its channel's latency, and ties at
  // one instant must resolve by (channel, seq) — never by post order.
  Simulator dest;
  HandoffBatch batch{dest};
  HandoffChannel fast{dest, 2, 5_us, &batch};
  HandoffChannel slow{dest, 1, 40_us, &batch};
  std::vector<std::string> log;
  const auto tag = [&](const char* name) {
    return [&log, &dest, name] {
      log.push_back(std::string{name} + "@" + std::to_string(dest.now().ns()));
    };
  };
  slow.post(at_ns(0), tag("slow0"));     // releases at 40'000
  fast.post(at_ns(10'000), tag("fast0"));  // releases at 15'000
  fast.post(at_ns(35'000), tag("fast1"));  // releases at 40'000 (tie)
  slow.post(at_ns(5'000), tag("slow1"));   // releases at 45'000
  EXPECT_EQ(batch.pending(), 4u);
  batch.drain();
  dest.run_until(at_ns(100'000));
  // At the 40'000 tie the lower channel id (slow, id 1) precedes fast's
  // entry even though fast1 was posted earlier.
  EXPECT_EQ(log, (std::vector<std::string>{"fast0@15000", "slow0@40000",
                                           "fast1@40000", "slow1@45000"}));
}

// --- ShardEngine -------------------------------------------------------

/// Two shards exchanging ping-pong handoffs plus local chatter; the log of
/// (shard, time, tag) triples is the full observable behavior.
struct PingPong {
  Simulator a;
  Simulator b;
  ShardEngine engine;
  HandoffChannel* ab = nullptr;
  HandoffChannel* ba = nullptr;
  std::vector<std::string> log_a;
  std::vector<std::string> log_b;

  explicit PingPong(unsigned threads) {
    engine.add_shard(a);
    engine.add_shard(b);
    ab = &engine.link(0, 1, 10_us);
    ba = &engine.link(1, 0, 10_us);
    engine.set_threads(threads);
  }

  void build(int bounces) {
    // Local chatter on both shards at adversarially tied timestamps.
    for (int i = 0; i < 50; ++i) {
      a.schedule_at(at_ns(i * 7'000), [this] {
        log_a.push_back("tick@" + std::to_string(a.now().ns()));
      });
      b.schedule_at(at_ns(i * 7'000), [this] {
        log_b.push_back("tock@" + std::to_string(b.now().ns()));
      });
    }
    // Ping-pong: a → b → a → ..., `bounces` crossings.
    a.schedule_at(at_ns(1'000), [this, bounces] { ping(bounces); });
  }

  void ping(int remaining) {
    log_a.push_back("ping@" + std::to_string(a.now().ns()));
    if (remaining <= 0) return;
    ab->post(a.now(), [this, remaining] { pong(remaining - 1); });
  }

  void pong(int remaining) {
    log_b.push_back("pong@" + std::to_string(b.now().ns()));
    if (remaining <= 0) return;
    ba->post(b.now(), [this, remaining] { ping(remaining - 1); });
  }
};

TEST(ShardEngine, PingPongCrossesAtExactLatencyStamps) {
  PingPong pp{1};
  pp.build(4);
  pp.engine.run_until(at_ns(1'000'000));
  // ping at 1000, pong at 11000, ping at 21000, ...
  EXPECT_NE(std::find(pp.log_a.begin(), pp.log_a.end(), "ping@21000"),
            pp.log_a.end());
  EXPECT_NE(std::find(pp.log_b.begin(), pp.log_b.end(), "pong@11000"),
            pp.log_b.end());
  EXPECT_NE(std::find(pp.log_b.begin(), pp.log_b.end(), "pong@31000"),
            pp.log_b.end());
  EXPECT_EQ(pp.engine.lookahead().ns(), (10_us).ns());
  EXPECT_GT(pp.engine.stats().epochs, 0u);
  EXPECT_EQ(pp.engine.stats().handoffs, 4u);
  EXPECT_EQ(pp.a.now().ns(), 1'000'000);
  EXPECT_EQ(pp.b.now().ns(), 1'000'000);
}

TEST(ShardEngine, BitIdenticalAcrossThreadCounts) {
  std::vector<std::string> ref_a;
  std::vector<std::string> ref_b;
  for (const unsigned threads : {1u, 2u, 4u}) {
    PingPong pp{threads};
    pp.build(20);
    pp.engine.run_until(at_ns(2'000'000));
    if (threads == 1u) {
      ref_a = pp.log_a;
      ref_b = pp.log_b;
      continue;
    }
    EXPECT_EQ(pp.log_a, ref_a) << threads << " threads";
    EXPECT_EQ(pp.log_b, ref_b) << threads << " threads";
  }
  ASSERT_FALSE(ref_a.empty());
}

TEST(ShardEngine, RepeatedRunUntilInjectsLeftoverHandoffs) {
  // A handoff committed in one run call whose release falls beyond the
  // horizon must be delivered by the next call.
  PingPong pp{2};
  int delivered = 0;
  pp.a.schedule_at(at_ns(90'000), [&] {
    pp.ab->post(pp.a.now(), [&] { ++delivered; });  // releases at 100'000
  });
  pp.engine.run_until(at_ns(95'000));
  EXPECT_EQ(delivered, 0);
  pp.engine.run_until(at_ns(200'000));
  EXPECT_EQ(delivered, 1);
}

TEST(ShardEngine, IndependentShardsRunInOneEpoch) {
  // No cross-shard channels: the horizon is the run bound itself.
  Simulator a;
  Simulator b;
  ShardEngine engine;
  engine.add_shard(a);
  engine.add_shard(b);
  engine.set_threads(2);
  // Per-shard counters: the two shards run concurrently inside an epoch.
  int fired_a = 0;
  int fired_b = 0;
  for (int i = 0; i < 100; ++i) {
    a.schedule_at(at_ns(i * 997), [&] { ++fired_a; });
    b.schedule_at(at_ns(i * 1013), [&] { ++fired_b; });
  }
  engine.run_until(at_ns(1'000'000));
  EXPECT_EQ(fired_a + fired_b, 200);
  EXPECT_EQ(engine.stats().epochs, 1u);
}

TEST(ShardEngine, LookaheadNeverOutrunsAnInboundHandoff) {
  // Shard B is saturated with events at every microsecond; a handoff from
  // A released mid-stream must interleave at exactly its release stamp —
  // i.e. B must never have advanced past the release when it arrives.
  Simulator a;
  Simulator b;
  ShardEngine engine;
  engine.add_shard(a);
  engine.add_shard(b);
  HandoffChannel& ab = engine.link(0, 1, 7_us);
  engine.set_threads(2);

  std::vector<std::int64_t> b_times;
  for (int i = 0; i < 200; ++i)
    b.schedule_at(at_ns(i * 1'000),
                  [&] { b_times.push_back(b.now().ns()); });
  a.schedule_at(at_ns(50'500), [&] {
    ab.post(a.now(), [&] { b_times.push_back(-b.now().ns()); });
  });
  engine.run_until(at_ns(500'000));

  const auto it = std::find(b_times.begin(), b_times.end(), -57'500);
  ASSERT_NE(it, b_times.end());
  // Everything before the handoff marker is strictly earlier than its
  // release; everything after is at or beyond it.
  for (auto p = b_times.begin(); p != it; ++p) EXPECT_LT(*p, 57'500);
  for (auto p = it + 1; p != b_times.end(); ++p) EXPECT_GE(*p, 57'500);
}

TEST(ShardEngine, IncomingLookaheadIsPerShardNotGlobal) {
  Simulator a;
  Simulator b;
  Simulator c;
  ShardEngine engine;
  engine.add_shard(a);
  engine.add_shard(b);
  engine.add_shard(c);
  engine.link(0, 1, 10_us);
  engine.link(1, 2, 500_us);
  engine.link(0, 1, 300_us);  // second channel on the 0->1 direction
  // Global diagnostic is the min over everything; per-shard incoming
  // bounds differ — that asymmetry is what per-link horizons exploit.
  EXPECT_EQ(engine.lookahead().ns(), (10_us).ns());
  EXPECT_EQ(engine.incoming_lookahead(0), Duration::max());  // nothing feeds 0
  EXPECT_EQ(engine.incoming_lookahead(1).ns(), (10_us).ns());
  EXPECT_EQ(engine.incoming_lookahead(2).ns(), (500_us).ns());
  EXPECT_EQ(engine.lookahead_mode(), LookaheadMode::kPerLink);
}

/// Weakly-coupled chain fixture for the epoch-count comparison: shard 0
/// is busy (events every 5 us), shards 1..3 are light (events every
/// 2 ms), bidirectional links everywhere, sparse real handoffs so the
/// coupling is exercised, not just declared.
struct WeakChain {
  static constexpr int kShards = 4;
  std::vector<std::unique_ptr<Simulator>> sims;
  ShardEngine engine;
  std::vector<HandoffChannel*> right;  // shard i -> i+1
  /// Per-shard event logs: the observable behaviour. (A single global log
  /// would record cross-shard interleaving, which the horizon policy is
  /// allowed to change — only each shard's own sequence is invariant.)
  std::vector<std::vector<std::int64_t>> trace{kShards};

  explicit WeakChain(LookaheadMode mode) {
    for (int i = 0; i < kShards; ++i) {
      sims.push_back(std::make_unique<Simulator>());
      engine.add_shard(*sims.back());
    }
    engine.set_lookahead_mode(mode);
    // Heterogeneous latencies, the honest per-link story: the busy shard
    // sits behind a 400 us gateway while the light tail is joined by fast
    // 20 us links. Global-min throttles *every* shard to the globally
    // shortest link; per-link horizons only feel the local neighbourhood.
    const Duration lat[] = {400_us, 100_us, 20_us};
    for (std::size_t i = 0; i + 1 < static_cast<std::size_t>(kShards); ++i) {
      right.push_back(&engine.link(i, i + 1, lat[i]));
      engine.link(i + 1, i, lat[i]);
    }
    Simulator& busy = *sims[0];
    for (int i = 0; i < 2000; ++i)
      busy.schedule_at(at_ns(i * 5'000),
                       [this, &busy] { trace[0].push_back(busy.now().ns()); });
    for (int s = 1; s < kShards; ++s) {
      Simulator& light = *sims[static_cast<std::size_t>(s)];
      for (int i = 0; i < 5; ++i)
        light.schedule_at(at_ns(i * 2'000'000), [this, &light, s] {
          trace[static_cast<std::size_t>(s)].push_back(light.now().ns());
        });
    }
    // A real handoff each millisecond keeps the chain genuinely coupled
    // (delivery runs in shard 1's context and logs there).
    for (int i = 0; i < 10; ++i)
      busy.schedule_at(at_ns(i * 1'000'000 + 1), [this] {
        right[0]->post(sims[0]->now(), [this] {
          trace[1].push_back(-sims[1]->now().ns());
        });
      });
  }
};

TEST(ShardEngine, PerLinkLookaheadCutsEpochsOnWeaklyCoupledChain) {
  // The satellite regression for the tentpole: identical traces, far
  // fewer barriers. Under the global minimum every epoch advances the
  // busy shard by the globally shortest link (~20 us); under per-link
  // horizons its window is the 400 us round trip through its own
  // gateway, an order of magnitude wider.
  WeakChain per_link{LookaheadMode::kPerLink};
  WeakChain global{LookaheadMode::kGlobalMin};
  per_link.engine.run_until(at_ns(10'000'000));
  global.engine.run_until(at_ns(10'000'000));

  EXPECT_EQ(per_link.trace, global.trace);  // same observable behaviour
  EXPECT_EQ(per_link.engine.stats().handoffs,
            global.engine.stats().handoffs);
  const auto perlink_epochs = per_link.engine.stats().epochs;
  const auto global_epochs = global.engine.stats().epochs;
  // The acceptance bar is >= 30% reduction; this fixture gives far more,
  // so assert a 2x margin to stay robust.
  EXPECT_LT(perlink_epochs * 2, global_epochs)
      << "per-link " << perlink_epochs << " vs global " << global_epochs;
  // Idle shards skip their run entirely: shard executions stay well
  // below epochs * shard_count.
  EXPECT_LT(per_link.engine.stats().shard_runs,
            perlink_epochs * WeakChain::kShards);
}

}  // namespace
}  // namespace rtec
