#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "sim/handoff.hpp"
#include "sim/shard_engine.hpp"
#include "sim/simulator.hpp"

// Kernel injected lane + conservative shard engine (sim/shard_engine.hpp):
// the ordering rules that make sharded execution bit-identical to
// sequential execution, and the lookahead/barrier machinery itself.

namespace rtec {
namespace {

using literals::operator""_ns;
using literals::operator""_us;
using literals::operator""_ms;

TimePoint at_ns(std::int64_t t) { return TimePoint::from_ns(t); }

// --- Simulator injected lane -------------------------------------------

TEST(InjectedLane, RunsAfterLocalEventsAtEqualTimestamp) {
  Simulator sim;
  std::vector<std::string> log;
  sim.schedule_injected(at_ns(100), /*channel=*/0, /*seq=*/0,
                        [&] { log.push_back("inj"); });
  sim.schedule_at(at_ns(100), [&] { log.push_back("local1"); });
  sim.schedule_at(at_ns(100), [&] { log.push_back("local2"); });
  sim.run_until(at_ns(100));
  // Locals keep FIFO order and all precede the injected event, even though
  // the injection was scheduled first.
  EXPECT_EQ(log, (std::vector<std::string>{"local1", "local2", "inj"}));
}

TEST(InjectedLane, OrderIsChannelThenSequenceNotInsertionTime) {
  // Two interleavings of the same injected set must execute identically:
  // the tie-break key is (channel, seq), never the insertion order.
  const auto run = [](bool reversed) {
    Simulator sim;
    std::vector<std::string> log;
    const auto inject = [&](std::uint32_t chan, std::uint64_t seq) {
      sim.schedule_injected(at_ns(50), chan, seq, [&log, chan, seq] {
        log.push_back("c" + std::to_string(chan) + "s" + std::to_string(seq));
      });
    };
    if (reversed) {
      inject(2, 0);
      inject(1, 1);
      inject(1, 0);
    } else {
      inject(1, 0);
      inject(1, 1);
      inject(2, 0);
    }
    sim.run_until(at_ns(50));
    return log;
  };
  const std::vector<std::string> want{"c1s0", "c1s1", "c2s0"};
  EXPECT_EQ(run(false), want);
  EXPECT_EQ(run(true), want);
}

TEST(InjectedLane, EventsScheduledByInjectedCallbackUseTheLocalBand) {
  Simulator sim;
  std::vector<std::string> log;
  sim.schedule_injected(at_ns(10), 0, 0, [&] {
    log.push_back("inj0");
    // Same-timestamp local event scheduled from inside an injected
    // callback: it sorts in the local band, but having already passed it,
    // the heap pops it after the current event — before the next injected
    // entry only if its key says so. The local band precedes the injected
    // band, so it runs before inj1.
    sim.schedule_at(at_ns(10), [&] { log.push_back("local"); });
  });
  sim.schedule_injected(at_ns(10), 0, 1, [&] { log.push_back("inj1"); });
  sim.run_until(at_ns(10));
  EXPECT_EQ(log, (std::vector<std::string>{"inj0", "local", "inj1"}));
}

TEST(InjectedLane, PeekAndRunBefore) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(at_ns(10), [&] { ++fired; });
  sim.schedule_at(at_ns(20), [&] { ++fired; });
  auto h = sim.schedule_at(at_ns(5), [&] { ++fired; });
  sim.cancel(h);

  EXPECT_EQ(sim.peek_next_time().ns(), 10);  // pruned the cancelled front
  sim.run_before(at_ns(20));                 // strictly-before horizon
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now().ns(), 10);  // parked at the last executed event
  EXPECT_EQ(sim.peek_next_time().ns(), 20);
  sim.run_before(at_ns(21));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.peek_next_time(), TimePoint::max());
}

// --- HandoffChannel ----------------------------------------------------

TEST(HandoffChannel, UnbufferedInjectsImmediatelyWithLatencyStamp) {
  Simulator sim;
  HandoffChannel chan{sim, /*id=*/3, /*latency=*/10_us, /*buffered=*/false};
  std::vector<std::int64_t> deliveries;
  sim.schedule_at(at_ns(1000), [&] {
    chan.post(sim.now(), [&] { deliveries.push_back(sim.now().ns()); });
  });
  sim.run_until(at_ns(1'000'000));
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0], 1000 + 10'000);
  EXPECT_EQ(chan.posted(), 1u);
  EXPECT_EQ(chan.pending(), 0u);
}

TEST(HandoffChannel, BufferedHoldsUntilFlushAndPreservesFifo) {
  Simulator dest;
  HandoffChannel chan{dest, 1, 5_us, /*buffered=*/true};
  std::vector<int> order;
  chan.post(at_ns(100), [&] { order.push_back(0); });
  chan.post(at_ns(100), [&] { order.push_back(1); });  // same send slot
  chan.post(at_ns(100), [&] { order.push_back(2); });
  EXPECT_EQ(chan.pending(), 3u);
  EXPECT_EQ(dest.pending(), 0u);

  chan.flush();
  EXPECT_EQ(chan.pending(), 0u);
  EXPECT_EQ(dest.pending(), 3u);
  dest.run_until(at_ns(100) + 5_us);
  // All three release at the same stamped instant, in post order.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

// --- ShardEngine -------------------------------------------------------

/// Two shards exchanging ping-pong handoffs plus local chatter; the log of
/// (shard, time, tag) triples is the full observable behavior.
struct PingPong {
  Simulator a;
  Simulator b;
  ShardEngine engine;
  HandoffChannel* ab = nullptr;
  HandoffChannel* ba = nullptr;
  std::vector<std::string> log_a;
  std::vector<std::string> log_b;

  explicit PingPong(unsigned threads) {
    engine.add_shard(a);
    engine.add_shard(b);
    ab = &engine.link(0, 1, 10_us);
    ba = &engine.link(1, 0, 10_us);
    engine.set_threads(threads);
  }

  void build(int bounces) {
    // Local chatter on both shards at adversarially tied timestamps.
    for (int i = 0; i < 50; ++i) {
      a.schedule_at(at_ns(i * 7'000), [this] {
        log_a.push_back("tick@" + std::to_string(a.now().ns()));
      });
      b.schedule_at(at_ns(i * 7'000), [this] {
        log_b.push_back("tock@" + std::to_string(b.now().ns()));
      });
    }
    // Ping-pong: a → b → a → ..., `bounces` crossings.
    a.schedule_at(at_ns(1'000), [this, bounces] { ping(bounces); });
  }

  void ping(int remaining) {
    log_a.push_back("ping@" + std::to_string(a.now().ns()));
    if (remaining <= 0) return;
    ab->post(a.now(), [this, remaining] { pong(remaining - 1); });
  }

  void pong(int remaining) {
    log_b.push_back("pong@" + std::to_string(b.now().ns()));
    if (remaining <= 0) return;
    ba->post(b.now(), [this, remaining] { ping(remaining - 1); });
  }
};

TEST(ShardEngine, PingPongCrossesAtExactLatencyStamps) {
  PingPong pp{1};
  pp.build(4);
  pp.engine.run_until(at_ns(1'000'000));
  // ping at 1000, pong at 11000, ping at 21000, ...
  EXPECT_NE(std::find(pp.log_a.begin(), pp.log_a.end(), "ping@21000"),
            pp.log_a.end());
  EXPECT_NE(std::find(pp.log_b.begin(), pp.log_b.end(), "pong@11000"),
            pp.log_b.end());
  EXPECT_NE(std::find(pp.log_b.begin(), pp.log_b.end(), "pong@31000"),
            pp.log_b.end());
  EXPECT_EQ(pp.engine.lookahead().ns(), (10_us).ns());
  EXPECT_GT(pp.engine.stats().epochs, 0u);
  EXPECT_EQ(pp.engine.stats().handoffs, 4u);
  EXPECT_EQ(pp.a.now().ns(), 1'000'000);
  EXPECT_EQ(pp.b.now().ns(), 1'000'000);
}

TEST(ShardEngine, BitIdenticalAcrossThreadCounts) {
  std::vector<std::string> ref_a;
  std::vector<std::string> ref_b;
  for (const unsigned threads : {1u, 2u, 4u}) {
    PingPong pp{threads};
    pp.build(20);
    pp.engine.run_until(at_ns(2'000'000));
    if (threads == 1u) {
      ref_a = pp.log_a;
      ref_b = pp.log_b;
      continue;
    }
    EXPECT_EQ(pp.log_a, ref_a) << threads << " threads";
    EXPECT_EQ(pp.log_b, ref_b) << threads << " threads";
  }
  ASSERT_FALSE(ref_a.empty());
}

TEST(ShardEngine, RepeatedRunUntilInjectsLeftoverHandoffs) {
  // A handoff committed in one run call whose release falls beyond the
  // horizon must be delivered by the next call.
  PingPong pp{2};
  int delivered = 0;
  pp.a.schedule_at(at_ns(90'000), [&] {
    pp.ab->post(pp.a.now(), [&] { ++delivered; });  // releases at 100'000
  });
  pp.engine.run_until(at_ns(95'000));
  EXPECT_EQ(delivered, 0);
  pp.engine.run_until(at_ns(200'000));
  EXPECT_EQ(delivered, 1);
}

TEST(ShardEngine, IndependentShardsRunInOneEpoch) {
  // No cross-shard channels: the horizon is the run bound itself.
  Simulator a;
  Simulator b;
  ShardEngine engine;
  engine.add_shard(a);
  engine.add_shard(b);
  engine.set_threads(2);
  // Per-shard counters: the two shards run concurrently inside an epoch.
  int fired_a = 0;
  int fired_b = 0;
  for (int i = 0; i < 100; ++i) {
    a.schedule_at(at_ns(i * 997), [&] { ++fired_a; });
    b.schedule_at(at_ns(i * 1013), [&] { ++fired_b; });
  }
  engine.run_until(at_ns(1'000'000));
  EXPECT_EQ(fired_a + fired_b, 200);
  EXPECT_EQ(engine.stats().epochs, 1u);
}

TEST(ShardEngine, LookaheadNeverOutrunsAnInboundHandoff) {
  // Shard B is saturated with events at every microsecond; a handoff from
  // A released mid-stream must interleave at exactly its release stamp —
  // i.e. B must never have advanced past the release when it arrives.
  Simulator a;
  Simulator b;
  ShardEngine engine;
  engine.add_shard(a);
  engine.add_shard(b);
  HandoffChannel& ab = engine.link(0, 1, 7_us);
  engine.set_threads(2);

  std::vector<std::int64_t> b_times;
  for (int i = 0; i < 200; ++i)
    b.schedule_at(at_ns(i * 1'000),
                  [&] { b_times.push_back(b.now().ns()); });
  a.schedule_at(at_ns(50'500), [&] {
    ab.post(a.now(), [&] { b_times.push_back(-b.now().ns()); });
  });
  engine.run_until(at_ns(500'000));

  const auto it = std::find(b_times.begin(), b_times.end(), -57'500);
  ASSERT_NE(it, b_times.end());
  // Everything before the handoff marker is strictly earlier than its
  // release; everything after is at or beyond it.
  for (auto p = b_times.begin(); p != it; ++p) EXPECT_LT(*p, 57'500);
  for (auto p = it + 1; p != b_times.end(); ++p) EXPECT_GE(*p, 57'500);
}

}  // namespace
}  // namespace rtec
