// Tests for the parallel sweep harness (bench/sweep.hpp): results must be
// byte-identical regardless of worker-thread count — parallelism may only
// change wall time, never output.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "bench/sweep.hpp"
#include "sim/simulator.hpp"
#include "util/random.hpp"
#include "util/time_types.hpp"

namespace rtec {
namespace {

/// One deterministic sweep point: a self-contained simulation seeded by the
/// point index. Mirrors how the experiment harnesses use sweep(): each point
/// owns all its mutable state, so points are trivially thread-safe.
struct PointResult {
  std::uint64_t digest = 0;
  std::int64_t final_now_ns = 0;
  bool operator==(const PointResult&) const = default;
};

PointResult run_point(std::size_t index) {
  Simulator sim;
  Rng rng{0xBEEF0000ULL + index};
  PointResult r;
  // A small reentrant event cascade: each fired event folds (label, now)
  // into the digest and occasionally schedules a follower.
  std::function<void(int)> arm = [&](int label) {
    sim.schedule_after(Duration::nanoseconds(rng.uniform_int(1, 5'000)),
                       [&, label] {
                         constexpr std::uint64_t kFnvPrime = 1099511628211u;
                         r.digest = (r.digest * kFnvPrime) ^
                                    static_cast<std::uint64_t>(label);
                         r.digest ^=
                             static_cast<std::uint64_t>(sim.now().ns()) << 17;
                         if (label < 200) arm(label + 3);
                       });
  };
  for (int i = 0; i < 50; ++i) arm(i);
  sim.run();
  r.final_now_ns = sim.now().ns();
  return r;
}

TEST(Sweep, ResultsAreIndexOrdered) {
  const auto out =
      bench::sweep(16, [](std::size_t i) { return static_cast<int>(i * i); },
                   /*threads=*/3);
  ASSERT_EQ(out.size(), 16u);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i], static_cast<int>(i * i));
}

TEST(Sweep, ByteIdenticalAcrossThreadCounts) {
  // Acceptance criterion: per-point results are byte-identical with 1
  // worker vs N workers. Compare both the raw results and the serialized
  // BENCH rows they would produce.
  constexpr std::size_t kPoints = 12;
  const auto serial = bench::sweep(kPoints, run_point, /*threads=*/1);
  const auto parallel4 = bench::sweep(kPoints, run_point, /*threads=*/4);
  const auto parallel7 = bench::sweep(kPoints, run_point, /*threads=*/7);
  EXPECT_EQ(serial, parallel4);
  EXPECT_EQ(serial, parallel7);

  auto rows_of = [](const std::vector<PointResult>& pts) {
    bench::BenchJson bj{"sweep_test"};
    for (std::size_t i = 0; i < pts.size(); ++i)
      bj.row({{"point", static_cast<double>(i)},
              {"digest", static_cast<double>(pts[i].digest)},
              {"final_now_ns", static_cast<double>(pts[i].final_now_ns)}});
    return bj.rows_json();
  };
  EXPECT_EQ(rows_of(serial), rows_of(parallel4));
  EXPECT_EQ(rows_of(serial), rows_of(parallel7));
}

TEST(Sweep, MoreWorkersThanPointsIsFine) {
  const auto out = bench::sweep(
      3, [](std::size_t i) { return static_cast<int>(i) + 1; },
      /*threads=*/32);
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
}

TEST(Sweep, ZeroPointsReturnsEmpty) {
  const auto out =
      bench::sweep(0, [](std::size_t) { return 1; }, /*threads=*/4);
  EXPECT_TRUE(out.empty());
}

TEST(Sweep, ExplicitThreadCountWins) {
  // threads=1 must force the serial path regardless of environment.
  EXPECT_EQ(bench::sweep_threads(1), 1u);
  EXPECT_EQ(bench::sweep_threads(5), 5u);
  EXPECT_GE(bench::sweep_threads(0), 1u);
}

TEST(BenchJson, SerializesRowsAndMetaDeterministically) {
  bench::BenchJson bj{"unit"};
  bj.meta("threads", 4.0);
  bj.meta("mode", "quick \"q\"");
  bj.row({{"x", 1.0}, {"y", 0.5}});
  bj.row({{"x", 2.0}, {"y", 0.25}});
  const std::string json = bj.to_json();
  EXPECT_NE(json.find("\"name\": \"unit\""), std::string::npos);
  EXPECT_NE(json.find("\"threads\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"mode\": \"quick \\\"q\\\"\""), std::string::npos);
  EXPECT_NE(json.find("{\"x\": 1, \"y\": 0.5}"), std::string::npos);
  EXPECT_NE(json.find("{\"x\": 2, \"y\": 0.25}"), std::string::npos);
  // rows_json() is a strict substring of the full document.
  EXPECT_NE(json.find(bj.rows_json()), std::string::npos);
}

TEST(BenchJson, RoundTripsDoublesExactly) {
  bench::BenchJson bj{"precision"};
  const double v = 0.1 + 0.2;  // classic non-representable sum
  bj.row({{"v", v}});
  const std::string rows = bj.rows_json();
  // %.17g prints enough digits to round-trip any double bit-exactly.
  EXPECT_NE(rows.find("0.30000000000000004"), std::string::npos);
}

}  // namespace
}  // namespace rtec
