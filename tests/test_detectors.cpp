#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "canbus/bus.hpp"
#include "canbus/controller.hpp"
#include "canbus/fault.hpp"
#include "sim/simulator.hpp"
#include "trace/detectors.hpp"
#include "trace/stream.hpp"

/// Streaming anomaly detectors (trace/detectors.hpp): training vs
/// detection behavior of each detector on synthetic event streams, the
/// bounded-state contract, unknown-identifier handling, and the tap's
/// delivered-frames-only filtering on a real bus.

namespace rtec {
namespace {

using namespace rtec::literals;

constexpr TimePoint at_ms(std::int64_t ms) {
  return TimePoint::origin() + Duration::milliseconds(ms);
}

/// A successful delivery of `id` ending at `end` (the only fields the
/// detectors read).
CanBus::FrameEvent delivery(std::uint32_t id, TimePoint end) {
  CanBus::FrameEvent ev;
  ev.frame.id = id;
  ev.frame.dlc = 8;
  ev.start = end - 130_us;
  ev.end = end;
  ev.success = true;
  ev.wire_bits = 130;
  return ev;
}

/// Feeds a periodic stream of `id` into `obs`: arrivals at from, from +
/// period, ... strictly before `until`.
void feed_periodic(trace::StreamObserver& obs, std::uint32_t id,
                   Duration period, TimePoint from, TimePoint until) {
  for (TimePoint t = from; t < until; t += period) obs.on_frame(delivery(id, t));
}

TEST(MeanIatGate, QuietOnBenignFlagsDoubledRate) {
  trace::MeanIatGate::Config cfg;
  cfg.train_until = at_ms(1000);
  trace::MeanIatGate gate{cfg};

  feed_periodic(gate, 0x100, 10_ms, at_ms(0), at_ms(1000));   // training
  feed_periodic(gate, 0x100, 10_ms, at_ms(1000), at_ms(1200));  // benign
  EXPECT_EQ(gate.alarm_count(), 0u);

  // The stream collapses to 5 ms IATs (injection at the victim's id).
  feed_periodic(gate, 0x100, 5_ms, at_ms(1205), at_ms(1400));
  EXPECT_GT(gate.alarm_count(), 0u);
  ASSERT_TRUE(gate.first_alarm().has_value());
  EXPECT_GE(*gate.first_alarm(), at_ms(1200));
  EXPECT_EQ(gate.tracked_ids(), 1u);
}

TEST(MeanIatGate, ToleratesTrainedJitter) {
  trace::MeanIatGate::Config cfg;
  cfg.train_until = at_ms(1000);
  trace::MeanIatGate gate{cfg};

  // 10 ms nominal with ±1 ms alternating jitter, in training AND after:
  // the learned sigma covers the deviation, so no alarms fire.
  const auto feed = [&gate](TimePoint from, TimePoint until) {
    bool high = false;
    for (TimePoint t = from; t < until;
         t += high ? 11_ms : 9_ms, high = !high)
      gate.on_frame(delivery(0x100, t));
  };
  feed(at_ms(0), at_ms(1000));
  feed(at_ms(1000), at_ms(1500));
  EXPECT_EQ(gate.alarm_count(), 0u);
}

TEST(MeanIatGate, UnknownIdAfterTrainingRaisesFlaggedAlarm) {
  trace::MeanIatGate::Config cfg;
  cfg.train_until = at_ms(1000);
  trace::MeanIatGate gate{cfg};
  std::vector<trace::Alarm> alarms;
  gate.set_alarm_sink([&](const trace::Alarm& a) { alarms.push_back(a); });

  feed_periodic(gate, 0x100, 10_ms, at_ms(0), at_ms(1000));
  // A fuzzed identifier that never appeared in training.
  gate.on_frame(delivery(0x999, at_ms(1100)));
  EXPECT_EQ(gate.unknown_id_frames(), 1u);
  ASSERT_EQ(alarms.size(), 1u);
  EXPECT_TRUE(alarms.front().unknown_id);
  EXPECT_EQ(alarms.front().id, 0x999u);
  EXPECT_EQ(alarms.front().at, at_ms(1100));
}

TEST(MeanIatGate, SparseTrainingCountsAsUnknown) {
  trace::MeanIatGate::Config cfg;
  cfg.train_until = at_ms(1000);
  cfg.min_train_samples = 8;
  trace::MeanIatGate gate{cfg};

  // Only three training IATs: not enough for a profile.
  feed_periodic(gate, 0x200, 10_ms, at_ms(0), at_ms(40));
  gate.on_frame(delivery(0x200, at_ms(1100)));
  EXPECT_EQ(gate.unknown_id_frames(), 1u);
}

TEST(CusumDetector, IntegratesSmallShiftAPerFrameGateMisses) {
  trace::MeanIatGate::Config gate_cfg;
  gate_cfg.train_until = at_ms(1000);
  trace::MeanIatGate gate{gate_cfg};
  trace::CusumDetector::Config cusum_cfg;
  cusum_cfg.train_until = at_ms(1000);
  trace::CusumDetector cusum{cusum_cfg};

  // Train both on a perfect 10 ms stream (sigma floors at 0.5 ms), then
  // shift the rate by 7%: each IAT deviates only 1.4 sigma — inside the
  // 4-sigma gate — but the deviation is persistent and the CUSUM ramps.
  for (trace::Detector* d : {static_cast<trace::Detector*>(&gate),
                             static_cast<trace::Detector*>(&cusum)}) {
    feed_periodic(*d, 0x100, 10_ms, at_ms(0), at_ms(1000));
    feed_periodic(*d, 0x100, Duration::microseconds(9300), at_ms(1000),
                  at_ms(1500));
  }
  EXPECT_EQ(gate.alarm_count(), 0u);
  EXPECT_GT(cusum.alarm_count(), 0u);
  ASSERT_TRUE(cusum.first_alarm().has_value());
  EXPECT_GE(*cusum.first_alarm(), at_ms(1000));
}

TEST(CusumDetector, QuietOnBenignContinuation) {
  trace::CusumDetector::Config cfg;
  cfg.train_until = at_ms(1000);
  trace::CusumDetector cusum{cfg};
  feed_periodic(cusum, 0x100, 10_ms, at_ms(0), at_ms(2000));
  EXPECT_EQ(cusum.alarm_count(), 0u);
}

TEST(WindowFrequency, FlagsSuspensionWithinOneWindow) {
  trace::WindowFrequencyDetector::Config cfg;
  cfg.train_until = at_ms(1000);
  cfg.window = 50_ms;
  trace::WindowFrequencyDetector det{cfg};
  std::vector<trace::Alarm> alarms;
  det.set_alarm_sink([&](const trace::Alarm& a) { alarms.push_back(a); });

  // Victim 0x100 and an independent heartbeat 0x200, both 10 ms periodic.
  for (TimePoint t = at_ms(10); t < at_ms(1000); t += 10_ms) {
    det.on_frame(delivery(0x100, t));
    det.on_frame(delivery(0x200, t + 1_ms));
  }
  // After training the victim is suspended; the heartbeat keeps windows
  // advancing (absence of traffic is only observable against time).
  for (TimePoint t = at_ms(1000); t < at_ms(1500); t += 10_ms)
    det.on_frame(delivery(0x200, t + 1_ms));
  det.finish(at_ms(1500));

  ASSERT_FALSE(alarms.empty());
  // Every alarm names the suspended id, starting within ~one window of
  // the suspension onset.
  for (const trace::Alarm& a : alarms) EXPECT_EQ(a.id, 0x100u);
  EXPECT_LE(*det.first_alarm(), at_ms(1100));
  // A zero-count window against a trained band of ~5 frames: the band
  // distance is meaningful, not epsilon.
  EXPECT_GE(alarms.front().score, 3.0);
}

TEST(WindowFrequency, FlagsInjectionAndStaysQuietOnBenign) {
  trace::WindowFrequencyDetector::Config cfg;
  cfg.train_until = at_ms(1000);
  cfg.window = 50_ms;
  trace::WindowFrequencyDetector det{cfg};

  feed_periodic(det, 0x100, 10_ms, at_ms(10), at_ms(1000));
  feed_periodic(det, 0x100, 10_ms, at_ms(1010), at_ms(1200));
  det.finish(at_ms(1200));
  EXPECT_EQ(det.alarm_count(), 0u);

  // Rate doubles: 10 frames per window against a trained band of ~5.
  feed_periodic(det, 0x100, 5_ms, at_ms(1200), at_ms(1400));
  det.finish(at_ms(1400));
  EXPECT_GT(det.alarm_count(), 0u);
}

TEST(Detectors, TrackingBudgetIsBoundedAndOverflowIsCounted) {
  trace::MeanIatGate::Config cfg;
  cfg.train_until = at_ms(1000);
  cfg.max_tracked_ids = 4;
  trace::MeanIatGate gate{cfg};

  // 16 distinct identifiers in training: only the first four admitted.
  for (std::uint32_t id = 1; id <= 16; ++id)
    feed_periodic(gate, id, 10_ms, at_ms(id), at_ms(1000));
  EXPECT_EQ(gate.tracked_ids(), 4u);

  // Untracked ids in detection raise unknown-id alarms, not UB.
  gate.on_frame(delivery(12, at_ms(1100)));
  EXPECT_EQ(gate.unknown_id_frames(), 1u);
}

TEST(Detectors, BankFansOutAndFinishes) {
  trace::DetectorBank bank;
  trace::MeanIatGate::Config gate_cfg;
  gate_cfg.train_until = at_ms(500);
  trace::Detector& gate =
      bank.add(std::make_unique<trace::MeanIatGate>(gate_cfg));
  trace::WindowFrequencyDetector::Config win_cfg;
  win_cfg.train_until = at_ms(500);
  win_cfg.window = 50_ms;
  trace::Detector& win =
      bank.add(std::make_unique<trace::WindowFrequencyDetector>(win_cfg));
  ASSERT_EQ(bank.size(), 2u);

  feed_periodic(bank, 0x100, 10_ms, at_ms(0), at_ms(500));
  feed_periodic(bank, 0x100, 5_ms, at_ms(500), at_ms(700));
  bank.finish(at_ms(700));

  EXPECT_GT(gate.alarm_count(), 0u);
  EXPECT_GT(win.alarm_count(), 0u);
}

TEST(StreamTap, FeedsOnlySuccessfulDeliveriesInBusOrder) {
  Simulator sim;
  CanBus bus{sim, BusConfig{}};
  CanController a{sim, 1};
  CanController b{sim, 2};
  bus.attach(a);
  bus.attach(b);
  trace::StreamTap tap{bus};

  struct Collector final : trace::StreamObserver {
    std::vector<std::uint32_t> ids;
    TimePoint finished;
    void on_frame(const CanBus::FrameEvent& ev) override {
      EXPECT_TRUE(ev.success);
      ids.push_back(ev.frame.id);
    }
    void finish(TimePoint now) override { finished = now; }
  };
  Collector coll;
  tap.add(&coll);

  // First two attempts of the first frame are corrupted.
  ScriptedFaults faults;
  faults.add_rule([](const FaultContext& ctx) { return ctx.attempt <= 2; });
  bus.set_fault_model(&faults);

  CanFrame f1;
  f1.id = 0x200;
  f1.dlc = 1;
  CanFrame f2;
  f2.id = 0x100;
  f2.dlc = 1;
  ASSERT_TRUE(a.submit(f1, TxMode::kAutoRetransmit).has_value());
  sim.schedule_at(at_ms(5), [&] {
    ASSERT_TRUE(b.submit(f2, TxMode::kAutoRetransmit).has_value());
  });
  sim.run();
  tap.finish(sim.now());

  // Two successful deliveries in completion order; the corrupted attempts
  // (two per frame) were filtered but still counted by the bus.
  EXPECT_EQ(tap.deliveries(), 2u);
  ASSERT_EQ(coll.ids.size(), 2u);
  EXPECT_EQ(coll.ids[0], 0x200u);
  EXPECT_EQ(coll.ids[1], 0x100u);
  EXPECT_EQ(coll.finished, sim.now());
  EXPECT_EQ(bus.frames_error(), 4u);
}

}  // namespace
}  // namespace rtec
