#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "analysis/topology.hpp"
#include "analysis/verify.hpp"
#include "sched/wctt.hpp"

// Topology parser + RTEC-T rule engine tests: one positive (rule fires)
// and one negative (near-identical clean input stays silent) case per
// rule, the composed end-to-end bound arithmetic, and the golden JSON
// rendering of topology-tagged findings (the rtec-lint document must stay
// byte-identical, the rtec-verify document adds segment/link/route keys).

namespace rtec::analysis {
namespace {

using namespace rtec::literals;

TopologySpec parse_ok(const std::string& text) {
  const auto spec = parse_topology_spec(text);
  EXPECT_TRUE(spec.has_value()) << (spec ? "" : spec.error().message);
  return spec ? *spec : TopologySpec{};
}

std::string parse_error(const std::string& text) {
  const auto spec = parse_topology_spec(text);
  EXPECT_FALSE(spec.has_value());
  return spec ? "" : spec.error().message;
}

/// Rules only, no per-segment calendar lint (those tests target one rule).
LintReport verify_text(const std::string& text, VerifyOptions options = {}) {
  options.per_segment_lint = false;
  TopologyInput input;
  input.spec = parse_ok(text);
  return verify_topology(input, options);
}

int count_rule(const LintReport& r, Rule rule) {
  return static_cast<int>(
      std::count_if(r.findings.begin(), r.findings.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

bool has_rule(const LintReport& r, Rule rule) {
  return count_rule(r, rule) > 0;
}

const Finding* find_rule(const LintReport& r, Rule rule) {
  for (const Finding& f : r.findings)
    if (f.rule == rule) return &f;
  return nullptr;
}

/// Two segments, one well-behaved gateway link, one bridged route: the
/// clean baseline every rule test perturbs.
constexpr const char* kCleanPair = R"(topology v1
segment id=0 precision_ns=33000
segment id=1 precision_ns=33000
link id=0 a=0 b=1 latency_us=250
bridge link=0 etag=40
route etag=40 from=0 to=1 period_us=7000 hop_deadline_us=10000 e2e_deadline_us=30000
)";

// ---------------------------------------------------------------- parser

TEST(TopologyParse, RoundTripsEveryDirective) {
  const TopologySpec spec = parse_ok(R"(topology v1
# comment survives anywhere
segment id=3 calendar=seg3.cal precision_ns=20000
segment id=5
link id=2 a=3 b=5 latency_us=300
bridge link=2 etag=44   # trailing comment
route etag=44 from=3 to=5 period_us=5000 hop_deadline_us=8000 e2e_deadline_us=20000 dlc=4
stream segment=5 class=srt node=9 etag=21 dlc=2 period_us=4000 deadline_us=3000
stream segment=3 class=nrt node=8 etag=22 priority=251
)");
  ASSERT_EQ(spec.segments.size(), 2u);
  EXPECT_EQ(spec.segments[0].id, 3);
  EXPECT_EQ(spec.segments[0].calendar, "seg3.cal");
  ASSERT_TRUE(spec.segments[0].precision.has_value());
  EXPECT_EQ(spec.segments[0].precision->ns(), 20'000);
  EXPECT_FALSE(spec.segments[1].precision.has_value());
  ASSERT_EQ(spec.links.size(), 1u);
  EXPECT_EQ(spec.links[0].latency, 300_us);
  ASSERT_EQ(spec.bridges.size(), 1u);
  EXPECT_EQ(spec.bridges[0].etag, 44);
  ASSERT_EQ(spec.routes.size(), 1u);
  EXPECT_EQ(spec.routes[0].dlc, 4);
  EXPECT_EQ(spec.routes[0].hop_deadline, 8_ms);
  ASSERT_EQ(spec.streams.size(), 2u);
  EXPECT_EQ(spec.streams[0].segment, 5);
  EXPECT_EQ(spec.streams[0].stream.deadline, 3_ms);
  EXPECT_EQ(spec.streams[1].stream.priority, 251);
  EXPECT_NE(spec.segment_by_id(5), nullptr);
  EXPECT_EQ(spec.segment_by_id(4), nullptr);
  EXPECT_NE(spec.link_by_id(2), nullptr);
}

TEST(TopologyParse, RejectsMalformedInput) {
  EXPECT_NE(parse_error("").find("empty"), std::string::npos);
  EXPECT_NE(parse_error("topology v2\n").find("version"), std::string::npos);
  EXPECT_NE(parse_error("segment id=0\n").find("header"), std::string::npos);
  EXPECT_NE(parse_error("topology v1\ntopology v1\n").find("duplicate"),
            std::string::npos);
  EXPECT_NE(parse_error("topology v1\nwarp id=0\n").find("unknown directive"),
            std::string::npos);
  // Unknown key, duplicate key, missing key, out-of-range value.
  EXPECT_FALSE(
      parse_error("topology v1\nsegment id=0 bogus=1\n").empty());
  EXPECT_FALSE(
      parse_error("topology v1\nlink id=0 id=1 a=0 b=1 latency_us=5\n")
          .empty());
  EXPECT_FALSE(parse_error("topology v1\nlink id=0 a=0 b=1\n").empty());
  EXPECT_FALSE(
      parse_error("topology v1\nbridge link=0 etag=99999\n").empty());
  EXPECT_FALSE(parse_error("topology v1\nroute etag=4 from=0 to=1 "
                           "period_us=0 hop_deadline_us=1 e2e_deadline_us=1\n")
                   .empty());
  // Stream field rules are shared with the scenario format.
  EXPECT_FALSE(parse_error("topology v1\nstream segment=0 class=srt node=1 "
                           "etag=9 priority=3 period_us=100\n")
                   .empty());
  EXPECT_FALSE(parse_error("topology v1\nstream segment=0 class=hrt node=1 "
                           "etag=9 period_us=100\n")
                   .empty());
}

// ------------------------------------------------------- T001 structure

TEST(VerifyTopology, CleanPairHasNoFindings) {
  const LintReport r = verify_text(kCleanPair);
  EXPECT_TRUE(r.findings.empty());
}

TEST(VerifyTopology, T001FlagsEveryStructuralDefect) {
  const LintReport r = verify_text(R"(topology v1
segment id=0
segment id=0
segment id=1
link id=0 a=0 b=1 latency_us=250
link id=0 a=0 b=1 latency_us=250
link id=1 a=1 b=1 latency_us=250
link id=2 a=1 b=7 latency_us=250
bridge link=9 etag=40
bridge link=0 etag=41
bridge link=0 etag=41
route etag=41 from=0 to=0 period_us=1000 hop_deadline_us=1000 e2e_deadline_us=1000
route etag=41 from=0 to=8 period_us=1000 hop_deadline_us=1000 e2e_deadline_us=9000
stream segment=6 class=srt node=1 etag=20 period_us=1000
)");
  // duplicate segment, duplicate link, self-loop, dangling link endpoint,
  // dangling bridge, duplicate bridge, self-route, dangling route
  // endpoint, dangling stream segment.
  EXPECT_GE(count_rule(r, Rule::kTopologyConfig), 9);
}

TEST(VerifyTopology, T001EmptyTopologyIsAnError) {
  const LintReport r = verify_text("topology v1\n");
  EXPECT_TRUE(has_rule(r, Rule::kTopologyConfig));
}

TEST(VerifyTopology, T001WarnsOnCalendarForUndeclaredSegment) {
  TopologyInput input;
  input.spec = parse_ok(kCleanPair);
  input.calendars.emplace(7, CalendarImage{});
  VerifyOptions options;
  options.per_segment_lint = false;
  const LintReport r = verify_topology(input, options);
  const Finding* f = find_rule(r, Rule::kTopologyConfig);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kWarning);
  EXPECT_EQ(f->segment, 7);
}

// ----------------------------------------------------------- T002 cycles

TEST(VerifyTopology, T002FlagsForwardingLoop) {
  // Triangle 0-1-2 all bridging etag 40: one closing edge.
  const LintReport r = verify_text(R"(topology v1
segment id=0
segment id=1
segment id=2
link id=0 a=0 b=1 latency_us=250
link id=1 a=1 b=2 latency_us=250
link id=2 a=2 b=0 latency_us=250
bridge link=0 etag=40
bridge link=1 etag=40
bridge link=2 etag=40
)");
  EXPECT_EQ(count_rule(r, Rule::kRoutingCycle), 1);
  EXPECT_EQ(find_rule(r, Rule::kRoutingCycle)->severity, Severity::kError);
}

TEST(VerifyTopology, T002FlagsParallelLinksOnOneEtag) {
  const LintReport r = verify_text(R"(topology v1
segment id=0
segment id=1
link id=0 a=0 b=1 latency_us=250
link id=1 a=0 b=1 latency_us=250
bridge link=0 etag=40
bridge link=1 etag=40
)");
  EXPECT_TRUE(has_rule(r, Rule::kRoutingCycle));
}

TEST(VerifyTopology, T002SilentOnTreeTopology) {
  // Same etag on two links of a chain: a tree, not a loop. The triangle
  // with *distinct* etags per link is loop-free too.
  const LintReport chain = verify_text(R"(topology v1
segment id=0
segment id=1
segment id=2
link id=0 a=0 b=1 latency_us=250
link id=1 a=1 b=2 latency_us=250
bridge link=0 etag=40
bridge link=1 etag=40
)");
  EXPECT_FALSE(has_rule(chain, Rule::kRoutingCycle));
  const LintReport triangle = verify_text(R"(topology v1
segment id=0
segment id=1
segment id=2
link id=0 a=0 b=1 latency_us=250
link id=1 a=1 b=2 latency_us=250
link id=2 a=2 b=0 latency_us=250
bridge link=0 etag=40
bridge link=1 etag=41
bridge link=2 etag=42
)");
  EXPECT_FALSE(has_rule(triangle, Rule::kRoutingCycle));
}

// ----------------------------------------------- T003 + bounds + T009

TEST(VerifyTopology, T003FlagsUnreachableSubscriber) {
  const LintReport r = verify_text(R"(topology v1
segment id=0
segment id=1
segment id=2
link id=0 a=0 b=1 latency_us=250
bridge link=0 etag=40
route etag=40 from=0 to=2 period_us=7000 hop_deadline_us=1000 e2e_deadline_us=30000
route etag=41 from=0 to=1 period_us=7000 hop_deadline_us=1000 e2e_deadline_us=30000
)");
  // Route 0: etag 40 only bridges 0-1, segment 2 unreachable. Route 1:
  // etag 41 not bridged at all.
  EXPECT_EQ(count_rule(r, Rule::kUnreachableSubscriber), 2);
  const LintReport clean = verify_text(kCleanPair);
  EXPECT_FALSE(has_rule(clean, Rule::kUnreachableSubscriber));
}

TEST(RouteBounds, ComposesHopDeadlinesPrecisionAndLatency) {
  TopologyInput input;
  input.spec = parse_ok(R"(topology v1
segment id=0 precision_ns=33000
segment id=1
segment id=2 precision_ns=20000
link id=0 a=0 b=1 latency_us=250
link id=1 a=1 b=2 latency_us=400
bridge link=0 etag=40
bridge link=1 etag=40
route etag=40 from=0 to=2 period_us=7000 hop_deadline_us=10000 e2e_deadline_us=40000
route etag=41 from=0 to=2 period_us=7000 hop_deadline_us=10000 e2e_deadline_us=40000
)");
  const auto bounds = route_bounds(input);
  ASSERT_EQ(bounds.size(), 2u);
  ASSERT_TRUE(bounds[0].computable);
  // 3 hops of (10 ms + Π) with Π = 33 µs, 0, 20 µs; links 250 + 400 µs.
  EXPECT_EQ(bounds[0].bound.ns(),
            3 * 10'000'000 + 33'000 + 20'000 + 250'000 + 400'000);
  EXPECT_EQ(bounds[0].segment_ids, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(bounds[0].link_ids, (std::vector<int>{0, 1}));
  EXPECT_FALSE(bounds[1].computable);  // etag 41 never bridged
}

TEST(VerifyTopology, T009FlagsBoundAboveDeadline) {
  std::string text{kCleanPair};
  const std::string from = "e2e_deadline_us=30000";
  text.replace(text.find(from), from.size(), "e2e_deadline_us=10000");
  // Bound = 2*(10 ms + 33 µs) + 250 µs ≈ 20.3 ms > 10 ms.
  const LintReport r = verify_text(text);
  const Finding* f = find_rule(r, Rule::kE2eDeadline);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kError);
  EXPECT_EQ(f->route, 0);
  EXPECT_FALSE(has_rule(verify_text(kCleanPair), Rule::kE2eDeadline));
}

// ------------------------------------------------------------ T004 clash

TEST(VerifyTopology, T004FlagsBridgedEtagCollidingWithLocalStream) {
  std::string text{kCleanPair};
  text += "stream segment=1 class=srt node=3 etag=40 period_us=5000\n";
  const LintReport r = verify_text(text);
  const Finding* f = find_rule(r, Rule::kEtagClash);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kError);
  EXPECT_EQ(f->segment, 1);
}

TEST(VerifyTopology, T004FlagsBridgedEtagCollidingWithHrtSlot) {
  TopologyInput input;
  input.spec = parse_ok(kCleanPair);
  CalendarImage image;
  ImageSlot slot;
  slot.spec.lst_offset = 200_us;
  slot.spec.etag = 40;  // the bridged etag
  image.slots.push_back(slot);
  input.calendars.emplace(1, image);
  VerifyOptions options;
  options.per_segment_lint = false;
  const LintReport r = verify_topology(input, options);
  const Finding* f = find_rule(r, Rule::kEtagClash);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kError);
  EXPECT_EQ(f->segment, 1);
}

TEST(VerifyTopology, T004WarnsOnBridgedInfrastructureEtag) {
  std::string text{kCleanPair};
  text += "bridge link=0 etag=0\n";  // kSyncRefEtag
  const LintReport r = verify_text(text);
  bool warned = false;
  for (const Finding& f : r.findings)
    if (f.rule == Rule::kEtagClash && f.severity == Severity::kWarning)
      warned = true;
  EXPECT_TRUE(warned);
}

TEST(VerifyTopology, T004SilentOnDisjointEtags) {
  std::string text{kCleanPair};
  text += "stream segment=1 class=srt node=3 etag=41 period_us=5000\n";
  EXPECT_FALSE(has_rule(verify_text(text), Rule::kEtagClash));
}

// -------------------------------------------------------- T005 precision

TEST(VerifyTopology, T005WarnsOnOneSidedPrecision) {
  std::string text{kCleanPair};
  const std::string from = "segment id=1 precision_ns=33000";
  text.replace(text.find(from), from.size(), "segment id=1");
  const LintReport r = verify_text(text);
  const Finding* f = find_rule(r, Rule::kPrecisionMismatch);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kWarning);
  EXPECT_EQ(f->segment, 1);
}

TEST(VerifyTopology, T005FlagsLatencyBelowClockDisagreement) {
  std::string text{kCleanPair};
  const std::string from = "latency_us=250";
  text.replace(text.find(from), from.size(), "latency_us=20");
  const LintReport r = verify_text(text);
  const Finding* f = find_rule(r, Rule::kPrecisionMismatch);
  ASSERT_NE(f, nullptr);  // 20 µs < Π = 33 µs
  EXPECT_EQ(f->severity, Severity::kError);
  EXPECT_FALSE(has_rule(verify_text(kCleanPair), Rule::kPrecisionMismatch));
}

// -------------------------------------------------------- T006 lookahead

TEST(VerifyTopology, T006FlagsZeroAndTinyForwardLatency) {
  std::string zero{kCleanPair};
  const std::string from = "latency_us=250";
  zero.replace(zero.find(from), from.size(), "latency_us=0");
  const LintReport r = verify_text(zero);
  const Finding* f = find_rule(r, Rule::kSerialLookahead);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kError);

  std::string tiny{kCleanPair};
  tiny.replace(tiny.find(from), from.size(), "latency_us=5");
  bool warned = false;
  for (const Finding& g : verify_text(tiny).findings)
    if (g.rule == Rule::kSerialLookahead && g.severity == Severity::kWarning) {
      warned = true;
      // The warning is scoped to the link's endpoints, not the whole
      // engine: under per-link horizons only the two adjacent segments
      // degenerate to near-serial epochs.
      EXPECT_NE(g.message.find("per-link lookahead"), std::string::npos)
          << g.message;
      EXPECT_NE(g.message.find("segments 0 and 1"), std::string::npos)
          << g.message;
    }
  EXPECT_TRUE(warned);

  EXPECT_FALSE(has_rule(verify_text(kCleanPair), Rule::kSerialLookahead));
}

// --------------------------------------- T007/T008/T010 bandwidth budget

/// Clean pair with the route period shrunk to saturate a 1 Mbit/s bus
/// (worst-case 8-byte extended frame ≈ 150 µs).
std::string overloaded_pair() {
  std::string text{kCleanPair};
  const std::string from =
      "route etag=40 from=0 to=1 period_us=7000 hop_deadline_us=10000 "
      "e2e_deadline_us=30000";
  const std::string to =
      "route etag=40 from=0 to=1 period_us=150 hop_deadline_us=150 "
      "e2e_deadline_us=30000";
  text.replace(text.find(from), from.size(), to);
  return text;
}

TEST(VerifyTopology, T007FlagsSegmentOverload) {
  const LintReport r = verify_text(overloaded_pair());
  EXPECT_EQ(count_rule(r, Rule::kSegmentOverload), 2);  // both path segments
  EXPECT_EQ(find_rule(r, Rule::kSegmentOverload)->severity, Severity::kError);
  EXPECT_FALSE(has_rule(verify_text(kCleanPair), Rule::kSegmentOverload));
}

TEST(VerifyTopology, T007WarnsAboveThresholdWithoutOverload) {
  std::string text{kCleanPair};
  // ~10 local streams of C/T ≈ 150/2000 on segment 0 → ≈ 75% demand.
  for (int i = 0; i < 10; ++i)
    text += "stream segment=0 class=srt node=" + std::to_string(3 + i) +
            " etag=" + std::to_string(20 + i) + " period_us=2000\n";
  VerifyOptions tight;
  tight.warn_utilization = 0.5;
  const LintReport r = verify_text(text, tight);
  const Finding* f = find_rule(r, Rule::kSegmentOverload);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kWarning);
  EXPECT_EQ(f->segment, 0);
  // Default 95% threshold: the same demand is silent.
  EXPECT_FALSE(has_rule(verify_text(text), Rule::kSegmentOverload));
}

TEST(VerifyTopology, T008FlagsGatewayDirectionOverload) {
  const LintReport r = verify_text(overloaded_pair());
  const Finding* f = find_rule(r, Rule::kGatewayOverload);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kError);
  EXPECT_EQ(f->segment, 1);  // destination of the forwarded demand
  EXPECT_EQ(f->link, 0);
  EXPECT_FALSE(has_rule(verify_text(kCleanPair), Rule::kGatewayOverload));
}

TEST(VerifyTopology, T008AccountsHrtReservedShareOfDestination) {
  // Forwarded demand ≈ 31% fits an empty destination but not one whose
  // calendar reserves ~75% of the round for HRT windows.
  std::string text{kCleanPair};
  const std::string from = "period_us=7000 hop_deadline_us=10000";
  text.replace(text.find(from), from.size(),
               "period_us=500 hop_deadline_us=10000");
  TopologyInput input;
  input.spec = parse_ok(text);
  VerifyOptions options;
  options.per_segment_lint = false;
  EXPECT_FALSE(
      has_rule(verify_topology(input, options), Rule::kGatewayOverload));

  CalendarImage image;  // 10 ms round, ~7.5 ms of reserved windows
  for (int i = 0; i < 15; ++i) {
    ImageSlot slot;
    slot.spec.lst_offset = Duration::microseconds(200 + i * 650);
    slot.spec.dlc = 8;
    slot.spec.fault.omission_degree = 1;
    slot.spec.etag = static_cast<Etag>(10 + i);
    image.slots.push_back(slot);
  }
  input.calendars.emplace(1, image);
  const LintReport r = verify_topology(input, options);
  const Finding* f = find_rule(r, Rule::kGatewayOverload);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->segment, 1);
}

TEST(VerifyTopology, T010FlagsInfeasibleComposedSrtSet) {
  const LintReport r = verify_text(overloaded_pair());
  const Finding* f = find_rule(r, Rule::kHopInfeasible);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kWarning);
  EXPECT_FALSE(has_rule(verify_text(kCleanPair), Rule::kHopInfeasible));
}

// --------------------------------------------- T012 probabilistic promise

/// Noisy two-segment chain whose route promises a 1e-9 per-instance miss
/// budget it cannot keep under a 500 us hop deadline at p = 0.2.
constexpr const char* kNoisyPair = R"(topology v1
segment id=0 precision_ns=33000 fault_rate=0.2
segment id=1 precision_ns=33000 fault_rate=0.2
link id=0 a=0 b=1 latency_us=250
bridge link=0 etag=40
route etag=40 from=0 to=1 period_us=7000 hop_deadline_us=500 e2e_deadline_us=30000 dlc=8 miss_target=1e-9
)";

TEST(VerifyTopology, T012FlagsInfeasibleMissTarget) {
  VerifyOptions options;
  options.probabilistic = true;
  const LintReport r = verify_text(kNoisyPair, options);
  const Finding* f = find_rule(r, Rule::kProbE2eMiss);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kError);
  EXPECT_NE(f->message.find("miss probability"), std::string::npos);
}

TEST(VerifyTopology, T012IsOptIn) {
  // The identical infeasible promise stays silent without --prob.
  EXPECT_FALSE(has_rule(verify_text(kNoisyPair), Rule::kProbE2eMiss));
}

TEST(VerifyTopology, T012SilentOnKeptPromise) {
  // Same chain with a sane hop deadline: miss ≈ composed p^j tails ≪ 1e-3.
  std::string kept{kNoisyPair};
  const std::string::size_type at = kept.find("hop_deadline_us=500");
  ASSERT_NE(at, std::string::npos);
  kept.replace(at, 19, "hop_deadline_us=10000");
  const std::string::size_type tgt = kept.find("miss_target=1e-9");
  ASSERT_NE(tgt, std::string::npos);
  kept.replace(tgt, 16, "miss_target=1e-3");
  VerifyOptions options;
  options.probabilistic = true;
  EXPECT_FALSE(has_rule(verify_text(kept, options), Rule::kProbE2eMiss));
}

TEST(VerifyTopology, T012IgnoresRoutesWithoutTarget) {
  std::string silent{kNoisyPair};
  const std::string::size_type at = silent.find(" miss_target=1e-9");
  ASSERT_NE(at, std::string::npos);
  silent.erase(at, 17);
  VerifyOptions options;
  options.probabilistic = true;
  // Still infeasible, but nothing was promised — the numbers are only
  // reported (route_miss_bounds), never gated.
  EXPECT_FALSE(has_rule(verify_text(silent, options), Rule::kProbE2eMiss));
}

TEST(RouteMissBounds, ReportsEveryResolvableRoute) {
  TopologyInput input;
  input.spec = parse_ok(kNoisyPair);
  const std::vector<RouteMiss> misses = route_miss_bounds(input);
  ASSERT_EQ(misses.size(), 1u);
  EXPECT_TRUE(misses[0].computable);
  EXPECT_EQ(misses[0].hop_miss.size(), 2u);  // both segments visited
  EXPECT_GT(misses[0].e2e_miss, 0.01);       // ~0.06 at this deadline
  EXPECT_LT(misses[0].e2e_miss, 1.0);
  // The composed number never undercuts the union bound of the hop
  // probabilities it reports (tail epsilon only ever adds).
  EXPECT_GE(misses[0].e2e_miss,
            compose_route_miss(misses[0].hop_miss) - 1e-12);
}

TEST(TopologyParse, FaultRateAndMissTargetRoundTrip) {
  const TopologySpec spec = parse_ok(R"(topology v1
segment id=0 fault_rate=0.25
segment id=1
route etag=4 from=0 to=1 period_us=100 hop_deadline_us=100 e2e_deadline_us=100 miss_target=1e-6
route etag=5 from=0 to=1 period_us=100 hop_deadline_us=100 e2e_deadline_us=100
)");
  ASSERT_EQ(spec.segments.size(), 2u);
  EXPECT_DOUBLE_EQ(spec.segments[0].fault_rate, 0.25);
  EXPECT_DOUBLE_EQ(spec.segments[1].fault_rate, 0.0);
  ASSERT_EQ(spec.routes.size(), 2u);
  ASSERT_TRUE(spec.routes[0].miss_target.has_value());
  EXPECT_DOUBLE_EQ(*spec.routes[0].miss_target, 1e-6);
  EXPECT_FALSE(spec.routes[1].miss_target.has_value());
}

TEST(TopologyParse, RejectsMalformedProbabilisticKeys) {
  // Out of range (a certain fault leaves nothing schedulable), not a
  // number, non-finite, and trailing garbage.
  EXPECT_FALSE(
      parse_error("topology v1\nsegment id=0 fault_rate=1.0\n").empty());
  EXPECT_FALSE(
      parse_error("topology v1\nsegment id=0 fault_rate=-0.1\n").empty());
  EXPECT_FALSE(
      parse_error("topology v1\nsegment id=0 fault_rate=abc\n").empty());
  EXPECT_FALSE(
      parse_error("topology v1\nsegment id=0 fault_rate=inf\n").empty());
  EXPECT_FALSE(
      parse_error("topology v1\nsegment id=0 fault_rate=0.5x\n").empty());
  EXPECT_FALSE(parse_error("topology v1\nroute etag=4 from=0 to=1 "
                           "period_us=1 hop_deadline_us=1 e2e_deadline_us=1 "
                           "miss_target=1.5\n")
                   .empty());
}

// ------------------------------------------------ calendar lint merging

TEST(VerifyTopology, MergesPerSegmentCalendarLintFindings) {
  TopologyInput input;
  input.spec = parse_ok(kCleanPair);
  CalendarImage broken;
  broken.config.bus.bitrate_bps = 0;  // RTEC-C009 territory
  input.calendars.emplace(1, broken);
  VerifyOptions options;  // per_segment_lint defaults on
  const LintReport r = verify_topology(input, options);
  const Finding* f = find_rule(r, Rule::kBadConfig);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->segment, 1);
}

// -------------------------------------------------------- JSON rendering

TEST(VerifyReport, GoldenJsonWithTopologyCoordinates) {
  LintReport report;
  Finding f;
  f.rule = Rule::kE2eDeadline;
  f.severity = Severity::kError;
  f.route = 2;
  f.line = 12;
  f.message = "bound exceeds deadline";
  report.add(f);
  Finding g;
  g.rule = Rule::kGatewayOverload;
  g.severity = Severity::kWarning;
  g.segment = 3;
  g.link = 1;
  g.message = "demand above threshold";
  report.add(g);

  const std::string expected = R"({
  "tool": "rtec-verify",
  "format": 1,
  "counts": {"errors": 1, "warnings": 1},
  "verdict": "reject",
  "findings": [
    {
      "rule": "RTEC-T009",
      "name": "e2e-deadline",
      "severity": "error",
      "route": 2,
      "line": 12,
      "message": "bound exceeds deadline"
    },
    {
      "rule": "RTEC-T008",
      "name": "gateway-overload",
      "severity": "warning",
      "segment": 3,
      "link": 1,
      "message": "demand above threshold"
    }
  ]
}
)";
  EXPECT_EQ(report_to_json(report, "rtec-verify"), expected);
}

TEST(VerifyReport, LintDocumentShapeIsUnchanged) {
  // A finding without topology coordinates must render exactly as before
  // the T series existed — same keys, same default tool name.
  LintReport report;
  Finding f;
  f.rule = Rule::kWindowOverlap;
  f.severity = Severity::kError;
  f.slot = 1;
  f.other_slot = 2;
  f.message = "overlap";
  report.add(f);
  const std::string expected = R"({
  "tool": "rtec-lint",
  "format": 1,
  "counts": {"errors": 1, "warnings": 0},
  "verdict": "reject",
  "findings": [
    {
      "rule": "RTEC-C002",
      "name": "window-overlap",
      "severity": "error",
      "slot": 1,
      "other_slot": 2,
      "message": "overlap"
    }
  ]
}
)";
  EXPECT_EQ(report_to_json(report), expected);
}

}  // namespace
}  // namespace rtec::analysis
