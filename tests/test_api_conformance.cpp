#include <gtest/gtest.h>

#include <type_traits>

#include "core/gateway.hpp"
#include "core/hrtec.hpp"
#include "core/nrtec.hpp"
#include "core/scenario.hpp"
#include "core/srtec.hpp"

/// Compile-time conformance with the paper's API declarations (Figs 1–2).
/// Every method the figures list must exist with the documented shape; the
/// static_asserts make accidental API breaks a compile error in this test,
/// and the runtime bodies double as executable documentation.

namespace rtec {
namespace {

using literals::operator""_ms;

// ---- Fig. 1: class hrtec ---------------------------------------------------
// int announce(subject, attribute_list, exception_handler);
static_assert(std::is_invocable_r_v<Expected<void, ChannelError>,
                                    decltype(&Hrtec::announce), Hrtec&,
                                    Subject, const AttributeList&,
                                    ExceptionHandler>);
// int publish(event);
static_assert(std::is_invocable_r_v<Expected<void, ChannelError>,
                                    decltype(&Hrtec::publish), Hrtec&, Event>);
// int subscribe(subject, attribute_list, event_queue, not_handler,
//               exception_handler);  [event_queue -> attr::QueueCapacity]
static_assert(std::is_invocable_r_v<Expected<void, ChannelError>,
                                    decltype(&Hrtec::subscribe), Hrtec&,
                                    Subject, const AttributeList&,
                                    NotificationHandler, ExceptionHandler>);
// int cancelSubscription(void);
static_assert(std::is_invocable_r_v<Expected<void, ChannelError>,
                                    decltype(&Hrtec::cancelSubscription),
                                    Hrtec&>);

// ---- Fig. 2: class srtec ---------------------------------------------------
static_assert(std::is_invocable_r_v<Expected<void, ChannelError>,
                                    decltype(&Srtec::announce), Srtec&,
                                    Subject, const AttributeList&,
                                    ExceptionHandler>);
// Fig. 2 additionally lists cancelPublication().
static_assert(std::is_invocable_r_v<Expected<void, ChannelError>,
                                    decltype(&Srtec::cancelPublication),
                                    Srtec&>);
static_assert(std::is_invocable_r_v<Expected<void, ChannelError>,
                                    decltype(&Srtec::publish), Srtec&, Event>);
static_assert(std::is_invocable_r_v<Expected<void, ChannelError>,
                                    decltype(&Srtec::subscribe), Srtec&,
                                    Subject, const AttributeList&,
                                    NotificationHandler, ExceptionHandler>);
static_assert(std::is_invocable_r_v<Expected<void, ChannelError>,
                                    decltype(&Srtec::cancelSubscription),
                                    Srtec&>);

// ---- NRTEC (§2.2.3: same interface shape, fixed priority + fragmentation)
static_assert(std::is_invocable_r_v<Expected<void, ChannelError>,
                                    decltype(&Nrtec::announce), Nrtec&,
                                    Subject, const AttributeList&,
                                    ExceptionHandler>);
static_assert(std::is_invocable_r_v<Expected<void, ChannelError>,
                                    decltype(&Nrtec::publish), Nrtec&, Event>);

// ---- getEvent(): the notification-handler retrieval primitive (§2.2.1)
static_assert(std::is_invocable_r_v<std::optional<Event>,
                                    decltype(&Hrtec::getEvent), Hrtec&>);
static_assert(std::is_invocable_r_v<std::optional<Event>,
                                    decltype(&Srtec::getEvent), Srtec&>);
static_assert(std::is_invocable_r_v<std::optional<Event>,
                                    decltype(&Nrtec::getEvent), Nrtec&>);

// Channel objects are resources, not values.
static_assert(!std::is_copy_constructible_v<Hrtec>);
static_assert(!std::is_copy_constructible_v<Srtec>);
static_assert(!std::is_copy_constructible_v<Nrtec>);
static_assert(!std::is_copy_constructible_v<Scenario>);
static_assert(!std::is_copy_constructible_v<Gateway>);

// Events are plain values.
static_assert(std::is_copy_constructible_v<Event>);
static_assert(std::is_move_constructible_v<Event>);

TEST(ApiConformance, ErrorReturnsAreInspectable) {
  // The paper's `int` returns are modernized to Expected<void, ChannelError>;
  // every failure is a named, printable code.
  Scenario scn;
  Node& n = scn.add_node(1);
  Hrtec h{n.middleware()};
  const auto r = h.publish(Event{});
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error(), ChannelError::kNotAnnounced);
  EXPECT_EQ(to_string(r.error()), "not_announced");
}

TEST(ApiConformance, EveryChannelErrorHasAName) {
  for (int e = 0; e <= static_cast<int>(ChannelError::kQueueOverflow); ++e) {
    EXPECT_NE(to_string(static_cast<ChannelError>(e)), "unknown")
        << "code " << e;
  }
}

TEST(ApiConformance, AttributeListTypedLookup) {
  AttributeList attrs{attr::Periodic{10_ms}, attr::MessageSize{4},
                      attr::Reliability{2}};
  ASSERT_TRUE(attrs.has<attr::Periodic>());
  EXPECT_EQ(attrs.get<attr::Periodic>()->period.ns(), (10_ms).ns());
  EXPECT_EQ(attrs.get<attr::MessageSize>()->dlc, 4);
  EXPECT_FALSE(attrs.has<attr::Fragmentation>());
  // First-of-type wins on duplicates.
  attrs.add(attr::MessageSize{2});
  EXPECT_EQ(attrs.get<attr::MessageSize>()->dlc, 4);
  EXPECT_EQ(attrs.size(), 4u);
}

}  // namespace
}  // namespace rtec
