#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/hrtec.hpp"
#include "core/nrtec.hpp"
#include "core/scenario.hpp"
#include "core/srtec.hpp"
#include "sched/planner.hpp"
#include "time/periodic.hpp"
#include "util/random.hpp"
#include "util/task_pool.hpp"

/// Scenario fuzzing: randomly generated networks (topology, calendar,
/// traffic mix, clock quality, fault rate) run for one simulated second;
/// only *universal* invariants are asserted — the properties the protocol
/// guarantees regardless of configuration:
///   I1  every periodic HRT instance is delivered or reported missing
///       (never silently lost), and with faults within the provisioned
///       omission degree, never missing at p=0;
///   I2  deliveries of one HRT stream are exactly one effective period
///       apart on the subscriber clock (zero middleware jitter);
///   I3  the simulation is deterministic and crash-free.

namespace rtec {
namespace {

using literals::operator""_ns;
using literals::operator""_us;
using literals::operator""_ms;

class ScenarioFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScenarioFuzz, RandomScenarioKeepsUniversalInvariants) {
  Rng rng{GetParam()};
  TaskPool tasks;

  const int hrt_streams = static_cast<int>(rng.uniform_int(1, 4));
  const int srt_streams = static_cast<int>(rng.uniform_int(0, 4));
  const bool with_faults = rng.bernoulli(0.5);
  const double p = with_faults ? 0.02 : 0.0;
  const Duration base_period =
      Duration::milliseconds(rng.uniform_int(10, 25));

  // Plan the calendar for the HRT streams (k=2 so p=2% is deeply inside
  // the assumption: P(3 consecutive losses) = 8e-6 per instance).
  std::vector<HrtStreamRequest> reqs;
  for (int i = 0; i < hrt_streams; ++i) {
    HrtStreamRequest r;
    r.etag = static_cast<Etag>(kFirstApplicationEtag + i);
    r.publisher = static_cast<NodeId>(1 + i);
    r.dlc = static_cast<int>(rng.uniform_int(1, 8));
    r.fault.omission_degree = 2;
    r.period = base_period * rng.uniform_int(1, 2);
    reqs.push_back(r);
  }
  const auto plan = plan_calendar(reqs, Calendar::Config{}, /*sync master*/ 30);
  ASSERT_TRUE(plan.has_value());

  Scenario::Config cfg;
  cfg.calendar.round_length = plan->calendar.config().round_length;
  Scenario scn{cfg};
  std::vector<Node*> nodes;
  for (NodeId id = 1; id <= 30; ++id) {
    Node::ClockParams cp;
    cp.initial_offset = Duration::microseconds(rng.uniform_int(-20, 20));
    cp.drift_ppb = rng.uniform_int(-100'000, 100'000);
    cp.granularity = 1_us;
    nodes.push_back(&scn.add_node(id, cp));
  }
  Duration sync_lst;
  for (std::size_t i = 0; i < plan->calendar.size(); ++i) {
    const SlotSpec& s = plan->calendar.slot(i);
    if (s.etag == kSyncRefEtag) {
      sync_lst = s.lst_offset;
      continue;
    }
    ASSERT_TRUE(scn.calendar().reserve(s).has_value());
  }
  ASSERT_TRUE(scn.enable_clock_sync(30, sync_lst).has_value());
  if (with_faults)
    scn.set_fault_model(std::make_unique<RandomOmissionFaults>(p, GetParam()));
  scn.run_for(cfg.calendar.round_length * 2);

  struct Stream {
    std::unique_ptr<Hrtec> pub;
    std::unique_ptr<Hrtec> sub;
    std::unique_ptr<PeriodicLocalTask> task;
    std::vector<TimePoint> deliveries;
    int missing = 0;
    Duration period;
  };
  std::vector<std::unique_ptr<Stream>> streams;
  for (int i = 0; i < hrt_streams; ++i) {
    auto st = std::make_unique<Stream>();
    const std::string name = "fuzz/h" + std::to_string(i);
    ASSERT_EQ(*scn.binding().bind(subject_of(name)),
              kFirstApplicationEtag + i);
    Node* pub_node = nodes[static_cast<std::size_t>(i)];
    Node* sub_node = nodes[static_cast<std::size_t>(10 + i)];
    st->pub = std::make_unique<Hrtec>(pub_node->middleware());
    st->sub = std::make_unique<Hrtec>(sub_node->middleware());
    st->period = reqs[static_cast<std::size_t>(i)].period;
    ASSERT_TRUE(st->pub->announce(subject_of(name),
                                  AttributeList{attr::Periodic{st->period}},
                                  nullptr)
                    .has_value());
    Stream* sp = st.get();
    Node* sn = sub_node;
    ASSERT_TRUE(st->sub->subscribe(subject_of(name),
                                   AttributeList{attr::QueueCapacity{8}},
                                   [sp, sn] {
                                     (void)sp->sub->getEvent();
                                     sp->deliveries.push_back(sn->clock().now());
                                   },
                                   [sp](const ExceptionInfo&) { ++sp->missing; })
                    .has_value());
    st->task = std::make_unique<PeriodicLocalTask>(
        pub_node->clock(), st->period, [sp] {
          Event e;
          e.content = {0xF0};
          (void)sp->pub->publish(std::move(e));
        });
    st->task->start();
    streams.push_back(std::move(st));
  }

  // Random SRT + NRT background.
  std::vector<std::unique_ptr<Srtec>> srt_pubs;
  for (int i = 0; i < srt_streams; ++i) {
    srt_pubs.push_back(std::make_unique<Srtec>(
        nodes[static_cast<std::size_t>(20 + i)]->middleware()));
    (void)srt_pubs.back()->announce(subject_of("fuzz/s" + std::to_string(i)),
                                    AttributeList{attr::Deadline{20_ms}},
                                    nullptr);
    Srtec* pub = srt_pubs.back().get();
    auto* loop = tasks.make();
    Scenario* sc = &scn;
    auto* r = &rng;
    *loop = [pub, sc, r, loop] {
      Event e;
      e.content.assign(static_cast<std::size_t>(r->uniform_int(0, 8)), 0x5A);
      (void)pub->publish(std::move(e));
      sc->sim().schedule_after(
          Duration::microseconds(r->uniform_int(500, 4000)),
          [loop] { (*loop)(); });
    };
    scn.sim().schedule_after(Duration::microseconds(rng.uniform_int(0, 3000)),
                             [loop] { (*loop)(); });
  }

  const Duration run = Duration::seconds(1);
  const TimePoint start = scn.sim().now();
  scn.run_for(run);

  for (int i = 0; i < hrt_streams; ++i) {
    const Stream& st = *streams[static_cast<std::size_t>(i)];
    // I1: conservation — every instance accounted for.
    const auto expected = static_cast<int>(run / st.period);
    const int accounted = static_cast<int>(st.deliveries.size()) + st.missing;
    EXPECT_GE(accounted, expected - 2) << "stream " << i;
    EXPECT_LE(accounted, expected + 2) << "stream " << i;
    if (!with_faults) {
      EXPECT_EQ(st.missing, 0) << "stream " << i << " (fault-free run)";
    }
    // I2: zero middleware jitter — consecutive deliveries exactly one
    // effective period apart on the subscriber's clock (clock-tick slack;
    // a missing instance shows as an integer multiple of the period).
    for (std::size_t d = 1; d < st.deliveries.size(); ++d) {
      const std::int64_t gap = (st.deliveries[d] - st.deliveries[d - 1]).ns();
      const std::int64_t period = st.period.ns();
      const std::int64_t mod = gap % period;
      const std::int64_t err = std::min(mod, period - mod);
      EXPECT_LE(err, 20'000) << "stream " << i << " delivery " << d;
    }
  }
  EXPECT_GT(scn.sim().now().ns(), start.ns());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScenarioFuzz,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707,
                                           808));

}  // namespace
}  // namespace rtec
