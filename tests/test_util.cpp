#include <gtest/gtest.h>

#include "util/bytes.hpp"
#include "util/crc15.hpp"
#include "util/expected.hpp"
#include "util/random.hpp"
#include "util/ring_buffer.hpp"
#include "util/static_vector.hpp"
#include "util/stats.hpp"
#include "util/task_pool.hpp"
#include "util/time_types.hpp"

namespace rtec {
namespace {

using literals::operator""_ns;
using literals::operator""_us;
using literals::operator""_ms;
using literals::operator""_s;

// ---------------------------------------------------------------- time types

TEST(TimeTypes, DurationFactoriesAgree) {
  EXPECT_EQ(Duration::microseconds(1).ns(), 1000);
  EXPECT_EQ(Duration::milliseconds(1).ns(), 1'000'000);
  EXPECT_EQ(Duration::seconds(1).ns(), 1'000'000'000);
  EXPECT_EQ((1_us).ns(), 1000);
  EXPECT_EQ((1_ms).ns(), 1'000'000);
  EXPECT_EQ((1_s).ns(), 1'000'000'000);
}

TEST(TimeTypes, Arithmetic) {
  const TimePoint t = TimePoint::origin() + 5_ms;
  EXPECT_EQ((t + 3_ms).ns(), 8'000'000);
  EXPECT_EQ((t - 2_ms).ns(), 3'000'000);
  EXPECT_EQ((t - TimePoint::origin()).ns(), 5'000'000);
  EXPECT_EQ((10_us * 3).ns(), 30'000);
  EXPECT_EQ(10_us / 2_us, 5);
  EXPECT_EQ((10_us % 3_us).ns(), 1000);
}

TEST(TimeTypes, Comparisons) {
  EXPECT_LT(1_us, 2_us);
  EXPECT_GT(TimePoint::max(), TimePoint::origin());
  EXPECT_EQ(Duration::zero(), 0_ns);
  EXPECT_LT(-Duration::microseconds(1), Duration::zero());
}

TEST(TimeTypes, ConversionsToFloating) {
  EXPECT_DOUBLE_EQ((1500_ns).us(), 1.5);
  EXPECT_DOUBLE_EQ((2500_us).ms(), 2.5);
  EXPECT_DOUBLE_EQ((1500_ms).sec(), 1.5);
}

// ------------------------------------------------------------------ expected

TEST(Expected, ValueAndError) {
  Expected<int, const char*> ok = 42;
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(*ok, 42);
  EXPECT_EQ(ok.value_or(-1), 42);

  Expected<int, const char*> bad = Unexpected{"nope"};
  ASSERT_FALSE(bad.has_value());
  EXPECT_STREQ(bad.error(), "nope");
  EXPECT_EQ(bad.value_or(-1), -1);
}

TEST(Expected, VoidSpecialization) {
  Expected<void, int> ok;
  EXPECT_TRUE(ok.has_value());
  Expected<void, int> bad = Unexpected{7};
  ASSERT_FALSE(bad.has_value());
  EXPECT_EQ(bad.error(), 7);
}

// -------------------------------------------------------------- static vector

TEST(StaticVector, PushPopAndIteration) {
  StaticVector<int, 4> v;
  EXPECT_TRUE(v.empty());
  v.push_back(1);
  v.push_back(2);
  v.emplace_back(3);
  EXPECT_EQ(v.size(), 3u);
  int sum = 0;
  for (int x : v) sum += x;
  EXPECT_EQ(sum, 6);
  v.pop_back();
  EXPECT_EQ(v.back(), 2);
}

TEST(StaticVector, TryPushRespectsCapacity) {
  StaticVector<int, 2> v;
  EXPECT_TRUE(v.try_push_back(1));
  EXPECT_TRUE(v.try_push_back(2));
  EXPECT_TRUE(v.full());
  EXPECT_FALSE(v.try_push_back(3));
  EXPECT_EQ(v.size(), 2u);
}

TEST(StaticVector, EraseAtPreservesOrder) {
  StaticVector<int, 8> v{10, 20, 30, 40};
  v.erase_at(1);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 10);
  EXPECT_EQ(v[1], 30);
  EXPECT_EQ(v[2], 40);
}

TEST(StaticVector, NonTrivialElementLifetimes) {
  static int live = 0;
  struct Probe {
    Probe() { ++live; }
    Probe(const Probe&) { ++live; }
    Probe& operator=(const Probe&) = default;
    ~Probe() { --live; }
  };
  {
    StaticVector<Probe, 4> v;
    v.emplace_back();
    v.emplace_back();
    EXPECT_EQ(live, 2);
    StaticVector<Probe, 4> w = v;
    EXPECT_EQ(live, 4);
    w.clear();
    EXPECT_EQ(live, 2);
  }
  EXPECT_EQ(live, 0);
}

// --------------------------------------------------------------- ring buffer

TEST(RingBuffer, FifoOrder) {
  RingBuffer<int, 3> rb;
  EXPECT_TRUE(rb.push(1));
  EXPECT_TRUE(rb.push(2));
  EXPECT_TRUE(rb.push(3));
  EXPECT_FALSE(rb.push(4));  // full
  EXPECT_EQ(rb.pop(), 1);
  EXPECT_TRUE(rb.push(4));
  EXPECT_EQ(rb.pop(), 2);
  EXPECT_EQ(rb.pop(), 3);
  EXPECT_EQ(rb.pop(), 4);
  EXPECT_EQ(rb.pop(), std::nullopt);
}

TEST(RingBuffer, PushOverwriteEvictsOldest) {
  RingBuffer<int, 2> rb;
  EXPECT_FALSE(rb.push_overwrite(1));
  EXPECT_FALSE(rb.push_overwrite(2));
  EXPECT_TRUE(rb.push_overwrite(3));  // evicts 1
  EXPECT_EQ(rb.pop(), 2);
  EXPECT_EQ(rb.pop(), 3);
}

// --------------------------------------------------------------------- bytes

TEST(Bytes, RoundTripScalars) {
  std::uint8_t buf[8]{};
  store_le16(buf, 0xbeef);
  EXPECT_EQ(load_le16(buf), 0xbeef);
  store_le32(buf, 0xdeadbeef);
  EXPECT_EQ(load_le32(buf), 0xdeadbeefu);
  store_le64(buf, 0x0123456789abcdefULL);
  EXPECT_EQ(load_le64(buf), 0x0123456789abcdefULL);
  store_le_i64(buf, -42);
  EXPECT_EQ(load_le_i64(buf), -42);
}

TEST(Bytes, LittleEndianLayout) {
  std::uint8_t buf[4]{};
  store_le32(buf, 0x11223344);
  EXPECT_EQ(buf[0], 0x44);
  EXPECT_EQ(buf[3], 0x11);
}

// ----------------------------------------------------------------------- rng

TEST(Rng, DeterministicAcrossInstances) {
  Rng a{12345};
  Rng b{12345};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformBounds) {
  Rng r{7};
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng r{3};
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = r.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    saw_lo |= v == 2;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliFrequency) {
  Rng r{11};
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng r{13};
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.15);
}

// --------------------------------------------------------------------- stats

TEST(OnlineStats, MomentsAndExtrema) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.13809, 1e-4);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.span(), 7.0);
}

TEST(OnlineStats, EmptyAndSingle) {
  OnlineStats s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.span(), 0.0);
}

TEST(SampleSet, Quantiles) {
  SampleSet s;
  for (int i = 100; i >= 1; --i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.median(), 50.0, 1.0);
  EXPECT_NEAR(s.quantile(0.9), 90.0, 1.5);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(SampleSet, AddAfterQuantileStaysCorrect) {
  SampleSet s;
  s.add(1.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);  // nearest-rank rounds up for 2 samples
  s.add(2.0);
  // Re-sorting must happen even though quantile() was called before.
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
}

// ----------------------------------------------------------------- task pool

TEST(TaskPool, AddressesStayStableAcrossGrowth) {
  TaskPool pool;
  std::vector<std::function<void()>*> ptrs;
  for (int i = 0; i < 100; ++i) ptrs.push_back(pool.make());
  int sum = 0;
  for (int i = 0; i < 100; ++i) {
    *ptrs[static_cast<std::size_t>(i)] = [&sum, i] { sum += i; };
  }
  for (auto* p : ptrs) (*p)();
  EXPECT_EQ(sum, 99 * 100 / 2);
  EXPECT_EQ(pool.size(), 100u);
}

TEST(TaskPool, SelfReferencingTaskTerminatesAndIsReclaimed) {
  // The intended pattern: a callable that re-invokes itself through its
  // own stable address, owned by the pool (no shared_ptr cycle).
  TaskPool pool;
  int count = 0;
  auto* loop = pool.make();
  *loop = [&count, loop] {
    if (++count < 5) (*loop)();
  };
  (*loop)();
  EXPECT_EQ(count, 5);
}  // pool destruction frees the callable: LeakSanitizer-clean by design

// --------------------------------------------------------------------- crc15

TEST(Crc15, KnownProperties) {
  // CRC of all-zero input is zero (the register never sees a 1).
  bool zeros[32]{};
  EXPECT_EQ(crc15(zeros), 0);
  // Any single-bit change must change the CRC (linear code, nonzero poly).
  bool bits[32]{};
  bits[7] = true;
  EXPECT_NE(crc15(bits), crc15(zeros));
}

TEST(Crc15, DetectsBitFlips) {
  Rng r{99};
  for (int trial = 0; trial < 200; ++trial) {
    bool bits[64];
    for (bool& b : bits) b = r.bernoulli(0.5);
    const std::uint16_t base = crc15(bits);
    const auto flip = static_cast<std::size_t>(r.uniform_int(0, 63));
    bits[flip] = !bits[flip];
    EXPECT_NE(crc15(bits), base) << "single-bit flip undetected";
  }
}

TEST(Crc15, FifteenBitRange) {
  Rng r{5};
  for (int trial = 0; trial < 100; ++trial) {
    bool bits[100];
    for (bool& b : bits) b = r.bernoulli(0.5);
    EXPECT_LT(crc15(bits), 1u << 15);
  }
}

}  // namespace
}  // namespace rtec
