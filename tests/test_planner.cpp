#include <gtest/gtest.h>

#include "core/hrtec.hpp"
#include "core/scenario.hpp"
#include "sched/planner.hpp"
#include "util/random.hpp"

namespace rtec {
namespace {

using literals::operator""_ns;
using literals::operator""_us;
using literals::operator""_ms;

HrtStreamRequest req(Etag etag, NodeId node, Duration period, int dlc = 8,
                     int k = 0) {
  HrtStreamRequest r;
  r.etag = etag;
  r.publisher = node;
  r.dlc = dlc;
  r.fault.omission_degree = k;
  r.period = period;
  return r;
}

TEST(Planner, PlansSimpleHarmonicSet) {
  const std::vector<HrtStreamRequest> reqs{
      req(10, 1, 10_ms, 8, 1),
      req(11, 2, 10_ms, 4, 0),
      req(12, 3, 20_ms, 2, 2),
  };
  const auto plan = plan_calendar(reqs, Calendar::Config{});
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->calendar.config().round_length.ns(), (10_ms).ns());
  EXPECT_EQ(plan->calendar.size(), 3u);
  EXPECT_EQ(plan->slot_of_request.size(), 3u);
  // The 20 ms stream becomes a sub-rate slot: still periodic (with full
  // missing-message detection), with instances every second round.
  const SlotSpec& slow = plan->calendar.slot(plan->slot_of_request[2]);
  EXPECT_TRUE(slow.periodic);
  EXPECT_EQ(slow.period_rounds, 2);
  EXPECT_EQ(slow.etag, 12);
  EXPECT_GT(plan->reserved_fraction, 0.0);
  EXPECT_LT(plan->reserved_fraction, 1.0);
}

TEST(Planner, IncludesSyncSlotWhenRequested) {
  const std::vector<HrtStreamRequest> reqs{req(10, 1, 10_ms)};
  const auto plan = plan_calendar(reqs, Calendar::Config{}, /*sync_master=*/7);
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->calendar.size(), 2u);
  bool found_sync = false;
  for (std::size_t i = 0; i < plan->calendar.size(); ++i) {
    if (plan->calendar.slot(i).etag == kSyncRefEtag) {
      found_sync = true;
      EXPECT_EQ(plan->calendar.slot(i).publisher, 7);
    }
  }
  EXPECT_TRUE(found_sync);
}

TEST(Planner, RejectsEmptyAndNonHarmonic) {
  EXPECT_EQ(plan_calendar({}, Calendar::Config{}).error().kind,
            PlanError::Kind::kNoStreams);
  const std::vector<HrtStreamRequest> bad{req(10, 1, 10_ms), req(11, 2, 15_ms)};
  EXPECT_EQ(plan_calendar(bad, Calendar::Config{}).error().kind,
            PlanError::Kind::kNonHarmonicPeriods);
}

TEST(Planner, RejectsOverSubscription) {
  // 20 worst-case k=3 streams at 5 ms: far beyond one round.
  std::vector<HrtStreamRequest> reqs;
  for (int i = 0; i < 20; ++i)
    reqs.push_back(req(static_cast<Etag>(10 + i), static_cast<NodeId>(1 + i),
                       5_ms, 8, 3));
  const auto plan = plan_calendar(reqs, Calendar::Config{});
  ASSERT_FALSE(plan.has_value());
  EXPECT_EQ(plan.error().kind, PlanError::Kind::kOverSubscribed);
  EXPECT_FALSE(plan.error().detail.empty());
}

TEST(Planner, PacksUpToNearCapacity) {
  // Keep adding identical streams until the planner refuses; the accepted
  // count must match the analytic capacity.
  const Calendar::Config cfg;  // 10 ms round default irrelevant: planner picks
  const Duration window =
      max_blocking_time(cfg.bus) + hrt_wctt(8, {0}, cfg.bus) + cfg.gap;
  const auto capacity = static_cast<std::size_t>((10_ms) / window);
  std::vector<HrtStreamRequest> reqs;
  std::size_t accepted = 0;
  for (std::size_t i = 0; i < capacity + 3; ++i) {
    reqs.push_back(req(static_cast<Etag>(10 + i),
                       static_cast<NodeId>(1 + (i % 100)), 10_ms, 8, 0));
    if (plan_calendar(reqs, Calendar::Config{}).has_value()) accepted = i + 1;
  }
  EXPECT_EQ(accepted, capacity);
}

TEST(Planner, RandomHarmonicSetsAlwaysAdmissible) {
  // Whatever the planner returns must pass the calendar's own admission —
  // by construction — and every request must have a usable slot.
  Rng rng{2718};
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<HrtStreamRequest> reqs;
    const int n = static_cast<int>(rng.uniform_int(1, 8));
    for (int i = 0; i < n; ++i) {
      // First stream pins the base period so the set stays harmonic.
      const std::int64_t mult = i == 0 ? 1 : rng.uniform_int(1, 4);
      reqs.push_back(req(static_cast<Etag>(10 + i), static_cast<NodeId>(1 + i),
                         10_ms * mult, static_cast<int>(rng.uniform_int(0, 8)),
                         static_cast<int>(rng.uniform_int(0, 2))));
    }
    const auto plan = plan_calendar(reqs, Calendar::Config{});
    if (!plan) {
      EXPECT_EQ(plan.error().kind, PlanError::Kind::kOverSubscribed);
      continue;
    }
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      const SlotSpec& s = plan->calendar.slot(plan->slot_of_request[i]);
      EXPECT_EQ(s.etag, reqs[i].etag);
      EXPECT_EQ(s.publisher, reqs[i].publisher);
      EXPECT_EQ(s.dlc, reqs[i].dlc);
    }
  }
}

TEST(Planner, PlannedCalendarRunsEndToEnd) {
  // Full-circle: plan a calendar, drop it into a scenario, publish on it.
  const std::vector<HrtStreamRequest> reqs{req(0, 0, 10_ms, 4, 1)};
  // Plan with a placeholder etag; bind the real subject afterwards.
  Scenario::Config cfg;
  Scenario scn{cfg};
  const Subject subject = subject_of("planned/stream");
  const Etag etag = *scn.binding().bind(subject);

  std::vector<HrtStreamRequest> reqs2{req(etag, 1, 10_ms, 4, 1)};
  const auto plan = plan_calendar(reqs2, Calendar::Config{}, /*sync_master=*/3);
  ASSERT_TRUE(plan.has_value());

  // Mirror the planned reservations into the scenario's calendar.
  for (std::size_t i = 0; i < plan->calendar.size(); ++i) {
    if (plan->calendar.slot(i).etag == kSyncRefEtag) continue;  // sync below
    ASSERT_TRUE(scn.calendar().reserve(plan->calendar.slot(i)).has_value());
  }
  Node::ClockParams perfect;
  perfect.granularity = 1_ns;
  Node& pub_node = scn.add_node(1, perfect);
  Node& sub_node = scn.add_node(2, perfect);

  Hrtec pub{pub_node.middleware()};
  Hrtec sub{sub_node.middleware()};
  ASSERT_TRUE(pub.announce(subject, {}, nullptr).has_value());
  int delivered = 0;
  ASSERT_TRUE(
      sub.subscribe(subject, {}, [&] { ++delivered; }, nullptr).has_value());
  Event e;
  e.content = {1, 2};
  ASSERT_TRUE(pub.publish(std::move(e)).has_value());
  scn.run_for(15_ms);
  EXPECT_EQ(delivered, 1);
}

}  // namespace
}  // namespace rtec
