#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/hrtec.hpp"
#include "core/scenario.hpp"
#include "core/srtec.hpp"
#include "sched/srt_analysis.hpp"
#include "time/periodic.hpp"
#include "util/random.hpp"

namespace rtec {
namespace {

using literals::operator""_ns;
using literals::operator""_us;
using literals::operator""_ms;

SrtStreamSpec stream(int id, Duration period, Duration deadline, int dlc = 8) {
  SrtStreamSpec s;
  s.id = id;
  s.period = period;
  s.deadline = deadline;
  s.dlc = dlc;
  return s;
}

TEST(SrtAnalysis, AcceptsLightLoad) {
  SrtAnalysisInput in;
  in.streams = {stream(1, 10_ms, 5_ms), stream(2, 20_ms, 10_ms),
                stream(3, 50_ms, 20_ms)};
  EXPECT_LT(srt_utilization(in), 0.05);
  EXPECT_EQ(srt_edf_feasibility(in), std::nullopt);
}

TEST(SrtAnalysis, RejectsOverUtilization) {
  SrtAnalysisInput in;
  for (int i = 0; i < 8; ++i)
    in.streams.push_back(stream(i, 1_ms, 1_ms));  // ~8 * 16% = 128%
  EXPECT_GT(srt_utilization(in), 1.0);
  const auto verdict = srt_edf_feasibility(in);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_NE(verdict->detail.find("utilization"), std::string::npos);
}

TEST(SrtAnalysis, RejectsTightDeadlineUnderBlocking) {
  // One stream whose deadline cannot even cover blocking + its own frame.
  SrtAnalysisInput in;
  in.streams = {stream(1, 10_ms, 300_us)};
  // C ~ 160 us, blocking ~ 160 us (NRT) + 160 us Δt_p -> demand ~ 480 us
  // at t = 300 us: infeasible.
  const auto verdict = srt_edf_feasibility(in);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(verdict->at.ns(), (300_us).ns());
}

TEST(SrtAnalysis, HrtReservationsConsumeSupply) {
  // A set feasible on an empty bus becomes infeasible when the calendar
  // reserves most of each round.
  SrtAnalysisInput in;
  for (int i = 0; i < 4; ++i)
    in.streams.push_back(stream(i, 4_ms, 3_ms));
  ASSERT_EQ(srt_edf_feasibility(in), std::nullopt);

  Calendar::Config cal_cfg;
  cal_cfg.round_length = 10_ms;
  Calendar cal{cal_cfg};
  for (int s = 0; s < 12; ++s) {
    SlotSpec slot;
    slot.lst_offset = Duration::microseconds(300 + s * 800);
    slot.dlc = 8;
    slot.fault.omission_degree = 2;
    slot.etag = static_cast<Etag>(10 + s);
    slot.publisher = static_cast<NodeId>(1 + s);
    ASSERT_TRUE(cal.reserve(slot).has_value()) << s;
  }
  ASSERT_GT(cal.reserved_fraction(), 0.7);
  in.calendar = &cal;
  const auto verdict = srt_edf_feasibility(in);
  EXPECT_TRUE(verdict.has_value());
}

TEST(SrtAnalysis, DeadlineMustNotExceedPeriod) {
  SrtAnalysisInput in;
  in.streams = {stream(1, 5_ms, 6_ms)};
  const auto verdict = srt_edf_feasibility(in);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_NE(verdict->detail.find("deadline <= period"), std::string::npos);
}

/// Cross-validation: sets the analysis accepts must run without a single
/// deadline miss in the simulator (strictly periodic releases — the worst
/// sporadic pattern — random phases, saturating NRT background supplying
/// the blocking the analysis budgets).
class SrtAnalysisValidation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SrtAnalysisValidation, AcceptedSetsMissNothingInSimulation) {
  Rng rng{GetParam()};
  const bool with_hrt = GetParam() % 2 == 1;

  Scenario scn;  // default Δt_p = 160 us matches the analysis default
  if (with_hrt) {
    // Two busy HRT slots whose interference the analysis must absorb.
    for (int hs = 0; hs < 2; ++hs) {
      SlotSpec slot;
      slot.lst_offset = 1_ms + 3_ms * hs;
      slot.dlc = 8;
      slot.fault.omission_degree = 1;
      slot.etag = *scn.binding().bind(subject_of("val/hrt" + std::to_string(hs)));
      slot.publisher = static_cast<NodeId>(30 + hs);
      ASSERT_TRUE(scn.calendar().reserve(slot).has_value());
    }
  }

  SrtAnalysisInput in;
  in.calendar = with_hrt ? &scn.calendar() : nullptr;
  for (int attempt = 0; attempt < 100; ++attempt) {
    in.streams.clear();
    const int n = static_cast<int>(rng.uniform_int(2, 5));
    for (int i = 0; i < n; ++i) {
      const Duration period = Duration::microseconds(rng.uniform_int(2'000, 20'000));
      const Duration deadline = Duration::nanoseconds(
          period.ns() * rng.uniform_int(40, 100) / 100);
      in.streams.push_back(stream(i, period, deadline,
                                  static_cast<int>(rng.uniform_int(0, 8))));
    }
    if (!srt_edf_feasibility(in).has_value()) break;
    in.streams.clear();
  }
  ASSERT_FALSE(in.streams.empty()) << "no accepted set found";

  Node::ClockParams perfect;
  perfect.granularity = 1_ns;
  struct Pub {
    std::unique_ptr<Srtec> chan;
    std::uint64_t misses = 0;
  };
  std::vector<std::unique_ptr<Pub>> pubs;
  std::vector<std::unique_ptr<PeriodicLocalTask>> feeders;
  for (std::size_t i = 0; i < in.streams.size(); ++i) {
    Node& node = scn.add_node(static_cast<NodeId>(i + 1), perfect);
    auto pub = std::make_unique<Pub>();
    pub->chan = std::make_unique<Srtec>(node.middleware());
    Pub* pp = pub.get();
    ASSERT_TRUE(pub->chan
                    ->announce(subject_of("val/" + std::to_string(i)), {},
                               [pp](const ExceptionInfo& e) {
                                 if (e.error == ChannelError::kDeadlineMissed)
                                   ++pp->misses;
                               })
                    .has_value());
    const SrtStreamSpec spec = in.streams[i];
    Scenario* sc = &scn;
    feeders.push_back(std::make_unique<PeriodicLocalTask>(
        node.clock(), spec.period, [pp, spec, sc] {
          Event e;
          e.content.assign(static_cast<std::size_t>(spec.dlc), 0x00);
          e.attributes.deadline = sc->sim().now() + spec.deadline;
          e.attributes.expiration =
              sc->sim().now() + spec.deadline + Duration::seconds(1);
          (void)pp->chan->publish(std::move(e));
        }));
    feeders.back()->start_at(TimePoint::origin() + Duration::nanoseconds(
                                 rng.uniform_int(0, spec.period.ns() - 1)));
    pubs.push_back(std::move(pub));
  }
  // Saturating NRT background: realizes the analysis' blocking term.
  Node& noisy = scn.add_node(20, perfect);
  struct Flood {
    CanController* ctl;
    std::function<void()> pump;
  };
  auto flood = std::make_unique<Flood>();
  flood->ctl = &noisy.controller();
  flood->pump = [f = flood.get()] {
    CanFrame frame;
    frame.id = encode_can_id({kNrtPriorityMax, 20, 500});
    frame.dlc = 8;
    frame.data.fill(0);
    while (f->ctl->has_free_mailbox())
      (void)f->ctl->submit(frame, TxMode::kAutoRetransmit,
                           [f](auto, const CanFrame&, bool, TimePoint) {
                             f->pump();
                           });
  };
  flood->pump();

  // Live HRT streams occupying the reserved windows every round.
  std::vector<std::unique_ptr<Hrtec>> hrt_pubs;
  std::vector<std::unique_ptr<PeriodicLocalTask>> hrt_feeders;
  if (with_hrt) {
    const Duration hrt_period = scn.calendar().config().round_length;
    for (int hs = 0; hs < 2; ++hs) {
      Node& node = scn.add_node(static_cast<NodeId>(30 + hs), perfect);
      hrt_pubs.push_back(std::make_unique<Hrtec>(node.middleware()));
      Hrtec* hp = hrt_pubs.back().get();
      ASSERT_TRUE(hp->announce(subject_of("val/hrt" + std::to_string(hs)),
                               AttributeList{attr::Periodic{hrt_period}},
                               nullptr)
                      .has_value());
      hrt_feeders.push_back(std::make_unique<PeriodicLocalTask>(
          node.clock(), hrt_period, [hp] {
            Event e;
            e.content.assign(8, 0x00);
            (void)hp->publish(std::move(e));
          }));
      hrt_feeders.back()->start();
    }
  }

  scn.run_for(Duration::seconds(2));
  ASSERT_EQ(pubs.size(), in.streams.size());
  for (std::size_t i = 0; i < pubs.size(); ++i)
    EXPECT_EQ(pubs[i]->misses, 0u) << "stream " << i;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SrtAnalysisValidation,
                         ::testing::Values(7, 17, 27, 37, 47, 57));

}  // namespace
}  // namespace rtec
