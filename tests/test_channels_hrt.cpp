#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/hrtec.hpp"
#include "core/scenario.hpp"
#include "sched/id_codec.hpp"

namespace rtec {
namespace {

using literals::operator""_ns;
using literals::operator""_us;
using literals::operator""_ms;

Scenario::Config default_cfg() {
  Scenario::Config cfg;
  cfg.calendar.round_length = 10_ms;
  cfg.calendar.gap = 40_us;
  return cfg;
}

Node::ClockParams perfect_clock() {
  Node::ClockParams p;
  p.granularity = 1_ns;
  return p;
}

Event make_event(std::initializer_list<std::uint8_t> bytes) {
  Event e;
  e.content.assign(bytes);
  return e;
}

struct HrtFixture : ::testing::Test {
  Scenario scn{default_cfg()};
  Node* pub_node = nullptr;
  Node* sub_node = nullptr;

  void SetUp() override {
    pub_node = &scn.add_node(1, perfect_clock());
    sub_node = &scn.add_node(2, perfect_clock());
  }

  // Reserves a slot for `subject` published by node 1 and returns its
  // calendar index.
  std::size_t reserve(Duration lst, bool periodic = true, int k = 0,
                      NodeId publisher = 1, const char* name = "test/hrt") {
    const Etag etag = *scn.binding().bind(subject_of(name));
    SlotSpec s;
    s.lst_offset = lst;
    s.dlc = 8;
    s.fault.omission_degree = k;
    s.etag = etag;
    s.publisher = publisher;
    s.periodic = periodic;
    const auto r = scn.calendar().reserve(s);
    EXPECT_TRUE(r.has_value());
    return *r;
  }
};

// -------------------------------------------------------------- happy path

TEST_F(HrtFixture, PublishDeliversExactlyAtDeadline) {
  const std::size_t slot = reserve(1_ms);
  const Calendar::Instance inst =
      scn.calendar().instance_at_or_after(slot, TimePoint::origin());

  Hrtec pub{pub_node->middleware()};
  Hrtec sub{sub_node->middleware()};
  ASSERT_TRUE(pub.announce(subject_of("test/hrt"), {}, nullptr).has_value());

  std::vector<TimePoint> deliveries;
  ASSERT_TRUE(sub.subscribe(subject_of("test/hrt"), {},
                            [&] { deliveries.push_back(sub_node->clock().now()); },
                            nullptr)
                  .has_value());

  ASSERT_TRUE(pub.publish(make_event({0xde, 0xad})).has_value());
  scn.run_for(2_ms);

  ASSERT_EQ(deliveries.size(), 1u);
  // Jitter removal: delivery exactly at the instance's delivery deadline.
  EXPECT_EQ(deliveries[0].ns(), inst.deadline.ns());

  const auto event = sub.getEvent();
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->content, (std::vector<std::uint8_t>{0xde, 0xad}));
  EXPECT_EQ(event->subject, subject_of("test/hrt"));
  EXPECT_EQ(sub.getEvent(), std::nullopt);  // queue drained
}

TEST_F(HrtFixture, PeriodicStreamDeliversEveryRound) {
  reserve(1_ms);
  Hrtec pub{pub_node->middleware()};
  Hrtec sub{sub_node->middleware()};
  ASSERT_TRUE(pub.announce(subject_of("test/hrt"),
                           AttributeList{attr::Periodic{10_ms}}, nullptr)
                  .has_value());

  int delivered = 0;
  ASSERT_TRUE(
      sub.subscribe(subject_of("test/hrt"), AttributeList{attr::QueueCapacity{32}},
                    [&] { ++delivered; }, nullptr)
          .has_value());

  // Publish once per round, before each ready time.
  for (int round = 0; round < 20; ++round) {
    scn.sim().schedule_at(TimePoint::origin() + 10_ms * round,
                          [&pub, round] {
                            Event e;
                            e.content = {static_cast<std::uint8_t>(round)};
                            ASSERT_TRUE(pub.publish(std::move(e)).has_value());
                          });
  }
  scn.run_for(201_ms);
  EXPECT_EQ(delivered, 20);
  EXPECT_EQ(pub_node->middleware().hrt().counters().sent_ok, 20u);
  EXPECT_EQ(sub_node->middleware().hrt().counters().missing, 0u);
  // Payloads arrive in order.
  for (int round = 0; round < 20; ++round) {
    const auto e = sub.getEvent();
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->content[0], static_cast<std::uint8_t>(round));
  }
}

TEST_F(HrtFixture, DeliveryJitterIsZeroDespiteInterference) {
  const std::size_t slot = reserve(1_ms);
  Hrtec pub{pub_node->middleware()};
  Hrtec sub{sub_node->middleware()};
  ASSERT_TRUE(pub.announce(subject_of("test/hrt"), {}, nullptr).has_value());

  std::vector<std::int64_t> offsets;  // delivery - deadline, per round
  ASSERT_TRUE(sub.subscribe(subject_of("test/hrt"), {},
                            [&] {
                              const auto inst = scn.calendar().instance_at_or_after(
                                  slot, sub_node->clock().now() - 1_ms);
                              (void)inst;
                              offsets.push_back(sub_node->clock().now().ns() %
                                                (10_ms).ns());
                            },
                            nullptr)
                  .has_value());

  // Saturating NRT background from a third node.
  Node& noisy = scn.add_node(3, perfect_clock());
  std::function<void()> flood = [&] {
    CanFrame f;
    f.id = encode_can_id({kNrtPriorityMax, 3, 100});
    f.dlc = 8;
    if (noisy.controller().has_free_mailbox())
      (void)noisy.controller().submit(f, TxMode::kAutoRetransmit);
    scn.sim().schedule_after(100_us, flood);
  };
  scn.sim().schedule_after(0_ns, flood);

  for (int round = 0; round < 10; ++round) {
    scn.sim().schedule_at(TimePoint::origin() + 10_ms * round, [&pub] {
      ASSERT_TRUE(pub.publish(make_event({1})).has_value());
    });
  }
  scn.run_for(101_ms);

  ASSERT_EQ(offsets.size(), 10u);
  // Every delivery lands at the same phase within the round: zero jitter.
  for (std::int64_t off : offsets) EXPECT_EQ(off, offsets[0]);
}

// --------------------------------------------------- ΔT_wait blocking guard

TEST_F(HrtFixture, BlockerJustBeforeReadyCannotViolateDeadline) {
  const std::size_t slot = reserve(1_ms);
  const Calendar::Instance inst =
      scn.calendar().instance_at_or_after(slot, TimePoint::origin());

  Hrtec pub{pub_node->middleware()};
  Hrtec sub{sub_node->middleware()};
  ASSERT_TRUE(pub.announce(subject_of("test/hrt"), {}, nullptr).has_value());

  TimePoint delivery;
  ASSERT_TRUE(sub.subscribe(subject_of("test/hrt"), {},
                            [&] { delivery = sub_node->clock().now(); }, nullptr)
                  .has_value());
  ASSERT_TRUE(pub.publish(make_event({7})).has_value());

  // Adversary: a worst-case-length NRT frame requested 1 ns before the
  // slot's ready time — it seizes the idle bus and cannot be preempted.
  Node& adversary = scn.add_node(9, perfect_clock());
  TimePoint hrt_start;
  scn.bus().add_observer([&](const CanBus::FrameEvent& ev) {
    if (id_priority(ev.frame.id) == kHrtPriority) hrt_start = ev.start;
  });
  scn.sim().schedule_at(inst.ready - 1_ns, [&] {
    CanFrame f;
    f.id = encode_can_id({kNrtPriorityMax, 9, 200});
    f.dlc = 8;
    f.data.fill(0);  // heavy stuffing: near-worst-case length
    ASSERT_TRUE(adversary.controller()
                    .submit(f, TxMode::kAutoRetransmit)
                    .has_value());
  });

  scn.run_for(2_ms);
  // The HRT transmission started no later than LST...
  EXPECT_LE(hrt_start.ns(), inst.lst.ns());
  EXPECT_GT(hrt_start.ns(), inst.ready.ns());  // and was genuinely blocked
  // ...and delivery still happened exactly at the deadline.
  EXPECT_EQ(delivery.ns(), inst.deadline.ns());
}

// ------------------------------------------------------------------- faults

TEST_F(HrtFixture, ToleratesFaultsWithinOmissionDegree) {
  reserve(1_ms, true, 2);  // slot sized for 2 omissions
  auto faults = std::make_unique<ScriptedFaults>();
  // Corrupt the first two transmissions of every HRT message. Middleware
  // retries are fresh single-shot submissions (controller attempt is always
  // 1), so the script counts transmissions itself: with 3 per message
  // (2 corrupt + 1 clean) the counter stays message-aligned.
  auto counter = std::make_shared<int>(0);
  faults->add_rule([counter](const FaultContext& ctx) {
    if (id_priority(ctx.frame.id) != kHrtPriority) return false;
    return (*counter)++ % 3 < 2;
  });
  scn.set_fault_model(std::move(faults));

  Hrtec pub{pub_node->middleware()};
  Hrtec sub{sub_node->middleware()};
  int pub_exceptions = 0;
  ASSERT_TRUE(pub.announce(subject_of("test/hrt"),
                           AttributeList{attr::Reliability{2}},
                           [&](const ExceptionInfo&) { ++pub_exceptions; })
                  .has_value());
  int delivered = 0;
  int sub_exceptions = 0;
  ASSERT_TRUE(sub.subscribe(subject_of("test/hrt"), {}, [&] { ++delivered; },
                            [&](const ExceptionInfo&) { ++sub_exceptions; })
                  .has_value());

  for (int round = 0; round < 5; ++round)
    scn.sim().schedule_at(TimePoint::origin() + 10_ms * round, [&pub] {
      ASSERT_TRUE(pub.publish(make_event({1})).has_value());
    });
  scn.run_for(45_ms);  // past round 4's deadline, before round 5's ready

  EXPECT_EQ(delivered, 5);
  EXPECT_EQ(pub_exceptions, 0);
  EXPECT_EQ(sub_exceptions, 0);
  // Redundancy was actually exercised: 2 retries per instance.
  EXPECT_EQ(pub_node->middleware().hrt().counters().retries, 10u);
}

TEST_F(HrtFixture, FaultsBeyondAssumptionRaiseExceptionsBothSides) {
  reserve(1_ms, true, 1);  // assumes at most 1 omission
  auto faults = std::make_unique<ScriptedFaults>();
  // Permanent disturbance: every HRT transmission corrupted — more faults
  // than any finite omission degree covers.
  faults->add_rule([](const FaultContext& ctx) {
    return id_priority(ctx.frame.id) == kHrtPriority;
  });
  scn.set_fault_model(std::move(faults));

  Hrtec pub{pub_node->middleware()};
  Hrtec sub{sub_node->middleware()};
  std::vector<ChannelError> pub_errors;
  ASSERT_TRUE(pub.announce(subject_of("test/hrt"), {},
                           [&](const ExceptionInfo& e) {
                             pub_errors.push_back(e.error);
                           })
                  .has_value());
  int delivered = 0;
  std::vector<ChannelError> sub_errors;
  ASSERT_TRUE(sub.subscribe(subject_of("test/hrt"), {}, [&] { ++delivered; },
                            [&](const ExceptionInfo& e) {
                              sub_errors.push_back(e.error);
                            })
                  .has_value());

  ASSERT_TRUE(pub.publish(make_event({1})).has_value());
  scn.run_for(2_ms);

  EXPECT_EQ(delivered, 0);
  ASSERT_EQ(pub_errors.size(), 1u);
  EXPECT_EQ(pub_errors[0], ChannelError::kTransmissionFailed);
  ASSERT_EQ(sub_errors.size(), 1u);
  EXPECT_EQ(sub_errors[0], ChannelError::kMissingMessage);
}

// ----------------------------------------------------------- missing message

TEST_F(HrtFixture, MissingPeriodicPublicationDetectedBySubscriber) {
  reserve(1_ms);
  Hrtec sub{sub_node->middleware()};
  std::vector<ChannelError> errors;
  ASSERT_TRUE(sub.subscribe(subject_of("test/hrt"), {}, nullptr,
                            [&](const ExceptionInfo& e) {
                              errors.push_back(e.error);
                            })
                  .has_value());
  scn.run_for(25_ms);  // three delivery deadlines elapse, nothing published
  ASSERT_EQ(errors.size(), 3u);
  EXPECT_EQ(errors[0], ChannelError::kMissingMessage);
}

TEST_F(HrtFixture, SporadicSlotSilentWhenUnused) {
  reserve(1_ms, /*periodic=*/false);
  Hrtec pub{pub_node->middleware()};
  Hrtec sub{sub_node->middleware()};
  int pub_exc = 0;
  int sub_exc = 0;
  ASSERT_TRUE(pub.announce(subject_of("test/hrt"),
                           AttributeList{attr::Sporadic{10_ms}},
                           [&](const ExceptionInfo&) { ++pub_exc; })
                  .has_value());
  int delivered = 0;
  ASSERT_TRUE(sub.subscribe(subject_of("test/hrt"), {}, [&] { ++delivered; },
                            [&](const ExceptionInfo&) { ++sub_exc; })
                  .has_value());

  // Publish only in round 2.
  scn.sim().schedule_at(TimePoint::origin() + 20_ms, [&pub] {
    ASSERT_TRUE(pub.publish(make_event({5})).has_value());
  });
  scn.run_for(50_ms);
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(pub_exc, 0);  // unused sporadic instances are not errors
  EXPECT_EQ(sub_exc, 0);
}

TEST_F(HrtFixture, MissedPeriodicPublicationRaisesPublisherException) {
  reserve(1_ms);
  Hrtec pub{pub_node->middleware()};
  std::vector<ChannelError> errors;
  ASSERT_TRUE(pub.announce(subject_of("test/hrt"), {},
                           [&](const ExceptionInfo& e) {
                             errors.push_back(e.error);
                           })
                  .has_value());
  scn.run_for(15_ms);  // one instance passes without publish()
  ASSERT_GE(errors.size(), 1u);
  EXPECT_EQ(errors[0], ChannelError::kPublishMissed);
}

// ---------------------------------------------------------- late publication

TEST_F(HrtFixture, LatePublicationRidesNextInstance) {
  const std::size_t slot = reserve(1_ms, /*periodic=*/false);
  const auto first = scn.calendar().instance_at_or_after(slot, TimePoint::origin());
  Hrtec pub{pub_node->middleware()};
  Hrtec sub{sub_node->middleware()};
  ASSERT_TRUE(pub.announce(subject_of("test/hrt"),
                           AttributeList{attr::Sporadic{10_ms}}, nullptr)
                  .has_value());
  std::vector<TimePoint> deliveries;
  ASSERT_TRUE(sub.subscribe(subject_of("test/hrt"), {},
                            [&] { deliveries.push_back(sub_node->clock().now()); },
                            nullptr)
                  .has_value());

  // Publish 1 us *after* this round's ready time.
  scn.sim().schedule_at(first.ready + 1_us, [&pub] {
    ASSERT_TRUE(pub.publish(make_event({9})).has_value());
  });
  scn.run_for(25_ms);
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].ns(), (first.deadline + 10_ms).ns());
}

TEST_F(HrtFixture, OverwritingUnsentEventRaisesException) {
  reserve(1_ms, /*periodic=*/false);
  Hrtec pub{pub_node->middleware()};
  std::vector<ChannelError> errors;
  ASSERT_TRUE(pub.announce(subject_of("test/hrt"),
                           AttributeList{attr::Sporadic{10_ms}},
                           [&](const ExceptionInfo& e) {
                             errors.push_back(e.error);
                           })
                  .has_value());
  ASSERT_TRUE(pub.publish(make_event({1})).has_value());
  ASSERT_TRUE(pub.publish(make_event({2})).has_value());
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0], ChannelError::kEventOverwritten);
}

// ------------------------------------------------------------ multi-publisher

TEST_F(HrtFixture, MultiPublisherChannelUsesOneSlotPerNode) {
  reserve(1_ms, true, 0, /*publisher=*/1);
  reserve(3_ms, true, 0, /*publisher=*/2);

  Hrtec pub1{pub_node->middleware()};
  Hrtec pub2{sub_node->middleware()};  // node 2 also publishes
  Node& listener = scn.add_node(5, perfect_clock());
  Hrtec sub{listener.middleware()};

  ASSERT_TRUE(pub1.announce(subject_of("test/hrt"), {}, nullptr).has_value());
  ASSERT_TRUE(pub2.announce(subject_of("test/hrt"), {}, nullptr).has_value());
  int delivered = 0;
  ASSERT_TRUE(
      sub.subscribe(subject_of("test/hrt"), {}, [&] { ++delivered; }, nullptr)
          .has_value());

  ASSERT_TRUE(pub1.publish(make_event({1})).has_value());
  ASSERT_TRUE(pub2.publish(make_event({2})).has_value());
  scn.run_for(5_ms);
  EXPECT_EQ(delivered, 2);
  const auto a = sub.getEvent();
  const auto b = sub.getEvent();
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->content[0], 1);  // slot order
  EXPECT_EQ(b->content[0], 2);
}

// -------------------------------------------------------------- API misuse

TEST_F(HrtFixture, AnnounceWithoutReservationFails) {
  Hrtec pub{pub_node->middleware()};
  const auto r = pub.announce(subject_of("nonexistent"), {}, nullptr);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error(), ChannelError::kNoReservation);
}

TEST_F(HrtFixture, SubscribeWithoutReservationFails) {
  Hrtec sub{sub_node->middleware()};
  const auto r = sub.subscribe(subject_of("nonexistent"), {}, nullptr, nullptr);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error(), ChannelError::kNoReservation);
}

TEST_F(HrtFixture, PublishBeforeAnnounceFails) {
  Hrtec pub{pub_node->middleware()};
  const auto r = pub.publish(make_event({1}));
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error(), ChannelError::kNotAnnounced);
}

TEST_F(HrtFixture, PayloadLargerThanReservationFails) {
  reserve(1_ms);
  Hrtec pub{pub_node->middleware()};
  ASSERT_TRUE(pub.announce(subject_of("test/hrt"),
                           AttributeList{attr::MessageSize{2}}, nullptr)
                  .has_value());
  const auto r = pub.publish(make_event({1, 2, 3}));
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error(), ChannelError::kPayloadTooLarge);
}

TEST_F(HrtFixture, PeriodAttributeMustMatchReservationRate) {
  reserve(1_ms);  // one instance every 10 ms round
  Hrtec pub{pub_node->middleware()};
  // Declaring a 20 ms period against a 10 ms reservation: configuration
  // mismatch, rejected at announce time.
  const auto r = pub.announce(subject_of("test/hrt"),
                              AttributeList{attr::Periodic{20_ms}}, nullptr);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error(), ChannelError::kInvalidAttribute);
  // The matching declaration is accepted.
  EXPECT_TRUE(pub.announce(subject_of("test/hrt"),
                           AttributeList{attr::Periodic{10_ms}}, nullptr)
                  .has_value());
}

TEST_F(HrtFixture, AttributesCannotExceedReservation) {
  reserve(1_ms, true, 1);  // k = 1 reserved
  Hrtec pub{pub_node->middleware()};
  const auto r = pub.announce(subject_of("test/hrt"),
                              AttributeList{attr::Reliability{3}}, nullptr);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error(), ChannelError::kInvalidAttribute);
}

TEST_F(HrtFixture, CancelSubscriptionStopsDeliveriesAndExceptions) {
  reserve(1_ms);
  Hrtec pub{pub_node->middleware()};
  Hrtec sub{sub_node->middleware()};
  ASSERT_TRUE(pub.announce(subject_of("test/hrt"), {}, nullptr).has_value());
  int delivered = 0;
  int exceptions = 0;
  ASSERT_TRUE(sub.subscribe(subject_of("test/hrt"), {}, [&] { ++delivered; },
                            [&](const ExceptionInfo&) { ++exceptions; })
                  .has_value());
  ASSERT_TRUE(pub.publish(make_event({1})).has_value());
  scn.run_for(2_ms);
  EXPECT_EQ(delivered, 1);
  ASSERT_TRUE(sub.cancelSubscription().has_value());
  scn.run_for(30_ms);  // further rounds: no deliveries, no missing-message
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(exceptions, 0);
  // Double-cancel is an error.
  EXPECT_FALSE(sub.cancelSubscription().has_value());
}

// ----------------------------------------------------- bandwidth reclamation

TEST_F(HrtFixture, UnusedSporadicSlotReclaimedByNrt) {
  const std::size_t slot = reserve(1_ms, /*periodic=*/false);
  const auto inst = scn.calendar().instance_at_or_after(slot, TimePoint::origin());
  Hrtec pub{pub_node->middleware()};
  ASSERT_TRUE(pub.announce(subject_of("test/hrt"),
                           AttributeList{attr::Sporadic{10_ms}}, nullptr)
                  .has_value());

  // NRT node floods; count NRT bus activity inside the reserved window.
  Node& noisy = scn.add_node(3, perfect_clock());
  std::int64_t nrt_bits_in_window = 0;
  scn.bus().add_observer([&](const CanBus::FrameEvent& ev) {
    if (id_priority(ev.frame.id) < kNrtPriorityMin) return;
    if (ev.start >= inst.ready && ev.start < inst.deadline)
      nrt_bits_in_window += ev.wire_bits;
  });
  std::function<void()> flood = [&] {
    CanFrame f;
    f.id = encode_can_id({kNrtPriorityMax, 3, 300});
    f.dlc = 8;
    if (noisy.controller().has_free_mailbox())
      (void)noisy.controller().submit(f, TxMode::kAutoRetransmit);
    scn.sim().schedule_after(50_us, flood);
  };
  scn.sim().schedule_after(0_ns, flood);

  scn.run_for(2_ms);
  // The sporadic slot went unused; NRT traffic flowed straight through the
  // reserved window (the paper's key advantage over TDMA).
  EXPECT_GT(nrt_bits_in_window, 100);
}

TEST_F(HrtFixture, SuccessfulEarlyTransmissionReclaimsSlotRemainder) {
  const std::size_t slot = reserve(1_ms, true, /*k=*/3);  // big window
  const auto inst = scn.calendar().instance_at_or_after(slot, TimePoint::origin());
  Hrtec pub{pub_node->middleware()};
  ASSERT_TRUE(pub.announce(subject_of("test/hrt"), {}, nullptr).has_value());
  ASSERT_TRUE(pub.publish(make_event({1})).has_value());

  Node& noisy = scn.add_node(3, perfect_clock());
  std::int64_t nrt_frames_in_window = 0;
  TimePoint hrt_end;
  scn.bus().add_observer([&](const CanBus::FrameEvent& ev) {
    if (id_priority(ev.frame.id) == kHrtPriority) hrt_end = ev.end;
    if (id_priority(ev.frame.id) >= kNrtPriorityMin && ev.start >= inst.ready &&
        ev.start < inst.deadline)
      ++nrt_frames_in_window;
  });
  std::function<void()> flood = [&] {
    CanFrame f;
    f.id = encode_can_id({kNrtPriorityMax, 3, 300});
    f.dlc = 8;
    if (noisy.controller().has_free_mailbox())
      (void)noisy.controller().submit(f, TxMode::kAutoRetransmit);
    scn.sim().schedule_after(50_us, flood);
  };
  scn.sim().schedule_after(0_ns, flood);

  scn.run_for(2_ms);
  // No faults: the HRT frame went out once, early in the window; the
  // remaining (k+... retries) reservation was used by NRT frames.
  EXPECT_LT(hrt_end.ns(), inst.deadline.ns());
  EXPECT_GT(nrt_frames_in_window, 0);
  EXPECT_EQ(pub_node->middleware().hrt().counters().retries, 0u);
}


TEST_F(HrtFixture, AlwaysTransmitCopiesAblationBurnsTheReservation) {
  reserve(1_ms, true, /*k=*/2);
  Hrtec pub{pub_node->middleware()};
  Hrtec sub{sub_node->middleware()};
  ASSERT_TRUE(pub.announce(subject_of("test/hrt"),
                           AttributeList{attr::AlwaysTransmitCopies{}},
                           nullptr)
                  .has_value());
  int delivered = 0;
  ASSERT_TRUE(sub.subscribe(subject_of("test/hrt"),
                            AttributeList{attr::QueueCapacity{16}},
                            [&] {
                              ++delivered;
                              (void)sub.getEvent();
                            },
                            nullptr)
                  .has_value());

  int hrt_frames = 0;
  scn.bus().add_observer([&](const CanBus::FrameEvent& ev) {
    if (id_priority(ev.frame.id) == kHrtPriority && ev.success) ++hrt_frames;
  });
  for (int round = 0; round < 3; ++round)
    scn.sim().schedule_at(TimePoint::origin() + 10_ms * round, [&pub] {
      ASSERT_TRUE(pub.publish(make_event({1})).has_value());
    });
  scn.run_for(25_ms);

  // Fault-free bus, yet all k+1 = 3 copies of each instance went out —
  // and the subscriber still delivered each instance exactly once (the
  // duplicates land in the same window and collapse).
  EXPECT_EQ(hrt_frames, 9);
  EXPECT_EQ(delivered, 3);
  EXPECT_EQ(sub_node->middleware().hrt().counters().missing, 0u);
}

TEST_F(HrtFixture, DefaultSchemeSuppressesCopiesOnCleanBus) {
  reserve(1_ms, true, /*k=*/2);
  Hrtec pub{pub_node->middleware()};
  ASSERT_TRUE(pub.announce(subject_of("test/hrt"), {}, nullptr).has_value());
  int hrt_frames = 0;
  scn.bus().add_observer([&](const CanBus::FrameEvent& ev) {
    if (id_priority(ev.frame.id) == kHrtPriority && ev.success) ++hrt_frames;
  });
  for (int round = 0; round < 3; ++round)
    scn.sim().schedule_at(TimePoint::origin() + 10_ms * round, [&pub] {
      ASSERT_TRUE(pub.publish(make_event({1})).has_value());
    });
  scn.run_for(25_ms);
  EXPECT_EQ(hrt_frames, 3);  // one per instance: redundancy suppressed
}

}  // namespace
}  // namespace rtec
