#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "core/hrtec.hpp"
#include "core/nrtec.hpp"
#include "core/scenario.hpp"
#include "core/srtec.hpp"
#include "util/task_pool.hpp"

/// Edge cases and failure injection at the middleware API boundary.

namespace rtec {
namespace {

using literals::operator""_ns;
using literals::operator""_us;
using literals::operator""_ms;

Node::ClockParams perfect() {
  Node::ClockParams p;
  p.granularity = 1_ns;
  return p;
}

struct EdgeFixture : ::testing::Test {
  TaskPool tasks;
  Scenario scn;
  Node* n1 = nullptr;
  Node* n2 = nullptr;

  void SetUp() override {
    n1 = &scn.add_node(1, perfect());
    n2 = &scn.add_node(2, perfect());
  }

  std::size_t reserve(Etag etag, Duration lst, NodeId pub = 1,
                      bool periodic = true) {
    SlotSpec s;
    s.lst_offset = lst;
    s.etag = etag;
    s.publisher = pub;
    s.periodic = periodic;
    const auto r = scn.calendar().reserve(s);
    EXPECT_TRUE(r.has_value());
    return *r;
  }
};

// ----------------------------------------------------------- HRT edge cases

TEST_F(EdgeFixture, ZeroLengthHrtEventDelivers) {
  reserve(*scn.binding().bind(subject_of("edge/empty")), 1_ms);
  Hrtec pub{n1->middleware()};
  Hrtec sub{n2->middleware()};
  ASSERT_TRUE(pub.announce(subject_of("edge/empty"), {}, nullptr).has_value());
  int delivered = 0;
  ASSERT_TRUE(sub.subscribe(subject_of("edge/empty"), {},
                            [&] {
                              const auto e = sub.getEvent();
                              ASSERT_TRUE(e.has_value());
                              EXPECT_TRUE(e->content.empty());
                              ++delivered;
                            },
                            nullptr)
                  .has_value());
  ASSERT_TRUE(pub.publish(Event{}).has_value());
  scn.run_for(2_ms);
  EXPECT_EQ(delivered, 1);
}

TEST_F(EdgeFixture, HighRateChannelUsesTwoSlotsPerRound) {
  const Etag etag = *scn.binding().bind(subject_of("edge/fast"));
  reserve(etag, 1_ms);
  reserve(etag, 5_ms);  // same channel, same publisher, twice per round
  Hrtec pub{n1->middleware()};
  Hrtec sub{n2->middleware()};
  ASSERT_TRUE(pub.announce(subject_of("edge/fast"), {}, nullptr).has_value());
  std::vector<TimePoint> deliveries;
  ASSERT_TRUE(sub.subscribe(subject_of("edge/fast"),
                            AttributeList{attr::QueueCapacity{16}},
                            [&] {
                              (void)sub.getEvent();
                              deliveries.push_back(n2->clock().now());
                            },
                            nullptr)
                  .has_value());
  // Publish before each slot instance's ready time (readies at ~0.84,
  // ~4.84, ~10.84, ~14.84 ms).
  for (const std::int64_t at_ms : {0, 4, 10, 14}) {
    scn.sim().schedule_at(TimePoint::origin() + Duration::milliseconds(at_ms),
                          [&] {
                            Event e;
                            e.content = {9};
                            (void)pub.publish(std::move(e));
                          });
  }
  scn.run_for(21_ms);
  ASSERT_EQ(deliveries.size(), 4u);
  // Each delivery lands exactly on the corresponding slot instance's
  // deadline, alternating between the two slots of the channel.
  const auto d0 = scn.calendar().instance_at_or_after(0, TimePoint::origin());
  const auto d1 = scn.calendar().instance_at_or_after(1, TimePoint::origin());
  EXPECT_EQ(deliveries[0].ns(), d0.deadline.ns());
  EXPECT_EQ(deliveries[1].ns(), d1.deadline.ns());
  EXPECT_EQ(deliveries[2].ns(), (d0.deadline + 10_ms).ns());
  EXPECT_EQ(deliveries[3].ns(), (d1.deadline + 10_ms).ns());
}

TEST_F(EdgeFixture, ReannounceAfterCancelPublication) {
  reserve(*scn.binding().bind(subject_of("edge/re")), 1_ms, 1,
          /*periodic=*/false);
  Hrtec pub{n1->middleware()};
  ASSERT_TRUE(pub.announce(subject_of("edge/re"),
                           AttributeList{attr::Sporadic{10_ms}}, nullptr)
                  .has_value());
  ASSERT_TRUE(pub.cancelPublication().has_value());
  // The slot is free for a new announcement (e.g. after a component swap).
  ASSERT_TRUE(pub.announce(subject_of("edge/re"),
                           AttributeList{attr::Sporadic{10_ms}}, nullptr)
                  .has_value());
  Event e;
  e.content = {1};
  EXPECT_TRUE(pub.publish(std::move(e)).has_value());
  scn.run_for(5_ms);
  EXPECT_EQ(n1->middleware().hrt().counters().sent_ok, 1u);
}

TEST_F(EdgeFixture, CancelPublicationSilencesSlotTimers) {
  reserve(*scn.binding().bind(subject_of("edge/quiet")), 1_ms);
  Hrtec pub{n1->middleware()};
  int exceptions = 0;
  ASSERT_TRUE(pub.announce(subject_of("edge/quiet"), {},
                           [&](const ExceptionInfo&) { ++exceptions; })
                  .has_value());
  ASSERT_TRUE(pub.cancelPublication().has_value());
  scn.run_for(50_ms);  // five instances pass; no kPublishMissed storm
  EXPECT_EQ(exceptions, 0);
}

TEST_F(EdgeFixture, SubscriberCrashMidStreamRecovers) {
  reserve(*scn.binding().bind(subject_of("edge/crash")), 1_ms);
  Hrtec pub{n1->middleware()};
  Hrtec sub{n2->middleware()};
  ASSERT_TRUE(pub.announce(subject_of("edge/crash"), {}, nullptr).has_value());
  int delivered = 0;
  int missing = 0;
  ASSERT_TRUE(sub.subscribe(subject_of("edge/crash"),
                            AttributeList{attr::QueueCapacity{16}},
                            [&] {
                              ++delivered;
                              (void)sub.getEvent();
                            },
                            [&](const ExceptionInfo&) { ++missing; })
                  .has_value());
  auto* loop = tasks.make();
  *loop = [&, loop] {
    Event e;
    e.content = {1};
    (void)pub.publish(std::move(e));
    scn.sim().schedule_after(10_ms, [loop] { (*loop)(); });
  };
  scn.sim().schedule_after(0_ns, [loop] { (*loop)(); });

  scn.sim().schedule_at(TimePoint::origin() + 25_ms,
                        [&] { n2->controller().set_online(false); });
  scn.sim().schedule_at(TimePoint::origin() + 55_ms,
                        [&] { n2->controller().set_online(true); });
  scn.run_for(100_ms);
  // Rounds 0-2 delivered (instances at ~1,11,21ms... deadline ~1.16ms):
  // offline 25-55 ms kills instances 3,4,5 (deadlines ~31,41,51 ms).
  EXPECT_GE(delivered, 6);
  EXPECT_GE(missing, 2);
  EXPECT_EQ(delivered + missing, 10);
}

TEST_F(EdgeFixture, SubRatePeriodicChannelDetectsExactlyItsInstances) {
  // A 20 ms stream on a 10 ms round: sub-rate slot (m=2), periodic with
  // missing-message detection on exactly every second round.
  const Etag etag = *scn.binding().bind(subject_of("edge/subrate"));
  SlotSpec s;
  s.lst_offset = 1_ms;
  s.etag = etag;
  s.publisher = 1;
  s.period_rounds = 2;
  ASSERT_TRUE(scn.calendar().reserve(s).has_value());

  Hrtec pub{n1->middleware()};
  Hrtec sub{n2->middleware()};
  int pub_missed = 0;
  ASSERT_TRUE(pub.announce(subject_of("edge/subrate"),
                           AttributeList{attr::Periodic{20_ms}},
                           [&](const ExceptionInfo& e) {
                             if (e.error == ChannelError::kPublishMissed)
                               ++pub_missed;
                           })
                  .has_value());
  int delivered = 0;
  int missing = 0;
  ASSERT_TRUE(sub.subscribe(subject_of("edge/subrate"),
                            AttributeList{attr::QueueCapacity{16}},
                            [&] {
                              ++delivered;
                              (void)sub.getEvent();
                            },
                            [&](const ExceptionInfo&) { ++missing; })
                  .has_value());

  // Publish every 20 ms for the first 3 instances, then stop.
  for (int i = 0; i < 3; ++i)
    scn.sim().schedule_at(TimePoint::origin() + 20_ms * i, [&] {
      Event e;
      e.content = {1};
      (void)pub.publish(std::move(e));
    });
  scn.run_for(100_ms);

  // Instances at rounds 0,2,4,6,8 (deadlines ~1.16, 21.16, 41.16, 61.16,
  // 81.16 ms): 3 delivered, 2 missing; the odd rounds are silent (no
  // spurious missing-message or publish-missed in between).
  EXPECT_EQ(delivered, 3);
  EXPECT_EQ(missing, 2);
  EXPECT_EQ(pub_missed, 2);
}

// ----------------------------------------------------------- SRT edge cases

TEST_F(EdgeFixture, SrtPublisherBusOffRaisesAndRecovers) {
  Srtec pub{n1->middleware()};
  std::vector<ChannelError> errors;
  ASSERT_TRUE(pub.announce(subject_of("edge/srt"), {},
                           [&](const ExceptionInfo& e) {
                             errors.push_back(e.error);
                           })
                  .has_value());
  Srtec sub{n2->middleware()};
  int delivered = 0;
  ASSERT_TRUE(sub.subscribe(subject_of("edge/srt"), {},
                            [&] {
                              ++delivered;
                              (void)sub.getEvent();
                            },
                            nullptr)
                  .has_value());

  // Corrupt everything until 5 ms: the publisher's controller goes bus-off
  // (TEC 256 after 32 attempts ~ 3.8 ms), then auto-recovers ~1.4 ms later.
  scn.set_fault_model(std::make_unique<BurstFaults>(
      TimePoint::origin(), TimePoint::origin() + 5_ms));

  Event e;
  e.content = {1};
  ASSERT_TRUE(pub.publish(std::move(e)).has_value());
  scn.run_for(20_ms);
  // The in-flight message died with the bus-off (reported as kBusOff).
  ASSERT_GE(errors.size(), 1u);
  EXPECT_EQ(errors[0], ChannelError::kBusOff);
  // After recovery the channel works again.
  Event e2;
  e2.content = {2};
  ASSERT_TRUE(pub.publish(std::move(e2)).has_value());
  scn.run_for(5_ms);
  EXPECT_EQ(delivered, 1);
}

TEST_F(EdgeFixture, ManyQueuedSrtMessagesAllDrain) {
  Srtec pub{n1->middleware()};
  Srtec sub{n2->middleware()};
  ASSERT_TRUE(pub.announce(subject_of("edge/burst"),
                           AttributeList{attr::Deadline{100_ms},
                                         attr::Expiration{500_ms}},
                           nullptr)
                  .has_value());
  int delivered = 0;
  ASSERT_TRUE(sub.subscribe(subject_of("edge/burst"),
                            AttributeList{attr::QueueCapacity{128}},
                            [&] {
                              ++delivered;
                              (void)sub.getEvent();
                            },
                            nullptr)
                  .has_value());
  for (int i = 0; i < 100; ++i) {
    Event e;
    e.content = {static_cast<std::uint8_t>(i)};
    ASSERT_TRUE(pub.publish(std::move(e)).has_value());
  }
  EXPECT_EQ(n1->middleware().srt().queue_length(), 100u);
  scn.run_for(50_ms);
  EXPECT_EQ(delivered, 100);
  EXPECT_EQ(n1->middleware().srt().queue_length(), 0u);
}

TEST_F(EdgeFixture, SrtCancelPublicationDrainsGracefully) {
  Srtec pub{n1->middleware()};
  ASSERT_TRUE(pub.announce(subject_of("edge/cx"), {}, nullptr).has_value());
  for (int i = 0; i < 5; ++i) {
    Event e;
    e.content = {1};
    ASSERT_TRUE(pub.publish(std::move(e)).has_value());
  }
  ASSERT_TRUE(pub.cancelPublication().has_value());
  // Queued messages still drain (accepted while announced); no crash, and
  // re-publishing without announce fails.
  scn.run_for(10_ms);
  Event e;
  e.content = {1};
  EXPECT_EQ(pub.publish(std::move(e)).error(), ChannelError::kNotAnnounced);
  EXPECT_EQ(n1->middleware().srt().counters().sent, 5u);
}

// ----------------------------------------------------------- NRT edge cases

TEST_F(EdgeFixture, EmptyNrtEventDelivers) {
  Nrtec pub{n1->middleware()};
  Nrtec sub{n2->middleware()};
  ASSERT_TRUE(pub.announce(subject_of("edge/nrt"), {}, nullptr).has_value());
  int delivered = 0;
  ASSERT_TRUE(sub.subscribe(subject_of("edge/nrt"), {},
                            [&] {
                              const auto e = sub.getEvent();
                              ASSERT_TRUE(e.has_value());
                              EXPECT_TRUE(e->content.empty());
                              ++delivered;
                            },
                            nullptr)
                  .has_value());
  ASSERT_TRUE(pub.publish(Event{}).has_value());
  scn.run_for(2_ms);
  EXPECT_EQ(delivered, 1);
}

TEST_F(EdgeFixture, MixedFragmentedAndPlainChannelsCoexist) {
  Nrtec bulk_pub{n1->middleware()};
  Nrtec small_pub{n1->middleware()};
  ASSERT_TRUE(bulk_pub.announce(subject_of("edge/bulk"),
                                AttributeList{attr::Fragmentation{true},
                                              attr::FixedPriority{255}},
                                nullptr)
                  .has_value());
  ASSERT_TRUE(small_pub.announce(subject_of("edge/small"),
                                 AttributeList{attr::FixedPriority{252}},
                                 nullptr)
                  .has_value());
  Nrtec bulk_sub{n2->middleware()};
  Nrtec small_sub{n2->middleware()};
  int bulks = 0;
  int smalls = 0;
  ASSERT_TRUE(bulk_sub.subscribe(subject_of("edge/bulk"),
                                 AttributeList{attr::Fragmentation{true}},
                                 [&] {
                                   ++bulks;
                                   (void)bulk_sub.getEvent();
                                 },
                                 nullptr)
                  .has_value());
  ASSERT_TRUE(small_sub.subscribe(subject_of("edge/small"), {},
                                  [&] {
                                    ++smalls;
                                    (void)small_sub.getEvent();
                                  },
                                  nullptr)
                  .has_value());
  Event big;
  big.content.assign(300, 0x42);
  ASSERT_TRUE(bulk_pub.publish(std::move(big)).has_value());
  // Interleave small urgent messages during the bulk transfer.
  for (int i = 0; i < 5; ++i) {
    scn.sim().schedule_at(TimePoint::origin() + 1_ms * i, [&] {
      Event e;
      e.content = {7};
      (void)small_pub.publish(std::move(e));
    });
  }
  scn.run_for(20_ms);
  EXPECT_EQ(bulks, 1);
  EXPECT_EQ(smalls, 5);
}

// --------------------------------------------------------------- API misuse

TEST_F(EdgeFixture, GetEventWithoutSubscribeIsEmpty) {
  Hrtec h{n1->middleware()};
  Srtec s{n1->middleware()};
  Nrtec n{n1->middleware()};
  EXPECT_EQ(h.getEvent(), std::nullopt);
  EXPECT_EQ(s.getEvent(), std::nullopt);
  EXPECT_EQ(n.getEvent(), std::nullopt);
}

TEST_F(EdgeFixture, DoubleAnnounceRejectedEverywhere) {
  reserve(*scn.binding().bind(subject_of("edge/dup")), 1_ms);
  Hrtec h{n1->middleware()};
  ASSERT_TRUE(h.announce(subject_of("edge/dup"), {}, nullptr).has_value());
  EXPECT_EQ(h.announce(subject_of("edge/dup"), {}, nullptr).error(),
            ChannelError::kAlreadyAnnounced);
  Srtec s{n1->middleware()};
  ASSERT_TRUE(s.announce(subject_of("edge/s"), {}, nullptr).has_value());
  EXPECT_EQ(s.announce(subject_of("edge/s"), {}, nullptr).error(),
            ChannelError::kAlreadyAnnounced);
  Nrtec n{n1->middleware()};
  ASSERT_TRUE(n.announce(subject_of("edge/n"), {}, nullptr).has_value());
  EXPECT_EQ(n.announce(subject_of("edge/n"), {}, nullptr).error(),
            ChannelError::kAlreadyAnnounced);
}

TEST_F(EdgeFixture, ChannelDestructionReleasesResources) {
  const Etag etag = *scn.binding().bind(subject_of("edge/raii"));
  reserve(etag, 1_ms, 1, /*periodic=*/false);
  {
    Hrtec pub{n1->middleware()};
    ASSERT_TRUE(pub.announce(subject_of("edge/raii"),
                             AttributeList{attr::Sporadic{10_ms}}, nullptr)
                    .has_value());
  }  // destructor cancels the publication
  Hrtec pub2{n1->middleware()};
  EXPECT_TRUE(pub2.announce(subject_of("edge/raii"),
                            AttributeList{attr::Sporadic{10_ms}}, nullptr)
                  .has_value());
}

TEST_F(EdgeFixture, TwoChannelObjectsCannotShareOnePublication) {
  reserve(*scn.binding().bind(subject_of("edge/one")), 1_ms);
  Hrtec a{n1->middleware()};
  Hrtec b{n1->middleware()};
  ASSERT_TRUE(a.announce(subject_of("edge/one"), {}, nullptr).has_value());
  EXPECT_EQ(b.announce(subject_of("edge/one"), {}, nullptr).error(),
            ChannelError::kAlreadyAnnounced);
}

}  // namespace
}  // namespace rtec
