#include <gtest/gtest.h>

#include <cstdio>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "core/gateway.hpp"
#include "core/scenario.hpp"
#include "core/srtec.hpp"
#include "sim/topology_gen.hpp"
#include "time/periodic.hpp"
#include "trace/binary.hpp"
#include "util/random.hpp"
#include "util/task_pool.hpp"

// Differential tests for sharded multi-segment scenarios: the parallel
// conservative engine (Config::shards > 1) must produce *bit-identical*
// bus behavior to the single-kernel run — same frames, same order, same
// nanosecond timestamps — for every shard/thread count. The observable is
// the full per-segment frame trace from CanBus observers.

namespace rtec {
namespace {

using namespace rtec::literals;

enum class Topology { kChain, kStar };

/// One fully formatted frame record; any divergence (content, order or
/// timing) between two runs shows up as a string mismatch.
std::string format_frame(const CanBus::FrameEvent& ev) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%lld-%lld id=%u n=%u ok=%d bits=%d a=%d",
                static_cast<long long>(ev.start.ns()),
                static_cast<long long>(ev.end.ns()), ev.frame.id,
                static_cast<unsigned>(ev.sender), ev.success ? 1 : 0,
                ev.wire_bits, ev.attempt);
  return buf;
}

struct RunResult {
  std::vector<std::vector<std::string>> traces;  ///< per segment
  std::vector<std::int64_t> precision_ns;        ///< per segment, at end
  std::uint64_t handoffs = 0;
  std::vector<std::string> rteb;  ///< per-segment binary traces (opt-in)
};

/// Builds a `segments`-segment scenario (chain: 0-1-2-...; star: 0 is the
/// hub) with per-segment clock sync, local SRT chatter and one bridged SRT
/// subject per gateway link, runs it for `sim_time` and returns the traces.
RunResult run_topology(Topology topo, int segments, std::uint64_t seed,
                       int shards, unsigned threads, Duration sim_time) {
  Scenario::Config cfg;
  cfg.networks = segments;
  cfg.shards = shards;
  cfg.threads = threads;
  cfg.calendar.round_length = 10_ms;
  Scenario scn{cfg};
  TaskPool pool;
  Rng setup_rng{seed};

  RunResult out;
  out.traces.resize(static_cast<std::size_t>(segments));
  for (int net = 0; net < segments; ++net) {
    auto* trace = &out.traces[static_cast<std::size_t>(net)];
    scn.bus(net).add_observer(
        [trace](const CanBus::FrameEvent& ev) { trace->push_back(format_frame(ev)); });
  }

  // Three regular nodes per segment with drifting clocks (deterministic
  // per (seed, net, k) because setup order is identical in every config).
  constexpr int kNodesPerSeg = 3;
  const auto node_id = [](int net, int k) {
    return static_cast<NodeId>(net * 20 + k + 1);
  };
  for (int net = 0; net < segments; ++net) {
    for (int k = 0; k < kNodesPerSeg; ++k) {
      Node::ClockParams p;
      p.initial_offset = Duration::microseconds(setup_rng.uniform_int(-20, 20));
      p.drift_ppb = setup_rng.uniform_int(-80'000, 80'000);
      p.granularity = 1_us;
      scn.add_node(node_id(net, k), p, net);
    }
  }

  // Gateway links: chain i→i+1, star hub 0→i.
  std::vector<std::pair<int, int>> links;
  for (int i = 1; i < segments; ++i)
    links.emplace_back(topo == Topology::kChain ? i - 1 : 0, i);
  std::vector<std::unique_ptr<Gateway>> gateways;
  for (std::size_t l = 0; l < links.size(); ++l) {
    const auto [na, nb] = links[l];
    Node& ga = scn.add_node(static_cast<NodeId>(100 + 2 * l), {}, na);
    Node& gb = scn.add_node(static_cast<NodeId>(101 + 2 * l), {}, nb);
    gateways.push_back(std::make_unique<Gateway>(
        ga, gb, scn.link_gateway(ga, gb, /*forward latency*/ 250_us)));
  }

  // Per-segment sync master (last regular node of the segment).
  for (int net = 0; net < segments; ++net) {
    const auto ok =
        scn.enable_clock_sync(node_id(net, kNodesPerSeg - 1), 500_us);
    EXPECT_TRUE(ok.has_value()) << "sync setup failed on segment " << net;
  }

  std::vector<std::unique_ptr<Srtec>> stacks;
  const auto make_stack = [&](NodeId id) {
    stacks.push_back(std::make_unique<Srtec>(scn.node(id).middleware()));
    return stacks.back().get();
  };

  // One bridged subject per link: published on node 0 of the `a` side,
  // drained on node 1 of the `b` side — every frame crosses the gateway.
  std::vector<std::unique_ptr<PeriodicLocalTask>> tasks;
  for (std::size_t l = 0; l < links.size(); ++l) {
    const auto [na, nb] = links[l];
    const Subject subj = subject_of("ms/x" + std::to_string(l));
    EXPECT_TRUE(gateways[l]->bridge_srt(subj, 10_ms, 30_ms).has_value());
    Srtec* pub = make_stack(node_id(na, 0));
    EXPECT_TRUE(
        pub->announce(subj, AttributeList{attr::Deadline{10_ms}}, nullptr)
            .has_value());
    Srtec* sub = make_stack(node_id(nb, 1));
    EXPECT_TRUE(sub->subscribe(subj, {}, [sub] { (void)sub->getEvent(); },
                               nullptr)
                    .has_value());
    std::uint8_t payload = static_cast<std::uint8_t>(l);
    tasks.push_back(std::make_unique<PeriodicLocalTask>(
        scn.node(node_id(na, 0)).clock(), 7_ms, [pub, payload]() mutable {
          Event e;
          e.content = {payload++, 0x42};
          (void)pub->publish(std::move(e));
        }));
    tasks.back()->start();
  }

  // Local SRT chatter: every regular node publishes with exponential gaps
  // drawn from a per-segment Rng. Each Rng is touched only by callbacks of
  // its own segment, so its draw sequence is shard-invariant.
  std::vector<std::unique_ptr<Rng>> seg_rngs;
  for (int net = 0; net < segments; ++net)
    seg_rngs.push_back(std::make_unique<Rng>(
        seed * 1000 + static_cast<std::uint64_t>(net) + 1));
  for (int net = 0; net < segments; ++net) {
    for (int k = 0; k < kNodesPerSeg; ++k) {
      const Subject subj =
          subject_of("ms/c" + std::to_string(net) + "_" + std::to_string(k));
      Srtec* pub = make_stack(node_id(net, k));
      EXPECT_TRUE(
          pub->announce(subj, AttributeList{attr::Deadline{20_ms}}, nullptr)
              .has_value());
      Srtec* sub = make_stack(node_id(net, (k + 1) % kNodesPerSeg));
      EXPECT_TRUE(sub->subscribe(subj, {},
                                 [sub] { (void)sub->getEvent(); }, nullptr)
                      .has_value());
      Simulator* sim = &scn.segment_sim(net);
      Rng* rng = seg_rngs[static_cast<std::size_t>(net)].get();
      auto* loop = pool.make();
      *loop = [pub, sim, rng, loop] {
        Event e;
        e.content = {0x5A};
        (void)pub->publish(std::move(e));
        sim->schedule_after(Duration::nanoseconds(static_cast<std::int64_t>(
                                rng->exponential(2.0e6))),
                            [loop] { (*loop)(); });
      };
      sim->schedule_after(
          Duration::microseconds(setup_rng.uniform_int(100, 3000)),
          [loop] { (*loop)(); });
    }
  }

  scn.run_for(sim_time);

  for (int net = 0; net < segments; ++net)
    out.precision_ns.push_back(scn.clock_precision(net).ns());
  out.handoffs = scn.shard_engine().stats().handoffs;
  return out;
}

void expect_identical(const RunResult& ref, const RunResult& got,
                      const std::string& what) {
  ASSERT_EQ(ref.traces.size(), got.traces.size()) << what;
  for (std::size_t net = 0; net < ref.traces.size(); ++net) {
    const auto& a = ref.traces[net];
    const auto& b = got.traces[net];
    ASSERT_EQ(a.size(), b.size()) << what << ": frame count, segment " << net;
    for (std::size_t i = 0; i < a.size(); ++i)
      ASSERT_EQ(a[i], b[i]) << what << ": segment " << net << ", frame " << i;
  }
  EXPECT_EQ(ref.precision_ns, got.precision_ns) << what;
}

struct ShardConfig {
  int shards;
  unsigned threads;
};

void differential(Topology topo, int segments, const char* name) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    // Reference: one shared kernel (the sequential legacy path).
    const RunResult ref =
        run_topology(topo, segments, seed, /*shards=*/1, /*threads=*/1, 150_ms);
    std::size_t total = 0;
    for (const auto& t : ref.traces) total += t.size();
    ASSERT_GT(total, 100u) << "workload too idle to be a meaningful diff";

    const ShardConfig configs[] = {
        {2, 2},                                        // two shards, two threads
        {segments, 1},                                 // max shards, sequential
        {segments, static_cast<unsigned>(segments)},   // max shards, parallel
    };
    for (const auto& [shards, threads] : configs) {
      const RunResult got =
          run_topology(topo, segments, seed, shards, threads, 150_ms);
      expect_identical(ref, got,
                       std::string{name} + " seed=" + std::to_string(seed) +
                           " shards=" + std::to_string(shards) +
                           " threads=" + std::to_string(threads));
      if (shards > 1) {
        EXPECT_GT(got.handoffs, 0u);
      }
    }
  }
}

TEST(MultisegDifferential, ChainOfFourSegments) {
  differential(Topology::kChain, 4, "chain4");
}

TEST(MultisegDifferential, StarOfThreeSegments) {
  differential(Topology::kStar, 3, "star3");
}

// --- City-scale generated topologies -----------------------------------
// The same differential contract at 64 segments on every generated shape
// (sim/topology_gen.hpp): fleet-of-stars, campus grid, backbone tree.
// Node ids are reused across segments here — the (network, id) keying in
// Scenario is what makes city scale possible at all (NodeId is 7-bit).

/// Builds the standard city workload over a generated topology: two
/// regular nodes per segment with drifting clocks and per-segment sync,
/// one bridged SRT subject per gateway link, and Poisson chatter on every
/// fourth segment (busy/light mix — the weak coupling per-link lookahead
/// exploits).
RunResult run_city(const TopoSpec& topo, int shards, unsigned threads,
                   Duration sim_time, bool record_rteb = false) {
  Scenario::Config cfg;
  cfg.networks = topo.segments;
  cfg.shards = shards;
  cfg.threads = threads;
  cfg.calendar.round_length = 10_ms;
  Scenario scn{cfg};
  TaskPool pool;
  Rng setup_rng{topo.seed + 0xC17Bu};

  // Recorders attach before link_gateway: the recorder-first wiring path
  // must still capture every handoff of later-created channels.
  if (record_rteb)
    for (int net = 0; net < topo.segments; ++net) (void)scn.record_rteb(net);

  RunResult out;
  out.traces.resize(static_cast<std::size_t>(topo.segments));
  for (int net = 0; net < topo.segments; ++net) {
    auto* trace = &out.traces[static_cast<std::size_t>(net)];
    scn.bus(net).add_observer([trace](const CanBus::FrameEvent& ev) {
      trace->push_back(format_frame(ev));
    });
  }

  for (int net = 0; net < topo.segments; ++net) {
    for (NodeId k : {NodeId{1}, NodeId{2}}) {
      Node::ClockParams p;
      p.initial_offset = Duration::microseconds(setup_rng.uniform_int(-20, 20));
      p.drift_ppb = setup_rng.uniform_int(-80'000, 80'000);
      p.granularity = 1_us;
      scn.add_node(k, p, net);
    }
  }

  // One gateway per generated link; endpoint node ids count up from 100
  // independently on each segment (a fleet hub carries up to 16 of them).
  std::vector<int> next_gw_id(static_cast<std::size_t>(topo.segments), 100);
  std::vector<std::unique_ptr<Gateway>> gateways;
  for (const TopoLink& link : topo.links) {
    Node& ga = scn.add_node(
        static_cast<NodeId>(next_gw_id[static_cast<std::size_t>(link.a)]++),
        {}, link.a);
    Node& gb = scn.add_node(
        static_cast<NodeId>(next_gw_id[static_cast<std::size_t>(link.b)]++),
        {}, link.b);
    gateways.push_back(std::make_unique<Gateway>(
        ga, gb, scn.link_gateway(ga, gb, link.latency)));
  }

  for (int net = 0; net < topo.segments; ++net) {
    const auto ok = scn.enable_clock_sync_on(net, NodeId{2}, 500_us);
    EXPECT_TRUE(ok.has_value()) << "sync setup failed on segment " << net;
  }

  std::vector<std::unique_ptr<Srtec>> stacks;
  const auto make_stack = [&](NodeId id, int net) {
    stacks.push_back(std::make_unique<Srtec>(scn.node(id, net).middleware()));
    return stacks.back().get();
  };

  // One bridged subject per link, published from the a side and drained on
  // the b side; staggered periods so link traffic is heterogeneous.
  std::vector<std::unique_ptr<PeriodicLocalTask>> tasks;
  for (std::size_t l = 0; l < topo.links.size(); ++l) {
    const TopoLink& link = topo.links[l];
    const Subject subj = subject_of("city/x" + std::to_string(l));
    EXPECT_TRUE(gateways[l]->bridge_srt(subj, 10_ms, 30_ms).has_value());
    Srtec* pub = make_stack(NodeId{1}, link.a);
    EXPECT_TRUE(
        pub->announce(subj, AttributeList{attr::Deadline{10_ms}}, nullptr)
            .has_value());
    Srtec* sub = make_stack(NodeId{2}, link.b);
    EXPECT_TRUE(sub->subscribe(subj, {}, [sub] { (void)sub->getEvent(); },
                               nullptr)
                    .has_value());
    std::uint8_t payload = static_cast<std::uint8_t>(l);
    tasks.push_back(std::make_unique<PeriodicLocalTask>(
        scn.node(NodeId{1}, link.a).clock(),
        5_ms + Duration::milliseconds(static_cast<std::int64_t>(l % 5)),
        [pub, payload]() mutable {
          Event e;
          e.content = {payload++, 0x42};
          (void)pub->publish(std::move(e));
        }));
    tasks.back()->start();
  }

  // Poisson chatter on every fourth segment only: the busy/light mix.
  std::vector<std::unique_ptr<Rng>> seg_rngs;
  for (int net = 0; net < topo.segments; net += 4) {
    seg_rngs.push_back(std::make_unique<Rng>(
        topo.seed * 1000 + static_cast<std::uint64_t>(net) + 1));
    const Subject subj = subject_of("city/c" + std::to_string(net));
    Srtec* pub = make_stack(NodeId{1}, net);
    EXPECT_TRUE(
        pub->announce(subj, AttributeList{attr::Deadline{20_ms}}, nullptr)
            .has_value());
    Srtec* sub = make_stack(NodeId{2}, net);
    EXPECT_TRUE(sub->subscribe(subj, {}, [sub] { (void)sub->getEvent(); },
                               nullptr)
                    .has_value());
    Simulator* sim = &scn.segment_sim(net);
    Rng* rng = seg_rngs.back().get();
    auto* loop = pool.make();
    *loop = [pub, sim, rng, loop] {
      Event e;
      e.content = {0x5A};
      (void)pub->publish(std::move(e));
      sim->schedule_after(Duration::nanoseconds(static_cast<std::int64_t>(
                              rng->exponential(0.7e6))),
                          [loop] { (*loop)(); });
    };
    sim->schedule_after(
        Duration::microseconds(setup_rng.uniform_int(100, 3000)),
        [loop] { (*loop)(); });
  }

  scn.run_for(sim_time);

  for (int net = 0; net < topo.segments; ++net)
    out.precision_ns.push_back(scn.clock_precision(net).ns());
  out.handoffs = scn.shard_engine().stats().handoffs;
  if (record_rteb)
    for (int net = 0; net < topo.segments; ++net)
      out.rteb.push_back(scn.rteb(net)->bytes());
  return out;
}

void city_differential(TopoShape shape, int segments,
                       std::initializer_list<unsigned> thread_counts,
                       Duration sim_time) {
  const TopoSpec topo = make_topology(shape, segments, /*seed=*/11);
  const RunResult ref = run_city(topo, /*shards=*/1, /*threads=*/1, sim_time);
  std::size_t total = 0;
  for (const auto& t : ref.traces) total += t.size();
  ASSERT_GT(total, static_cast<std::size_t>(segments))
      << "workload too idle to be a meaningful diff";

  for (const unsigned threads : thread_counts) {
    const RunResult got = run_city(topo, segments, threads, sim_time);
    expect_identical(ref, got,
                     std::string{topo_shape_name(shape)} +
                         std::to_string(segments) +
                         " threads=" + std::to_string(threads));
    EXPECT_GT(got.handoffs, 0u);
  }
}

TEST(MultisegCity, FleetStar64ByteIdenticalAcrossThreads) {
  city_differential(TopoShape::kFleetStar, 64, {1u, 2u, 4u}, 60_ms);
}

TEST(MultisegCity, CampusGrid64ByteIdenticalAcrossThreads) {
  city_differential(TopoShape::kCampusGrid, 64, {1u, 2u, 4u}, 60_ms);
}

TEST(MultisegCity, BackboneTree64ByteIdenticalAcrossThreads) {
  city_differential(TopoShape::kBackboneTree, 64, {1u, 2u, 4u}, 60_ms);
}

TEST(MultisegCity, RtebByteIdenticalAcrossShardsAndThreads) {
  // The tentpole determinism gate: per-segment RTEB binary traces of a
  // generated 64-segment grid are byte-identical for every shard/thread
  // configuration — not just semantically equal, the files themselves.
  const TopoSpec topo = make_topology(TopoShape::kCampusGrid, 64, /*seed=*/11);
  const RunResult ref = run_city(topo, /*shards=*/1, /*threads=*/1, 40_ms,
                                 /*record_rteb=*/true);
  ASSERT_EQ(ref.rteb.size(), 64u);
  std::size_t total_bytes = 0;
  for (const auto& t : ref.rteb) total_bytes += t.size();
  ASSERT_GT(total_bytes, 64u * trace::kRtebHeaderSize)
      << "workload too idle to be a meaningful byte-identity check";

  // The reference trace must actually contain handoff records (the only
  // record kind whose ordering crosses shard boundaries).
  std::uint64_t handoff_records = 0;
  for (const auto& t : ref.rteb) {
    auto reader = trace::RtebReader::open(t);
    ASSERT_TRUE(reader.has_value()) << reader.error();
    const auto records = reader->read_all();
    ASSERT_TRUE(records.has_value()) << records.error();
    for (const auto& r : *records)
      if (r.kind == trace::RtebKind::kHandoff) ++handoff_records;
  }
  EXPECT_GT(handoff_records, 0u);

  const ShardConfig configs[] = {{2, 1}, {2, 2}, {2, 4}, {64, 4}};
  for (const auto& [shards, threads] : configs) {
    const RunResult got = run_city(topo, shards, threads, 40_ms,
                                   /*record_rteb=*/true);
    ASSERT_EQ(got.rteb.size(), ref.rteb.size());
    for (std::size_t net = 0; net < ref.rteb.size(); ++net)
      ASSERT_EQ(ref.rteb[net], got.rteb[net])
          << "RTEB bytes diverge on segment " << net << " at shards="
          << shards << " threads=" << threads;
  }
}

TEST(MultisegCity, GridSixteenTwoThreadsQuick) {
  // The quick configuration CI runs under ThreadSanitizer: small enough
  // to stay fast at TSan overheads, still a real 2-D grid with batched
  // handoffs, per-link horizons and the spin-then-park barrier engaged.
  city_differential(TopoShape::kCampusGrid, 16, {2u}, 40_ms);
}

TEST(MultisegGateway, BurstCrossesInFifoOrderWithDeterministicStamps) {
  // Satellite regression: several frames delivered to the gateway stack in
  // a tight burst must be re-published on the far side in arrival order,
  // with release stamps that do not depend on sharding. The far-side
  // subscriber sees payload sequence 0..7 strictly in order, and the
  // entire far-segment trace matches the single-kernel run.
  struct Probe {
    std::vector<int> burst_seq;
    std::vector<std::int64_t> burst_at;
  };
  const auto run = [](int shards, unsigned threads) {
    Scenario::Config cfg;
    cfg.networks = 2;
    cfg.shards = shards;
    cfg.threads = threads;
    Scenario scn{cfg};
    Node& p = scn.add_node(1, {}, 0);
    Node& s = scn.add_node(21, {}, 1);
    Node& ga = scn.add_node(40, {}, 0);
    Node& gb = scn.add_node(41, {}, 1);
    Gateway gw{ga, gb, scn.link_gateway(ga, gb, 250_us)};
    const Subject subj = subject_of("ms/burst");
    EXPECT_TRUE(gw.bridge_srt(subj, 10_ms, 30_ms).has_value());

    Srtec pub{p.middleware()};
    EXPECT_TRUE(
        pub.announce(subj, AttributeList{attr::Deadline{10_ms}}, nullptr)
            .has_value());
    Srtec sub{s.middleware()};
    auto probe = std::make_shared<Probe>();
    Scenario* sc = &scn;
    EXPECT_TRUE(sub.subscribe(subj, {},
                              [&sub, probe, sc] {
                                while (auto e = sub.getEvent()) {
                                  probe->burst_seq.push_back(e->content[1]);
                                  probe->burst_at.push_back(
                                      sc->segment_sim(1).now().ns());
                                }
                              },
                              nullptr)
                    .has_value());
    scn.segment_sim(0).schedule_at(TimePoint::origin() + 5_ms, [&pub] {
      for (int i = 0; i < 8; ++i) {
        Event e;
        e.content = {0xB0, static_cast<std::uint8_t>(i)};
        (void)pub.publish(std::move(e));
      }
    });
    scn.run_for(100_ms);
    return std::pair{*probe, gw.counters().forwarded_a_to_b};
  };

  const auto [seq_ref, fwd_ref] = run(1, 1);
  ASSERT_EQ(seq_ref.burst_seq, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(fwd_ref, 8u);
  for (std::size_t i = 1; i < seq_ref.burst_at.size(); ++i)
    EXPECT_LE(seq_ref.burst_at[i - 1], seq_ref.burst_at[i]);

  const auto [seq_par, fwd_par] = run(2, 2);
  EXPECT_EQ(seq_par.burst_seq, seq_ref.burst_seq);
  EXPECT_EQ(seq_par.burst_at, seq_ref.burst_at);
  EXPECT_EQ(fwd_par, fwd_ref);
}

TEST(MultisegClockSync, PerSegmentMastersKeepPrecisionUnderAsyncAdvance) {
  // Satellite: clock sync runs independently per segment; shards advancing
  // asynchronously between barriers must not degrade any segment's
  // precision Π, and the converged values must match the single-kernel
  // run exactly.
  const auto run = [](int shards, unsigned threads) {
    Scenario::Config cfg;
    cfg.networks = 3;
    cfg.shards = shards;
    cfg.threads = threads;
    cfg.calendar.round_length = 10_ms;
    Scenario scn{cfg};
    Rng rng{7};
    for (int net = 0; net < 3; ++net) {
      for (int k = 0; k < 4; ++k) {
        Node::ClockParams p;
        p.initial_offset = Duration::microseconds(rng.uniform_int(-30, 30));
        p.drift_ppb = rng.uniform_int(-80'000, 80'000);
        p.granularity = 1_us;
        scn.add_node(static_cast<NodeId>(net * 20 + k + 1), p, net);
      }
    }
    // Chain the segments so the engine actually runs multi-shard epochs.
    std::vector<std::unique_ptr<Gateway>> gws;
    for (int l = 0; l < 2; ++l) {
      Node& a = scn.add_node(static_cast<NodeId>(100 + 2 * l), {}, l);
      Node& b = scn.add_node(static_cast<NodeId>(101 + 2 * l), {}, l + 1);
      gws.push_back(std::make_unique<Gateway>(
          a, b, scn.link_gateway(a, b, 250_us)));
    }
    for (int net = 0; net < 3; ++net) {
      EXPECT_TRUE(scn.enable_clock_sync(static_cast<NodeId>(net * 20 + 4),
                                        500_us)
                      .has_value());
    }
    scn.run_for(500_ms);
    std::vector<std::int64_t> prec;
    for (int net = 0; net < 3; ++net)
      prec.push_back(scn.clock_precision(net).ns());
    return prec;
  };

  const auto ref = run(1, 1);
  for (int net = 0; net < 3; ++net) {
    // Converged per-segment precision stays well inside the ΔG_min budget
    // (granularity 1 µs, ±80 ppm drift, 10 ms rounds → Π ≲ 15 µs).
    EXPECT_GT(ref[static_cast<std::size_t>(net)], 0);
    EXPECT_LT(ref[static_cast<std::size_t>(net)], 15'000)
        << "segment " << net;
  }
  EXPECT_EQ(run(3, 1), ref);
  EXPECT_EQ(run(3, 3), ref);
}

}  // namespace
}  // namespace rtec
