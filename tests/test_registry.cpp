#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/gateway.hpp"
#include "core/scenario.hpp"
#include "core/srtec.hpp"
#include "trace/registry.hpp"

// Unified metrics registry (trace/registry.hpp): deterministic JSON
// snapshots, component exporters, and the Scenario-level assembly.

namespace rtec {
namespace {

using namespace rtec::literals;

TEST(Registry, JsonIsSortedAndExact) {
  trace::MetricsRegistry reg;
  reg.set("zeta.count", std::uint64_t{42});
  reg.set("alpha.value", -7.0);
  reg.set("mid.signed", std::int64_t{-3});
  reg.set("alpha.ratio", 0.1);

  EXPECT_EQ(reg.to_json(),
            "{\n"
            "  \"alpha.ratio\": 0.10000000000000001,\n"  // %.17g, exact
            "  \"alpha.value\": -7,\n"
            "  \"mid.signed\": -3,\n"
            "  \"zeta.count\": 42\n"
            "}\n");

  ASSERT_TRUE(reg.get("zeta.count").has_value());
  EXPECT_EQ(std::get<std::uint64_t>(*reg.get("zeta.count")), 42u);
  EXPECT_EQ(reg.get_double("mid.signed"), -3.0);
  EXPECT_FALSE(reg.get("missing").has_value());
  EXPECT_FALSE(reg.get_double("missing").has_value());
  EXPECT_EQ(reg.size(), 4u);
}

TEST(Registry, SaveWritesTheSnapshot) {
  trace::MetricsRegistry reg;
  reg.set("a", std::uint64_t{1});
  const char* path = "test_registry_tmp.json";
  ASSERT_TRUE(reg.save(path));
  std::ifstream in{path};
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), reg.to_json());
  std::remove(path);
}

TEST(Registry, KernelStatsCountSchedulingActivity) {
  Simulator sim;
  int fired = 0;
  for (int i = 0; i < 5; ++i)
    sim.schedule_after(Duration::microseconds(i + 1), [&fired] { ++fired; });
  auto cancel_me =
      sim.schedule_after(1_ms, [] { FAIL() << "cancelled event fired"; });
  sim.cancel(cancel_me);
  sim.run();
  EXPECT_EQ(fired, 5);

  trace::MetricsRegistry reg;
  trace::export_metrics(reg, "kernel", sim.stats());
  EXPECT_EQ(reg.get_double("kernel.events_scheduled"), 6.0);
  EXPECT_EQ(reg.get_double("kernel.events_cancelled"), 1.0);
  EXPECT_EQ(reg.get_double("kernel.events_fired"), 5.0);
}

TEST(Registry, SpanProfilerSlotsAreStableAndExported) {
  SpanProfiler prof;
  SpanStats* s1 = prof.slot("engine.epoch_advance");
  SpanStats* again = prof.slot("engine.epoch_advance");
  EXPECT_EQ(s1, again);  // stable address, linear find-or-create
  s1->record(100);
  s1->record(300);
  (void)prof.slot("empty.span");  // zero-count slot exports zeros

  trace::MetricsRegistry reg;
  trace::export_metrics(reg, "profile", prof);
  EXPECT_EQ(reg.get_double("profile.engine.epoch_advance.count"), 2.0);
  EXPECT_EQ(reg.get_double("profile.engine.epoch_advance.total_ns"), 400.0);
  EXPECT_EQ(reg.get_double("profile.engine.epoch_advance.min_ns"), 100.0);
  EXPECT_EQ(reg.get_double("profile.engine.epoch_advance.max_ns"), 300.0);
  EXPECT_EQ(reg.get_double("profile.engine.epoch_advance.mean_ns"), 200.0);
  EXPECT_EQ(reg.get_double("profile.empty.span.count"), 0.0);
  EXPECT_EQ(reg.get_double("profile.empty.span.min_ns"), 0.0);
}

/// Two nodes exchanging SRT events on one segment; enough activity that
/// every layer has non-zero counters.
void run_srt_chatter(Scenario& scn, std::vector<std::unique_ptr<Srtec>>& keep,
                     Duration sim_time) {
  Node& p = scn.add_node(1);
  Node& s = scn.add_node(2);
  keep.push_back(std::make_unique<Srtec>(p.middleware()));
  Srtec* pub = keep.back().get();
  const Subject subj = subject_of("reg/x");
  ASSERT_TRUE(pub->announce(subj, AttributeList{attr::Deadline{10_ms}},
                            nullptr)
                  .has_value());
  keep.push_back(std::make_unique<Srtec>(s.middleware()));
  Srtec* sub = keep.back().get();
  ASSERT_TRUE(sub->subscribe(subj, {}, [sub] { (void)sub->getEvent(); },
                             nullptr)
                  .has_value());
  for (int i = 0; i < 20; ++i) {
    scn.segment_sim(0).schedule_at(
        TimePoint::origin() + Duration::milliseconds(1 + i), [pub, i] {
          Event e;
          e.content = {static_cast<std::uint8_t>(i)};
          (void)pub->publish(std::move(e));
        });
  }
  scn.run_for(sim_time);
}

TEST(Registry, ScenarioSnapshotCoversEveryLayerAndIsDeterministic) {
  const auto run = [] {
    Scenario scn;
    scn.enable_profiling();
    (void)scn.record_rteb(0);
    std::vector<std::unique_ptr<Srtec>> keep;
    run_srt_chatter(scn, keep, 50_ms);
    return scn.metrics_json();
  };
  const std::string json = run();

  // One representative name per exporter family.
  for (const char* key :
       {"\"kernel000.events_fired\"", "\"engine.epochs\"",
        "\"net000.bus.frames_ok\"", "\"net000.rteb.bytes\"",
        "\"net000.rteb.records\"",
        "\"profile.net000.bus.occupancy_ok.count\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << "\n" << json;
  }
  // The unsharded fast path never runs the engine.
  EXPECT_NE(json.find("\"engine.epochs\": 0"), std::string::npos);

  trace::MetricsRegistry reg;
  {
    Scenario scn;
    scn.enable_profiling();
    (void)scn.record_rteb(0);
    std::vector<std::unique_ptr<Srtec>> keep;
    run_srt_chatter(scn, keep, 50_ms);
    scn.export_metrics(reg);
    EXPECT_GT(std::get<std::uint64_t>(*reg.get("net000.bus.frames_ok")), 0u);
    EXPECT_GT(std::get<std::uint64_t>(*reg.get("net000.rteb.records")), 0u);
    EXPECT_GT(
        std::get<std::uint64_t>(
            *reg.get("profile.net000.bus.occupancy_ok.count")),
        0u);
  }
  // Identical scenario, identical snapshot — byte for byte.
  EXPECT_EQ(json, run());
}

TEST(Registry, ShardedScenarioExportsPerShardCounters) {
  Scenario::Config cfg;
  cfg.networks = 2;
  cfg.shards = 2;
  cfg.threads = 1;  // deterministic barrier counters stay zero / stable
  Scenario scn{cfg};
  Node& a = scn.add_node(10, {}, 0);
  scn.add_node(11, {}, 1);
  Node& gw_a = scn.add_node(20, {}, 0);
  Node& gw_b = scn.add_node(21, {}, 1);
  Gateway gw{gw_a, gw_b, scn.link_gateway(gw_a, gw_b, 250_us)};
  const Subject subj = subject_of("reg/gw");
  ASSERT_TRUE(gw.bridge_srt(subj, 10_ms, 30_ms).has_value());
  Srtec pub{a.middleware()};
  ASSERT_TRUE(pub.announce(subj, {}, nullptr).has_value());
  for (int i = 0; i < 10; ++i) {
    scn.segment_sim(0).schedule_at(
        TimePoint::origin() + Duration::milliseconds(1 + i), [&pub, i] {
          Event e;
          e.content = {static_cast<std::uint8_t>(i), 0x42};
          (void)pub.publish(std::move(e));
        });
  }
  scn.run_for(80_ms);

  trace::MetricsRegistry reg;
  scn.export_metrics(reg);
  gw.export_metrics(reg, "gw0");

  EXPECT_GT(std::get<std::uint64_t>(*reg.get("engine.epochs")), 0u);
  EXPECT_GT(std::get<std::uint64_t>(*reg.get("engine.handoffs")), 0u);
  EXPECT_GT(std::get<std::uint64_t>(*reg.get("engine.handoff_batches")), 0u);
  EXPECT_GT(std::get<std::uint64_t>(*reg.get("engine.handoff_bytes")), 0u);
  ASSERT_TRUE(reg.get("engine.shard.000.runs").has_value());
  ASSERT_TRUE(reg.get("engine.shard.001.runs").has_value());
  EXPECT_GT(std::get<std::uint64_t>(*reg.get("engine.shard.000.runs")), 0u);
  ASSERT_TRUE(reg.get("kernel001.events_fired").has_value());
  EXPECT_GT(std::get<std::uint64_t>(*reg.get("gw0.forwarded_a_to_b")), 0u);
  ASSERT_TRUE(reg.get("gw0.forward_failures").has_value());

  // At least one horizon-advance histogram bucket is populated, and the
  // engine's lifetime counters survive into the snapshot cumulatively.
  bool horizon_bucket = false;
  for (const auto& [name, value] : reg.values())
    if (name.rfind("engine.horizon_log2.", 0) == 0) horizon_bucket = true;
  EXPECT_TRUE(horizon_bucket);
}

TEST(Registry, ExportersForProbesAndHistograms) {
  Histogram hist{0.0, 100.0, 10};
  trace::MetricsRegistry empty_reg;
  trace::export_metrics(empty_reg, "h", hist);
  EXPECT_EQ(empty_reg.get_double("h.count"), 0.0);
  EXPECT_FALSE(empty_reg.get("h.p50").has_value());  // quantiles need data

  for (int i = 1; i <= 100; ++i) hist.add(static_cast<double>(i % 100));
  trace::MetricsRegistry reg;
  trace::export_metrics(reg, "h", hist);
  EXPECT_EQ(reg.get_double("h.count"), 100.0);
  EXPECT_TRUE(reg.get("h.p99").has_value());
}

}  // namespace
}  // namespace rtec
