#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "baselines/fixed_priority.hpp"
#include "canbus/bus.hpp"
#include "util/random.hpp"

/// Cross-validation of the simulator against the classic CAN response-time
/// analysis: for randomly generated feasible fixed-priority stream sets,
/// the worst response time observed over thousands of simulated messages
/// must never exceed the analytic bound. This checks the RTA
/// implementation and the bus model against each other — a bug in either
/// (arbitration order, blocking, interference accounting, frame timing)
/// shows up as a violated bound.

namespace rtec {
namespace {

using literals::operator""_us;
using literals::operator""_ms;

class RtaValidation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RtaValidation, ObservedResponseNeverExceedsAnalyticBound) {
  Rng rng{GetParam()};

  // Random stream set, re-rolled until the RTA accepts it.
  std::vector<StreamSpec> streams;
  std::vector<PriorityAssignment> assignment;
  const BusConfig bus_cfg;
  for (int attempt = 0; attempt < 50; ++attempt) {
    streams.clear();
    const int n = static_cast<int>(rng.uniform_int(3, 6));
    for (int i = 0; i < n; ++i) {
      StreamSpec s;
      s.id = i;
      s.node = static_cast<NodeId>(i + 1);
      s.period = Duration::microseconds(rng.uniform_int(2'000, 20'000));
      s.deadline = s.period;
      s.dlc = static_cast<int>(rng.uniform_int(0, 8));
      streams.push_back(s);
    }
    assignment = deadline_monotonic_assignment(streams);
    if (feasible(assignment, bus_cfg)) break;
    assignment.clear();
  }
  ASSERT_FALSE(assignment.empty()) << "no feasible set found";
  const auto bounds = response_time_analysis(assignment, bus_cfg);

  // Simulate: one sender per stream, strictly periodic releases with
  // random initial phases (the analysis covers every phasing).
  Simulator sim;
  CanBus bus{sim, bus_cfg};
  std::vector<std::unique_ptr<CanController>> ctls;
  std::vector<std::unique_ptr<StaticPrioritySender>> senders;
  for (const auto& pa : assignment) {
    ctls.push_back(std::make_unique<CanController>(sim, pa.stream.node));
    bus.attach(*ctls.back());
    senders.push_back(std::make_unique<StaticPrioritySender>(sim, *ctls.back()));
  }

  // Track release times per (priority) so the observer can compute
  // response = end-of-frame - release.
  struct Tracking {
    std::vector<TimePoint> pending_releases;  // FIFO per stream
    Duration worst = Duration::zero();
  };
  std::map<Priority, Tracking> tracking;

  const Duration kRun = Duration::seconds(2);
  for (std::size_t si = 0; si < assignment.size(); ++si) {
    const auto& pa = assignment[si];
    StaticPrioritySender* snd = senders[si].get();
    const TimePoint phase = TimePoint::origin() + Duration::nanoseconds(
        rng.uniform_int(0, pa.stream.period.ns() - 1));
    for (TimePoint t = phase; t < TimePoint::origin() + kRun;
         t += pa.stream.period) {
      sim.schedule_at(t, [snd, pa, t, &tracking, &sim] {
        tracking[pa.priority].pending_releases.push_back(t);
        snd->queue(pa.stream, pa.priority, t + pa.stream.deadline, sim.now());
      });
    }
  }
  bus.add_observer([&](const CanBus::FrameEvent& ev) {
    if (!ev.success) return;
    const Priority p = id_priority(ev.frame.id);
    auto it = tracking.find(p);
    if (it == tracking.end() || it->second.pending_releases.empty()) return;
    const TimePoint release = it->second.pending_releases.front();
    it->second.pending_releases.erase(it->second.pending_releases.begin());
    const Duration response = ev.end - release;
    if (response > it->second.worst) it->second.worst = response;
  });

  sim.run_until(TimePoint::origin() + kRun + 100_ms);

  for (std::size_t si = 0; si < assignment.size(); ++si) {
    const auto& pa = assignment[si];
    ASSERT_TRUE(bounds[si].has_value());
    const Duration observed = tracking[pa.priority].worst;
    EXPECT_GT(observed.ns(), 0) << "stream " << pa.stream.id << " never ran";
    EXPECT_LE(observed.ns(), bounds[si]->ns())
        << "stream " << pa.stream.id << " (priority "
        << static_cast<int>(pa.priority) << "): observed " << observed.us()
        << " us > analytic bound " << bounds[si]->us() << " us";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RtaValidation,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace rtec
