#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "canbus/attack.hpp"
#include "canbus/bus.hpp"
#include "canbus/controller.hpp"
#include "core/gateway.hpp"
#include "core/scenario.hpp"
#include "core/srtec.hpp"
#include "sched/id_codec.hpp"
#include "sim/simulator.hpp"
#include "trace/candump.hpp"
#include "trace/detectors.hpp"
#include "util/task_pool.hpp"

/// Adversarial workloads (canbus/attack.hpp): same-identifier collision
/// physics, the four attack families through the real submission path,
/// candump interop for injected traffic, detector wiring through
/// Scenario, and the byte-identical sharding contract under attack.

namespace rtec {
namespace {

using namespace rtec::literals;

constexpr TimePoint at_ms(std::int64_t ms) {
  return TimePoint::origin() + Duration::milliseconds(ms);
}

/// Controller-level periodic publisher: one single-shot frame of `id`
/// every `period` in [from, until). Bypasses the middleware so attack
/// tests control the exact benign timing process.
void periodic_publisher(Simulator& sim, CanController& c, std::uint32_t id,
                        Duration period, TimePoint from, TimePoint until,
                        TaskPool& pool) {
  auto* tick = pool.make();
  auto next = std::make_shared<TimePoint>(from);
  *tick = [&sim, &c, id, period, until, next, tick] {
    if (*next >= until) return;
    CanFrame f;
    f.id = id;
    f.dlc = 8;
    (void)c.submit(f, TxMode::kSingleShot);
    *next += period;
    sim.schedule_at(*next, [tick] { (*tick)(); });
  };
  sim.schedule_at(from, [tick] { (*tick)(); });
}

// ----------------------------- same-identifier collision semantics ------

struct CollisionFixture : ::testing::Test {
  Simulator sim;
  CanBus bus{sim, BusConfig{}};
  CanController a{sim, 1};
  CanController b{sim, 2};
  CanController rx{sim, 3};
  std::vector<CanBus::FrameEvent> events;

  void SetUp() override {
    bus.attach(a);
    bus.attach(b);
    bus.attach(rx);
    bus.add_observer(
        [this](const CanBus::FrameEvent& ev) { events.push_back(ev); });
  }
};

TEST_F(CollisionFixture, DifferingPayloadsCorruptAtFirstDifferingBit) {
  CanFrame fa;
  fa.id = 0x100;
  fa.dlc = 1;
  fa.data = {0x00};
  CanFrame fb = fa;
  fb.data[0] = 0xff;

  ASSERT_TRUE(a.submit(fa, TxMode::kSingleShot).has_value());
  ASSERT_TRUE(b.submit(fb, TxMode::kSingleShot).has_value());
  sim.run();

  ASSERT_EQ(events.size(), 1u);
  const CanBus::FrameEvent& ev = events.front();
  EXPECT_TRUE(ev.collision);
  EXPECT_FALSE(ev.success);
  // The deterministic primary is the lower NodeId.
  EXPECT_EQ(ev.sender, 1u);
  const int diff = frame_first_difference_bit(fa, fb);
  ASSERT_GT(diff, 0);
  EXPECT_EQ(ev.wire_bits, diff + kErrorFrameBits);
  // Both transmitters take the tx-error hit; the receiver sees one
  // corrupted attempt.
  EXPECT_EQ(a.tec(), 8);
  EXPECT_EQ(b.tec(), 8);
  EXPECT_EQ(rx.rec(), 1);
}

TEST_F(CollisionFixture, BitIdenticalFramesSuperimposeCleanly) {
  CanFrame f;
  f.id = 0x100;
  f.dlc = 2;
  f.data = {0xAB, 0xCD};
  EXPECT_EQ(frame_first_difference_bit(f, f), 0);

  int rx_count = 0;
  rx.add_rx_listener([&](const CanFrame& got, TimePoint) {
    EXPECT_EQ(got.id, 0x100u);
    ++rx_count;
  });
  bool a_ok = false;
  bool b_ok = false;
  ASSERT_TRUE(a.submit(f, TxMode::kSingleShot,
                       [&](CanController::MailboxId, const CanFrame&,
                           bool success, TimePoint) { a_ok = success; })
                  .has_value());
  ASSERT_TRUE(b.submit(f, TxMode::kSingleShot,
                       [&](CanController::MailboxId, const CanFrame&,
                           bool success, TimePoint) { b_ok = success; })
                  .has_value());
  sim.run();

  // One frame on the wire, received once, acknowledged to both senders.
  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(events.front().success);
  EXPECT_TRUE(events.front().collision);
  EXPECT_EQ(rx_count, 1);
  EXPECT_TRUE(a_ok);
  EXPECT_TRUE(b_ok);
  EXPECT_EQ(a.tec(), 0);
  EXPECT_EQ(b.tec(), 0);
}

// --------------------------------------------- attack families ----------

TEST(AttackScenario, SpoofingInjectsThroughArbitration) {
  Scenario scn;
  scn.add_node(1);
  const std::uint32_t spoofed = encode_can_id({10, 1, 100});

  int seen = 0;
  scn.bus().add_observer([&](const CanBus::FrameEvent& ev) {
    if (ev.success && ev.frame.id == spoofed) ++seen;
  });

  SpoofingAttack::Config cfg;
  cfg.id = spoofed;
  cfg.dlc = 4;
  cfg.data = {1, 2, 3, 4};
  cfg.from = at_ms(10);
  cfg.to = at_ms(110);
  cfg.period = 10_ms;
  AttackModel& atk = scn.install_attack(std::make_unique<SpoofingAttack>(cfg),
                                        /*attacker_id=*/9, /*seed=*/42);
  scn.run_for(200_ms);

  // Slots at 10, 20, ..., 100 ms: ten injections, all delivered (the bus
  // is otherwise idle).
  EXPECT_EQ(atk.frames_injected(), 10u);
  EXPECT_EQ(atk.frames_delivered(), 10u);
  EXPECT_EQ(seen, 10);
}

TEST(AttackScenario, FuzzingStaysInsideConfiguredIdBands) {
  Scenario scn;
  scn.add_node(1);

  std::vector<std::uint32_t> fuzzed;
  scn.bus().add_observer([&](const CanBus::FrameEvent& ev) {
    if (ev.success && ev.sender == 9) fuzzed.push_back(ev.frame.id);
  });

  FuzzingAttack::Config cfg;
  cfg.from = at_ms(0);
  cfg.to = at_ms(100);
  cfg.mean_gap = 2_ms;
  AttackModel& atk = scn.install_attack(std::make_unique<FuzzingAttack>(cfg),
                                        /*attacker_id=*/9, /*seed=*/7);
  scn.run_for(150_ms);

  EXPECT_GT(atk.frames_injected(), 10u);
  EXPECT_EQ(atk.frames_delivered(), static_cast<std::uint64_t>(fuzzed.size()));
  ASSERT_FALSE(fuzzed.empty());
  for (const std::uint32_t id : fuzzed) {
    const CanIdFields f = decode_can_id(id);
    // Defaults keep the attack off HRT priority 0 and the infrastructure
    // etags (sync rounds, binding protocol).
    EXPECT_GE(f.priority, kSrtPriorityMin);
    EXPECT_GE(f.etag, kFirstApplicationEtag);
  }
}

TEST(AttackScenario, ReplayReproducesRecordedTraffic) {
  Scenario scn;
  Node& victim = scn.add_node(1);
  TaskPool pool;
  const std::uint32_t id = encode_can_id({5, 1, 200});
  periodic_publisher(scn.sim(), victim.controller(), id, 10_ms, at_ms(5),
                     at_ms(100), pool);

  int replayed = 0;
  scn.bus().add_observer([&](const CanBus::FrameEvent& ev) {
    if (ev.success && ev.sender == 9 && ev.frame.id == id) ++replayed;
  });

  ReplayAttack::Config cfg;
  cfg.record_from = at_ms(0);
  cfg.record_to = at_ms(100);
  cfg.replay_at = at_ms(200);
  auto attack = std::make_unique<ReplayAttack>(cfg);
  ReplayAttack& replay = *attack;
  scn.install_attack(std::move(attack), /*attacker_id=*/9, /*seed=*/3);
  scn.run_for(400_ms);

  // Victim published at 5, 15, ..., 95 ms: ten frames on the tape, all
  // re-submitted with the original spacing after replay_at.
  EXPECT_EQ(replay.frames_recorded(), 10u);
  EXPECT_EQ(replayed, 10);
}

TEST(AttackScenario, SuspensionSilencesVictimForTheWindow) {
  Scenario scn;
  Node& victim = scn.add_node(1);
  TaskPool pool;
  const std::uint32_t id = encode_can_id({5, 1, 300});
  periodic_publisher(scn.sim(), victim.controller(), id, 10_ms, at_ms(5),
                     at_ms(300), pool);

  int before = 0;
  int during = 0;
  int after = 0;
  scn.bus().add_observer([&](const CanBus::FrameEvent& ev) {
    if (!ev.success || ev.sender != 1) return;
    if (ev.end < at_ms(100))
      ++before;
    else if (ev.end < at_ms(200))
      ++during;
    else
      ++after;
  });

  SuspensionAttack::Config cfg;
  cfg.victim = 1;
  cfg.from = at_ms(100);
  cfg.to = at_ms(200);
  scn.install_attack(std::make_unique<SuspensionAttack>(cfg),
                     /*attacker_id=*/9, /*seed=*/0);
  scn.run_for(300_ms);

  EXPECT_GT(before, 0);
  EXPECT_EQ(during, 0);  // the victim's stream vanishes from the bus
  EXPECT_GT(after, 0);   // and resumes when the window closes
}

// --------------------------------------- candump interop ----------------

TEST(AttackTrace, SpoofedFramesCandumpRoundTrip) {
  Scenario scn;
  scn.add_node(1);
  CandumpRecorder rec{scn.bus()};

  SpoofingAttack::Config cfg;
  cfg.id = encode_can_id({10, 1, 77});
  cfg.dlc = 4;
  cfg.data = {0xDE, 0xAD, 0xBE, 0xEF};
  cfg.from = at_ms(10);
  cfg.to = at_ms(60);
  cfg.period = 10_ms;
  scn.install_attack(std::make_unique<SpoofingAttack>(cfg),
                     /*attacker_id=*/9, /*seed=*/1);
  scn.run_for(100_ms);

  ASSERT_EQ(rec.lines().size(), 5u);
  std::string log;
  for (const std::string& line : rec.lines()) log += line + "\n";
  const std::vector<CandumpEntry> entries = parse_candump(log);
  ASSERT_EQ(entries.size(), 5u);
  for (const CandumpEntry& e : entries) {
    EXPECT_EQ(e.frame.id, cfg.id);
    EXPECT_EQ(e.frame.dlc, cfg.dlc);
    EXPECT_EQ(e.frame.data[0], 0xDE);
    EXPECT_EQ(e.frame.data[3], 0xEF);
  }

  // The log replays into a fresh simulation: same frames, same count.
  Simulator sim2;
  CanBus bus2{sim2, BusConfig{}};
  CanController tx{sim2, 9};
  CanController listener{sim2, 3};
  bus2.attach(tx);
  bus2.attach(listener);
  int redelivered = 0;
  listener.add_rx_listener([&](const CanFrame& got, TimePoint) {
    EXPECT_EQ(got.id, cfg.id);
    ++redelivered;
  });
  EXPECT_EQ(replay_candump(sim2, tx, entries, at_ms(1)), 5u);
  sim2.run();
  EXPECT_EQ(redelivered, 5);
}

// ------------------------------- detectors wired through Scenario -------

TEST(AttackScenario, DetectorsFlagSpoofedStreamEndToEnd) {
  Scenario scn;
  Node& victim = scn.add_node(1);
  TaskPool pool;
  const std::uint32_t id = encode_can_id({5, 1, 400});
  periodic_publisher(scn.sim(), victim.controller(), id, 10_ms, at_ms(5),
                     at_ms(2000), pool);

  trace::DetectorBank& bank = scn.detectors();
  trace::MeanIatGate::Config gate_cfg;
  gate_cfg.train_until = at_ms(500);
  trace::Detector& gate =
      bank.add(std::make_unique<trace::MeanIatGate>(gate_cfg));
  trace::CusumDetector::Config cusum_cfg;
  cusum_cfg.train_until = at_ms(500);
  trace::Detector& cusum =
      bank.add(std::make_unique<trace::CusumDetector>(cusum_cfg));
  trace::WindowFrequencyDetector::Config win_cfg;
  win_cfg.train_until = at_ms(500);
  win_cfg.window = 100_ms;
  trace::Detector& win =
      bank.add(std::make_unique<trace::WindowFrequencyDetector>(win_cfg));

  // Spoof the victim's exact identifier at the victim's own rate,
  // phase-shifted: the stream's arrival process collapses to ~5 ms IATs.
  SpoofingAttack::Config atk_cfg;
  atk_cfg.id = id;
  atk_cfg.from = at_ms(1000);
  atk_cfg.to = at_ms(1500);
  atk_cfg.period = 10_ms;
  scn.install_attack(std::make_unique<SpoofingAttack>(atk_cfg),
                     /*attacker_id=*/9, /*seed=*/11);

  scn.run_for(2000_ms);
  scn.flush_streams();

  EXPECT_GT(scn.tapped_deliveries(), 100u);
  for (const trace::Detector* d : {&gate, &cusum, &win}) {
    EXPECT_GT(d->alarm_count(), 0u) << d->name();
    ASSERT_TRUE(d->first_alarm().has_value()) << d->name();
    // Quiet through the benign half (no false positives before the attack
    // begins), alarms soon after it does.
    EXPECT_GE(*d->first_alarm(), at_ms(1000)) << d->name();
    EXPECT_LT(*d->first_alarm(), at_ms(1300)) << d->name();
  }
}

// ------------------------------- sharding determinism under attack ------

std::string format_frame(const CanBus::FrameEvent& ev) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%lld-%lld id=%u n=%u ok=%d bits=%d a=%d c=%d",
                static_cast<long long>(ev.start.ns()),
                static_cast<long long>(ev.end.ns()), ev.frame.id,
                static_cast<unsigned>(ev.sender), ev.success ? 1 : 0,
                ev.wire_bits, ev.attempt, ev.collision ? 1 : 0);
  return buf;
}

/// Two bridged segments, all four attack families live, full per-segment
/// frame traces as the observable.
std::vector<std::vector<std::string>> run_attacked_multiseg(int shards,
                                                            unsigned threads) {
  Scenario::Config cfg;
  cfg.networks = 2;
  cfg.shards = shards;
  cfg.threads = threads;
  Scenario scn{cfg};
  TaskPool pool;

  std::vector<std::vector<std::string>> traces(2);
  for (int net = 0; net < 2; ++net) {
    auto* trace = &traces[static_cast<std::size_t>(net)];
    scn.bus(net).add_observer([trace](const CanBus::FrameEvent& ev) {
      trace->push_back(format_frame(ev));
    });
  }

  // Regular nodes publishing controller-level periodic streams.
  for (int net = 0; net < 2; ++net) {
    for (NodeId k : {NodeId{1}, NodeId{2}}) {
      Node& n = scn.add_node(k, {}, net);
      periodic_publisher(
          scn.segment_sim(net), n.controller(),
          encode_can_id({5, k, static_cast<Etag>(500 + net * 10 + k)}),
          7_ms + Duration::milliseconds(k), at_ms(2 + k), at_ms(200), pool);
    }
  }

  // A bridged SRT subject so the shards actually exchange handoffs.
  Node& ga = scn.add_node(40, {}, 0);
  Node& gb = scn.add_node(41, {}, 1);
  Gateway gw{ga, gb, scn.link_gateway(ga, gb, 250_us)};
  const Subject subj = subject_of("atk/bridge");
  EXPECT_TRUE(gw.bridge_srt(subj, 10_ms, 30_ms).has_value());
  Srtec pub{scn.node(1, 0).middleware()};
  EXPECT_TRUE(pub.announce(subj, AttributeList{attr::Deadline{10_ms}}, nullptr)
                  .has_value());
  Srtec sub{scn.node(2, 1).middleware()};
  EXPECT_TRUE(
      sub.subscribe(subj, {}, [&sub] { (void)sub.getEvent(); }, nullptr)
          .has_value());
  auto* feed = pool.make();
  Simulator* sim0 = &scn.segment_sim(0);
  *feed = [&pub, sim0, feed] {
    Event e;
    e.content = {0x42};
    (void)pub.publish(std::move(e));
    sim0->schedule_after(9_ms, [feed] { (*feed)(); });
  };
  sim0->schedule_after(4_ms, [feed] { (*feed)(); });

  // All four attack families: spoof + suspension on segment 0 (the spoof
  // targets node 1's stream id), fuzz + replay on segment 1.
  SpoofingAttack::Config spoof;
  spoof.id = encode_can_id({5, 1, 501});
  spoof.from = at_ms(40);
  spoof.to = at_ms(120);
  spoof.period = 4_ms;
  spoof.jitter = 500_us;
  scn.install_attack(std::make_unique<SpoofingAttack>(spoof), 9, 1001, 0);

  SuspensionAttack::Config susp;
  susp.victim = 2;
  susp.from = at_ms(80);
  susp.to = at_ms(140);
  scn.install_attack(std::make_unique<SuspensionAttack>(susp), 9, 0, 0);

  FuzzingAttack::Config fuzz;
  fuzz.from = at_ms(30);
  fuzz.to = at_ms(150);
  fuzz.mean_gap = 3_ms;
  scn.install_attack(std::make_unique<FuzzingAttack>(fuzz), 9, 2002, 1);

  ReplayAttack::Config rep;
  rep.record_from = at_ms(0);
  rep.record_to = at_ms(60);
  rep.replay_at = at_ms(160);
  scn.install_attack(std::make_unique<ReplayAttack>(rep), 10, 3003, 1);

  scn.run_for(220_ms);
  return traces;
}

TEST(AttackMultiseg, ByteIdenticalAcrossShardsAndThreads) {
  const auto ref = run_attacked_multiseg(/*shards=*/1, /*threads=*/1);
  std::size_t total = 0;
  for (const auto& t : ref) total += t.size();
  ASSERT_GT(total, 100u) << "attacked workload too idle to be a meaningful diff";

  for (const unsigned threads : {1u, 2u, 4u}) {
    const auto got = run_attacked_multiseg(/*shards=*/2, threads);
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t net = 0; net < ref.size(); ++net) {
      ASSERT_EQ(got[net].size(), ref[net].size())
          << "frame count, segment " << net << ", threads " << threads;
      for (std::size_t i = 0; i < ref[net].size(); ++i)
        ASSERT_EQ(got[net][i], ref[net][i])
            << "segment " << net << ", frame " << i << ", threads " << threads;
    }
  }
}

}  // namespace
}  // namespace rtec
