#include <gtest/gtest.h>

#include "baselines/ftt_can.hpp"
#include "canbus/bus.hpp"

namespace rtec {
namespace {

using literals::operator""_us;
using literals::operator""_ms;

struct FttFixture : ::testing::Test {
  Simulator sim;
  CanBus bus{sim, BusConfig{}};
  CanController master_ctl{sim, 1};
  CanController slave_ctl{sim, 2};
  CanController slave2_ctl{sim, 3};
  FttConfig cfg;
  std::vector<CanBus::FrameEvent> events;

  void SetUp() override {
    bus.attach(master_ctl);
    bus.attach(slave_ctl);
    bus.attach(slave2_ctl);
    cfg.bus = bus.config();
    bus.add_observer([this](const CanBus::FrameEvent& ev) {
      if (ev.success) events.push_back(ev);
    });
  }

  static CanFrame sync_frame(std::uint32_t id) {
    CanFrame f;
    f.id = id;
    f.dlc = 4;
    f.data = {1, 2, 3, 4, 0, 0, 0, 0};
    return f;
  }
};

TEST_F(FttFixture, MasterPollsStreamsAtTheirPeriods) {
  FttMaster master{sim, master_ctl, cfg};
  master.add_stream({/*index=*/0, 2, 4, 5_ms});    // every EC
  master.add_stream({/*index=*/1, 2, 4, 10_ms});   // every 2nd EC
  FttSlave slave{sim, slave_ctl, cfg};
  int polls0 = 0;
  int polls1 = 0;
  slave.produce(0, [&](std::uint8_t) {
    ++polls0;
    return sync_frame(0x100);
  });
  slave.produce(1, [&](std::uint8_t) {
    ++polls1;
    return sync_frame(0x101);
  });
  master.start();
  sim.run_until(TimePoint::origin() + 40_ms);
  EXPECT_EQ(polls0, 8);  // 8 ECs
  EXPECT_EQ(polls1, 4);  // every second EC
  EXPECT_EQ(slave.sync_sent(), 12u);
}

TEST_F(FttFixture, MasterDeathStopsAllSynchronousTraffic) {
  FttMaster master{sim, master_ctl, cfg};
  master.add_stream({0, 2, 4, 5_ms});
  FttSlave slave{sim, slave_ctl, cfg};
  slave.produce(0, [&](std::uint8_t) { return sync_frame(0x100); });
  master.start();
  sim.run_until(TimePoint::origin() + 18_ms);  // between EC boundaries
  const std::uint64_t sent_before = slave.sync_sent();
  EXPECT_GT(sent_before, 0u);

  // The single point of failure the paper criticizes: kill the master.
  master_ctl.set_online(false);
  master.stop();
  sim.run_until(TimePoint::origin() + 60_ms);
  EXPECT_EQ(slave.sync_sent(), sent_before);  // nothing moves any more
}

TEST_F(FttFixture, AsyncTrafficConfinedToAsyncWindow) {
  FttMaster master{sim, master_ctl, cfg};
  master.add_stream({0, 2, 4, 5_ms});
  FttSlave producer{sim, slave_ctl, cfg};
  producer.produce(0, [&](std::uint8_t) { return sync_frame(0x100); });
  FttSlave async_node{sim, slave2_ctl, cfg};
  master.start();

  // Queue an async frame during the synchronous window of EC 1.
  sim.schedule_at(TimePoint::origin() + 5_ms + 500_us, [&] {
    CanFrame f;
    f.id = 0x1f000000;  // least dominant: clearly async band
    f.dlc = 2;
    async_node.queue_async(f);
  });
  sim.run_until(TimePoint::origin() + 15_ms);

  TimePoint async_start;
  for (const auto& ev : events)
    if (ev.frame.id == 0x1f000000) async_start = ev.start;
  // Sent only after the async window opened (EC start 5 ms + offset 2 ms).
  EXPECT_GE(async_start.ns(), (7_ms).ns());
  EXPECT_EQ(async_node.async_sent(), 1u);
}

TEST_F(FttFixture, AsyncFrameNeverOverrunsIntoNextTriggerMessage) {
  FttMaster master{sim, master_ctl, cfg};
  FttSlave async_node{sim, slave2_ctl, cfg};
  master.start();
  // Queue just before the EC boundary: must wait for the next window.
  sim.schedule_at(TimePoint::origin() + 5_ms - 60_us, [&] {
    CanFrame f;
    f.id = 0x1f000000;
    f.dlc = 8;
    async_node.queue_async(f);
  });
  sim.run_until(TimePoint::origin() + 13_ms);
  TimePoint async_start;
  for (const auto& ev : events)
    if (ev.frame.id == 0x1f000000) async_start = ev.start;
  EXPECT_GE(async_start.ns(), (7_ms).ns());  // next EC's async window
  // And every TM went out on its cycle boundary, undisturbed.
  int tms = 0;
  for (const auto& ev : events)
    if (ev.frame.id == cfg.tm_id) {
      ++tms;
      EXPECT_LT(ev.start.ns() % (5_ms).ns(), 100'000) << "TM delayed";
    }
  EXPECT_GE(tms, 2);
}

TEST_F(FttFixture, UnpolledProducerStaysSilent) {
  FttMaster master{sim, master_ctl, cfg};
  master.add_stream({0, 2, 4, 5_ms});  // only stream 0 is ever polled
  FttSlave slave{sim, slave_ctl, cfg};
  int produced1 = 0;
  slave.produce(0, [&](std::uint8_t) { return sync_frame(0x100); });
  slave.produce(1, [&](std::uint8_t) {
    ++produced1;
    return sync_frame(0x101);
  });
  master.start();
  sim.run_until(TimePoint::origin() + 25_ms);
  EXPECT_EQ(produced1, 0);  // never polled, never asked for data
}

}  // namespace
}  // namespace rtec
