#include <gtest/gtest.h>

#include "core/scenario.hpp"
#include "sched/calendar_io.hpp"
#include "util/random.hpp"

namespace rtec {
namespace {

using literals::operator""_us;
using literals::operator""_ms;

Calendar make_calendar() {
  Calendar::Config cfg;
  cfg.round_length = 10_ms;
  cfg.gap = 40_us;
  Calendar cal{cfg};
  SlotSpec a;
  a.lst_offset = 1_ms;
  a.dlc = 8;
  a.fault.omission_degree = 1;
  a.etag = 10;
  a.publisher = 1;
  EXPECT_TRUE(cal.reserve(a).has_value());
  SlotSpec b;
  b.lst_offset = 3_ms;
  b.dlc = 2;
  b.etag = 11;
  b.publisher = 2;
  b.periodic = false;
  EXPECT_TRUE(cal.reserve(b).has_value());
  SlotSpec c;
  c.lst_offset = 5_ms;
  c.dlc = 4;
  c.etag = 12;
  c.publisher = 3;
  c.period_rounds = 2;
  c.phase_round = 1;
  EXPECT_TRUE(cal.reserve(c).has_value());
  return cal;
}

TEST(CalendarIo, RoundTripPreservesEverything) {
  const Calendar original = make_calendar();
  const std::string text = calendar_to_text(original);
  const auto parsed = calendar_from_text(text);
  ASSERT_TRUE(parsed.has_value());

  EXPECT_EQ(parsed->config().round_length.ns(),
            original.config().round_length.ns());
  EXPECT_EQ(parsed->config().gap.ns(), original.config().gap.ns());
  EXPECT_EQ(parsed->config().bus.bitrate_bps,
            original.config().bus.bitrate_bps);
  ASSERT_EQ(parsed->size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    const SlotSpec& o = original.slot(i);
    const SlotSpec& p = parsed->slot(i);
    EXPECT_EQ(p.lst_offset.ns(), o.lst_offset.ns());
    EXPECT_EQ(p.dlc, o.dlc);
    EXPECT_EQ(p.fault.omission_degree, o.fault.omission_degree);
    EXPECT_EQ(p.etag, o.etag);
    EXPECT_EQ(p.publisher, o.publisher);
    EXPECT_EQ(p.periodic, o.periodic);
    EXPECT_EQ(p.period_rounds, o.period_rounds);
    EXPECT_EQ(p.phase_round, o.phase_round);
    EXPECT_EQ(parsed->timing(i).deadline_offset.ns(),
              original.timing(i).deadline_offset.ns());
  }
}

TEST(CalendarIo, CommentsAndBlanksIgnored) {
  const std::string text =
      "# a configuration image\n"
      "calendar v1\n"
      "\n"
      "round_ns  10000000   # ten milliseconds\n"
      "gap_ns    40000\n"
      "bitrate   1000000\n"
      "slot lst_ns=1000000 dlc=8 k=0 etag=10 node=1\n";
  const auto parsed = calendar_from_text(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->size(), 1u);
  EXPECT_EQ(parsed->slot(0).period_rounds, 1);  // defaults applied
  EXPECT_TRUE(parsed->slot(0).periodic);
}

TEST(CalendarIo, RejectsTamperedImages) {
  const struct {
    const char* text;
    const char* why;
  } cases[] = {
      {"round_ns 1\n", "missing header"},
      {"calendar v2\n", "bad version"},
      {"calendar v1\nround_ns 0\n", "non-positive round"},
      {"calendar v1\nround_ns 10000000\ngap_ns 40000\nbitrate 1000000\n"
       "slot dlc=8 k=0 etag=10 node=1\n",
       "missing lst_ns"},
      {"calendar v1\nround_ns 10000000\ngap_ns 40000\nbitrate 1000000\n"
       "slot lst_ns=1000000 dlc=9 k=0 etag=10 node=1\n",
       "dlc out of range -> admission"},
      {"calendar v1\nround_ns 10000000\ngap_ns 40000\nbitrate 1000000\n"
       "slot lst_ns=1000000 dlc=8 k=0 etag=99999 node=1\n",
       "etag out of range"},
      {"calendar v1\nround_ns 10000000\ngap_ns 40000\nbitrate 1000000\n"
       "slot lst_ns=1000000 dlc=8 k=0 etag=10 node=1\n"
       "slot lst_ns=1000000 dlc=8 k=0 etag=11 node=2\n",
       "overlapping slots"},
      {"calendar v1\nround_ns 10000000\ngap_ns 40000\nbitrate 1000000\n"
       "bogus directive\n",
       "unknown directive"},
      {"calendar v1\nround_ns 10000000\ngap_ns 40000\nbitrate 1000000\n"
       "slot lst_ns=xyz dlc=8 k=0 etag=10 node=1\n",
       "unparsable value"},
  };
  for (const auto& c : cases) {
    const auto parsed = calendar_from_text(c.text);
    EXPECT_FALSE(parsed.has_value()) << c.why;
    if (!parsed.has_value()) {
      EXPECT_FALSE(parsed.error().message.empty());
    }
  }
}

TEST(CalendarIo, ErrorsCarryLineNumbers) {
  const std::string text =
      "calendar v1\n"
      "round_ns 10000000\n"
      "gap_ns 40000\n"
      "bitrate 1000000\n"
      "slot lst_ns=1000000 dlc=8 k=0 etag=10 node=1\n"
      "slot lst_ns=1000000 dlc=8 k=0 etag=11 node=2\n";  // overlaps line 5
  const auto parsed = calendar_from_text(text);
  ASSERT_FALSE(parsed.has_value());
  EXPECT_EQ(parsed.error().line, 6);
}

TEST(CalendarIo, FuzzRandomTextNeverCrashes) {
  Rng rng{777};
  const char alphabet[] =
      "calendar v1\nround_ns gap_ns bitrate slot lst= dlc= k= etag= node= "
      "0123456789 #=\n";
  for (int trial = 0; trial < 500; ++trial) {
    std::string text;
    const auto len = static_cast<std::size_t>(rng.uniform_int(0, 400));
    for (std::size_t i = 0; i < len; ++i)
      text += alphabet[static_cast<std::size_t>(
          rng.uniform_int(0, sizeof alphabet - 2))];
    (void)calendar_from_text(text);  // must not crash or throw
  }
}

TEST(CalendarIo, EmptyHeaderOnlyImageIsAValidEmptyCalendar) {
  const auto parsed = calendar_from_text(
      "calendar v1\nround_ns 5000000\ngap_ns 40000\nbitrate 500000\n");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->size(), 0u);
  EXPECT_EQ(parsed->config().bus.bitrate_bps, 500'000);
}


TEST(CalendarIo, ScenarioLoadsAndRejectsImages) {
  const Calendar cal = make_calendar();
  const std::string image = calendar_to_text(cal);

  Scenario::Config cfg;
  cfg.calendar.round_length = 10_ms;
  cfg.calendar.gap = 40_us;
  Scenario scn{cfg};
  ASSERT_TRUE(scn.load_calendar_image(image).has_value());
  EXPECT_EQ(scn.calendar().size(), cal.size());
  // Loading the same image twice conflicts (slots already reserved).
  const auto again = scn.load_calendar_image(image);
  ASSERT_FALSE(again.has_value());

  // A scenario configured with a different round must reject the image.
  Scenario::Config other_cfg;
  other_cfg.calendar.round_length = 20_ms;
  Scenario other{other_cfg};
  const auto mismatch = other.load_calendar_image(image);
  ASSERT_FALSE(mismatch.has_value());
  EXPECT_NE(mismatch.error().find("disagree"), std::string::npos);
}

}  // namespace
}  // namespace rtec
