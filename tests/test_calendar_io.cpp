#include <gtest/gtest.h>

#include "core/scenario.hpp"
#include "sched/calendar_io.hpp"
#include "util/random.hpp"

namespace rtec {
namespace {

using literals::operator""_us;
using literals::operator""_ms;

Calendar make_calendar() {
  Calendar::Config cfg;
  cfg.round_length = 10_ms;
  cfg.gap = 40_us;
  Calendar cal{cfg};
  SlotSpec a;
  a.lst_offset = 1_ms;
  a.dlc = 8;
  a.fault.omission_degree = 1;
  a.etag = 10;
  a.publisher = 1;
  EXPECT_TRUE(cal.reserve(a).has_value());
  SlotSpec b;
  b.lst_offset = 3_ms;
  b.dlc = 2;
  b.etag = 11;
  b.publisher = 2;
  b.periodic = false;
  EXPECT_TRUE(cal.reserve(b).has_value());
  SlotSpec c;
  c.lst_offset = 5_ms;
  c.dlc = 4;
  c.etag = 12;
  c.publisher = 3;
  c.period_rounds = 2;
  c.phase_round = 1;
  EXPECT_TRUE(cal.reserve(c).has_value());
  return cal;
}

TEST(CalendarIo, RoundTripPreservesEverything) {
  const Calendar original = make_calendar();
  const std::string text = calendar_to_text(original);
  const auto parsed = calendar_from_text(text);
  ASSERT_TRUE(parsed.has_value());

  EXPECT_EQ(parsed->config().round_length.ns(),
            original.config().round_length.ns());
  EXPECT_EQ(parsed->config().gap.ns(), original.config().gap.ns());
  EXPECT_EQ(parsed->config().bus.bitrate_bps,
            original.config().bus.bitrate_bps);
  ASSERT_EQ(parsed->size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    const SlotSpec& o = original.slot(i);
    const SlotSpec& p = parsed->slot(i);
    EXPECT_EQ(p.lst_offset.ns(), o.lst_offset.ns());
    EXPECT_EQ(p.dlc, o.dlc);
    EXPECT_EQ(p.fault.omission_degree, o.fault.omission_degree);
    EXPECT_EQ(p.etag, o.etag);
    EXPECT_EQ(p.publisher, o.publisher);
    EXPECT_EQ(p.periodic, o.periodic);
    EXPECT_EQ(p.period_rounds, o.period_rounds);
    EXPECT_EQ(p.phase_round, o.phase_round);
    EXPECT_EQ(parsed->timing(i).deadline_offset.ns(),
              original.timing(i).deadline_offset.ns());
  }
}

TEST(CalendarIo, CommentsAndBlanksIgnored) {
  const std::string text =
      "# a configuration image\n"
      "calendar v1\n"
      "\n"
      "round_ns  10000000   # ten milliseconds\n"
      "gap_ns    40000\n"
      "bitrate   1000000\n"
      "slot lst_ns=1000000 dlc=8 k=0 etag=10 node=1\n";
  const auto parsed = calendar_from_text(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->size(), 1u);
  EXPECT_EQ(parsed->slot(0).period_rounds, 1);  // defaults applied
  EXPECT_TRUE(parsed->slot(0).periodic);
}

TEST(CalendarIo, RejectsTamperedImages) {
  const struct {
    const char* text;
    const char* why;
  } cases[] = {
      {"round_ns 1\n", "missing header"},
      {"calendar v2\n", "bad version"},
      {"calendar v1\nround_ns 0\n", "non-positive round"},
      {"calendar v1\nround_ns 10000000\ngap_ns 40000\nbitrate 1000000\n"
       "slot dlc=8 k=0 etag=10 node=1\n",
       "missing lst_ns"},
      {"calendar v1\nround_ns 10000000\ngap_ns 40000\nbitrate 1000000\n"
       "slot lst_ns=1000000 dlc=9 k=0 etag=10 node=1\n",
       "dlc out of range -> admission"},
      {"calendar v1\nround_ns 10000000\ngap_ns 40000\nbitrate 1000000\n"
       "slot lst_ns=1000000 dlc=8 k=0 etag=99999 node=1\n",
       "etag out of range"},
      {"calendar v1\nround_ns 10000000\ngap_ns 40000\nbitrate 1000000\n"
       "slot lst_ns=1000000 dlc=8 k=0 etag=10 node=1\n"
       "slot lst_ns=1000000 dlc=8 k=0 etag=11 node=2\n",
       "overlapping slots"},
      {"calendar v1\nround_ns 10000000\ngap_ns 40000\nbitrate 1000000\n"
       "bogus directive\n",
       "unknown directive"},
      {"calendar v1\nround_ns 10000000\ngap_ns 40000\nbitrate 1000000\n"
       "slot lst_ns=xyz dlc=8 k=0 etag=10 node=1\n",
       "unparsable value"},
  };
  for (const auto& c : cases) {
    const auto parsed = calendar_from_text(c.text);
    EXPECT_FALSE(parsed.has_value()) << c.why;
    if (!parsed.has_value()) {
      EXPECT_FALSE(parsed.error().message.empty());
    }
  }
}

TEST(CalendarIo, EveryParseErrorBranchRejectsLoudly) {
  // One case per syntactic error branch in parse_calendar_image — the
  // strict-parse contract: nothing malformed ever degrades to a default.
  constexpr const char* kHeader =
      "calendar v1\nround_ns 10000000\ngap_ns 40000\nbitrate 1000000\n";
  const struct {
    std::string text;
    const char* why;
    const char* fragment;  // must appear in the diagnostic
  } cases[] = {
      {"", "empty input", "empty"},
      {"calendar v1\ncalendar v1\n", "duplicate header", "duplicate"},
      {"calendar v1 extra\n", "trailing token after header", "trailing"},
      {"calendar\n", "missing version", "version"},
      {"calendar v1\nround_ns 1\nround_ns 2\n", "duplicate directive",
       "duplicate"},
      {"calendar v1\nround_ns\n", "missing directive value", "missing value"},
      {"calendar v1\nround_ns 1 2\n", "trailing directive token", "trailing"},
      {"calendar v1\nround_ns -5\n", "negative round", "round_ns"},
      {"calendar v1\nround_ns 99999999999999999999\n", "integer overflow",
       "round_ns"},
      {"calendar v1\nround_ns 2000000000000000\n", "round over format cap",
       "round_ns"},
      {"calendar v1\nround_ns 10000000\ngap_ns 40000\n"
       "bitrate 2000000000\n",
       "bitrate over 1 Gbit/s", "bitrate"},
      {"calendar v1\nslot lst_ns=0 dlc=8 k=0 etag=10 node=1\n",
       "slot before bus parameters", "slot before"},
      {"calendar v1\nround_ns 10000000\n", "incomplete header at EOF",
       "incomplete"},
      {std::string{kHeader} + "slot lst_ns=0 dlc=8 k=0 etag=10 node=1 x=1\n",
       "unknown slot key", "unknown"},
      {std::string{kHeader} + "slot lst_ns=0 lst_ns=1 dlc=8 k=0 etag=10"
       " node=1\n",
       "duplicate slot key", "duplicate"},
      {std::string{kHeader} + "slot lst_ns dlc=8 k=0 etag=10 node=1\n",
       "token without '='", "="},
      {std::string{kHeader} + "slot lst_ns= dlc=8 k=0 etag=10 node=1\n",
       "empty value", "malformed token"},
      {std::string{kHeader} + "slot lst_ns=0 k=0 etag=10 node=1\n",
       "missing dlc", "dlc"},
      {std::string{kHeader} +
       "slot lst_ns=2000000000000000 dlc=8 k=0 etag=10 node=1\n",
       "lst over format cap", "lst_ns"},
      {std::string{kHeader} + "slot lst_ns=0 dlc=-1 k=0 etag=10 node=1\n",
       "negative dlc", "dlc"},
      {std::string{kHeader} + "slot lst_ns=0 dlc=8 k=-1 etag=10 node=1\n",
       "negative k", "k"},
      {std::string{kHeader} + "slot lst_ns=0 dlc=8 k=0 etag=10 node=128\n",
       "node over 7-bit field", "node"},
      {std::string{kHeader} +
       "slot lst_ns=1000000 dlc=8 k=0 etag=10 node=1 periodic=2\n",
       "periodic out of 0/1", "periodic"},
      {std::string{kHeader} +
       "slot lst_ns=1000000 dlc=8 k=0 etag=10 node=1 m=-1\n",
       "negative period", "m"},
      {std::string{kHeader} +
       "slot lst_ns=1000000 dlc=8 k=0 etag=10 node=1 window_ns=-1\n",
       "negative declared window", "window_ns"},
  };
  for (const auto& c : cases) {
    const auto image = parse_calendar_image(c.text);
    EXPECT_FALSE(image.has_value()) << c.why;
    if (!image.has_value()) {
      EXPECT_NE(image.error().message.find(c.fragment), std::string::npos)
          << c.why << ": got '" << image.error().message << "'";
    }
  }
}

TEST(CalendarIo, ParseAcceptsWhatOnlyAdmissionRejects) {
  // The parse/admission split: syntactically well-formed but inadmissible
  // calendars parse into an image (so rtec_lint can describe them), while
  // calendar_from_text rejects them with the admission diagnosis.
  constexpr const char* kHeader =
      "calendar v1\nround_ns 10000000\ngap_ns 40000\nbitrate 1000000\n";
  const struct {
    std::string slots;
    const char* why;
    const char* fragment;
  } cases[] = {
      {"slot lst_ns=1000000 dlc=9 k=0 etag=10 node=1\n", "dlc 9",
       "bad slot spec"},
      {"slot lst_ns=1000000 dlc=8 k=65 etag=10 node=1\n",
       "omission degree over model bound", "bad slot spec"},
      {"slot lst_ns=1000000 dlc=8 k=0 etag=10 node=1 m=0\n", "zero period",
       "bad slot spec"},
      {"slot lst_ns=1000000 dlc=8 k=0 etag=10 node=1 m=2000000\n",
       "period over model bound", "bad slot spec"},
      {"slot lst_ns=1000000 dlc=8 k=0 etag=10 node=1 m=2 phase=2\n",
       "phase outside cycle", "bad slot spec"},
      {"slot lst_ns=50000 dlc=8 k=0 etag=10 node=1\n",
       "ready time before round start", "window outside round"},
      {"slot lst_ns=1000000 dlc=8 k=0 etag=10 node=1\n"
       "slot lst_ns=1100000 dlc=8 k=0 etag=11 node=2\n",
       "windows closer than the gap", "window overlap"},
  };
  for (const auto& c : cases) {
    const std::string text = std::string{kHeader} + c.slots;
    EXPECT_TRUE(parse_calendar_image(text).has_value()) << c.why;
    const auto calendar = calendar_from_text(text);
    EXPECT_FALSE(calendar.has_value()) << c.why;
    if (!calendar.has_value()) {
      EXPECT_NE(calendar.error().message.find(c.fragment), std::string::npos)
          << c.why << ": got '" << calendar.error().message << "'";
    }
  }
}

TEST(CalendarIo, RejectsStaleWindowStamps) {
  // window_ns is a redundancy stamp of ΔT_wait + WCTT(dlc, k); an image
  // whose stamp disagrees with the value derived from its own bus
  // parameters was edited or produced for a different bitrate.
  const std::string text =
      "calendar v1\nround_ns 10000000\ngap_ns 40000\nbitrate 1000000\n"
      "slot lst_ns=1000000 dlc=8 k=1 etag=10 node=1 window_ns=123456\n";
  EXPECT_TRUE(parse_calendar_image(text).has_value());
  const auto calendar = calendar_from_text(text);
  ASSERT_FALSE(calendar.has_value());
  EXPECT_EQ(calendar.error().line, 5);
  EXPECT_NE(calendar.error().message.find("disagrees"), std::string::npos);
}

TEST(CalendarIo, ImageSlotsRecordSourceLines) {
  const std::string text =
      "calendar v1\n"
      "round_ns 10000000\n"
      "gap_ns 40000\n"
      "bitrate 1000000\n"
      "# comment line\n"
      "slot lst_ns=1000000 dlc=8 k=0 etag=10 node=1\n"
      "\n"
      "slot lst_ns=3000000 dlc=8 k=0 etag=11 node=2\n";
  const auto image = parse_calendar_image(text);
  ASSERT_TRUE(image.has_value());
  ASSERT_EQ(image->slots.size(), 2u);
  EXPECT_EQ(image->slots[0].line, 6);
  EXPECT_EQ(image->slots[1].line, 8);
}

TEST(CalendarIo, ErrorsCarryLineNumbers) {
  const std::string text =
      "calendar v1\n"
      "round_ns 10000000\n"
      "gap_ns 40000\n"
      "bitrate 1000000\n"
      "slot lst_ns=1000000 dlc=8 k=0 etag=10 node=1\n"
      "slot lst_ns=1000000 dlc=8 k=0 etag=11 node=2\n";  // overlaps line 5
  const auto parsed = calendar_from_text(text);
  ASSERT_FALSE(parsed.has_value());
  EXPECT_EQ(parsed.error().line, 6);
}

TEST(CalendarIo, FuzzRandomTextNeverCrashes) {
  Rng rng{777};
  const char alphabet[] =
      "calendar v1\nround_ns gap_ns bitrate slot lst= dlc= k= etag= node= "
      "0123456789 #=\n";
  for (int trial = 0; trial < 500; ++trial) {
    std::string text;
    const auto len = static_cast<std::size_t>(rng.uniform_int(0, 400));
    for (std::size_t i = 0; i < len; ++i)
      text += alphabet[static_cast<std::size_t>(
          rng.uniform_int(0, sizeof alphabet - 2))];
    (void)calendar_from_text(text);  // must not crash or throw
  }
}

TEST(CalendarIo, EmptyHeaderOnlyImageIsAValidEmptyCalendar) {
  const auto parsed = calendar_from_text(
      "calendar v1\nround_ns 5000000\ngap_ns 40000\nbitrate 500000\n");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->size(), 0u);
  EXPECT_EQ(parsed->config().bus.bitrate_bps, 500'000);
}


TEST(CalendarIo, ScenarioLoadsAndRejectsImages) {
  const Calendar cal = make_calendar();
  const std::string image = calendar_to_text(cal);

  Scenario::Config cfg;
  cfg.calendar.round_length = 10_ms;
  cfg.calendar.gap = 40_us;
  Scenario scn{cfg};
  ASSERT_TRUE(scn.load_calendar_image(image).has_value());
  EXPECT_EQ(scn.calendar().size(), cal.size());
  // Loading the same image twice conflicts (slots already reserved).
  const auto again = scn.load_calendar_image(image);
  ASSERT_FALSE(again.has_value());

  // A scenario configured with a different round must reject the image.
  Scenario::Config other_cfg;
  other_cfg.calendar.round_length = 20_ms;
  Scenario other{other_cfg};
  const auto mismatch = other.load_calendar_image(image);
  ASSERT_FALSE(mismatch.has_value());
  EXPECT_NE(mismatch.error().find("disagree"), std::string::npos);
}

}  // namespace
}  // namespace rtec
