// Differential / property tests for the event kernel: randomized
// schedule/cancel/run_until/step scripts are replayed against a naive
// reference model (unsorted vector, linear min-scan by (time, seq)) and the
// execution order, timestamps and now() trajectory must match bit-exactly.
// This is the behaviour-preservation proof for the d-ary-heap kernel
// rewrite (see docs/performance.md).

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"
#include "util/random.hpp"

namespace rtec {
namespace {

using literals::operator""_us;

/// Naive but obviously-correct kernel: events in an unsorted vector; the
/// next event is the linear-scan minimum by (time, seq) — the documented
/// FIFO-at-equal-times semantics by construction.
class ReferenceKernel {
 public:
  using Handle = std::uint64_t;  // 0 = inert

  [[nodiscard]] TimePoint now() const { return now_; }

  Handle schedule_at(TimePoint t, std::function<void()> cb) {
    events_.push_back({t, next_seq_++, next_id_, std::move(cb)});
    return next_id_++;
  }

  void cancel(Handle& h) {
    const Handle target = h;
    if (target != 0)
      std::erase_if(events_, [&](const Ev& e) { return e.id == target; });
    h = 0;
  }

  bool step() {
    if (events_.empty()) return false;
    std::size_t best = 0;
    for (std::size_t i = 1; i < events_.size(); ++i) {
      const bool is_earlier =
          events_[i].at != events_[best].at
              ? events_[i].at < events_[best].at
              : events_[i].seq < events_[best].seq;
      if (is_earlier) best = i;
    }
    Ev ev = std::move(events_[best]);
    events_.erase(events_.begin() + static_cast<std::ptrdiff_t>(best));
    now_ = ev.at;
    ev.cb();
    return true;
  }

  void run_until(TimePoint t) {
    for (;;) {
      const Ev* next = nullptr;
      for (const Ev& e : events_)
        if (next == nullptr || e.at < next->at ||
            (e.at == next->at && e.seq < next->seq))
          next = &e;
      if (next == nullptr || next->at > t) break;
      step();
    }
    now_ = t;
  }

  [[nodiscard]] std::size_t pending() const { return events_.size(); }

 private:
  struct Ev {
    TimePoint at;
    std::uint64_t seq;
    std::uint64_t id;
    std::function<void()> cb;
  };
  std::vector<Ev> events_;
  TimePoint now_ = TimePoint::origin();
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_id_ = 1;
};

/// One fired event as observed from the outside: which logical event fired
/// and what the kernel clock read at that instant.
struct Fired {
  int label;
  std::int64_t at_ns;
  bool operator==(const Fired&) const = default;
};

/// Replays an identical randomized script against kernel type K. Callbacks
/// log (label, now) and occasionally schedule children / cancel other
/// timers from inside the callback — exercising reentrancy the same way
/// the bus/middleware stack does. Script decisions depend only on the seed
/// and on state that must evolve identically across kernels, so any
/// divergence in the logs is a behavioural difference in the kernel.
template <typename K, typename Handle>
std::pair<std::vector<Fired>, std::vector<std::int64_t>> replay(
    std::uint64_t seed, int ops) {
  K k;
  Rng rng{seed};
  std::vector<Fired> log;
  std::vector<std::int64_t> now_trajectory;
  std::map<int, Handle> outstanding;
  int next_label = 0;

  std::function<std::function<void()>(int, int)> make_cb =
      [&](int label, int depth) -> std::function<void()> {
    return [&, label, depth] {
      log.push_back({label, k.now().ns()});
      // Every third event schedules a child (depth-limited), every fifth
      // cancels the oldest outstanding timer — from inside the callback.
      if (label % 3 == 0 && depth < 2) {
        const int child = 1'000'000 * (depth + 1) + label;
        outstanding[child] =
            k.schedule_at(k.now() + Duration::microseconds(label % 7),
                          make_cb(child, depth + 1));
      }
      if (label % 5 == 0 && !outstanding.empty()) {
        auto it = outstanding.begin();
        k.cancel(it->second);
        outstanding.erase(it);
      }
    };
  };

  for (int op = 0; op < ops; ++op) {
    const int kind = static_cast<int>(rng.uniform_int(0, 9));
    if (kind < 5) {  // schedule
      const int label = next_label++;
      const TimePoint at =
          k.now() + Duration::nanoseconds(rng.uniform_int(0, 50'000));
      outstanding[label] = k.schedule_at(at, make_cb(label, 0));
    } else if (kind < 7) {  // cancel a random outstanding handle
      if (!outstanding.empty()) {
        auto it = outstanding.begin();
        std::advance(
            it, static_cast<long>(rng.uniform_int(
                    0, static_cast<std::int64_t>(outstanding.size()) - 1)));
        k.cancel(it->second);
        outstanding.erase(it);
      }
    } else if (kind < 9) {  // step
      (void)k.step();
      now_trajectory.push_back(k.now().ns());
    } else {  // run_until a short horizon
      k.run_until(k.now() + Duration::nanoseconds(rng.uniform_int(0, 30'000)));
      now_trajectory.push_back(k.now().ns());
    }
  }
  // Drain.
  while (k.step()) now_trajectory.push_back(k.now().ns());
  return {log, now_trajectory};
}

TEST(SimulatorDifferential, RandomizedScriptsMatchReferenceKernel) {
  for (std::uint64_t seed : {1ULL, 7ULL, 42ULL, 1234ULL, 987654321ULL}) {
    const auto [ref_log, ref_now] =
        replay<ReferenceKernel, ReferenceKernel::Handle>(seed, 600);
    const auto [sim_log, sim_now] =
        replay<Simulator, Simulator::TimerHandle>(seed, 600);
    EXPECT_EQ(ref_log, sim_log) << "event order diverged, seed " << seed;
    EXPECT_EQ(ref_now, sim_now) << "now() trajectory diverged, seed " << seed;
    EXPECT_FALSE(sim_log.empty());
  }
}

/// Many events at few distinct timestamps: the regime where a broken
/// tie-break would reorder.
template <typename K>
std::vector<Fired> equal_timestamp_batch(std::uint64_t seed) {
  K k;
  Rng rng{seed};
  std::vector<Fired> log;
  for (int i = 0; i < 500; ++i) {
    const TimePoint at =
        TimePoint::origin() + Duration::microseconds(rng.uniform_int(0, 4));
    (void)k.schedule_at(at,
                        [&log, i, &k] { log.push_back({i, k.now().ns()}); });
  }
  while (k.step()) {
  }
  return log;
}

TEST(SimulatorDifferential, HeavyEqualTimestampBatchesKeepFifoOrder) {
  for (std::uint64_t seed : {3ULL, 99ULL}) {
    EXPECT_EQ(equal_timestamp_batch<ReferenceKernel>(seed),
              equal_timestamp_batch<Simulator>(seed));
  }
}

TEST(SimulatorRegression, CancelHeavyWorkloadStaysBounded) {
  // Schedule/cancel churn with no firing: lazy deletion plus compaction
  // must keep both pending() and the raw heap bounded across rounds — no
  // unbounded growth of heap entries or slots.
  Simulator sim;
  constexpr int kBatch = 10'000;
  constexpr int kRounds = 50;
  std::vector<Simulator::TimerHandle> handles;
  for (int r = 0; r < kRounds; ++r) {
    handles.clear();
    for (int i = 0; i < kBatch; ++i)
      handles.push_back(
          sim.schedule_after(Duration::microseconds(100 + i), [] {}));
    for (auto& h : handles) sim.cancel(h);
    EXPECT_EQ(sim.pending(), 0u);
    // All entries are stale; compaction must have culled the heap well
    // below the kBatch * kRounds total ever scheduled.
    EXPECT_LE(sim.heap_entries(), static_cast<std::size_t>(kBatch));
  }
  sim.run();
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(sim.heap_entries(), 0u);
}

TEST(SimulatorRegression, MixedCancelFireDrainsCompletely) {
  Simulator sim;
  std::vector<Simulator::TimerHandle> handles;
  for (int r = 0; r < 20; ++r) {
    handles.clear();
    int fired = 0;
    for (int i = 0; i < 5'000; ++i)
      handles.push_back(
          sim.schedule_after(Duration::microseconds(i + 1), [&] { ++fired; }));
    // Cancel 90%, fire the rest.
    for (std::size_t i = 0; i < handles.size(); ++i)
      if (i % 10 != 0) sim.cancel(handles[i]);
    sim.run();
    EXPECT_EQ(fired, 500);
    EXPECT_EQ(sim.pending(), 0u);
    EXPECT_EQ(sim.heap_entries(), 0u);
  }
}

TEST(SimulatorRegression, GenerationTagsPreventStaleHandleAliasing) {
  // A cancelled slot is recycled by later schedules; a stale copy of the
  // old handle must stay inert instead of cancelling the new occupant.
  Simulator sim;
  int fired = 0;
  auto h = sim.schedule_after(1_us, [&] { fired += 100; });
  auto h_copy = h;  // copy taken BEFORE the cancel invalidates `h`
  sim.cancel(h);
  auto fresh = sim.schedule_after(2_us, [&] { ++fired; });  // reuses the slot
  sim.cancel(h_copy);  // stale generation: must NOT hit `fresh`
  sim.run();
  EXPECT_EQ(fired, 1);
  (void)fresh;
}

TEST(SimulatorRegression, SlabSizedCapturesFireCorrectly) {
  // Captures between the inline buffer (32 B) and the slab block (128 B)
  // take the slab path; verify content integrity across slot recycling.
  Simulator sim;
  std::array<std::uint64_t, 12> payload{};  // 96 bytes
  for (std::size_t i = 0; i < payload.size(); ++i) payload[i] = i + 1;
  std::uint64_t sum = 0;
  for (int round = 0; round < 3; ++round) {
    sim.schedule_after(Duration::microseconds(round + 1), [payload, &sum] {
      for (std::uint64_t v : payload) sum += v;
    });
  }
  sim.run();
  EXPECT_EQ(sum, 3u * (12u * 13u / 2u));
}

TEST(SimulatorRegression, LargeCapturesFireCorrectly) {
  // Captures above the slab block go through the heap fallback; verify
  // content integrity and destruction (ASan/LSan cover leaks).
  Simulator sim;
  std::vector<std::uint64_t> big(64);
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = i * i;
  std::array<std::uint64_t, 24> payload{};  // 192 bytes of direct capture
  payload.fill(0xa5a5a5a5ULL);
  std::uint64_t sum = 0;
  sim.schedule_after(1_us, [big, payload, &sum] {
    for (std::uint64_t v : big) sum += v;
    sum += payload[23];
  });
  sim.run();
  std::uint64_t expect = 0;
  for (std::uint64_t i = 0; i < 64; ++i) expect += i * i;
  EXPECT_EQ(sum, expect + 0xa5a5a5a5ULL);
}

}  // namespace
}  // namespace rtec
