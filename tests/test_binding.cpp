#include <gtest/gtest.h>

#include "core/binding.hpp"
#include "core/binding_protocol.hpp"
#include "core/scenario.hpp"

namespace rtec {
namespace {

using literals::operator""_ns;
using literals::operator""_us;
using literals::operator""_ms;

// ------------------------------------------------------------ registry

TEST(BindingRegistry, AssignsStableSequentialEtags) {
  BindingRegistry reg;
  const auto a = reg.bind(subject_of("a"));
  const auto b = reg.bind(subject_of("b"));
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*a, kFirstApplicationEtag);
  EXPECT_EQ(*b, kFirstApplicationEtag + 1);
  // Re-binding the same subject returns the same etag.
  EXPECT_EQ(*reg.bind(subject_of("a")), *a);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(BindingRegistry, LookupAndReverseLookup) {
  BindingRegistry reg;
  const Etag e = *reg.bind(subject_of("x"));
  EXPECT_EQ(reg.lookup(subject_of("x")), e);
  EXPECT_EQ(reg.lookup(subject_of("y")), std::nullopt);
  EXPECT_EQ(reg.subject_of(e), subject_of("x"));
  EXPECT_EQ(reg.subject_of(static_cast<Etag>(e + 100)), std::nullopt);
}

TEST(BindingRegistry, ExhaustsAtEtagSpace) {
  BindingRegistry reg;
  Expected<Etag, ChannelError> last = Unexpected{ChannelError::kBindingFailed};
  for (std::uint32_t i = 0;; ++i) {
    last = reg.bind(Subject{0x1000 + i});
    if (!last.has_value()) break;
    ASSERT_LE(i, static_cast<std::uint32_t>(kMaxEtag));
  }
  EXPECT_EQ(last.error(), ChannelError::kBindingFailed);
  EXPECT_EQ(reg.size(), static_cast<std::size_t>(kMaxEtag) + 1 -
                            kFirstApplicationEtag);
}

TEST(Subject, DerivedFromNamesDeterministically) {
  EXPECT_EQ(subject_of("wheel/fl"), subject_of("wheel/fl"));
  EXPECT_NE(subject_of("wheel/fl"), subject_of("wheel/fr"));
  EXPECT_NE(subject_of(""), subject_of(" "));
}

// --------------------------------------------------- runtime protocol

struct ProtocolFixture : ::testing::Test {
  Scenario scn;
  Node* agent_node = nullptr;
  Node* client_node = nullptr;
  std::unique_ptr<BindingAgent> agent;
  std::unique_ptr<BindingClient> client;

  void SetUp() override {
    agent_node = &scn.add_node(1);
    client_node = &scn.add_node(2);
    agent = std::make_unique<BindingAgent>(agent_node->middleware().context(),
                                           scn.binding());
    client = std::make_unique<BindingClient>(
        client_node->middleware().context());
  }
};

TEST_F(ProtocolFixture, ResolvesOverTheBus) {
  Expected<Etag, ChannelError> result = Unexpected{ChannelError::kBindingFailed};
  bool done = false;
  client->resolve(subject_of("plant/pressure"), [&](auto r) {
    result = r;
    done = true;
  });
  scn.run_for(5_ms);
  ASSERT_TRUE(done);
  ASSERT_TRUE(result.has_value());
  // The agent committed the same binding into the registry.
  EXPECT_EQ(scn.binding().lookup(subject_of("plant/pressure")), *result);
  EXPECT_EQ(agent->requests_served(), 1u);
}

TEST_F(ProtocolFixture, SecondResolveHitsTheCache) {
  int called = 0;
  client->resolve(subject_of("s"), [&](auto) { ++called; });
  scn.run_for(5_ms);
  ASSERT_EQ(called, 1);
  const std::uint64_t sent_before = client->requests_sent();
  client->resolve(subject_of("s"), [&](auto r) {
    ++called;
    EXPECT_TRUE(r.has_value());
  });
  // Cache hit: synchronous, no new bus traffic.
  EXPECT_EQ(called, 2);
  EXPECT_EQ(client->requests_sent(), sent_before);
}

TEST_F(ProtocolFixture, ConcurrentResolvesSerializeAndAgree) {
  std::vector<Etag> etags;
  for (int i = 0; i < 5; ++i)
    client->resolve(subject_of("multi"), [&](auto r) {
      ASSERT_TRUE(r.has_value());
      etags.push_back(*r);
    });
  scn.run_for(20_ms);
  ASSERT_EQ(etags.size(), 5u);
  for (Etag e : etags) EXPECT_EQ(e, etags[0]);
  // Only the first needed the wire; the rest were answered from cache as
  // the queue drained.
  EXPECT_EQ(client->requests_sent(), 1u);
}

TEST_F(ProtocolFixture, TwoClientsGetTheSameEtag) {
  Node& third = scn.add_node(3);
  BindingClient client2{third.middleware().context()};
  std::optional<Etag> a;
  std::optional<Etag> b;
  client->resolve(subject_of("shared"), [&](auto r) { a = *r; });
  client2.resolve(subject_of("shared"), [&](auto r) { b = *r; });
  scn.run_for(10_ms);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(*a, *b);
}

TEST_F(ProtocolFixture, RetriesOnAgentSilenceThenFails) {
  // Kill the agent's node: requests go unanswered.
  agent_node->controller().set_online(false);
  Expected<Etag, ChannelError> result = Etag{0};
  bool done = false;
  client->resolve(subject_of("orphan"), [&](auto r) {
    result = r;
    done = true;
  });
  scn.run_for(Duration::seconds(1));
  ASSERT_TRUE(done);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error(), ChannelError::kBindingFailed);
  EXPECT_EQ(client->requests_sent(), 3u);  // max_attempts
  EXPECT_EQ(client->timeouts(), 3u);
}

TEST_F(ProtocolFixture, SurvivesFrameCorruption) {
  auto faults = std::make_unique<ScriptedFaults>();
  faults->add_rule([](const FaultContext& ctx) { return ctx.attempt == 1; });
  scn.set_fault_model(std::move(faults));
  bool done = false;
  client->resolve(subject_of("noisy"), [&](auto r) {
    EXPECT_TRUE(r.has_value());
    done = true;
  });
  scn.run_for(10_ms);
  EXPECT_TRUE(done);  // auto-retransmission masked the corruption
}

TEST_F(ProtocolFixture, ProtocolEtagsAreReserved) {
  // Application bindings can never collide with the protocol's channels.
  for (int i = 0; i < 10; ++i) {
    const auto e = scn.binding().bind(Subject{0x9000u + static_cast<unsigned>(i)});
    ASSERT_TRUE(e.has_value());
    EXPECT_NE(*e, kBindingRequestEtag);
    EXPECT_NE(*e, kBindingReplyEtag);
    EXPECT_NE(*e, kSyncRefEtag);
    EXPECT_NE(*e, kSyncFollowEtag);
  }
}

}  // namespace
}  // namespace rtec
