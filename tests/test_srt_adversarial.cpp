#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "core/scenario.hpp"
#include "core/srtec.hpp"
#include "sched/id_codec.hpp"
#include "util/task_pool.hpp"

/// Adversarially timed SRT cases: expiry and promotion racing with the
/// non-preemptable wire, preemption chains, and starvation behaviour.

namespace rtec {
namespace {

using literals::operator""_ns;
using literals::operator""_us;
using literals::operator""_ms;

Node::ClockParams perfect() {
  Node::ClockParams p;
  p.granularity = 1_ns;
  return p;
}

struct SrtAdvFixture : ::testing::Test {
  TaskPool tasks;
  Scenario scn;
  Node* n1 = nullptr;
  Node* n2 = nullptr;
  std::vector<CanBus::FrameEvent> frames;

  void SetUp() override {
    n1 = &scn.add_node(1, perfect());
    n2 = &scn.add_node(2, perfect());
    scn.bus().add_observer(
        [this](const CanBus::FrameEvent& ev) { frames.push_back(ev); });
  }

  void hold_bus_until(TimePoint until, NodeId id = 7) {
    auto& blocker = scn.add_node(id, perfect());
    auto* pump = tasks.make();
    *pump = [this, until, &blocker, pump] {
      if (scn.sim().now() >= until) return;
      CanFrame f;
      f.id = encode_can_id({kHrtPriority, blocker.id(), 1000});
      f.dlc = 8;
      f.data.fill(0);
      (void)blocker.controller().submit(
          f, TxMode::kAutoRetransmit,
          [pump](auto, const CanFrame&, bool, TimePoint) { (*pump)(); });
    };
    (*pump)();
  }
};

TEST_F(SrtAdvFixture, ExpiryWhileFrameIsOnTheWireLetsItComplete) {
  Srtec pub{n1->middleware()};
  Srtec sub{n2->middleware()};
  std::vector<ChannelError> errors;
  ASSERT_TRUE(pub.announce(subject_of("adv/x"), {},
                           [&](const ExceptionInfo& e) {
                             errors.push_back(e.error);
                           })
                  .has_value());
  int delivered = 0;
  ASSERT_TRUE(sub.subscribe(subject_of("adv/x"), {},
                            [&] {
                              ++delivered;
                              (void)sub.getEvent();
                            },
                            nullptr)
                  .has_value());

  // Bus idle: the message starts transmitting immediately (frame takes
  // ~100+ us). Expiration hits 20 us into the transmission — too late to
  // abort a non-preemptable frame.
  const TimePoint t0 = scn.sim().now();
  Event e;
  e.content = {1, 2, 3, 4, 5, 6, 7, 8};
  e.attributes.deadline = t0 + 10_us;
  e.attributes.expiration = t0 + 20_us;
  ASSERT_TRUE(pub.publish(std::move(e)).has_value());
  scn.run_for(2_ms);

  // Delivered despite deadline + expiry passing mid-flight; kExpired is
  // NOT raised (the event left the send queue by transmission).
  EXPECT_EQ(delivered, 1);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0], ChannelError::kDeadlineMissed);
  EXPECT_EQ(n1->middleware().srt().counters().expired, 0u);
}

TEST_F(SrtAdvFixture, ExpiryWhileStagedButBlockedAbortsTheMailbox) {
  Srtec pub{n1->middleware()};
  Srtec sub{n2->middleware()};
  std::vector<ChannelError> errors;
  ASSERT_TRUE(pub.announce(subject_of("adv/x"), {},
                           [&](const ExceptionInfo& e) {
                             errors.push_back(e.error);
                           })
                  .has_value());
  int delivered = 0;
  ASSERT_TRUE(sub.subscribe(subject_of("adv/x"), {},
                            [&] { ++delivered; }, nullptr)
                  .has_value());

  hold_bus_until(TimePoint::origin() + 2_ms);
  const TimePoint t0 = TimePoint::origin();
  scn.sim().schedule_at(t0 + 100_us, [&] {
    Event e;
    e.content = {1};
    e.attributes.deadline = t0 + 500_us;
    e.attributes.expiration = t0 + 1_ms;  // inside the blockade
    ASSERT_TRUE(pub.publish(std::move(e)).has_value());
  });
  scn.run_for(4_ms);

  // Staged in the mailbox but never on the wire: the expiry aborts it.
  EXPECT_EQ(delivered, 0);
  ASSERT_EQ(errors.size(), 2u);
  EXPECT_EQ(errors[0], ChannelError::kDeadlineMissed);
  EXPECT_EQ(errors[1], ChannelError::kExpired);
  EXPECT_EQ(n1->middleware().srt().counters().sent, 0u);
}

TEST_F(SrtAdvFixture, PreemptionChainKeepsEdfOrder) {
  Srtec pub{n1->middleware()};
  Srtec sub{n2->middleware()};
  ASSERT_TRUE(pub.announce(subject_of("adv/x"), {}, nullptr).has_value());
  ASSERT_TRUE(sub.subscribe(subject_of("adv/x"),
                            AttributeList{attr::QueueCapacity{16}}, nullptr,
                            nullptr)
                  .has_value());

  hold_bus_until(TimePoint::origin() + 1_ms);
  const TimePoint t0 = TimePoint::origin();
  // Publish with strictly decreasing deadlines: each newcomer preempts the
  // staged one.
  for (int i = 0; i < 5; ++i) {
    scn.sim().schedule_at(t0 + 100_us * (i + 1), [&, i] {
      Event e;
      e.content = {static_cast<std::uint8_t>(i)};
      e.attributes.deadline = t0 + 20_ms - 1_ms * i;
      e.attributes.expiration = t0 + 100_ms;
      ASSERT_TRUE(pub.publish(std::move(e)).has_value());
    });
  }
  scn.run_for(5_ms);

  // Delivery order = reverse publish order (EDF), 4 preemption swaps.
  std::vector<std::uint8_t> tags;
  while (auto e = sub.getEvent()) tags.push_back(e->content[0]);
  EXPECT_EQ(tags, (std::vector<std::uint8_t>{4, 3, 2, 1, 0}));
  EXPECT_EQ(n1->middleware().srt().counters().preemptions, 4u);
}

TEST_F(SrtAdvFixture, PromotionBlockedWhileOnWireStillCountsAndRecovers) {
  Scenario::Config cfg;
  cfg.srt_map.slot_length = 50_us;  // promotions due every 50 us
  Scenario scn2{cfg};
  Node& a = scn2.add_node(1, perfect());
  Node& b = scn2.add_node(2, perfect());
  Srtec pub{a.middleware()};
  Srtec sub{b.middleware()};
  ASSERT_TRUE(pub.announce(subject_of("adv/p"), {}, nullptr).has_value());
  ASSERT_TRUE(sub.subscribe(subject_of("adv/p"), {}, nullptr, nullptr)
                  .has_value());

  // Bus idle: the frame goes straight to the wire (~130 us) while 2-3
  // promotion boundaries pass — every attempt must be refused gracefully.
  Event e;
  e.content = {1, 2, 3, 4, 5, 6, 7, 8};
  e.attributes.deadline = scn2.sim().now() + 1_ms;
  e.attributes.expiration = scn2.sim().now() + 10_ms;
  ASSERT_TRUE(pub.publish(std::move(e)).has_value());
  scn2.run_for(2_ms);

  const auto& c = a.middleware().srt().counters();
  EXPECT_EQ(c.sent, 1u);
  EXPECT_GE(c.promotion_blocked, 2u);
  EXPECT_EQ(c.promotions, 0u);  // never promotable: always on the wire
}

TEST_F(SrtAdvFixture, ContinuousUrgentTrafficStarvesRelaxedMessageUntilPromoted) {
  // A relaxed-deadline message from node 1 competes against a steady
  // stream of urgent messages from node 2. Thanks to promotion it must
  // eventually win the bus *before* its deadline.
  Srtec relaxed{n1->middleware()};
  Srtec urgent{n2->middleware()};
  ASSERT_TRUE(relaxed.announce(subject_of("adv/relaxed"), {}, nullptr)
                  .has_value());
  ASSERT_TRUE(urgent.announce(subject_of("adv/urgent"), {}, nullptr)
                  .has_value());

  // Publish the relaxed message only after the urgent stream has saturated
  // the bus (else it would slip onto the idle wire immediately).
  const TimePoint t0 = scn.sim().now();
  scn.sim().schedule_at(t0 + 1_ms, [&] {
    Event slow;
    slow.content = {0xEE};
    slow.attributes.deadline = scn.sim().now() + 8_ms;
    slow.attributes.expiration = scn.sim().now() + 50_ms;
    ASSERT_TRUE(relaxed.publish(std::move(slow)).has_value());
  });

  // Urgent stream: ~130 us frames every 100 us — the urgent node always
  // has a pending frame, so the bus never idles.
  auto* loop = tasks.make();
  *loop = [&, loop] {
    Event e;
    e.content.assign(8, 0xAA);
    e.attributes.deadline = scn.sim().now() + 300_us;
    e.attributes.expiration = scn.sim().now() + 5_ms;
    (void)urgent.publish(std::move(e));
    scn.sim().schedule_after(100_us, [loop] { (*loop)(); });
  };
  scn.sim().schedule_after(0_ns, [loop] { (*loop)(); });

  scn.run_for(20_ms);
  const auto& c = n1->middleware().srt().counters();
  EXPECT_EQ(c.sent, 1u);
  EXPECT_EQ(c.sent_by_deadline, 1u) << "promotion must beat the urgent flood";
  EXPECT_GE(c.promotions, 10u);  // climbed many bands while waiting
}

TEST_F(SrtAdvFixture, PerPublisherFifoForEqualDeadlines) {
  Srtec pub{n1->middleware()};
  Srtec sub{n2->middleware()};
  ASSERT_TRUE(pub.announce(subject_of("adv/fifo"), {}, nullptr).has_value());
  ASSERT_TRUE(sub.subscribe(subject_of("adv/fifo"),
                            AttributeList{attr::QueueCapacity{16}}, nullptr,
                            nullptr)
                  .has_value());
  hold_bus_until(TimePoint::origin() + 1_ms);
  const TimePoint t0 = TimePoint::origin();
  scn.sim().schedule_at(t0 + 100_us, [&] {
    for (std::uint8_t i = 0; i < 6; ++i) {
      Event e;
      e.content = {i};
      e.attributes.deadline = t0 + 10_ms;  // all identical
      e.attributes.expiration = t0 + 50_ms;
      ASSERT_TRUE(pub.publish(std::move(e)).has_value());
    }
  });
  scn.run_for(5_ms);
  std::vector<std::uint8_t> tags;
  while (auto e = sub.getEvent()) tags.push_back(e->content[0]);
  EXPECT_EQ(tags, (std::vector<std::uint8_t>{0, 1, 2, 3, 4, 5}));
}

}  // namespace
}  // namespace rtec
