#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "canbus/bus.hpp"
#include "time/clock.hpp"
#include "time/sync.hpp"

namespace rtec {
namespace {

using literals::operator""_us;
using literals::operator""_ms;

struct SyncFixture : ::testing::Test {
  Simulator sim;
  CanBus bus{sim, BusConfig{1'000'000}};
  CanController master_ctl{sim, 0};
  LocalClock master_clk{sim, Duration::zero(), 0, 1_us};

  struct Slave {
    std::unique_ptr<CanController> ctl;
    std::unique_ptr<LocalClock> clk;
    std::unique_ptr<SyncSlave> sync;
  };
  std::vector<Slave> slaves;

  void SetUp() override { bus.attach(master_ctl); }

  Slave& add_slave(NodeId id, Duration offset, std::int64_t drift_ppb,
                   const SyncConfig& cfg) {
    Slave s;
    s.ctl = std::make_unique<CanController>(sim, id);
    bus.attach(*s.ctl);
    s.clk = std::make_unique<LocalClock>(sim, offset, drift_ppb, 1_us);
    s.sync = std::make_unique<SyncSlave>(sim, *s.ctl, *s.clk, cfg);
    slaves.push_back(std::move(s));
    return slaves.back();
  }

  Duration disagreement(const LocalClock& a, const LocalClock& b) const {
    const TimePoint ta = a.to_local(sim.now());
    const TimePoint tb = b.to_local(sim.now());
    return ta > tb ? ta - tb : tb - ta;
  }
};

TEST_F(SyncFixture, SingleRoundRemovesInitialOffset) {
  SyncConfig cfg;
  cfg.period = 10_ms;
  cfg.rate_correction = false;
  auto& slave = add_slave(1, 5_ms, 0, cfg);  // starts 5 ms off

  SyncMaster master{sim, master_ctl, master_clk, cfg};
  master.start();
  sim.run_until(TimePoint::origin() + 5_ms);

  EXPECT_EQ(slave.sync->rounds_applied(), 1u);
  // Residual error bounded by reading granularity (1 us per clock).
  EXPECT_LE(disagreement(master_clk, *slave.clk).ns(), (2_us).ns());
}

TEST_F(SyncFixture, DriftingClockStaysWithinBound) {
  SyncConfig cfg;
  cfg.period = 100_ms;
  cfg.rate_correction = false;
  auto& slave = add_slave(1, 200_us, 100'000, cfg);  // +100 ppm

  SyncMaster master{sim, master_ctl, master_clk, cfg};
  master.start();
  sim.run_until(TimePoint::origin() + Duration::seconds(2));

  // Between rounds a 100 ppm clock wanders 10 us per 100 ms; plus reading
  // granularity on both sides. Must stay well under the paper's 40 us gap.
  EXPECT_GE(slave.sync->rounds_applied(), 19u);
  EXPECT_LE(disagreement(master_clk, *slave.clk).ns(), (13_us).ns());
  EXPECT_LE(slave.sync->last_correction().ns() < 0
                ? -slave.sync->last_correction().ns()
                : slave.sync->last_correction().ns(),
            (13_us).ns());
}

TEST_F(SyncFixture, RateCorrectionShrinksPerRoundError) {
  SyncConfig cfg;
  cfg.period = 100_ms;
  cfg.rate_correction = true;
  auto& slave = add_slave(1, Duration::zero(), 150'000, cfg);  // +150 ppm

  SyncMaster master{sim, master_ctl, master_clk, cfg};
  master.start();
  sim.run_until(TimePoint::origin() + Duration::seconds(5));

  // The servo should have pulled the effective drift close to zero, so the
  // last step correction is dominated by granularity, not by 15 us of
  // wander.
  const Duration last = slave.sync->last_correction() < Duration::zero()
                            ? -slave.sync->last_correction()
                            : slave.sync->last_correction();
  EXPECT_LE(last.ns(), (6_us).ns());
}

TEST_F(SyncFixture, MultipleSlavesAgreePairwise) {
  SyncConfig cfg;
  cfg.period = 50_ms;
  add_slave(1, 300_us, 80'000, cfg);
  add_slave(2, -150_us, -60'000, cfg);
  add_slave(3, 40_us, 20'000, cfg);

  SyncMaster master{sim, master_ctl, master_clk, cfg};
  master.start();
  sim.run_until(TimePoint::origin() + Duration::seconds(1));

  for (std::size_t i = 0; i < slaves.size(); ++i)
    for (std::size_t j = i + 1; j < slaves.size(); ++j)
      EXPECT_LE(disagreement(*slaves[i].clk, *slaves[j].clk).ns(), (15_us).ns())
          << "slaves " << i << "," << j;
}

TEST_F(SyncFixture, SyncSurvivesFrameCorruption) {
  SyncConfig cfg;
  cfg.period = 20_ms;
  cfg.rate_correction = false;
  auto& slave = add_slave(1, 1_ms, 0, cfg);

  // Corrupt the first attempt of every frame: auto-retransmit recovers.
  ScriptedFaults faults;
  faults.add_rule([](const FaultContext& ctx) { return ctx.attempt == 1; });
  bus.set_fault_model(&faults);

  SyncMaster master{sim, master_ctl, master_clk, cfg};
  master.start();
  sim.run_until(TimePoint::origin() + 100_ms);

  EXPECT_GE(slave.sync->rounds_applied(), 4u);
  EXPECT_LE(disagreement(master_clk, *slave.clk).ns(), (3_us).ns());
}

TEST_F(SyncFixture, MasterOutageCoastsAndRecovers) {
  SyncConfig cfg;
  cfg.period = 20_ms;
  auto& slave = add_slave(1, 100_us, 120'000, cfg);  // +120 ppm

  SyncMaster master{sim, master_ctl, master_clk, cfg};
  master.start();
  sim.run_until(TimePoint::origin() + Duration::seconds(2));  // servo locked
  const Duration locked = disagreement(master_clk, *slave.clk);
  EXPECT_LE(locked.ns(), (5_us).ns());

  // Outage: the master stops for 1 s; the slave coasts on its corrected
  // rate — far better than raw 120 ppm (which would wander 120 us).
  master.stop();
  sim.run_until(TimePoint::origin() + Duration::seconds(3));
  const Duration coasted = disagreement(master_clk, *slave.clk);
  EXPECT_LE(coasted.ns(), (40_us).ns());

  // Restart: discipline resumes and pulls the clocks back together.
  master.start();
  sim.run_until(TimePoint::origin() + Duration::seconds(4));
  EXPECT_LE(disagreement(master_clk, *slave.clk).ns(), (5_us).ns());
  EXPECT_GE(slave.sync->rounds_applied(), 140u);
}

TEST_F(SyncFixture, SlaveJoiningLateConverges) {
  SyncConfig cfg;
  cfg.period = 20_ms;
  SyncMaster master{sim, master_ctl, master_clk, cfg};
  master.start();
  sim.run_until(TimePoint::origin() + Duration::seconds(1));

  // A node powers up mid-operation with a wildly wrong clock.
  auto& late = add_slave(5, Duration::milliseconds(50), -90'000, cfg);
  sim.run_until(TimePoint::origin() + Duration::seconds(1) + 100_ms);
  EXPECT_GE(late.sync->rounds_applied(), 4u);
  EXPECT_LE(disagreement(master_clk, *late.clk).ns(), (5_us).ns());
}

TEST(RequiredSlotGap, FormulaAndPaperBudget) {
  // 1 us granularity, 100 ppm drift bound, 100 ms resync: wander 10 us,
  // so the gap must cover 2*(1+10) = 22 us — inside the paper's 40 us.
  const Duration gap = required_slot_gap(1_us, 100'000, 100_ms);
  EXPECT_EQ(gap.ns(), (22_us).ns());
  EXPECT_LE(gap.ns(), (40_us).ns());
  // The paper's conservative budget corresponds to e.g. 200 ppm @ 90 ms.
  EXPECT_GE((40_us).ns(), required_slot_gap(1_us, 200'000, 90_ms).ns());
}

}  // namespace
}  // namespace rtec
