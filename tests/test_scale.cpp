#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "core/hrtec.hpp"
#include "core/nrtec.hpp"
#include "core/scenario.hpp"
#include "core/srtec.hpp"
#include "sched/planner.hpp"
#include "time/periodic.hpp"
#include "trace/metrics.hpp"
#include "util/random.hpp"
#include "util/task_pool.hpp"

/// Scale soak: a realistically sized CAN segment (the paper: "the number
/// of nodes connected to a CAN-Bus is usually in the range of 32 to 64")
/// with a planner-synthesized calendar, running for several simulated
/// seconds under faults with every mechanism active. The assertions are
/// system invariants, not example-sized expectations.

namespace rtec {
namespace {

using literals::operator""_ns;
using literals::operator""_us;
using literals::operator""_ms;

TEST(Scale, ThirtyTwoNodesFiveSecondsAllInvariantsHold) {
  TaskPool tasks;
  constexpr int kHrtStreams = 8;
  constexpr int kSrtStreams = 8;
  constexpr Duration kRun = Duration::seconds(5);

  // --- plan the calendar offline -------------------------------------
  std::vector<HrtStreamRequest> reqs;
  for (int i = 0; i < kHrtStreams; ++i) {
    HrtStreamRequest r;
    r.etag = static_cast<Etag>(kFirstApplicationEtag + i);
    r.publisher = static_cast<NodeId>(1 + i);
    r.dlc = 8;
    r.fault.omission_degree = 1;
    r.period = 20_ms * (i % 2 == 0 ? 1 : 2);  // 20/40 ms harmonic mix
    reqs.push_back(r);
  }
  Calendar::Config cal_cfg;
  const auto plan = plan_calendar(reqs, cal_cfg, /*sync_master=*/32);
  ASSERT_TRUE(plan.has_value());

  // --- build the network ----------------------------------------------
  Scenario::Config cfg;
  cfg.calendar.round_length = plan->calendar.config().round_length;
  Scenario scn{cfg};
  Rng rng{9001};
  std::vector<Node*> nodes;
  for (NodeId id = 1; id <= 32; ++id) {
    Node::ClockParams p;
    p.initial_offset = Duration::microseconds(rng.uniform_int(-30, 30));
    p.drift_ppb = rng.uniform_int(-100'000, 100'000);
    p.granularity = 1_us;
    nodes.push_back(&scn.add_node(id, p));
  }
  // Mirror the planned slots (the sync slot is re-created by
  // enable_clock_sync below).
  Duration sync_lst;
  for (std::size_t i = 0; i < plan->calendar.size(); ++i) {
    const SlotSpec& s = plan->calendar.slot(i);
    if (s.etag == kSyncRefEtag) {
      sync_lst = s.lst_offset;
      continue;
    }
    ASSERT_TRUE(scn.calendar().reserve(s).has_value());
  }
  ASSERT_TRUE(scn.enable_clock_sync(32, sync_lst).has_value());
  scn.set_fault_model(std::make_unique<RandomOmissionFaults>(0.005, 77));
  scn.run_for(plan->calendar.config().round_length * 2);  // sync warm-up

  // --- HRT streams ------------------------------------------------------
  struct HrtStream {
    std::unique_ptr<Hrtec> pub;
    std::unique_ptr<Hrtec> sub;
    std::unique_ptr<PeriodicLocalTask> task;
    int delivered = 0;
    int missing = 0;
    int pub_exc = 0;
  };
  std::vector<std::unique_ptr<HrtStream>> hrt;
  for (int i = 0; i < kHrtStreams; ++i) {
    auto s = std::make_unique<HrtStream>();
    const std::string name = "scale/hrt" + std::to_string(i);
    Node* pub_node = nodes[static_cast<std::size_t>(i)];
    Node* sub_node = nodes[static_cast<std::size_t>(16 + i)];
    // Bind the planned etag to the subject name explicitly.
    ASSERT_EQ(*scn.binding().bind(subject_of(name)),
              kFirstApplicationEtag + i);
    s->pub = std::make_unique<Hrtec>(pub_node->middleware());
    s->sub = std::make_unique<Hrtec>(sub_node->middleware());
    const bool fast = i % 2 == 0;
    AttributeList attrs;
    attrs.add(attr::Periodic{fast ? 20_ms : 40_ms});  // 40 ms: sub-rate slot
    HrtStream* sp = s.get();
    ASSERT_TRUE(s->pub->announce(subject_of(name), attrs,
                                 [sp](const ExceptionInfo&) { ++sp->pub_exc; })
                    .has_value());
    ASSERT_TRUE(s->sub->subscribe(subject_of(name),
                                  AttributeList{attr::QueueCapacity{16}},
                                  [sp] {
                                    ++sp->delivered;
                                    (void)sp->sub->getEvent();
                                  },
                                  [sp](const ExceptionInfo&) { ++sp->missing; })
                    .has_value());
    s->task = std::make_unique<PeriodicLocalTask>(
        pub_node->clock(), fast ? 20_ms : 40_ms, [sp] {
          Event e;
          e.content = {1, 2, 3, 4, 5, 6, 7, 8};
          (void)sp->pub->publish(std::move(e));
        });
    s->task->start();
    hrt.push_back(std::move(s));
  }

  // --- SRT streams -------------------------------------------------------
  struct SrtStream {
    std::unique_ptr<Srtec> pub;
    std::unique_ptr<Srtec> sub;
    int delivered = 0;
    int misses = 0;
  };
  std::vector<std::unique_ptr<SrtStream>> srt;
  for (int i = 0; i < kSrtStreams; ++i) {
    auto s = std::make_unique<SrtStream>();
    const std::string name = "scale/srt" + std::to_string(i);
    s->pub = std::make_unique<Srtec>(
        nodes[static_cast<std::size_t>(8 + i)]->middleware());
    s->sub = std::make_unique<Srtec>(
        nodes[static_cast<std::size_t>(24 + i)]->middleware());
    SrtStream* sp = s.get();
    ASSERT_TRUE(s->pub->announce(subject_of(name),
                                 AttributeList{attr::Deadline{15_ms},
                                               attr::Expiration{40_ms}},
                                 [sp](const ExceptionInfo& e) {
                                   if (e.error == ChannelError::kDeadlineMissed)
                                     ++sp->misses;
                                 })
                    .has_value());
    ASSERT_TRUE(s->sub->subscribe(subject_of(name),
                                  AttributeList{attr::QueueCapacity{32}},
                                  [sp] {
                                    ++sp->delivered;
                                    (void)sp->sub->getEvent();
                                  },
                                  nullptr)
                    .has_value());
    // Poisson publisher, mean 8 ms.
    auto* loop = tasks.make();
    auto* rng_ptr = &rng;
    Scenario* sc = &scn;
    *loop = [sp, rng_ptr, sc, loop] {
      Event e;
      e.content = {0xAB};
      (void)sp->pub->publish(std::move(e));
      sc->sim().schedule_after(
          Duration::nanoseconds(
              static_cast<std::int64_t>(rng_ptr->exponential(8e6))),
          [loop] { (*loop)(); });
    };
    scn.sim().schedule_after(Duration::microseconds(rng.uniform_int(0, 5000)),
                             [loop] { (*loop)(); });
    srt.push_back(std::move(s));
  }

  // --- NRT bulk churn -----------------------------------------------------
  Nrtec bulk_pub{nodes[15]->middleware()};
  Nrtec bulk_sub{nodes[31]->middleware()};
  const AttributeList frag{attr::Fragmentation{true}};
  ASSERT_TRUE(
      bulk_pub.announce(subject_of("scale/bulk"), frag, nullptr).has_value());
  int blobs = 0;
  ASSERT_TRUE(bulk_sub.subscribe(subject_of("scale/bulk"), frag,
                                 [&] {
                                   ++blobs;
                                   (void)bulk_sub.getEvent();
                                 },
                                 nullptr)
                  .has_value());
  {
    auto* feed = tasks.make();
    Nrtec* bp = &bulk_pub;
    Node* bulk_node = nodes[15];
    Scenario* sc = &scn;
    *feed = [bp, bulk_node, sc, feed] {
      if (bulk_node->middleware().nrt().backlog_frames() < 4) {
        Event blob;
        blob.content.assign(1024, 0x77);
        (void)bp->publish(std::move(blob));
      }
      sc->sim().schedule_after(10_ms, [feed] { (*feed)(); });
    };
    scn.sim().schedule_after(Duration::zero(), [feed] { (*feed)(); });
  }

  // --- run -----------------------------------------------------------------
  ClassUtilization util{scn.bus()};
  scn.run_for(kRun);

  // --- invariants ------------------------------------------------------------
  // 1. Clock precision stayed inside the ΔG_min budget.
  EXPECT_LE(scn.clock_precision().ns(), (40_us).ns());
  // 2. Every HRT stream: no missing instances, no publisher exceptions
  //    (faults at 0.5% are far inside the k=1 assumption), and the right
  //    delivery count for its rate.
  for (int i = 0; i < kHrtStreams; ++i) {
    const auto& s = *hrt[static_cast<std::size_t>(i)];
    EXPECT_EQ(s.missing, 0) << "stream " << i;
    EXPECT_EQ(s.pub_exc, 0) << "stream " << i;
    const int expected = static_cast<int>(kRun / (i % 2 == 0 ? 20_ms : 40_ms));
    EXPECT_GE(s.delivered, expected - 2) << "stream " << i;
  }
  // 3. SRT: all messages delivered, essentially no deadline misses at this
  //    load.
  for (int i = 0; i < kSrtStreams; ++i) {
    const auto& s = *srt[static_cast<std::size_t>(i)];
    EXPECT_GT(s.delivered, 400) << "stream " << i;
    EXPECT_LE(s.misses, s.delivered / 100) << "stream " << i;
  }
  // 4. NRT made progress underneath everything.
  EXPECT_GT(blobs, 100);
  // 5. All three classes shared the bus.
  EXPECT_GT(util.fraction(TrafficClass::kHrt), 0.005);
  EXPECT_GT(util.fraction(TrafficClass::kSrt), 0.05);
  EXPECT_GT(util.fraction(TrafficClass::kNrt), 0.05);
}

}  // namespace
}  // namespace rtec
