#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "analysis/lint.hpp"
#include "sched/planner.hpp"
#include "util/random.hpp"

/// Fixture tests for the static calendar/scenario verifier: one minimal
/// input that triggers each rule ID, one clean input that passes it, a
/// golden test for the JSON report format, and a differential fuzz test
/// that proves the linter and the Calendar admission test agree (the
/// property RTEC-C008 monitors in production).

namespace rtec::analysis {
namespace {

using literals::operator""_us;
using literals::operator""_ms;

CalendarImage base_image() {
  CalendarImage image;
  image.config.round_length = 10_ms;
  image.config.gap = 40_us;
  image.config.bus.bitrate_bps = 1'000'000;
  return image;
}

ImageSlot mk_slot(std::int64_t lst_us, int dlc, int k, Etag etag,
                  NodeId node) {
  ImageSlot slot;
  slot.spec.lst_offset = Duration::microseconds(lst_us);
  slot.spec.dlc = dlc;
  slot.spec.fault.omission_degree = k;
  slot.spec.etag = etag;
  slot.spec.publisher = node;
  return slot;
}

bool has_rule(const LintReport& report, Rule rule) {
  return std::any_of(report.findings.begin(), report.findings.end(),
                     [rule](const Finding& f) { return f.rule == rule; });
}

int count_rule(const LintReport& report, Rule rule) {
  return static_cast<int>(
      std::count_if(report.findings.begin(), report.findings.end(),
                    [rule](const Finding& f) { return f.rule == rule; }));
}

const Finding& find_rule(const LintReport& report, Rule rule) {
  static const Finding missing{};
  const auto it =
      std::find_if(report.findings.begin(), report.findings.end(),
                   [rule](const Finding& f) { return f.rule == rule; });
  EXPECT_NE(it, report.findings.end())
      << "expected " << rule_code(rule) << " in:\n" << report_to_text(report);
  return it == report.findings.end() ? missing : *it;
}

TEST(Lint, CleanCalendarPasses) {
  CalendarImage image = base_image();
  image.slots.push_back(mk_slot(1'000, 8, 1, 10, 1));
  image.slots.push_back(mk_slot(3'000, 2, 0, 11, 2));
  const LintReport report = lint_calendar(image);
  EXPECT_TRUE(report.findings.empty()) << report_to_text(report);
}

// --- RTEC-C001 window-outside-round ------------------------------------

TEST(Lint, C001FiresWhenReadyPrecedesRoundStart) {
  CalendarImage image = base_image();
  // LST 50 us < ΔT_wait (~160 us at 1 Mbit/s): ready time before round 0.
  image.slots.push_back(mk_slot(50, 8, 0, 10, 1));
  const LintReport report = lint_calendar(image);
  EXPECT_TRUE(has_rule(report, Rule::kWindowOutsideRound));
  EXPECT_TRUE(report.has_errors());
}

TEST(Lint, C001PassesWindowInsideRound) {
  CalendarImage image = base_image();
  image.slots.push_back(mk_slot(1'000, 8, 0, 10, 1));
  EXPECT_FALSE(has_rule(lint_calendar(image), Rule::kWindowOutsideRound));
}

// --- RTEC-C002 window-overlap -------------------------------------------

TEST(Lint, C002FiresOnWindowsCloserThanGap) {
  CalendarImage image = base_image();
  image.slots.push_back(mk_slot(1'000, 8, 1, 10, 1));
  image.slots.push_back(mk_slot(1'100, 8, 0, 11, 2));
  const LintReport report = lint_calendar(image);
  const Finding& f = find_rule(report, Rule::kWindowOverlap);
  EXPECT_EQ(f.slot, 1);
  EXPECT_EQ(f.other_slot, 0);
  EXPECT_EQ(f.severity, Severity::kError);
}

TEST(Lint, C002ChecksSeparationCircularlyOverTheRoundBoundary) {
  CalendarImage image = base_image();
  // Window ends at deadline = 9.95 ms + WCTT(8, k=0) ≈ 10.11 ms: wraps
  // into the next round and collides with the slot at the round start.
  image.slots.push_back(mk_slot(400, 8, 0, 10, 1));
  image.slots.push_back(mk_slot(9'950, 8, 0, 11, 2));
  const LintReport report = lint_calendar(image);
  // The wrap makes the second window leave the round — C001 — and the
  // admission mirror must agree (no C008).
  EXPECT_TRUE(report.has_errors());
  EXPECT_FALSE(has_rule(report, Rule::kAdmissionDisagreement));
}

TEST(Lint, C002PassesWithGapRespected) {
  CalendarImage image = base_image();
  image.slots.push_back(mk_slot(1'000, 8, 1, 10, 1));
  image.slots.push_back(mk_slot(2'000, 8, 0, 11, 2));
  EXPECT_FALSE(has_rule(lint_calendar(image), Rule::kWindowOverlap));
}

// --- RTEC-C003 wctt-coverage --------------------------------------------

TEST(Lint, C003FiresWhenDeclaredWindowUndersizesWctt) {
  CalendarImage image = base_image();
  ImageSlot slot = mk_slot(1'000, 8, 1, 10, 1);
  slot.declared_window_ns = 100'000;  // ΔT_wait + WCTT(8, k=1) is 497 us
  image.slots.push_back(slot);
  const LintReport report = lint_calendar(image);
  const Finding& f = find_rule(report, Rule::kWcttCoverage);
  EXPECT_EQ(f.severity, Severity::kError);
}

TEST(Lint, C003WarnsWhenDeclaredWindowOverReserves) {
  CalendarImage image = base_image();
  ImageSlot slot = mk_slot(1'000, 8, 1, 10, 1);
  slot.declared_window_ns = 600'000;
  image.slots.push_back(slot);
  const LintReport report = lint_calendar(image);
  const Finding& f = find_rule(report, Rule::kWcttCoverage);
  EXPECT_EQ(f.severity, Severity::kWarning);
  EXPECT_FALSE(report.has_errors());
}

TEST(Lint, C003PassesWhenDeclaredWindowMatches) {
  // image_of() stamps the derived window: must lint clean.
  Calendar::Config cfg;
  cfg.round_length = 10_ms;
  cfg.gap = 40_us;
  Calendar calendar{cfg};
  SlotSpec spec;
  spec.lst_offset = 1_ms;
  spec.dlc = 8;
  spec.fault.omission_degree = 1;
  spec.etag = 10;
  spec.publisher = 1;
  ASSERT_TRUE(calendar.reserve(spec).has_value());
  const LintReport report = lint_calendar(image_of(calendar));
  EXPECT_TRUE(report.findings.empty()) << report_to_text(report);
}

// --- RTEC-C004 period-phase ---------------------------------------------

TEST(Lint, C004FiresOnPhaseOutsideCycle) {
  CalendarImage image = base_image();
  ImageSlot slot = mk_slot(1'000, 8, 0, 10, 1);
  slot.spec.period_rounds = 2;
  slot.spec.phase_round = 2;
  image.slots.push_back(slot);
  EXPECT_TRUE(has_rule(lint_calendar(image), Rule::kPeriodPhase));
}

TEST(Lint, C004FiresOnExcessivePeriodRounds) {
  CalendarImage image = base_image();
  ImageSlot slot = mk_slot(1'000, 8, 0, 10, 1);
  slot.spec.period_rounds = kMaxPeriodRounds + 1;
  image.slots.push_back(slot);
  EXPECT_TRUE(has_rule(lint_calendar(image), Rule::kPeriodPhase));
}

TEST(Lint, C004PassesSubRateSlot) {
  CalendarImage image = base_image();
  ImageSlot slot = mk_slot(1'000, 8, 0, 10, 1);
  slot.spec.period_rounds = 4;
  slot.spec.phase_round = 3;
  image.slots.push_back(slot);
  EXPECT_FALSE(has_rule(lint_calendar(image), Rule::kPeriodPhase));
}

// --- RTEC-C005 reserved-etag --------------------------------------------

TEST(Lint, C005FiresOnInfrastructureEtag) {
  CalendarImage image = base_image();
  image.slots.push_back(mk_slot(1'000, 8, 0, kBindingRequestEtag, 1));
  const LintReport report = lint_calendar(image);
  const Finding& f = find_rule(report, Rule::kReservedEtag);
  EXPECT_EQ(f.severity, Severity::kWarning);
}

TEST(Lint, C005FiresOnSecondSyncSlot) {
  CalendarImage image = base_image();
  image.slots.push_back(mk_slot(1'000, 8, 1, kSyncRefEtag, 1));
  image.slots.push_back(mk_slot(3'000, 8, 1, kSyncRefEtag, 2));
  EXPECT_EQ(count_rule(lint_calendar(image), Rule::kReservedEtag), 1);
}

TEST(Lint, C005PassesSingleSyncSlot) {
  CalendarImage image = base_image();
  image.slots.push_back(mk_slot(1'000, 8, 1, kSyncRefEtag, 1));
  EXPECT_FALSE(has_rule(lint_calendar(image), Rule::kReservedEtag));
}

// --- RTEC-C006 over-subscription ----------------------------------------

TEST(Lint, C006FiresWhenWindowsExceedRound) {
  CalendarImage image = base_image();
  image.config.round_length = 1_ms;
  // Two k=1 windows of 497 us + 40 us gap each > 1 ms round.
  image.slots.push_back(mk_slot(200, 8, 1, 10, 1));
  image.slots.push_back(mk_slot(700, 8, 1, 11, 2));
  const LintReport report = lint_calendar(image);
  const Finding& f = find_rule(report, Rule::kOverSubscription);
  EXPECT_EQ(f.severity, Severity::kError);
}

TEST(Lint, C006WarnsNearFullReservation) {
  CalendarImage image = base_image();
  // 18 placeable k=1 slots: 18 * 537 us = 9.67 ms of a 10 ms round.
  for (int i = 0; i < 18; ++i)
    image.slots.push_back(
        mk_slot(160 + i * 537, 8, 1, static_cast<Etag>(10 + i),
                static_cast<NodeId>(1 + i)));
  const LintReport report = lint_calendar(image);
  const Finding& f = find_rule(report, Rule::kOverSubscription);
  EXPECT_EQ(f.severity, Severity::kWarning);
  EXPECT_FALSE(report.has_errors()) << report_to_text(report);
}

TEST(Lint, C006PassesModerateReservation) {
  CalendarImage image = base_image();
  image.slots.push_back(mk_slot(1'000, 8, 1, 10, 1));
  EXPECT_FALSE(has_rule(lint_calendar(image), Rule::kOverSubscription));
}

// --- RTEC-C007 gap-below-precision --------------------------------------

TEST(Lint, C007FiresWhenGapBelowMeasuredPrecision) {
  CalendarImage image = base_image();
  image.slots.push_back(mk_slot(1'000, 8, 0, 10, 1));
  LintOptions options;
  options.clock_precision = 50_us;  // worse than the 40 us gap
  const LintReport report = lint_calendar(image, options);
  const Finding& f = find_rule(report, Rule::kGapBelowPrecision);
  EXPECT_EQ(f.severity, Severity::kError);
}

TEST(Lint, C007WarnsOnZeroGapWithoutPrecision) {
  CalendarImage image = base_image();
  image.config.gap = Duration::zero();
  image.slots.push_back(mk_slot(1'000, 8, 0, 10, 1));
  const LintReport report = lint_calendar(image);
  const Finding& f = find_rule(report, Rule::kGapBelowPrecision);
  EXPECT_EQ(f.severity, Severity::kWarning);
}

TEST(Lint, C007PassesWhenGapDominatesPrecision) {
  CalendarImage image = base_image();
  image.slots.push_back(mk_slot(1'000, 8, 0, 10, 1));
  LintOptions options;
  options.clock_precision = 33_us;
  EXPECT_FALSE(
      has_rule(lint_calendar(image, options), Rule::kGapBelowPrecision));
}

// --- RTEC-C008 admission-disagreement -----------------------------------

TEST(Lint, C008FiresWhenAdmissionOracleDisagrees) {
  CalendarImage image = base_image();
  image.slots.push_back(mk_slot(1'000, 8, 1, 10, 1));
  LintOptions options;
  // Inject a faulty admission verdict: the linter accepts this slot, the
  // (injected) admission test rejects it — the differential rule must
  // report the discrepancy instead of trusting either side.
  options.admission_override = [](std::size_t) { return false; };
  const LintReport report = lint_calendar(image, options);
  const Finding& f = find_rule(report, Rule::kAdmissionDisagreement);
  EXPECT_EQ(f.severity, Severity::kError);
  EXPECT_EQ(f.slot, 0);
}

TEST(Lint, C008SilentWhenBothImplementationsAgree) {
  CalendarImage image = base_image();
  image.slots.push_back(mk_slot(1'000, 8, 1, 10, 1));
  image.slots.push_back(mk_slot(50, 8, 0, 11, 2));     // outside round
  image.slots.push_back(mk_slot(1'100, 8, 0, 12, 3));  // overlaps slot 0
  const LintReport report = lint_calendar(image);
  EXPECT_TRUE(report.has_errors());
  EXPECT_FALSE(has_rule(report, Rule::kAdmissionDisagreement))
      << report_to_text(report);
}

// --- RTEC-C009 bad-config -----------------------------------------------

TEST(Lint, C009FiresOnUnusableConfig) {
  CalendarImage image = base_image();
  image.config.bus.bitrate_bps = 2'000'000'000;  // sub-ns bit time
  EXPECT_TRUE(has_rule(lint_calendar(image), Rule::kBadConfig));

  CalendarImage zero_round = base_image();
  zero_round.config.round_length = Duration::zero();
  EXPECT_TRUE(has_rule(lint_calendar(zero_round), Rule::kBadConfig));

  CalendarImage negative_gap = base_image();
  negative_gap.config.gap = Duration::nanoseconds(-1);
  EXPECT_TRUE(has_rule(lint_calendar(negative_gap), Rule::kBadConfig));
}

TEST(Lint, C009PassesSaneConfig) {
  EXPECT_FALSE(has_rule(lint_calendar(base_image()), Rule::kBadConfig));
}

// --- RTEC-C010 bad-slot-field -------------------------------------------

TEST(Lint, C010FiresOnFieldsOutsideTheModel) {
  CalendarImage image = base_image();
  image.slots.push_back(mk_slot(1'000, 9, 0, 10, 1));  // dlc 9
  ImageSlot bad_k = mk_slot(3'000, 8, 0, 11, 2);
  bad_k.spec.fault.omission_degree = kMaxOmissionDegree + 1;
  image.slots.push_back(bad_k);
  ImageSlot bad_etag = mk_slot(5'000, 8, 0, 12, 3);
  bad_etag.spec.etag = kMaxEtag + 1;
  image.slots.push_back(bad_etag);
  ImageSlot bad_node = mk_slot(7'000, 8, 0, 13, 4);
  bad_node.spec.publisher = kMaxNodeId + 1;
  image.slots.push_back(bad_node);
  const LintReport report = lint_calendar(image);
  EXPECT_EQ(count_rule(report, Rule::kBadSlotField), 4);
  EXPECT_FALSE(has_rule(report, Rule::kAdmissionDisagreement))
      << report_to_text(report);
}

TEST(Lint, C010PassesFieldsInsideTheModel) {
  CalendarImage image = base_image();
  image.slots.push_back(mk_slot(1'000, 8, kMaxOmissionDegree / 8, 10, 1));
  EXPECT_FALSE(has_rule(lint_calendar(image), Rule::kBadSlotField));
}

// --- RTEC-P001 parse-error ----------------------------------------------

TEST(Lint, P001WrapsParseFailures) {
  const auto image = parse_calendar_image("calendar v7\n");
  ASSERT_FALSE(image.has_value());
  const LintReport report = parse_failure_report(image.error());
  const Finding& f = find_rule(report, Rule::kParseError);
  EXPECT_EQ(f.severity, Severity::kError);
  EXPECT_EQ(f.line, 1);
  EXPECT_TRUE(report.has_errors());
}

// --- scenario rules ------------------------------------------------------

ScenarioSpec base_spec() {
  ScenarioSpec spec;
  spec.nodes = {{1, 0}, {2, 0}};
  return spec;
}

TEST(Lint, S101FiresOnUndeclaredPublisher) {
  CalendarImage image = base_image();
  image.slots.push_back(mk_slot(1'000, 8, 0, 10, 7));
  const LintReport report = lint_scenario(image, base_spec());
  const Finding& f = find_rule(report, Rule::kUnknownPublisher);
  EXPECT_EQ(f.slot, 0);
}

TEST(Lint, S101SkippedWithoutNodeInventory) {
  CalendarImage image = base_image();
  image.slots.push_back(mk_slot(1'000, 8, 0, 10, 7));
  ScenarioSpec spec;  // no nodes declared
  EXPECT_FALSE(
      has_rule(lint_scenario(image, spec), Rule::kUnknownPublisher));
}

TEST(Lint, S101PassesDeclaredPublisher) {
  CalendarImage image = base_image();
  image.slots.push_back(mk_slot(1'000, 8, 0, 10, 1));
  EXPECT_FALSE(has_rule(lint_scenario(image, base_spec()),
                        Rule::kUnknownPublisher));
}

TEST(Lint, S102FiresOnDuplicateNode) {
  ScenarioSpec spec = base_spec();
  spec.nodes.push_back({1, 5});
  EXPECT_TRUE(
      has_rule(lint_scenario(base_image(), spec), Rule::kDuplicateNode));
}

TEST(Lint, S102PassesUniqueNodes) {
  EXPECT_FALSE(has_rule(lint_scenario(base_image(), base_spec()),
                        Rule::kDuplicateNode));
}

TEST(Lint, S103FiresWhenSrtBandTouchesHrtPriority) {
  ScenarioSpec spec = base_spec();
  DeadlinePriorityMap::Config band;
  band.p_min = kHrtPriority;  // SRT could win against pending HRT
  band.p_max = 250;
  spec.srt_band = band;
  const LintReport report = lint_scenario(base_image(), spec);
  EXPECT_TRUE(has_rule(report, Rule::kPriorityInversion));
}

TEST(Lint, S103FiresWhenSrtBandReachesNrtPartition) {
  ScenarioSpec spec = base_spec();
  DeadlinePriorityMap::Config band;
  band.p_min = 1;
  band.p_max = kNrtPriorityMin;
  spec.srt_band = band;
  EXPECT_TRUE(
      has_rule(lint_scenario(base_image(), spec), Rule::kPriorityInversion));
}

TEST(Lint, S103FiresOnNrtStreamOutsideNrtPartition) {
  ScenarioSpec spec = base_spec();
  StreamSpec stream;
  stream.traffic = TrafficClass::kNrt;
  stream.node = 1;
  stream.etag = 30;
  stream.priority = 100;  // inside the SRT partition
  spec.streams.push_back(stream);
  EXPECT_TRUE(
      has_rule(lint_scenario(base_image(), spec), Rule::kPriorityInversion));
}

TEST(Lint, S103FiresOnNrtStreamAtHrtPriority) {
  ScenarioSpec spec = base_spec();
  StreamSpec stream;
  stream.traffic = TrafficClass::kNrt;
  stream.node = 1;
  stream.etag = 30;
  stream.priority = static_cast<int>(kHrtPriority);
  spec.streams.push_back(stream);
  EXPECT_TRUE(
      has_rule(lint_scenario(base_image(), spec), Rule::kPriorityInversion));
}

TEST(Lint, S103PassesPaperPartition) {
  ScenarioSpec spec = base_spec();
  DeadlinePriorityMap::Config band;
  band.p_min = kSrtPriorityMin;
  band.p_max = kSrtPriorityMax;
  spec.srt_band = band;
  StreamSpec stream;
  stream.traffic = TrafficClass::kNrt;
  stream.node = 1;
  stream.etag = 30;
  stream.priority = static_cast<int>(kNrtPriorityMin);
  spec.streams.push_back(stream);
  CalendarImage image = base_image();
  image.slots.push_back(mk_slot(1'000, 8, 0, 10, 1));
  EXPECT_FALSE(
      has_rule(lint_scenario(image, spec), Rule::kPriorityInversion));
}

TEST(Lint, S104FiresWhenStreamSharesHrtEtag) {
  CalendarImage image = base_image();
  image.slots.push_back(mk_slot(1'000, 8, 0, 10, 1));
  ScenarioSpec spec = base_spec();
  StreamSpec stream;
  stream.traffic = TrafficClass::kSrt;
  stream.node = 2;
  stream.etag = 10;  // same subject as the HRT reservation
  stream.period = 5_ms;
  stream.deadline = 5_ms;
  spec.streams.push_back(stream);
  const LintReport report = lint_scenario(image, spec);
  const Finding& f = find_rule(report, Rule::kEtagClassMixing);
  EXPECT_EQ(f.severity, Severity::kError);
}

TEST(Lint, S104WarnsOnInfrastructureEtagStream) {
  ScenarioSpec spec = base_spec();
  StreamSpec stream;
  stream.traffic = TrafficClass::kNrt;
  stream.node = 1;
  stream.etag = kSyncFollowEtag;
  stream.priority = static_cast<int>(kNrtPriorityMin);
  spec.streams.push_back(stream);
  const LintReport report = lint_scenario(base_image(), spec);
  const Finding& f = find_rule(report, Rule::kEtagClassMixing);
  EXPECT_EQ(f.severity, Severity::kWarning);
}

TEST(Lint, S104PassesDisjointEtags) {
  CalendarImage image = base_image();
  image.slots.push_back(mk_slot(1'000, 8, 0, 10, 1));
  ScenarioSpec spec = base_spec();
  StreamSpec stream;
  stream.traffic = TrafficClass::kSrt;
  stream.node = 2;
  stream.etag = 20;
  stream.period = 5_ms;
  stream.deadline = 5_ms;
  spec.streams.push_back(stream);
  EXPECT_FALSE(has_rule(lint_scenario(image, spec), Rule::kEtagClassMixing));
}

TEST(Lint, S105FiresWhenDeclaredSyncSlotMissing) {
  ScenarioSpec spec = base_spec();
  spec.sync_master = 1;
  const LintReport report = lint_scenario(base_image(), spec);
  const Finding& f = find_rule(report, Rule::kSyncSlotMismatch);
  EXPECT_EQ(f.severity, Severity::kError);
}

TEST(Lint, S105FiresOnWrongSyncPublisher) {
  CalendarImage image = base_image();
  image.slots.push_back(mk_slot(1'000, 8, 1, kSyncRefEtag, 2));
  ScenarioSpec spec = base_spec();
  spec.sync_master = 1;
  EXPECT_TRUE(
      has_rule(lint_scenario(image, spec), Rule::kSyncSlotMismatch));
}

TEST(Lint, S105WarnsOnUndeclaredSyncSlot) {
  CalendarImage image = base_image();
  image.slots.push_back(mk_slot(1'000, 8, 1, kSyncRefEtag, 1));
  const LintReport report = lint_scenario(image, base_spec());
  const Finding& f = find_rule(report, Rule::kSyncSlotMismatch);
  EXPECT_EQ(f.severity, Severity::kWarning);
}

TEST(Lint, S105PassesMatchingSyncDeclaration) {
  CalendarImage image = base_image();
  image.slots.push_back(mk_slot(1'000, 8, 1, kSyncRefEtag, 1));
  ScenarioSpec spec = base_spec();
  spec.sync_master = 1;
  EXPECT_FALSE(
      has_rule(lint_scenario(image, spec), Rule::kSyncSlotMismatch));
}

TEST(Lint, S106FiresOnInfeasibleSrtSet) {
  CalendarImage image = base_image();
  image.slots.push_back(mk_slot(1'000, 8, 1, 10, 1));
  ScenarioSpec spec = base_spec();
  StreamSpec stream;
  stream.traffic = TrafficClass::kSrt;
  stream.node = 2;
  stream.etag = 20;
  stream.dlc = 8;
  stream.period = 1_ms;
  stream.deadline = 200_us;  // below one worst-case frame + blocking
  spec.streams.push_back(stream);
  const LintReport report = lint_scenario(image, spec);
  const Finding& f = find_rule(report, Rule::kSrtInfeasible);
  EXPECT_EQ(f.severity, Severity::kWarning);
}

TEST(Lint, S106PassesFeasibleSrtSet) {
  CalendarImage image = base_image();
  image.slots.push_back(mk_slot(1'000, 8, 1, 10, 1));
  ScenarioSpec spec = base_spec();
  StreamSpec stream;
  stream.traffic = TrafficClass::kSrt;
  stream.node = 2;
  stream.etag = 20;
  stream.dlc = 8;
  stream.period = 10_ms;
  stream.deadline = 10_ms;
  spec.streams.push_back(stream);
  EXPECT_FALSE(has_rule(lint_scenario(image, spec), Rule::kSrtInfeasible));
}

// --- report rendering ----------------------------------------------------

TEST(LintReport, GoldenJsonForRejectedImage) {
  const char* text =
      "calendar v1\n"
      "round_ns 10000000\n"
      "gap_ns 40000\n"
      "bitrate 1000000\n"
      "slot lst_ns=1000000 dlc=8 k=1 etag=2 node=1\n"
      "slot lst_ns=1100000 dlc=8 k=0 etag=11 node=2\n";
  const auto image = parse_calendar_image(text);
  ASSERT_TRUE(image.has_value());
  const std::string json = report_to_json(lint_calendar(*image));
  const char* expected =
      "{\n"
      "  \"tool\": \"rtec-lint\",\n"
      "  \"format\": 1,\n"
      "  \"counts\": {\"errors\": 1, \"warnings\": 1},\n"
      "  \"verdict\": \"reject\",\n"
      "  \"findings\": [\n"
      "    {\n"
      "      \"rule\": \"RTEC-C002\",\n"
      "      \"name\": \"window-overlap\",\n"
      "      \"severity\": \"error\",\n"
      "      \"slot\": 1,\n"
      "      \"other_slot\": 0,\n"
      "      \"line\": 6,\n"
      "      \"message\": \"windows closer than ΔG_min = 40000 ns "
      "under worst-case clock disagreement\"\n"
      "    },\n"
      "    {\n"
      "      \"rule\": \"RTEC-C005\",\n"
      "      \"name\": \"reserved-etag\",\n"
      "      \"severity\": \"warning\",\n"
      "      \"slot\": 0,\n"
      "      \"line\": 5,\n"
      "      \"message\": \"etag 2 is reserved for infrastructure (sync "
      "follow-up / binding protocol)\"\n"
      "    }\n"
      "  ]\n"
      "}\n";
  EXPECT_EQ(json, expected);
}

TEST(LintReport, GoldenJsonForCleanImage) {
  CalendarImage image = base_image();
  image.slots.push_back(mk_slot(1'000, 8, 1, 10, 1));
  const std::string json = report_to_json(lint_calendar(image));
  const char* expected =
      "{\n"
      "  \"tool\": \"rtec-lint\",\n"
      "  \"format\": 1,\n"
      "  \"counts\": {\"errors\": 0, \"warnings\": 0},\n"
      "  \"verdict\": \"accept\",\n"
      "  \"findings\": []\n"
      "}\n";
  EXPECT_EQ(json, expected);
}

TEST(LintReport, TextRenderingNamesRuleAndVerdict) {
  CalendarImage image = base_image();
  image.slots.push_back(mk_slot(50, 8, 0, 10, 1));
  const std::string text = report_to_text(lint_calendar(image));
  EXPECT_NE(text.find("RTEC-C001"), std::string::npos);
  EXPECT_NE(text.find("window-outside-round"), std::string::npos);
  EXPECT_NE(text.find("REJECT"), std::string::npos);
}

// --- differential property ----------------------------------------------

TEST(Lint, FuzzedImagesNeverDisagreeWithAdmission) {
  // The linter re-derives every admission invariant independently; on any
  // input the two implementations must reach the same per-slot verdict
  // (RTEC-C008 watches exactly this in production, so the fuzz also
  // proves the rule stays silent on random data).
  Rng rng{4242};
  for (int trial = 0; trial < 200; ++trial) {
    CalendarImage image;
    image.config.round_length =
        Duration::microseconds(rng.uniform_int(500, 20'000));
    image.config.gap = Duration::microseconds(rng.uniform_int(0, 100));
    image.config.bus.bitrate_bps = rng.uniform_int(1, 4) * 250'000;
    const int slots = static_cast<int>(rng.uniform_int(0, 8));
    for (int i = 0; i < slots; ++i) {
      ImageSlot slot;
      slot.spec.lst_offset =
          Duration::microseconds(rng.uniform_int(-1'000, 25'000));
      slot.spec.dlc = static_cast<int>(rng.uniform_int(-1, 10));
      slot.spec.fault.omission_degree =
          static_cast<int>(rng.uniform_int(-1, 4));
      slot.spec.etag = static_cast<Etag>(rng.uniform_int(0, kMaxEtag));
      slot.spec.publisher =
          static_cast<NodeId>(rng.uniform_int(0, kMaxNodeId));
      slot.spec.period_rounds = static_cast<int>(rng.uniform_int(0, 3));
      slot.spec.phase_round = static_cast<int>(rng.uniform_int(0, 3));
      image.slots.push_back(slot);
    }
    const LintReport report = lint_calendar(image);
    EXPECT_FALSE(has_rule(report, Rule::kAdmissionDisagreement))
        << "trial " << trial << ":\n"
        << image_to_text(image) << report_to_text(report);
  }
}

// --- scenario description parser -----------------------------------------

TEST(ScenarioSpecParse, ParsesFullDescription) {
  const char* text =
      "# deployment facts\n"
      "scenario v1\n"
      "precision_ns 33000\n"
      "sync master=0\n"
      "srt_band p_min=1 p_max=250 slot_us=160\n"
      "node id=0\n"
      "node id=1\n"
      "stream class=srt node=1 etag=20 dlc=4 period_us=5000 deadline_us=4000\n"
      "stream class=nrt node=1 etag=30 priority=251\n";
  const auto spec = parse_scenario_spec(text);
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->nodes.size(), 2u);
  ASSERT_TRUE(spec->sync_master.has_value());
  EXPECT_EQ(*spec->sync_master, 0);
  ASSERT_TRUE(spec->clock_precision.has_value());
  EXPECT_EQ(spec->clock_precision->ns(), 33'000);
  ASSERT_TRUE(spec->srt_band.has_value());
  EXPECT_EQ(spec->srt_band->p_min, 1);
  EXPECT_EQ(spec->srt_band->p_max, 250);
  ASSERT_EQ(spec->streams.size(), 2u);
  EXPECT_EQ(spec->streams[0].traffic, TrafficClass::kSrt);
  EXPECT_EQ(spec->streams[0].deadline.ns(), 4'000'000);
  EXPECT_EQ(spec->streams[1].traffic, TrafficClass::kNrt);
  EXPECT_EQ(spec->streams[1].priority, 251);
}

TEST(ScenarioSpecParse, RejectsMalformedDescriptions) {
  const struct {
    const char* text;
    const char* why;
  } cases[] = {
      {"", "empty input"},
      {"node id=1\n", "missing header"},
      {"scenario v2\n", "bad version"},
      {"scenario v1\nscenario v1\n", "duplicate header"},
      {"scenario v1\nbogus x=1\n", "unknown directive"},
      {"scenario v1\nsync master=1\nsync master=2\n", "duplicate sync"},
      {"scenario v1\nprecision_ns -5\n", "negative precision"},
      {"scenario v1\nnode id=200\n", "node id out of range"},
      {"scenario v1\nnode id=1 extra=2\n", "unknown node key"},
      {"scenario v1\nstream class=bulk node=1 etag=5\n", "bad class"},
      {"scenario v1\nstream class=srt node=1 etag=5 period_us=100 priority=3\n",
       "priority on srt stream"},
      {"scenario v1\nstream class=nrt node=1 etag=5 priority=251 period_us=9\n",
       "period on nrt stream"},
      {"scenario v1\nstream class=srt node=1 etag=5\n", "missing period"},
      {"scenario v1\nsrt_band p_min=1 p_max=250 slot_us=160 p_min=2\n",
       "duplicate key"},
  };
  for (const auto& c : cases) {
    const auto spec = parse_scenario_spec(c.text);
    EXPECT_FALSE(spec.has_value()) << c.why;
    if (!spec.has_value()) {
      EXPECT_FALSE(spec.error().message.empty());
    }
  }
}

}  // namespace
}  // namespace rtec::analysis
