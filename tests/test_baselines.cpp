#include <gtest/gtest.h>

#include <vector>

#include "baselines/dual_priority.hpp"
#include "baselines/fixed_priority.hpp"
#include "baselines/ttcan.hpp"
#include "canbus/bus.hpp"

namespace rtec {
namespace {

using literals::operator""_us;
using literals::operator""_ms;

// --------------------------------------------------------------------- RTA

TEST(FixedPriority, DmAssignmentSortsByDeadline) {
  std::vector<StreamSpec> streams{
      {1, 1, 10_ms, 8_ms, 8},
      {2, 2, 5_ms, 2_ms, 8},
      {3, 3, 20_ms, 5_ms, 8},
  };
  const auto a = deadline_monotonic_assignment(streams);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a[0].stream.id, 2);  // 2 ms deadline first
  EXPECT_EQ(a[1].stream.id, 3);
  EXPECT_EQ(a[2].stream.id, 1);
  EXPECT_LT(a[0].priority, a[1].priority);
  EXPECT_LT(a[1].priority, a[2].priority);
}

TEST(FixedPriority, RtaHighestPriorityIsBlockingPlusOwnFrame) {
  const BusConfig bus{1'000'000};
  std::vector<StreamSpec> streams{
      {1, 1, 5_ms, 2_ms, 8},
      {2, 2, 10_ms, 10_ms, 8},
  };
  const auto a = deadline_monotonic_assignment(streams);
  const auto r = response_time_analysis(a, bus);
  ASSERT_TRUE(r[0].has_value());
  // Highest priority: one lower-priority blocker + own frame.
  const Duration c8 = worst_case_frame_duration(8, true, bus);
  EXPECT_EQ(r[0]->ns(), (c8 + c8).ns());
}

TEST(FixedPriority, RtaAccountsInterference) {
  const BusConfig bus{1'000'000};
  std::vector<StreamSpec> streams{
      {1, 1, 1_ms, 1_ms, 8},   // high priority, 1 ms period
      {2, 2, 10_ms, 10_ms, 8}, // low priority
  };
  const auto a = deadline_monotonic_assignment(streams);
  const auto r = response_time_analysis(a, bus);
  ASSERT_TRUE(r[1].has_value());
  // The low-priority stream suffers at least one interference hit.
  const Duration c8 = worst_case_frame_duration(8, true, bus);
  EXPECT_GE(r[1]->ns(), (c8 * 2).ns());
  EXPECT_TRUE(feasible(a, bus));
}

TEST(FixedPriority, RtaDetectsInfeasibleSet) {
  const BusConfig bus{1'000'000};
  // 10 streams every 500 us with 8-byte frames (~157 us each): utilization
  // >> 1 — cannot be feasible.
  std::vector<StreamSpec> streams;
  for (int i = 0; i < 10; ++i)
    streams.push_back({i, static_cast<NodeId>(i + 1), 500_us, 500_us, 8});
  const auto a = deadline_monotonic_assignment(streams);
  EXPECT_FALSE(feasible(a, bus));
}

TEST(FixedPriority, SenderTransmitsByStaticPriority) {
  Simulator sim;
  CanBus bus{sim, BusConfig{1'000'000}};
  CanController ctl{sim, 1};
  CanController other{sim, 2};
  bus.attach(ctl);
  bus.attach(other);
  std::vector<std::uint32_t> order;
  bus.add_observer([&](const CanBus::FrameEvent& ev) {
    if (ev.success) order.push_back(ev.frame.id);
  });

  StaticPrioritySender sender{sim, ctl};
  const StreamSpec low{1, 1, 10_ms, 10_ms, 0};
  const StreamSpec high{2, 1, 10_ms, 1_ms, 0};
  // Queue low first; high must still overtake it in the backlog.
  // (First queued is staged immediately; queue both while bus busy.)
  CanFrame blocker;
  blocker.id = 1;
  blocker.dlc = 8;
  (void)other.submit(blocker, TxMode::kAutoRetransmit);
  sim.schedule_after(10_us, [&] {
    sender.queue(low, 50, sim.now() + 10_ms, sim.now());
    sender.queue(high, 10, sim.now() + 1_ms, sim.now());
  });
  sim.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(decode_can_id(order[1]).priority, 50);  // staged before high arrived
  EXPECT_EQ(decode_can_id(order[2]).priority, 10);
  EXPECT_EQ(sender.outcome().sent, 2u);
}

// -------------------------------------------------------------------- TTCAN

struct TtcanFixture : ::testing::Test {
  Simulator sim;
  CanBus bus{sim, BusConfig{1'000'000}};
  CanController owner_ctl{sim, 1};
  CanController async_ctl{sim, 2};
  std::vector<CanBus::FrameEvent> events;

  TtcanSchedule schedule;

  void SetUp() override {
    bus.attach(owner_ctl);
    bus.attach(async_ctl);
    bus.add_observer([this](const CanBus::FrameEvent& ev) { events.push_back(ev); });
    schedule.basic_cycle = 5_ms;
    schedule.bus = bus.config();
    // [0, 1 ms): exclusive for node 1; [1 ms, 5 ms): arbitration.
    schedule.windows.push_back(
        {TtcanWindow::Kind::kExclusive, Duration::zero(), 1_ms, 1, 1});
    schedule.windows.push_back(
        {TtcanWindow::Kind::kArbitration, 1_ms, 4_ms, 0, 1});
  }
};

TEST_F(TtcanFixture, ExclusiveWindowCarriesOwnerMessage) {
  TtcanDriver owner{sim, owner_ctl, schedule};
  owner.set_exclusive_source([&](std::size_t, std::uint64_t) {
    CanFrame f;
    f.id = 0x100;
    f.dlc = 8;
    return f;
  });
  owner.start();
  sim.run_until(TimePoint::origin() + 10_ms);
  EXPECT_EQ(owner.exclusive_sent(), 2u);  // one per basic cycle
}

TEST_F(TtcanFixture, AsyncTrafficWaitsForArbitrationWindow) {
  TtcanDriver owner{sim, owner_ctl, schedule};
  owner.start();
  TtcanDriver async_node{sim, async_ctl, schedule};
  async_node.start();

  // Queue async traffic during the exclusive window: even though the
  // window is EMPTY (owner has no data), the async frame must wait until
  // the arbitration window opens at 1 ms — no reclamation in TTCAN.
  sim.schedule_at(TimePoint::origin() + 100_us, [&] {
    CanFrame f;
    f.id = 0x700;
    f.dlc = 2;
    async_node.queue_async(f);
  });
  sim.run_until(TimePoint::origin() + 5_ms);

  ASSERT_EQ(events.size(), 1u);
  EXPECT_GE(events[0].start.ns(), (1_ms).ns());
  EXPECT_EQ(async_node.async_sent(), 1u);
}

TEST_F(TtcanFixture, RedundantCopiesAlwaysFillTheSlot) {
  schedule.windows[0].copies = 3;
  TtcanDriver owner{sim, owner_ctl, schedule};
  owner.set_exclusive_source([&](std::size_t, std::uint64_t) {
    CanFrame f;
    f.id = 0x100;
    f.dlc = 2;
    return f;
  });
  owner.start();
  sim.run_until(TimePoint::origin() + 5_ms);
  // All 3 copies sent although the first already succeeded — the paper's
  // point about TTCAN redundancy costing bandwidth even without faults.
  int copies = 0;
  for (const auto& ev : events)
    if (ev.frame.id == 0x100 && ev.success) ++copies;
  EXPECT_EQ(copies, 3);
}

TEST_F(TtcanFixture, AsyncFrameNeverOverrunsWindowEnd) {
  TtcanDriver owner{sim, owner_ctl, schedule};
  owner.start();
  TtcanDriver async_node{sim, async_ctl, schedule};
  async_node.start();

  // Queue an async frame 50 us before the arbitration window closes: a
  // worst-case frame does not fit, so it must wait for the next cycle.
  sim.schedule_at(TimePoint::origin() + 5_ms - 50_us, [&] {
    CanFrame f;
    f.id = 0x700;
    f.dlc = 8;
    async_node.queue_async(f);
  });
  sim.run_until(TimePoint::origin() + 12_ms);

  ASSERT_EQ(events.size(), 1u);
  // Sent in the next cycle's arbitration window, not at 4.95 ms.
  EXPECT_GE(events[0].start.ns(), (6_ms).ns());
}

// ------------------------------------------------------------ dual priority

TEST(DualPriority, PromotionLiftsMessageAboveCompetitor) {
  Simulator sim;
  CanBus bus{sim, BusConfig{1'000'000}};
  CanController ctl_a{sim, 1};
  CanController ctl_b{sim, 2};
  CanController blocker_ctl{sim, 3};
  bus.attach(ctl_a);
  bus.attach(ctl_b);
  bus.attach(blocker_ctl);

  std::vector<std::uint32_t> order;
  bus.add_observer([&](const CanBus::FrameEvent& ev) {
    if (ev.success) order.push_back(ev.frame.id);
  });

  // Hold the bus so both messages are pending when it frees.
  CanFrame blocker;
  blocker.id = 0;
  blocker.dlc = 8;
  (void)blocker_ctl.submit(blocker, TxMode::kAutoRetransmit);

  DualPrioritySender::Config cfg;
  DualPrioritySender a{sim, ctl_a, cfg};
  DualPrioritySender b{sim, ctl_b, cfg};
  sim.schedule_after(10_us, [&] {
    // a: lazy deadline, stays in the low band during this test.
    a.queue(1, 10, 5, 0, sim.now() + 50_ms, 1_ms);
    // b: tight deadline — promoted almost immediately to the high band.
    b.queue(2, 11, 5, 0, sim.now() + 1_ms, 900_us);
  });
  sim.run_until(TimePoint::origin() + 3_ms);

  ASSERT_EQ(order.size(), 3u);  // blocker + 2
  // b overtook a despite a's lower TxNode, because b was promoted.
  EXPECT_EQ(decode_can_id(order[1]).tx_node, 2);
  EXPECT_EQ(decode_can_id(order[2]).tx_node, 1);
  EXPECT_EQ(b.outcome().promotions, 1u);
  EXPECT_EQ(b.outcome().sent_by_deadline, 1u);
}

TEST(DualPriority, NoPromotionNeededWhenBusFree) {
  Simulator sim;
  CanBus bus{sim, BusConfig{1'000'000}};
  CanController ctl{sim, 1};
  CanController peer{sim, 2};
  bus.attach(ctl);
  bus.attach(peer);
  DualPrioritySender s{sim, ctl, {}};
  s.queue(1, 10, 5, 4, sim.now() + 10_ms, 1_ms);
  sim.run_until(TimePoint::origin() + 1_ms);
  EXPECT_EQ(s.outcome().sent, 1u);
  EXPECT_EQ(s.outcome().sent_by_deadline, 1u);
  EXPECT_EQ(s.outcome().promotions, 0u);
}

}  // namespace
}  // namespace rtec
