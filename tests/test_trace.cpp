#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "canbus/bus.hpp"
#include "sched/id_codec.hpp"
#include "trace/csv.hpp"
#include "trace/metrics.hpp"

namespace rtec {
namespace {

using literals::operator""_us;
using literals::operator""_ms;

CanFrame frame_with_priority(Priority p, NodeId node) {
  CanFrame f;
  f.id = encode_can_id({p, node, 100});
  f.dlc = 2;
  return f;
}

TEST(ClassUtilization, SplitsBusyTimeByPriorityClass) {
  Simulator sim;
  CanBus bus{sim, BusConfig{}};
  CanController a{sim, 1};
  CanController b{sim, 2};
  bus.attach(a);
  bus.attach(b);
  ClassUtilization util{bus};

  (void)a.submit(frame_with_priority(kHrtPriority, 1), TxMode::kAutoRetransmit);
  (void)a.submit(frame_with_priority(100, 1), TxMode::kAutoRetransmit);
  (void)b.submit(frame_with_priority(255, 2), TxMode::kAutoRetransmit);
  sim.run();
  sim.run_until(TimePoint::origin() + 1_ms);

  EXPECT_EQ(util.frames(TrafficClass::kHrt), 1u);
  EXPECT_EQ(util.frames(TrafficClass::kSrt), 1u);
  EXPECT_EQ(util.frames(TrafficClass::kNrt), 1u);
  EXPECT_GT(util.busy(TrafficClass::kHrt).ns(), 0);
  const double total = util.fraction(TrafficClass::kHrt) +
                       util.fraction(TrafficClass::kSrt) +
                       util.fraction(TrafficClass::kNrt);
  EXPECT_NEAR(total, bus.utilization(), 1e-9);
}

TEST(ClassUtilization, CountsErrorsPerClass) {
  Simulator sim;
  CanBus bus{sim, BusConfig{}};
  CanController a{sim, 1};
  CanController b{sim, 2};
  bus.attach(a);
  bus.attach(b);
  ScriptedFaults faults;
  faults.add_rule([](const FaultContext& ctx) { return ctx.attempt == 1; });
  bus.set_fault_model(&faults);
  ClassUtilization util{bus};

  (void)a.submit(frame_with_priority(50, 1), TxMode::kAutoRetransmit);
  sim.run();
  EXPECT_EQ(util.errors(TrafficClass::kSrt), 1u);
  EXPECT_EQ(util.frames(TrafficClass::kSrt), 2u);  // 1 failed + 1 ok
}

TEST(ClassUtilization, ResetRestartsTheWindow) {
  Simulator sim;
  CanBus bus{sim, BusConfig{}};
  CanController a{sim, 1};
  CanController b{sim, 2};
  bus.attach(a);
  bus.attach(b);
  ClassUtilization util{bus};
  (void)a.submit(frame_with_priority(50, 1), TxMode::kAutoRetransmit);
  sim.run();
  util.reset();
  EXPECT_EQ(util.frames(TrafficClass::kSrt), 0u);
  EXPECT_EQ(util.busy(TrafficClass::kSrt).ns(), 0);
  sim.run_until(TimePoint::origin() + 1_ms);
  EXPECT_DOUBLE_EQ(util.fraction(TrafficClass::kSrt), 0.0);
}

TEST(LatencyProbe, JitterIsPeakToPeak) {
  LatencyProbe probe;
  probe.record(100_us);
  probe.record(150_us);
  probe.record(120_us);
  EXPECT_EQ(probe.min().ns(), (100_us).ns());
  EXPECT_EQ(probe.max().ns(), (150_us).ns());
  EXPECT_EQ(probe.jitter().ns(), (50_us).ns());
}

TEST(PeriodProbe, DerivesPeriodsFromDeliveryInstants) {
  PeriodProbe probe;
  probe.record_delivery(TimePoint::origin() + 10_ms);
  probe.record_delivery(TimePoint::origin() + 20_ms);
  probe.record_delivery(TimePoint::origin() + 31_ms);  // one late
  probe.record_delivery(TimePoint::origin() + 40_ms);  // one early
  EXPECT_EQ(probe.periods().count(), 3u);
  EXPECT_EQ(probe.period_jitter().ns(), (2_ms).ns());  // 11 ms vs 9 ms
}

TEST(CsvWriter, WritesHeaderAndRows) {
  const char* path = "test_trace_tmp.csv";
  {
    CsvWriter csv{path};
    ASSERT_TRUE(csv.ok());
    csv.header({"a", "b", "c"});
    csv.row(1, 2.5, "x");
    csv.row(4, 5.5, "y");
  }
  std::ifstream in{path};
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), "a,b,c\n1,2.5,x\n4,5.5,y\n");
  std::remove(path);
}

TEST(CsvWriter, UnopenedWriterDropsSilently) {
  CsvWriter csv;
  EXPECT_FALSE(csv.ok());
  csv.header({"a"});
  csv.row(1);  // must not crash
}

}  // namespace
}  // namespace rtec
