#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"
#include "time/clock.hpp"

namespace rtec {
namespace {

using literals::operator""_ns;
using literals::operator""_us;
using literals::operator""_ms;

// ----------------------------------------------------------------- simulator

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(TimePoint::origin() + 30_us, [&] { order.push_back(3); });
  sim.schedule_at(TimePoint::origin() + 10_us, [&] { order.push_back(1); });
  sim.schedule_at(TimePoint::origin() + 20_us, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now().ns(), 30'000);
}

TEST(Simulator, FifoTieBreakAtEqualTimes) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    sim.schedule_at(TimePoint::origin() + 5_us, [&order, i] { order.push_back(i); });
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  auto h = sim.schedule_after(1_ms, [&] { fired = true; });
  sim.cancel(h);
  EXPECT_FALSE(h.valid());
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, CancelIsIdempotentAndSafeAfterFire) {
  Simulator sim;
  auto h = sim.schedule_after(1_us, [] {});
  sim.run();
  sim.cancel(h);  // already fired: harmless
  sim.cancel(h);  // idempotent
}

TEST(Simulator, RunUntilAdvancesTimeEvenWithoutEvents) {
  Simulator sim;
  sim.run_until(TimePoint::origin() + 7_ms);
  EXPECT_EQ(sim.now().ns(), 7'000'000);
}

TEST(Simulator, RunUntilLeavesLaterEventsPending) {
  Simulator sim;
  bool early = false;
  bool late = false;
  sim.schedule_after(1_ms, [&] { early = true; });
  sim.schedule_after(5_ms, [&] { late = true; });
  sim.run_until(TimePoint::origin() + 2_ms);
  EXPECT_TRUE(early);
  EXPECT_FALSE(late);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_TRUE(late);
}

TEST(Simulator, CallbackCanScheduleMoreWork) {
  Simulator sim;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 5) sim.schedule_after(10_us, tick);
  };
  sim.schedule_after(10_us, tick);
  sim.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.now().ns(), 50'000);
}

TEST(Simulator, ZeroDelayEventRunsAfterCurrentBatch) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(TimePoint::origin() + 1_us, [&] {
    order.push_back(1);
    sim.schedule_after(0_ns, [&] { order.push_back(3); });
  });
  sim.schedule_at(TimePoint::origin() + 1_us, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, SurvivesLargeCancelStorm) {
  // Lazy-deletion heap: massive cancellation must neither leak entries
  // into execution nor distort later ordering.
  Simulator sim;
  std::vector<Simulator::TimerHandle> handles;
  handles.reserve(100'000);
  int fired = 0;
  for (int i = 0; i < 100'000; ++i) {
    handles.push_back(sim.schedule_at(
        TimePoint::origin() + Duration::microseconds(i + 1),
        [&fired] { ++fired; }));
  }
  // Cancel every second timer.
  for (std::size_t i = 0; i < handles.size(); i += 2) sim.cancel(handles[i]);
  EXPECT_EQ(sim.pending(), 50'000u);
  sim.run();
  EXPECT_EQ(fired, 50'000);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, InterleavedScheduleCancelFromCallbacks) {
  Simulator sim;
  int fired = 0;
  Simulator::TimerHandle victim;
  sim.schedule_at(TimePoint::origin() + 1_us, [&] {
    ++fired;
    // Cancel a timer that is already in the heap for a later instant.
    sim.cancel(victim);
    // And schedule a replacement.
    sim.schedule_after(5_us, [&] { ++fired; });
  });
  victim = sim.schedule_at(TimePoint::origin() + 3_us, [&] { fired += 100; });
  sim.run();
  EXPECT_EQ(fired, 2);  // victim never ran
}

// --------------------------------------------------------------- local clock

TEST(LocalClock, PerfectClockTracksSim) {
  Simulator sim;
  LocalClock clk{sim, Duration::zero(), 0, 1_ns};
  sim.run_until(TimePoint::origin() + 5_ms);
  EXPECT_EQ(clk.now().ns(), 5'000'000);
}

TEST(LocalClock, OffsetApplies) {
  Simulator sim;
  LocalClock clk{sim, 100_us, 0, 1_ns};
  EXPECT_EQ(clk.now().ns(), 100'000);
  sim.run_until(TimePoint::origin() + 1_ms);
  EXPECT_EQ(clk.now().ns(), 1'100'000);
}

TEST(LocalClock, DriftAccumulates) {
  Simulator sim;
  LocalClock fast{sim, Duration::zero(), 100'000, 1_ns};  // +100 ppm
  sim.run_until(TimePoint::origin() + Duration::seconds(1));
  // After 1 s a +100 ppm clock reads 100 us ahead.
  EXPECT_EQ(fast.now().ns(), 1'000'100'000);
}

TEST(LocalClock, GranularityQuantizesReadings) {
  Simulator sim;
  LocalClock clk{sim, Duration::zero(), 0, 10_us};
  sim.run_until(TimePoint::origin() + 25_us);
  EXPECT_EQ(clk.now().ns(), 20'000);  // truncated to the 10 us tick
}

TEST(LocalClock, AdjustStepsForwardAndBack) {
  Simulator sim;
  LocalClock clk{sim, Duration::zero(), 0, 1_ns};
  sim.run_until(TimePoint::origin() + 1_ms);
  clk.adjust(50_us);
  EXPECT_EQ(clk.now().ns(), 1'050'000);
  clk.adjust(-70_us);
  EXPECT_EQ(clk.now().ns(), 980'000);
}

TEST(LocalClock, ToPerfectInvertsToLocal) {
  Simulator sim;
  LocalClock clk{sim, 123_us, 50'000, 1_ns};  // offset + 50 ppm
  sim.run_until(TimePoint::origin() + 10_ms);
  const TimePoint local_target = clk.now() + 3_ms;
  const TimePoint perfect = clk.to_perfect(local_target);
  // Reading the clock at `perfect` should give the target within 1 ns of
  // rounding.
  const TimePoint readback = clk.to_local(perfect);
  EXPECT_NEAR(static_cast<double>(readback.ns()),
              static_cast<double>(local_target.ns()), 1.0);
}

TEST(LocalClock, ScheduleAtLocalFiresAtLocalTime) {
  Simulator sim;
  LocalClock clk{sim, 200_us, 0, 1_ns};
  TimePoint fired_local;
  clk.schedule_at_local(TimePoint::origin() + 1_ms,
                        [&] { fired_local = clk.now(); });
  sim.run();
  EXPECT_EQ(fired_local.ns(), 1'000'000);
  // In perfect time that is 1 ms - 200 us (clock is ahead).
  EXPECT_EQ(sim.now().ns(), 800'000);
}

TEST(LocalClock, ScheduleAtLocalPastDeadlineFiresImmediately) {
  Simulator sim;
  LocalClock clk{sim, Duration::zero(), 0, 1_ns};
  sim.run_until(TimePoint::origin() + 1_ms);
  bool fired = false;
  clk.schedule_at_local(TimePoint::origin() + 1_us, [&] { fired = true; });
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now().ns(), 1'000'000);
}

TEST(LocalClock, RateAdjustChangesSlope) {
  Simulator sim;
  LocalClock clk{sim, Duration::zero(), 100'000, 1_ns};
  sim.run_until(TimePoint::origin() + Duration::seconds(1));
  clk.adjust_rate(-100'000);  // cancel the drift
  EXPECT_EQ(clk.drift_ppb(), 0);
  const TimePoint before = clk.now();
  sim.run_until(TimePoint::origin() + Duration::seconds(2));
  EXPECT_EQ((clk.now() - before).ns(), 1'000'000'000);
}

}  // namespace
}  // namespace rtec
