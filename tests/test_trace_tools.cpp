#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/scenario.hpp"
#include "core/srtec.hpp"
#include "core/status.hpp"
#include "trace/bus_recorder.hpp"
#include "trace/histogram.hpp"
#include "util/stats.hpp"

namespace rtec {
namespace {

using literals::operator""_ns;
using literals::operator""_us;
using literals::operator""_ms;

// ------------------------------------------------------------ bus recorder

struct RecorderFixture : ::testing::Test {
  Simulator sim;
  CanBus bus{sim, BusConfig{}};
  CanController a{sim, 1};
  CanController b{sim, 2};
  BusRecorder rec{bus};

  void SetUp() override {
    bus.attach(a);
    bus.attach(b);
  }

  void send(std::uint32_t id) {
    CanFrame f;
    f.id = id;
    f.dlc = 1;
    (void)a.submit(f, TxMode::kAutoRetransmit);
  }
};

TEST_F(RecorderFixture, RecordsEveryOccupancyIncludingErrors) {
  ScriptedFaults faults;
  faults.add_rule([](const FaultContext& ctx) { return ctx.attempt == 1; });
  bus.set_fault_model(&faults);
  send(0x100);
  sim.run();
  ASSERT_EQ(rec.size(), 2u);  // corrupted attempt + good retry
  EXPECT_FALSE(rec.events()[0].success);
  EXPECT_TRUE(rec.events()[1].success);
  EXPECT_EQ(rec.events()[0].attempt, 1);
  EXPECT_EQ(rec.events()[1].attempt, 2);
}

TEST_F(RecorderFixture, FilterSelectsByMaskedId) {
  send(0x100);
  send(0x200);
  send(0x101);
  sim.run();
  EXPECT_EQ(rec.filtered(0x100, 0x1ffffffe).size(), 2u);  // 0x100 and 0x101
  EXPECT_EQ(rec.filtered(0x200, 0x1fffffff).size(), 1u);
}

TEST_F(RecorderFixture, DivergenceDetection) {
  send(0x100);
  send(0x200);
  sim.run();
  // Same-trace comparison: identical up to its full length.
  EXPECT_EQ(BusRecorder::first_divergence(rec, rec), rec.size());
}

TEST_F(RecorderFixture, CsvDumpParsesBack) {
  send(0x123);
  sim.run();
  const char* path = "test_busrec_tmp.csv";
  ASSERT_TRUE(rec.save_csv(path));
  std::ifstream in{path};
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header,
            "start_ns,end_ns,id_hex,prio,node,etag,dlc,success,attempt,bits");
  std::string row;
  ASSERT_TRUE(static_cast<bool>(std::getline(in, row)));
  EXPECT_NE(row.find("00000123"), std::string::npos);
  std::remove(path);
}

// --------------------------------------------------------------- histogram

TEST(HistogramTest, BucketsAndOverflow) {
  Histogram h{0, 100, 10};
  for (double x : {5.0, 15.0, 15.5, 99.0, -1.0, 150.0}) h.add(x);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(9), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
}

TEST(HistogramTest, RenderShowsOnlyNonEmptyBuckets) {
  Histogram h{0, 1000, 10};
  for (int i = 0; i < 20; ++i) h.add(150.0);
  h.add(950.0);
  const std::string text = h.render(/*unit_scale=*/1.0, " us");
  EXPECT_NE(text.find("[100.0..200.0) us"), std::string::npos);
  EXPECT_NE(text.find("[900.0..1000.0) us"), std::string::npos);
  EXPECT_EQ(text.find("[0.0..100.0)"), std::string::npos);  // empty bucket
  // The dominant bucket has the longest bar.
  EXPECT_NE(text.find("####"), std::string::npos);
}

TEST(HistogramTest, QuantileOfEmptyHistogramIsZero) {
  const Histogram h{0, 100, 10};
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);
}

TEST(HistogramTest, QuantileSingleBucketReportsItsLowerEdge) {
  Histogram h{10, 20, 1};
  for (double x : {11.0, 14.0, 19.9}) h.add(x);
  for (double q : {0.0, 0.5, 1.0}) EXPECT_DOUBLE_EQ(h.quantile(q), 10.0);
}

TEST(HistogramTest, QuantileSaturatedOverflowReportsHi) {
  Histogram h{0, 10, 2};
  for (int i = 0; i < 5; ++i) h.add(100.0);  // everything overflows
  for (double q : {0.0, 0.5, 1.0}) EXPECT_DOUBLE_EQ(h.quantile(q), 10.0);
  // One in-range sample: the low ranks find it, the top ranks saturate.
  h.add(1.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
}

TEST(HistogramTest, QuantileUnderflowReportsLo) {
  Histogram h{10, 20, 2};
  h.add(-5.0);
  h.add(12.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 10.0);  // underflow clamps to lo
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);  // 12 lives in bucket [10,15)
}

TEST(HistogramTest, QuantileMonotoneUnderAdversarialBoundaries) {
  // Samples exactly on bucket boundaries, plus under- and overflow: the
  // quantile must still be a monotone step function of q.
  Histogram h{0, 8, 4};
  for (double x : {-1.0, 0.0, 2.0, 2.0, 4.0, 6.0, 8.0, 9.0}) h.add(x);
  double prev = h.quantile(0.0);
  for (double q = 0.0; q <= 1.0; q += 0.005) {
    const double v = h.quantile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 8.0);
}

TEST(HistogramTest, QuantileAgreesWithSampleSetOnGridSamples) {
  // When samples sit exactly on the bucket grid the histogram quantile is
  // exact — same nearest-rank convention (util/stats quantile_rank), same
  // values. This is the property bench_analytic relies on.
  Histogram h{0, 1000, 100};
  SampleSet s;
  for (int i = 0; i < 500; ++i) {
    const double x = static_cast<double>((i * 37) % 100) * 10.0;
    h.add(x);
    s.add(x);
  }
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0})
    EXPECT_DOUBLE_EQ(h.quantile(q), s.quantile(q)) << "q=" << q;
}

// ------------------------------------------------------------ status dumps

TEST(Status, MiddlewareAndNodeDumpsContainCounters) {
  Scenario scn;
  Node& a = scn.add_node(1);
  Node& b = scn.add_node(2);
  Srtec pub{a.middleware()};
  Srtec sub{b.middleware()};
  ASSERT_TRUE(pub.announce(subject_of("st/x"), {}, nullptr).has_value());
  ASSERT_TRUE(sub.subscribe(subject_of("st/x"), {}, nullptr, nullptr)
                  .has_value());
  Event e;
  e.content = {1};
  ASSERT_TRUE(pub.publish(std::move(e)).has_value());
  scn.run_for(5_ms);

  const std::string mw = middleware_status(a.middleware());
  EXPECT_NE(mw.find("node 1 middleware:"), std::string::npos);
  EXPECT_NE(mw.find("srt: published 1 sent 1 (by deadline 1)"),
            std::string::npos);

  const std::string ns = node_status(b);
  EXPECT_NE(ns.find("node 2: local clock"), std::string::npos);
  EXPECT_NE(ns.find("TEC 0 REC 0"), std::string::npos);
  EXPECT_NE(ns.find("rx frames seen: 1"), std::string::npos);
}

}  // namespace
}  // namespace rtec
