#include <gtest/gtest.h>

#include "canbus/frame.hpp"
#include "util/random.hpp"

namespace rtec {
namespace {

// ------------------------------------------------------------- frame lengths

TEST(Frame, StuffableRegionLengths) {
  CanFrame ext;
  ext.extended = true;
  ext.dlc = 8;
  // SOF + 11 + SRR + IDE + 18 + RTR + r1 + r0 + DLC(4) + 64 + CRC(15) = 118
  EXPECT_EQ(frame_stuffable_bits(ext).count, 118);

  CanFrame base;
  base.extended = false;
  base.dlc = 0;
  // SOF + 11 + RTR + IDE + r0 + DLC(4) + CRC(15) = 34
  EXPECT_EQ(frame_stuffable_bits(base).count, 34);
}

TEST(Frame, WorstCaseFormulaMatchesClassicBound) {
  // Extended 8-byte frame: 54 + 64 stuffable, floor(117/4)=29 stuff bits,
  // + 10 tail bits = 157.
  EXPECT_EQ(worst_case_wire_bits(8, true), 157);
  // Base 8-byte frame: 34 + 64 + floor(97/4)=24 + 10 = 132.
  EXPECT_EQ(worst_case_wire_bits(8, false), 132);
  // Base 0-byte frame: 34 + 8 + 10 = 52.
  EXPECT_EQ(worst_case_wire_bits(0, false), 52);
}

TEST(Frame, ActualNeverExceedsWorstCase) {
  Rng r{42};
  for (int trial = 0; trial < 2000; ++trial) {
    CanFrame f;
    f.extended = r.bernoulli(0.5);
    f.id = static_cast<std::uint32_t>(
        r.uniform_int(0, f.extended ? kMaxExtendedId : kMaxBaseId));
    f.dlc = static_cast<std::uint8_t>(r.uniform_int(0, 8));
    for (auto& b : f.data) b = static_cast<std::uint8_t>(r.uniform_int(0, 255));
    EXPECT_LE(frame_wire_bits(f), worst_case_wire_bits(f.dlc, f.extended));
    // Lower bound: unstuffed region + tail.
    const int unstuffed = frame_stuffable_bits(f).count + 10;
    EXPECT_GE(frame_wire_bits(f), unstuffed);
  }
}

TEST(Frame, AlternatingPayloadHasNoDataStuffBits) {
  CanFrame f;
  f.extended = true;
  f.id = 0x0aaaaaaa & kMaxExtendedId;
  f.dlc = 8;
  for (auto& b : f.data) b = 0x55;  // 01010101 — never 5 equal bits
  const FrameBits fb = frame_stuffable_bits(f);
  // Count stuff bits only over the data region by comparing against the
  // same frame with dlc 0: the alternating payload itself adds none beyond
  // what the CRC tail introduces.
  const int stuff =
      count_stuff_bits({fb.bits.data(), static_cast<std::size_t>(fb.count)});
  EXPECT_LE(stuff, 6);  // header + CRC can still stuff a little
}

TEST(Frame, AllZeroPayloadStuffsHeavily) {
  CanFrame f;
  f.extended = true;
  f.id = 0;
  f.dlc = 8;
  f.data.fill(0);
  const FrameBits fb = frame_stuffable_bits(f);
  const int stuff =
      count_stuff_bits({fb.bits.data(), static_cast<std::size_t>(fb.count)});
  // A long run of zeros stuffs every 4 bits after the first 5.
  EXPECT_GE(stuff, 18);
}

TEST(Frame, StuffCountRule) {
  // 5 equal bits -> 1 stuff bit; the stuff bit breaks the run.
  const bool five[] = {false, false, false, false, false};
  EXPECT_EQ(count_stuff_bits(five), 1);
  const bool nine[] = {false, false, false, false, false,
                       false, false, false, false};
  // After the stuff bit (a 1), the remaining 4 zeros do not re-stuff.
  EXPECT_EQ(count_stuff_bits(nine), 1);
  const bool ten[] = {true, true, true, true, true,
                      true, true, true, true, true};
  // 5 ones -> stuff(0); then remaining 5 ones -> ... the stuff bit resets
  // the run, so positions 6..10 are 5 ones -> second stuff bit.
  EXPECT_EQ(count_stuff_bits(ten), 2);
  const bool alternating[] = {true, false, true, false, true, false};
  EXPECT_EQ(count_stuff_bits(alternating), 0);
}

TEST(Frame, DurationScalesWithBitrate) {
  CanFrame f;
  f.extended = true;
  f.dlc = 8;
  f.id = 0x15555555;
  for (auto& b : f.data) b = 0xA5;
  const BusConfig mbit{1'000'000};
  const BusConfig half{500'000};
  EXPECT_EQ(frame_duration(f, half).ns(), 2 * frame_duration(f, mbit).ns());
  EXPECT_EQ(frame_duration(f, mbit).ns(), frame_wire_bits(f) * 1000);
}

TEST(Frame, PaperBlockingTimeBallpark) {
  // The paper quotes ~154 us for the longest CAN message at 1 Mbit/s; our
  // exact worst case (29-bit ID, maximal stuffing) is 157 bits = 157 us.
  const BusConfig mbit{1'000'000};
  const Duration wc = worst_case_frame_duration(8, true, mbit);
  EXPECT_GE(wc.us(), 150.0);
  EXPECT_LE(wc.us(), 160.0);
}

TEST(Frame, RtrFrameHasNoDataField) {
  CanFrame f;
  f.extended = false;
  f.id = 0x123;
  f.rtr = true;
  f.dlc = 8;  // DLC of the requested frame; no data transmitted
  EXPECT_EQ(frame_stuffable_bits(f).count, 34);
}

TEST(Frame, CrcChangesWithPayload) {
  CanFrame a;
  a.extended = true;
  a.id = 0x100;
  a.dlc = 4;
  a.data = {1, 2, 3, 4, 0, 0, 0, 0};
  CanFrame b = a;
  b.data[2] = 9;
  const FrameBits fa = frame_stuffable_bits(a);
  const FrameBits fb = frame_stuffable_bits(b);
  bool differ = false;
  for (int i = 0; i < fa.count; ++i)
    differ |= fa.bits[static_cast<std::size_t>(i)] !=
              fb.bits[static_cast<std::size_t>(i)];
  EXPECT_TRUE(differ);
}

}  // namespace
}  // namespace rtec
