#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "canbus/frame.hpp"
#include "core/hrtec.hpp"
#include "core/nrtec.hpp"
#include "core/scenario.hpp"
#include "core/srtec.hpp"
#include "sched/calendar.hpp"
#include "sched/edf_queue.hpp"
#include "sched/priority_map.hpp"
#include "util/random.hpp"
#include "util/task_pool.hpp"

/// Property-based suites: randomized inputs checked against invariants or
/// reference models rather than hand-picked expectations.

namespace rtec {
namespace {

using literals::operator""_ns;
using literals::operator""_us;
using literals::operator""_ms;

// --------------------------------------------------------- frame properties

class FrameLengthProperty : public ::testing::TestWithParam<int> {};

TEST_P(FrameLengthProperty, MonotoneInDlcAndBoundedByFormula) {
  const int dlc = GetParam();
  for (const bool extended : {false, true}) {
    if (dlc > 0) {
      // Worst case grows strictly with dlc (8 data bits + up to 2 stuff).
      EXPECT_GT(worst_case_wire_bits(dlc, extended),
                worst_case_wire_bits(dlc - 1, extended));
    }
    Rng rng{static_cast<std::uint64_t>(dlc) * 7 + (extended ? 1 : 0)};
    for (int trial = 0; trial < 300; ++trial) {
      CanFrame f;
      f.extended = extended;
      f.id = static_cast<std::uint32_t>(
          rng.uniform_int(0, extended ? kMaxExtendedId : kMaxBaseId));
      f.dlc = static_cast<std::uint8_t>(dlc);
      for (auto& b : f.data)
        b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      const int bits = frame_wire_bits(f);
      EXPECT_LE(bits, worst_case_wire_bits(dlc, extended));
      EXPECT_GE(bits, frame_stuffable_bits(f).count + 10);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllDlc, FrameLengthProperty, ::testing::Range(0, 9));

// ------------------------------------------------------ calendar admission

class CalendarAdmissionProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CalendarAdmissionProperty, AcceptedSlotsNeverOverlapOnTheRoundCircle) {
  Rng rng{GetParam()};
  Calendar::Config cfg;
  cfg.round_length = 20_ms;
  cfg.gap = 40_us;
  Calendar cal{cfg};

  int accepted = 0;
  for (int i = 0; i < 200; ++i) {
    SlotSpec s;
    s.lst_offset = Duration::microseconds(rng.uniform_int(0, 20'000));
    s.dlc = static_cast<int>(rng.uniform_int(0, 8));
    s.fault.omission_degree = static_cast<int>(rng.uniform_int(0, 3));
    s.etag = static_cast<Etag>(rng.uniform_int(4, 100));
    s.publisher = static_cast<NodeId>(rng.uniform_int(0, 20));
    if (cal.reserve(s)) ++accepted;
  }
  ASSERT_GT(accepted, 3);  // dense enough to be meaningful

  // Global invariant, checked independently of the admission code path:
  // sample the round at 10 us resolution; no instant may be covered by two
  // windows, and adjacent windows keep the gap.
  const std::int64_t round = cfg.round_length.ns();
  std::vector<int> owner((static_cast<std::size_t>(round / 10'000)) + 1, -1);
  for (std::size_t i = 0; i < cal.size(); ++i) {
    const SlotTiming t = cal.timing(i);
    // Include the gap half on each side: windows + gap/2 must still not
    // collide if separation >= gap holds.
    const std::int64_t from = t.ready_offset.ns() - cfg.gap.ns() / 2;
    const std::int64_t to = t.deadline_offset.ns() + cfg.gap.ns() / 2;
    for (std::int64_t ns = from; ns < to; ns += 10'000) {
      std::int64_t wrapped = ns % round;
      if (wrapped < 0) wrapped += round;
      auto& cell = owner[static_cast<std::size_t>(wrapped / 10'000)];
      if (cell != -1 && cell != static_cast<int>(i)) {
        FAIL() << "windows " << cell << " and " << i
               << " overlap (incl. half-gap) at offset " << wrapped << " ns";
      }
      cell = static_cast<int>(i);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CalendarAdmissionProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ------------------------------------------------------- EDF queue vs model

TEST(EdfQueueProperty, MatchesReferenceModelUnderRandomOps) {
  Rng rng{424242};
  EdfQueue<int> q;
  std::multimap<std::pair<std::int64_t, std::uint64_t>, int> model;
  std::map<int, EdfQueue<int>::Handle> handles;
  std::uint64_t seq = 0;
  int next_val = 0;

  for (int op = 0; op < 20'000; ++op) {
    const double dice = rng.uniform();
    if (dice < 0.5) {
      const auto deadline = rng.uniform_int(0, 1'000'000);
      const int val = next_val++;
      handles[val] = q.push(TimePoint::from_ns(deadline), val);
      model.emplace(std::make_pair(deadline, seq++), val);
    } else if (dice < 0.8) {
      const auto got = q.pop();
      if (model.empty()) {
        EXPECT_EQ(got, std::nullopt);
      } else {
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(*got, model.begin()->second);
        handles.erase(model.begin()->second);
        model.erase(model.begin());
      }
    } else if (!handles.empty()) {
      // Remove a random element by handle.
      auto it = handles.begin();
      std::advance(it, rng.uniform_int(0, static_cast<std::int64_t>(
                                              handles.size()) - 1));
      const auto removed = q.remove(it->second);
      ASSERT_TRUE(removed.has_value());
      EXPECT_EQ(*removed, it->first);
      for (auto m = model.begin(); m != model.end(); ++m) {
        if (m->second == it->first) {
          model.erase(m);
          break;
        }
      }
      handles.erase(it);
    }
    ASSERT_EQ(q.size(), model.size());
    if (!model.empty()) {
      EXPECT_EQ(q.earliest_deadline().ns(), model.begin()->first.first);
    }
  }
}

// --------------------------------------------------- priority map properties

class PriorityMapProperty : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(PriorityMapProperty, BandIsMonotoneInDeadlineAndTime) {
  const Duration slot = Duration::microseconds(GetParam());
  const DeadlinePriorityMap map{{1, 250, slot}};
  Rng rng{static_cast<std::uint64_t>(GetParam())};
  for (int trial = 0; trial < 2000; ++trial) {
    const TimePoint now =
        TimePoint::origin() + Duration::microseconds(rng.uniform_int(0, 1'000'000));
    const TimePoint d1 = now + Duration::microseconds(rng.uniform_int(0, 80'000));
    const TimePoint d2 = d1 + Duration::microseconds(rng.uniform_int(0, 80'000));
    // Later deadline never maps to a more urgent (smaller) band.
    EXPECT_LE(map.priority_for(now, d1), map.priority_for(now, d2));
    // As time advances urgency never decreases.
    const TimePoint later = now + Duration::microseconds(rng.uniform_int(0, 50'000));
    EXPECT_LE(map.priority_for(later, d1), map.priority_for(now, d1));
  }
}

TEST_P(PriorityMapProperty, PromotionWalkTerminatesAtMostUrgent) {
  const Duration slot = Duration::microseconds(GetParam());
  const DeadlinePriorityMap map{{1, 250, slot}};
  Rng rng{static_cast<std::uint64_t>(GetParam()) + 99};
  for (int trial = 0; trial < 200; ++trial) {
    TimePoint now = TimePoint::origin();
    const TimePoint deadline =
        now + Duration::microseconds(rng.uniform_int(1, 200'000));
    Priority prev = map.priority_for(now, deadline);
    int steps = 0;
    while (true) {
      const TimePoint next = map.next_promotion(now, deadline);
      if (next == TimePoint::max()) break;
      ASSERT_GT(next.ns(), now.ns()) << "promotion must move forward";
      now = next;
      const Priority p = map.priority_for(now, deadline);
      ASSERT_LT(p, prev) << "each promotion raises urgency by >= 1 band";
      prev = p;
      ASSERT_LT(++steps, 251) << "walk must terminate within the band count";
    }
    EXPECT_EQ(prev, 1);  // ended at the most urgent band
  }
}

INSTANTIATE_TEST_SUITE_P(SlotLengths, PriorityMapProperty,
                         ::testing::Values(20, 100, 160, 640, 5000));

// ---------------------------------------- HRT delivery sweep over (dlc, k)

class HrtDeliveryProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(HrtDeliveryProperty, ExactlyKFaultsAlwaysDeliveredAtDeadline) {
  const auto [dlc, k] = GetParam();
  Scenario::Config cfg;
  cfg.calendar.round_length = 10_ms;
  Scenario scn{cfg};
  Node::ClockParams perfect;
  perfect.granularity = 1_ns;
  Node& pub_node = scn.add_node(1, perfect);
  Node& sub_node = scn.add_node(2, perfect);

  const Subject subject = subject_of("prop/hrt");
  SlotSpec slot;
  slot.lst_offset = 2_ms;
  slot.dlc = dlc;
  slot.fault.omission_degree = k;
  slot.etag = *scn.binding().bind(subject);
  slot.publisher = pub_node.id();
  const auto slot_index = scn.calendar().reserve(slot);
  ASSERT_TRUE(slot_index.has_value());

  auto faults = std::make_unique<ScriptedFaults>();
  auto counter = std::make_shared<int>(0);
  const int kk = k;
  faults->add_rule([counter, kk](const FaultContext& ctx) {
    if (id_priority(ctx.frame.id) != kHrtPriority) return false;
    return (*counter)++ % (kk + 1) < kk;  // exactly k corruptions/message
  });
  scn.set_fault_model(std::move(faults));

  Hrtec pub{pub_node.middleware()};
  Hrtec sub{sub_node.middleware()};
  ASSERT_TRUE(pub.announce(subject, {}, nullptr).has_value());
  std::vector<TimePoint> deliveries;
  ASSERT_TRUE(sub.subscribe(subject, AttributeList{attr::QueueCapacity{32}},
                            [&] { deliveries.push_back(sub_node.clock().now()); },
                            nullptr)
                  .has_value());

  constexpr int kRounds = 10;
  for (int r = 0; r < kRounds; ++r) {
    const auto inst = scn.calendar().instance_at_or_after(
        *slot_index, TimePoint::origin() + 10_ms * r);
    scn.sim().schedule_at(inst.ready - 5_us, [&pub, dlc = dlc] {
      Event e;
      e.content.assign(static_cast<std::size_t>(dlc), 0x3C);
      ASSERT_TRUE(pub.publish(std::move(e)).has_value());
    });
  }
  scn.run_for(10_ms * kRounds + 5_ms);

  ASSERT_EQ(deliveries.size(), static_cast<std::size_t>(kRounds));
  for (int r = 0; r < kRounds; ++r) {
    const auto inst = scn.calendar().instance_at_or_after(
        *slot_index, TimePoint::origin() + 10_ms * r);
    EXPECT_EQ(deliveries[static_cast<std::size_t>(r)].ns(), inst.deadline.ns());
  }
  EXPECT_EQ(pub_node.middleware().hrt().counters().retries,
            static_cast<std::uint64_t>(k * kRounds));
}

INSTANTIATE_TEST_SUITE_P(DlcByOmission, HrtDeliveryProperty,
                         ::testing::Combine(::testing::Values(0, 1, 4, 8),
                                            ::testing::Values(0, 1, 2, 3)));

// ----------------------------------------------------------- determinism

TEST(Determinism, IdenticalScenarioProducesIdenticalBusTrace) {
  const auto run_once = [] {
    TaskPool tasks;
    std::vector<std::tuple<std::int64_t, std::uint32_t, bool>> trace;
    Scenario::Config cfg;
    cfg.calendar.round_length = 10_ms;
    Scenario scn{cfg};
    Node& a = scn.add_node(1, {Duration::microseconds(10), 50'000, 1_us});
    Node& b = scn.add_node(2, {Duration::microseconds(-10), -50'000, 1_us});
    scn.add_node(3);
    (void)scn.enable_clock_sync(3, 500_us);
    scn.set_fault_model(std::make_unique<RandomOmissionFaults>(0.05, 777));
    scn.bus().add_observer([&](const CanBus::FrameEvent& ev) {
      trace.emplace_back(ev.start.ns(), ev.frame.id, ev.success);
    });

    Srtec pub{a.middleware()};
    (void)pub.announce(subject_of("det/x"), {}, nullptr);
    Srtec sub{b.middleware()};
    (void)sub.subscribe(subject_of("det/x"), {}, nullptr, nullptr);
    auto* loop = tasks.make();
    *loop = [&scn, &pub, loop] {
      Event e;
      e.content = {1, 2};
      (void)pub.publish(std::move(e));
      scn.sim().schedule_after(700_us, [loop] { (*loop)(); });
    };
    scn.sim().schedule_after(0_ns, [loop] { (*loop)(); });
    scn.run_for(200_ms);
    return trace;
  };

  const auto t1 = run_once();
  const auto t2 = run_once();
  ASSERT_EQ(t1.size(), t2.size());
  EXPECT_GT(t1.size(), 100u);
  for (std::size_t i = 0; i < t1.size(); ++i)
    EXPECT_EQ(t1[i], t2[i]) << "divergence at frame " << i;
}

// ------------------------------------------------- fragmentation roundtrip

TEST(FragmentationProperty, RandomSizesAndContentsRoundTrip) {
  Rng rng{31415};
  Scenario scn;
  Node::ClockParams perfect;
  perfect.granularity = 1_ns;
  Node& a = scn.add_node(1, perfect);
  Node& b = scn.add_node(2, perfect);
  const AttributeList frag{attr::Fragmentation{true}};
  Nrtec pub{a.middleware()};
  Nrtec sub{b.middleware()};
  ASSERT_TRUE(pub.announce(subject_of("prop/bulk"), frag, nullptr).has_value());
  std::vector<std::vector<std::uint8_t>> received;
  ASSERT_TRUE(sub.subscribe(subject_of("prop/bulk"),
                            AttributeList{attr::Fragmentation{true},
                                          attr::QueueCapacity{64}},
                            [&] {
                              while (auto e = sub.getEvent())
                                received.push_back(e->content);
                            },
                            nullptr)
                  .has_value());

  std::vector<std::vector<std::uint8_t>> sent;
  for (int i = 0; i < 30; ++i) {
    std::vector<std::uint8_t> payload(
        static_cast<std::size_t>(rng.uniform_int(1, 600)));
    for (auto& byte : payload)
      byte = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    sent.push_back(payload);
    Event e;
    e.content = std::move(payload);
    ASSERT_TRUE(pub.publish(std::move(e)).has_value());
  }
  scn.run_for(Duration::seconds(3));

  ASSERT_EQ(received.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i)
    EXPECT_EQ(received[i], sent[i]) << "message " << i;
}

}  // namespace
}  // namespace rtec
