#include <gtest/gtest.h>

#include "core/content.hpp"
#include "core/scenario.hpp"
#include "core/srtec.hpp"

namespace rtec {
namespace {

using literals::operator""_ns;
using literals::operator""_ms;

TEST(Content, ScalarRoundTrip) {
  Event e;
  ContentWriter{e}.u8(0x12).u16(0x3456).u32(0x789abcde).i8(-5);
  EXPECT_EQ(e.content.size(), 8u);  // fits an RT frame exactly

  ContentReader r{e};
  EXPECT_EQ(r.u8(), 0x12);
  EXPECT_EQ(r.u16(), 0x3456);
  EXPECT_EQ(r.u32(), 0x789abcdeu);
  EXPECT_EQ(r.i8(), -5);
  EXPECT_TRUE(r.exhausted());
}

TEST(Content, SignedAndWideTypes) {
  Event e;
  ContentWriter{e}.i16(-1234).i32(-7'654'321).i64(-9'000'000'000LL).u64(
      0xffffffffffffffffULL);
  ContentReader r{e};
  EXPECT_EQ(r.i16(), -1234);
  EXPECT_EQ(r.i32(), -7'654'321);
  EXPECT_EQ(r.i64(), -9'000'000'000LL);
  EXPECT_EQ(r.u64(), 0xffffffffffffffffULL);
  EXPECT_TRUE(r.exhausted());
}

TEST(Content, FloatRoundTrip) {
  Event e;
  ContentWriter{e}.f32(3.14159f).f32(-0.0f);
  ContentReader r{e};
  EXPECT_FLOAT_EQ(*r.f32(), 3.14159f);
  EXPECT_FLOAT_EQ(*r.f32(), -0.0f);
}

TEST(Content, ShortPayloadReadsReturnNullopt) {
  Event e;
  ContentWriter{e}.u16(7);
  ContentReader r{e};
  EXPECT_EQ(r.u32(), std::nullopt);  // only 2 bytes available
  EXPECT_EQ(r.u16(), 7);             // position unchanged by failed read
  EXPECT_EQ(r.u8(), std::nullopt);
  EXPECT_TRUE(r.exhausted());
}

TEST(Content, RawBytesAppend) {
  Event e;
  ContentWriter{e}.u8(1).bytes("abc");
  EXPECT_EQ(e.content.size(), 4u);
  ContentReader r{e};
  EXPECT_EQ(r.u8(), 1);
  EXPECT_EQ(r.u8(), 'a');
  EXPECT_EQ(r.remaining(), 2u);
}

TEST(Content, SurvivesTheWire) {
  // Write typed fields, publish over the simulated bus, read them back.
  Scenario scn;
  Node::ClockParams perfect;
  perfect.granularity = 1_ns;
  Node& a = scn.add_node(1, perfect);
  Node& b = scn.add_node(2, perfect);
  Srtec pub{a.middleware()};
  Srtec sub{b.middleware()};
  ASSERT_TRUE(pub.announce(subject_of("content/x"), {}, nullptr).has_value());
  std::optional<Event> got;
  ASSERT_TRUE(sub.subscribe(subject_of("content/x"), {},
                            [&] { got = sub.getEvent(); }, nullptr)
                  .has_value());

  Event e;
  ContentWriter{e}.u16(2150).i16(-40).f32(1.5f);
  ASSERT_TRUE(pub.publish(std::move(e)).has_value());
  scn.run_for(2_ms);

  ASSERT_TRUE(got.has_value());
  ContentReader r{*got};
  EXPECT_EQ(r.u16(), 2150);
  EXPECT_EQ(r.i16(), -40);
  EXPECT_FLOAT_EQ(*r.f32(), 1.5f);
  EXPECT_TRUE(r.exhausted());
}

}  // namespace
}  // namespace rtec
