#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/hrtec.hpp"
#include "core/nrtec.hpp"
#include "core/scenario.hpp"
#include "time/periodic.hpp"
#include "core/srtec.hpp"
#include "trace/metrics.hpp"
#include "util/task_pool.hpp"

namespace rtec {
namespace {

using literals::operator""_ns;
using literals::operator""_us;
using literals::operator""_ms;

/// Full-stack scenario: synchronized drifting clocks, one HRT sensor
/// stream, SRT command traffic, NRT bulk transfer and random omission
/// faults — all at once. This is the paper's whole system in one test.
TEST(Integration, MixedTrafficUnderFaultsKeepsHrtGuarantees) {
  TaskPool tasks;
  Scenario::Config cfg;
  cfg.calendar.round_length = 10_ms;
  cfg.calendar.gap = 40_us;
  Scenario scn{cfg};

  // Clocks: up to ±20 us initial offset, up to ±80 ppm drift, 1 us tick.
  auto clock_params = [](std::int64_t offset_us, std::int64_t drift_ppb) {
    Node::ClockParams p;
    p.initial_offset = Duration::microseconds(offset_us);
    p.drift_ppb = drift_ppb;
    return p;
  };
  Node& sensor = scn.add_node(1, clock_params(15, 80'000));
  Node& controller = scn.add_node(2, clock_params(-20, -60'000));
  Node& logger = scn.add_node(3, clock_params(5, 30'000));
  Node& master = scn.add_node(4, clock_params(0, 0));

  // Sync slot around LST 500 us; app HRT slot at LST 2 ms with k=2.
  ASSERT_TRUE(scn.enable_clock_sync(master.id(), 500_us).has_value());
  const Etag hrt_etag = *scn.binding().bind(subject_of("plant/pressure"));
  SlotSpec slot;
  slot.lst_offset = 2_ms;
  slot.dlc = 8;
  slot.fault.omission_degree = 2;
  slot.etag = hrt_etag;
  slot.publisher = sensor.id();
  ASSERT_TRUE(scn.calendar().reserve(slot).has_value());

  // Random omission faults at 1%.
  scn.set_fault_model(std::make_unique<RandomOmissionFaults>(0.01, 1234));

  // Warm up the clock sync for two rounds before real-time operation.
  scn.run_for(20_ms);
  EXPECT_LE(scn.clock_precision().ns(), (15_us).ns());

  // HRT: pressure sensor -> controller, every round.
  Hrtec hrt_pub{sensor.middleware()};
  Hrtec hrt_sub{controller.middleware()};
  int hrt_pub_exc = 0;
  ASSERT_TRUE(hrt_pub.announce(subject_of("plant/pressure"),
                               AttributeList{attr::Periodic{10_ms}},
                               [&](const ExceptionInfo&) { ++hrt_pub_exc; })
                  .has_value());
  int hrt_delivered = 0;
  int hrt_missing = 0;
  std::vector<std::int64_t> delivery_phases;
  ASSERT_TRUE(hrt_sub.subscribe(subject_of("plant/pressure"),
                                AttributeList{attr::QueueCapacity{64}},
                                [&] {
                                  ++hrt_delivered;
                                  delivery_phases.push_back(
                                      controller.clock().now().ns() %
                                      (10_ms).ns());
                                },
                                [&](const ExceptionInfo&) { ++hrt_missing; })
                  .has_value());

  // Publish before every slot's ready time, driven by the sensor's clock.
  auto* publish_loop = tasks.make();
  *publish_loop = [&, publish_loop] {
    Event e;
    e.content = {1, 2, 3, 4};
    (void)hrt_pub.publish(std::move(e));
    sensor.clock().schedule_at_local(sensor.clock().now() + 10_ms,
                                     [publish_loop] { (*publish_loop)(); });
  };
  // Start immediately: at local ~20 ms, 1.84 ms before the first armed
  // instance's ready time, then every 10 ms — always one event staged per
  // round.
  (*publish_loop)();

  // SRT: controller sends commands with 5 ms deadlines every 2 ms.
  Srtec srt_pub{controller.middleware()};
  Srtec srt_sub{sensor.middleware()};
  int srt_deadline_missed = 0;
  ASSERT_TRUE(srt_pub.announce(subject_of("plant/cmd"),
                               AttributeList{attr::Deadline{5_ms}},
                               [&](const ExceptionInfo& e) {
                                 if (e.error == ChannelError::kDeadlineMissed)
                                   ++srt_deadline_missed;
                               })
                  .has_value());
  int srt_delivered = 0;
  ASSERT_TRUE(srt_sub.subscribe(subject_of("plant/cmd"),
                                AttributeList{attr::QueueCapacity{64}},
                                [&] {
                                  ++srt_delivered;
                                  (void)srt_sub.getEvent();
                                },
                                nullptr)
                  .has_value());
  auto* srt_loop = tasks.make();
  *srt_loop = [&, srt_loop] {
    Event e;
    e.content = {9};
    (void)srt_pub.publish(std::move(e));
    scn.sim().schedule_after(2_ms, [srt_loop] { (*srt_loop)(); });
  };
  scn.sim().schedule_after(0_ns, [srt_loop] { (*srt_loop)(); });

  // NRT: logger uploads a 4 KiB blob.
  Nrtec nrt_pub{logger.middleware()};
  Nrtec nrt_sub{controller.middleware()};
  const AttributeList frag{attr::Fragmentation{true}};
  ASSERT_TRUE(nrt_pub.announce(subject_of("logger/blob"), frag, nullptr)
                  .has_value());
  int blobs = 0;
  ASSERT_TRUE(nrt_sub.subscribe(subject_of("logger/blob"), frag,
                                [&] {
                                  ++blobs;
                                  (void)nrt_sub.getEvent();
                                },
                                nullptr)
                  .has_value());
  {
    Event blob;
    blob.content.assign(4096, 0xCD);
    ASSERT_TRUE(nrt_pub.publish(std::move(blob)).has_value());
  }

  ClassUtilization util{scn.bus()};
  scn.run_for(Duration::milliseconds(500));  // 50 rounds

  // HRT guarantees hold under load + 1% faults within the fault assumption.
  EXPECT_GE(hrt_delivered, 49);
  EXPECT_EQ(hrt_missing, 0);
  EXPECT_EQ(hrt_pub_exc, 0);
  // Delivery phase within the round is constant (zero middleware jitter) up
  // to the subscriber's own clock corrections (< a few us).
  ASSERT_GE(delivery_phases.size(), 2u);
  for (std::size_t i = 1; i < delivery_phases.size(); ++i)
    EXPECT_NEAR(static_cast<double>(delivery_phases[i]),
                static_cast<double>(delivery_phases[0]), 10'000.0);

  // SRT is healthy at this load.
  EXPECT_GE(srt_delivered, 240);
  EXPECT_EQ(srt_deadline_missed, 0);

  // The bulk transfer completed without disturbing anything above it.
  EXPECT_EQ(blobs, 1);

  // All three classes actually used the bus.
  EXPECT_GT(util.frames(TrafficClass::kHrt), 0u);
  EXPECT_GT(util.frames(TrafficClass::kSrt), 0u);
  EXPECT_GT(util.frames(TrafficClass::kNrt), 0u);
}

/// The sync service's reserved slot keeps it from colliding with HRT
/// application slots even at priority 0.
TEST(Integration, SyncTrafficStaysInsideItsReservedWindow) {
  Scenario::Config cfg;
  cfg.calendar.round_length = 10_ms;
  Scenario scn{cfg};
  Node& master = scn.add_node(1);
  scn.add_node(2, {Duration::microseconds(10), 40'000, 1_us});
  ASSERT_TRUE(scn.enable_clock_sync(master.id(), 500_us).has_value());

  const auto timing = scn.calendar().timing(0);
  std::vector<TimePoint> sync_frames;
  scn.bus().add_observer([&](const CanBus::FrameEvent& ev) {
    const auto f = decode_can_id(ev.frame.id);
    if (f.etag == kSyncRefEtag || f.etag == kSyncFollowEtag)
      sync_frames.push_back(ev.start);
  });
  scn.run_for(Duration::milliseconds(100));

  ASSERT_GE(sync_frames.size(), 20u);  // 2 frames x 10 rounds
  for (TimePoint t : sync_frames) {
    const std::int64_t phase = t.ns() % (10_ms).ns();
    EXPECT_GE(phase, timing.ready_offset.ns() - (5_us).ns());
    EXPECT_LE(phase, timing.deadline_offset.ns());
  }
}

/// Node crash and restart: the middleware surfaces the outage, the rest of
/// the system keeps its guarantees.
TEST(Integration, NodeCrashIsolatedFromOtherChannels) {
  TaskPool tasks;
  Scenario::Config cfg;
  cfg.calendar.round_length = 10_ms;
  Scenario scn{cfg};
  Node::ClockParams perfect;
  perfect.granularity = 1_ns;
  Node& a = scn.add_node(1, perfect);
  Node& b = scn.add_node(2, perfect);
  Node& c = scn.add_node(3, perfect);

  const Etag etag_a = *scn.binding().bind(subject_of("a/data"));
  SlotSpec slot;
  slot.lst_offset = 2_ms;
  slot.etag = etag_a;
  slot.publisher = a.id();
  ASSERT_TRUE(scn.calendar().reserve(slot).has_value());

  Hrtec pub{a.middleware()};
  Hrtec sub{c.middleware()};
  ASSERT_TRUE(pub.announce(subject_of("a/data"), {}, nullptr).has_value());
  int delivered = 0;
  int missing = 0;
  ASSERT_TRUE(sub.subscribe(subject_of("a/data"),
                            AttributeList{attr::QueueCapacity{64}},
                            [&] { ++delivered; },
                            [&](const ExceptionInfo&) { ++missing; })
                  .has_value());

  Srtec srt_pub{b.middleware()};
  Srtec srt_sub{c.middleware()};
  ASSERT_TRUE(srt_pub.announce(subject_of("b/data"), {}, nullptr).has_value());
  int srt_delivered = 0;
  ASSERT_TRUE(srt_sub.subscribe(subject_of("b/data"),
                                AttributeList{attr::QueueCapacity{64}},
                                [&] {
                                  ++srt_delivered;
                                  (void)srt_sub.getEvent();
                                },
                                nullptr)
                  .has_value());

  auto* hrt_loop = tasks.make();
  *hrt_loop = [&, hrt_loop] {
    Event e;
    e.content = {1};
    (void)pub.publish(std::move(e));
    scn.sim().schedule_after(10_ms, [hrt_loop] { (*hrt_loop)(); });
  };
  scn.sim().schedule_after(0_ns, [hrt_loop] { (*hrt_loop)(); });
  auto* srt_loop = tasks.make();
  *srt_loop = [&, srt_loop] {
    Event e;
    e.content = {2};
    (void)srt_pub.publish(std::move(e));
    scn.sim().schedule_after(5_ms, [srt_loop] { (*srt_loop)(); });
  };
  scn.sim().schedule_after(0_ns, [srt_loop] { (*srt_loop)(); });

  // Crash node a (the HRT publisher) for rounds 5..9.
  scn.sim().schedule_at(TimePoint::origin() + 50_ms,
                        [&] { a.controller().set_online(false); });
  scn.sim().schedule_at(TimePoint::origin() + 100_ms,
                        [&] { a.controller().set_online(true); });

  scn.run_for(Duration::milliseconds(200));

  // The subscriber detected every missing instance during the outage...
  EXPECT_GE(missing, 4);
  EXPECT_GE(delivered, 13);
  // ...while node b's SRT channel ran undisturbed throughout.
  EXPECT_GE(srt_delivered, 39);
}


/// Documented limitation (DESIGN.md §5): like the paper's protocol, the
/// scheme relies on every middleware honouring the priority bands. A
/// faulty "babbling idiot" node that spams the exclusive priority 0
/// outside any reservation DOES break HRT guarantees — protection against
/// that failure mode needs bus guardians (TTP-style), which neither the
/// paper nor this implementation provides. This test pins the limitation
/// so it stays documented rather than silently assumed away.
TEST(Integration, BabblingIdiotBreaksHrtGuaranteesAsDocumented) {
  TaskPool tasks;
  Scenario::Config cfg;
  cfg.calendar.round_length = 10_ms;
  Scenario scn{cfg};
  Node::ClockParams perfect;
  perfect.granularity = 1_ns;
  Node& a = scn.add_node(1, perfect);
  Node& c = scn.add_node(3, perfect);
  Node& babbler = scn.add_node(9, perfect);

  const Etag etag = *scn.binding().bind(subject_of("bab/data"));
  SlotSpec slot;
  slot.lst_offset = 2_ms;
  slot.etag = etag;
  slot.publisher = a.id();
  ASSERT_TRUE(scn.calendar().reserve(slot).has_value());

  Hrtec pub{a.middleware()};
  Hrtec sub{c.middleware()};
  ASSERT_TRUE(pub.announce(subject_of("bab/data"), {}, nullptr).has_value());
  int delivered = 0;
  int missing = 0;
  ASSERT_TRUE(sub.subscribe(subject_of("bab/data"),
                            AttributeList{attr::QueueCapacity{16}},
                            [&] {
                              ++delivered;
                              (void)sub.getEvent();
                            },
                            [&](const ExceptionInfo&) { ++missing; })
                  .has_value());
  auto* loop = tasks.make();
  *loop = [&, loop] {
    Event e;
    e.content = {1};
    (void)pub.publish(std::move(e));
    scn.sim().schedule_after(10_ms, [loop] { (*loop)(); });
  };
  scn.sim().schedule_after(0_ns, [loop] { (*loop)(); });

  // Phase 1 (50-100 ms): the babbler floods priority 0 from a HIGHER
  // TxNode (9 > 1). Every arbitration still goes to the legitimate owner
  // (lower identifier); each babble frame is at most the ΔT_wait blocking
  // the slot already budgets — guarantees HOLD. Phase 2 (100-150 ms): the
  // babbler uses the most dominant identifier in the system (TxNode 0,
  // etag 0); nothing can out-arbitrate it and the reservation breaks.
  auto* babble = tasks.make();
  *babble = [&, babble] {
    const TimePoint now = scn.sim().now();
    if (now >= TimePoint::origin() + 50_ms) {
      CanFrame f;
      const bool dominant = now >= TimePoint::origin() + 100_ms;
      f.id = encode_can_id({kHrtPriority,
                            static_cast<NodeId>(dominant ? 0 : 9), 0});
      f.dlc = 8;
      while (babbler.controller().has_free_mailbox())
        (void)babbler.controller().submit(f, TxMode::kAutoRetransmit);
    }
    scn.sim().schedule_after(50_us, [babble] { (*babble)(); });
  };
  scn.sim().schedule_after(0_ns, [babble] { (*babble)(); });

  scn.run_for(150_ms);
  EXPECT_EQ(delivered + missing, 15);
  // Rounds 0..9 (incl. the higher-TxNode babbling phase): all delivered.
  EXPECT_GE(delivered, 10);
  // Rounds 10..14 (dominant-identifier babbler): guarantees break.
  EXPECT_GE(missing, 3) << "a dominant-identifier babbling idiot is expected "
                           "to break HRT — if this stops failing, the "
                           "documentation claim in DESIGN.md must be updated";
}

}  // namespace
}  // namespace rtec
