#include <gtest/gtest.h>

#include "core/scenario.hpp"
#include "core/srtec.hpp"

/// The dynamic-binding payoff (§2.1): once a node subscribes, the CAN
/// controller's acceptance filters do the subject routing in hardware and
/// unrelated traffic never reaches the node's middleware.

namespace rtec {
namespace {

using literals::operator""_ns;
using literals::operator""_us;
using literals::operator""_ms;

Node::ClockParams perfect() {
  Node::ClockParams p;
  p.granularity = 1_ns;
  return p;
}

TEST(HwFiltering, UnsubscribedTrafficNeverReachesTheMiddleware) {
  Scenario scn;
  Node& chatty = scn.add_node(1, perfect());
  Node& listener = scn.add_node(2, perfect());

  Srtec wanted_pub{chatty.middleware()};
  Srtec unwanted_pub{chatty.middleware()};
  ASSERT_TRUE(wanted_pub.announce(subject_of("hw/wanted"), {}, nullptr)
                  .has_value());
  ASSERT_TRUE(unwanted_pub.announce(subject_of("hw/unwanted"), {}, nullptr)
                  .has_value());

  Srtec sub{listener.middleware()};
  int delivered = 0;
  ASSERT_TRUE(sub.subscribe(subject_of("hw/wanted"),
                            AttributeList{attr::QueueCapacity{64}},
                            [&] {
                              ++delivered;
                              (void)sub.getEvent();
                            },
                            nullptr)
                  .has_value());

  for (int i = 0; i < 20; ++i) {
    Event a;
    a.content = {1};
    ASSERT_TRUE(wanted_pub.publish(std::move(a)).has_value());
    Event b;
    b.content = {2};
    ASSERT_TRUE(unwanted_pub.publish(std::move(b)).has_value());
  }
  scn.run_for(50_ms);

  EXPECT_EQ(delivered, 20);
  // The controller filtered the 20 unwanted frames in "hardware": the
  // middleware saw only the subscribed channel's traffic.
  EXPECT_EQ(listener.middleware().rx_frames_seen(), 20u);
}

TEST(HwFiltering, PromiscuousUntilFirstSubscription) {
  Scenario scn;
  Node& chatty = scn.add_node(1, perfect());
  Node& idle = scn.add_node(2, perfect());

  Srtec pub{chatty.middleware()};
  ASSERT_TRUE(pub.announce(subject_of("hw/x"), {}, nullptr).has_value());
  Event e;
  e.content = {1};
  ASSERT_TRUE(pub.publish(std::move(e)).has_value());
  scn.run_for(5_ms);
  // Without any subscription the controller is promiscuous (default CAN
  // behaviour): the frame reached the middleware and was dropped there.
  EXPECT_EQ(idle.middleware().rx_frames_seen(), 1u);
}

TEST(HwFiltering, InfrastructureChannelsSurviveNarrowing) {
  Scenario::Config cfg;
  cfg.calendar.round_length = 10_ms;
  Scenario scn{cfg};
  Node& master = scn.add_node(1);
  Node& slave = scn.add_node(2, {Duration::microseconds(500), 50'000, 1_us});
  Node& other = scn.add_node(3, perfect());
  ASSERT_TRUE(scn.enable_clock_sync(master.id(), 500_us).has_value());

  // The slave narrows its filters by subscribing to an app channel...
  Srtec pub{other.middleware()};
  ASSERT_TRUE(pub.announce(subject_of("hw/app"), {}, nullptr).has_value());
  Srtec sub{slave.middleware()};
  ASSERT_TRUE(sub.subscribe(subject_of("hw/app"), {}, nullptr, nullptr)
                  .has_value());

  // ...and still receives sync rounds: its 500 us initial offset is
  // corrected within the first rounds.
  scn.run_for(35_ms);
  ASSERT_NE(slave.sync_slave(), nullptr);
  EXPECT_GE(slave.sync_slave()->rounds_applied(), 2u);
  EXPECT_LE(scn.clock_precision().ns(), (10_us).ns());
}

TEST(HwFiltering, MultipleSubscriptionsAccumulateFilters) {
  Scenario scn;
  Node& chatty = scn.add_node(1, perfect());
  Node& listener = scn.add_node(2, perfect());
  Srtec pub_a{chatty.middleware()};
  Srtec pub_b{chatty.middleware()};
  Srtec pub_c{chatty.middleware()};
  ASSERT_TRUE(pub_a.announce(subject_of("hw/a"), {}, nullptr).has_value());
  ASSERT_TRUE(pub_b.announce(subject_of("hw/b"), {}, nullptr).has_value());
  ASSERT_TRUE(pub_c.announce(subject_of("hw/c"), {}, nullptr).has_value());

  Srtec sub_a{listener.middleware()};
  Srtec sub_b{listener.middleware()};
  int got_a = 0;
  int got_b = 0;
  ASSERT_TRUE(sub_a.subscribe(subject_of("hw/a"), {}, [&] { ++got_a; }, nullptr)
                  .has_value());
  ASSERT_TRUE(sub_b.subscribe(subject_of("hw/b"), {}, [&] { ++got_b; }, nullptr)
                  .has_value());

  for (Srtec* p : {&pub_a, &pub_b, &pub_c}) {
    Event e;
    e.content = {1};
    ASSERT_TRUE(p->publish(std::move(e)).has_value());
  }
  scn.run_for(5_ms);
  EXPECT_EQ(got_a, 1);
  EXPECT_EQ(got_b, 1);
  EXPECT_EQ(listener.middleware().rx_frames_seen(), 2u);  // c filtered out
}

}  // namespace
}  // namespace rtec
