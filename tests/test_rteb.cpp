#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "trace/binary.hpp"
#include "trace/candump.hpp"

// RTEB binary trace format (trace/binary.hpp): round trips, the exact
// wire bytes (endianness pin), structural-damage diagnostics, candump
// interop, and the >= 10x compression claim on periodic traffic.

namespace rtec {
namespace trace {
namespace {

CanBus::FrameEvent frame_event(std::uint32_t id, std::int64_t end_ns,
                               std::uint8_t dlc, NodeId sender,
                               bool success = true) {
  CanBus::FrameEvent ev;
  ev.frame.id = id;
  ev.frame.dlc = dlc;
  for (std::uint8_t i = 0; i < dlc; ++i)
    ev.frame.data[i] = static_cast<std::uint8_t>(0xA0u + i);
  ev.sender = sender;
  ev.end = TimePoint::from_ns(end_ns);
  ev.start = TimePoint::from_ns(end_ns - 100'000);
  ev.success = success;
  ev.wire_bits = 111;
  ev.attempt = 1;
  return ev;
}

TEST(Rteb, FrameRoundTripPreservesEveryField) {
  RtebWriter w{7};

  auto a = frame_event(0x123, 1'000'000, 4, NodeId{5});
  a.frame.extended = false;
  auto b = frame_event(0x1F334455, 2'000'000, 8, NodeId{9});
  b.frame.extended = true;
  auto err = frame_event(0x123, 3'000'000, 4, NodeId{5}, /*success=*/false);
  err.wire_bits = 45;
  err.attempt = 2;
  auto coll = frame_event(0x0A5, 4'000'000, 0, NodeId{3});
  coll.collision = true;
  auto rtr = frame_event(0x100, 5'000'000, 0, NodeId{2});
  rtr.frame.rtr = true;

  for (const auto& ev : {a, b, err, coll, rtr}) w.add_frame(ev);

  auto reader = RtebReader::open(w.bytes());
  ASSERT_TRUE(reader.has_value()) << reader.error();
  EXPECT_EQ(reader->version(), kRtebVersion);
  EXPECT_EQ(reader->network(), 7u);
  const auto records = reader->read_all();
  ASSERT_TRUE(records.has_value()) << records.error();
  ASSERT_EQ(records->size(), 5u);

  const CanBus::FrameEvent* expected[] = {&a, &b, &err, &coll, &rtr};
  for (std::size_t i = 0; i < 5; ++i) {
    SCOPED_TRACE(i);
    const RtebFrame& got = (*records)[i].frame;
    const CanBus::FrameEvent& want = *expected[i];
    EXPECT_EQ((*records)[i].kind, RtebKind::kFrame);
    EXPECT_EQ(got.at.ns(), want.end.ns());
    EXPECT_EQ(got.frame.id, want.frame.id);
    EXPECT_EQ(got.frame.extended, want.frame.extended);
    EXPECT_EQ(got.frame.rtr, want.frame.rtr);
    EXPECT_EQ(got.frame.dlc, want.frame.dlc);
    for (std::uint8_t d = 0; d < want.frame.dlc; ++d)
      EXPECT_EQ(got.frame.data[d], want.frame.data[d]);
    EXPECT_EQ(got.sender, want.sender);
    EXPECT_EQ(got.success, want.success);
    EXPECT_EQ(got.collision, want.collision);
    EXPECT_EQ(got.wire_bits, want.wire_bits);
    EXPECT_EQ(got.attempt, want.attempt);
  }
}

TEST(Rteb, GoldenBytesPinLittleEndianEncoding) {
  // The byte stream is computed with shifts only, so these exact bytes
  // are the output on any host endianness. Header: magic, u16 version,
  // u16 network, u32 zero — all little-endian.
  RtebWriter w{0x0203};

  CanBus::FrameEvent ev;
  ev.frame.id = 0x123;
  ev.frame.extended = false;  // base frame: format byte 0x00
  ev.frame.dlc = 2;
  ev.frame.data[0] = 0xAB;
  ev.frame.data[1] = 0xCD;
  ev.sender = NodeId{5};
  ev.success = true;
  ev.wire_bits = 100;
  ev.attempt = 1;
  ev.end = TimePoint::from_ns(1000);
  w.add_frame(ev);  // new id: full id varint, meta + payload blocks
  ev.end = TimePoint::from_ns(2000);
  w.add_frame(ev);  // ref 0, residual 1000 (prediction had period 0)
  ev.end = TimePoint::from_ns(3000);
  w.add_frame(ev);  // steady periodic: the 4-byte record

  const std::uint8_t expected[] = {
      // header
      0x52, 0x54, 0x45, 0x42,  // "RTEB"
      0x01, 0x00,              // version 1 LE
      0x03, 0x02,              // network 0x0203 LE
      0x00, 0x00, 0x00, 0x00,  // reserved
      // record 0: len, kind=frame flags=success|new-id|meta|payload (0x3D)
      0x0C, 0x3D,
      0xA3, 0x02,              // id 0x123 varint
      0xD0, 0x0F,              // zigzag(1000 - 0)
      0x05, 0x00, 0x02,        // sender, format, dlc
      0x64, 0x01,              // wire_bits 100, attempt 1
      0xAB, 0xCD,              // payload
      // record 1: ref 0, residual zigzag(1000)
      0x04, 0x21, 0x00, 0xD0, 0x0F,
      // record 2: steady state — 4 bytes total
      0x03, 0x21, 0x00, 0x00,
  };
  ASSERT_EQ(w.bytes().size(), sizeof expected);
  for (std::size_t i = 0; i < sizeof expected; ++i)
    EXPECT_EQ(static_cast<std::uint8_t>(w.bytes()[i]), expected[i])
        << "byte " << i;
}

TEST(Rteb, AlarmAndHandoffRoundTrip) {
  RtebWriter w{0};
  w.add_frame(frame_event(0x123, 1'000'000, 2, NodeId{1}));
  w.add_alarm("iat-gate", TimePoint::from_ns(1'500'000), 0x123, 3.75, false);
  w.add_alarm("unknown-id", TimePoint::from_ns(1'600'000), 0x7FF, -0.5, true);
  w.add_alarm("iat-gate", TimePoint::from_ns(1'700'000), 0x124, 4.25, false);
  // Channel 9: constant latency after the first record; seq runs 0,1 then
  // jumps to 5 (residual path).
  w.add_handoff(TimePoint::from_ns(2'000'000), TimePoint::from_ns(2'250'000),
                9, 0);
  w.add_handoff(TimePoint::from_ns(2'100'000), TimePoint::from_ns(2'350'000),
                9, 1);
  w.add_handoff(TimePoint::from_ns(2'200'000), TimePoint::from_ns(2'450'000),
                9, 5);
  // Channel 2: independent latency and seq state.
  w.add_handoff(TimePoint::from_ns(2'300'000), TimePoint::from_ns(2'800'000),
                2, 0);

  auto reader = RtebReader::open(w.bytes());
  ASSERT_TRUE(reader.has_value()) << reader.error();
  const auto records = reader->read_all();
  ASSERT_TRUE(records.has_value()) << records.error();
  ASSERT_EQ(records->size(), 8u);  // detector defs are not surfaced

  EXPECT_EQ((*records)[0].kind, RtebKind::kFrame);

  const RtebAlarm& a1 = (*records)[1].alarm;
  EXPECT_EQ(a1.detector, "iat-gate");
  EXPECT_EQ(a1.at.ns(), 1'500'000);
  EXPECT_EQ(a1.id, 0x123u);
  EXPECT_EQ(a1.score, 3.75);
  EXPECT_FALSE(a1.unknown_id);

  const RtebAlarm& a2 = (*records)[2].alarm;
  EXPECT_EQ(a2.detector, "unknown-id");
  EXPECT_EQ(a2.score, -0.5);
  EXPECT_TRUE(a2.unknown_id);

  const RtebAlarm& a3 = (*records)[3].alarm;
  EXPECT_EQ(a3.detector, "iat-gate");  // interned once, referenced again
  EXPECT_EQ(a3.at.ns(), 1'700'000);

  const std::uint64_t seqs[] = {0, 1, 5, 0};
  const std::uint32_t chans[] = {9, 9, 9, 2};
  const std::int64_t sends[] = {2'000'000, 2'100'000, 2'200'000, 2'300'000};
  const std::int64_t releases[] = {2'250'000, 2'350'000, 2'450'000, 2'800'000};
  for (std::size_t i = 0; i < 4; ++i) {
    SCOPED_TRACE(i);
    const RtebHandoff& h = (*records)[4 + i].handoff;
    EXPECT_EQ((*records)[4 + i].kind, RtebKind::kHandoff);
    EXPECT_EQ(h.channel, chans[i]);
    EXPECT_EQ(h.seq, seqs[i]);
    EXPECT_EQ(h.send.ns(), sends[i]);
    EXPECT_EQ(h.release.ns(), releases[i]);
  }
}

TEST(Rteb, EmptyTraceIsJustTheHeader) {
  RtebWriter w{3};
  EXPECT_EQ(w.bytes().size(), kRtebHeaderSize);
  EXPECT_EQ(w.records(), 0u);
  auto reader = RtebReader::open(w.bytes());
  ASSERT_TRUE(reader.has_value()) << reader.error();
  EXPECT_EQ(reader->network(), 3u);
  const auto records = reader->read_all();
  ASSERT_TRUE(records.has_value()) << records.error();
  EXPECT_TRUE(records->empty());
}

TEST(Rteb, StructuralDamageIsAHardError) {
  const auto open_error = [](const std::string& data) {
    auto r = RtebReader::open(data);
    EXPECT_FALSE(r.has_value());
    return r.has_value() ? std::string{} : r.error();
  };
  EXPECT_NE(open_error("RT").find("truncated header"), std::string::npos);
  EXPECT_NE(open_error("XXXXXXXXXXXX").find("bad magic"), std::string::npos);

  RtebWriter w{0};
  w.add_frame(frame_event(0x123, 1000, 2, NodeId{1}));
  std::string good = w.bytes();

  std::string bad_version = good;
  bad_version[4] = 2;
  EXPECT_NE(open_error(bad_version).find("unsupported RTEB version 2"),
            std::string::npos);

  // Chop the last byte: the final record's length prefix now overruns.
  std::string truncated = good;
  truncated.pop_back();
  {
    auto reader = RtebReader::open(truncated);
    ASSERT_TRUE(reader.has_value());
    auto rec = reader->next();
    ASSERT_FALSE(rec.has_value());
    EXPECT_NE(rec.error().find("truncated record"), std::string::npos);
    EXPECT_NE(rec.error().find("at byte offset 12"), std::string::npos);
  }

  const auto damaged = [&good](std::initializer_list<std::uint8_t> tail) {
    std::string d{good.substr(0, kRtebHeaderSize)};
    for (const std::uint8_t b : tail) d.push_back(static_cast<char>(b));
    return d;
  };
  const auto first_error = [](const std::string& data) {
    auto reader = RtebReader::open(data);
    EXPECT_TRUE(reader.has_value());
    auto rec = reader->next();
    EXPECT_FALSE(rec.has_value());
    return rec.has_value() ? std::string{} : rec.error();
  };
  EXPECT_NE(first_error(damaged({0x00})).find("zero-length record"),
            std::string::npos);
  // kind 7 is unassigned
  EXPECT_NE(first_error(damaged({0x01, 0xE0})).find("unknown record kind"),
            std::string::npos);
  // frame referencing interned id 0 before any new-id record
  EXPECT_NE(first_error(damaged({0x03, 0x21, 0x00, 0x00}))
                .find("dangling frame identifier reference"),
            std::string::npos);
  // alarm referencing detector 0 with no kDetectorDef seen
  EXPECT_NE(first_error(damaged({0x0C, 0x40, 0x00, 0x00, 0x00, 0, 0, 0, 0, 0,
                                 0, 0, 0}))
                .find("dangling detector reference"),
            std::string::npos);
  // handoff whose channel has no latency yet and no latency flag
  EXPECT_NE(first_error(damaged({0x03, 0x60, 0x00, 0x00}))
                .find("handoff before its channel latency"),
            std::string::npos);
}

TEST(Rteb, CandumpRoundTripIsLossless) {
  // candump -> RTEB -> candump reproduces the text byte-for-byte
  // (canonical formatting, which CandumpRecorder::format emits).
  std::string text;
  CanFrame periodic;
  periodic.id = 0x1A334455;
  periodic.extended = true;
  periodic.dlc = 8;
  for (int i = 0; i < 8; ++i)
    periodic.data[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(0x10 + i);
  CanFrame base;
  base.id = 0x0A5;
  base.dlc = 4;
  base.data = {0xDE, 0xAD, 0xBE, 0xEF, 0, 0, 0, 0};
  CanFrame rtr;
  rtr.id = 0x7FF;
  rtr.rtr = true;
  for (int i = 0; i < 50; ++i) {
    const auto t = TimePoint::from_ns(1'000'000 + i * 2'000'000LL);
    text += CandumpRecorder::format(periodic, t, "can0") + "\n";
    if (i % 5 == 0)
      text += CandumpRecorder::format(base, t + Duration::microseconds(250),
                                      "can0") + "\n";
    if (i % 7 == 0)
      text += CandumpRecorder::format(rtr, t + Duration::microseconds(500),
                                      "can0") + "\n";
  }

  std::size_t skipped = 123;
  const std::string rteb = rteb_from_candump(text, 0, &skipped);
  EXPECT_EQ(skipped, 0u);
  const auto back = rteb_to_candump(rteb, "can0");
  ASSERT_TRUE(back.has_value()) << back.error();
  EXPECT_EQ(*back, text);
}

TEST(Rteb, TenTimesSmallerThanCandumpOnPeriodicTraffic) {
  // The compression claim of the format header: realistic periodic
  // traffic (two extended-id dlc-8 streams) costs >= 10x more as candump
  // text than as RTEB.
  std::string text;
  CanFrame f1, f2;
  f1.id = 0x1A000001;
  f1.extended = true;
  f1.dlc = 8;
  f2.id = 0x1A000002;
  f2.extended = true;
  f2.dlc = 8;
  for (int i = 0; i < 8; ++i) {
    f1.data[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
    f2.data[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(0x80 + i);
  }
  for (int i = 0; i < 1000; ++i) {
    const auto t = TimePoint::from_ns(1'000'000'000 + i * 1'000'000LL);
    text += CandumpRecorder::format(f1, t, "can0") + "\n";
    text += CandumpRecorder::format(f2, t + Duration::microseconds(200),
                                    "can0") + "\n";
  }
  const std::string rteb = rteb_from_candump(text, 0);
  EXPECT_GE(text.size(), 10 * rteb.size())
      << "text " << text.size() << " bytes vs rteb " << rteb.size();
}

TEST(Rteb, FileBackedWriterStreamsThroughBoundedBuffer) {
  const char* path = "test_rteb_tmp.rteb";
  std::uint64_t expect_bytes = 0;
  {
    RtebWriter w{path, 1};
    // > 64 KiB of records so at least one mid-run flush happens.
    for (int i = 0; i < 40'000; ++i) {
      auto ev = frame_event(0x100u + static_cast<std::uint32_t>(i % 3),
                            1'000'000LL * (i + 1), 8, NodeId{1});
      ev.frame.data[0] = static_cast<std::uint8_t>(i);  // payload churn
      w.add_frame(ev);
    }
    EXPECT_TRUE(w.finish());
    expect_bytes = w.bytes_written();
  }
  std::FILE* f = std::fopen(path, "rb");
  ASSERT_NE(f, nullptr);
  std::string data;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) data.append(buf, n);
  std::fclose(f);
  std::remove(path);
  EXPECT_EQ(data.size(), expect_bytes);

  auto reader = RtebReader::open(data);
  ASSERT_TRUE(reader.has_value()) << reader.error();
  const auto records = reader->read_all();
  ASSERT_TRUE(records.has_value()) << records.error();
  EXPECT_EQ(records->size(), 40'000u);
}

TEST(Rteb, RecorderCapturesCorruptedAttemptsCandumpCannot) {
  // A bus with a fault model: candump only sees deliveries, the RTEB
  // recorder sees every occupancy including the corrupted attempt.
  Simulator sim;
  CanBus bus{sim, BusConfig{}};
  CanController a{sim, 1};
  CanController b{sim, 2};
  bus.attach(a);
  bus.attach(b);
  ScriptedFaults faults;  // corrupt the first attempt of every frame
  faults.add_rule([](const FaultContext& ctx) { return ctx.attempt == 1; });
  bus.set_fault_model(&faults);
  RtebRecorder rec{bus, 0};
  CandumpRecorder text{bus, "can0"};

  for (int i = 0; i < 4; ++i) {
    sim.schedule_at(TimePoint::origin() + Duration::milliseconds(1 + i),
                    [&a, i] {
                      CanFrame f;
                      f.id = 0x100u + static_cast<std::uint32_t>(i);
                      f.dlc = 1;
                      f.data[0] = static_cast<std::uint8_t>(i);
                      (void)a.submit(f, TxMode::kAutoRetransmit);
                    });
  }
  sim.run();

  auto reader = RtebReader::open(rec.bytes());
  ASSERT_TRUE(reader.has_value()) << reader.error();
  const auto records = reader->read_all();
  ASSERT_TRUE(records.has_value()) << records.error();
  std::size_t ok = 0, errors = 0;
  for (const auto& r : *records) {
    ASSERT_EQ(r.kind, RtebKind::kFrame);
    if (r.frame.success) ++ok; else ++errors;
  }
  EXPECT_EQ(ok, text.lines().size());  // deliveries agree with candump
  EXPECT_GT(errors, 0u);               // corrupted attempts are extra
  EXPECT_EQ(records->size(), ok + errors);
}

}  // namespace
}  // namespace trace
}  // namespace rtec
