#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "canbus/bus.hpp"
#include "canbus/controller.hpp"
#include "canbus/fault.hpp"
#include "sim/simulator.hpp"

/// Controller/bus edge cases: base-format frames, RTR, error-state
/// transitions, auto-recovery, invalid submissions.

namespace rtec {
namespace {

using literals::operator""_us;
using literals::operator""_ms;

struct CanEdgeFixture : ::testing::Test {
  Simulator sim;
  CanBus bus{sim, BusConfig{}};
  CanController a{sim, 1};
  CanController b{sim, 2};

  void SetUp() override {
    bus.attach(a);
    bus.attach(b);
  }
};

TEST_F(CanEdgeFixture, BaseFormatFrameRoundTrip) {
  CanFrame f;
  f.extended = false;
  f.id = 0x123;
  f.dlc = 3;
  f.data = {9, 8, 7, 0, 0, 0, 0, 0};
  int rx = 0;
  b.add_rx_listener([&](const CanFrame& got, TimePoint) {
    EXPECT_FALSE(got.extended);
    EXPECT_EQ(got.id, 0x123u);
    EXPECT_EQ(got.dlc, 3);
    ++rx;
  });
  ASSERT_TRUE(a.submit(f, TxMode::kAutoRetransmit).has_value());
  sim.run();
  EXPECT_EQ(rx, 1);
}

TEST_F(CanEdgeFixture, RtrFrameCarriesNoData) {
  CanFrame f;
  f.extended = true;
  f.id = 0x500;
  f.rtr = true;
  f.dlc = 8;  // length of the requested reply; not transmitted as data
  int rx = 0;
  TimePoint end;
  bus.add_observer([&](const CanBus::FrameEvent& ev) { end = ev.end; });
  b.add_rx_listener([&](const CanFrame& got, TimePoint) {
    EXPECT_TRUE(got.rtr);
    ++rx;
  });
  ASSERT_TRUE(a.submit(f, TxMode::kAutoRetransmit).has_value());
  sim.run();
  EXPECT_EQ(rx, 1);
  // Wire time is that of a dataless frame (< 100 us), not an 8-byte one.
  EXPECT_LT(end.ns(), 100'000);
}

TEST_F(CanEdgeFixture, InvalidSubmissionsRejected) {
  CanFrame too_long;
  too_long.dlc = 9;
  EXPECT_EQ(a.submit(too_long, TxMode::kAutoRetransmit).error(),
            TxError::kInvalidFrame);

  CanFrame bad_ext_id;
  bad_ext_id.extended = true;
  bad_ext_id.id = kMaxExtendedId + 1;
  EXPECT_EQ(a.submit(bad_ext_id, TxMode::kAutoRetransmit).error(),
            TxError::kInvalidFrame);

  CanFrame bad_base_id;
  bad_base_id.extended = false;
  bad_base_id.id = kMaxBaseId + 1;
  EXPECT_EQ(a.submit(bad_base_id, TxMode::kAutoRetransmit).error(),
            TxError::kInvalidFrame);
}

TEST_F(CanEdgeFixture, AbortAndRewriteOnEmptyMailboxFail) {
  EXPECT_FALSE(a.abort(0));
  EXPECT_FALSE(a.rewrite_id(0, 0x100));
}

TEST_F(CanEdgeFixture, ReceiverErrorCounterRisesAndHeals) {
  ScriptedFaults faults;
  faults.add_rule([](const FaultContext& ctx) { return ctx.attempt <= 3; });
  bus.set_fault_model(&faults);
  CanFrame f;
  f.id = 0x100;
  f.dlc = 1;
  ASSERT_TRUE(a.submit(f, TxMode::kAutoRetransmit).has_value());
  sim.run();
  // b observed 3 corrupted attempts (+1 each) and 1 good frame (-1).
  EXPECT_EQ(b.rec(), 2);
  EXPECT_FALSE(b.error_passive());
  // Sender: 3 tx errors (+8) and one success (-1).
  EXPECT_EQ(a.tec(), 23);
}

TEST_F(CanEdgeFixture, ErrorPassiveFlagAtThreshold) {
  ScriptedFaults faults;
  faults.add_rule([](const FaultContext& ctx) { return ctx.attempt <= 16; });
  bus.set_fault_model(&faults);
  CanFrame f;
  f.id = 0x100;
  f.dlc = 1;
  ASSERT_TRUE(a.submit(f, TxMode::kAutoRetransmit).has_value());
  sim.run();
  // 16 errors x 8 = 128 -> error passive, then the success heals one.
  EXPECT_EQ(a.tec(), 127);
  // b: 16 receive errors +1 each, then one good frame.
  EXPECT_EQ(b.rec(), 15);
}

TEST_F(CanEdgeFixture, AutoRecoveryRejoinsAfterConfiguredDelay) {
  CanController::Config cfg;
  cfg.auto_recovery_delay = Duration::microseconds(1408);
  CanController c{sim, 3, cfg};
  bus.attach(c);

  ScriptedFaults faults;
  faults.add_rule(
      [](const FaultContext& ctx) { return ctx.sender == 3; });
  bus.set_fault_model(&faults);
  CanFrame f;
  f.id = 0x100;
  f.dlc = 1;
  ASSERT_TRUE(c.submit(f, TxMode::kAutoRetransmit).has_value());
  // The node oscillates: errors -> bus-off -> auto-recovery -> errors ...
  // Sample at 100 us resolution and require both states to be observed,
  // in order.
  bool saw_bus_off = false;
  bool saw_recovery_after = false;
  for (int i = 0; i < 5000 && !saw_recovery_after; ++i) {
    sim.run_until(sim.now() + Duration::microseconds(100));
    if (c.bus_off()) {
      saw_bus_off = true;
    } else if (saw_bus_off) {
      saw_recovery_after = true;
    }
  }
  EXPECT_TRUE(saw_bus_off);
  EXPECT_TRUE(saw_recovery_after);
}

TEST_F(CanEdgeFixture, AttemptNumbersIncreaseUnderAutoRetransmit) {
  ScriptedFaults faults;
  std::vector<int> attempts;
  faults.add_rule([&](const FaultContext& ctx) {
    attempts.push_back(ctx.attempt);
    return ctx.attempt <= 2;
  });
  bus.set_fault_model(&faults);
  CanFrame f;
  f.id = 0x100;
  f.dlc = 0;
  ASSERT_TRUE(a.submit(f, TxMode::kAutoRetransmit).has_value());
  sim.run();
  EXPECT_EQ(attempts, (std::vector<int>{1, 2, 3}));
}

TEST_F(CanEdgeFixture, PendingCountAndFreeMailboxes) {
  EXPECT_TRUE(a.has_free_mailbox());
  EXPECT_EQ(a.pending_count(), 0u);
  CanFrame f;
  f.id = 0x100;
  f.dlc = 0;
  const auto mb = a.submit(f, TxMode::kAutoRetransmit);
  ASSERT_TRUE(mb.has_value());
  EXPECT_EQ(a.pending_count(), 1u);
  EXPECT_TRUE(a.mailbox_pending(*mb));
  sim.run();
  EXPECT_EQ(a.pending_count(), 0u);
  EXPECT_FALSE(a.mailbox_pending(*mb));
}

TEST_F(CanEdgeFixture, CompositeFaultsFirstChildWins) {
  CompositeFaults composite;
  composite.add(std::make_unique<NoFaults>());
  composite.add(std::make_unique<BurstFaults>(TimePoint::origin(),
                                              TimePoint::origin() + 100_us));
  bus.set_fault_model(&composite);
  CanFrame f;
  f.id = 0x100;
  f.dlc = 0;
  int errors = 0;
  bus.add_observer([&](const CanBus::FrameEvent& ev) {
    if (!ev.success) ++errors;
  });
  ASSERT_TRUE(a.submit(f, TxMode::kAutoRetransmit).has_value());
  sim.run();
  EXPECT_GE(errors, 1);  // the burst child fired despite the clean child
}

TEST_F(CanEdgeFixture, CompositeFaultsFirstWinsPrecedence) {
  // Two always-firing children with different error positions: the first
  // child's position must decide the occupied bus time, and the second
  // child must never even be consulted (first-wins short-circuit).
  auto always = [](double pos, int* evaluations) {
    auto m = std::make_unique<ScriptedFaults>(pos);
    m->add_rule([evaluations](const FaultContext&) {
      ++*evaluations;
      return true;
    });
    return m;
  };
  int first_evals = 0;
  int second_evals = 0;
  CompositeFaults composite;
  composite.add(always(1.0, &first_evals));
  composite.add(always(0.25, &second_evals));
  bus.set_fault_model(&composite);

  CanFrame f;
  f.id = 0x100;
  f.dlc = 8;
  int error_bits = 0;
  bus.add_observer([&](const CanBus::FrameEvent& ev) {
    if (!ev.success && error_bits == 0) error_bits = ev.wire_bits;
  });
  ASSERT_TRUE(a.submit(f, TxMode::kSingleShot).has_value());
  sim.run();
  // Position 1.0 = the full frame plus the error frame on the wire.
  EXPECT_EQ(error_bits, frame_wire_bits(f) + kErrorFrameBits);
  EXPECT_EQ(first_evals, 1);
  EXPECT_EQ(second_evals, 0);
}

TEST_F(CanEdgeFixture, ScriptedFaultsRuleOrderingShortCircuits) {
  // Rules run in add order; the first match stops evaluation.
  std::vector<int> order;
  ScriptedFaults faults;
  faults.add_rule([&](const FaultContext&) {
    order.push_back(1);
    return false;
  });
  faults.add_rule([&](const FaultContext&) {
    order.push_back(2);
    return true;
  });
  faults.add_rule([&](const FaultContext&) {
    order.push_back(3);
    return true;  // never reached: rule 2 already matched
  });
  bus.set_fault_model(&faults);
  CanFrame f;
  f.id = 0x100;
  f.dlc = 0;
  ASSERT_TRUE(a.submit(f, TxMode::kSingleShot).has_value());
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST_F(CanEdgeFixture, ErrorPositionParameterScalesBusOccupancy) {
  // The same burst window with a different error position must charge a
  // proportionally different number of wire bits per aborted attempt.
  CanFrame f;
  f.id = 0x100;
  f.dlc = 8;
  const int full = frame_wire_bits(f);

  for (const double pos : {0.25, 0.5, 1.0}) {
    Simulator isim;
    CanBus ibus{isim, BusConfig{}};
    CanController tx{isim, 1};
    ibus.attach(tx);
    BurstFaults faults{TimePoint::origin(), TimePoint::origin() + 1_ms, pos};
    ibus.set_fault_model(&faults);
    int error_bits = 0;
    ibus.add_observer([&](const CanBus::FrameEvent& ev) {
      if (!ev.success) error_bits = ev.wire_bits;
    });
    ASSERT_TRUE(tx.submit(f, TxMode::kSingleShot).has_value());
    isim.run();
    const int expected =
        static_cast<int>(std::ceil(pos * full)) + kErrorFrameBits;
    EXPECT_EQ(error_bits, expected) << "error position " << pos;
  }
}

}  // namespace
}  // namespace rtec
