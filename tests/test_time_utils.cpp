#include <gtest/gtest.h>

#include <cstdlib>

#include "time/periodic.hpp"
#include "util/logging.hpp"

namespace rtec {
namespace {

using literals::operator""_ns;
using literals::operator""_us;
using literals::operator""_ms;

// ---------------------------------------------------------- periodic task

TEST(PeriodicLocalTask, FiresAtExactPeriodOnPerfectClock) {
  Simulator sim;
  LocalClock clk{sim, Duration::zero(), 0, 1_ns};
  std::vector<std::int64_t> fires;
  PeriodicLocalTask task{clk, 10_ms, [&] { fires.push_back(sim.now().ns()); }};
  task.start_at(TimePoint::origin() + 5_ms);
  sim.run_until(TimePoint::origin() + 100_ms);
  ASSERT_EQ(fires.size(), 10u);
  for (std::size_t i = 0; i < fires.size(); ++i)
    EXPECT_EQ(fires[i], (5_ms + 10_ms * static_cast<std::int64_t>(i)).ns());
  EXPECT_EQ(task.executions(), 10u);
}

TEST(PeriodicLocalTask, NoPhaseSlideDespiteCoarseTick) {
  // The regression this class exists for: with a 1 us reading tick,
  // re-arming from now() would slide ~1 us per period; the absolute
  // timeline must not.
  Simulator sim;
  LocalClock clk{sim, 137_ns, 0, 1_us};  // offset NOT tick-aligned
  std::vector<std::int64_t> fires;
  PeriodicLocalTask task{clk, 1_ms, [&] { fires.push_back(sim.now().ns()); }};
  task.start();
  sim.run_until(TimePoint::origin() + Duration::seconds(2));
  ASSERT_GE(fires.size(), 1999u);
  // The very first firing may be clamped to "now" (the initial offset is
  // below one tick); from the second firing on the absolute timeline rules.
  const std::int64_t gap = fires[2] - fires[1];
  EXPECT_EQ(gap, (1_ms).ns());
  for (std::size_t i = 3; i < fires.size(); ++i)
    ASSERT_EQ(fires[i] - fires[i - 1], gap) << "slide at " << i;
  // Total elapsed = N periods exactly (no cumulative drift).
  EXPECT_EQ(fires.back() - fires[1],
            static_cast<std::int64_t>(fires.size() - 2) * gap);
}

TEST(PeriodicLocalTask, TracksClockRate) {
  Simulator sim;
  LocalClock clk{sim, Duration::zero(), 100'000, 1_us};  // +100 ppm fast
  int fires = 0;
  PeriodicLocalTask task{clk, 10_ms, [&] { ++fires; }};
  task.start();
  sim.run_until(TimePoint::origin() + Duration::seconds(1));
  // A fast clock reaches its local deadlines early: slightly more than 100
  // executions of a 10 ms-local period fit into 1 s of perfect time.
  EXPECT_GE(fires, 100);
  EXPECT_LE(fires, 102);
}

TEST(PeriodicLocalTask, StopPreventsFurtherExecutions) {
  Simulator sim;
  LocalClock clk{sim, Duration::zero(), 0, 1_ns};
  int fires = 0;
  PeriodicLocalTask task{clk, 1_ms, [&] { ++fires; }};
  task.start();
  sim.run_until(TimePoint::origin() + 5500_us);
  EXPECT_EQ(fires, 6);  // t = 0..5 ms
  task.stop();
  EXPECT_FALSE(task.running());
  sim.run_until(TimePoint::origin() + 20_ms);
  EXPECT_EQ(fires, 6);
}

TEST(PeriodicLocalTask, BodyMayStopTheTask) {
  Simulator sim;
  LocalClock clk{sim, Duration::zero(), 0, 1_ns};
  int fires = 0;
  PeriodicLocalTask task{clk, 1_ms, [&] {
                           if (++fires == 3) task.stop();
                         }};
  task.start();
  sim.run_until(TimePoint::origin() + 20_ms);
  EXPECT_EQ(fires, 3);
}

TEST(PeriodicLocalTask, RestartAfterStop) {
  Simulator sim;
  LocalClock clk{sim, Duration::zero(), 0, 1_ns};
  int fires = 0;
  PeriodicLocalTask task{clk, 1_ms, [&] { ++fires; }};
  task.start();
  sim.run_until(TimePoint::origin() + 2500_us);
  task.stop();
  const int so_far = fires;
  task.start_at(clk.now() + 5_ms);
  sim.run_until(TimePoint::origin() + 10_ms);
  EXPECT_GT(fires, so_far);
}

// --------------------------------------------------------------- logging

TEST(Logging, LevelGating) {
  Logger& log = Logger::instance();
  log.set_level(LogLevel::kWarn);
  EXPECT_TRUE(log.enabled(LogLevel::kError));
  EXPECT_TRUE(log.enabled(LogLevel::kWarn));
  EXPECT_FALSE(log.enabled(LogLevel::kInfo));
  EXPECT_FALSE(log.enabled(LogLevel::kDebug));
  log.set_level(LogLevel::kOff);
  EXPECT_FALSE(log.enabled(LogLevel::kError));
}

TEST(Logging, InitFromEnv) {
  Logger& log = Logger::instance();
  ::setenv("RTEC_LOG", "debug", 1);
  log.init_from_env();
  EXPECT_EQ(log.level(), LogLevel::kDebug);
  ::setenv("RTEC_LOG", "warn", 1);
  log.init_from_env();
  EXPECT_EQ(log.level(), LogLevel::kWarn);
  ::setenv("RTEC_LOG", "nonsense", 1);
  log.init_from_env();
  EXPECT_EQ(log.level(), LogLevel::kOff);
  ::unsetenv("RTEC_LOG");
  log.set_level(LogLevel::kOff);
}

}  // namespace
}  // namespace rtec
