#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "bench/analytic_scenario.hpp"
#include "canbus/frame.hpp"
#include "sched/prob_rta.hpp"
#include "sched/wctt.hpp"

// sched/prob_rta — the convolution-based probabilistic response-time
// engine. Unit tests pin the kernel (ConvRing vs a naive reference
// convolution, pruning mass accounting, quantile semantics) and the
// closed forms the HRT model must reproduce exactly; the differential
// tests at the bottom are the cross-validation gate of ISSUE 8: analytic
// quantiles must match the simulator's to within one bit-time grid step
// under the worst-case error position (where the distribution is purely
// atomic and the match is exact by construction), across several seeds.

namespace rtec {
namespace {

using namespace rtec::literals;

constexpr std::int64_t kOverheadBits = 23;  // error frame 20 + intermission 3

BitPmf make_pmf(std::int64_t first, std::vector<double> probs) {
  return BitPmf::from_span(first, probs);
}

/// Naive dense convolution reference for ConvRing.
std::vector<double> naive_conv(const std::vector<double>& a,
                               const std::vector<double>& b) {
  std::vector<double> out(a.size() + b.size() - 1, 0.0);
  for (std::size_t i = 0; i < a.size(); ++i)
    for (std::size_t j = 0; j < b.size(); ++j) out[i + j] += a[i] * b[j];
  return out;
}

// ------------------------------------------------------------------ BitPmf

TEST(BitPmf, PointAndSpanBasics) {
  const BitPmf p = BitPmf::point(42);
  EXPECT_EQ(p.first_bit(), 42);
  EXPECT_EQ(p.last_bit(), 42);
  EXPECT_DOUBLE_EQ(p.at(42), 1.0);
  EXPECT_DOUBLE_EQ(p.at(41), 0.0);
  EXPECT_DOUBLE_EQ(p.mass(), 1.0);

  const BitPmf s = make_pmf(10, {0.25, 0.5, 0.25});
  EXPECT_EQ(s.support(), 3u);
  EXPECT_DOUBLE_EQ(s.cdf(9), 0.0);
  EXPECT_DOUBLE_EQ(s.cdf(10), 0.25);
  EXPECT_DOUBLE_EQ(s.cdf(11), 0.75);
  EXPECT_DOUBLE_EQ(s.cdf(999), 1.0);
  EXPECT_DOUBLE_EQ(s.mean(), 11.0);
}

TEST(BitPmf, ShiftScaleAddScaled) {
  BitPmf a = make_pmf(0, {0.5, 0.5});
  a.shift(7);
  EXPECT_EQ(a.first_bit(), 7);
  a.scale(0.5);
  EXPECT_DOUBLE_EQ(a.mass(), 0.5);
  // Accumulate a disjoint-support term: support must grow to cover both.
  a.add_scaled(BitPmf::point(3), 0.25);
  EXPECT_EQ(a.first_bit(), 3);
  EXPECT_EQ(a.last_bit(), 8);
  EXPECT_DOUBLE_EQ(a.at(3), 0.25);
  EXPECT_DOUBLE_EQ(a.at(7), 0.25);
  EXPECT_NEAR(a.mass(), 0.75, 1e-15);
}

TEST(BitPmf, PruneTracksEveryDroppedAtom) {
  BitPmf p = make_pmf(0, {1e-16, 1e-16, 0.5, 0.4999999999999, 1e-16});
  const double before = p.mass();
  p.prune(1e-12);
  // Mass is conserved as retained + pruned, and the loss obeys the budget.
  EXPECT_NEAR(p.mass() + p.pruned(), before, 1e-15);
  EXPECT_LE(p.pruned(), 1e-12);
  EXPECT_EQ(p.first_bit(), 2);  // leading tail atoms dropped, grid shifted
  EXPECT_EQ(p.last_bit(), 3);
}

TEST(BitPmf, QuantileIsMonotoneAndNearestRank) {
  const BitPmf p = make_pmf(100, {0.1, 0.2, 0.3, 0.4});
  std::int64_t prev = p.quantile(0.0);
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    const std::int64_t b = p.quantile(q);
    EXPECT_GE(b, prev) << "quantile not monotone at q=" << q;
    prev = b;
  }
  EXPECT_EQ(p.quantile(0.05), 100);
  EXPECT_EQ(p.quantile(0.3), 101);   // cdf(101)=0.3 ≥ 0.3
  EXPECT_EQ(p.quantile(0.31), 102);
  EXPECT_EQ(p.quantile(1.0), 103);
}

// ---------------------------------------------------------------- ConvRing

TEST(ConvRing, MatchesNaiveConvolutionAcrossTerms) {
  const std::vector<double> a{0.2, 0.3, 0.5};
  const std::vector<double> b{0.6, 0.4};
  const std::vector<double> c{0.1, 0.1, 0.1, 0.7};

  ConvRing ring{make_pmf(5, a)};
  ring.convolve(make_pmf(2, b));
  ring.convolve(make_pmf(0, c));

  const std::vector<double> expect = naive_conv(naive_conv(a, b), c);
  const BitPmf got = ring.to_pmf();
  EXPECT_EQ(got.first_bit(), 7);  // 5 + 2 + 0
  ASSERT_EQ(got.support(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i)
    EXPECT_NEAR(got.at(7 + static_cast<std::int64_t>(i)), expect[i], 1e-15)
        << "atom " << i;
  // Capacity stays a power of two through growth.
  EXPECT_EQ(ring.capacity() & (ring.capacity() - 1), 0u);
}

TEST(ConvRing, PruneRecyclesFrontAndTracksMass) {
  ConvRing ring{make_pmf(0, {1e-16, 0.5, 0.5 - 2e-16, 1e-16})};
  const double before = ring.to_pmf().mass();
  ring.prune(1e-12);
  EXPECT_EQ(ring.first_bit(), 1);
  EXPECT_EQ(ring.length(), 2u);
  EXPECT_NEAR(ring.to_pmf().mass() + ring.pruned(), before, 1e-15);
  // The recycled ring still convolves correctly after the head moved.
  ring.convolve(BitPmf::point(10));
  EXPECT_EQ(ring.first_bit(), 11);
  EXPECT_EQ(ring.length(), 2u);
}

TEST(ConvRing, AccumulateIntoWeightsMixture) {
  const ConvRing ring{make_pmf(4, {0.5, 0.5})};
  BitPmf acc = BitPmf::point(0);
  acc.scale(0.6);
  ring.accumulate_into(acc, 0.4);
  EXPECT_NEAR(acc.mass(), 1.0, 1e-15);
  EXPECT_DOUBLE_EQ(acc.at(0), 0.6);
  EXPECT_DOUBLE_EQ(acc.at(4), 0.2);
  EXPECT_DOUBLE_EQ(acc.at(5), 0.2);
}

// ------------------------------------------------------- error model forms

TEST(ErrorRecoveryPmf, WorstCasePositionIsOneAtomAtFullFrame) {
  OmissionModel model;
  model.p = 0.3;
  model.worst_case_position = true;
  const BitPmf e = error_recovery_pmf(130, model);
  EXPECT_EQ(e.support(), 1u);
  EXPECT_EQ(e.first_bit(), 130 + kOverheadBits);
  EXPECT_DOUBLE_EQ(e.mass(), 1.0);
}

TEST(ErrorRecoveryPmf, UniformPositionMirrorsTheBusChargingRule) {
  OmissionModel model;
  model.p = 0.3;  // position distribution does not depend on p
  const int L = 130;
  const BitPmf e = error_recovery_pmf(L, model);
  // Support: bit counts reachable from frac ∈ [0.05, 1): ceil(0.05·130)=7
  // data bits up to the full frame, each shifted by error frame +
  // intermission overhead.
  EXPECT_EQ(e.first_bit(), 7 + kOverheadBits);
  EXPECT_EQ(e.last_bit(), L + kOverheadBits);
  EXPECT_NEAR(e.mass(), 1.0, 1e-12);
  // Interior atoms carry exactly one 1/L-wide slice of the (renormalised)
  // uniform position distribution.
  const double interior = (1.0 / L) / 0.95;
  EXPECT_NEAR(e.at(10 + kOverheadBits), interior, 1e-15);
  // The first atom holds only the part of its slice above min_fraction.
  EXPECT_NEAR(e.at(7 + kOverheadBits), (7.0 / L - 0.05) / 0.95, 1e-15);
}

// ------------------------------------------------------- HRT closed forms

TEST(HrtResponse, WorstCaseMatchesGeometricClosedForm) {
  const int L = 135;
  const int k = 3;
  OmissionModel model;
  model.p = 0.4;
  model.worst_case_position = true;
  const ResponseDistribution r = hrt_response_distribution(L, k, model);

  // Atoms at L + j·(L+23) with mass p^j·(1−p); miss exactly p^(k+1).
  for (int j = 0; j <= k; ++j) {
    const std::int64_t bit = L + j * (L + kOverheadBits);
    EXPECT_NEAR(r.pmf.at(bit), std::pow(0.4, j) * 0.6, 1e-12) << "j=" << j;
  }
  EXPECT_NEAR(r.miss_probability, std::pow(0.4, k + 1), 1e-12);
  EXPECT_NEAR(r.pmf.mass() + r.miss_probability, 1.0, 1e-9);
  EXPECT_LE(r.tail_epsilon, 1e-9);

  // Conditional quantiles land on the atoms the closed form dictates.
  EXPECT_EQ(r.pmf.quantile(0.5), L);
  EXPECT_EQ(r.pmf.quantile(0.9), L + 2 * (L + kOverheadBits));
  EXPECT_EQ(r.pmf.quantile(0.99), L + 3 * (L + kOverheadBits));
}

TEST(HrtResponse, UniformPositionKeepsMassAccounting) {
  OmissionModel model;
  model.p = 0.15;
  const ResponseDistribution r = hrt_response_distribution(135, 2, model);
  EXPECT_NEAR(r.miss_probability, std::pow(0.15, 3), 1e-12);
  EXPECT_NEAR(r.pmf.mass() + r.miss_probability + r.pmf.pruned(), 1.0, 1e-9);
  EXPECT_EQ(r.pmf.first_bit(), 135);  // fault-free path is the minimum
}

TEST(HrtResponse, FaultFreeDegeneratesToThePlainFrame) {
  OmissionModel model;  // p = 0
  const ResponseDistribution r = hrt_response_distribution(100, 2, model);
  EXPECT_EQ(r.pmf.support(), 1u);
  EXPECT_EQ(r.pmf.first_bit(), 100);
  EXPECT_DOUBLE_EQ(r.miss_probability, 0.0);
}

// ------------------------------------------------------------- hop model

TEST(HopResponse, FaultFreeUncontendedIsBlockerPlusFrame) {
  HopQuery q;
  q.frame_bits = 135;
  q.blocking_bits = 157;
  q.deadline_bits = 100'000;
  const ResponseDistribution r = hop_response_distribution(q);
  EXPECT_EQ(r.pmf.support(), 1u);
  EXPECT_EQ(r.pmf.first_bit(), 157 + 135);
  EXPECT_NEAR(r.miss_probability, 0.0, 1e-12);
}

TEST(HopResponse, InterferersOnlyEverDelay) {
  HopQuery q;
  q.frame_bits = 135;
  q.blocking_bits = 157;
  q.deadline_bits = 20'000;
  q.faults.p = 0.05;
  const ResponseDistribution base = hop_response_distribution(q);
  q.interferers.push_back({135, 5'000});
  const ResponseDistribution loaded = hop_response_distribution(q);
  // Stochastic domination: every quantile moves right (or stays), and the
  // miss probability cannot shrink when contention is added.
  for (double qq : {0.1, 0.5, 0.9, 0.999})
    EXPECT_GE(loaded.pmf.quantile(qq), base.pmf.quantile(qq)) << "q=" << qq;
  EXPECT_GE(loaded.miss_probability, base.miss_probability);
}

TEST(HopResponse, ImpossibleDeadlineIsACertainMiss) {
  HopQuery q;
  q.frame_bits = 135;
  q.blocking_bits = 157;
  q.deadline_bits = 200;  // < blocker + frame
  const ResponseDistribution r = hop_response_distribution(q);
  EXPECT_NEAR(r.miss_probability, 1.0, 1e-12);
}

TEST(HopResponse, TighterDeadlineNeverLowersTheMiss) {
  HopQuery q;
  q.frame_bits = 135;
  q.blocking_bits = 157;
  q.faults.p = 0.2;
  q.interferers.push_back({135, 2'000});
  double prev = 1.0;
  for (std::int64_t d : {400, 800, 1'600, 3'200, 12'800}) {
    q.deadline_bits = d;
    const double miss = hop_response_distribution(q).miss_probability;
    EXPECT_LE(miss, prev + 1e-12) << "deadline " << d;
    prev = miss;
  }
  EXPECT_LT(prev, 1e-3);  // generous deadline: miss collapses toward p^j tail
}

TEST(ComposeRouteMiss, UnionBound) {
  const std::vector<double> hops{0.1, 0.2};
  EXPECT_NEAR(compose_route_miss(hops), 1.0 - 0.9 * 0.8, 1e-15);
  EXPECT_DOUBLE_EQ(compose_route_miss({}), 0.0);
}

TEST(DurationToBits, FloorsOnTheGrid) {
  const BusConfig bus;  // 1 Mbit/s → 1000 ns bit time
  EXPECT_EQ(duration_to_bits(1_us, bus), 1);
  EXPECT_EQ(duration_to_bits(1500_ns, bus), 1);
  EXPECT_EQ(duration_to_bits(10_ms, bus), 10'000);
}

// ----------------------------------------------- differential vs simulator
//
// The cross-validation gate: run the shared bench/analytic_scenario
// harness (sole-publisher HRT slot under RandomOmissionFaults) and demand
// the analytic conditional quantiles match the simulated histogram to
// within ONE bit-time grid step. Gated points pin the error position to
// the worst case (analytic distribution purely atomic, conditional-CDF
// boundaries several σ away from the gated ranks at 2000 instances), so
// a >1-step divergence means a real model/simulator disagreement, not
// sampling noise.

struct DiffPoint {
  int k;
  double p;
};

void run_gated_differential(const DiffPoint& pt, std::uint64_t seed) {
  bench::AnalyticScenarioConfig cfg;
  cfg.dlc = 8;
  cfg.omission_degree = pt.k;
  cfg.fault_rate = pt.p;
  cfg.fixed_fault_position = 1.0;  // worst case: error on the last bit
  cfg.rounds = 2000;
  cfg.seed = seed;
  const bench::AnalyticScenarioResult sim = bench::run_analytic_scenario(cfg);
  ASSERT_GT(sim.delivered, 0u);
  ASSERT_GT(sim.frame_bits, 0);

  OmissionModel model;
  model.p = pt.p;
  model.worst_case_position = true;
  const ResponseDistribution ana =
      hrt_response_distribution(sim.frame_bits, pt.k, model);

  const double bit_ns = 1000.0;  // default BusConfig, asserted by the grid
  for (double q : {0.5, 0.9, 0.99}) {
    const double sim_ns = sim.latency.quantile(q);
    const double ana_ns = static_cast<double>(ana.pmf.quantile(q)) * bit_ns;
    EXPECT_LE(std::abs(sim_ns - ana_ns), bit_ns)
        << "k=" << pt.k << " p=" << pt.p << " seed=" << seed << " q=" << q
        << " sim=" << sim_ns << " ana=" << ana_ns;
  }

  // The empirical fault-assumption-violation rate must sit inside a 5σ
  // binomial band around the analytic p^(k+1).
  const double miss = std::pow(pt.p, pt.k + 1);
  const double n = static_cast<double>(cfg.rounds);
  const double sigma = std::sqrt(n * miss * (1.0 - miss));
  EXPECT_NEAR(static_cast<double>(sim.failures), n * miss, 5.0 * sigma + 1.0)
      << "k=" << pt.k << " p=" << pt.p << " seed=" << seed;
}

TEST(ProbRtaDifferential, WorstCaseQuantilesMatchWithinOneGridStep) {
  for (const DiffPoint& pt : {DiffPoint{2, 0.15}, DiffPoint{3, 0.4}})
    for (std::uint64_t seed : {11u, 12u, 13u})
      run_gated_differential(pt, seed);
}

TEST(ProbRtaDifferential, UniformPositionQuantilesInsideDkwBracket) {
  // Uniform error positions spread mass over ~L atoms, so an exact
  // quantile match is not a sound expectation at n=2000; instead demand
  // the simulated quantile lies inside the analytic quantile bracket
  // [Q(q−δ), Q(q+δ)] ± one grid step, with δ the two-sided DKW deviation
  // bound at confidence 1−1e-3 (δ = sqrt(ln(2/1e-3)/2n) ≈ 0.0436 → 0.05).
  bench::AnalyticScenarioConfig cfg;
  cfg.dlc = 8;
  cfg.omission_degree = 3;
  cfg.fault_rate = 0.4;
  cfg.rounds = 2000;
  cfg.seed = 11;
  const bench::AnalyticScenarioResult sim = bench::run_analytic_scenario(cfg);
  ASSERT_GT(sim.frame_bits, 0);

  OmissionModel model;
  model.p = cfg.fault_rate;
  const ResponseDistribution ana =
      hrt_response_distribution(sim.frame_bits, cfg.omission_degree, model);

  const double delta = 0.05;
  const double bit_ns = 1000.0;
  for (double q : {0.5, 0.9, 0.99}) {
    const double sim_ns = sim.latency.quantile(q);
    const double lo =
        static_cast<double>(ana.pmf.quantile(q - delta)) * bit_ns - bit_ns;
    const double hi =
        static_cast<double>(ana.pmf.quantile(q + delta)) * bit_ns + bit_ns;
    EXPECT_GE(sim_ns, lo) << "q=" << q;
    EXPECT_LE(sim_ns, hi) << "q=" << q;
  }
}

}  // namespace
}  // namespace rtec
