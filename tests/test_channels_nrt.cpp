#include <gtest/gtest.h>

#include <vector>

#include "core/nrtec.hpp"
#include "core/scenario.hpp"
#include "core/srtec.hpp"
#include "sched/id_codec.hpp"
#include "util/random.hpp"

namespace rtec {
namespace {

using literals::operator""_ns;
using literals::operator""_us;
using literals::operator""_ms;

Node::ClockParams perfect_clock() {
  Node::ClockParams p;
  p.granularity = 1_ns;
  return p;
}

struct NrtFixture : ::testing::Test {
  Scenario scn;
  Node* n1 = nullptr;
  Node* n2 = nullptr;

  void SetUp() override {
    n1 = &scn.add_node(1, perfect_clock());
    n2 = &scn.add_node(2, perfect_clock());
  }
};

TEST_F(NrtFixture, PlainChannelDeliversSmallEvents) {
  Nrtec pub{n1->middleware()};
  Nrtec sub{n2->middleware()};
  ASSERT_TRUE(pub.announce(subject_of("nrt/cfg"),
                           AttributeList{attr::FixedPriority{252}}, nullptr)
                  .has_value());
  int notified = 0;
  ASSERT_TRUE(
      sub.subscribe(subject_of("nrt/cfg"), {}, [&] { ++notified; }, nullptr)
          .has_value());
  Event e;
  e.content = {1, 2, 3};
  ASSERT_TRUE(pub.publish(std::move(e)).has_value());
  scn.run_for(1_ms);
  EXPECT_EQ(notified, 1);
  const auto got = sub.getEvent();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->content, (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST_F(NrtFixture, PlainChannelRejectsOversizedPayload) {
  Nrtec pub{n1->middleware()};
  ASSERT_TRUE(pub.announce(subject_of("nrt/cfg"), {}, nullptr).has_value());
  Event e;
  e.content.assign(9, 0);
  EXPECT_EQ(pub.publish(std::move(e)).error(), ChannelError::kPayloadTooLarge);
}

TEST_F(NrtFixture, PriorityOutsideNrtBandRejected) {
  Nrtec pub{n1->middleware()};
  const auto r = pub.announce(subject_of("nrt/cfg"),
                              AttributeList{attr::FixedPriority{100}}, nullptr);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error(), ChannelError::kPriorityOutOfRange);
}

// --------------------------------------------------------- fragmentation

class FragmentationSweep : public NrtFixture,
                           public ::testing::WithParamInterface<std::size_t> {};

TEST_P(FragmentationSweep, BulkPayloadRoundTrips) {
  const std::size_t size = GetParam();
  Nrtec pub{n1->middleware()};
  Nrtec sub{n2->middleware()};
  const AttributeList frag{attr::Fragmentation{true}};
  ASSERT_TRUE(pub.announce(subject_of("nrt/bulk"), frag, nullptr).has_value());
  int notified = 0;
  ASSERT_TRUE(
      sub.subscribe(subject_of("nrt/bulk"), frag, [&] { ++notified; }, nullptr)
          .has_value());

  Rng rng{size};
  Event e;
  e.content.resize(size);
  for (auto& b : e.content) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  const std::vector<std::uint8_t> expected = e.content;
  ASSERT_TRUE(pub.publish(std::move(e)).has_value());

  // Worst case ~1 frame (~90 us incl. overheads) per 7 bytes.
  scn.run_for(Duration::microseconds(static_cast<std::int64_t>(size) * 30 + 2000));

  EXPECT_EQ(notified, 1);
  const auto got = sub.getEvent();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->content, expected);
  EXPECT_EQ(n2->middleware().nrt().counters().reassembly_failed, 0u);
}

INSTANTIATE_TEST_SUITE_P(PayloadSizes, FragmentationSweep,
                         ::testing::Values(1, 4, 7, 8, 11, 32, 100, 1000, 4096));

TEST_F(NrtFixture, BackToBackBulkMessagesKeepBoundaries) {
  Nrtec pub{n1->middleware()};
  Nrtec sub{n2->middleware()};
  const AttributeList frag{attr::Fragmentation{true}};
  ASSERT_TRUE(pub.announce(subject_of("nrt/bulk"), frag, nullptr).has_value());
  ASSERT_TRUE(sub.subscribe(subject_of("nrt/bulk"), frag, nullptr, nullptr)
                  .has_value());

  for (std::uint8_t i = 0; i < 3; ++i) {
    Event e;
    e.content.assign(50, i);
    ASSERT_TRUE(pub.publish(std::move(e)).has_value());
  }
  scn.run_for(10_ms);

  for (std::uint8_t i = 0; i < 3; ++i) {
    const auto got = sub.getEvent();
    ASSERT_TRUE(got.has_value()) << "message " << int(i);
    EXPECT_EQ(got->content.size(), 50u);
    EXPECT_EQ(got->content[0], i);
  }
  EXPECT_EQ(sub.getEvent(), std::nullopt);
  EXPECT_EQ(n1->middleware().nrt().counters().messages_sent, 3u);
}

TEST_F(NrtFixture, InterleavedSendersReassembleIndependently) {
  Node& n3 = scn.add_node(3, perfect_clock());
  Nrtec pub_a{n1->middleware()};
  Nrtec pub_b{n3.middleware()};
  Nrtec sub{n2->middleware()};
  const AttributeList frag{attr::Fragmentation{true}};
  ASSERT_TRUE(pub_a.announce(subject_of("nrt/bulk"), frag, nullptr).has_value());
  ASSERT_TRUE(pub_b.announce(subject_of("nrt/bulk"), frag, nullptr).has_value());
  int notified = 0;
  ASSERT_TRUE(
      sub.subscribe(subject_of("nrt/bulk"), frag, [&] { ++notified; }, nullptr)
          .has_value());

  // Both publishers start simultaneously: their fragments interleave on the
  // bus (same priority, alternating by TxNode at each arbitration).
  Event ea;
  ea.content.assign(99, 0xAA);
  Event eb;
  eb.content.assign(77, 0xBB);
  ASSERT_TRUE(pub_a.publish(std::move(ea)).has_value());
  ASSERT_TRUE(pub_b.publish(std::move(eb)).has_value());
  scn.run_for(20_ms);

  EXPECT_EQ(notified, 2);
  std::vector<std::vector<std::uint8_t>> got;
  while (auto e = sub.getEvent()) got.push_back(e->content);
  ASSERT_EQ(got.size(), 2u);
  for (const auto& payload : got) {
    const bool is_a = payload.size() == 99 && payload[0] == 0xAA;
    const bool is_b = payload.size() == 77 && payload[0] == 0xBB;
    EXPECT_TRUE(is_a || is_b);
  }
  EXPECT_EQ(n2->middleware().nrt().counters().reassembly_failed, 0u);
}

TEST_F(NrtFixture, SubscriberJoiningMidMessageIgnoresTail) {
  Nrtec pub{n1->middleware()};
  const AttributeList frag{attr::Fragmentation{true}};
  ASSERT_TRUE(pub.announce(subject_of("nrt/bulk"), frag, nullptr).has_value());
  Event e;
  e.content.assign(500, 0x55);
  ASSERT_TRUE(pub.publish(std::move(e)).has_value());
  scn.run_for(2_ms);  // a good chunk of fragments already went out

  Nrtec sub{n2->middleware()};
  int notified = 0;
  int exceptions = 0;
  ASSERT_TRUE(sub.subscribe(subject_of("nrt/bulk"), frag, [&] { ++notified; },
                            [&](const ExceptionInfo&) { ++exceptions; })
                  .has_value());
  scn.run_for(60_ms);
  // The tail without a FIRST fragment is dropped silently — the subscriber
  // was never mid-reassembly, so it is not an inconsistency.
  EXPECT_EQ(notified, 0);
  EXPECT_EQ(exceptions, 0);
}

TEST_F(NrtFixture, HigherNrtPriorityChannelWinsBandwidth) {
  Nrtec urgent{n1->middleware()};
  Nrtec lazy{n1->middleware()};
  ASSERT_TRUE(urgent
                  .announce(subject_of("nrt/urgent"),
                            AttributeList{attr::FixedPriority{251}}, nullptr)
                  .has_value());
  ASSERT_TRUE(lazy.announce(subject_of("nrt/lazy"),
                            AttributeList{attr::FixedPriority{255}}, nullptr)
                  .has_value());

  std::vector<Etag> order;
  scn.bus().add_observer([&](const CanBus::FrameEvent& ev) {
    if (ev.success) order.push_back(decode_can_id(ev.frame.id).etag);
  });

  // A filler frame occupies the single NRT mailbox; then one lazy and one
  // urgent frame are queued behind it. When the mailbox frees, the engine's
  // priority scan must stage the urgent one first even though the lazy one
  // was queued earlier.
  Event filler;
  filler.content = {0};
  Event el;
  el.content = {1};
  Event eu;
  eu.content = {2};
  ASSERT_TRUE(lazy.publish(std::move(filler)).has_value());  // staged at once
  ASSERT_TRUE(lazy.publish(std::move(el)).has_value());      // backlog
  ASSERT_TRUE(urgent.publish(std::move(eu)).has_value());    // backlog
  scn.run_for(2_ms);

  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], *scn.binding().lookup(subject_of("nrt/lazy")));
  EXPECT_EQ(order[1], *scn.binding().lookup(subject_of("nrt/urgent")));
  EXPECT_EQ(order[2], *scn.binding().lookup(subject_of("nrt/lazy")));
}

TEST_F(NrtFixture, QueueOverflowRaisesException) {
  Nrtec pub{n1->middleware()};
  Nrtec sub{n2->middleware()};
  ASSERT_TRUE(pub.announce(subject_of("nrt/cfg"), {}, nullptr).has_value());
  int exceptions = 0;
  ASSERT_TRUE(sub.subscribe(subject_of("nrt/cfg"),
                            AttributeList{attr::QueueCapacity{2}}, nullptr,
                            [&](const ExceptionInfo& e) {
                              EXPECT_EQ(e.error, ChannelError::kQueueOverflow);
                              ++exceptions;
                            })
                  .has_value());
  for (int i = 0; i < 4; ++i) {
    Event e;
    e.content = {static_cast<std::uint8_t>(i)};
    ASSERT_TRUE(pub.publish(std::move(e)).has_value());
  }
  scn.run_for(5_ms);
  EXPECT_EQ(exceptions, 2);  // events 3 and 4 dropped
  EXPECT_TRUE(sub.getEvent().has_value());
  EXPECT_TRUE(sub.getEvent().has_value());
  EXPECT_FALSE(sub.getEvent().has_value());
}

}  // namespace
}  // namespace rtec
