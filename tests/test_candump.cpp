#include <gtest/gtest.h>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "trace/candump.hpp"

namespace rtec {
namespace {

using literals::operator""_us;
using literals::operator""_ms;

TEST(Candump, FormatsExtendedFrameLikeCandump) {
  CanFrame f;
  f.extended = true;
  f.id = 0x1F334455;
  f.dlc = 4;
  f.data = {0xDE, 0xAD, 0xBE, 0xEF, 0, 0, 0, 0};
  const std::string line = CandumpRecorder::format(
      f, TimePoint::from_ns(1'436'509'053'249'713'000), "vcan0");
  EXPECT_EQ(line, "(1436509053.249713) vcan0 1F334455#DEADBEEF");
}

TEST(Candump, FormatsBaseAndRtrFrames) {
  CanFrame base;
  base.extended = false;
  base.id = 0x7A;
  base.dlc = 1;
  base.data[0] = 0x42;
  EXPECT_EQ(CandumpRecorder::format(base, TimePoint::from_ns(1'500'000), "can0"),
            "(0.001500) can0 07A#42");

  CanFrame rtr;
  rtr.extended = false;
  rtr.id = 0x100;
  rtr.rtr = true;
  EXPECT_EQ(CandumpRecorder::format(rtr, TimePoint::origin(), "can0"),
            "(0.000000) can0 100#R");
}

TEST(Candump, ParseRoundTrip) {
  const std::string log =
      "(1436509053.249713) vcan0 1F334455#DEADBEEF\n"
      "(1436509053.350000) vcan0 07A#42\n"
      "(1436509053.450000) vcan0 100#R\n";
  const auto entries = parse_candump(log);
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_TRUE(entries[0].frame.extended);
  EXPECT_EQ(entries[0].frame.id, 0x1F334455u);
  EXPECT_EQ(entries[0].frame.dlc, 4);
  EXPECT_EQ(entries[0].frame.data[0], 0xDE);
  EXPECT_FALSE(entries[1].frame.extended);
  EXPECT_EQ(entries[1].frame.id, 0x7Au);
  EXPECT_TRUE(entries[2].frame.rtr);
  EXPECT_EQ((entries[1].at - entries[0].at).us(), 100'287.0);
}

TEST(Candump, MalformedLinesSkipped) {
  const std::string log =
      "garbage line\n"
      "(1.000000) vcan0 ZZZ#00\n"          // bad hex id
      "(1.000000) vcan0 123#ABC\n"          // odd data length
      "(1.000000) vcan0 123#\n"             // empty data: valid dlc 0
      "(1.000000) vcan0 123#0011223344556677889\n"  // > 8 bytes
      "1.0 vcan0 123#00\n"                  // missing parens
      "(1.000000) vcan0 7FFFFFFF#00\n"      // id beyond 29 bits
      "(2.000000) vcan0 123#00\n";
  std::size_t skipped = 0;
  const auto entries = parse_candump(log, &skipped);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].frame.dlc, 0);
  EXPECT_EQ(entries[1].frame.data[0], 0x00);
  EXPECT_EQ(skipped, 6u);  // every malformed line above, counted once
}

TEST(Candump, SkippedCountIgnoresBlankLines) {
  // Blank and whitespace-only lines are not "malformed" — logs routinely
  // end with a newline or separate bursts with empty lines.
  std::size_t skipped = 0;
  const auto entries = parse_candump("\n(1.000000) vcan0 123#00\n\n   \n",
                                     &skipped);
  EXPECT_EQ(entries.size(), 1u);
  EXPECT_EQ(skipped, 0u);

  const auto none = parse_candump("", &skipped);
  EXPECT_TRUE(none.empty());
  EXPECT_EQ(skipped, 0u);
}

TEST(Candump, RecordReplayRoundTrip) {
  // Record a little simulated traffic...
  std::vector<std::string> lines;
  {
    Simulator sim;
    CanBus bus{sim, BusConfig{}};
    CanController a{sim, 1};
    CanController b{sim, 2};
    bus.attach(a);
    bus.attach(b);
    CandumpRecorder rec{bus, "rtec0"};
    for (int i = 0; i < 5; ++i) {
      sim.schedule_at(TimePoint::origin() + 1_ms * i, [&a, i] {
        CanFrame f;
        f.id = 0x100u + static_cast<std::uint32_t>(i);
        f.dlc = 2;
        f.data = {static_cast<std::uint8_t>(i), 0x55, 0, 0, 0, 0, 0, 0};
        (void)a.submit(f, TxMode::kAutoRetransmit);
      });
    }
    sim.run();
    lines = rec.lines();
  }
  ASSERT_EQ(lines.size(), 5u);

  // ...then replay the log into a fresh simulation and compare.
  std::string text;
  for (const auto& l : lines) text += l + "\n";
  const auto entries = parse_candump(text);
  ASSERT_EQ(entries.size(), 5u);

  Simulator sim;
  CanBus bus{sim, BusConfig{}};
  CanController player{sim, 9};
  CanController listener{sim, 10};
  bus.attach(player);
  bus.attach(listener);
  std::vector<std::uint32_t> seen;
  listener.add_rx_listener(
      [&](const CanFrame& f, TimePoint) { seen.push_back(f.id); });
  const std::size_t n = replay_candump(sim, player, entries,
                                       TimePoint::origin() + 10_ms);
  EXPECT_EQ(n, 5u);
  sim.run();
  ASSERT_EQ(seen.size(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) EXPECT_EQ(seen[i], 0x100u + i);
}

TEST(Candump, SaveWritesFile) {
  Simulator sim;
  CanBus bus{sim, BusConfig{}};
  CanController a{sim, 1};
  CanController b{sim, 2};
  bus.attach(a);
  bus.attach(b);
  CandumpRecorder rec{bus};
  CanFrame f;
  f.id = 0x123;
  f.dlc = 1;
  f.data[0] = 0xAB;
  (void)a.submit(f, TxMode::kAutoRetransmit);
  sim.run();
  const char* path = "test_candump_tmp.log";
  ASSERT_TRUE(rec.save(path));
  const auto parsed = parse_candump([&] {
    std::ifstream in{path};
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }());
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].frame.id, 0x123u);
  std::remove(path);
}

}  // namespace
}  // namespace rtec
