#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "core/scenario.hpp"
#include "core/srtec.hpp"
#include "sched/id_codec.hpp"
#include "util/task_pool.hpp"

namespace rtec {
namespace {

using literals::operator""_ns;
using literals::operator""_us;
using literals::operator""_ms;

Node::ClockParams perfect_clock() {
  Node::ClockParams p;
  p.granularity = 1_ns;
  return p;
}

Event srt_event(std::uint8_t tag, TimePoint deadline,
                TimePoint expiration = TimePoint::max()) {
  Event e;
  e.content = {tag};
  e.attributes.deadline = deadline;
  e.attributes.expiration = expiration;
  return e;
}

struct SrtFixture : ::testing::Test {
  TaskPool tasks;
  Scenario scn;
  Node* n1 = nullptr;
  Node* n2 = nullptr;
  Node* n3 = nullptr;
  std::vector<std::uint32_t> bus_order;  // successful frame ids in bus order

  void SetUp() override {
    n1 = &scn.add_node(1, perfect_clock());
    n2 = &scn.add_node(2, perfect_clock());
    n3 = &scn.add_node(3, perfect_clock());
    scn.bus().add_observer([this](const CanBus::FrameEvent& ev) {
      if (ev.success) bus_order.push_back(ev.frame.id);
    });
  }

  /// Occupies the bus with back-to-back exclusive-priority frames until
  /// `until` (simulated raw HRT-band traffic from node 7's controller is
  /// not needed — priority 0 raw frames do the job at bus level).
  void block_bus_until(TimePoint until) {
    auto& blocker = scn.add_node(7, perfect_clock());
    auto* pump = tasks.make();
    *pump = [this, until, &blocker, pump] {
      if (scn.sim().now() >= until) return;
      CanFrame f;
      f.id = encode_can_id({kHrtPriority, 7, 1000});
      f.dlc = 8;
      f.data.fill(0);
      (void)blocker.controller().submit(
          f, TxMode::kAutoRetransmit,
          [pump](auto, const CanFrame&, bool, TimePoint) { (*pump)(); });
    };
    (*pump)();
  }
};

// ------------------------------------------------------------- happy path

TEST_F(SrtFixture, PublishDeliversToSubscriber) {
  Srtec pub{n1->middleware()};
  Srtec sub{n2->middleware()};
  ASSERT_TRUE(pub.announce(subject_of("srt/data"), {}, nullptr).has_value());
  int notified = 0;
  ASSERT_TRUE(
      sub.subscribe(subject_of("srt/data"), {}, [&] { ++notified; }, nullptr)
          .has_value());

  Event e;
  e.content = {0x42};
  ASSERT_TRUE(pub.publish(std::move(e)).has_value());
  scn.run_for(1_ms);

  EXPECT_EQ(notified, 1);
  const auto got = sub.getEvent();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->content, (std::vector<std::uint8_t>{0x42}));
  EXPECT_EQ(n1->middleware().srt().counters().sent_by_deadline, 1u);
}

TEST_F(SrtFixture, MultipleSubscribersAllNotified) {
  Srtec pub{n1->middleware()};
  Srtec sub_a{n2->middleware()};
  Srtec sub_b{n3->middleware()};
  ASSERT_TRUE(pub.announce(subject_of("srt/data"), {}, nullptr).has_value());
  int a = 0;
  int b = 0;
  ASSERT_TRUE(sub_a.subscribe(subject_of("srt/data"), {}, [&] { ++a; }, nullptr)
                  .has_value());
  ASSERT_TRUE(sub_b.subscribe(subject_of("srt/data"), {}, [&] { ++b; }, nullptr)
                  .has_value());
  Event e;
  e.content = {1};
  ASSERT_TRUE(pub.publish(std::move(e)).has_value());
  scn.run_for(1_ms);
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
}

// ----------------------------------------------------------------- EDF order

TEST_F(SrtFixture, LocalQueueDrainsInDeadlineOrder) {
  Srtec pub{n1->middleware()};
  Srtec sub{n2->middleware()};
  ASSERT_TRUE(pub.announce(subject_of("srt/data"), {}, nullptr).has_value());
  ASSERT_TRUE(sub.subscribe(subject_of("srt/data"),
                            AttributeList{attr::QueueCapacity{8}}, nullptr,
                            nullptr)
                  .has_value());

  block_bus_until(TimePoint::origin() + 1_ms);
  const TimePoint t0 = TimePoint::origin();
  scn.sim().schedule_at(t0 + 100_us, [&] {
    ASSERT_TRUE(pub.publish(srt_event(0xA, t0 + 10_ms)).has_value());
    ASSERT_TRUE(pub.publish(srt_event(0xB, t0 + 5_ms)).has_value());
    ASSERT_TRUE(pub.publish(srt_event(0xC, t0 + 7_ms)).has_value());
  });
  scn.run_for(4_ms);

  // Delivery order follows deadlines: B, C, A.
  std::vector<std::uint8_t> tags;
  while (auto e = sub.getEvent()) tags.push_back(e->content[0]);
  EXPECT_EQ(tags, (std::vector<std::uint8_t>{0xB, 0xC, 0xA}));
  // B overtook A in the staged mailbox (one preemption).
  EXPECT_GE(n1->middleware().srt().counters().preemptions, 1u);
}

TEST_F(SrtFixture, GlobalEdfAcrossNodesViaPriorityBands) {
  Srtec pub1{n1->middleware()};
  Srtec pub2{n2->middleware()};
  Srtec sub{n3->middleware()};
  ASSERT_TRUE(pub1.announce(subject_of("srt/a"), {}, nullptr).has_value());
  ASSERT_TRUE(pub2.announce(subject_of("srt/b"), {}, nullptr).has_value());
  ASSERT_TRUE(sub.subscribe(subject_of("srt/a"), {}, nullptr, nullptr).has_value());

  block_bus_until(TimePoint::origin() + 1_ms);
  const TimePoint t0 = TimePoint::origin();
  scn.sim().schedule_at(t0 + 100_us, [&] {
    // Node 1 publishes a relaxed deadline, node 2 an urgent one.
    ASSERT_TRUE(pub1.publish(srt_event(1, t0 + 9_ms)).has_value());
    ASSERT_TRUE(pub2.publish(srt_event(2, t0 + 2_ms)).has_value());
  });
  scn.run_for(4_ms);

  // On the bus, node 2's urgent frame went first even though node 1 has the
  // lower TxNode: the deadline band dominates the identifier.
  std::vector<NodeId> srt_senders;
  for (std::uint32_t id : bus_order) {
    const auto f = decode_can_id(id);
    if (classify_priority(f.priority) == TrafficClass::kSrt)
      srt_senders.push_back(f.tx_node);
  }
  ASSERT_EQ(srt_senders.size(), 2u);
  EXPECT_EQ(srt_senders[0], 2);
  EXPECT_EQ(srt_senders[1], 1);
}

TEST_F(SrtFixture, SameBandDeadlinesResolveByTxNodeArbitrarily) {
  // The paper's Δt_p trade-off: two deadlines inside one priority slot are
  // ordered by the other identifier fields, i.e. possibly *against* EDF.
  Srtec pub1{n1->middleware()};
  Srtec pub2{n2->middleware()};
  ASSERT_TRUE(pub1.announce(subject_of("srt/a"), {}, nullptr).has_value());
  ASSERT_TRUE(pub2.announce(subject_of("srt/b"), {}, nullptr).has_value());

  block_bus_until(TimePoint::origin() + 1_ms);
  const TimePoint t0 = TimePoint::origin();
  scn.sim().schedule_at(t0 + 100_us, [&] {
    // Node 2's deadline is 1 ns earlier — same 160 us band at any instant;
    // node 1 wins on TxNode: a deadline inversion.
    ASSERT_TRUE(pub1.publish(srt_event(1, t0 + 5'050_us + 1_ns)).has_value());
    ASSERT_TRUE(pub2.publish(srt_event(2, t0 + 5'050_us)).has_value());
  });
  scn.run_for(4_ms);

  std::vector<NodeId> srt_senders;
  for (std::uint32_t id : bus_order) {
    const auto f = decode_can_id(id);
    if (classify_priority(f.priority) == TrafficClass::kSrt)
      srt_senders.push_back(f.tx_node);
  }
  ASSERT_EQ(srt_senders.size(), 2u);
  EXPECT_EQ(srt_senders[0], 1);  // inversion: later deadline sent first
}

// ------------------------------------------------------------- promotion

TEST_F(SrtFixture, QueuedMessagePromotedAsDeadlineApproaches) {
  Srtec pub{n1->middleware()};
  ASSERT_TRUE(pub.announce(subject_of("srt/data"), {}, nullptr).has_value());

  // Keep the bus saturated with exclusive-priority traffic for 3 ms.
  block_bus_until(TimePoint::origin() + 3_ms);
  const TimePoint t0 = TimePoint::origin();
  std::vector<Priority> observed_bands;
  scn.bus().add_observer([&](const CanBus::FrameEvent& ev) {
    const auto f = decode_can_id(ev.frame.id);
    if (classify_priority(f.priority) == TrafficClass::kSrt && ev.success)
      observed_bands.push_back(f.priority);
  });

  scn.sim().schedule_at(t0 + 100_us, [&] {
    ASSERT_TRUE(pub.publish(srt_event(1, t0 + 4_ms)).has_value());
  });
  scn.run_for(5_ms);

  // While blocked, the staged mailbox id was rewritten repeatedly.
  const auto& c = n1->middleware().srt().counters();
  EXPECT_GE(c.promotions, 5u);
  EXPECT_EQ(c.sent, 1u);
  // It went out at a band far more urgent than the initial mapping
  // (laxity 3.9 ms -> band ~25; at transmission laxity ~1 ms -> band ~7).
  ASSERT_EQ(observed_bands.size(), 1u);
  const auto& map = n1->middleware().srt().priority_map();
  EXPECT_LT(observed_bands[0],
            map.priority_for(t0 + 100_us, t0 + 4_ms));
}

// -------------------------------------------------- deadline miss and expiry

TEST_F(SrtFixture, DeadlineMissReportedButStillTransmitted) {
  Srtec pub{n1->middleware()};
  Srtec sub{n2->middleware()};
  std::vector<ChannelError> errors;
  ASSERT_TRUE(pub.announce(subject_of("srt/data"), {},
                           [&](const ExceptionInfo& e) {
                             errors.push_back(e.error);
                           })
                  .has_value());
  int delivered = 0;
  ASSERT_TRUE(
      sub.subscribe(subject_of("srt/data"), {}, [&] { ++delivered; }, nullptr)
          .has_value());

  block_bus_until(TimePoint::origin() + 2_ms);
  const TimePoint t0 = TimePoint::origin();
  scn.sim().schedule_at(t0 + 100_us, [&] {
    // Deadline 1 ms (inside the blockade), expiration 10 ms (after it).
    ASSERT_TRUE(pub.publish(srt_event(1, t0 + 1_ms, t0 + 10_ms)).has_value());
  });
  scn.run_for(5_ms);

  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0], ChannelError::kDeadlineMissed);
  EXPECT_EQ(delivered, 1);  // best effort: still delivered late
  const auto& c = n1->middleware().srt().counters();
  EXPECT_EQ(c.sent, 1u);
  EXPECT_EQ(c.sent_by_deadline, 0u);
  EXPECT_EQ(c.expired, 0u);
}

TEST_F(SrtFixture, ExpiredMessageDroppedFromSendQueue) {
  Srtec pub{n1->middleware()};
  Srtec sub{n2->middleware()};
  std::vector<ChannelError> errors;
  ASSERT_TRUE(pub.announce(subject_of("srt/data"), {},
                           [&](const ExceptionInfo& e) {
                             errors.push_back(e.error);
                           })
                  .has_value());
  int delivered = 0;
  ASSERT_TRUE(
      sub.subscribe(subject_of("srt/data"), {}, [&] { ++delivered; }, nullptr)
          .has_value());

  block_bus_until(TimePoint::origin() + 3_ms);
  const TimePoint t0 = TimePoint::origin();
  scn.sim().schedule_at(t0 + 100_us, [&] {
    // Both deadline and expiration fall inside the blockade.
    ASSERT_TRUE(pub.publish(srt_event(1, t0 + 1_ms, t0 + 2_ms)).has_value());
  });
  scn.run_for(6_ms);

  // kDeadlineMissed at 1 ms, kExpired at 2 ms; never transmitted.
  ASSERT_EQ(errors.size(), 2u);
  EXPECT_EQ(errors[0], ChannelError::kDeadlineMissed);
  EXPECT_EQ(errors[1], ChannelError::kExpired);
  EXPECT_EQ(delivered, 0);
  const auto& c = n1->middleware().srt().counters();
  EXPECT_EQ(c.sent, 0u);
  EXPECT_EQ(c.expired, 1u);
}

TEST_F(SrtFixture, ChannelDefaultsApplyWhenEventCarriesNone) {
  Srtec pub{n1->middleware()};
  std::vector<ChannelError> errors;
  ASSERT_TRUE(pub.announce(subject_of("srt/data"),
                           AttributeList{attr::Deadline{500_us},
                                         attr::Expiration{800_us}},
                           [&](const ExceptionInfo& e) {
                             errors.push_back(e.error);
                           })
                  .has_value());
  block_bus_until(TimePoint::origin() + 2_ms);
  scn.sim().schedule_at(TimePoint::origin() + 100_us, [&] {
    Event e;
    e.content = {1};
    ASSERT_TRUE(pub.publish(std::move(e)).has_value());  // defaults apply
  });
  scn.run_for(3_ms);
  // Deadline (600 us) and expiration (900 us) both inside the blockade.
  ASSERT_EQ(errors.size(), 2u);
  EXPECT_EQ(errors[0], ChannelError::kDeadlineMissed);
  EXPECT_EQ(errors[1], ChannelError::kExpired);
}

// --------------------------------------------------------------- validation

TEST_F(SrtFixture, ExpirationBeforeDeadlineRejected) {
  Srtec pub{n1->middleware()};
  ASSERT_TRUE(pub.announce(subject_of("srt/data"), {}, nullptr).has_value());
  const TimePoint t0 = scn.sim().now();
  const auto r = pub.publish(srt_event(1, t0 + 5_ms, t0 + 2_ms));
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error(), ChannelError::kInvalidAttribute);
}

TEST_F(SrtFixture, BadChannelAttributesRejected) {
  Srtec pub{n1->middleware()};
  const auto r = pub.announce(
      subject_of("srt/data"),
      AttributeList{attr::Deadline{5_ms}, attr::Expiration{2_ms}}, nullptr);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error(), ChannelError::kInvalidAttribute);
}

TEST_F(SrtFixture, OversizedPayloadRejected) {
  Srtec pub{n1->middleware()};
  ASSERT_TRUE(pub.announce(subject_of("srt/data"), {}, nullptr).has_value());
  Event e;
  e.content.assign(9, 0);
  const auto r = pub.publish(std::move(e));
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error(), ChannelError::kPayloadTooLarge);
}

// ------------------------------------------------------ priority relation

TEST_F(SrtFixture, PendingHrtAlwaysBeatsPendingSrt) {
  // Raw bus-level check of 0 <= P_HRT < P_SRT: stage both while the bus is
  // busy; the HRT frame must go first at the next arbitration.
  block_bus_until(TimePoint::origin() + 500_us);
  Srtec pub{n1->middleware()};
  ASSERT_TRUE(pub.announce(subject_of("srt/data"), {}, nullptr).has_value());
  scn.sim().schedule_at(TimePoint::origin() + 100_us, [&] {
    ASSERT_TRUE(
        pub.publish(srt_event(1, scn.sim().now() + 300_us)).has_value());
    CanFrame hrt;
    hrt.id = encode_can_id({kHrtPriority, 3, 999});
    hrt.dlc = 1;
    ASSERT_TRUE(
        n3->controller().submit(hrt, TxMode::kAutoRetransmit).has_value());
  });
  scn.run_for(2_ms);

  std::vector<TrafficClass> classes;
  for (std::uint32_t id : bus_order) {
    const auto f = decode_can_id(id);
    if (f.etag == 999 || classify_priority(f.priority) == TrafficClass::kSrt)
      classes.push_back(classify_priority(f.priority));
  }
  ASSERT_GE(classes.size(), 2u);
  EXPECT_EQ(classes[0], TrafficClass::kHrt);
  EXPECT_EQ(classes[1], TrafficClass::kSrt);
}

}  // namespace
}  // namespace rtec
