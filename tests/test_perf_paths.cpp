// Tests for the PR-2 hot-path optimisations: the cached mailbox wire-bit
// count (and its invalidation rule) and the deque-backed TaskPool.

#include <gtest/gtest.h>

#include <vector>

#include "canbus/bus.hpp"
#include "canbus/controller.hpp"
#include "canbus/frame.hpp"
#include "sim/simulator.hpp"
#include "util/task_pool.hpp"

namespace rtec {
namespace {

using literals::operator""_ms;

CanFrame frame_with(std::uint32_t id, int dlc, std::uint8_t fill) {
  CanFrame f;
  f.id = id;
  f.dlc = static_cast<std::uint8_t>(dlc);
  for (int i = 0; i < dlc; ++i) f.data[static_cast<std::size_t>(i)] = fill;
  return f;
}

TEST(MailboxWireBits, MatchesFrameWireBits) {
  Simulator sim;
  CanController ctl{sim, 1};
  for (int dlc : {0, 1, 4, 8}) {
    const CanFrame f = frame_with(0x2A0u + static_cast<std::uint32_t>(dlc),
                                  dlc, 0x55);
    auto mb = ctl.submit(f, TxMode::kSingleShot);
    ASSERT_TRUE(mb.has_value());
    EXPECT_EQ(ctl.mailbox_wire_bits(*mb), frame_wire_bits(f));
    // Second call hits the cache; value must be identical.
    EXPECT_EQ(ctl.mailbox_wire_bits(*mb), frame_wire_bits(f));
    ASSERT_TRUE(ctl.abort(*mb));
  }
}

TEST(MailboxWireBits, RewriteIdInvalidatesCache) {
  Simulator sim;
  CanController ctl{sim, 1};
  // Choose a payload where the arbitration-field bits change the stuffing
  // outcome: all-zero extended id vs a mixed one.
  const CanFrame f = frame_with(0x00000000u, 8, 0x00);
  auto mb = ctl.submit(f, TxMode::kAutoRetransmit);
  ASSERT_TRUE(mb.has_value());
  const int before = ctl.mailbox_wire_bits(*mb);
  EXPECT_EQ(before, frame_wire_bits(f));

  const std::uint32_t new_id = 0x15555555u;
  ASSERT_TRUE(ctl.rewrite_id(*mb, new_id));
  CanFrame rewritten = f;
  rewritten.id = new_id;
  const int after = ctl.mailbox_wire_bits(*mb);
  EXPECT_EQ(after, frame_wire_bits(rewritten));
  // The all-dominant id maximises stuffing; the rewritten one must differ —
  // this is what catches a stale cache.
  EXPECT_NE(before, after);
}

TEST(MailboxWireBits, MailboxReuseRecomputes) {
  Simulator sim;
  CanController ctl{sim, 1};
  const CanFrame small = frame_with(0x100u, 0, 0);
  const CanFrame big = frame_with(0x100u, 8, 0xFF);

  auto mb1 = ctl.submit(small, TxMode::kSingleShot);
  ASSERT_TRUE(mb1.has_value());
  const int small_bits = ctl.mailbox_wire_bits(*mb1);
  ASSERT_TRUE(ctl.abort(*mb1));

  // Resubmitting into the now-free mailbox must not see the old cache.
  auto mb2 = ctl.submit(big, TxMode::kSingleShot);
  ASSERT_TRUE(mb2.has_value());
  EXPECT_EQ(*mb1, *mb2);  // same physical mailbox recycled
  EXPECT_EQ(ctl.mailbox_wire_bits(*mb2), frame_wire_bits(big));
  EXPECT_NE(ctl.mailbox_wire_bits(*mb2), small_bits);
}

TEST(MailboxWireBits, BusTimingUnchangedByCache) {
  // End-to-end: the bus must compute the same end-of-frame times as the
  // uncached serialization (timing is derived from the same bit count).
  Simulator sim;
  CanBus bus{sim, BusConfig{}};
  CanController tx{sim, 1};
  CanController rx{sim, 2};
  bus.attach(tx);
  bus.attach(rx);
  const CanFrame f = frame_with(0x321u, 6, 0xA5);
  TimePoint eof = TimePoint::origin();
  int got = 0;
  rx.add_rx_listener([&](const CanFrame&, TimePoint t) {
    eof = t;
    ++got;
  });
  ASSERT_TRUE(tx.submit(f, TxMode::kAutoRetransmit).has_value());
  sim.run();
  ASSERT_EQ(got, 1);
  const Duration expected = BusConfig{}.bit_time() * frame_wire_bits(f);
  EXPECT_EQ((eof - TimePoint::origin()).ns(), expected.ns());
}

// The memoised arbitration candidate must track every mailbox state change
// (submit / abort / rewrite_id / release) — a stale cache would change
// arbitration winners and therefore whole traces.
TEST(ArbitrationCandidate, CacheTracksMailboxChanges) {
  Simulator sim;
  CanController ctl{sim, 1, CanController::Config{.tx_mailboxes = 4}};

  EXPECT_FALSE(ctl.arbitration_candidate().has_value());

  auto hi = ctl.submit(frame_with(0x300, 1, 0x11), TxMode::kSingleShot);
  ASSERT_TRUE(hi.has_value());
  ASSERT_TRUE(ctl.arbitration_candidate().has_value());
  EXPECT_EQ(*ctl.arbitration_candidate(), *hi);

  // A lower identifier must displace the cached winner immediately.
  auto lo = ctl.submit(frame_with(0x100, 1, 0x22), TxMode::kSingleShot);
  ASSERT_TRUE(lo.has_value());
  EXPECT_EQ(*ctl.arbitration_candidate(), *lo);

  // Rewriting the loser below the winner must flip the candidate.
  ASSERT_TRUE(ctl.rewrite_id(*hi, 0x050));
  EXPECT_EQ(*ctl.arbitration_candidate(), *hi);

  // Aborting the winner must fall back to the remaining mailbox.
  ASSERT_TRUE(ctl.abort(*hi));
  EXPECT_EQ(*ctl.arbitration_candidate(), *lo);

  ASSERT_TRUE(ctl.abort(*lo));
  EXPECT_FALSE(ctl.arbitration_candidate().has_value());
}

TEST(ArbitrationCandidate, CandidateClearedWhenMailboxFires) {
  Simulator sim;
  CanBus bus{sim, BusConfig{}};
  CanController ctl{sim, 1};
  bus.attach(ctl);
  int results = 0;
  auto mb = ctl.submit(frame_with(0x123, 4, 0xAB), TxMode::kSingleShot,
                       [&](auto, const CanFrame&, bool ok, TimePoint) {
                         EXPECT_TRUE(ok);
                         ++results;
                       });
  ASSERT_TRUE(mb.has_value());
  sim.run();
  EXPECT_EQ(results, 1);
  // The transmission released the mailbox; the cache must not resurrect it.
  EXPECT_FALSE(ctl.arbitration_candidate().has_value());
}

TEST(FrameTailBits, ConstantMatchesCanSpec) {
  // CRC delimiter + ACK slot + ACK delimiter + 7-bit EOF.
  EXPECT_EQ(kFrameTailBits, 10);
}

TEST(TaskPool, AddressesStableAcrossGrowth) {
  TaskPool pool;
  std::vector<std::function<void()>*> ptrs;
  int counter = 0;
  for (int i = 0; i < 1000; ++i) {
    auto* t = pool.make();
    *t = [&counter] { ++counter; };
    ptrs.push_back(t);
  }
  EXPECT_EQ(pool.size(), 1000u);
  // Every pointer handed out earlier must still be valid and callable.
  for (auto* t : ptrs) (*t)();
  EXPECT_EQ(counter, 1000);
}

TEST(TaskPool, SelfReschedulingTaskSurvivesPoolGrowth) {
  Simulator sim;
  TaskPool pool;
  int ticks = 0;
  auto* loop = pool.make();
  *loop = [&] {
    ++ticks;
    // Grow the pool from inside the task — the `loop` pointer must stay
    // valid (deque storage never relocates existing elements).
    *pool.make() = [] {};
    if (ticks < 5) sim.schedule_after(1_ms, [loop] { (*loop)(); });
  };
  (*loop)();
  sim.run();
  EXPECT_EQ(ticks, 5);
  EXPECT_EQ(pool.size(), 6u);
}

}  // namespace
}  // namespace rtec
