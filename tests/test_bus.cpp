#include <gtest/gtest.h>

#include <vector>

#include "canbus/bus.hpp"
#include "canbus/controller.hpp"
#include "canbus/fault.hpp"
#include "sim/simulator.hpp"

namespace rtec {
namespace {

using literals::operator""_us;
using literals::operator""_ms;

CanFrame make_frame(std::uint32_t id, std::uint8_t dlc = 0) {
  CanFrame f;
  f.id = id;
  f.extended = true;
  f.dlc = dlc;
  return f;
}

struct BusFixture : ::testing::Test {
  Simulator sim;
  CanBus bus{sim, BusConfig{1'000'000}};
  CanController a{sim, 1};
  CanController b{sim, 2};
  CanController c{sim, 3};
  std::vector<CanBus::FrameEvent> events;

  void SetUp() override {
    bus.attach(a);
    bus.attach(b);
    bus.attach(c);
    bus.add_observer([this](const CanBus::FrameEvent& ev) { events.push_back(ev); });
  }
};

// ----------------------------------------------------------------- basic TX

TEST_F(BusFixture, SingleFrameDeliveredToAllOthers) {
  int rx_b = 0;
  int rx_c = 0;
  b.add_rx_listener([&](const CanFrame& f, TimePoint) {
    EXPECT_EQ(f.id, 0x100u);
    ++rx_b;
  });
  c.add_rx_listener([&](const CanFrame&, TimePoint) { ++rx_c; });

  bool tx_ok = false;
  ASSERT_TRUE(a.submit(make_frame(0x100, 4), TxMode::kAutoRetransmit,
                       [&](auto, const CanFrame&, bool ok, TimePoint) {
                         tx_ok = ok;
                       })
                  .has_value());
  sim.run();
  EXPECT_TRUE(tx_ok);
  EXPECT_EQ(rx_b, 1);
  EXPECT_EQ(rx_c, 1);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(events[0].success);
  // Sender must not hear its own frame.
  EXPECT_EQ(events[0].sender, 1);
}

TEST_F(BusFixture, TransmissionTakesExactWireBits) {
  const CanFrame f = make_frame(0x123, 8);
  (void)a.submit(f, TxMode::kAutoRetransmit);
  sim.run();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ((events[0].end - events[0].start).ns(),
            frame_wire_bits(f) * 1000);
}

// -------------------------------------------------------------- arbitration

TEST_F(BusFixture, LowestIdWinsSimultaneousArbitration) {
  (void)b.submit(make_frame(0x200), TxMode::kAutoRetransmit);
  (void)a.submit(make_frame(0x100), TxMode::kAutoRetransmit);
  (void)c.submit(make_frame(0x300), TxMode::kAutoRetransmit);
  sim.run();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].frame.id, 0x100u);
  EXPECT_EQ(events[1].frame.id, 0x200u);
  EXPECT_EQ(events[2].frame.id, 0x300u);
}

TEST_F(BusFixture, OngoingTransmissionIsNotPreempted) {
  (void)a.submit(make_frame(0x500, 8), TxMode::kAutoRetransmit);
  // Higher-priority frame arrives mid-transmission: must wait.
  sim.schedule_after(20_us, [&] {
    (void)b.submit(make_frame(0x001), TxMode::kAutoRetransmit);
  });
  sim.run();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].frame.id, 0x500u);
  EXPECT_EQ(events[1].frame.id, 0x001u);
  // The second starts only after frame + 3-bit intermission.
  EXPECT_GE((events[1].start - events[0].end).ns(), 3000);
}

TEST_F(BusFixture, IntermissionSeparatesFrames) {
  (void)a.submit(make_frame(0x100), TxMode::kAutoRetransmit);
  (void)b.submit(make_frame(0x200), TxMode::kAutoRetransmit);
  sim.run();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ((events[1].start - events[0].end).ns(), 3000);  // 3 bit times
}

TEST_F(BusFixture, RequestDuringIntermissionJoinsNextArbitration) {
  (void)a.submit(make_frame(0x100), TxMode::kAutoRetransmit);
  (void)b.submit(make_frame(0x300), TxMode::kAutoRetransmit);
  sim.run_until(TimePoint::origin() + 1_us);
  // Frame 0x100 is on the wire. Submit 0x200 now: at the next arbitration
  // it must beat 0x300.
  (void)c.submit(make_frame(0x200), TxMode::kAutoRetransmit);
  sim.run();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[1].frame.id, 0x200u);
  EXPECT_EQ(events[2].frame.id, 0x300u);
}

TEST_F(BusFixture, MultipleMailboxesOfferLowestId) {
  (void)a.submit(make_frame(0x400), TxMode::kAutoRetransmit);
  (void)a.submit(make_frame(0x150), TxMode::kAutoRetransmit);
  (void)b.submit(make_frame(0x200), TxMode::kAutoRetransmit);
  sim.run();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].frame.id, 0x150u);
  EXPECT_EQ(events[1].frame.id, 0x200u);
  EXPECT_EQ(events[2].frame.id, 0x400u);
}

// ----------------------------------------------------------- mailbox control

TEST_F(BusFixture, AbortPendingMailboxSucceeds) {
  (void)a.submit(make_frame(0x100, 8), TxMode::kAutoRetransmit);
  const auto mb = b.submit(make_frame(0x200), TxMode::kAutoRetransmit);
  ASSERT_TRUE(mb.has_value());
  // While 0x100 is on the wire, 0x200 is only pending: abort must work.
  sim.run_until(TimePoint::origin() + 10_us);
  EXPECT_TRUE(b.abort(*mb));
  sim.run();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].frame.id, 0x100u);
}

TEST_F(BusFixture, AbortTransmittingMailboxFails) {
  const auto mb = a.submit(make_frame(0x100, 8), TxMode::kAutoRetransmit);
  ASSERT_TRUE(mb.has_value());
  sim.run_until(TimePoint::origin() + 10_us);  // mid-frame
  EXPECT_FALSE(a.abort(*mb));
  sim.run();
  EXPECT_EQ(events.size(), 1u);
}

TEST_F(BusFixture, RewriteIdChangesArbitrationOutcome) {
  (void)a.submit(make_frame(0x100, 8), TxMode::kAutoRetransmit);
  const auto mb = b.submit(make_frame(0x500), TxMode::kAutoRetransmit);
  (void)c.submit(make_frame(0x300), TxMode::kAutoRetransmit);
  ASSERT_TRUE(mb.has_value());
  sim.run_until(TimePoint::origin() + 10_us);
  // Promote b's frame below c's: b should now beat c at the next point.
  EXPECT_TRUE(b.rewrite_id(*mb, 0x200));
  sim.run();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[1].frame.id, 0x200u);
  EXPECT_EQ(events[2].frame.id, 0x300u);
}

TEST_F(BusFixture, NoFreeMailboxReported) {
  for (std::size_t i = 0; i < 4; ++i)
    ASSERT_TRUE(a.submit(make_frame(0x100 + static_cast<std::uint32_t>(i)),
                         TxMode::kAutoRetransmit)
                    .has_value());
  const auto r = a.submit(make_frame(0x600), TxMode::kAutoRetransmit);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error(), TxError::kNoFreeMailbox);
}

// ------------------------------------------------------------------- faults

TEST_F(BusFixture, CorruptedFrameConsistentlyDropped) {
  ScriptedFaults faults;
  faults.add_rule([](const FaultContext& ctx) { return ctx.attempt == 1; });
  bus.set_fault_model(&faults);

  int rx = 0;
  b.add_rx_listener([&](const CanFrame&, TimePoint) { ++rx; });
  (void)a.submit(make_frame(0x100, 2), TxMode::kAutoRetransmit);
  sim.run();
  // Attempt 1 corrupted (no delivery), attempt 2 clean.
  ASSERT_EQ(events.size(), 2u);
  EXPECT_FALSE(events[0].success);
  EXPECT_TRUE(events[1].success);
  EXPECT_EQ(rx, 1);
}

TEST_F(BusFixture, SingleShotReportsFailureWithoutRetry) {
  ScriptedFaults faults;
  faults.add_rule([](const FaultContext&) { return true; });
  bus.set_fault_model(&faults);

  bool reported = false;
  bool reported_ok = true;
  (void)a.submit(make_frame(0x100), TxMode::kSingleShot,
                 [&](auto, const CanFrame&, bool ok, TimePoint) {
                   reported = true;
                   reported_ok = ok;
                 });
  sim.run();
  EXPECT_TRUE(reported);
  EXPECT_FALSE(reported_ok);
  EXPECT_EQ(events.size(), 1u);  // exactly one attempt
}

TEST_F(BusFixture, ErrorFrameOccupiesBusTime) {
  ScriptedFaults faults;
  faults.add_rule([](const FaultContext& ctx) { return ctx.attempt == 1; });
  bus.set_fault_model(&faults);
  (void)a.submit(make_frame(0x100, 8), TxMode::kAutoRetransmit);
  sim.run();
  ASSERT_EQ(events.size(), 2u);
  // The corrupted attempt still burned bus time (error position + error
  // frame), and the retry started after an intermission.
  EXPECT_GT((events[0].end - events[0].start).ns(), 0);
  EXPECT_GE((events[1].start - events[0].end).ns(), 3000);
  EXPECT_GT(bus.error_time().ns(), 0);
  EXPECT_EQ(bus.frames_error(), 1u);
  EXPECT_EQ(bus.frames_ok(), 1u);
}

TEST_F(BusFixture, BurstFaultsWindow) {
  BurstFaults faults{TimePoint::origin(), TimePoint::origin() + 500_us};
  bus.set_fault_model(&faults);
  (void)a.submit(make_frame(0x100), TxMode::kAutoRetransmit);
  sim.run();
  // Retries during the burst all fail; first attempt after 500 us passes.
  ASSERT_GE(events.size(), 2u);
  EXPECT_TRUE(events.back().success);
  EXPECT_GE(events.back().start.ns(), 500'000);
  for (std::size_t i = 0; i + 1 < events.size(); ++i)
    EXPECT_FALSE(events[i].success);
}

// ----------------------------------------------------------- error counters

TEST_F(BusFixture, TecRisesAndRecovers) {
  ScriptedFaults faults;
  faults.add_rule([](const FaultContext& ctx) { return ctx.attempt <= 3; });
  bus.set_fault_model(&faults);
  (void)a.submit(make_frame(0x100), TxMode::kAutoRetransmit);
  sim.run();
  // 3 failures (+8 each) then one success (-1).
  EXPECT_EQ(a.tec(), 23);
  EXPECT_FALSE(a.bus_off());
}

TEST_F(BusFixture, BusOffAfterPersistentErrors) {
  ScriptedFaults faults;
  faults.add_rule([](const FaultContext&) { return true; });
  bus.set_fault_model(&faults);
  bool final_report = true;
  (void)a.submit(make_frame(0x100), TxMode::kAutoRetransmit,
                 [&](auto, const CanFrame&, bool ok, TimePoint) {
                   final_report = ok;
                 });
  sim.run();
  EXPECT_TRUE(a.bus_off());
  EXPECT_FALSE(final_report);  // owner told the submission died
  // 256/8 = 32 failed attempts.
  EXPECT_EQ(events.size(), 32u);
  // Further submissions rejected until reset.
  EXPECT_FALSE(a.submit(make_frame(0x100), TxMode::kAutoRetransmit).has_value());
  a.reset_errors();
  EXPECT_TRUE(a.submit(make_frame(0x100), TxMode::kAutoRetransmit).has_value());
}

// -------------------------------------------------------------------- filters

TEST_F(BusFixture, AcceptanceFiltersSelectFrames) {
  int rx = 0;
  b.add_acceptance_filter({0x100, 0x7fff0000});  // match high bits of 0x100?
  b.clear_acceptance_filters();
  b.add_acceptance_filter({0x100, 0x1fffffff});  // exact match
  b.add_rx_listener([&](const CanFrame&, TimePoint) { ++rx; });
  (void)a.submit(make_frame(0x100), TxMode::kAutoRetransmit);
  (void)a.submit(make_frame(0x200), TxMode::kAutoRetransmit);
  sim.run();
  EXPECT_EQ(rx, 1);
}

TEST_F(BusFixture, MaskedFilterMatchesGroup) {
  int rx = 0;
  // Accept any id whose top byte (bits 28..21) equals 0x01.
  b.add_acceptance_filter({0x1u << 21, 0xffu << 21});
  b.add_rx_listener([&](const CanFrame&, TimePoint) { ++rx; });
  (void)a.submit(make_frame((0x1u << 21) | 5), TxMode::kAutoRetransmit);
  (void)a.submit(make_frame((0x2u << 21) | 5), TxMode::kAutoRetransmit);
  (void)a.submit(make_frame((0x1u << 21) | 9), TxMode::kAutoRetransmit);
  sim.run();
  EXPECT_EQ(rx, 2);
}

// ---------------------------------------------------------------- node crash

TEST_F(BusFixture, OfflineNodeNeitherSendsNorReceives) {
  int rx = 0;
  b.add_rx_listener([&](const CanFrame&, TimePoint) { ++rx; });
  b.set_online(false);
  (void)a.submit(make_frame(0x100), TxMode::kAutoRetransmit);
  EXPECT_FALSE(b.submit(make_frame(0x200), TxMode::kAutoRetransmit).has_value());
  sim.run();
  EXPECT_EQ(rx, 0);
  b.set_online(true);
  (void)a.submit(make_frame(0x101), TxMode::kAutoRetransmit);
  sim.run();
  EXPECT_EQ(rx, 1);
}

// ----------------------------------------------------------------- accounting

TEST_F(BusFixture, UtilizationAccounting) {
  (void)a.submit(make_frame(0x100, 8), TxMode::kAutoRetransmit);
  sim.run();
  const Duration busy = bus.busy_time();
  EXPECT_GT(busy.ns(), 0);
  sim.run_until(TimePoint::origin() + 1_ms);
  EXPECT_NEAR(bus.utilization(),
              static_cast<double>(busy.ns()) / 1e6, 1e-9);
}

}  // namespace
}  // namespace rtec
