#include <gtest/gtest.h>

#include <algorithm>

#include "core/hrtec.hpp"
#include "core/scenario.hpp"
#include "core/srtec.hpp"

/// The whole stack parameterized over the bus bit rate: every timing
/// quantity (ΔT_wait, WCTT, slot windows, frame durations) derives from
/// the configured bit time, so the guarantees must hold identically at
/// the classic CAN rates 125/250/500/1000 kbit/s.

namespace rtec {
namespace {

using literals::operator""_ns;
using literals::operator""_us;
using literals::operator""_ms;

class BitrateSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(BitrateSweep, HrtPipelineHoldsAtEveryRate) {
  const std::int64_t bps = GetParam();
  Scenario::Config cfg;
  cfg.bus.bitrate_bps = bps;
  // Slower buses need longer rounds: scale with the bit time.
  const std::int64_t scale = 1'000'000 / bps;
  cfg.calendar.round_length = 10_ms * scale;
  Scenario scn{cfg};
  Node::ClockParams perfect;
  perfect.granularity = 1_ns;
  Node& pub_node = scn.add_node(1, perfect);
  Node& sub_node = scn.add_node(2, perfect);

  const Subject subject = subject_of("rate/hrt");
  SlotSpec slot;
  slot.lst_offset = 2_ms * scale;
  slot.dlc = 8;
  slot.fault.omission_degree = 1;
  slot.etag = *scn.binding().bind(subject);
  slot.publisher = pub_node.id();
  const auto idx = scn.calendar().reserve(slot);
  ASSERT_TRUE(idx.has_value());

  // ΔT_wait and the slot window scale inversely with the bit rate.
  EXPECT_EQ(scn.calendar().t_wait().ns(), 160'000 * scale);
  const SlotTiming t = scn.calendar().timing(*idx);
  EXPECT_EQ((t.deadline_offset - t.lst_offset).ns(),
            hrt_wctt(8, {1}, cfg.bus).ns());

  Hrtec pub{pub_node.middleware()};
  Hrtec sub{sub_node.middleware()};
  ASSERT_TRUE(pub.announce(subject, {}, nullptr).has_value());
  std::vector<TimePoint> deliveries;
  ASSERT_TRUE(sub.subscribe(subject, AttributeList{attr::QueueCapacity{8}},
                            [&] {
                              (void)sub.getEvent();
                              deliveries.push_back(sub_node.clock().now());
                            },
                            nullptr)
                  .has_value());

  // guaranteed_latency reflects the rate-scaled window.
  const auto latency = pub.guaranteed_latency();
  ASSERT_TRUE(latency.has_value());
  EXPECT_EQ(latency->ns(), (t.deadline_offset - t.ready_offset).ns());

  // Two rounds of publications, delivered exactly at the deadlines.
  for (int r = 0; r < 2; ++r) {
    scn.sim().schedule_at(TimePoint::origin() + cfg.calendar.round_length * r,
                          [&pub] {
                            Event e;
                            e.content = {1, 2, 3, 4, 5, 6, 7, 8};
                            (void)pub.publish(std::move(e));
                          });
  }
  scn.run_for(cfg.calendar.round_length * 2 + 1_ms);
  ASSERT_EQ(deliveries.size(), 2u);
  const auto first =
      scn.calendar().instance_at_or_after(*idx, TimePoint::origin());
  EXPECT_EQ(deliveries[0].ns(), first.deadline.ns());
  EXPECT_EQ(deliveries[1].ns(),
            (first.deadline + cfg.calendar.round_length).ns());
}

TEST_P(BitrateSweep, SrtDeliveryScalesWithFrameTime) {
  const std::int64_t bps = GetParam();
  Scenario::Config cfg;
  cfg.bus.bitrate_bps = bps;
  Scenario scn{cfg};
  Node::ClockParams perfect;
  perfect.granularity = 1_ns;
  Node& a = scn.add_node(1, perfect);
  Node& b = scn.add_node(2, perfect);
  Srtec pub{a.middleware()};
  Srtec sub{b.middleware()};
  ASSERT_TRUE(pub.announce(subject_of("rate/srt"),
                           AttributeList{attr::Deadline{100_ms}}, nullptr)
                  .has_value());
  TimePoint delivered_at;
  ASSERT_TRUE(sub.subscribe(subject_of("rate/srt"), {},
                            [&] {
                              (void)sub.getEvent();
                              delivered_at = scn.sim().now();
                            },
                            nullptr)
                  .has_value());
  Event e;
  e.content.assign(8, 0xAA);
  CanFrame probe;
  probe.id = encode_can_id({250, 1, 4});
  probe.dlc = 8;
  probe.data.fill(0xAA);
  const Duration expected = frame_duration(probe, cfg.bus);
  ASSERT_TRUE(pub.publish(std::move(e)).has_value());
  scn.run_for(Duration::seconds(1));
  // Idle bus: delivery happens exactly one frame duration after publish
  // (the initial band happens to match the probe's only in length terms —
  // stuffing depends only on payload + id bit pattern; allow the id
  // difference a couple of stuff bits of slack).
  EXPECT_NEAR(static_cast<double>((delivered_at - TimePoint::origin()).ns()),
              static_cast<double>(expected.ns()),
              static_cast<double>(4 * cfg.bus.bit_time().ns()));
}

INSTANTIATE_TEST_SUITE_P(ClassicRates, BitrateSweep,
                         ::testing::Values(125'000, 250'000, 500'000,
                                           1'000'000));

}  // namespace
}  // namespace rtec
