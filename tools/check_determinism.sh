#!/usr/bin/env bash
# Determinism source lint: the simulator's contract is bit-identical event
# ordering for a given seed, across shard and thread counts. That breaks
# the moment simulation code consults a wall clock, an unseeded RNG, or
# iterates an unordered container into anything order-sensitive. This
# script greps the order-critical sources for those hazard patterns and
# fails with file:line diagnostics when one appears.
#
# Allowlist: a hazard line carrying a justification comment of the form
#     ... // determinism: <why this use cannot affect event ordering>
# is accepted. The justification is mandatory prose, not a bare tag — a
# reviewer must be able to read why the use is safe.
#
# Usage: tools/check_determinism.sh [repo-root]   (defaults to cwd)

set -u

root="${1:-.}"
cd "$root" || exit 2

# Order-critical trees: the event kernel, shard engine and topology
# generator (src/sim), the bus arbitration model (src/canbus), the
# protocol engines (src/core), the offline schedulers and the analytic
# probabilistic engine (src/sched — rtec_verify --prob results must be
# reproducible bit-for-bit), the periodic-task clocks (src/time) and the
# static verifier (src/analysis — its reports are golden-tested), and the
# streaming trace consumers (src/trace — the anomaly detectors run inside
# the simulation and feed the byte-identity differential tests).
# Bench/tools/tests may use host facilities freely; they never run inside
# a simulation.
dirs="src/sim src/canbus src/core src/sched src/time src/analysis src/trace"
for d in $dirs; do
  if [ ! -d "$d" ]; then
    echo "check_determinism: missing directory $d (run from the repo root)" >&2
    exit 2
  fi
done

allow='// determinism:'
status=0

scan() {
  local pattern="$1" why="$2"
  local hits
  hits=$(grep -rnE --include='*.cpp' --include='*.hpp' "$pattern" $dirs |
    grep -vF "$allow")
  if [ -n "$hits" ]; then
    status=1
    echo "error: $why" >&2
    echo "$hits" | sed 's/^/  /' >&2
    echo "  (allowlist with a trailing '$allow <justification>' comment)" >&2
  fi
}

scan '\b(std::)?rand\(|\bsrand\(|std::random_device|std::mt19937' \
  'unseeded/libc randomness in simulation code — use util/random.hpp Rng with an explicit seed'

scan 'std::time\b|\btime\(NULL\)|\btime\(nullptr\)|gettimeofday|clock_gettime|localtime|gmtime' \
  'wall-clock time in simulation code — all time must come from the simulated clock'

scan 'std::chrono::(system_clock|steady_clock|high_resolution_clock)' \
  'host chrono clock in simulation code — all time must come from the simulated clock'

scan 'std::unordered_(map|set|multimap|multiset)' \
  'unordered container in order-critical code — iteration order is implementation-defined and can leak into event ordering; use std::map/std::set or a vector'

if [ "$status" -eq 0 ]; then
  echo "check_determinism: OK ($dirs)"
fi
exit "$status"
