#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "tool_io.hpp"
#include "trace/binary.hpp"

/// \file rtec_trace.cpp
/// rtec_trace — inspect, convert and compare RTEB binary traces
/// (trace/binary.hpp; format spec in docs/observability.md).
///
///   rtec_trace inspect <trace.rteb>            one line per record
///   rtec_trace stats <trace.rteb>              aggregate summary
///   rtec_trace to-candump <trace.rteb> [iface] candump text on stdout
///   rtec_trace from-candump <log> [network]    RTEB stream on stdout
///   rtec_trace diff <a.rteb> <b.rteb>          first divergent record
///
/// Exit codes follow the repo's CLI convention: 0 success, 1 a
/// content-level failure (corrupt trace, traces differ), 2 usage / I/O.
/// Every record a trace contains is decoded — a structural defect aborts
/// with the reader's byte-offset diagnostic instead of a shortened
/// listing.

namespace {

using rtec::trace::RtebReader;
using rtec::trace::RtebRecord;

int usage() {
  std::fprintf(stderr,
               "usage: rtec_trace inspect <trace.rteb>\n"
               "       rtec_trace stats <trace.rteb>\n"
               "       rtec_trace to-candump <trace.rteb> [iface]\n"
               "       rtec_trace from-candump <candump.log> [network]\n"
               "       rtec_trace diff <a.rteb> <b.rteb>\n");
  return 2;
}

/// Renders one decoded record as a stable single line (inspect and diff
/// share it, so diff messages look like inspect output).
std::string format_record(const RtebRecord& r) {
  char buf[256];
  switch (r.kind) {
    case rtec::trace::RtebKind::kFrame: {
      const auto& f = r.frame;
      std::string data;
      if (f.frame.rtr) {
        data = "R";
      } else {
        for (std::uint8_t i = 0; i < f.frame.dlc; ++i) {
          char b[4];
          std::snprintf(b, sizeof b, "%02X", f.frame.data[i]);
          data += b;
        }
      }
      std::snprintf(buf, sizeof buf,
                    "frame t=%" PRId64 "ns id=0x%X%s sender=%u dlc=%u"
                    " data=%s %s%s wire_bits=%d attempt=%d",
                    f.at.ns(), f.frame.id, f.frame.extended ? "x" : "",
                    static_cast<unsigned>(f.sender),
                    static_cast<unsigned>(f.frame.dlc), data.c_str(),
                    f.success ? "ok" : "error",
                    f.collision ? " collision" : "", f.wire_bits, f.attempt);
      return buf;
    }
    case rtec::trace::RtebKind::kAlarm: {
      const auto& a = r.alarm;
      std::snprintf(buf, sizeof buf,
                    "alarm t=%" PRId64 "ns detector=%s id=0x%X score=%.17g%s",
                    a.at.ns(), a.detector.c_str(), a.id, a.score,
                    a.unknown_id ? " unknown-id" : "");
      return buf;
    }
    case rtec::trace::RtebKind::kHandoff: {
      const auto& h = r.handoff;
      std::snprintf(buf, sizeof buf,
                    "handoff send=%" PRId64 "ns release=%" PRId64
                    "ns channel=%u seq=%" PRIu64,
                    h.send.ns(), h.release.ns(), h.channel, h.seq);
      return buf;
    }
    default: return "unknown";
  }
}

int fail_reader(const std::string& path, const std::string& error) {
  std::fprintf(stderr, "rtec_trace: %s: %s\n", path.c_str(), error.c_str());
  return 1;
}

int cmd_inspect(const std::string& path, const std::string& data) {
  auto reader = RtebReader::open(data);
  if (!reader) return fail_reader(path, reader.error());
  std::printf("RTEB v%u network=%u %zu bytes\n", reader->version(),
              reader->network(), data.size());
  std::uint64_t i = 0;
  for (;;) {
    auto rec = reader->next();
    if (!rec) return fail_reader(path, rec.error());
    if (!rec->has_value()) break;
    std::printf("[%" PRIu64 "] %s\n", i++, format_record(**rec).c_str());
  }
  std::printf("%" PRIu64 " record(s)\n", i);
  return 0;
}

int cmd_stats(const std::string& path, const std::string& data) {
  auto reader = RtebReader::open(data);
  if (!reader) return fail_reader(path, reader.error());
  std::uint64_t records = 0, frames = 0, ok = 0, errors = 0, collisions = 0;
  std::uint64_t alarms = 0, unknown_id = 0, handoffs = 0;
  std::set<std::uint32_t> ids, channels;
  std::set<std::string> detectors;
  std::int64_t t_min = 0, t_max = 0;
  bool any_time = false;
  for (;;) {
    auto rec = reader->next();
    if (!rec) return fail_reader(path, rec.error());
    if (!rec->has_value()) break;
    const RtebRecord& r = **rec;
    ++records;
    std::int64_t t = 0;
    switch (r.kind) {
      case rtec::trace::RtebKind::kFrame:
        ++frames;
        if (r.frame.success) ++ok; else ++errors;
        if (r.frame.collision) ++collisions;
        ids.insert(r.frame.frame.id);
        t = r.frame.at.ns();
        break;
      case rtec::trace::RtebKind::kAlarm:
        ++alarms;
        if (r.alarm.unknown_id) ++unknown_id;
        detectors.insert(r.alarm.detector);
        t = r.alarm.at.ns();
        break;
      default:
        ++handoffs;
        channels.insert(r.handoff.channel);
        t = r.handoff.send.ns();
        break;
    }
    if (!any_time || t < t_min) t_min = t;
    if (!any_time || t > t_max) t_max = t;
    any_time = true;
  }
  std::printf("RTEB v%u network=%u\n", reader->version(), reader->network());
  std::printf("bytes: %zu, records: %" PRIu64 ", bytes/record: %.2f\n",
              data.size(), records,
              records > 0 ? static_cast<double>(data.size()) /
                                static_cast<double>(records)
                          : 0.0);
  std::printf("frames: %" PRIu64 " (ok %" PRIu64 ", error %" PRIu64
              ", collision %" PRIu64 "), unique ids: %zu\n",
              frames, ok, errors, collisions, ids.size());
  std::printf("alarms: %" PRIu64 " (unknown-id %" PRIu64
              ", detectors: %zu)\n",
              alarms, unknown_id, detectors.size());
  std::printf("handoffs: %" PRIu64 " (channels: %zu)\n", handoffs,
              channels.size());
  if (any_time)
    std::printf("span: %" PRId64 "ns .. %" PRId64 "ns\n", t_min, t_max);
  return 0;
}

int cmd_to_candump(const std::string& path, const std::string& data,
                   const std::string& iface) {
  const auto text = rtec::trace::rteb_to_candump(data, iface);
  if (!text) return fail_reader(path, text.error());
  std::fwrite(text->data(), 1, text->size(), stdout);
  return 0;
}

int cmd_from_candump(const std::string& text, std::uint16_t network) {
  std::size_t skipped = 0;
  const std::string rteb = rtec::trace::rteb_from_candump(text, network,
                                                          &skipped);
  if (skipped > 0)
    std::fprintf(stderr, "rtec_trace: skipped %zu malformed line(s)\n",
                 skipped);
  std::fwrite(rteb.data(), 1, rteb.size(), stdout);
  return 0;
}

int cmd_diff(const std::string& path_a, const std::string& data_a,
             const std::string& path_b, const std::string& data_b) {
  auto a = RtebReader::open(data_a);
  if (!a) return fail_reader(path_a, a.error());
  auto b = RtebReader::open(data_b);
  if (!b) return fail_reader(path_b, b.error());
  std::uint64_t i = 0;
  for (;; ++i) {
    auto ra = a->next();
    if (!ra) return fail_reader(path_a, ra.error());
    auto rb = b->next();
    if (!rb) return fail_reader(path_b, rb.error());
    const bool ea = !ra->has_value();
    const bool eb = !rb->has_value();
    if (ea && eb) break;
    if (ea != eb) {
      std::printf("traces diverge at record %" PRIu64 ": %s ends, %s has %s\n",
                  i, (ea ? path_a : path_b).c_str(),
                  (ea ? path_b : path_a).c_str(),
                  format_record(ea ? **rb : **ra).c_str());
      return 1;
    }
    const std::string la = format_record(**ra);
    const std::string lb = format_record(**rb);
    if (la != lb) {
      std::printf("traces diverge at record %" PRIu64 ":\n  a: %s\n  b: %s\n",
                  i, la.c_str(), lb.c_str());
      return 1;
    }
  }
  std::printf("identical: %" PRIu64 " record(s)\n", i);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  std::string error;
  const auto input = rtec::tools::slurp_file(argv[2], error);
  if (!input) {
    std::fprintf(stderr, "rtec_trace: %s\n", error.c_str());
    return 2;
  }
  if (cmd == "inspect" && argc == 3) return cmd_inspect(argv[2], *input);
  if (cmd == "stats" && argc == 3) return cmd_stats(argv[2], *input);
  if (cmd == "to-candump" && (argc == 3 || argc == 4))
    return cmd_to_candump(argv[2], *input, argc == 4 ? argv[3] : "can0");
  if (cmd == "from-candump" && (argc == 3 || argc == 4)) {
    long network = 0;
    if (argc == 4) {
      char* end = nullptr;
      network = std::strtol(argv[3], &end, 10);
      if (end == argv[3] || *end != '\0' || network < 0 || network > 0xFFFF)
        return usage();
    }
    return cmd_from_candump(*input, static_cast<std::uint16_t>(network));
  }
  if (cmd == "diff" && argc == 4) {
    const auto other = rtec::tools::slurp_file(argv[3], error);
    if (!other) {
      std::fprintf(stderr, "rtec_trace: %s\n", error.c_str());
      return 2;
    }
    return cmd_diff(argv[2], *input, argv[3], *other);
  }
  return usage();
}
