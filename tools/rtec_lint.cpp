// rtec_lint — static calendar/scenario verifier (analysis/lint.hpp as a
// command-line tool). Checks a configuration image, and optionally a
// scenario description, against the full rule catalog without running
// the simulator; the paper's offline admission argument (§3.1) as a CI
// gate.
//
// Usage:
//   rtec_lint [options] <calendar.cal>
//     --scenario <file>     cross-check against a scenario description
//     --json                machine-readable report on stdout
//     --precision-ns <n>    worst-case clock disagreement for RTEC-C007
//     --warn-reserved <f>   reserved-share warning threshold (default 0.95)
//     --strict              exit non-zero on warnings too
//
// Exit codes: 0 clean (or warnings without --strict), 1 findings that
// gate, 2 usage or I/O failure. Parse failures of either input are
// reported as RTEC-P001 findings (exit 1) so CI sees one uniform report
// format for every failure mode.
//
// Rule catalog and paper rationale: docs/static_analysis.md.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "analysis/lint.hpp"
#include "tool_io.hpp"

using namespace rtec;
using namespace rtec::analysis;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--scenario <file>] [--json] [--precision-ns <n>]\n"
               "          [--warn-reserved <f>] [--strict] <calendar.cal>\n",
               argv0);
  return 2;
}

std::optional<std::string> slurp(const char* path) {
  std::string error;
  auto text = tools::slurp_file(path, error);
  if (!text) std::fprintf(stderr, "%s\n", error.c_str());
  return text;
}

int emit(const LintReport& report, bool json, bool strict) {
  const std::string rendered =
      json ? report_to_json(report) : report_to_text(report);
  std::fputs(rendered.c_str(), stdout);
  if (report.has_errors()) return 1;
  if (strict && report.warning_count() > 0) return 1;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* calendar_path = nullptr;
  const char* scenario_path = nullptr;
  bool json = false;
  bool strict = false;
  LintOptions options;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--strict") == 0) {
      strict = true;
    } else if (std::strcmp(argv[i], "--scenario") == 0 && i + 1 < argc) {
      scenario_path = argv[++i];
    } else if (std::strcmp(argv[i], "--precision-ns") == 0 && i + 1 < argc) {
      char* end = nullptr;
      const long long ns = std::strtoll(argv[++i], &end, 10);
      if (end == nullptr || *end != '\0' || ns < 0) return usage(argv[0]);
      options.clock_precision = Duration::nanoseconds(ns);
    } else if (std::strcmp(argv[i], "--warn-reserved") == 0 && i + 1 < argc) {
      char* end = nullptr;
      const double f = std::strtod(argv[++i], &end);
      if (end == nullptr || *end != '\0' || f < 0 || f > 1) return usage(argv[0]);
      options.warn_reserved_fraction = f;
    } else if (argv[i][0] == '-') {
      return usage(argv[0]);
    } else if (calendar_path == nullptr) {
      calendar_path = argv[i];
    } else {
      return usage(argv[0]);
    }
  }
  if (calendar_path == nullptr) return usage(argv[0]);

  const auto calendar_text = slurp(calendar_path);
  if (!calendar_text) return 2;
  const auto image = parse_calendar_image(*calendar_text);
  if (!image) return emit(parse_failure_report(image.error()), json, strict);

  if (scenario_path == nullptr)
    return emit(lint_calendar(*image, options), json, strict);

  const auto scenario_text = slurp(scenario_path);
  if (!scenario_text) return 2;
  const auto spec = parse_scenario_spec(*scenario_text);
  if (!spec) return emit(parse_failure_report(spec.error()), json, strict);

  return emit(lint_scenario(*image, *spec, options), json, strict);
}
