#pragma once

#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

/// \file tool_io.hpp
/// File slurping shared by the CLI front-ends (rtec_lint, rtec_verify).
/// A tool must never turn an unreadable input into an empty document and
/// lint *that* — a missing file, a directory, or a failing read each get a
/// distinct diagnostic and a usage-style exit (2), so CI failures say what
/// actually went wrong instead of "empty input".

namespace rtec::tools {

/// Reads a whole file; on failure returns nullopt and fills `error` with a
/// one-line diagnostic naming the path and the failure mode.
inline std::optional<std::string> slurp_file(const std::string& path,
                                             std::string& error) {
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec)) {
    error = path + " is a directory, not a file";
    return std::nullopt;
  }
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream text;
  text << in.rdbuf();
  if (in.bad()) {  // stream-level read error (I/O failure mid-read)
    error = "read error on " + path;
    return std::nullopt;
  }
  return text.str();
}

}  // namespace rtec::tools
