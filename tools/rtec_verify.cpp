// rtec_verify — whole-topology static verifier (analysis/verify.hpp as a
// command-line tool). Checks a gateway-graph topology description — and
// the per-segment calendar images it references — against the RTEC-T rule
// catalog: graph structure, routing cycles, reachability, cross-segment
// etag clashes, clock-precision consistency, lookahead floors, bandwidth
// budgets and composed end-to-end latency bounds. Optionally cross-checks
// the verdict against the sharded simulator (differential oracle).
//
// Usage:
//   rtec_verify [options] <topology.topo>
//     --json                machine-readable report on stdout
//     --strict              exit non-zero on warnings too
//     --bounds              print composed per-route bounds (text mode)
//     --prob                probabilistic rule RTEC-T012 + per-route miss
//                           probabilities (text mode)
//     --oracle              run the differential simulation oracle
//     --seeds <a,b,c>       oracle seeds (default 1,2,3)
//     --sim-ms <n>          oracle simulated time per seed (default 200)
//     --warn-util <f>       utilization warning threshold (default 0.95)
//     --no-calendar-lint    skip the per-segment calendar lint merge
//
// Calendar paths inside the topology file resolve relative to the file.
// Exit codes: 0 clean (or warnings without --strict), 1 findings that
// gate, 2 usage or I/O failure. Parse failures of any input are reported
// as RTEC-P001 findings (exit 1) — the same uniform JSON document
// rtec_lint emits, with "tool": "rtec-verify".
//
// Rule catalog, severities and the bound derivation: docs/static_analysis.md.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <optional>
#include <string>

#include "analysis/lint.hpp"
#include "analysis/oracle.hpp"
#include "analysis/topology.hpp"
#include "analysis/verify.hpp"
#include "tool_io.hpp"

using namespace rtec;
using namespace rtec::analysis;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--json] [--strict] [--bounds] [--prob] [--oracle]\n"
               "          [--seeds <a,b,c>] [--sim-ms <n>] [--warn-util <f>]\n"
               "          [--no-calendar-lint] <topology.topo>\n",
               argv0);
  return 2;
}

std::optional<std::string> slurp(const std::string& path) {
  std::string error;
  auto text = tools::slurp_file(path, error);
  if (!text) std::fprintf(stderr, "%s\n", error.c_str());
  return text;
}

int emit(const LintReport& report, bool json, bool strict) {
  const std::string rendered = json ? report_to_json(report, "rtec-verify")
                                    : report_to_text(report);
  std::fputs(rendered.c_str(), stdout);
  if (report.has_errors()) return 1;
  if (strict && report.warning_count() > 0) return 1;
  return 0;
}

std::optional<std::vector<std::uint64_t>> parse_seed_list(const char* arg) {
  std::vector<std::uint64_t> seeds;
  const char* p = arg;
  while (*p != '\0') {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(p, &end, 10);
    if (end == p) return std::nullopt;
    seeds.push_back(v);
    if (*end == ',') ++end;
    else if (*end != '\0') return std::nullopt;
    p = end;
  }
  if (seeds.empty()) return std::nullopt;
  return seeds;
}

}  // namespace

int main(int argc, char** argv) {
  const char* topology_path = nullptr;
  bool json = false;
  bool strict = false;
  bool print_bounds = false;
  bool run_oracle = false;
  VerifyOptions options;
  OracleOptions oracle_options;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--strict") == 0) {
      strict = true;
    } else if (std::strcmp(argv[i], "--bounds") == 0) {
      print_bounds = true;
    } else if (std::strcmp(argv[i], "--prob") == 0) {
      options.probabilistic = true;
    } else if (std::strcmp(argv[i], "--oracle") == 0) {
      run_oracle = true;
    } else if (std::strcmp(argv[i], "--no-calendar-lint") == 0) {
      options.per_segment_lint = false;
    } else if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
      const auto seeds = parse_seed_list(argv[++i]);
      if (!seeds) return usage(argv[0]);
      oracle_options.seeds = *seeds;
    } else if (std::strcmp(argv[i], "--sim-ms") == 0 && i + 1 < argc) {
      char* end = nullptr;
      const long long ms = std::strtoll(argv[++i], &end, 10);
      if (end == nullptr || *end != '\0' || ms <= 0) return usage(argv[0]);
      oracle_options.sim_time = Duration::milliseconds(ms);
    } else if (std::strcmp(argv[i], "--warn-util") == 0 && i + 1 < argc) {
      char* end = nullptr;
      const double f = std::strtod(argv[++i], &end);
      if (end == nullptr || *end != '\0' || f < 0 || f > 1)
        return usage(argv[0]);
      options.warn_utilization = f;
    } else if (argv[i][0] == '-') {
      return usage(argv[0]);
    } else if (topology_path == nullptr) {
      topology_path = argv[i];
    } else {
      return usage(argv[0]);
    }
  }
  if (topology_path == nullptr) return usage(argv[0]);
  oracle_options.verify = options;

  const auto topology_text = slurp(topology_path);
  if (!topology_text) return 2;
  const auto spec = parse_topology_spec(*topology_text);
  if (!spec) return emit(parse_failure_report(spec.error()), json, strict);

  // Calendar images referenced by the topology, resolved relative to it.
  // An unreadable file is an I/O failure (exit 2); a file that does not
  // parse is an RTEC-P001 finding tagged with its segment.
  TopologyInput input;
  input.spec = *spec;
  const std::filesystem::path base =
      std::filesystem::path{topology_path}.parent_path();
  LintReport calendar_failures;
  for (const SegmentSpec& segment : spec->segments) {
    if (segment.calendar.empty()) continue;
    const std::string path = (base / segment.calendar).string();
    const auto text = slurp(path);
    if (!text) return 2;
    const auto image = parse_calendar_image(*text);
    if (!image) {
      LintReport one = parse_failure_report(image.error());
      for (Finding& f : one.findings) {
        f.segment = segment.id;
        f.message = segment.calendar + ": " + f.message;
        calendar_failures.add(std::move(f));
      }
      continue;
    }
    input.calendars.emplace(segment.id, *image);
  }
  if (!calendar_failures.findings.empty())
    return emit(calendar_failures, json, strict);

  LintReport report = verify_topology(input, options);

  if (run_oracle) {
    const OracleResult oracle = run_differential_oracle(input, oracle_options);
    if (!oracle.ran) {
      std::fprintf(stderr, "oracle skipped: %s\n",
                   oracle.skip_reason.c_str());
    } else {
      std::fprintf(stderr,
                   "oracle ran: %zu observation(s) over %zu seed(s), "
                   "%zu disagreement(s)\n",
                   oracle.observations.size(), oracle_options.seeds.size(),
                   oracle.report.findings.size());
    }
    for (const Finding& f : oracle.report.findings) report.add(f);
  }

  if (print_bounds && !json) {
    for (const RouteBound& rb : route_bounds(input)) {
      const RouteSpec& route = input.spec.routes[rb.route];
      if (rb.computable)
        std::printf("route %zu etag=%u %d->%d: bound %lld ns, deadline "
                    "%lld ns, %zu hop(s)\n",
                    rb.route, static_cast<unsigned>(route.etag), route.from,
                    route.to, static_cast<long long>(rb.bound.ns()),
                    static_cast<long long>(route.e2e_deadline.ns()),
                    rb.link_ids.size());
      else
        std::printf("route %zu etag=%u %d->%d: no resolvable path\n",
                    rb.route, static_cast<unsigned>(route.etag), route.from,
                    route.to);
    }
  }

  if (options.probabilistic && !json) {
    for (const RouteMiss& rm : route_miss_bounds(input, options)) {
      const RouteSpec& route = input.spec.routes[rm.route];
      if (!rm.computable) continue;
      char target[32] = "none";
      if (route.miss_target)
        std::snprintf(target, sizeof target, "%.1e", *route.miss_target);
      std::printf("route %zu etag=%u %d->%d: miss probability %.3e over "
                  "%zu hop(s), target %s, tail bound %.1e\n",
                  rm.route, static_cast<unsigned>(route.etag), route.from,
                  route.to, rm.e2e_miss, rm.hop_miss.size(), target,
                  rm.tail_epsilon);
    }
  }

  return emit(report, json, strict);
}
