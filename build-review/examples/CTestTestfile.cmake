# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build-review/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build-review/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  LABELS "tier1;examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_automotive "/root/repo/build-review/examples/automotive")
set_tests_properties(example_automotive PROPERTIES  LABELS "tier1;examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_factory_cell "/root/repo/build-review/examples/factory_cell")
set_tests_properties(example_factory_cell PROPERTIES  LABELS "tier1;examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fault_tolerance "/root/repo/build-review/examples/fault_tolerance")
set_tests_properties(example_fault_tolerance PROPERTIES  LABELS "tier1;examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multi_network "/root/repo/build-review/examples/multi_network")
set_tests_properties(example_multi_network PROPERTIES  LABELS "tier1;examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_plan_calendar "/root/repo/build-review/examples/plan_calendar")
set_tests_properties(example_plan_calendar PROPERTIES  LABELS "tier1;examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_bus_analyzer "/root/repo/build-review/examples/bus_analyzer" "--demo")
set_tests_properties(example_bus_analyzer PROPERTIES  LABELS "tier1;examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_plan_then_lint "/usr/bin/cmake" "-DPLANNER=/root/repo/build-review/examples/plan_calendar" "-DLINTER=/root/repo/build-review/tools/rtec_lint" "-DWORK_DIR=/root/repo/build-review/examples" "-P" "/root/repo/examples/plan_then_lint.cmake")
set_tests_properties(example_plan_then_lint PROPERTIES  LABELS "tier1;examples;lint" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
