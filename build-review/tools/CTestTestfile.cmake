# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build-review/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(lint_cli_clean "/root/repo/build-review/tools/rtec_lint" "--precision-ns" "33000" "/root/repo/tools/fixtures/demo.cal")
set_tests_properties(lint_cli_clean PROPERTIES  LABELS "tier1;lint" PASS_REGULAR_EXPRESSION "ACCEPT: 0 error" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(lint_cli_scenario "/root/repo/build-review/tools/rtec_lint" "--scenario" "/root/repo/tools/fixtures/demo.scn" "/root/repo/tools/fixtures/demo.cal")
set_tests_properties(lint_cli_scenario PROPERTIES  LABELS "tier1;lint" PASS_REGULAR_EXPRESSION "ACCEPT: 0 error" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(lint_cli_rejects_overlap_json "/root/repo/build-review/tools/rtec_lint" "--json" "/root/repo/tools/fixtures/bad_overlap.cal")
set_tests_properties(lint_cli_rejects_overlap_json PROPERTIES  LABELS "tier1;lint" PASS_REGULAR_EXPRESSION "\"verdict\": \"reject\"" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;22;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(lint_cli_exit_code_gates "/root/repo/build-review/tools/rtec_lint" "/root/repo/tools/fixtures/bad_overlap.cal")
set_tests_properties(lint_cli_exit_code_gates PROPERTIES  LABELS "tier1;lint" WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;28;add_test;/root/repo/tools/CMakeLists.txt;0;")
