// E9 — global time precision vs the ΔG_min budget (§3.2).
//
// "Because we must prevent any temporal overlap between adjacent hard
// real-time slots, a minimal gap ΔG_min has to be allocated between the
// slots. This gap depends on the quality and frequency of clock
// synchronization and is conservatively assumed at 40 us."
//
// Sweep drift bound and resync period; measure the achieved worst pairwise
// clock disagreement of a 6-node network (sampled every millisecond over
// 10 s) against the analytic bound 2*(granularity + drift*period) and the
// paper's 40 us budget.

#include <cstdio>
#include <functional>
#include <memory>

#include "bench/common.hpp"
#include "core/scenario.hpp"
#include "time/sync.hpp"
#include "trace/csv.hpp"

using namespace rtec;
using namespace rtec::literals;

namespace {

struct Row {
  double worst_us = 0;     // measured worst pairwise disagreement
  double bound_us = 0;     // required_slot_gap()/... analytic bound
};

Row run(std::int64_t drift_ppb, Duration resync, std::uint64_t seed) {
  Scenario::Config cfg;
  cfg.calendar.round_length = resync;
  Scenario scn{cfg};

  Rng rng{seed};
  for (NodeId n = 1; n <= 6; ++n) {
    Node::ClockParams p;
    p.initial_offset = Duration::microseconds(rng.uniform_int(-30, 30));
    p.drift_ppb = rng.uniform_int(-drift_ppb, drift_ppb);
    p.granularity = 1_us;
    scn.add_node(n, p);
  }
  // The sync slot needs LST >= t_wait; 500 us fits every tested round.
  (void)scn.enable_clock_sync(1, 450_us);

  // Warm-up: two rounds to remove initial offsets.
  scn.run_for(resync * 2);

  Duration worst = Duration::zero();
  const int samples = static_cast<int>(Duration::seconds(10) / 1_ms);
  for (int i = 0; i < samples; ++i) {
    scn.run_for(1_ms);
    const Duration d = scn.clock_precision();
    if (d > worst) worst = d;
  }

  Row row;
  row.worst_us = worst.us();
  row.bound_us = required_slot_gap(1_us, drift_ppb, resync).us();
  return row;
}

}  // namespace

int main() {
  bench::title("E9", "achieved clock precision vs ΔG_min budget");
  bench::note("6 nodes, 1 us clock tick, master sync each round, 10 s sampled");
  bench::note("at 1 kHz; bound = 2*(tick + drift*round) [required_slot_gap]");

  CsvWriter csv{"bench_clock_sync.csv"};
  csv.header({"drift_ppm", "resync_ms", "worst_us", "bound_us"});

  std::printf("\n  %-11s %-12s %-22s %-18s %s\n", "drift (ppm)", "resync (ms)",
              "worst observed (us)", "analytic bound", "within 40 us");
  bench::rule();
  for (std::int64_t ppm : {10, 50, 100, 200}) {
    for (std::int64_t ms : {10, 50, 100}) {
      const Row r = run(ppm * 1000, Duration::milliseconds(ms),
                        static_cast<std::uint64_t>(ppm * 100 + ms));
      std::printf("  %-11lld %-12lld %-22.1f %-18.1f %s\n",
                  static_cast<long long>(ppm), static_cast<long long>(ms),
                  r.worst_us, r.bound_us, r.worst_us <= 40.0 ? "yes" : "NO");
      csv.row(ppm, ms, r.worst_us, r.bound_us);
    }
    bench::rule();
  }
  bench::note("the paper's conservative 40 us gap covers every configuration a");
  bench::note("real deployment would choose (<=100 ppm crystals, resync every");
  bench::note("round); only extreme drift x long resync periods exceed it, and");
  bench::note("the analytic bound flags exactly those — feed required_slot_gap()");
  bench::note("into Calendar::Config::gap to provision a different budget.");
  return 0;
}
