// E5 — EDF-on-CAN vs static priorities (§3.4 motivation, §4).
//
// "There is a substantial share of aperiodic and sporadic traffic in the
// system which can not adequately be mapped to static priorities."
//
// Identical arrival sequences (6 periodic streams + 1 bursty sporadic
// stream, 25% of the load) are replayed through three schedulers:
//   edf    — the SRT engine: deadline→priority bands with dynamic promotion
//   dm     — deadline-monotonic static priorities (Tindell/Burns)
//   dual   — Davis dual-priority (one promotion to a static high band)
// Sweep: offered load 0.3 .. 1.25 of bus capacity. Metric: fraction of
// messages transmitted by their deadline.

#include <cstdio>
#include <memory>
#include <vector>

#include "baselines/dual_priority.hpp"
#include "baselines/fixed_priority.hpp"
#include "bench/common.hpp"
#include "bench/sweep.hpp"
#include "core/scenario.hpp"
#include "core/srtec.hpp"
#include "trace/csv.hpp"
#include "util/random.hpp"

using namespace rtec;
using namespace rtec::literals;

namespace {

constexpr Duration kRun = Duration::seconds(2);

struct Arrival {
  TimePoint at;
  std::size_t stream;
  TimePoint deadline;
};

struct Workload {
  std::vector<StreamSpec> streams;
  std::vector<Arrival> arrivals;
};

/// Builds the stream set for a target load and the concrete arrival trace.
Workload make_workload(double load, std::uint64_t seed) {
  const BusConfig bus;
  // Calibrate offered load with the exact wire time of the frames actually
  // sent (0xAA payload in every scheme), not the worst-case stuffing bound.
  CanFrame representative;
  representative.id = encode_can_id({100, 4, 100});
  representative.dlc = 8;
  representative.data.fill(0xAA);
  const double c_ms =
      frame_duration(representative, bus).ms() +
      bus.bit_time().ms() * kIntermissionBits;

  Workload w;
  // Six periodic streams absorb 75% of the load.
  const double base_inv_sum = 1.0 / 4 + 1.0 / 6 + 1.0 / 8 + 1.0 / 10 +
                              1.0 / 14 + 1.0 / 20;  // per ms
  const double base_u = c_ms * base_inv_sum;
  const double scale = base_u / (0.75 * load);
  const double periods_ms[] = {4, 6, 8, 10, 14, 20};
  for (std::size_t i = 0; i < 6; ++i) {
    StreamSpec s;
    s.id = static_cast<int>(i + 10);
    s.node = static_cast<NodeId>(i + 1);
    s.period = Duration::nanoseconds(
        static_cast<std::int64_t>(periods_ms[i] * scale * 1e6));
    s.deadline = s.period;
    s.dlc = 8;
    w.streams.push_back(s);
  }
  // One sporadic stream (node 7): Poisson bursts of 3, tight 2x-period
  // deadline, 25% of the load.
  StreamSpec sp;
  sp.id = 20;
  sp.node = 7;
  const double burst_rate = 0.25 * load / (3 * c_ms);  // bursts per ms
  sp.period = Duration::nanoseconds(
      static_cast<std::int64_t>(1e6 / burst_rate));  // mean burst gap
  sp.deadline = sp.period * 2 < 4_ms ? sp.period * 2 : 4_ms;
  sp.dlc = 8;
  w.streams.push_back(sp);

  Rng rng{seed};
  for (std::size_t i = 0; i < 6; ++i) {
    const StreamSpec& s = w.streams[i];
    TimePoint t = TimePoint::origin() + Duration::nanoseconds(rng.uniform_int(
                                            0, s.period.ns() - 1));
    while (t < TimePoint::origin() + kRun) {
      w.arrivals.push_back({t, i, t + s.deadline});
      t += s.period;
    }
  }
  {
    TimePoint t = TimePoint::origin();
    while (t < TimePoint::origin() + kRun) {
      t += Duration::nanoseconds(
          static_cast<std::int64_t>(rng.exponential(static_cast<double>(sp.period.ns()))));
      if (t >= TimePoint::origin() + kRun) break;
      for (int b = 0; b < 3; ++b) {
        const TimePoint at = t + Duration::microseconds(5) * b;
        w.arrivals.push_back({at, 6, at + sp.deadline});
      }
    }
  }
  std::sort(w.arrivals.begin(), w.arrivals.end(),
            [](const Arrival& a, const Arrival& b) { return a.at < b.at; });
  return w;
}

struct Outcome {
  std::uint64_t offered = 0;
  std::uint64_t by_deadline = 0;
  [[nodiscard]] double miss_ratio() const {
    return offered == 0
               ? 0.0
               : 1.0 - static_cast<double>(by_deadline) /
                           static_cast<double>(offered);
  }
};

Outcome run_edf(const Workload& w, bool with_expiry = false) {
  Scenario scn;
  Node::ClockParams perfect;
  perfect.granularity = 1_ns;
  std::vector<Node*> nodes;
  std::vector<std::unique_ptr<Srtec>> channels;
  for (const StreamSpec& s : w.streams) {
    Node& n = scn.add_node(s.node, perfect);
    nodes.push_back(&n);
    channels.push_back(std::make_unique<Srtec>(n.middleware()));
    (void)channels.back()->announce(
        subject_of("e5/" + std::to_string(s.id)), {}, nullptr);
  }
  for (const Arrival& a : w.arrivals) {
    Srtec* chan = channels[a.stream].get();
    // The paper's validity mechanism: with expiry on, an event is dropped
    // from the send queue the moment its validity (= deadline here) ends —
    // stopping the EDF overload domino at the source.
    const TimePoint expiry =
        with_expiry ? a.deadline : a.deadline + Duration::seconds(10);
    scn.sim().schedule_at(a.at, [chan, a, expiry] {
      Event e;
      e.content.assign(8, 0xAA);  // same frame length as the baselines
      e.attributes.deadline = a.deadline;
      e.attributes.expiration = expiry;
      (void)chan->publish(std::move(e));
    });
  }
  scn.run_for(kRun + Duration::seconds(1));  // drain
  Outcome o;
  o.offered = w.arrivals.size();
  for (Node* n : nodes)
    o.by_deadline += n->middleware().srt().counters().sent_by_deadline;
  return o;
}

Outcome run_dm(const Workload& w) {
  Simulator sim;
  CanBus bus{sim, BusConfig{}};
  const auto assignment = deadline_monotonic_assignment(w.streams);
  // priority per original stream index
  std::vector<Priority> prio(w.streams.size());
  for (const auto& pa : assignment)
    for (std::size_t i = 0; i < w.streams.size(); ++i)
      if (w.streams[i].id == pa.stream.id) prio[i] = pa.priority;

  std::vector<std::unique_ptr<CanController>> ctls;
  std::vector<std::unique_ptr<StaticPrioritySender>> senders;
  for (const StreamSpec& s : w.streams) {
    ctls.push_back(std::make_unique<CanController>(sim, s.node));
    bus.attach(*ctls.back());
    senders.push_back(std::make_unique<StaticPrioritySender>(sim, *ctls.back()));
  }
  for (const Arrival& a : w.arrivals) {
    StaticPrioritySender* snd = senders[a.stream].get();
    const StreamSpec spec = w.streams[a.stream];
    const Priority p = prio[a.stream];
    sim.schedule_at(a.at,
                    [snd, spec, p, a, &sim] { snd->queue(spec, p, a.deadline, sim.now()); });
  }
  sim.run_until(TimePoint::origin() + kRun + Duration::seconds(1));
  Outcome o;
  o.offered = w.arrivals.size();
  for (const auto& s : senders) o.by_deadline += s->outcome().sent_by_deadline;
  return o;
}

Outcome run_dual(const Workload& w) {
  Simulator sim;
  CanBus bus{sim, BusConfig{}};
  const auto assignment = deadline_monotonic_assignment(w.streams);
  std::vector<std::uint8_t> rank(w.streams.size());
  std::vector<std::optional<Duration>> rta =
      response_time_analysis(assignment, bus.config());
  std::vector<Duration> lead(w.streams.size());
  for (std::size_t r = 0; r < assignment.size(); ++r)
    for (std::size_t i = 0; i < w.streams.size(); ++i)
      if (w.streams[i].id == assignment[r].stream.id) {
        rank[i] = static_cast<std::uint8_t>(r);
        // Davis: promote at deadline - R_high; fall back to D/2 when the
        // static analysis already fails.
        lead[i] = rta[r].value_or(w.streams[i].deadline / 2);
      }

  std::vector<std::unique_ptr<CanController>> ctls;
  std::vector<std::unique_ptr<DualPrioritySender>> senders;
  for (const StreamSpec& s : w.streams) {
    ctls.push_back(std::make_unique<CanController>(sim, s.node));
    bus.attach(*ctls.back());
    senders.push_back(
        std::make_unique<DualPrioritySender>(sim, *ctls.back(),
                                             DualPrioritySender::Config{}));
  }
  for (const Arrival& a : w.arrivals) {
    DualPrioritySender* snd = senders[a.stream].get();
    const StreamSpec spec = w.streams[a.stream];
    const std::uint8_t r = rank[a.stream];
    const Duration ld = lead[a.stream];
    sim.schedule_at(a.at, [snd, spec, r, ld, a] {
      snd->queue(spec.node, static_cast<Etag>(spec.id), r, spec.dlc,
                 a.deadline, ld);
    });
  }
  sim.run_until(TimePoint::origin() + kRun + Duration::seconds(1));
  Outcome o;
  o.offered = w.arrivals.size();
  for (const auto& s : senders) o.by_deadline += s->outcome().sent_by_deadline;
  return o;
}

}  // namespace

int main() {
  bench::title("E5", "deadline miss ratio: EDF vs deadline-monotonic vs dual-priority");
  bench::note("6 periodic + 1 bursty sporadic stream (25%% of load), 2 s per point,");
  bench::note("identical arrival traces for all three schedulers");

  CsvWriter csv{"bench_edf_vs_fixed.csv"};
  csv.header({"load", "edf_miss", "edf_expiry_miss", "dm_miss", "dual_miss",
              "offered"});
  bench::BenchJson bj{"edf_vs_fixed"};
  bj.meta("generated_by", "bench_edf_vs_fixed");
  bj.meta("threads", static_cast<double>(bench::sweep_threads()));

  const std::vector<double> loads{0.3, 0.5, 0.7, 0.85, 0.95, 1.05, 1.25};
  struct LoadRow {
    Outcome edf, edfx, dm, dual;
    bool dm_feasible = false;
  };
  // Each load point replays its own arrival trace through all four
  // schedulers on private simulators — share-nothing, so points sweep in
  // parallel.
  const std::vector<LoadRow> rows =
      bench::sweep(loads.size(), [&](std::size_t i) {
        const Workload w = make_workload(loads[i], 4242);
        return LoadRow{run_edf(w), run_edf(w, /*with_expiry=*/true), run_dm(w),
                       run_dual(w),
                       feasible(deadline_monotonic_assignment(w.streams),
                                BusConfig{})};
      });

  std::printf("\n  %-7s %-9s %-11s %-12s %-11s %-11s %s\n", "load", "offered",
              "edf miss", "edf+expiry", "dm miss", "dual miss",
              "dm feasible (RTA)");
  bench::rule();
  for (std::size_t i = 0; i < loads.size(); ++i) {
    const LoadRow& r = rows[i];
    std::printf("  %-7.2f %-9llu %-11.4f %-12.4f %-11.4f %-11.4f %s\n",
                loads[i], static_cast<unsigned long long>(r.edf.offered),
                r.edf.miss_ratio(), r.edfx.miss_ratio(), r.dm.miss_ratio(),
                r.dual.miss_ratio(), r.dm_feasible ? "yes" : "no");
    csv.row(loads[i], r.edf.miss_ratio(), r.edfx.miss_ratio(),
            r.dm.miss_ratio(), r.dual.miss_ratio(), r.edf.offered);
    bj.row({{"load", loads[i]},
            {"edf_miss", r.edf.miss_ratio()},
            {"edf_expiry_miss", r.edfx.miss_ratio()},
            {"dm_miss", r.dm.miss_ratio()},
            {"dual_miss", r.dual.miss_ratio()},
            {"offered", static_cast<double>(r.edf.offered)}});
  }
  bench::rule();
  if (!bj.write())
    bench::note("warning: could not write BENCH_edf_vs_fixed.json");
  bench::note("edf+expiry — the paper's actual SRT design (every SRTEC event");
  bench::note("carries a validity interval) — misses least at every load up to");
  bench::note("deep overload. Plain EDF (no expiry) shows the classic");
  bench::note("non-preemptive-EDF domino once transient overload appears, which");
  bench::note("is precisely why §2.2.2 pairs deadlines with expiration times.");
  bench::note("DM only catches up in deep permanent overload, where it protects");
  bench::note("its high-priority streams by starving the rest — and its RTA");
  bench::note("already declared the set infeasible there.");
  return 0;
}
