// Microbenchmarks (google-benchmark) of the simulation substrate itself:
// event-queue throughput (schedule / cancel / fire isolated and combined),
// frame-length computation (cached vs uncached), frame-accurate bus
// throughput, and middleware publish-path cost. These bound how much
// simulated traffic the experiment harnesses can afford and guard against
// performance regressions in the kernel.
//
// Results are mirrored to BENCH_simcore.json (items/s per benchmark) so the
// perf trajectory is trackable PR-over-PR.

#include <benchmark/benchmark.h>

#include <memory>
#include <optional>

#include "bench/sweep.hpp"
#include "canbus/bus.hpp"
#include "core/scenario.hpp"
#include "core/srtec.hpp"
#include "sim/simulator.hpp"

using namespace rtec;
using namespace rtec::literals;

namespace {

// ------------------------------------------------------------ event kernel

void BM_SimulatorScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    const auto n = static_cast<int>(state.range(0));
    int fired = 0;
    for (int i = 0; i < n; ++i)
      sim.schedule_at(TimePoint::origin() + Duration::microseconds(i),
                      [&fired] { ++fired; });
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorScheduleRun)->Arg(1024)->Arg(16384);

// Schedule throughput in isolation: fill a fresh kernel, never fire.
void BM_SimulatorScheduleOnly(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Simulator sim;
    for (int i = 0; i < n; ++i)
      sim.schedule_at(TimePoint::origin() + Duration::microseconds(i), [] {});
    benchmark::DoNotOptimize(sim.pending());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorScheduleOnly)->Arg(4096);

// Cancel throughput in isolation: O(1) lazy cancellation of live timers.
void BM_SimulatorCancelOnly(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  std::vector<Simulator::TimerHandle> handles(static_cast<std::size_t>(n));
  for (auto _ : state) {
    state.PauseTiming();
    Simulator sim;
    for (int i = 0; i < n; ++i)
      handles[static_cast<std::size_t>(i)] = sim.schedule_at(
          TimePoint::origin() + Duration::microseconds(i), [] {});
    state.ResumeTiming();
    for (auto& h : handles) sim.cancel(h);
    benchmark::DoNotOptimize(sim.pending());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorCancelOnly)->Arg(4096);

// Fire throughput in isolation: a pre-filled queue is drained with trivial
// callbacks, timing only pop + dispatch + slot release.
void BM_SimulatorFireOnly(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  std::optional<Simulator> sim;
  int fired = 0;
  for (auto _ : state) {
    state.PauseTiming();
    sim.emplace();
    fired = 0;
    for (int i = 0; i < n; ++i)
      sim->schedule_at(TimePoint::origin() + Duration::microseconds(i),
                       [&fired] { ++fired; });
    state.ResumeTiming();
    sim->run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorFireOnly)->Arg(4096);

// Fire + re-arm round trip: one self-re-arming timer via the TaskPool
// idiom (periodic re-arm from inside the callback). The std::function hop
// in the middle is part of the measured pattern.
void BM_SimulatorFireChain(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Simulator sim;
    int remaining = n;
    // Re-arm via reference capture — the TaskPool idiom scenario scripts
    // use (util/task_pool.hpp), so the fire path is measured without a
    // std::function copy per event.
    std::function<void()> tick = [&] {
      if (--remaining > 0) sim.schedule_after(1_us, [&tick] { tick(); });
    };
    sim.schedule_after(1_us, [&tick] { tick(); });
    sim.run();
    benchmark::DoNotOptimize(remaining);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorFireChain)->Arg(4096);

void BM_SimulatorTimerCancel(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    const auto n = static_cast<int>(state.range(0));
    std::vector<Simulator::TimerHandle> handles;
    handles.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      handles.push_back(sim.schedule_at(
          TimePoint::origin() + Duration::microseconds(i), [] {}));
    for (auto& h : handles) sim.cancel(h);
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorTimerCancel)->Arg(4096);

// ------------------------------------------------------------ frame length

// Uncached: full serialization + CRC15 + stuff counting per query (payload
// mutated every iteration so no caching is possible).
void BM_FrameWireBitsUncached(benchmark::State& state) {
  CanFrame f;
  f.id = 0x15a5a5a5 & kMaxExtendedId;
  f.dlc = 8;
  f.data = {0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc, 0xde, 0xf0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(frame_wire_bits(f));
    f.data[0] = static_cast<std::uint8_t>(f.data[0] + 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FrameWireBitsUncached);

// Cached: the mailbox length cache hit path — what every retransmission
// attempt pays after the first serialization.
void BM_FrameWireBitsCached(benchmark::State& state) {
  Simulator sim;
  CanController ctl{sim, 1};
  CanFrame f;
  f.id = 0x15a5a5a5 & kMaxExtendedId;
  f.dlc = 8;
  f.data = {0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc, 0xde, 0xf0};
  const auto mb = *ctl.submit(f, TxMode::kAutoRetransmit);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctl.mailbox_wire_bits(mb));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FrameWireBitsCached);

// ------------------------------------------------------------ full stack

void BM_BusSaturatedFrames(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    CanBus bus{sim, BusConfig{}};
    CanController a{sim, 1};
    CanController b{sim, 2};
    bus.attach(a);
    bus.attach(b);
    // Keep both mailboxes full: back-to-back arbitration + transmission.
    std::uint64_t sent = 0;
    const std::uint64_t target = static_cast<std::uint64_t>(state.range(0));
    std::function<void(CanController&, std::uint32_t)> feed =
        [&](CanController& c, std::uint32_t id) {
          CanFrame f;
          f.id = id;
          f.dlc = 8;
          (void)c.submit(f, TxMode::kAutoRetransmit,
                         [&, id](auto, const CanFrame&, bool, TimePoint) {
                           if (++sent < target) feed(c, id);
                         });
        };
    feed(a, 0x100);
    feed(b, 0x200);
    sim.run();
    benchmark::DoNotOptimize(sent);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.SetLabel("frames");
}
BENCHMARK(BM_BusSaturatedFrames)->Arg(10000);

void BM_SrtPublishPath(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Scenario scn;
    Node::ClockParams perfect;
    perfect.granularity = 1_ns;
    Node& n1 = scn.add_node(1, perfect);
    scn.add_node(2, perfect);
    Srtec pub{n1.middleware()};
    (void)pub.announce(subject_of("bm/srt"), {}, nullptr);
    state.ResumeTiming();

    for (int i = 0; i < 1000; ++i) {
      Event e;
      e.content = {1, 2, 3, 4};
      benchmark::DoNotOptimize(pub.publish(std::move(e)).has_value());
      scn.run_for(200_us);  // drain so the queue stays shallow
    }
  }
  state.SetItemsProcessed(state.iterations() * 1000);
  state.SetLabel("publish+tx+deliver");
}
BENCHMARK(BM_SrtPublishPath)->Unit(benchmark::kMillisecond);

// ----------------------------------------------------------- JSON mirror

/// Console output as usual, plus one BENCH_simcore.json row per benchmark.
class JsonMirrorReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      rows.emplace_back(run.benchmark_name(),
                        run.counters.find("items_per_second") !=
                                run.counters.end()
                            ? static_cast<double>(
                                  run.counters.at("items_per_second"))
                            : 0.0,
                        run.GetAdjustedRealTime());
    }
  }

  struct Result {
    Result(std::string n, double ips, double t)
        : name{std::move(n)}, items_per_second{ips}, real_time_ns{t} {}
    std::string name;
    double items_per_second;
    double real_time_ns;
  };
  std::vector<Result> rows;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonMirrorReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  rtec::bench::BenchJson bj{"simcore"};
  bj.meta("generated_by", "bench_simcore");
  for (std::size_t i = 0; i < reporter.rows.size(); ++i) {
    // Benchmark names become meta-free rows: {"bench": index} + metrics;
    // the name itself is carried in meta to keep row cells numeric.
    bj.meta("bench_" + std::to_string(i), reporter.rows[i].name);
    bj.row({{"bench", static_cast<double>(i)},
            {"items_per_second", reporter.rows[i].items_per_second},
            {"real_time_ns", reporter.rows[i].real_time_ns}});
  }
  if (!bj.write()) std::fprintf(stderr, "could not write BENCH_simcore.json\n");
  return 0;
}
