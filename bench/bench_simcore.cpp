// Microbenchmarks (google-benchmark) of the simulation substrate itself:
// event-queue throughput, frame-accurate bus throughput, and middleware
// publish-path cost. These bound how much simulated traffic the experiment
// harnesses can afford and guard against performance regressions in the
// kernel.

#include <benchmark/benchmark.h>

#include <memory>

#include "canbus/bus.hpp"
#include "core/scenario.hpp"
#include "core/srtec.hpp"
#include "sim/simulator.hpp"

using namespace rtec;
using namespace rtec::literals;

namespace {

void BM_SimulatorScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    const auto n = static_cast<int>(state.range(0));
    int fired = 0;
    for (int i = 0; i < n; ++i)
      sim.schedule_at(TimePoint::origin() + Duration::microseconds(i),
                      [&fired] { ++fired; });
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorScheduleRun)->Arg(1024)->Arg(16384);

void BM_SimulatorTimerCancel(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    const auto n = static_cast<int>(state.range(0));
    std::vector<Simulator::TimerHandle> handles;
    handles.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      handles.push_back(sim.schedule_at(
          TimePoint::origin() + Duration::microseconds(i), [] {}));
    for (auto& h : handles) sim.cancel(h);
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorTimerCancel)->Arg(4096);

void BM_BusSaturatedFrames(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    CanBus bus{sim, BusConfig{}};
    CanController a{sim, 1};
    CanController b{sim, 2};
    bus.attach(a);
    bus.attach(b);
    // Keep both mailboxes full: back-to-back arbitration + transmission.
    std::uint64_t sent = 0;
    const std::uint64_t target = static_cast<std::uint64_t>(state.range(0));
    std::function<void(CanController&, std::uint32_t)> feed =
        [&](CanController& c, std::uint32_t id) {
          CanFrame f;
          f.id = id;
          f.dlc = 8;
          (void)c.submit(f, TxMode::kAutoRetransmit,
                         [&, id](auto, const CanFrame&, bool, TimePoint) {
                           if (++sent < target) feed(c, id);
                         });
        };
    feed(a, 0x100);
    feed(b, 0x200);
    sim.run();
    benchmark::DoNotOptimize(sent);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.SetLabel("frames");
}
BENCHMARK(BM_BusSaturatedFrames)->Arg(10000);

void BM_FrameStuffedLength(benchmark::State& state) {
  CanFrame f;
  f.id = 0x15a5a5a5 & kMaxExtendedId;
  f.dlc = 8;
  f.data = {0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc, 0xde, 0xf0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(frame_wire_bits(f));
    f.data[0] = static_cast<std::uint8_t>(f.data[0] + 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FrameStuffedLength);

void BM_SrtPublishPath(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Scenario scn;
    Node::ClockParams perfect;
    perfect.granularity = 1_ns;
    Node& n1 = scn.add_node(1, perfect);
    scn.add_node(2, perfect);
    Srtec pub{n1.middleware()};
    (void)pub.announce(subject_of("bm/srt"), {}, nullptr);
    state.ResumeTiming();

    for (int i = 0; i < 1000; ++i) {
      Event e;
      e.content = {1, 2, 3, 4};
      benchmark::DoNotOptimize(pub.publish(std::move(e)).has_value());
      scn.run_for(200_us);  // drain so the queue stays shallow
    }
  }
  state.SetItemsProcessed(state.iterations() * 1000);
  state.SetLabel("publish+tx+deliver");
}
BENCHMARK(BM_SrtPublishPath)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
