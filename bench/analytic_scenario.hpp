#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "canbus/fault.hpp"
#include "canbus/frame.hpp"
#include "core/hrtec.hpp"
#include "core/scenario.hpp"
#include "trace/histogram.hpp"

/// \file analytic_scenario.hpp
/// Shared simulation harness for cross-validating the analytic engine
/// (sched/prob_rta) against the simulator. One HRT channel, sole publisher,
/// random omission faults; the observed ready→end-of-frame latency of every
/// successful instance lands in a histogram whose buckets are aligned to
/// the bus bit time, so Histogram::quantile returns *exact* simulated
/// latencies (every latency in this scenario is a whole number of bit
/// times: the submit fires at the slot's ready time, arbitration is
/// zero-delay, and each corrupted attempt charges whole bits).
///
/// Used by bench_analytic (the paired analytic-vs-sim experiment) and
/// tests/test_prob_rta.cpp (the gated differential test) so both see the
/// same scenario by construction.

namespace rtec::bench {

struct AnalyticScenarioConfig {
  int dlc = 8;
  int omission_degree = 2;   ///< provisioned k (slot window sized for it)
  double fault_rate = 0.15;  ///< per-attempt omission probability p
  /// Pin every error to a fixed fraction of the frame (1.0 = last bit,
  /// matching the analytic engine's worst_case_position exactly); nullopt
  /// keeps the default uniform error position.
  std::optional<double> fixed_fault_position;
  int rounds = 2000;
  std::uint64_t seed = 11;
};

struct AnalyticScenarioResult {
  /// Ready→successful-end-of-frame latency (ns), bit-time-aligned buckets.
  Histogram latency{0.0, 0.0, 1};
  std::uint64_t delivered = 0;  ///< successful instances (histogram count)
  std::uint64_t failures = 0;   ///< fault assumption violated (> k faults)
  int frame_bits = 0;           ///< wire bits of the actual published frame
};

/// Runs the scenario for `cfg.rounds` periodic instances and returns the
/// simulated latency distribution. Deterministic per (config, seed).
inline AnalyticScenarioResult run_analytic_scenario(
    const AnalyticScenarioConfig& cfg) {
  using namespace rtec::literals;

  Scenario::Config scfg;
  scfg.calendar.round_length = 5_ms;
  Scenario scn{scfg};
  Node::ClockParams perfect;
  perfect.granularity = 1_ns;
  Node& pub_node = scn.add_node(1, perfect);
  scn.add_node(2, perfect);

  const Subject subject = subject_of("analytic/hrt");
  SlotSpec slot;
  slot.lst_offset = 2_ms;
  slot.dlc = cfg.dlc;
  slot.fault.omission_degree = cfg.omission_degree;
  slot.etag = *scn.binding().bind(subject);
  slot.publisher = pub_node.id();
  const std::size_t slot_index = *scn.calendar().reserve(slot);

  scn.set_fault_model(std::make_unique<RandomOmissionFaults>(
      cfg.fault_rate, cfg.seed, cfg.fixed_fault_position));

  AnalyticScenarioResult out;
  Hrtec pub{pub_node.middleware()};
  (void)pub.announce(subject, {}, [&](const ExceptionInfo& e) {
    if (e.error == ChannelError::kTransmissionFailed) ++out.failures;
  });

  // Bit-time buckets from 0: a latency of exactly b bit times falls in
  // bucket b and quantile() reports its lower edge — the exact value.
  // 4096 bits is comfortably above any k ≤ kMaxOmissionDegree/16 window.
  const double bit_ns = static_cast<double>(scn.bus().config().bit_time().ns());
  out.latency = Histogram{0.0, bit_ns * 4096.0, 4096};

  TimePoint window_ready;
  scn.bus().add_observer([&](const CanBus::FrameEvent& ev) {
    if (id_priority(ev.frame.id) != kHrtPriority || !ev.success) return;
    if (out.frame_bits == 0) out.frame_bits = frame_wire_bits(ev.frame);
    ++out.delivered;
    out.latency.add(ev.end - window_ready);
  });

  for (int r = 0; r < cfg.rounds; ++r) {
    const Calendar::Instance inst = scn.calendar().instance_at_or_after(
        slot_index, TimePoint::origin() + scfg.calendar.round_length * r);
    window_ready = inst.ready;
    scn.sim().schedule_at(inst.ready - 10_us, [&pub, &cfg] {
      Event e;
      e.content.assign(static_cast<std::size_t>(cfg.dlc), 0x00);
      (void)pub.publish(std::move(e));
    });
    scn.run_until(inst.deadline + 1_ms);
  }
  return out;
}

}  // namespace rtec::bench
