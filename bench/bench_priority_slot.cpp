// E6 — the priority-slot length trade-off (§3.4).
//
// "There is a trade-off between the length of a priority slot and the
// quality of the derived schedule": small Δt_p separates close deadlines
// (few same-band collisions) but shrinks the time horizon
// ΔH = (P_max−P_min+1)·Δt_p — deadlines beyond ΔH all map to the lowest
// band and may be scheduled incorrectly; large Δt_p extends the horizon
// but collapses close deadlines into one band where TxNode decides.
//
// Four nodes publish SRT messages with Poisson arrivals (~70% load) and
// deadlines uniform in [1 ms, 50 ms]. For each Δt_p we count true EDF
// inversions on the bus: message i transmitted before message j although
// j was already queued (published before i started) and j's deadline is
// earlier. Also reported: share of deadlines beyond the horizon at
// publish time, and promotions per message (the scheme's overhead).
//
// Expected: a U-shaped inversion curve with the minimum near
// Δt_p ≈ spread / 250 ≈ 200 us — the paper's "priority slot length of
// approximately one CAN-message".

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "bench/common.hpp"
#include "core/scenario.hpp"
#include "core/srtec.hpp"
#include "trace/csv.hpp"
#include "util/bytes.hpp"
#include "util/random.hpp"

using namespace rtec;
using namespace rtec::literals;

namespace {

constexpr Duration kRun = Duration::seconds(2);

struct Row {
  double inversion_rate = 0;   // inversions / transmitted messages
  double beyond_horizon = 0;   // fraction of messages published past ΔH
  double promotions_per_msg = 0;
  double blocked_per_msg = 0;
};

Row run(Duration slot_len, std::uint64_t seed) {
  Scenario::Config cfg;
  cfg.srt_map.slot_length = slot_len;
  Scenario scn{cfg};
  Node::ClockParams perfect;
  perfect.granularity = 1_ns;

  constexpr int kNodes = 4;
  std::vector<Node*> nodes;
  std::vector<std::unique_ptr<Srtec>> channels;
  for (NodeId n = 1; n <= kNodes; ++n) {
    Node& node = scn.add_node(n, perfect);
    nodes.push_back(&node);
    channels.push_back(std::make_unique<Srtec>(node.middleware()));
    (void)channels.back()->announce(
        subject_of("e6/" + std::to_string(n)), {}, nullptr);
  }

  // Bookkeeping per message uid (carried in the payload).
  struct MsgInfo {
    TimePoint published;
    TimePoint deadline;
  };
  std::map<std::uint32_t, MsgInfo> info;
  struct TxRecord {
    std::uint32_t uid;
    TimePoint start;
  };
  std::vector<TxRecord> tx_order;
  scn.bus().add_observer([&](const CanBus::FrameEvent& ev) {
    if (!ev.success) return;
    if (classify_priority(id_priority(ev.frame.id)) != TrafficClass::kSrt)
      return;
    tx_order.push_back({load_le32({ev.frame.data.data(), 4}), ev.start});
  });

  // Poisson arrivals: ~70% load across 4 nodes; C ~= 160 us.
  const double mean_gap_ns = 160e3 * kNodes / 0.7;
  Rng rng{seed};
  std::uint32_t next_uid = 1;
  std::uint64_t beyond = 0;
  const DeadlinePriorityMap map{cfg.srt_map};
  for (int n = 0; n < kNodes; ++n) {
    TimePoint t = TimePoint::origin();
    while (true) {
      t += Duration::nanoseconds(
          static_cast<std::int64_t>(rng.exponential(mean_gap_ns)));
      if (t >= TimePoint::origin() + kRun) break;
      const TimePoint deadline =
          t + Duration::microseconds(rng.uniform_int(1000, 50'000));
      const std::uint32_t uid = next_uid++;
      info[uid] = {t, deadline};
      if (deadline - t > map.horizon()) ++beyond;
      Srtec* chan = channels[static_cast<std::size_t>(n)].get();
      scn.sim().schedule_at(t, [chan, uid, deadline] {
        Event e;
        e.content.assign(8, 0);
        store_le32({e.content.data(), 4}, uid);
        e.attributes.deadline = deadline;
        e.attributes.expiration = deadline + Duration::seconds(10);
        (void)chan->publish(std::move(e));
      });
    }
  }

  scn.run_for(kRun + Duration::seconds(1));

  // Count inversions: i transmitted before j, but j was already published
  // when i started and has the earlier deadline.
  std::uint64_t inversions = 0;
  for (std::size_t i = 0; i < tx_order.size(); ++i) {
    const MsgInfo& mi = info[tx_order[i].uid];
    for (std::size_t j = i + 1; j < tx_order.size(); ++j) {
      const MsgInfo& mj = info[tx_order[j].uid];
      if (mj.published > tx_order[i].start) continue;  // j not queued yet
      if (mj.deadline < mi.deadline) ++inversions;
    }
  }

  Row row;
  row.inversion_rate = tx_order.empty()
                           ? 0.0
                           : static_cast<double>(inversions) /
                                 static_cast<double>(tx_order.size());
  row.beyond_horizon =
      static_cast<double>(beyond) / static_cast<double>(info.size());
  std::uint64_t promotions = 0;
  std::uint64_t blocked = 0;
  std::uint64_t sent = 0;
  for (Node* n : nodes) {
    promotions += n->middleware().srt().counters().promotions;
    blocked += n->middleware().srt().counters().promotion_blocked;
    sent += n->middleware().srt().counters().sent;
  }
  row.promotions_per_msg =
      sent == 0 ? 0.0 : static_cast<double>(promotions) / static_cast<double>(sent);
  row.blocked_per_msg =
      sent == 0 ? 0.0 : static_cast<double>(blocked) / static_cast<double>(sent);
  return row;
}

}  // namespace

int main() {
  bench::title("E6", "priority-slot length Δt_p: schedule quality vs horizon vs overhead");
  bench::note("4 nodes, Poisson arrivals at 70%% load, deadlines U[1,50] ms,");
  bench::note("250 SRT bands -> ΔH = 250 * Δt_p; 2 s per point");

  CsvWriter csv{"bench_priority_slot.csv"};
  csv.header({"slot_us", "horizon_ms", "inversions_per_msg", "beyond_horizon",
              "promotions_per_msg", "blocked_per_msg"});

  std::printf("\n  %-10s %-13s %-18s %-16s %-16s %s\n", "Δt_p (us)",
              "ΔH (ms)", "inversions/msg", "beyond ΔH", "promotions/msg",
              "blocked/msg");
  bench::rule();
  for (const std::int64_t slot_us : {20LL, 50LL, 100LL, 200LL, 400LL, 1600LL,
                                     6400LL, 25600LL}) {
    const Duration slot = Duration::microseconds(slot_us);
    const Row r = run(slot, 31337);
    const double horizon_ms = static_cast<double>(slot_us) * 250 / 1000.0;
    std::printf("  %-10lld %-13.1f %-18.4f %-16.3f %-16.2f %.3f\n",
                static_cast<long long>(slot_us), horizon_ms, r.inversion_rate,
                r.beyond_horizon, r.promotions_per_msg, r.blocked_per_msg);
    csv.row(slot_us, horizon_ms, r.inversion_rate, r.beyond_horizon,
            r.promotions_per_msg, r.blocked_per_msg);
  }
  bench::rule();
  bench::note("inversions are minimal where the horizon just covers the 50 ms");
  bench::note("deadline spread (Δt_p ~ 200 us, the paper's 'about one CAN");
  bench::note("message'); smaller slots push deadlines past ΔH (saturated band),");
  bench::note("larger slots collide distinct deadlines into one band. Promotion");
  bench::note("overhead falls as Δt_p grows — the other side of the trade-off.");
  return 0;
}
