// E11 — single point of failure: masterless event channels vs FTT-CAN
// (§4: "both protocols are based on a master-slave mechanism which we
// wanted to avoid in our system because the master constitutes a single
// point of failure").
//
// Identical periodic workload (one 10 ms stream) on both protocols. At
// t = 1 s the "most important" node dies:
//   * ours — the clock-sync master. Data flow needs no master: the
//     publisher keeps its reservation and the receivers keep their
//     windows; the clocks merely start to coast apart at their drift
//     rates, so deliveries continue and only degrade when accumulated
//     skew finally exceeds the slot tolerances.
//   * FTT-CAN — the scheduling master. Slaves transmit only when polled:
//     synchronous traffic stops with the next missing trigger message.
//
// Output: deliveries per 500 ms bucket over 5 s, per protocol and drift
// magnitude.

#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "baselines/ftt_can.hpp"
#include "bench/common.hpp"
#include "core/hrtec.hpp"
#include "core/scenario.hpp"
#include "time/periodic.hpp"
#include "trace/csv.hpp"

using namespace rtec;
using namespace rtec::literals;

namespace {

constexpr Duration kTotal = Duration::seconds(5);
constexpr Duration kBucket = Duration::milliseconds(500);
constexpr int kBuckets = static_cast<int>(kTotal / kBucket);

std::vector<int> run_ours(std::int64_t drift_ppb, bool rate_servo) {
  Scenario::Config cfg;
  cfg.calendar.round_length = 10_ms;
  Scenario scn{cfg};
  Node& pub_node = scn.add_node(1, {Duration::microseconds(8), drift_ppb, 1_us});
  Node& sub_node = scn.add_node(2, {Duration::microseconds(-6), -drift_ppb, 1_us});
  Node& master = scn.add_node(3, {Duration::zero(), drift_ppb / 3, 1_us});
  (void)scn.enable_clock_sync(master.id(), 500_us, rate_servo);

  const Subject subject = subject_of("e11/stream");
  SlotSpec slot;
  slot.lst_offset = 2_ms;
  slot.dlc = 4;
  slot.fault.omission_degree = 1;
  slot.etag = *scn.binding().bind(subject);
  slot.publisher = pub_node.id();
  (void)*scn.calendar().reserve(slot);

  scn.run_for(20_ms);  // sync warm-up

  Hrtec pub{pub_node.middleware()};
  Hrtec sub{sub_node.middleware()};
  (void)pub.announce(subject, AttributeList{attr::Periodic{10_ms}}, nullptr);
  std::vector<int> buckets(kBuckets, 0);
  (void)sub.subscribe(subject, AttributeList{attr::QueueCapacity{8}},
                      [&] {
                        (void)sub.getEvent();
                        const auto b = static_cast<std::size_t>(
                            scn.sim().now().ns() / kBucket.ns());
                        if (b < buckets.size())
                          ++buckets[b];
                      },
                      nullptr);
  PeriodicLocalTask feeder{pub_node.clock(), 10_ms, [&] {
                             Event e;
                             e.content = {1, 2, 3, 4};
                             (void)pub.publish(std::move(e));
                           }};
  feeder.start();

  // Kill the sync master (the only "special" node we have) at 1 s.
  scn.sim().schedule_at(TimePoint::origin() + Duration::seconds(1), [&] {
    master.controller().set_online(false);
    if (master.sync_master() != nullptr) master.sync_master()->stop();
  });

  scn.run_until(TimePoint::origin() + kTotal);
  return buckets;
}

std::vector<int> run_ftt() {
  Simulator sim;
  CanBus bus{sim, BusConfig{}};
  CanController master_ctl{sim, 1};
  CanController producer_ctl{sim, 2};
  CanController consumer_ctl{sim, 3};
  bus.attach(master_ctl);
  bus.attach(producer_ctl);
  bus.attach(consumer_ctl);

  FttConfig cfg;
  cfg.elementary_cycle = 10_ms;
  cfg.async_window_offset = 4_ms;
  cfg.bus = bus.config();

  FttMaster master{sim, master_ctl, cfg};
  master.add_stream({0, 2, 4, 10_ms});
  FttSlave producer{sim, producer_ctl, cfg};
  producer.produce(0, [](std::uint8_t) {
    CanFrame f;
    f.id = 0x100;
    f.dlc = 4;
    f.data = {1, 2, 3, 4, 0, 0, 0, 0};
    return f;
  });

  std::vector<int> buckets(kBuckets, 0);
  consumer_ctl.add_rx_listener([&](const CanFrame& f, TimePoint now) {
    if (f.id != 0x100) return;
    const auto b = static_cast<std::size_t>(now.ns() / kBucket.ns());
    if (b < buckets.size()) ++buckets[b];
  });

  master.start();
  sim.schedule_at(TimePoint::origin() + Duration::seconds(1), [&] {
    master_ctl.set_online(false);
    master.stop();
  });
  sim.run_until(TimePoint::origin() + kTotal);
  return buckets;
}

}  // namespace

int main() {
  bench::title("E11", "master failure: event channels (masterless data plane) vs FTT-CAN");
  bench::note("10 ms periodic stream; at t=1 s the sync master (ours) / the");
  bench::note("scheduling master (FTT-CAN) dies. Deliveries per 500 ms bucket:");

  const auto ours_servo = run_ours(150'000, /*rate_servo=*/true);
  const auto ours_raw = run_ours(150'000, /*rate_servo=*/false);
  const auto ftt = run_ftt();

  CsvWriter csv{"bench_master_failure.csv"};
  csv.header(
      {"bucket_start_ms", "ours_servo", "ours_no_servo", "ftt_can"});

  std::printf("\n  %-16s %-16s %-17s %s\n", "bucket (ms)",
              "ours (servo)", "ours (no servo)", "ftt-can");
  bench::rule();
  for (int b = 0; b < kBuckets; ++b) {
    const std::int64_t start = b * kBucket.ns() / 1'000'000;
    std::printf("  %5lld - %-8lld %-16d %-17d %d %s\n",
                static_cast<long long>(start),
                static_cast<long long>(start + 500),
                ours_servo[static_cast<std::size_t>(b)],
                ours_raw[static_cast<std::size_t>(b)],
                ftt[static_cast<std::size_t>(b)],
                start == 1000 ? "  <- master dies" : "");
    csv.row(start, ours_servo[static_cast<std::size_t>(b)],
            ours_raw[static_cast<std::size_t>(b)],
            ftt[static_cast<std::size_t>(b)]);
  }
  bench::rule();
  bench::note("Both runs use ±150 ppm clocks. FTT-CAN stops dead at the first");
  bench::note("missing trigger message. Our data plane has no master: the");
  bench::note("stream continues at full rate; without the rate servo the");
  bench::note("unsynchronized clocks coast apart at their raw 300 ppm relative");
  bench::note("drift and deliveries die out after ~0.5 s of coasting, while the");
  bench::note("windowed servo has learned the rate error and keeps the stream");
  bench::note("alive for the remaining 4 s of the run.");
  return 0;
}
