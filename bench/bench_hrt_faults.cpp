// E2 — HRT guarantees under omission faults (§3.2, Livani/Kaiser [16]).
//
// Table 1: analysis vs. simulation. For each (DLC, omission degree k) the
// analytic WCTT bound is compared against the worst observed latency
// (ready → successful end-of-frame) under an adversarial fault script that
// corrupts exactly the first k attempts of every message AND an
// adversarial worst-length blocker. The bound must dominate, and be tight
// to within the stuffing slack.
//
// Table 2: random omission faults. Sweep fault probability p and the
// channel's provisioned omission degree k; report per-instance failure
// rate. Expect: failures only when more than k consecutive corruptions
// hit one message — i.e. ~p^(k+1) — while provisioned channels ride
// through everything else with zero deadline misses.

#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "bench/common.hpp"
#include "bench/sweep.hpp"
#include "core/hrtec.hpp"
#include "core/scenario.hpp"
#include "trace/csv.hpp"
#include "util/task_pool.hpp"

using namespace rtec;
using namespace rtec::literals;

namespace {

Node::ClockParams perfect() {
  Node::ClockParams p;
  p.granularity = 1_ns;
  return p;
}

/// Worst observed ready->completion latency over `rounds` instances with
/// exactly k corruptions per message plus a worst-case blocker.
Duration adversarial_latency(int dlc, int k, int rounds) {
  Scenario::Config cfg;
  cfg.calendar.round_length = 10_ms;
  Scenario scn{cfg};
  Node& pub_node = scn.add_node(1, perfect());
  scn.add_node(2, perfect());
  Node& adversary = scn.add_node(9, perfect());

  const Subject subject = subject_of("e2/hrt");
  SlotSpec slot;
  slot.lst_offset = 2_ms;
  slot.dlc = dlc;
  slot.fault.omission_degree = k;
  slot.etag = *scn.binding().bind(subject);
  slot.publisher = pub_node.id();
  const std::size_t slot_index = *scn.calendar().reserve(slot);

  auto faults = std::make_unique<ScriptedFaults>();
  auto counter = std::make_shared<int>(0);
  faults->add_rule([counter, k](const FaultContext& ctx) {
    if (id_priority(ctx.frame.id) != kHrtPriority) return false;
    // Corrupt attempts 1..k of each message, at the LAST bit (worst case).
    return (*counter)++ % (k + 1) < k;
  });
  scn.set_fault_model(std::move(faults));

  Hrtec pub{pub_node.middleware()};
  (void)pub.announce(subject, {}, nullptr);

  Duration worst = Duration::zero();
  TimePoint window_ready;
  scn.bus().add_observer([&](const CanBus::FrameEvent& ev) {
    if (id_priority(ev.frame.id) == kHrtPriority && ev.success) {
      const Duration latency = ev.end - window_ready;
      if (latency > worst) worst = latency;
    }
  });

  for (int r = 0; r < rounds; ++r) {
    const Calendar::Instance inst = scn.calendar().instance_at_or_after(
        slot_index, TimePoint::origin() + cfg.calendar.round_length * r);
    window_ready = inst.ready;
    scn.sim().schedule_at(inst.ready - 10_us, [&pub, dlc] {
      Event e;
      e.content.assign(static_cast<std::size_t>(dlc), 0x00);  // worst stuffing
      (void)pub.publish(std::move(e));
    });
    // Worst-length blocker just before ready.
    scn.sim().schedule_at(inst.ready - 1_ns, [&adversary] {
      CanFrame f;
      f.id = encode_can_id({kNrtPriorityMax, 9, 500});
      f.dlc = 8;
      f.data.fill(0);
      (void)adversary.controller().submit(f, TxMode::kAutoRetransmit);
    });
    scn.run_until(inst.deadline + 1_ms);
  }
  return worst;
}

struct RandomRun {
  std::uint64_t instances = 0;
  std::uint64_t failures = 0;   // publisher-side kTransmissionFailed
  std::uint64_t bus_off = 0;    // instances lost to bus-off recovery
  std::uint64_t missing = 0;    // subscriber-side kMissingMessage
  std::uint64_t retries = 0;
};

RandomRun random_fault_run(double p, int k, int rounds, std::uint64_t seed) {
  TaskPool tasks;
  Scenario::Config cfg;
  cfg.calendar.round_length = 5_ms;
  Scenario scn{cfg};
  Node& pub_node = scn.add_node(1, perfect());
  Node& sub_node = scn.add_node(2, perfect());

  const Subject subject = subject_of("e2/rand");
  SlotSpec slot;
  slot.lst_offset = 1_ms;
  slot.dlc = 8;
  slot.fault.omission_degree = k;
  slot.etag = *scn.binding().bind(subject);
  slot.publisher = pub_node.id();
  (void)*scn.calendar().reserve(slot);

  scn.set_fault_model(std::make_unique<RandomOmissionFaults>(p, seed));

  RandomRun out;
  Hrtec pub{pub_node.middleware()};
  Hrtec sub{sub_node.middleware()};
  (void)pub.announce(subject, {}, [&](const ExceptionInfo& e) {
    if (e.error == ChannelError::kTransmissionFailed) ++out.failures;
    if (e.error == ChannelError::kBusOff) ++out.bus_off;
  });
  (void)sub.subscribe(subject, AttributeList{attr::QueueCapacity{4}},
                      [&] { (void)sub.getEvent(); },
                      [&](const ExceptionInfo& e) {
                        if (e.error == ChannelError::kMissingMessage)
                          ++out.missing;
                      });

  auto* loop = tasks.make();
  *loop = [&, loop] {
    Event e;
    e.content = {1, 2, 3, 4, 5, 6, 7, 8};
    (void)pub.publish(std::move(e));
    scn.sim().schedule_after(5_ms, [loop] { (*loop)(); });
  };
  scn.sim().schedule_after(Duration::zero(), [loop] { (*loop)(); });

  scn.run_for(cfg.calendar.round_length * rounds + 1_ms);
  out.instances = static_cast<std::uint64_t>(rounds);
  out.retries = pub_node.middleware().hrt().counters().retries;
  return out;
}

}  // namespace

int main() {
  bench::title("E2", "HRT worst-case transmission time & fault tolerance");

  const BusConfig bus;
  CsvWriter csv{"bench_hrt_faults.csv"};
  csv.header({"dlc", "k", "analytic_us", "simulated_us"});
  bench::BenchJson bj{"hrt_faults"};
  bj.meta("generated_by", "bench_hrt_faults");
  bj.meta("threads", static_cast<double>(bench::sweep_threads()));

  // Every (dlc, k) point builds its own Scenario — run them in parallel.
  struct T1Point {
    int dlc = 0, k = 0;
  };
  std::vector<T1Point> t1_grid;
  for (int dlc : {0, 2, 4, 8})
    for (int k : {0, 1, 2, 3}) t1_grid.push_back({dlc, k});
  struct T1Row {
    Duration bound, sim;
  };
  const std::vector<T1Row> t1 =
      bench::sweep(t1_grid.size(), [&](std::size_t i) {
        const auto [dlc, k] = t1_grid[i];
        // Bound from the latest ready time: ΔT_wait blocking + WCTT.
        return T1Row{hrt_slot_window(dlc, {k}, bus),
                     adversarial_latency(dlc, k, 4)};
      });

  std::printf("\n  Table 1 — analytic WCTT bound vs worst simulated latency\n");
  std::printf("  (adversarial: k corruptions per message + worst blocker)\n");
  std::printf("  %-5s %-4s %-22s %-22s %s\n", "dlc", "k", "analysis bound (us)",
              "worst simulated (us)", "bound holds");
  bench::rule();
  bool all_hold = true;
  for (std::size_t i = 0; i < t1_grid.size(); ++i) {
    const auto [dlc, k] = t1_grid[i];
    const bool holds = t1[i].sim <= t1[i].bound;
    all_hold &= holds;
    std::printf("  %-5d %-4d %-22.1f %-22.1f %s\n", dlc, k, t1[i].bound.us(),
                t1[i].sim.us(), holds ? "yes" : "VIOLATED");
    csv.row(dlc, k, t1[i].bound.us(), t1[i].sim.us());
    bj.row({{"dlc", static_cast<double>(dlc)},
            {"k", static_cast<double>(k)},
            {"analytic_us", t1[i].bound.us()},
            {"simulated_us", t1[i].sim.us()}});
  }
  bench::rule();
  bench::note("analysis dominates simulation in every configuration: %s",
              all_hold ? "YES" : "NO (!!)");

  struct T2Point {
    double p = 0;
    int k = 0;
  };
  std::vector<T2Point> t2_grid;
  for (double p : {0.01, 0.05, 0.20})
    for (int k : {0, 1, 2, 3}) t2_grid.push_back({p, k});
  const std::vector<RandomRun> t2 =
      bench::sweep(t2_grid.size(), [&](std::size_t i) {
        return random_fault_run(t2_grid[i].p, t2_grid[i].k, 2000, 77);
      });

  std::printf("\n  Table 2 — random omission faults: failure rate vs provisioned k\n");
  std::printf("  (2000 instances each; failure = fault assumption violated)\n");
  std::printf("  %-8s %-4s %-10s %-9s %-10s %-10s %s\n", "p", "k", "failures",
              "bus-off", "missing", "retries", "failure rate");
  bench::rule();
  for (std::size_t i = 0; i < t2_grid.size(); ++i) {
    const RandomRun& r = t2[i];
    std::printf("  %-8.2f %-4d %-10llu %-9llu %-10llu %-10llu %.4f\n",
                t2_grid[i].p, t2_grid[i].k,
                static_cast<unsigned long long>(r.failures),
                static_cast<unsigned long long>(r.bus_off),
                static_cast<unsigned long long>(r.missing),
                static_cast<unsigned long long>(r.retries),
                static_cast<double>(r.failures) /
                    static_cast<double>(r.instances));
    bj.row({{"p", t2_grid[i].p},
            {"k", static_cast<double>(t2_grid[i].k)},
            {"failures", static_cast<double>(r.failures)},
            {"retries", static_cast<double>(r.retries)}});
  }
  bench::rule();
  if (!bj.write()) bench::note("warning: could not write BENCH_hrt_faults.json");
  bench::note("failures scale ~ p^(k+1): each extra provisioned attempt buys");
  bench::note("an order of magnitude, and costs bandwidth ONLY on actual");
  bench::note("faults (retries column) — the paper's low-average-penalty claim.");
  return 0;
}
