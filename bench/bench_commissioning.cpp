// Commissioning study — cost of the runtime binding protocol (§2.1, [13]).
//
// At boot, every node resolves its subjects through the binding agent over
// the bus (request/reply on the reserved NRT channels). Sweep system size:
// how long until the whole network is bound, how many frames the
// configuration phase costs, and how it degrades when application traffic
// is already running ("hot-plug" commissioning).
//
// The paper argues subject-based addressing can be "optimized to meet the
// requirements of restricted computational resources" — the numbers here
// show the network side of that cost is a few milliseconds per node.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/common.hpp"
#include "core/binding_protocol.hpp"
#include "core/scenario.hpp"
#include "core/srtec.hpp"
#include "time/periodic.hpp"
#include "trace/csv.hpp"

using namespace rtec;
using namespace rtec::literals;

namespace {

struct Row {
  double total_ms = 0;       ///< boot start -> last binding resolved
  double per_subject_us = 0;
  std::uint64_t frames = 0;  ///< binding-channel frames on the bus
  std::uint64_t timeouts = 0;
};

Row run(int nodes, int subjects_per_node, bool with_background) {
  Scenario scn;
  Node::ClockParams perfect;
  perfect.granularity = 1_ns;
  Node& agent_node = scn.add_node(1, perfect);
  BindingAgent agent{agent_node.middleware().context(), scn.binding()};

  std::vector<Node*> members;
  std::vector<std::unique_ptr<BindingClient>> clients;
  for (int n = 0; n < nodes; ++n) {
    Node& node = scn.add_node(static_cast<NodeId>(n + 2), perfect);
    members.push_back(&node);
    clients.push_back(
        std::make_unique<BindingClient>(node.middleware().context()));
  }

  // Optional background: an already-running SRT stream at ~40% load.
  std::unique_ptr<Srtec> bg;
  std::unique_ptr<PeriodicLocalTask> bg_task;
  if (with_background) {
    Node& talker = scn.add_node(120, perfect);
    bg = std::make_unique<Srtec>(talker.middleware());
    (void)bg->announce(subject_of("bg/chatter"),
                       AttributeList{attr::Deadline{5_ms}}, nullptr);
    Srtec* chan = bg.get();
    bg_task = std::make_unique<PeriodicLocalTask>(talker.clock(), 400_us,
                                                  [chan] {
                                                    Event e;
                                                    e.content.assign(8, 0xAA);
                                                    (void)chan->publish(
                                                        std::move(e));
                                                  });
    bg_task->start();
    scn.run_for(5_ms);  // background established before boot storm
  }

  std::uint64_t binding_frames = 0;
  scn.bus().add_observer([&](const CanBus::FrameEvent& ev) {
    if (!ev.success) return;
    const Etag etag = decode_can_id(ev.frame.id).etag;
    if (etag == kBindingRequestEtag || etag == kBindingReplyEtag)
      ++binding_frames;
  });

  // Boot storm: every node resolves its subjects simultaneously.
  const TimePoint start = scn.sim().now();
  int outstanding = nodes * subjects_per_node;
  TimePoint last_done = start;
  for (int n = 0; n < nodes; ++n) {
    for (int s = 0; s < subjects_per_node; ++s) {
      const std::string name =
          "app/" + std::to_string(n) + "/" + std::to_string(s);
      clients[static_cast<std::size_t>(n)]->resolve(
          subject_of(name), [&outstanding, &last_done, &scn](auto r) {
            if (r.has_value()) {
              --outstanding;
              last_done = scn.sim().now();
            }
          });
    }
  }
  scn.run_for(Duration::seconds(5));

  Row row;
  row.total_ms = outstanding == 0 ? (last_done - start).ms() : -1;
  row.per_subject_us =
      outstanding == 0
          ? (last_done - start).us() / (nodes * subjects_per_node)
          : -1;
  row.frames = binding_frames;
  for (const auto& c : clients) row.timeouts += c->timeouts();
  return row;
}

}  // namespace

int main() {
  bench::title("commissioning", "runtime binding protocol: boot-storm cost");
  bench::note("every node resolves its subjects through the binding agent at");
  bench::note("boot; background = 40%% SRT load already on the bus");

  CsvWriter csv{"bench_commissioning.csv"};
  csv.header({"nodes", "subjects_per_node", "background", "total_ms",
              "per_subject_us", "frames", "timeouts"});

  std::printf("\n  %-7s %-10s %-12s %-11s %-16s %-9s %s\n", "nodes",
              "subj/node", "background", "total (ms)", "per subject (us)",
              "frames", "timeouts");
  bench::rule();
  for (int nodes : {4, 16, 63}) {
    for (int subjects : {1, 4}) {
      for (bool bg : {false, true}) {
        const Row r = run(nodes, subjects, bg);
        std::printf("  %-7d %-10d %-12s %-11.2f %-16.1f %-9llu %llu\n", nodes,
                    subjects, bg ? "40% SRT" : "idle", r.total_ms,
                    r.per_subject_us,
                    static_cast<unsigned long long>(r.frames),
                    static_cast<unsigned long long>(r.timeouts));
        csv.row(nodes, subjects, bg ? 1 : 0, r.total_ms, r.per_subject_us,
                r.frames, r.timeouts);
      }
    }
    bench::rule();
  }
  bench::note("cost is two frames (~200 us of bus) per subject, serialized at");
  bench::note("the agent; even a 63-node, 4-subject boot storm binds in well");
  bench::note("under a second, and background traffic only stretches it by its");
  bench::note("bandwidth share (binding runs in the NRT band: configuration");
  bench::note("never disturbs running real-time channels). Timeouts at the");
  bench::note("largest storms are clients whose 50 ms patience expired while");
  bench::note("the agent's reply backlog drained — their retries resolve, and");
  bench::note("overheard replies warm caches so duplicates never hit the bus.");
  return 0;
}
