// E8 — full-system integration: all three channel classes, synchronized
// drifting clocks, and omission faults at once (§5's composed system).
//
// 8 nodes on one bus:
//   4 HRT publishers (periodic sensor streams, one slot each, k=1)
//   1 HRT sporadic publisher (alarm, k=2, rarely fires)
//   2 SRT publishers (commands at 60% of the residual bandwidth)
//   1 NRT bulk uploader (continuously streaming blobs)
// Reported: per-class end-to-end latency distribution, deadline misses,
// missing-message count, per-class bus share, and the bus-level priority
// invariant (every observed frame ordering respects HRT < SRT < NRT when
// simultaneously pending).

#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "bench/common.hpp"
#include "core/hrtec.hpp"
#include "core/nrtec.hpp"
#include "core/scenario.hpp"
#include "time/periodic.hpp"
#include "core/srtec.hpp"
#include "trace/csv.hpp"
#include "trace/histogram.hpp"
#include "trace/metrics.hpp"
#include "util/random.hpp"
#include "util/task_pool.hpp"

using namespace rtec;
using namespace rtec::literals;

int main() {
  TaskPool tasks;
  bench::title("E8", "mixed-criticality system: latency distributions per class");
  bench::note("8 nodes, drifting clocks (<=100 ppm) + sync, 1%% omission faults,");
  bench::note("10 simulated seconds");

  Scenario::Config cfg;
  cfg.calendar.round_length = 10_ms;
  Scenario scn{cfg};
  Rng rng{2024};

  std::vector<Node*> nodes;
  for (NodeId n = 1; n <= 8; ++n) {
    Node::ClockParams p;
    p.initial_offset = Duration::microseconds(rng.uniform_int(-25, 25));
    p.drift_ppb = rng.uniform_int(-100'000, 100'000);
    p.granularity = 1_us;
    nodes.push_back(&scn.add_node(n, p));
  }
  (void)scn.enable_clock_sync(8, 500_us);
  scn.set_fault_model(std::make_unique<RandomOmissionFaults>(0.01, 555));

  // --- HRT periodic streams -------------------------------------------
  struct HrtStream {
    std::unique_ptr<Hrtec> pub;
    std::unique_ptr<Hrtec> sub;
    TimePoint published;
    SampleSet latency;  // publish -> delivery, on the global timeline
    std::uint64_t missing = 0;
  };
  std::vector<std::unique_ptr<HrtStream>> hrt;
  for (int i = 0; i < 4; ++i) {
    const Subject subject = subject_of("e8/hrt" + std::to_string(i));
    SlotSpec slot;
    slot.lst_offset = 2_ms + Duration::microseconds(900) * i;
    slot.dlc = 8;
    slot.fault.omission_degree = 1;
    slot.etag = *scn.binding().bind(subject);
    slot.publisher = static_cast<NodeId>(i + 1);
    if (!scn.calendar().reserve(slot)) {
      std::puts("  reservation failed");
      return 1;
    }
    auto s = std::make_unique<HrtStream>();
    s->pub = std::make_unique<Hrtec>(nodes[static_cast<std::size_t>(i)]->middleware());
    s->sub = std::make_unique<Hrtec>(nodes[7]->middleware());
    hrt.push_back(std::move(s));
  }
  // Sporadic alarm from node 5.
  const Subject alarm_subject = subject_of("e8/alarm");
  {
    SlotSpec slot;
    slot.lst_offset = 7_ms;
    slot.dlc = 1;
    slot.fault.omission_degree = 2;
    slot.etag = *scn.binding().bind(alarm_subject);
    slot.publisher = 5;
    slot.periodic = false;
    if (!scn.calendar().reserve(slot)) {
      std::puts("  alarm reservation failed");
      return 1;
    }
  }

  scn.run_for(20_ms);  // sync warm-up before announcing

  for (int i = 0; i < 4; ++i) {
    HrtStream& s = *hrt[static_cast<std::size_t>(i)];
    const Subject subject = subject_of("e8/hrt" + std::to_string(i));
    (void)s.pub->announce(subject, AttributeList{attr::Periodic{10_ms}}, nullptr);
    HrtStream* sp = &s;
    Simulator& sim = scn.sim();
    (void)s.sub->subscribe(subject, AttributeList{attr::QueueCapacity{16}},
                           [sp, &sim] {
                             (void)sp->sub->getEvent();
                             sp->latency.add(sim.now() - sp->published);
                           },
                           [sp](const ExceptionInfo&) { ++sp->missing; });
    Node* node = nodes[static_cast<std::size_t>(i)];
    auto* loop = tasks.make();
    // Periodic on an absolute local timeline (re-arming from now() would
    // accumulate the clock tick truncation every round).
    auto next = std::make_shared<TimePoint>(node->clock().now());
    *loop = [sp, node, loop, next] {
      Event e;
      e.content = {8, 7, 6, 5, 4, 3, 2, 1};
      sp->published = node->middleware().context().sim.now();
      (void)sp->pub->publish(std::move(e));
      *next += 10_ms;
      node->clock().schedule_at_local(*next, [loop] { (*loop)(); });
    };
    (*loop)();
  }

  Hrtec alarm_pub{nodes[4]->middleware()};
  Hrtec alarm_sub{nodes[7]->middleware()};
  (void)alarm_pub.announce(alarm_subject, AttributeList{attr::Sporadic{10_ms}},
                           nullptr);
  int alarms_rx = 0;
  (void)alarm_sub.subscribe(alarm_subject, {},
                            [&] {
                              ++alarms_rx;
                              (void)alarm_sub.getEvent();
                            },
                            nullptr);
  int alarms_tx = 0;
  {
    auto* alarm_loop = tasks.make();
    *alarm_loop = [&, alarm_loop] {
      if (rng.bernoulli(0.03)) {  // ~3 alarms per second
        Event e;
        e.content = {0xEE};
        (void)alarm_pub.publish(std::move(e));
        ++alarms_tx;
      }
      scn.sim().schedule_after(10_ms, [alarm_loop] { (*alarm_loop)(); });
    };
    scn.sim().schedule_after(1_ms, [alarm_loop] { (*alarm_loop)(); });
  }

  // --- SRT command streams ----------------------------------------------
  struct SrtStream {
    std::unique_ptr<Srtec> pub;
    std::unique_ptr<Srtec> sub;
    TimePoint published;
    SampleSet latency;
    std::uint64_t misses = 0;
  };
  std::vector<std::unique_ptr<SrtStream>> srt;
  for (int i = 0; i < 2; ++i) {
    auto s = std::make_unique<SrtStream>();
    const Subject subject = subject_of("e8/srt" + std::to_string(i));
    s->pub = std::make_unique<Srtec>(nodes[static_cast<std::size_t>(5 + i)]->middleware());
    s->sub = std::make_unique<Srtec>(nodes[static_cast<std::size_t>(1 - i)]->middleware());
    SrtStream* sp = s.get();
    (void)s->pub->announce(subject,
                           AttributeList{attr::Deadline{5_ms},
                                         attr::Expiration{15_ms}},
                           [sp](const ExceptionInfo& e) {
                             if (e.error == ChannelError::kDeadlineMissed)
                               ++sp->misses;
                           });
    Simulator& sim = scn.sim();
    (void)s->sub->subscribe(subject, AttributeList{attr::QueueCapacity{32}},
                            [sp, &sim] {
                              (void)sp->sub->getEvent();
                              sp->latency.add(sim.now() - sp->published);
                            },
                            nullptr);
    auto* loop = tasks.make();
    Scenario* sc = &scn;
    *loop = [sp, sc, loop] {
      Event e;
      e.content = {1, 2, 3, 4};
      sp->published = sc->sim().now();
      (void)sp->pub->publish(std::move(e));
      sc->sim().schedule_after(1500_us, [loop] { (*loop)(); });
    };
    scn.sim().schedule_after(100_us * (i + 1), [loop] { (*loop)(); });
    srt.push_back(std::move(s));
  }

  // --- NRT bulk stream ---------------------------------------------------
  const AttributeList frag{attr::Fragmentation{true}};
  Nrtec bulk_pub{nodes[6]->middleware()};
  Nrtec bulk_sub{nodes[7]->middleware()};
  (void)bulk_pub.announce(subject_of("e8/bulk"), frag, nullptr);
  int blobs = 0;
  (void)bulk_sub.subscribe(subject_of("e8/bulk"), frag,
                           [&] {
                             ++blobs;
                             (void)bulk_sub.getEvent();
                           },
                           nullptr);
  {
    auto* feed = tasks.make();
    *feed = [&, feed] {
      if (nodes[6]->middleware().nrt().backlog_frames() < 8) {
        Event blob;
        blob.content.assign(2048, 0xBB);
        (void)bulk_pub.publish(std::move(blob));
      }
      scn.sim().schedule_after(5_ms, [feed] { (*feed)(); });
    };
    scn.sim().schedule_after(Duration::zero(), [feed] { (*feed)(); });
  }

  // --- run ----------------------------------------------------------------
  ClassUtilization util{scn.bus()};
  scn.run_for(Duration::seconds(10));

  CsvWriter csv{"bench_mixed_system.csv"};
  csv.header({"stream", "mean_us", "p50_us", "p99_us", "max_us", "jitter_us",
              "misses"});

  std::printf("\n  %-12s %-10s %-10s %-10s %-10s %-12s %s\n", "stream",
              "mean(us)", "p50(us)", "p99(us)", "max(us)", "jitter(us)",
              "misses/missing");
  bench::rule();
  std::uint64_t hrt_missing = 0;
  for (std::size_t i = 0; i < hrt.size(); ++i) {
    const auto& s = *hrt[i];
    std::printf("  hrt%-9zu %-10.0f %-10.0f %-10.0f %-10.0f %-12.0f %llu\n", i,
                s.latency.mean() / 1e3, s.latency.median() / 1e3,
                s.latency.quantile(0.99) / 1e3, s.latency.max() / 1e3,
                (s.latency.max() - s.latency.min()) / 1e3,
                static_cast<unsigned long long>(s.missing));
    csv.row("hrt" + std::to_string(i), s.latency.mean() / 1e3,
            s.latency.median() / 1e3, s.latency.quantile(0.99) / 1e3,
            s.latency.max() / 1e3, (s.latency.max() - s.latency.min()) / 1e3,
            s.missing);
    hrt_missing += s.missing;
  }
  for (std::size_t i = 0; i < srt.size(); ++i) {
    const auto& s = *srt[i];
    std::printf("  srt%-9zu %-10.0f %-10.0f %-10.0f %-10.0f %-12.0f %llu\n", i,
                s.latency.mean() / 1e3, s.latency.median() / 1e3,
                s.latency.quantile(0.99) / 1e3, s.latency.max() / 1e3,
                (s.latency.max() - s.latency.min()) / 1e3,
                static_cast<unsigned long long>(s.misses));
    csv.row("srt" + std::to_string(i), s.latency.mean() / 1e3,
            s.latency.median() / 1e3, s.latency.quantile(0.99) / 1e3,
            s.latency.max() / 1e3, (s.latency.max() - s.latency.min()) / 1e3,
            s.misses);
  }
  bench::rule();
  std::printf("  alarms: %d fired, %d delivered; blobs delivered: %d\n",
              alarms_tx, alarms_rx, blobs);
  std::printf("  bus share: HRT %.1f%%  SRT %.1f%%  NRT %.1f%%  (total %.1f%%)\n",
              util.fraction(TrafficClass::kHrt) * 100,
              util.fraction(TrafficClass::kSrt) * 100,
              util.fraction(TrafficClass::kNrt) * 100,
              scn.bus().utilization() * 100);
  // Hardware subject filtering (§2.1): node 1 subscribes to one SRT
  // channel, so its CPU sees only that stream + infrastructure frames out
  // of everything on the bus.
  const std::uint64_t total_frames =
      scn.bus().frames_ok() + scn.bus().frames_error();
  std::printf("  hw filtering: node 1 middleware saw %llu of %llu bus frames "
              "(%.1f%% filtered by the controller)\n",
              static_cast<unsigned long long>(
                  nodes[0]->middleware().rx_frames_seen()),
              static_cast<unsigned long long>(total_frames),
              100.0 * (1.0 - static_cast<double>(
                                 nodes[0]->middleware().rx_frames_seen()) /
                                 static_cast<double>(total_frames)));

  // Inline distribution of SRT end-to-end latencies — the contended class
  // whose shape matters (HRT is a spike at its deadline by construction).
  Histogram srt_hist{0, 1.2e6, 12};
  for (const auto& s : srt)
    for (double v : s->latency.values()) srt_hist.add(v);
  std::printf("\n  SRT end-to-end latency distribution:\n%s",
              srt_hist.render(/*unit_scale=*/1e3, " us").c_str());

  bench::note("HRT latency is pinned at the (constant) publish->deadline span");
  bench::note("with jitter limited to the clock ticks; SRT latency varies with");
  bench::note("contention but misses stay rare; the NRT stream soaks up the");
  bench::note("rest. HRT missing total: %llu (faults stayed within k).",
              static_cast<unsigned long long>(hrt_missing));
  return 0;
}
