// E7 — NRT bulk transfer (§2.2.3): fragmentation throughput and
// non-interference.
//
// A maintenance node uploads ROM-image-sized payloads over a fragmented
// NRT channel while periodic HRT traffic and SRT traffic of increasing
// intensity run above it. Reported per (payload size, RT load):
//   * achieved bulk throughput (payload kbit/s),
//   * transfer completion time,
//   * HRT deadline misses (must stay 0 at any NRT/SRT load — the priority
//     relation P_HRT < P_SRT < P_NRT guarantees it).

#include <cstdio>
#include <functional>
#include <memory>

#include "bench/common.hpp"
#include "core/hrtec.hpp"
#include "core/nrtec.hpp"
#include "core/scenario.hpp"
#include "core/srtec.hpp"
#include "trace/csv.hpp"
#include "util/task_pool.hpp"

using namespace rtec;
using namespace rtec::literals;

namespace {

Node::ClockParams perfect() {
  Node::ClockParams p;
  p.granularity = 1_ns;
  return p;
}

struct Row {
  double throughput_kbps = 0;
  double completion_ms = 0;
  std::uint64_t hrt_missing = 0;
  std::uint64_t srt_misses = 0;
};

Row run(std::size_t payload_bytes, double srt_load, std::uint64_t /*seed*/) {
  TaskPool tasks;
  Scenario::Config cfg;
  cfg.calendar.round_length = 10_ms;
  Scenario scn{cfg};
  Node& hrt_node = scn.add_node(1, perfect());
  Node& sink = scn.add_node(2, perfect());
  Node& srt_node = scn.add_node(3, perfect());
  Node& bulk_node = scn.add_node(4, perfect());

  // HRT stream: one slot per round.
  const Subject hrt_subject = subject_of("e7/hrt");
  SlotSpec slot;
  slot.lst_offset = 1_ms;
  slot.dlc = 8;
  slot.fault.omission_degree = 1;
  slot.etag = *scn.binding().bind(hrt_subject);
  slot.publisher = hrt_node.id();
  (void)*scn.calendar().reserve(slot);

  Row row;
  Hrtec hrt_pub{hrt_node.middleware()};
  Hrtec hrt_sub{sink.middleware()};
  (void)hrt_pub.announce(hrt_subject, {}, nullptr);
  (void)hrt_sub.subscribe(hrt_subject, AttributeList{attr::QueueCapacity{8}},
                          [&] { (void)hrt_sub.getEvent(); },
                          [&](const ExceptionInfo&) { ++row.hrt_missing; });
  auto* hrt_loop = tasks.make();
  *hrt_loop = [&, hrt_loop] {
    Event e;
    e.content = {1, 2, 3, 4, 5, 6, 7, 8};
    (void)hrt_pub.publish(std::move(e));
    scn.sim().schedule_after(10_ms, [hrt_loop] { (*hrt_loop)(); });
  };
  scn.sim().schedule_after(Duration::zero(), [hrt_loop] { (*hrt_loop)(); });

  // SRT background at the requested load (frames ~160 us each).
  Srtec srt_pub{srt_node.middleware()};
  (void)srt_pub.announce(subject_of("e7/srt"),
                         AttributeList{attr::Deadline{5_ms}},
                         [&](const ExceptionInfo& e) {
                           if (e.error == ChannelError::kDeadlineMissed)
                             ++row.srt_misses;
                         });
  if (srt_load > 0) {
    const auto gap = Duration::nanoseconds(
        static_cast<std::int64_t>(160e3 / srt_load));
    auto* srt_loop = tasks.make();
    *srt_loop = [&, gap, srt_loop] {
      Event e;
      e.content.assign(8, 0x55);
      (void)srt_pub.publish(std::move(e));
      scn.sim().schedule_after(gap, [srt_loop] { (*srt_loop)(); });
    };
    scn.sim().schedule_after(Duration::zero(), [srt_loop] { (*srt_loop)(); });
  }

  // The bulk transfer.
  const AttributeList frag{attr::Fragmentation{true}};
  Nrtec bulk_pub{bulk_node.middleware()};
  Nrtec bulk_sub{sink.middleware()};
  (void)bulk_pub.announce(subject_of("e7/bulk"), frag, nullptr);
  TimePoint done;
  (void)bulk_sub.subscribe(subject_of("e7/bulk"), frag,
                           [&] {
                             (void)bulk_sub.getEvent();
                             done = scn.sim().now();
                           },
                           nullptr);
  const TimePoint start = scn.sim().now();
  {
    Event blob;
    blob.content.assign(payload_bytes, 0xB0);
    (void)bulk_pub.publish(std::move(blob));
  }

  scn.run_for(Duration::seconds(30));
  if (done == TimePoint::origin()) {
    row.completion_ms = -1;  // did not finish (SRT load ~ saturation)
    row.throughput_kbps = 0;
  } else {
    const Duration took = done - start;
    row.completion_ms = took.ms();
    row.throughput_kbps =
        static_cast<double>(payload_bytes) * 8 / 1000.0 / took.sec() * 1000.0 /
        1000.0;
  }
  return row;
}

}  // namespace

int main() {
  bench::title("E7", "NRT bulk transfer: throughput and non-interference");
  bench::note("fragmented channel: FIRST carries 4 payload bytes, MID/LAST 7;");
  bench::note("HRT stream (10 ms period) + SRT background above the transfer");

  CsvWriter csv{"bench_nrt_bulk.csv"};
  csv.header({"payload_bytes", "srt_load", "throughput_kbps", "completion_ms",
              "hrt_missing", "srt_misses"});

  std::printf("\n  %-10s %-10s %-18s %-16s %-12s %s\n", "payload", "SRT load",
              "goodput (kbit/s)", "completion (ms)", "HRT missing",
              "SRT misses");
  bench::rule();
  for (std::size_t payload : {1024u, 8192u, 65536u}) {
    for (double load : {0.0, 0.3, 0.6, 0.9}) {
      const Row r = run(payload, load, 1);
      std::printf("  %-10zu %-10.1f %-18.1f %-16.1f %-12llu %llu\n", payload,
                  load, r.throughput_kbps, r.completion_ms,
                  static_cast<unsigned long long>(r.hrt_missing),
                  static_cast<unsigned long long>(r.srt_misses));
      csv.row(payload, load, r.throughput_kbps, r.completion_ms, r.hrt_missing,
              r.srt_misses);
    }
    bench::rule();
  }
  bench::note("bulk goodput is exactly the bandwidth HRT and SRT leave over —");
  bench::note("and the HRT-missing column stays 0 at every operating point:");
  bench::note("NRT traffic can never displace a pending real-time message.");
  return 0;
}
