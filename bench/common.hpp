#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>

/// \file common.hpp
/// Shared console-table formatting for the experiment harnesses. Every
/// bench binary prints the rows/series of one paper claim (see DESIGN.md
/// §3) and optionally mirrors them to CSV for plotting.

namespace rtec::bench {

inline void title(const char* experiment, const char* what) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", experiment, what);
  std::printf("================================================================\n");
}

inline void note(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::printf("  ");
  std::vprintf(fmt, args);
  std::printf("\n");
  va_end(args);
}

inline void rule() {
  std::printf("  ----------------------------------------------------------------------\n");
}

}  // namespace rtec::bench
