// E1 — Fig. 3: structure of a time-slot.
//
// Reproduces the paper's time-slot mechanics at 1-bit resolution:
//   * an adversarial lower-priority frame that starts just before the
//     slot's ready time delays the HRT transmission by at most ΔT_wait,
//     so transmission always starts by LST;
//   * the middleware delivers at the fixed delivery deadline, so the
//     application sees zero jitter regardless of where in the window the
//     frame landed;
//   * ablation: WITHOUT the ΔT_wait extension (message ready only at LST),
//     the same adversary pushes completion past the deadline — the reason
//     Fig. 3 extends the slot.
//
// Table 1: blocker size sweep (DLC 0..8), measured HRT start vs LST.
// Table 2: ablation with/without the ΔT_wait readiness extension.

#include <cstdio>
#include <functional>

#include "bench/common.hpp"
#include "core/hrtec.hpp"
#include "core/scenario.hpp"
#include "trace/csv.hpp"

using namespace rtec;
using namespace rtec::literals;

namespace {

struct Result {
  double blocker_us;
  double start_after_ready_us;  // HRT SOF - ready
  double start_after_lst_us;    // HRT SOF - LST (<= 0 required)
  double delivery_offset_us;    // delivery - deadline (== 0 required)
};

Result run_trial(int blocker_dlc, bool with_extension) {
  Scenario::Config cfg;
  cfg.calendar.round_length = 10_ms;
  Scenario scn{cfg};
  Node::ClockParams perfect;
  perfect.granularity = 1_ns;
  Node& pub_node = scn.add_node(1, perfect);
  Node& sub_node = scn.add_node(2, perfect);
  Node& adversary = scn.add_node(9, perfect);

  const Subject subject = subject_of("e1/hrt");
  SlotSpec slot;
  slot.lst_offset = 1_ms;
  slot.dlc = 8;
  slot.etag = *scn.binding().bind(subject);
  slot.publisher = pub_node.id();
  const std::size_t slot_index = *scn.calendar().reserve(slot);
  const Calendar::Instance inst =
      scn.calendar().instance_at_or_after(slot_index, TimePoint::origin());

  TimePoint hrt_start;
  TimePoint delivery;
  scn.bus().add_observer([&](const CanBus::FrameEvent& ev) {
    if (id_priority(ev.frame.id) == kHrtPriority && ev.success)
      hrt_start = ev.start;
  });

  // The adversarial blocker is requested 1 ns before the HRT frame enters
  // the controller.
  const TimePoint block_at =
      (with_extension ? inst.ready : inst.lst) - 1_ns;
  scn.sim().schedule_at(block_at, [&, blocker_dlc] {
    CanFrame f;
    f.id = encode_can_id({kNrtPriorityMax, 9, 500});
    f.dlc = static_cast<std::uint8_t>(blocker_dlc);
    f.data.fill(0);  // worst-case stuffing
    (void)adversary.controller().submit(f, TxMode::kAutoRetransmit);
  });

  if (with_extension) {
    Hrtec pub{pub_node.middleware()};
    Hrtec sub{sub_node.middleware()};
    (void)pub.announce(subject, {}, nullptr);
    (void)sub.subscribe(subject, {},
                        [&] { delivery = sub_node.clock().now(); }, nullptr);
    Event e;
    e.content = {1, 2, 3, 4, 5, 6, 7, 8};
    (void)pub.publish(std::move(e));
    scn.run_for(2_ms);
  } else {
    // Ablation: bypass the middleware's early readiness; submit the raw
    // priority-0 frame exactly at LST.
    scn.sim().schedule_at(inst.lst, [&] {
      CanFrame f;
      f.id = encode_can_id({kHrtPriority, 1, slot.etag});
      f.dlc = 8;
      (void)pub_node.controller().submit(f, TxMode::kSingleShot);
    });
    sub_node.controller().add_rx_listener(
        [&](const CanFrame& f, TimePoint t) {
          if (id_priority(f.id) == kHrtPriority) delivery = t;
        });
    scn.run_for(2_ms);
  }

  Result r;
  r.blocker_us = blocker_dlc >= 0
                     ? worst_case_frame_duration(blocker_dlc, true,
                                                 scn.bus().config())
                           .us()
                     : 0.0;
  r.start_after_ready_us = (hrt_start - inst.ready).us();
  r.start_after_lst_us = (hrt_start - inst.lst).us();
  r.delivery_offset_us = (delivery - inst.deadline).us();
  return r;
}

}  // namespace

int main() {
  bench::title("E1 / Fig. 3", "structure of a time-slot on the bus");

  const BusConfig bus;
  bench::note("bit time 1 us; ΔT_wait = %.0f us (worst 29-bit frame + IFS);",
              (worst_case_frame_duration(8, true, bus).us() + 3));
  bench::note("slot: LST = 1 ms, WCTT(dlc 8, k=0) = %.0f us",
              hrt_wctt(8, {0}, bus).us());

  CsvWriter csv{"bench_slot_structure.csv"};
  csv.header({"blocker_dlc", "blocker_us", "start_after_ready_us",
              "start_after_lst_us", "delivery_offset_us"});

  std::printf("\n  Table 1 — adversarial blocker just before ready time "
              "(with ΔT_wait extension)\n");
  std::printf("  %-12s %-14s %-18s %-16s %s\n", "blocker dlc", "blocker(us)",
              "start-ready (us)", "start-LST (us)", "delivery-deadline (us)");
  bench::rule();
  bool all_by_lst = true;
  bool all_zero_jitter = true;
  for (int dlc = 0; dlc <= 8; ++dlc) {
    const Result r = run_trial(dlc, /*with_extension=*/true);
    std::printf("  %-12d %-14.1f %-18.1f %-16.1f %.3f\n", dlc, r.blocker_us,
                r.start_after_ready_us, r.start_after_lst_us,
                r.delivery_offset_us);
    csv.row(dlc, r.blocker_us, r.start_after_ready_us, r.start_after_lst_us,
            r.delivery_offset_us);
    all_by_lst &= r.start_after_lst_us <= 0.0;
    all_zero_jitter &= r.delivery_offset_us == 0.0;
  }
  bench::rule();
  bench::note("transmission always started by LST: %s",
              all_by_lst ? "YES (guarantee holds)" : "NO (!!)");
  bench::note("delivery exactly at deadline in every case: %s",
              all_zero_jitter ? "YES (zero middleware jitter)" : "NO (!!)");

  std::printf("\n  Table 2 — ablation: message ready only at LST "
              "(no ΔT_wait extension)\n");
  std::printf("  %-22s %-18s %s\n", "readiness", "start-LST (us)",
              "completion-deadline (us)");
  bench::rule();
  {
    const Result with = run_trial(8, true);
    const Result without = run_trial(8, false);
    std::printf("  %-22s %-18.1f %.1f\n", "LST - ΔT_wait (paper)",
                with.start_after_lst_us, with.delivery_offset_us);
    std::printf("  %-22s %-18.1f %.1f\n", "LST only (ablation)",
                without.start_after_lst_us, without.delivery_offset_us);
    bench::rule();
    bench::note("without the extension the blocker defers the start %.1f us",
                without.start_after_lst_us);
    bench::note("past LST and completion lands %.1f us after the deadline —",
                without.delivery_offset_us);
    bench::note("exactly the hazard Fig. 3's extended slot eliminates.");
  }
  return 0;
}
