// E12 — the analytic fast path: convolution-based probabilistic WCRT
// (sched/prob_rta) cross-validated against the simulator, with paired
// wall-time accounting.
//
// Table 1: worst-case error position (the gated configuration — the
// analytic distribution is purely atomic and must match the simulated
// histogram quantiles to within ONE bit-time grid step; the same gate
// runs as a tier-1 ctest in tests/test_prob_rta.cpp).
//
// Table 2: uniform error positions (the fault framework's default). The
// analytic quantiles are exact; the simulated ones carry sampling noise,
// so these rows are reported, not gated (the DKW-bracketed check lives in
// the ctest).
//
// The paired timing answers ONE admission question both ways. The
// analytic side evaluates the full response distribution (quantiles +
// fault-assumption-violation probability) in one query. The simulation
// side must run enough channel instances to *certify* that violation
// rate empirically — rows use the binomial sample size for ±5% relative
// precision at 99% confidence, n = z²(1−m)/(ε²m) with m = p^(k+1) —
// because an admission verdict backed by a handful of observed misses is
// not an answer. Quick mode (CI smoke) runs a fixed small grid instead
// and skips the speedup gate; full mode is what BENCH_analytic.json
// commits.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/analytic_scenario.hpp"
#include "bench/common.hpp"
#include "bench/sweep.hpp"
#include "sched/prob_rta.hpp"
#include "trace/csv.hpp"

using namespace rtec;

namespace {

struct Point {
  int dlc = 8;
  int k = 2;
  double p = 0.15;
  std::uint64_t seed = 11;
  bool worst = true;  ///< pin the error position to the last bit
  int rounds = 2000;
};

struct Row {
  bench::AnalyticScenarioResult sim;
  double sim_wall_ms = 0.0;   ///< wall time of the simulation run
  double ana_query_us = 0.0;  ///< wall time of ONE analytic admission query
  ResponseDistribution ana;
};

double now_ms() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double, std::milli>(
             clock::now().time_since_epoch())
      .count();
}

/// Instances the simulation needs to certify the fault-assumption-
/// violation rate m = p^(k+1) to ±5% relative at 99% confidence
/// (two-sided normal approximation of the binomial).
int certification_rounds(int k, double p) {
  const double m = std::pow(p, k + 1);
  const double z = 2.576;  // 99%
  const double eps = 0.05;
  const double n = z * z * (1.0 - m) / (eps * eps * m);
  return std::max(2000, static_cast<int>(std::ceil(n)));
}

Row run_point(const Point& pt) {
  Row row;
  bench::AnalyticScenarioConfig cfg;
  cfg.dlc = pt.dlc;
  cfg.omission_degree = pt.k;
  cfg.fault_rate = pt.p;
  if (pt.worst) cfg.fixed_fault_position = 1.0;
  cfg.rounds = pt.rounds;
  cfg.seed = pt.seed;

  const double t0 = now_ms();
  row.sim = bench::run_analytic_scenario(cfg);
  row.sim_wall_ms = now_ms() - t0;

  OmissionModel model;
  model.p = pt.p;
  model.worst_case_position = pt.worst;

  // Time the analytic query: repeat until ≥ 50 ms of steady-clock time so
  // the per-query figure is stable even at microsecond granularity.
  const double t1 = now_ms();
  int reps = 0;
  double guard = 0.0;  // defeat dead-code elimination across reps
  do {
    row.ana = hrt_response_distribution(row.sim.frame_bits, pt.k, model);
    guard += row.ana.pmf.mean();
    ++reps;
  } while (now_ms() - t1 < 50.0);
  row.ana_query_us = (now_ms() - t1) * 1000.0 / reps;
  if (guard < 0.0) std::printf("%f", guard);  // never taken
  return row;
}

}  // namespace

int main() {
  bench::title("E12", "analytic probabilistic WCRT vs simulation");
  const bool quick = bench::quick_mode();
  const std::vector<std::uint64_t> seeds =
      quick ? std::vector<std::uint64_t>{11} :
              std::vector<std::uint64_t>{11, 12, 13};

  const BusConfig bus;
  const double bit_us = static_cast<double>(bus.bit_time().ns()) / 1000.0;
  const auto bits_us = [bit_us](std::int64_t bits) {
    return static_cast<double>(bits) * bit_us;
  };

  CsvWriter csv{"bench_analytic.csv"};
  csv.header({"mode", "dlc", "k", "p", "seed", "rounds", "sim_p99_us",
              "ana_p99_us", "sim_wall_ms", "ana_query_us", "speedup"});
  bench::BenchJson bj{"analytic"};
  bj.meta("generated_by", "bench_analytic");
  bj.meta("threads", static_cast<double>(bench::sweep_threads()));
  bj.meta("host_cpus",
          static_cast<double>(std::thread::hardware_concurrency()));
  bj.meta("mode", quick ? "quick" : "full");
  bj.meta("certification", "violation rate +-5% relative at 99% confidence");

  std::vector<Point> grid;
  for (int dlc : {2, 8})
    for (const auto& [k, p] : {std::pair{2, 0.15}, std::pair{3, 0.4}})
      for (std::uint64_t seed : seeds)
        grid.push_back({dlc, k, p, seed, true,
                        quick ? 2000 : certification_rounds(k, p)});
  const std::size_t worst_rows = grid.size();
  for (const auto& [k, p] : {std::pair{2, 0.15}, std::pair{3, 0.4}})
    for (std::uint64_t seed : seeds)
      grid.push_back({8, k, p, seed, false,
                      quick ? 2000 : certification_rounds(k, p)});

  const double wall0 = now_ms();
  const std::vector<Row> rows = bench::sweep(
      grid.size(), [&](std::size_t i) { return run_point(grid[i]); });

  bool all_within = true;
  double worst_speedup = 1e300;
  const auto emit = [&](std::size_t i) {
    const Point& pt = grid[i];
    const Row& r = rows[i];
    const double sim_p50 = r.sim.latency.quantile(0.5) / 1000.0;
    const double sim_p90 = r.sim.latency.quantile(0.9) / 1000.0;
    const double sim_p99 = r.sim.latency.quantile(0.99) / 1000.0;
    const double sim_p999 = r.sim.latency.quantile(0.999) / 1000.0;
    const double ana_p50 = bits_us(r.ana.pmf.quantile(0.5));
    const double ana_p90 = bits_us(r.ana.pmf.quantile(0.9));
    const double ana_p99 = bits_us(r.ana.pmf.quantile(0.99));
    const double ana_p999 = bits_us(r.ana.pmf.quantile(0.999));
    const double speedup = r.sim_wall_ms * 1000.0 / r.ana_query_us;
    worst_speedup = std::min(worst_speedup, speedup);

    bool within = true;
    if (pt.worst) {
      // The tier-1 gate, re-checked here: analytic p50/p90/p99 within one
      // bit-time grid step of the simulated histogram. p999 is reported
      // but not gated (its conditional rank sits closer to an atom
      // boundary than sampling resolves at gate-size runs).
      within = std::abs(sim_p50 - ana_p50) <= bit_us + 1e-9 &&
               std::abs(sim_p90 - ana_p90) <= bit_us + 1e-9 &&
               std::abs(sim_p99 - ana_p99) <= bit_us + 1e-9;
      all_within &= within;
    }

    const double miss_emp = static_cast<double>(r.sim.failures) /
                            static_cast<double>(pt.rounds);
    std::printf("  %-7s %-4d %-2d %-5.2f %-5llu %7d %7.1f/%7.1f "
                "%7.1f/%7.1f %9.1f %9.3f %9.0fx %s\n",
                pt.worst ? "worst" : "uniform", pt.dlc, pt.k, pt.p,
                static_cast<unsigned long long>(pt.seed), pt.rounds, sim_p99,
                ana_p99, sim_p999, ana_p999, r.sim_wall_ms, r.ana_query_us,
                speedup, pt.worst ? (within ? "ok" : "DIVERGED") : "-");
    csv.row(pt.worst ? 1 : 0, pt.dlc, pt.k, pt.p,
            static_cast<double>(pt.seed), static_cast<double>(pt.rounds),
            sim_p99, ana_p99, r.sim_wall_ms, r.ana_query_us, speedup);
    bj.row({{"worst_position", pt.worst ? 1.0 : 0.0},
            {"dlc", static_cast<double>(pt.dlc)},
            {"k", static_cast<double>(pt.k)},
            {"p", pt.p},
            {"seed", static_cast<double>(pt.seed)},
            {"rounds", static_cast<double>(pt.rounds)},
            {"frame_bits", static_cast<double>(r.sim.frame_bits)},
            {"sim_p50_us", sim_p50},
            {"sim_p90_us", sim_p90},
            {"sim_p99_us", sim_p99},
            {"sim_p999_us", sim_p999},
            {"ana_p50_us", ana_p50},
            {"ana_p90_us", ana_p90},
            {"ana_p99_us", ana_p99},
            {"ana_p999_us", ana_p999},
            {"miss_analytic", r.ana.miss_probability},
            {"miss_empirical", miss_emp},
            {"tail_epsilon", r.ana.tail_epsilon},
            {"within_tolerance", pt.worst ? (within ? 1.0 : 0.0) : -1.0},
            {"sim_wall_ms", r.sim_wall_ms},
            {"ana_query_us", r.ana_query_us},
            {"speedup", speedup}});
  };

  std::printf("\n  Table 1 — worst-case error position (gated: ≤ 1 bit step)\n");
  std::printf("  %-7s %-4s %-2s %-5s %-5s %7s %-15s %-15s %9s %9s %10s\n",
              "mode", "dlc", "k", "p", "seed", "rounds", " p99 sim/ana us",
              " p999 sim/ana us", "sim ms", "query us", "speedup");
  bench::rule();
  for (std::size_t i = 0; i < worst_rows; ++i) emit(i);
  bench::rule();

  std::printf("\n  Table 2 — uniform error position (reported, ctest gates "
              "via DKW bracket)\n");
  bench::rule();
  for (std::size_t i = worst_rows; i < grid.size(); ++i) emit(i);
  bench::rule();

  bj.meta("wall_s_total", (now_ms() - wall0) / 1000.0);
  if (!bj.write()) bench::note("warning: could not write BENCH_analytic.json");
  bench::note("worst-position quantiles within 1 grid step everywhere: %s",
              all_within ? "YES" : "NO (!!)");
  bench::note("minimum analytic-vs-simulation speedup: %.0fx%s",
              worst_speedup,
              quick ? " (quick mode: sims not certification-sized)" : "");
  if (quick) return all_within ? 0 : 1;
  return all_within && worst_speedup >= 1000.0 ? 0 : 1;
}
