// Simulation capacity: how large a network and how much simulated time the
// experiment harness can afford. Sweeps node count with a proportional SRT
// workload plus one HRT stream per 4 nodes, 10 simulated seconds each, and
// reports wall time, realtime factor and simulated frame rate. Points run
// in parallel on the sweep harness; RTEC_BENCH_QUICK=1 shrinks the sweep
// for CI smoke runs.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "bench/sweep.hpp"
#include "core/hrtec.hpp"
#include "core/scenario.hpp"
#include "core/srtec.hpp"
#include "time/periodic.hpp"
#include "trace/csv.hpp"
#include "trace/registry.hpp"
#include "util/random.hpp"
#include "util/task_pool.hpp"

using namespace rtec;
using namespace rtec::literals;

namespace {

struct Row {
  double wall_s = 0;
  double realtime_factor = 0;
  double frames = 0;
  double frames_per_wall_s = 0;
  double rteb_bytes = 0;  ///< recorded runs only
};

Row run(int node_count, Duration kRun, bool record = false,
        rtec::trace::MetricsRegistry* metrics = nullptr) {
  TaskPool pool;
  Scenario::Config cfg;
  cfg.calendar.round_length = 10_ms;
  Scenario scn{cfg};
  if (record) (void)scn.record_rteb(0);
  Rng rng{static_cast<std::uint64_t>(node_count)};

  std::vector<Node*> nodes;
  for (int i = 0; i < node_count; ++i) {
    Node::ClockParams p;
    p.initial_offset = Duration::microseconds(rng.uniform_int(-20, 20));
    p.drift_ppb = rng.uniform_int(-80'000, 80'000);
    p.granularity = 1_us;
    nodes.push_back(&scn.add_node(static_cast<NodeId>(i + 1), p));
  }
  (void)scn.enable_clock_sync(static_cast<NodeId>(node_count), 500_us);

  // One HRT stream per 4 nodes (as many as fit the round).
  const int hrt_streams = node_count / 4;
  std::vector<std::unique_ptr<Hrtec>> hrt_pubs;
  std::vector<std::unique_ptr<Hrtec>> hrt_subs;
  std::vector<std::unique_ptr<PeriodicLocalTask>> tasks;
  for (int i = 0; i < hrt_streams; ++i) {
    const std::string name = "scale/h" + std::to_string(i);
    const Etag etag = *scn.binding().bind(subject_of(name));
    SlotSpec slot;
    slot.lst_offset = 1_ms + Duration::microseconds(600) * i;
    slot.dlc = 8;
    slot.etag = etag;
    slot.publisher = static_cast<NodeId>(i + 1);
    if (!scn.calendar().reserve(slot).has_value()) break;  // round is full
    Node* pub_node = nodes[static_cast<std::size_t>(i)];
    hrt_pubs.push_back(std::make_unique<Hrtec>(pub_node->middleware()));
    (void)hrt_pubs.back()->announce(subject_of(name), {}, nullptr);
    hrt_subs.push_back(std::make_unique<Hrtec>(
        nodes[static_cast<std::size_t>(node_count - 1 - i % 4)]->middleware()));
    Hrtec* sub = hrt_subs.back().get();
    (void)sub->subscribe(subject_of(name), AttributeList{attr::QueueCapacity{4}},
                         [sub] { (void)sub->getEvent(); }, nullptr);
    Hrtec* pub = hrt_pubs.back().get();
    tasks.push_back(std::make_unique<PeriodicLocalTask>(
        pub_node->clock(), 10_ms, [pub] {
          Event e;
          e.content = {1, 2, 3, 4, 5, 6, 7, 8};
          (void)pub->publish(std::move(e));
        }));
    tasks.back()->start();
  }

  // SRT chatter: every node publishes Poisson with aggregate load ~40%.
  std::vector<std::unique_ptr<Srtec>> srt_pubs;
  const double mean_gap_ns = 160e3 * node_count / 0.4;
  for (int i = 0; i < node_count; ++i) {
    const std::string name = "scale/s" + std::to_string(i);
    srt_pubs.push_back(
        std::make_unique<Srtec>(nodes[static_cast<std::size_t>(i)]->middleware()));
    (void)srt_pubs.back()->announce(subject_of(name),
                                    AttributeList{attr::Deadline{20_ms}},
                                    nullptr);
    Srtec* pub = srt_pubs.back().get();
    auto* loop = pool.make();
    Scenario* sc = &scn;
    auto* r = &rng;
    *loop = [pub, sc, r, mean_gap_ns, loop] {
      Event e;
      e.content = {0xA5};
      (void)pub->publish(std::move(e));
      sc->sim().schedule_after(
          Duration::nanoseconds(
              static_cast<std::int64_t>(r->exponential(mean_gap_ns))),
          [loop] { (*loop)(); });
    };
    scn.sim().schedule_after(Duration::microseconds(rng.uniform_int(0, 2000)),
                             [loop] { (*loop)(); });
  }

  const auto t0 = std::chrono::steady_clock::now();
  scn.run_for(kRun);
  const auto t1 = std::chrono::steady_clock::now();

  Row row;
  row.wall_s = std::chrono::duration<double>(t1 - t0).count();
  row.realtime_factor = kRun.sec() / row.wall_s;
  row.frames = static_cast<double>(scn.bus().frames_ok() +
                                   scn.bus().frames_error());
  row.frames_per_wall_s = row.frames / row.wall_s;
  if (record) row.rteb_bytes = static_cast<double>(scn.rteb(0)->bytes().size());
  if (metrics != nullptr) scn.export_metrics(*metrics);
  return row;
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

}  // namespace

int main() {
  const bool quick = bench::quick_mode();
  const Duration sim_time = quick ? Duration::seconds(2) : Duration::seconds(10);
  const std::vector<int> node_counts =
      quick ? std::vector<int>{4, 16} : std::vector<int>{4, 8, 16, 32, 64};

  bench::title("scale", "simulation capacity vs network size");
  bench::note("%lld simulated seconds; 1 HRT stream per 4 nodes; SRT Poisson",
              static_cast<long long>(sim_time.ns() / 1'000'000'000));
  bench::note("chatter at ~40%% load from every node; clock sync running");

  CsvWriter csv{"bench_scale.csv"};
  csv.header({"nodes", "wall_s", "realtime_factor", "frames",
              "frames_per_wall_s"});
  bench::BenchJson bj{"scale"};
  bj.meta("generated_by", "bench_scale");
  bj.meta("sim_seconds", sim_time.sec());
  bj.meta("quick", quick ? 1.0 : 0.0);
  bj.meta("threads", static_cast<double>(bench::sweep_threads()));

  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<Row> rows = bench::sweep(
      node_counts.size(),
      [&](std::size_t i) { return run(node_counts[i], sim_time); });
  const double total_wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::printf("\n  %-8s %-10s %-18s %-12s %s\n", "nodes", "wall (s)",
              "x realtime", "frames", "frames/wall-s");
  bench::rule();
  for (std::size_t i = 0; i < node_counts.size(); ++i) {
    const Row& r = rows[i];
    const int nodes = node_counts[i];
    std::printf("  %-8d %-10.2f %-18.1f %-12.0f %.0f\n", nodes, r.wall_s,
                r.realtime_factor, r.frames, r.frames_per_wall_s);
    csv.row(nodes, r.wall_s, r.realtime_factor, r.frames,
            r.frames_per_wall_s);
    bj.row({{"nodes", static_cast<double>(nodes)},
            {"wall_s", r.wall_s},
            {"realtime_factor", r.realtime_factor},
            {"frames", r.frames},
            {"frames_per_wall_s", r.frames_per_wall_s}});
  }
  bench::rule();

  // Recorder overhead: interleaved plain/recorded repeats at one
  // representative point, medians compared. The RTEB recorder must stay
  // under 5% — it is the always-on observability path (docs/observability.md).
  const int oh_nodes = quick ? 16 : 32;
  const int oh_reps = quick ? 3 : 5;
  std::vector<double> plain_fps, rec_fps;
  double rteb_bytes = 0;
  trace::MetricsRegistry metrics;
  for (int i = 0; i < oh_reps; ++i) {
    plain_fps.push_back(run(oh_nodes, sim_time).frames_per_wall_s);
    trace::MetricsRegistry snap;
    const Row rec = run(oh_nodes, sim_time, true, &snap);
    rec_fps.push_back(rec.frames_per_wall_s);
    rteb_bytes = rec.rteb_bytes;
    metrics = std::move(snap);  // snapshots are identical run to run
  }
  const double plain_med = median(plain_fps);
  const double rec_med = median(rec_fps);
  const double overhead_pct = 100.0 * (plain_med - rec_med) / plain_med;
  std::printf("\n  recorder overhead (%d nodes, median of %d):\n", oh_nodes,
              oh_reps);
  std::printf("    plain    %.0f frames/wall-s\n", plain_med);
  std::printf("    recorded %.0f frames/wall-s (%.0f RTEB bytes)\n", rec_med,
              rteb_bytes);
  std::printf("    overhead %.2f%% (budget 5%%)\n", overhead_pct);
  bj.meta("recorder_overhead_pct", overhead_pct);
  bj.meta("recorder_rteb_bytes", rteb_bytes);

  metrics.set("bench.recorder_overhead_pct", overhead_pct);
  metrics.set("bench.recorder_nodes",
              static_cast<std::uint64_t>(oh_nodes));
  metrics.set("bench.recorder_reps", static_cast<std::uint64_t>(oh_reps));
  if (!metrics.save("METRICS_scale.json"))
    bench::note("warning: could not write METRICS_scale.json");

  bj.meta("wall_s_total", total_wall);
  if (!bj.write()) bench::note("warning: could not write BENCH_scale.json");
  bench::note("the kernel sustains >100k simulated frames per wall second at");
  bench::note("realistic bus loads, so every experiment in EXPERIMENTS.md runs");
  bench::note("in seconds — and parameter sweeps stay cheap.");
  return 0;
}
