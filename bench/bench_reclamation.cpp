// E4 — bandwidth reclamation (§3.2, §5): "when a reserved slot is not used,
// the priority mechanism of CAN will automatically assign this slot to some
// other (lower priority) message ... this is not possible in schemes which
// only use global time to enforce reservations."
//
// Table 1: sporadic HRT reservations with activity factor a (probability a
// slot instance is actually used). A saturated NRT sender measures how much
// goodput flows through. Ours: unused reservations and slot remainders are
// reclaimed automatically. TTCAN-like: exclusive windows are lost when
// unused; async traffic runs only in the arbitration window.
//
// Table 2: redundancy cost vs actual fault rate: ours suppresses redundant
// copies after success (cost ~ p), TTCAN always transmits all copies
// (cost = k, independent of p).

#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "baselines/ttcan.hpp"
#include "bench/common.hpp"
#include "bench/sweep.hpp"
#include "core/hrtec.hpp"
#include "core/scenario.hpp"
#include "trace/csv.hpp"
#include "trace/metrics.hpp"
#include "util/random.hpp"
#include "util/task_pool.hpp"

using namespace rtec;
using namespace rtec::literals;

namespace {

Node::ClockParams perfect() {
  Node::ClockParams p;
  p.granularity = 1_ns;
  return p;
}

constexpr int kRounds = 400;
const Duration kRound = 10_ms;

struct Goodput {
  double nrt_kbps = 0;        // async goodput (payload-bearing wire bits/s)
  double hrt_util = 0;        // fraction of bus time spent on HRT class
  double reserved_frac = 0;   // calendar share reserved
};

/// Our scheme: `slots` sporadic HRT reservations, activity factor a,
/// saturated NRT background.
Goodput run_ours(int slots, double activity, std::uint64_t seed) {
  TaskPool tasks;
  Scenario::Config cfg;
  cfg.calendar.round_length = kRound;
  Scenario scn{cfg};
  Node& pub_node = scn.add_node(1, perfect());
  Node& nrt_node = scn.add_node(2, perfect());
  scn.add_node(3, perfect());

  // Reserve `slots` sporadic k=1 slots, evenly spread.
  std::vector<std::size_t> slot_idx;
  std::vector<Subject> subjects;
  for (int s = 0; s < slots; ++s) {
    const std::string name = "e4/hrt" + std::to_string(s);
    const Subject subject = subject_of(name);
    subjects.push_back(subject);
    SlotSpec spec;
    spec.lst_offset = 1_ms + (kRound - 2_ms) / slots * s;
    spec.dlc = 8;
    spec.fault.omission_degree = 1;
    spec.etag = *scn.binding().bind(subject);
    spec.publisher = pub_node.id();
    spec.periodic = false;
    slot_idx.push_back(*scn.calendar().reserve(spec));
  }

  std::vector<std::unique_ptr<Hrtec>> pubs;
  for (const Subject& s : subjects) {
    pubs.push_back(std::make_unique<Hrtec>(pub_node.middleware()));
    (void)pubs.back()->announce(s, AttributeList{attr::Sporadic{kRound}},
                                nullptr);
  }

  // Sporadic publications with probability `activity` per slot instance.
  Rng rng{seed};
  for (int r = 0; r < kRounds; ++r) {
    for (int s = 0; s < slots; ++s) {
      if (!rng.bernoulli(activity)) continue;
      const auto inst = scn.calendar().instance_at_or_after(
          slot_idx[static_cast<std::size_t>(s)],
          TimePoint::origin() + kRound * r);
      Hrtec* chan = pubs[static_cast<std::size_t>(s)].get();
      scn.sim().schedule_at(inst.ready - 20_us, [chan] {
        Event e;
        e.content = {1, 2, 3, 4, 5, 6, 7, 8};
        (void)chan->publish(std::move(e));
      });
    }
  }

  // Saturated NRT sender: keeps its mailbox always full.
  auto* flood = tasks.make();
  *flood = [&nrt_node, flood] {
    CanFrame f;
    f.id = encode_can_id({kNrtPriorityMax, 2, 300});
    f.dlc = 8;
    f.data = {0xA5, 0x5A, 0xA5, 0x5A, 0xA5, 0x5A, 0xA5, 0x5A};
    while (nrt_node.controller().has_free_mailbox())
      (void)nrt_node.controller().submit(
          f, TxMode::kAutoRetransmit,
          [flood](auto, const CanFrame&, bool, TimePoint) { (*flood)(); });
  };
  (*flood)();

  ClassUtilization util{scn.bus()};
  scn.run_for(kRound * kRounds);

  Goodput g;
  const double secs = (kRound * kRounds).sec();
  g.nrt_kbps =
      static_cast<double>(util.busy(TrafficClass::kNrt).ns()) / 1e3 / secs / 1e3;
  g.hrt_util = util.fraction(TrafficClass::kHrt);
  g.reserved_frac = scn.calendar().reserved_fraction();
  return g;
}

/// TTCAN-like: identical reservations as exclusive windows (k+1 = 2 copies,
/// always transmitted when used); async traffic only in the remaining
/// arbitration window.
Goodput run_ttcan(int slots, double activity, std::uint64_t seed) {
  TaskPool tasks;
  Simulator sim;
  CanBus bus{sim, BusConfig{}};
  CanController::Config ctl_cfg;
  ctl_cfg.auto_recovery_delay = bus.config().bit_time() * (128 * 11);
  CanController owner{sim, 1, ctl_cfg};
  CanController async_ctl{sim, 2, ctl_cfg};
  bus.attach(owner);
  bus.attach(async_ctl);

  TtcanSchedule schedule;
  schedule.basic_cycle = kRound;
  schedule.bus = bus.config();
  const Duration window = hrt_slot_window(8, {1}, bus.config());
  Duration covered = Duration::zero();
  std::vector<std::pair<Duration, Duration>> exclusive;  // (start, end)
  for (int s = 0; s < slots; ++s) {
    const Duration lst = 1_ms + (kRound - 2_ms) / slots * s;
    const Duration start = lst - max_blocking_time(bus.config());
    schedule.windows.push_back(
        {TtcanWindow::Kind::kExclusive, start, window, 1, 2});
    exclusive.emplace_back(start, start + window);
    covered += window;
  }
  // Fill every gap between exclusive windows (and the cycle head/tail)
  // with arbitration windows — the most generous TTCAN system matrix.
  Duration cursor = Duration::zero();
  for (const auto& [start, end] : exclusive) {
    if (start - cursor > 100_us)
      schedule.windows.push_back(
          {TtcanWindow::Kind::kArbitration, cursor, start - cursor, 0, 1});
    cursor = end;
  }
  if (kRound - cursor > 100_us)
    schedule.windows.push_back(
        {TtcanWindow::Kind::kArbitration, cursor, kRound - cursor, 0, 1});

  TtcanDriver owner_drv{sim, owner, schedule};
  Rng rng{seed};
  owner_drv.set_exclusive_source(
      [&rng, activity](std::size_t, std::uint64_t) -> std::optional<CanFrame> {
        if (!rng.bernoulli(activity)) return std::nullopt;
        CanFrame f;
        f.id = 0x100;
        f.dlc = 8;
        f.data = {1, 2, 3, 4, 5, 6, 7, 8};
        return f;
      });

  TtcanDriver async_drv{sim, async_ctl, schedule};
  // Keep the async queue topped up.
  auto* top_up = tasks.make();
  *top_up = [&async_drv, &sim, top_up] {
    while (async_drv.async_backlog() < 16) {
      CanFrame f;
      f.id = 0x1000'0000 | 0x300;
      f.dlc = 8;
      f.data = {0xA5, 0x5A, 0xA5, 0x5A, 0xA5, 0x5A, 0xA5, 0x5A};
      async_drv.queue_async(f);
    }
    sim.schedule_after(1_ms, [top_up] { (*top_up)(); });
  };
  (*top_up)();

  Duration async_busy = Duration::zero();
  Duration excl_busy = Duration::zero();
  bus.add_observer([&](const CanBus::FrameEvent& ev) {
    if (ev.frame.id == 0x100)
      excl_busy += ev.end - ev.start;
    else
      async_busy += ev.end - ev.start;
  });

  owner_drv.start();
  async_drv.start();
  sim.run_until(TimePoint::origin() + kRound * kRounds);

  Goodput g;
  const double secs = (kRound * kRounds).sec();
  g.nrt_kbps = static_cast<double>(async_busy.ns()) / 1e3 / secs / 1e3;
  g.hrt_util = static_cast<double>(excl_busy.ns()) /
               static_cast<double>((kRound * kRounds).ns());
  g.reserved_frac = static_cast<double>((covered).ns()) /
                    static_cast<double>(kRound.ns());
  return g;
}

/// HRT bus share with random omission faults at rate p; `suppress` toggles
/// the paper's suppression-on-success rule (the ablation knob).
double hrt_share(double p, bool suppress) {
  TaskPool tasks;
  Scenario::Config cfg;
  cfg.calendar.round_length = kRound;
  Scenario scn{cfg};
  Node& pub_node = scn.add_node(1, perfect());
  scn.add_node(2, perfect());
  const Subject subject = subject_of("e4/red");
  SlotSpec spec;
  spec.lst_offset = 1_ms;
  spec.dlc = 8;
  spec.fault.omission_degree = 1;
  spec.etag = *scn.binding().bind(subject);
  spec.publisher = pub_node.id();
  (void)*scn.calendar().reserve(spec);
  scn.set_fault_model(std::make_unique<RandomOmissionFaults>(p, 3));
  Hrtec pub{pub_node.middleware()};
  AttributeList attrs;
  if (!suppress) attrs.add(attr::AlwaysTransmitCopies{});
  (void)pub.announce(subject, attrs, nullptr);
  auto* loop = tasks.make();
  *loop = [&, loop] {
    Event e;
    e.content = {1, 2, 3, 4, 5, 6, 7, 8};
    (void)pub.publish(std::move(e));
    scn.sim().schedule_after(kRound, [loop] { (*loop)(); });
  };
  scn.sim().schedule_after(Duration::zero(), [loop] { (*loop)(); });
  ClassUtilization util{scn.bus()};
  scn.run_for(kRound * kRounds);
  return util.fraction(TrafficClass::kHrt);
}

}  // namespace

int main() {
  bench::title("E4", "bandwidth reclamation: event channels vs TTCAN-like TDMA");
  bench::note("%d rounds of %lld ms; sporadic k=1 HRT reservations; saturated",
              kRounds, static_cast<long long>(kRound.ns() / 1'000'000));
  bench::note("NRT background measures reclaimable goodput (1 Mbit/s bus)");

  CsvWriter csv{"bench_reclamation.csv"};
  csv.header({"slots", "activity", "ours_nrt_kbps", "ttcan_nrt_kbps",
              "advantage_pct", "reserved_frac"});
  bench::BenchJson bj{"reclamation"};
  bj.meta("generated_by", "bench_reclamation");
  bj.meta("threads", static_cast<double>(bench::sweep_threads()));

  struct T1Point {
    int slots = 0;
    double activity = 0;
  };
  std::vector<T1Point> grid;
  for (int slots : {2, 4, 8})
    for (double a : {0.0, 0.25, 0.5, 1.0}) grid.push_back({slots, a});
  struct T1Row {
    Goodput ours, ttcan;
  };
  // Each point runs both schemes on private simulators — share-nothing.
  const std::vector<T1Row> t1 = bench::sweep(grid.size(), [&](std::size_t i) {
    return T1Row{run_ours(grid[i].slots, grid[i].activity, 7),
                 run_ttcan(grid[i].slots, grid[i].activity, 7)};
  });

  std::printf("\n  Table 1 — NRT goodput (kbit/s) vs reserved share and activity\n");
  std::printf("  %-6s %-9s %-10s %-12s %-12s %s\n", "slots", "reserved",
              "activity", "ours", "ttcan-like", "advantage");
  bench::rule();
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto& [slots, a] = grid[i];
    const Goodput& ours = t1[i].ours;
    const Goodput& ttcan = t1[i].ttcan;
    const double adv = ttcan.nrt_kbps > 0
                           ? (ours.nrt_kbps / ttcan.nrt_kbps - 1.0) * 100
                           : 0.0;
    std::printf("  %-6d %6.1f%%   %-9.2f %-12.0f %-12.0f %+.0f%%\n", slots,
                ours.reserved_frac * 100, a, ours.nrt_kbps, ttcan.nrt_kbps,
                adv);
    csv.row(slots, a, ours.nrt_kbps, ttcan.nrt_kbps, adv,
            ours.reserved_frac);
    bj.row({{"slots", static_cast<double>(slots)},
            {"activity", a},
            {"ours_nrt_kbps", ours.nrt_kbps},
            {"ttcan_nrt_kbps", ttcan.nrt_kbps},
            {"reserved_frac", ours.reserved_frac}});
    if (i % 4 == 3) bench::rule();
  }
  bench::note("ours: NRT goodput is nearly independent of the reserved share —");
  bench::note("whatever HRT does not use flows down automatically. ttcan-like:");
  bench::note("goodput drops with every reserved window whether used or not.");

  std::printf("\n  Table 2 — redundancy bandwidth cost vs actual fault rate\n");
  std::printf("  (k=1 everywhere; 'no-suppress' = ours with the ablation knob\n");
  std::printf("   attr::AlwaysTransmitCopies: burn every copy like TDMA)\n");
  std::printf("  %-8s %-18s %-18s %s\n", "p", "ours HRT share",
              "ours no-suppress", "ttcan-like");
  bench::rule();
  const std::vector<double> ps{0.0, 0.02, 0.10};
  struct T2Row {
    double ours = 0, ablated = 0, ttcan = 0;
  };
  const std::vector<T2Row> t2 = bench::sweep(ps.size(), [&](std::size_t i) {
    return T2Row{hrt_share(ps[i], /*suppress=*/true),
                 hrt_share(ps[i], /*suppress=*/false),
                 run_ttcan(1, 1.0, 3).hrt_util};
  });
  for (std::size_t i = 0; i < ps.size(); ++i) {
    std::printf("  %-8.2f %9.3f%%         %9.3f%%         %9.3f%%\n", ps[i],
                t2[i].ours * 100, t2[i].ablated * 100, t2[i].ttcan * 100);
    bj.row({{"p", ps[i]},
            {"ours_hrt_share", t2[i].ours},
            {"no_suppress_hrt_share", t2[i].ablated},
            {"ttcan_hrt_share", t2[i].ttcan}});
  }
  bench::rule();
  if (!bj.write())
    bench::note("warning: could not write BENCH_reclamation.json");
  bench::note("ours grows only with p (copies sent when faults occur); both the");
  bench::note("no-suppress ablation and the TDMA baseline pay ~2x at every fault");
  bench::note("rate — \"time redundancy only costs bandwidth if faults really");
  bench::note("occur\" is exactly the suppression-on-success rule.");
  return 0;
}
