#pragma once

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <initializer_list>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

/// \file sweep.hpp
/// Thread-pooled deterministic sweep runner + machine-readable benchmark
/// output (`BENCH_<name>.json`).
///
/// Every experiment harness in this repo is a sweep over independent
/// points, each of which builds its own `Scenario`/`Simulator` (share-
/// nothing) from an explicit seed. `sweep()` executes those points on a
/// worker pool and returns the results in index order, so the output is
/// **byte-identical regardless of thread count** — parallelism changes only
/// wall time, never results (verified by tests/test_sweep.cpp).
///
/// `BenchJson` mirrors each harness's result table into BENCH_<name>.json
/// (rows + wall-time metadata) so the perf trajectory is trackable
/// PR-over-PR and CI can archive it as an artifact.

namespace rtec::bench {

/// Worker count resolution: explicit argument > RTEC_BENCH_THREADS env >
/// hardware concurrency (min 1).
inline unsigned sweep_threads(unsigned threads = 0) {
  if (threads > 0) return threads;
  if (const char* env = std::getenv("RTEC_BENCH_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

/// True when the harness should shrink itself for CI smoke runs
/// (RTEC_BENCH_QUICK=1): fewer points, shorter simulated time.
inline bool quick_mode() {
  const char* env = std::getenv("RTEC_BENCH_QUICK");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/// Runs `fn(i)` for every i in [0, n) across a pool of worker threads and
/// returns the results in index order. `fn` must be safe to invoke
/// concurrently from several threads — i.e. each point must own all its
/// mutable state (its own Scenario/Simulator/Rng seeded from `i`), which
/// every harness here satisfies by construction.
template <typename Fn>
auto sweep(std::size_t n, Fn&& fn, unsigned threads = 0)
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
  using R = std::invoke_result_t<Fn&, std::size_t>;
  static_assert(std::is_default_constructible_v<R>,
                "sweep point results must be default-constructible");
  std::vector<R> out(n);
  const std::size_t workers =
      std::min<std::size_t>(n, sweep_threads(threads));
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) out[i] = fn(i);
    return out;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
           i < n; i = next.fetch_add(1, std::memory_order_relaxed))
        out[i] = fn(i);
    });
  }
  for (std::thread& t : pool) t.join();
  return out;
}

/// Machine-readable benchmark emitter. Usage:
///
///   BenchJson bj{"scale"};
///   bj.meta("sim_seconds", 10.0);
///   for (...) bj.row({{"nodes", 64}, {"frames_per_wall_s", r.fps}});
///   bj.meta("wall_s_total", total);
///   bj.write();              // -> BENCH_scale.json
///
/// Rows hold only numeric cells so serialization is deterministic
/// (printf %.17g round-trips doubles exactly).
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_{std::move(name)} {}

  /// Adds run metadata (wall time, thread count, mode, ...). Metadata is
  /// allowed to differ between runs; `rows` are the comparable payload.
  void meta(std::string_view key, double value) {
    meta_.emplace_back(std::string{key}, number(value));
  }
  void meta(std::string_view key, std::string_view value) {
    meta_.emplace_back(std::string{key}, quote(value));
  }

  /// Appends one result row; cells keep insertion order.
  void row(std::initializer_list<std::pair<std::string_view, double>> cells) {
    rows_.emplace_back();
    for (const auto& [k, v] : cells)
      rows_.back().emplace_back(std::string{k}, v);
  }

  /// The serialized "rows" array alone — the thread-count-invariant part
  /// (used by the sweep determinism test).
  [[nodiscard]] std::string rows_json() const {
    std::ostringstream os;
    os << "[";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      os << (r == 0 ? "\n" : ",\n") << "    {";
      for (std::size_t c = 0; c < rows_[r].size(); ++c) {
        if (c > 0) os << ", ";
        os << quote(rows_[r][c].first) << ": " << number(rows_[r][c].second);
      }
      os << "}";
    }
    os << "\n  ]";
    return os.str();
  }

  [[nodiscard]] std::string to_json() const {
    std::ostringstream os;
    os << "{\n  \"name\": " << quote(name_) << ",\n  \"meta\": {";
    for (std::size_t i = 0; i < meta_.size(); ++i) {
      os << (i == 0 ? "\n" : ",\n") << "    " << quote(meta_[i].first) << ": "
         << meta_[i].second;
    }
    os << "\n  },\n  \"rows\": " << rows_json() << "\n}\n";
    return os.str();
  }

  /// Writes BENCH_<name>.json into the current directory (or
  /// $RTEC_BENCH_DIR when set). Returns false on I/O failure.
  bool write() const {
    std::string dir;
    if (const char* env = std::getenv("RTEC_BENCH_DIR")) dir = env;
    if (!dir.empty() && dir.back() != '/') dir += '/';
    std::ofstream out{dir + "BENCH_" + name_ + ".json"};
    if (!out) return false;
    out << to_json();
    return out.good();
  }

 private:
  static std::string number(double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
  }

  static std::string quote(std::string_view s) {
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"' || ch == '\\') {
        out += '\\';
        out += ch;
      } else if (static_cast<unsigned char>(ch) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof buf, "\\u%04x", ch);
        out += buf;
      } else {
        out += ch;
      }
    }
    out += '"';
    return out;
  }

  std::string name_;
  std::vector<std::pair<std::string, std::string>> meta_;
  std::vector<std::vector<std::pair<std::string, double>>> rows_;
};

}  // namespace rtec::bench
