// Parallel multi-segment engine: wall-time of a gateway-connected chain of
// CAN segments under the sequential single-kernel run vs the sharded
// conservative engine (one kernel per segment, Config::shards). Both runs
// simulate the identical workload — and produce bit-identical frame traces
// (tests/test_multiseg.cpp) — so the speedup column isolates the engine.
//
// Points run SERIALLY (never on the sweep pool): the parallel engine's own
// worker threads are the thing being measured, so nothing else may compete
// for cores. RTEC_BENCH_THREADS caps the engine's worker count (default:
// one per segment, up to the hardware). RTEC_BENCH_QUICK=1 shrinks the
// grid for CI smoke runs. Speedup is meaningless on 1-core hosts — the
// `host_cpus` metadata records what the numbers were measured on.

#include <cassert>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "bench/sweep.hpp"
#include "core/gateway.hpp"
#include "core/hrtec.hpp"
#include "core/scenario.hpp"
#include "core/srtec.hpp"
#include "time/periodic.hpp"
#include "util/random.hpp"
#include "util/task_pool.hpp"

using namespace rtec;
using namespace rtec::literals;

namespace {

struct Run {
  double wall_s = 0;
  double frames = 0;
  double epochs = 0;
  double handoffs = 0;
};

/// Chain of `segments` segments, `nodes_per_seg` nodes each: per-segment
/// clock sync + SRT Poisson chatter (~40% of each bus) + one HRT stream
/// per 4 nodes, and one bridged SRT subject per gateway link so traffic
/// continuously crosses shard boundaries.
Run run_chain(int segments, int nodes_per_seg, int shards, unsigned threads,
              Duration sim_time) {
  TaskPool pool;
  Scenario::Config cfg;
  cfg.networks = segments;
  cfg.shards = shards;
  cfg.threads = threads;
  cfg.calendar.round_length = 10_ms;
  Scenario scn{cfg};
  Rng setup_rng{static_cast<std::uint64_t>(segments * 1000 + nodes_per_seg)};

  // Node ids are 7-bit (kMaxNodeId = 127): regular nodes fill 1..96,
  // gateway stacks sit at 100+ — which bounds the grid to 8 segments of
  // at most 12 nodes.
  assert(segments * nodes_per_seg <= 96 && segments <= 8);
  const auto node_id = [nodes_per_seg](int net, int k) {
    return static_cast<NodeId>(net * nodes_per_seg + k + 1);
  };
  for (int net = 0; net < segments; ++net) {
    for (int k = 0; k < nodes_per_seg; ++k) {
      Node::ClockParams p;
      p.initial_offset = Duration::microseconds(setup_rng.uniform_int(-20, 20));
      p.drift_ppb = setup_rng.uniform_int(-80'000, 80'000);
      p.granularity = 1_us;
      scn.add_node(node_id(net, k), p, net);
    }
  }

  std::vector<std::unique_ptr<Gateway>> gateways;
  std::vector<std::unique_ptr<Srtec>> stacks;
  std::vector<std::unique_ptr<PeriodicLocalTask>> tasks;
  for (int l = 0; l + 1 < segments; ++l) {
    Node& ga = scn.add_node(static_cast<NodeId>(100 + 2 * l), {}, l);
    Node& gb = scn.add_node(static_cast<NodeId>(101 + 2 * l), {}, l + 1);
    gateways.push_back(std::make_unique<Gateway>(
        ga, gb, scn.link_gateway(ga, gb, /*forward latency*/ 250_us)));
    const Subject subj = subject_of("multiseg/x" + std::to_string(l));
    (void)gateways.back()->bridge_srt(subj, 10_ms, 30_ms);
    stacks.push_back(std::make_unique<Srtec>(
        scn.node(node_id(l, 0)).middleware()));
    Srtec* pub = stacks.back().get();
    (void)pub->announce(subj, AttributeList{attr::Deadline{10_ms}}, nullptr);
    stacks.push_back(std::make_unique<Srtec>(
        scn.node(node_id(l + 1, 1)).middleware()));
    Srtec* sub = stacks.back().get();
    (void)sub->subscribe(subj, {}, [sub] { (void)sub->getEvent(); }, nullptr);
    tasks.push_back(std::make_unique<PeriodicLocalTask>(
        scn.node(node_id(l, 0)).clock(), 5_ms, [pub] {
          Event e;
          e.content = {0xC5, 0x01};
          (void)pub->publish(std::move(e));
        }));
    tasks.back()->start();
  }

  for (int net = 0; net < segments; ++net)
    (void)scn.enable_clock_sync(node_id(net, nodes_per_seg - 1), 500_us);

  // One HRT stream per 4 nodes, per segment.
  std::vector<std::unique_ptr<Hrtec>> hrt;
  for (int net = 0; net < segments; ++net) {
    for (int i = 0; i < nodes_per_seg / 4; ++i) {
      const std::string name =
          "multiseg/h" + std::to_string(net) + "_" + std::to_string(i);
      const Etag etag = *scn.binding().bind(subject_of(name));
      SlotSpec slot;
      slot.lst_offset = 1_ms + Duration::microseconds(600) * i;
      slot.dlc = 8;
      slot.etag = etag;
      slot.publisher = node_id(net, i);
      if (!scn.calendar(net).reserve(slot).has_value()) break;
      hrt.push_back(
          std::make_unique<Hrtec>(scn.node(node_id(net, i)).middleware()));
      Hrtec* pub = hrt.back().get();
      (void)pub->announce(subject_of(name), {}, nullptr);
      hrt.push_back(std::make_unique<Hrtec>(
          scn.node(node_id(net, nodes_per_seg - 1 - i % 4)).middleware()));
      Hrtec* sub = hrt.back().get();
      (void)sub->subscribe(subject_of(name),
                           AttributeList{attr::QueueCapacity{4}},
                           [sub] { (void)sub->getEvent(); }, nullptr);
      tasks.push_back(std::make_unique<PeriodicLocalTask>(
          scn.node(node_id(net, i)).clock(), 10_ms, [pub] {
            Event e;
            e.content = {1, 2, 3, 4, 5, 6, 7, 8};
            (void)pub->publish(std::move(e));
          }));
      tasks.back()->start();
    }
  }

  // SRT chatter at ~40% aggregate load per segment, per-segment Rng so the
  // draw sequences are shard-invariant.
  std::vector<std::unique_ptr<Rng>> seg_rngs;
  for (int net = 0; net < segments; ++net)
    seg_rngs.push_back(
        std::make_unique<Rng>(static_cast<std::uint64_t>(net) * 77 + 13));
  const double mean_gap_ns = 160e3 * nodes_per_seg / 0.4;
  for (int net = 0; net < segments; ++net) {
    for (int k = 0; k < nodes_per_seg; ++k) {
      const std::string name =
          "multiseg/s" + std::to_string(net) + "_" + std::to_string(k);
      stacks.push_back(std::make_unique<Srtec>(
          scn.node(node_id(net, k)).middleware()));
      Srtec* pub = stacks.back().get();
      (void)pub->announce(subject_of(name), AttributeList{attr::Deadline{20_ms}},
                          nullptr);
      Simulator* sim = &scn.segment_sim(net);
      Rng* rng = seg_rngs[static_cast<std::size_t>(net)].get();
      auto* loop = pool.make();
      *loop = [pub, sim, rng, mean_gap_ns, loop] {
        Event e;
        e.content = {0xA5};
        (void)pub->publish(std::move(e));
        sim->schedule_after(Duration::nanoseconds(static_cast<std::int64_t>(
                                rng->exponential(mean_gap_ns))),
                            [loop] { (*loop)(); });
      };
      sim->schedule_after(
          Duration::microseconds(setup_rng.uniform_int(0, 2000)),
          [loop] { (*loop)(); });
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  scn.run_for(sim_time);
  const auto t1 = std::chrono::steady_clock::now();

  Run r;
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  for (int net = 0; net < segments; ++net)
    r.frames += static_cast<double>(scn.bus(net).frames_ok() +
                                    scn.bus(net).frames_error());
  r.epochs = static_cast<double>(scn.shard_engine().stats().epochs);
  r.handoffs = static_cast<double>(scn.shard_engine().stats().handoffs);
  return r;
}

Run median_of(int reps, const std::function<Run()>& fn) {
  std::vector<Run> runs;
  runs.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) runs.push_back(fn());
  std::sort(runs.begin(), runs.end(),
            [](const Run& a, const Run& b) { return a.wall_s < b.wall_s; });
  return runs[runs.size() / 2];
}

}  // namespace

int main() {
  const bool quick = bench::quick_mode();
  const Duration sim_time =
      quick ? Duration::seconds(1) : Duration::seconds(4);
  const int nodes_per_seg = quick ? 8 : 12;
  const int reps = quick ? 1 : 3;
  const std::vector<int> seg_counts =
      quick ? std::vector<int>{1, 2, 4} : std::vector<int>{1, 2, 4, 8};
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());

  bench::title("multiseg", "sharded engine vs single kernel, chain topology");
  bench::note("%lld simulated seconds, %d nodes/segment; per-segment clock",
              static_cast<long long>(sim_time.ns() / 1'000'000'000),
              nodes_per_seg);
  bench::note("sync, ~40%% SRT load + HRT streams, bridged SRT across every");
  bench::note("gateway (250 us forward latency = lookahead); %u host cpus",
              hw);

  bench::BenchJson bj{"multiseg"};
  bj.meta("generated_by", "bench_multiseg");
  bj.meta("sim_seconds", sim_time.sec());
  bj.meta("quick", quick ? 1.0 : 0.0);
  bj.meta("nodes_per_seg", static_cast<double>(nodes_per_seg));
  bj.meta("reps", static_cast<double>(reps));
  bj.meta("host_cpus", static_cast<double>(hw));

  std::printf("\n  %-5s %-7s %-9s %-10s %-9s %-10s %-8s %s\n", "segs",
              "nodes", "frames", "seq (s)", "par (s)", "par fps", "speedup",
              "epochs");
  bench::rule();

  const auto t0 = std::chrono::steady_clock::now();
  for (const int segments : seg_counts) {
    // Engine worker threads: RTEC_BENCH_THREADS caps them (CI pins 2);
    // default is one per segment up to the host's cores.
    const unsigned threads =
        std::min(bench::sweep_threads(), static_cast<unsigned>(segments));
    const Run seq = median_of(reps, [&] {
      return run_chain(segments, nodes_per_seg, /*shards=*/1, /*threads=*/1,
                       sim_time);
    });
    const Run par = median_of(reps, [&] {
      return run_chain(segments, nodes_per_seg, /*shards=*/segments, threads,
                       sim_time);
    });
    const double speedup = seq.wall_s / par.wall_s;
    const double fps_seq = seq.frames / seq.wall_s;
    const double fps_par = par.frames / par.wall_s;
    std::printf("  %-5d %-7d %-9.0f %-10.3f %-9.3f %-10.0f %-8.2f %.0f\n",
                segments, segments * nodes_per_seg, par.frames, seq.wall_s,
                par.wall_s, fps_par, speedup, par.epochs);
    bj.row({{"segments", static_cast<double>(segments)},
            {"nodes_per_seg", static_cast<double>(nodes_per_seg)},
            {"threads", static_cast<double>(threads)},
            {"frames", par.frames},
            {"wall_s_seq", seq.wall_s},
            {"fps_seq", fps_seq},
            {"wall_s_par", par.wall_s},
            {"fps_par", fps_par},
            {"speedup", speedup},
            {"epochs", par.epochs},
            {"handoffs", par.handoffs}});
  }
  bench::rule();
  bj.meta("wall_s_total",
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count());
  if (!bj.write()) bench::note("warning: could not write BENCH_multiseg.json");
  bench::note("sequential and sharded runs execute the identical event");
  bench::note("sequence (tests/test_multiseg.cpp proves bit-equality); the");
  bench::note("speedup column is pure engine overhead/parallelism. On a");
  bench::note("single-core host expect speedup <= 1 (epoch overhead only).");
  return 0;
}
