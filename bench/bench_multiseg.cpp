// Parallel multi-segment engine at city scale: generated topologies
// (sim/topology_gen.hpp — chain, fleet-of-stars, campus grid, backbone
// tree) with a busy/light segment mix, measured three ways per point:
//
//   seq   — one shared kernel (shards=1), the sequential reference
//   par   — one kernel per segment, per-link lookahead (the default)
//   glob  — one kernel per segment, legacy global-minimum lookahead
//
// All three runs simulate the identical workload and produce bit-identical
// frame traces (tests/test_multiseg.cpp), so `speedup` isolates the engine
// and `epoch_reduction` isolates the per-link horizon policy: on weakly
// coupled topologies a busy segment's horizon is set by its idle
// neighbours' progress, not by the globally slowest shard, so the engine
// needs far fewer epochs to cover the same simulated time.
//
// Points run SERIALLY (never on the sweep pool): the parallel engine's own
// worker threads are the thing being measured, so nothing else may compete
// for cores. RTEC_BENCH_THREADS caps the engine's worker count (default:
// one per segment, up to the hardware). RTEC_BENCH_QUICK=1 shrinks the
// grid for CI smoke runs. Speedup is meaningless on 1-core hosts — the
// `host_cpus` metadata records what the numbers were measured on; the
// epoch columns are scheduling counts and are host-independent.

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "bench/sweep.hpp"
#include "core/gateway.hpp"
#include "core/scenario.hpp"
#include "core/srtec.hpp"
#include "sim/topology_gen.hpp"
#include "time/periodic.hpp"
#include "trace/registry.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"
#include "util/task_pool.hpp"

using namespace rtec;
using namespace rtec::literals;

namespace {

struct Run {
  double wall_s = 0;
  double frames = 0;
  double epochs = 0;
  double handoffs = 0;
  double shard_runs = 0;
};

/// City workload over a generated topology: two regular nodes per segment
/// with per-segment clock sync, one bridged SRT subject per gateway link,
/// and Poisson chatter on every fourth segment. The busy/light mix is the
/// point — it is what per-link lookahead exploits and global-min cannot.
Run run_city(const TopoSpec& topo, int shards, unsigned threads,
             LookaheadMode mode, Duration sim_time,
             rtec::trace::MetricsRegistry* metrics = nullptr) {
  TaskPool pool;
  Scenario::Config cfg;
  cfg.networks = topo.segments;
  cfg.shards = shards;
  cfg.threads = threads;
  cfg.lookahead = mode;
  cfg.calendar.round_length = 10_ms;
  Scenario scn{cfg};
  Rng setup_rng{topo.seed + 0xBE7Cu};

  for (int net = 0; net < topo.segments; ++net) {
    for (NodeId k : {NodeId{1}, NodeId{2}}) {
      Node::ClockParams p;
      p.initial_offset = Duration::microseconds(setup_rng.uniform_int(-20, 20));
      p.drift_ppb = setup_rng.uniform_int(-80'000, 80'000);
      p.granularity = 1_us;
      scn.add_node(k, p, net);
    }
  }

  std::vector<int> next_gw_id(static_cast<std::size_t>(topo.segments), 100);
  std::vector<std::unique_ptr<Gateway>> gateways;
  std::vector<std::unique_ptr<Srtec>> stacks;
  std::vector<std::unique_ptr<PeriodicLocalTask>> tasks;
  const auto make_stack = [&](NodeId id, int net) {
    stacks.push_back(std::make_unique<Srtec>(scn.node(id, net).middleware()));
    return stacks.back().get();
  };

  for (std::size_t l = 0; l < topo.links.size(); ++l) {
    const TopoLink& link = topo.links[l];
    Node& ga = scn.add_node(
        static_cast<NodeId>(next_gw_id[static_cast<std::size_t>(link.a)]++),
        {}, link.a);
    Node& gb = scn.add_node(
        static_cast<NodeId>(next_gw_id[static_cast<std::size_t>(link.b)]++),
        {}, link.b);
    gateways.push_back(std::make_unique<Gateway>(
        ga, gb, scn.link_gateway(ga, gb, link.latency)));
    const Subject subj = subject_of("city/x" + std::to_string(l));
    (void)gateways.back()->bridge_srt(subj, 10_ms, 30_ms);
    Srtec* pub = make_stack(NodeId{1}, link.a);
    (void)pub->announce(subj, AttributeList{attr::Deadline{10_ms}}, nullptr);
    Srtec* sub = make_stack(NodeId{2}, link.b);
    (void)sub->subscribe(subj, {}, [sub] { (void)sub->getEvent(); }, nullptr);
    std::uint8_t payload = static_cast<std::uint8_t>(l);
    tasks.push_back(std::make_unique<PeriodicLocalTask>(
        scn.node(NodeId{1}, link.a).clock(),
        5_ms + Duration::milliseconds(static_cast<std::int64_t>(l % 5)),
        [pub, payload]() mutable {
          Event e;
          e.content = {payload++, 0x42};
          (void)pub->publish(std::move(e));
        }));
    tasks.back()->start();
  }

  for (int net = 0; net < topo.segments; ++net)
    (void)scn.enable_clock_sync_on(net, NodeId{2}, 500_us);

  // Poisson chatter on every fourth segment: the busy minority whose
  // horizons per-link lookahead decouples from the idle majority.
  std::vector<std::unique_ptr<Rng>> seg_rngs;
  for (int net = 0; net < topo.segments; net += 4) {
    seg_rngs.push_back(std::make_unique<Rng>(
        topo.seed * 1000 + static_cast<std::uint64_t>(net) + 1));
    const Subject subj = subject_of("city/c" + std::to_string(net));
    Srtec* pub = make_stack(NodeId{1}, net);
    (void)pub->announce(subj, AttributeList{attr::Deadline{20_ms}}, nullptr);
    Srtec* sub = make_stack(NodeId{2}, net);
    (void)sub->subscribe(subj, {}, [sub] { (void)sub->getEvent(); }, nullptr);
    Simulator* sim = &scn.segment_sim(net);
    Rng* rng = seg_rngs.back().get();
    auto* loop = pool.make();
    *loop = [pub, sim, rng, loop] {
      Event e;
      e.content = {0x5A};
      (void)pub->publish(std::move(e));
      sim->schedule_after(Duration::nanoseconds(static_cast<std::int64_t>(
                              rng->exponential(0.5e6))),
                          [loop] { (*loop)(); });
    };
    sim->schedule_after(
        Duration::microseconds(setup_rng.uniform_int(100, 3000)),
        [loop] { (*loop)(); });
  }

  const auto t0 = std::chrono::steady_clock::now();
  scn.run_for(sim_time);
  const auto t1 = std::chrono::steady_clock::now();

  Run r;
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  for (int net = 0; net < topo.segments; ++net)
    r.frames += static_cast<double>(scn.bus(net).frames_ok() +
                                    scn.bus(net).frames_error());
  r.epochs = static_cast<double>(scn.shard_engine().stats().epochs);
  r.handoffs = static_cast<double>(scn.shard_engine().stats().handoffs);
  r.shard_runs = static_cast<double>(scn.shard_engine().stats().shard_runs);
  if (metrics != nullptr) scn.export_metrics(*metrics);
  return r;
}

Run median_of(int reps, const std::function<Run()>& fn) {
  std::vector<Run> runs;
  runs.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) runs.push_back(fn());
  std::sort(runs.begin(), runs.end(),
            [](const Run& a, const Run& b) { return a.wall_s < b.wall_s; });
  return runs[quantile_rank(runs.size(), 0.5)];
}

struct Point {
  TopoShape shape;
  int segments;
};

}  // namespace

int main() {
  const bool quick = bench::quick_mode();
  const Duration sim_time =
      quick ? Duration::milliseconds(300) : Duration::seconds(1);
  const int reps = quick ? 1 : 3;
  const std::vector<Point> points =
      quick ? std::vector<Point>{{TopoShape::kChain, 4},
                                 {TopoShape::kCampusGrid, 16}}
            : std::vector<Point>{{TopoShape::kChain, 4},
                                 {TopoShape::kChain, 8},
                                 {TopoShape::kChain, 32},
                                 {TopoShape::kFleetStar, 64},
                                 {TopoShape::kBackboneTree, 64},
                                 {TopoShape::kCampusGrid, 64},
                                 {TopoShape::kCampusGrid, 128},
                                 {TopoShape::kCampusGrid, 256}};
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());

  bench::title("multiseg",
               "sharded engine at city scale, generated topologies");
  bench::note("%lld simulated ms per run; 2 nodes/segment + gateways,",
              static_cast<long long>(sim_time.ns() / 1'000'000));
  bench::note("per-segment clock sync, bridged SRT on every link, Poisson");
  bench::note("chatter on every 4th segment (busy/light mix); %u host cpus",
              hw);

  bench::BenchJson bj{"multiseg"};
  bj.meta("generated_by", "bench_multiseg");
  bj.meta("shape_legend", "0=chain 1=fleet 2=grid 3=tree");
  bj.meta("sim_seconds", sim_time.sec());
  bj.meta("quick", quick ? 1.0 : 0.0);
  bj.meta("reps", static_cast<double>(reps));
  bj.meta("host_cpus", static_cast<double>(hw));

  std::printf("\n  %-6s %-5s %-8s %-9s %-9s %-8s %-10s %-10s %-7s %s\n",
              "shape", "segs", "frames", "seq (s)", "par (s)", "speedup",
              "epochs", "glob.ep", "red.", "handoffs");
  bench::rule();

  const auto t0 = std::chrono::steady_clock::now();
  for (const Point& pt : points) {
    const TopoSpec topo = make_topology(pt.shape, pt.segments, /*seed=*/11);
    // Engine worker threads: RTEC_BENCH_THREADS caps them (CI pins 2);
    // default is one per segment up to the host's cores.
    const unsigned threads =
        std::min(bench::sweep_threads(), static_cast<unsigned>(pt.segments));
    const Run seq = median_of(reps, [&] {
      return run_city(topo, /*shards=*/1, /*threads=*/1,
                      LookaheadMode::kPerLink, sim_time);
    });
    const Run par = median_of(reps, [&] {
      return run_city(topo, pt.segments, threads, LookaheadMode::kPerLink,
                      sim_time);
    });
    const Run glob = median_of(reps, [&] {
      return run_city(topo, pt.segments, threads, LookaheadMode::kGlobalMin,
                      sim_time);
    });
    const double speedup = seq.wall_s / par.wall_s;
    const double reduction =
        glob.epochs > 0 ? 1.0 - par.epochs / glob.epochs : 0.0;
    std::printf(
        "  %-6s %-5d %-8.0f %-9.3f %-9.3f %-8.2f %-10.0f %-10.0f %4.0f%%   "
        "%.0f\n",
        topo_shape_name(pt.shape), pt.segments, par.frames, seq.wall_s,
        par.wall_s, speedup, par.epochs, glob.epochs, reduction * 100,
        par.handoffs);
    bj.row({{"shape", static_cast<double>(static_cast<int>(pt.shape))},
            {"segments", static_cast<double>(pt.segments)},
            {"threads", static_cast<double>(threads)},
            {"frames", par.frames},
            {"wall_s_seq", seq.wall_s},
            {"wall_s_par", par.wall_s},
            {"wall_s_global", glob.wall_s},
            {"speedup", speedup},
            {"epochs", par.epochs},
            {"epochs_global", glob.epochs},
            {"epoch_reduction", reduction},
            {"handoffs", par.handoffs},
            {"shard_runs", par.shard_runs}});
  }
  bench::rule();
  bj.meta("wall_s_total",
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count());
  if (!bj.write()) bench::note("warning: could not write BENCH_multiseg.json");
  // Full registry snapshot from one small representative city
  // (docs/observability.md) — METRICS_multiseg.json rides along with the
  // BENCH json in CI artifacts.
  {
    trace::MetricsRegistry metrics;
    const TopoSpec topo = make_topology(TopoShape::kChain, 4, /*seed=*/11);
    (void)run_city(topo, 4, 1, LookaheadMode::kPerLink, 100_ms, &metrics);
    if (!metrics.save("METRICS_multiseg.json"))
      bench::note("warning: could not write METRICS_multiseg.json");
  }
  bench::note("all three configurations execute the identical event sequence");
  bench::note("(tests/test_multiseg.cpp proves bit-equality); epoch_reduction");
  bench::note("= 1 - epochs/epochs_global is host-independent. On a 1-core");
  bench::note("host expect speedup <= 1 (epoch + barrier overhead only).");
  return 0;
}
