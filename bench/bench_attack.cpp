// E13 — attack injection and streaming anomaly detection (robustness).
//
// The paper's fault model is benign; this harness measures what happens
// when the bus is *lied to*. A five-node benign world publishes jittered
// periodic streams; after a training phase, the three streaming
// inter-arrival-time detectors (trace/detectors.hpp, following the CAN
// IDS benchmarking methodology of arXiv 2307.04561) watch the bus while
// one of the four attack families (canbus/attack.hpp) runs through the
// real arbitration path. Reported per (attack, detector, seed):
//
//   fp_alarms — alarms raised during the attack-free benign window
//               (false positives),
//   detected  — whether any alarm fired during/after the attack window,
//   ttd_ms    — time from attack onset to the first such alarm.
//
// Expected shape: spoofing/injection/replay are caught within a few
// victim periods by all three detectors; message suspension is invisible
// to the per-arrival detectors until traffic resumes but is flagged by
// the window-frequency detector within ~one window — the study's central
// observation, reproduced here at frame-accurate bus timing.

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/common.hpp"
#include "bench/sweep.hpp"
#include "canbus/attack.hpp"
#include "core/scenario.hpp"
#include "sched/id_codec.hpp"
#include "trace/detectors.hpp"
#include "trace/registry.hpp"
#include "util/random.hpp"
#include "util/task_pool.hpp"

using namespace rtec;
using namespace rtec::literals;

namespace {

constexpr int kDetectors = 3;
const char* const kDetectorNames[kDetectors] = {"iat_gate", "cusum",
                                                "win_freq"};
constexpr int kAttacks = 5;
const char* const kAttackNames[kAttacks] = {"none", "injection", "spoof",
                                            "suspend", "replay"};

/// Experiment timeline: [0, train) learn, [train, attack_from) measure
/// false positives on attack-free traffic, [attack_from, attack_to) the
/// attack runs, then a tail so late detections (suspension resume) land.
struct Timeline {
  TimePoint train_end;
  TimePoint attack_from;
  TimePoint attack_to;
  TimePoint run_end;
};

Timeline make_timeline(bool quick) {
  const auto at = [](std::int64_t ms) {
    return TimePoint::origin() + Duration::milliseconds(ms);
  };
  if (quick) return {at(1000), at(1500), at(2000), at(2300)};
  return {at(4000), at(6000), at(8000), at(9000)};
}

/// Benign node streams: periods and identifier etags of nodes 1..5.
/// Node 1 (10 ms) is the spoof/suspension/replay victim.
constexpr int kNodes = 5;
constexpr std::int64_t kPeriodsMs[kNodes] = {10, 14, 20, 28, 40};

std::uint32_t stream_id(NodeId node) {
  return encode_can_id(
      {/*priority=*/5, node, static_cast<Etag>(100 + node)});
}

/// Controller-level periodic publisher with seeded per-event phase noise
/// in [0, jitter]: nominal slots stay on the grid so the long-run rate is
/// exact, while inter-arrival times get a non-degenerate distribution for
/// the detectors to learn.
void jittered_publisher(Simulator& sim, CanController& c, std::uint32_t id,
                        Duration period, Duration jitter, TimePoint from,
                        TimePoint until, TaskPool& pool, Rng* rng) {
  auto* tick = pool.make();
  auto slot = std::make_shared<TimePoint>(from);
  *tick = [&sim, &c, id, period, jitter, until, slot, rng, tick] {
    if (*slot >= until) return;
    const Duration noise =
        Duration::nanoseconds(rng->uniform_int(0, jitter.ns()));
    sim.schedule_at(*slot + noise, [&c, id] {
      CanFrame f;
      f.id = id;
      f.dlc = 8;
      (void)c.submit(f, TxMode::kSingleShot);
    });
    *slot += period;
    sim.schedule_at(*slot, [tick] { (*tick)(); });
  };
  sim.schedule_at(from, [tick] { (*tick)(); });
}

struct DetectorOutcome {
  std::uint64_t fp_alarms = 0;  ///< alarms in the attack-free window
  bool detected = false;        ///< any alarm at/after attack onset
  double ttd_ms = -1.0;         ///< onset -> first alarm; -1 = none
};

struct PointResult {
  std::array<DetectorOutcome, kDetectors> det{};
  std::uint64_t injected = 0;   ///< attack frames submitted
  std::uint64_t delivered = 0;  ///< attack frames on the wire
  std::uint64_t deliveries = 0;  ///< total tapped bus deliveries
};

PointResult run_point(int attack, std::uint64_t seed, const Timeline& tl,
                      rtec::trace::MetricsRegistry* metrics = nullptr) {
  Scenario scn;
  TaskPool pool;
  std::vector<std::unique_ptr<Rng>> rngs;

  for (int i = 0; i < kNodes; ++i) {
    const NodeId id = static_cast<NodeId>(i + 1);
    Node& n = scn.add_node(id);
    const Duration period = Duration::milliseconds(kPeriodsMs[i]);
    rngs.push_back(std::make_unique<Rng>(seed * 100 + static_cast<std::uint64_t>(i)));
    jittered_publisher(scn.sim(), n.controller(), stream_id(id), period,
                       /*jitter=*/period / 10,
                       TimePoint::origin() + Duration::milliseconds(i + 1),
                       tl.run_end, pool, rngs.back().get());
  }

  // The detector bank under test, with per-detector alarm logs.
  trace::DetectorBank& bank = scn.detectors();
  std::array<std::vector<trace::Alarm>, kDetectors> alarms;
  trace::MeanIatGate::Config gate_cfg;
  gate_cfg.train_until = tl.train_end;
  trace::CusumDetector::Config cusum_cfg;
  cusum_cfg.train_until = tl.train_end;
  trace::WindowFrequencyDetector::Config win_cfg;
  win_cfg.train_until = tl.train_end;
  win_cfg.window = 100_ms;
  trace::Detector* dets[kDetectors] = {
      &bank.add(std::make_unique<trace::MeanIatGate>(gate_cfg)),
      &bank.add(std::make_unique<trace::CusumDetector>(cusum_cfg)),
      &bank.add(std::make_unique<trace::WindowFrequencyDetector>(win_cfg))};
  for (int d = 0; d < kDetectors; ++d) {
    auto* log = &alarms[static_cast<std::size_t>(d)];
    dets[d]->set_alarm_sink(
        [log](const trace::Alarm& a) { log->push_back(a); });
  }

  // The adversary.
  const NodeId victim = 1;
  AttackModel* armed = nullptr;
  switch (attack) {
    case 1: {  // injection: fuzzed identifier flood
      FuzzingAttack::Config cfg;
      cfg.from = tl.attack_from;
      cfg.to = tl.attack_to;
      cfg.mean_gap = 2_ms;
      armed = &scn.install_attack(std::make_unique<FuzzingAttack>(cfg), 9,
                                  seed + 1);
      break;
    }
    case 2: {  // spoofing: the victim's exact id at the victim's rate
      SpoofingAttack::Config cfg;
      cfg.id = stream_id(victim);
      cfg.from = tl.attack_from;
      cfg.to = tl.attack_to;
      cfg.period = Duration::milliseconds(kPeriodsMs[0]);
      cfg.jitter = 1_ms;
      armed = &scn.install_attack(std::make_unique<SpoofingAttack>(cfg), 9,
                                  seed + 1);
      break;
    }
    case 3: {  // suspension: the victim node goes silent
      SuspensionAttack::Config cfg;
      cfg.victim = victim;
      cfg.from = tl.attack_from;
      cfg.to = tl.attack_to;
      armed = &scn.install_attack(std::make_unique<SuspensionAttack>(cfg), 9,
                                  seed + 1);
      break;
    }
    case 4: {  // replay: record the victim's benign window, replay it
      ReplayAttack::Config cfg;
      cfg.record_from = tl.train_end;
      cfg.record_to = tl.attack_from;
      cfg.replay_at = tl.attack_from;
      cfg.id_match = stream_id(victim);
      cfg.id_mask = 0x1fffffff;
      armed = &scn.install_attack(std::make_unique<ReplayAttack>(cfg), 9,
                                  seed + 1);
      break;
    }
    default:
      break;  // none: FP/control run
  }

  scn.run_until(tl.run_end);
  scn.flush_streams();

  PointResult out;
  for (int d = 0; d < kDetectors; ++d) {
    DetectorOutcome& o = out.det[static_cast<std::size_t>(d)];
    for (const trace::Alarm& a : alarms[static_cast<std::size_t>(d)]) {
      if (a.at < tl.attack_from) {
        ++o.fp_alarms;
      } else if (!o.detected) {
        o.detected = true;
        o.ttd_ms = (a.at - tl.attack_from).ms();
      }
    }
  }
  if (armed != nullptr) {
    out.injected = armed->frames_injected();
    out.delivered = armed->frames_delivered();
  }
  out.deliveries = scn.tapped_deliveries();
  if (metrics != nullptr) scn.export_metrics(*metrics);
  return out;
}

}  // namespace

int main() {
  bench::title("E13", "attack injection vs streaming anomaly detection");

  const bool quick = bench::quick_mode();
  const Timeline tl = make_timeline(quick);
  const std::vector<std::uint64_t> seeds =
      quick ? std::vector<std::uint64_t>{1} : std::vector<std::uint64_t>{1, 2, 3};
  const double benign_s = (tl.attack_from - tl.train_end).sec();

  bench::BenchJson bj{"attack"};
  bj.meta("generated_by", "bench_attack");
  bj.meta("quick", quick ? 1.0 : 0.0);
  bj.meta("threads", static_cast<double>(bench::sweep_threads()));
  bj.meta("train_s", (tl.train_end - TimePoint::origin()).sec());
  bj.meta("benign_s", benign_s);
  bj.meta("attack_s", (tl.attack_to - tl.attack_from).sec());
  bj.meta("attacks", "0=none 1=injection 2=spoof 3=suspend 4=replay");
  bj.meta("detectors", "0=iat_gate 1=cusum 2=win_freq");

  struct Point {
    int attack = 0;
    std::uint64_t seed = 0;
  };
  std::vector<Point> grid;
  for (int a = 0; a < kAttacks; ++a)
    for (const std::uint64_t s : seeds) grid.push_back({a, s});

  const std::vector<PointResult> results =
      bench::sweep(grid.size(), [&](std::size_t i) {
        return run_point(grid[i].attack, grid[i].seed, tl);
      });

  std::printf("\n  per-detector outcome by attack type (seeded runs)\n");
  std::printf("  %-10s %-5s %-9s %-10s %-9s %-9s %s\n", "attack", "seed",
              "detector", "fp/benign", "detected", "ttd_ms", "attack frames");
  bench::rule();
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const PointResult& r = results[i];
    for (int d = 0; d < kDetectors; ++d) {
      const DetectorOutcome& o = r.det[static_cast<std::size_t>(d)];
      std::printf("  %-10s %-5llu %-9s %-10.2f %-9s %-9.1f %llu/%llu\n",
                  kAttackNames[grid[i].attack],
                  static_cast<unsigned long long>(grid[i].seed),
                  kDetectorNames[d],
                  static_cast<double>(o.fp_alarms) / benign_s,
                  o.detected ? "yes" : "no", o.ttd_ms,
                  static_cast<unsigned long long>(r.delivered),
                  static_cast<unsigned long long>(r.injected));
      bj.row({{"attack", static_cast<double>(grid[i].attack)},
              {"detector", static_cast<double>(d)},
              {"seed", static_cast<double>(grid[i].seed)},
              {"fp_alarms", static_cast<double>(o.fp_alarms)},
              {"fp_per_s", static_cast<double>(o.fp_alarms) / benign_s},
              {"detected", o.detected ? 1.0 : 0.0},
              {"ttd_ms", o.ttd_ms},
              {"attack_injected", static_cast<double>(r.injected)},
              {"attack_delivered", static_cast<double>(r.delivered)},
              {"deliveries", static_cast<double>(r.deliveries)}});
    }
  }
  bench::rule();

  // Headline rates per attack type across seeds and detectors: an attack
  // counts as detected when ANY detector alarms (a bank is an ensemble).
  std::printf("\n  ensemble summary (any-detector)\n");
  std::printf("  %-10s %-10s %-12s %s\n", "attack", "detected", "rate",
              "median ttd_ms");
  bench::rule();
  for (int a = 0; a < kAttacks; ++a) {
    int hit = 0;
    int n = 0;
    std::vector<double> ttds;
    for (std::size_t i = 0; i < grid.size(); ++i) {
      if (grid[i].attack != a) continue;
      ++n;
      double best = -1.0;
      for (const DetectorOutcome& o : results[i].det)
        if (o.detected && (best < 0.0 || o.ttd_ms < best)) best = o.ttd_ms;
      if (best >= 0.0) {
        ++hit;
        ttds.push_back(best);
      }
    }
    std::sort(ttds.begin(), ttds.end());
    const double med = ttds.empty() ? -1.0 : ttds[ttds.size() / 2];
    std::printf("  %-10s %d/%-8d %-12.2f %.1f\n", kAttackNames[a], hit, n,
                n > 0 ? static_cast<double>(hit) / n : 0.0, med);
  }
  bench::rule();
  if (!bj.write()) bench::note("warning: could not write BENCH_attack.json");
  // Full registry snapshot from one representative attack point
  // (docs/observability.md) — METRICS_attack.json rides along with the
  // BENCH json in CI artifacts.
  {
    trace::MetricsRegistry metrics;
    (void)run_point(/*attack=*/2, /*seed=*/1, tl, &metrics);
    if (!metrics.save("METRICS_attack.json"))
      bench::note("warning: could not write METRICS_attack.json");
  }
  bench::note("suspension is the hard case: per-arrival detectors only fire");
  bench::note("when traffic resumes; the window-frequency detector flags the");
  bench::note("silence itself within ~one window of the onset.");
  return 0;
}
