// E10 — cost of the dynamic priority increase (§3.4; evaluated in [16]).
//
// "The dynamic increase of the message priority causes an overhead."
// On a real controller every promotion is a mailbox rewrite (or an
// abort+resubmit); while the frame is on the wire the rewrite must be
// skipped. This bench quantifies that overhead and compares the dynamic
// scheme against a static assignment of the *same* streams at equal load:
//   * promotions and blocked promotions per transmitted message,
//   * promotion timer firings per second (CPU-side cost driver),
//   * deadline miss ratio of EDF-with-promotion vs EDF-frozen-at-publish
//     (ablation: same deadline bands, but the priority is never raised
//     after enqueue) vs static DM priorities.

#include <cstdio>
#include <memory>
#include <vector>

#include "baselines/fixed_priority.hpp"
#include "bench/common.hpp"
#include "core/scenario.hpp"
#include "core/srtec.hpp"
#include "trace/csv.hpp"
#include "util/random.hpp"

using namespace rtec;
using namespace rtec::literals;

namespace {

constexpr Duration kRun = Duration::seconds(2);

struct Arrival {
  TimePoint at;
  std::size_t node;
  TimePoint deadline;
};

std::vector<Arrival> make_arrivals(double load, int nodes, std::uint64_t seed) {
  std::vector<Arrival> out;
  Rng rng{seed};
  // Exact service time of the 0xAA frames every scheme sends.
  CanFrame representative;
  representative.id = encode_can_id({100, 2, 100});
  representative.dlc = 8;
  representative.data.fill(0xAA);
  const double c_ns = static_cast<double>(
      (frame_duration(representative, BusConfig{}) +
       BusConfig{}.bit_time() * kIntermissionBits)
          .ns());
  const double mean_gap_ns = c_ns * nodes / load;
  for (int n = 0; n < nodes; ++n) {
    TimePoint t = TimePoint::origin();
    while (true) {
      t += Duration::nanoseconds(
          static_cast<std::int64_t>(rng.exponential(mean_gap_ns)));
      if (t >= TimePoint::origin() + kRun) break;
      out.push_back({t, static_cast<std::size_t>(n),
                     t + Duration::microseconds(rng.uniform_int(800, 20'000))});
    }
  }
  return out;
}

struct Result {
  double promotions_per_msg = 0;
  double blocked_per_msg = 0;
  double miss_ratio = 0;
  std::uint64_t offered = 0;
};

/// Runs the full SRT engine (deadline bands + dynamic promotion) over the
/// arrival trace.
Result run_edf(const std::vector<Arrival>& arrivals, int nodes,
               Duration slot_len) {
  Scenario::Config cfg;
  cfg.srt_map.slot_length = slot_len;
  Scenario scn{cfg};
  Node::ClockParams perfect;
  perfect.granularity = 1_ns;
  std::vector<Node*> node_ptrs;
  std::vector<std::unique_ptr<Srtec>> channels;
  for (int n = 0; n < nodes; ++n) {
    Node& node = scn.add_node(static_cast<NodeId>(n + 1), perfect);
    node_ptrs.push_back(&node);
    channels.push_back(std::make_unique<Srtec>(node.middleware()));
    (void)channels.back()->announce(
        subject_of("e10/" + std::to_string(n)), {}, nullptr);
  }
  for (const Arrival& a : arrivals) {
    Srtec* chan = channels[a.node].get();
    scn.sim().schedule_at(a.at, [chan, a] {
      Event e;
      e.content.assign(8, 0xAA);  // same frame length as the frozen baseline
      e.attributes.deadline = a.deadline;
      e.attributes.expiration = a.deadline + Duration::seconds(10);
      (void)chan->publish(std::move(e));
    });
  }
  scn.run_for(kRun + Duration::seconds(1));

  Result r;
  r.offered = arrivals.size();
  std::uint64_t promotions = 0;
  std::uint64_t blocked = 0;
  std::uint64_t by_deadline = 0;
  std::uint64_t sent = 0;
  for (Node* n : node_ptrs) {
    const auto& c = n->middleware().srt().counters();
    promotions += c.promotions;
    blocked += c.promotion_blocked;
    by_deadline += c.sent_by_deadline;
    sent += c.sent;
  }
  r.promotions_per_msg =
      sent ? static_cast<double>(promotions) / static_cast<double>(sent) : 0;
  r.blocked_per_msg =
      sent ? static_cast<double>(blocked) / static_cast<double>(sent) : 0;
  r.miss_ratio = 1.0 - static_cast<double>(by_deadline) /
                           static_cast<double>(arrivals.size());
  return r;
}

/// Frozen-band ablation: each message keeps the deadline band computed at
/// publish time forever (a static-priority sender fed the band).
Result run_frozen(const std::vector<Arrival>& arrivals, int nodes,
                  Duration slot_len) {
  Simulator sim;
  CanBus bus{sim, BusConfig{}};
  DeadlinePriorityMap map{{kSrtPriorityMin, kSrtPriorityMax, slot_len}};
  std::vector<std::unique_ptr<CanController>> ctls;
  std::vector<std::unique_ptr<StaticPrioritySender>> senders;
  for (int n = 0; n < nodes; ++n) {
    ctls.push_back(std::make_unique<CanController>(sim, static_cast<NodeId>(n + 1)));
    bus.attach(*ctls.back());
    senders.push_back(std::make_unique<StaticPrioritySender>(sim, *ctls.back()));
  }
  for (const Arrival& a : arrivals) {
    StaticPrioritySender* snd = senders[a.node].get();
    const DeadlinePriorityMap* m = &map;
    sim.schedule_at(a.at, [snd, a, m, &sim] {
      StreamSpec spec;
      spec.id = 100;
      spec.node = 1;
      spec.dlc = 8;
      snd->queue(spec, m->priority_for(sim.now(), a.deadline), a.deadline,
                 sim.now());
    });
  }
  sim.run_until(TimePoint::origin() + kRun + Duration::seconds(1));
  Result r;
  r.offered = arrivals.size();
  std::uint64_t by_deadline = 0;
  for (const auto& s : senders) by_deadline += s->outcome().sent_by_deadline;
  r.miss_ratio = 1.0 - static_cast<double>(by_deadline) /
                           static_cast<double>(arrivals.size());
  return r;
}

}  // namespace

int main() {
  bench::title("E10", "dynamic priority promotion: overhead and benefit");
  bench::note("4 nodes, Poisson arrivals, deadlines U[0.8,20] ms, Δt_p = 160 us,");
  bench::note("2 s per point. frozen = band fixed at publish (no promotion).");

  CsvWriter csv{"bench_promotion_overhead.csv"};
  csv.header({"load", "promotions_per_msg", "blocked_per_msg", "edf_miss",
              "frozen_miss"});

  std::printf("\n  %-7s %-18s %-15s %-12s %-14s %s\n", "load",
              "promotions/msg", "blocked/msg", "edf miss", "frozen miss",
              "offered");
  bench::rule();
  for (double load : {0.3, 0.6, 0.8, 0.95, 1.1}) {
    const auto arrivals = make_arrivals(load, 4, 99);
    const Result edf = run_edf(arrivals, 4, Duration::microseconds(160));
    const Result frozen = run_frozen(arrivals, 4, Duration::microseconds(160));
    std::printf("  %-7.2f %-18.2f %-15.3f %-12.4f %-14.4f %llu\n", load,
                edf.promotions_per_msg, edf.blocked_per_msg, edf.miss_ratio,
                frozen.miss_ratio,
                static_cast<unsigned long long>(edf.offered));
    csv.row(load, edf.promotions_per_msg, edf.blocked_per_msg, edf.miss_ratio,
            frozen.miss_ratio);
  }
  bench::rule();
  bench::note("promotion work grows with queueing (messages wait longer, cross");
  bench::note("more band boundaries); at light load it is nearly free. The");
  bench::note("frozen ablation shows what the rewrites buy: without them a");
  bench::note("waiting message keeps its stale (too-low) priority and loses");
  bench::note("arbitration to younger traffic — misses appear from 0.8 load on");
  bench::note("while the promoting scheme stays clean through 0.95. Past");
  bench::note("saturation (1.10) both drown (no expiration here by design;");
  bench::note("E5 shows the validity mechanism handling that regime).");
  return 0;
}
