// E3 — latency and period jitter: middleware delivery-hold vs network-level
// delivery (§2.2 properties 2-3, §3.2).
//
// A periodic HRT stream runs under random omission faults (masked by time
// redundancy, k=3). Three delivery disciplines are compared over the same
// fault process:
//   net      — event handed to the application at end-of-frame (where in
//              the slot the successful attempt landed): jittery.
//   mw       — the paper's scheme: held until the delivery deadline: the
//              application-visible jitter collapses to the clock tick.
//   ttcan    — TTCAN-style baseline: k+1 copies always transmitted in the
//              exclusive window, receiver takes the FIRST successful copy
//              at its end-of-frame.
//
// Series: fault probability sweep; per scheme: mean latency (from slot
// ready), latency jitter (peak-to-peak), period jitter (peak-to-peak).

#include <cstdio>
#include <functional>
#include <memory>

#include "baselines/ttcan.hpp"
#include "bench/common.hpp"
#include "core/hrtec.hpp"
#include "core/scenario.hpp"
#include "trace/csv.hpp"
#include "trace/metrics.hpp"

using namespace rtec;
using namespace rtec::literals;

namespace {

struct JitterStats {
  double mean_latency_us = 0;
  double latency_jitter_us = 0;  // peak-to-peak
  double period_jitter_us = 0;   // peak-to-peak of inter-delivery times
  double bits_per_round = 0;     // channel's bus usage
  std::size_t delivered = 0;
};

Node::ClockParams perfect() {
  Node::ClockParams p;
  p.granularity = 1_ns;
  return p;
}

/// Our scheme. Returns stats for both the network-level arrival instant
/// and the middleware delivery instant of the same run.
void run_ours(double p, int rounds, JitterStats& net, JitterStats& mw) {
  Scenario::Config cfg;
  cfg.calendar.round_length = 5_ms;
  Scenario scn{cfg};
  Node& pub_node = scn.add_node(1, perfect());
  Node& sub_node = scn.add_node(2, perfect());

  const Subject subject = subject_of("e3/stream");
  SlotSpec slot;
  slot.lst_offset = 1_ms;
  slot.dlc = 8;
  slot.fault.omission_degree = 3;
  slot.etag = *scn.binding().bind(subject);
  slot.publisher = pub_node.id();
  const std::size_t slot_index = *scn.calendar().reserve(slot);
  scn.set_fault_model(std::make_unique<RandomOmissionFaults>(p, 99));

  Hrtec pub{pub_node.middleware()};
  Hrtec sub{sub_node.middleware()};
  (void)pub.announce(subject, {}, nullptr);

  LatencyProbe net_latency;
  LatencyProbe mw_latency;
  PeriodProbe net_period;
  PeriodProbe mw_period;
  std::int64_t hrt_bits = 0;

  TimePoint cur_ready;
  scn.bus().add_observer([&](const CanBus::FrameEvent& ev) {
    if (id_priority(ev.frame.id) != kHrtPriority) return;
    hrt_bits += ev.wire_bits;
    if (ev.success) {
      net_latency.record(ev.end - cur_ready);
      net_period.record_delivery(ev.end);
    }
  });
  (void)sub.subscribe(subject, AttributeList{attr::QueueCapacity{8}},
                      [&] {
                        (void)sub.getEvent();
                        const TimePoint now = sub_node.clock().now();
                        mw_latency.record(now - cur_ready);
                        mw_period.record_delivery(now);
                      },
                      nullptr);

  for (int r = 0; r < rounds; ++r) {
    const auto inst = scn.calendar().instance_at_or_after(
        slot_index, TimePoint::origin() + cfg.calendar.round_length * r);
    if (r == 0) cur_ready = inst.ready;
    scn.sim().schedule_at(inst.ready - 10_us, [&, inst] {
      cur_ready = inst.ready;
      Event e;
      e.content = {1, 2, 3, 4, 5, 6, 7, 8};
      (void)pub.publish(std::move(e));
    });
  }
  scn.run_for(cfg.calendar.round_length * rounds + 2_ms);

  net.mean_latency_us = net_latency.samples().mean() / 1e3;
  net.latency_jitter_us = net_latency.jitter().us();
  net.period_jitter_us = net_period.period_jitter().us();
  net.bits_per_round = static_cast<double>(hrt_bits) / rounds;
  net.delivered = net_latency.samples().count();
  mw.mean_latency_us = mw_latency.samples().mean() / 1e3;
  mw.latency_jitter_us = mw_latency.jitter().us();
  mw.period_jitter_us = mw_period.period_jitter().us();
  mw.bits_per_round = net.bits_per_round;
  mw.delivered = mw_latency.samples().count();
}

JitterStats run_ttcan(double p, int rounds) {
  Simulator sim;
  CanBus bus{sim, BusConfig{}};
  CanController::Config ctl_cfg;
  ctl_cfg.auto_recovery_delay = bus.config().bit_time() * (128 * 11);
  CanController owner{sim, 1, ctl_cfg};
  CanController receiver{sim, 2, ctl_cfg};
  bus.attach(owner);
  bus.attach(receiver);
  RandomOmissionFaults faults{p, 99};
  bus.set_fault_model(&faults);

  TtcanSchedule schedule;
  schedule.basic_cycle = 5_ms;
  schedule.bus = bus.config();
  // Exclusive window sized like our k=3 slot; 4 copies always sent.
  schedule.windows.push_back(
      {TtcanWindow::Kind::kExclusive, 1_ms, hrt_slot_window(8, {3}, bus.config()),
       1, 4});

  TtcanDriver driver{sim, owner, schedule};
  driver.set_exclusive_source([](std::size_t, std::uint64_t) {
    CanFrame f;
    f.id = 0x100;
    f.dlc = 8;
    f.data = {1, 2, 3, 4, 5, 6, 7, 8};
    return f;
  });

  LatencyProbe latency;
  PeriodProbe period;
  std::int64_t bits = 0;
  std::uint64_t seen_cycle = ~0ull;
  bus.add_observer([&](const CanBus::FrameEvent& ev) {
    bits += ev.wire_bits;
    if (!ev.success) return;
    const auto cycle = static_cast<std::uint64_t>(
        ev.end.ns() / schedule.basic_cycle.ns());
    if (cycle == seen_cycle) return;  // only the first good copy delivers
    seen_cycle = cycle;
    const TimePoint window_start =
        TimePoint::origin() +
        schedule.basic_cycle * static_cast<std::int64_t>(cycle) + 1_ms;
    latency.record(ev.end - window_start);
    period.record_delivery(ev.end);
  });

  driver.start();
  sim.run_until(TimePoint::origin() + schedule.basic_cycle * rounds + 2_ms);

  JitterStats s;
  s.mean_latency_us = latency.samples().mean() / 1e3;
  s.latency_jitter_us = latency.jitter().us();
  s.period_jitter_us = period.period_jitter().us();
  s.bits_per_round = static_cast<double>(bits) / rounds;
  s.delivered = latency.samples().count();
  return s;
}

}  // namespace

int main() {
  bench::title("E3", "latency & period jitter: middleware hold vs network delivery");
  bench::note("periodic HRT stream, 5 ms period, slot k=3, 1500 rounds/point");

  CsvWriter csv{"bench_jitter.csv"};
  csv.header({"p", "scheme", "mean_latency_us", "latency_jitter_us",
              "period_jitter_us", "bits_per_round"});

  std::printf("\n  %-6s %-8s %-15s %-17s %-19s %-11s %s\n", "p", "scheme",
              "mean lat (us)", "lat jitter (us)", "period jitter (us)",
              "bits/round", "delivered");
  bench::rule();
  for (double p : {0.0, 0.05, 0.15, 0.30}) {
    JitterStats net;
    JitterStats mw;
    run_ours(p, 1500, net, mw);
    const JitterStats ttcan = run_ttcan(p, 1500);
    const auto row = [&](const char* name, const JitterStats& s) {
      std::printf("  %-6.2f %-8s %-15.1f %-17.1f %-19.1f %-11.0f %zu\n", p,
                  name, s.mean_latency_us, s.latency_jitter_us,
                  s.period_jitter_us, s.bits_per_round, s.delivered);
      csv.row(p, name, s.mean_latency_us, s.latency_jitter_us,
              s.period_jitter_us, s.bits_per_round);
    };
    row("net", net);
    row("mw", mw);
    row("ttcan", ttcan);
    bench::rule();
  }
  bench::note("mw rows: latency jitter collapses to ~0 at every fault rate —");
  bench::note("jitter is removed in the middleware at the price of mean latency");
  bench::note("pinned to the WCTT deadline. ttcan rows: always ~4x the bandwidth");
  bench::note("(all copies always sent), and its first-good-copy delivery still");
  bench::note("jitters under faults. net rows: the raw arrival spread the");
  bench::note("middleware hides. Nonzero mw *period* jitter at high p comes only");
  bench::note("from whole instances lost beyond the k=3 assumption (see the");
  bench::note("delivered column), which double the inter-delivery gap.");
  return 0;
}
