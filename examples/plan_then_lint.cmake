# Test driver: plan the built-in demo set, write the configuration image,
# then run the static verifier over it. The planner's output must always
# lint clean — a disagreement means either the planner emits something the
# rule set rejects or a rule regressed into flagging valid calendars.
set(image "${WORK_DIR}/plan_then_lint_demo.cal")
execute_process(COMMAND "${PLANNER}" --out "${image}" RESULT_VARIABLE plan_rc)
if(NOT plan_rc EQUAL 0)
  message(FATAL_ERROR "plan_calendar failed (rc=${plan_rc})")
endif()
execute_process(COMMAND "${LINTER}" "${image}" RESULT_VARIABLE lint_rc
                OUTPUT_VARIABLE lint_out ERROR_VARIABLE lint_out)
if(NOT lint_rc EQUAL 0)
  message(FATAL_ERROR "rtec_lint rejected the planner's image:\n${lint_out}")
endif()
