// Fault tolerance demonstration — time redundancy and its cost.
//
// Two HRT channels carry the same sensor value:
//   "sensor/fragile"  reserved with omission degree 0 (no redundancy)
//   "sensor/hardened" reserved with omission degree 2 (slot sized for
//                     3 transmission attempts)
// An EMI burst corrupts every frame between 100 ms and 101 ms, and random
// 2% omission faults run throughout. The fragile channel loses instances;
// the hardened one keeps its guarantee — and, because redundant copies are
// suppressed on success, its extra reservation costs almost no bandwidth
// when the bus is healthy (the paper's key claim in §3.2).
//
// Run: ./build/examples/fault_tolerance

#include <cstdio>
#include <memory>

#include "core/hrtec.hpp"
#include "core/scenario.hpp"
#include "lint_check.hpp"
#include "util/task_pool.hpp"

using namespace rtec;
using namespace rtec::literals;

int main() {
  TaskPool tasks;
  Scenario::Config cfg;
  cfg.calendar.round_length = 10_ms;
  Scenario scn{cfg};

  Node& sensor = scn.add_node(1);
  Node& sink = scn.add_node(2);

  const Subject fragile = subject_of("sensor/fragile");
  const Subject hardened = subject_of("sensor/hardened");
  {
    SlotSpec s;
    s.lst_offset = 1_ms;
    s.dlc = 2;
    s.fault.omission_degree = 0;
    s.etag = *scn.binding().bind(fragile);
    s.publisher = sensor.id();
    if (!scn.calendar().reserve(s)) return 1;
  }
  {
    SlotSpec s;
    s.lst_offset = 3_ms;
    s.dlc = 2;
    s.fault.omission_degree = 2;
    s.etag = *scn.binding().bind(hardened);
    s.publisher = sensor.id();
    if (!scn.calendar().reserve(s)) return 1;
  }
  if (!examples::lint_calendar_or_report(scn.calendar(), "fault_tolerance"))
    return 1;

  // Faults: 2% random omissions + a 1 ms burst at 100 ms. The composite
  // owns its children, so the scenario keeps everything alive.
  auto composite = std::make_unique<CompositeFaults>();
  composite->add(std::make_unique<RandomOmissionFaults>(0.02, 42));
  composite->add(std::make_unique<BurstFaults>(TimePoint::origin() + 100_ms,
                                               TimePoint::origin() + 101_ms));
  scn.set_fault_model(std::move(composite));

  Hrtec fragile_pub{sensor.middleware()};
  Hrtec hardened_pub{sensor.middleware()};
  int fragile_failures = 0;
  int hardened_failures = 0;
  (void)fragile_pub.announce(fragile, AttributeList{attr::Periodic{10_ms}},
                             [&](const ExceptionInfo& e) {
                               if (e.error == ChannelError::kTransmissionFailed)
                                 ++fragile_failures;
                             });
  (void)hardened_pub.announce(hardened, AttributeList{attr::Periodic{10_ms}},
                              [&](const ExceptionInfo& e) {
                                if (e.error == ChannelError::kTransmissionFailed)
                                  ++hardened_failures;
                              });

  Hrtec fragile_sub{sink.middleware()};
  Hrtec hardened_sub{sink.middleware()};
  int fragile_rx = 0;
  int fragile_missing = 0;
  int hardened_rx = 0;
  int hardened_missing = 0;
  (void)fragile_sub.subscribe(fragile, AttributeList{attr::QueueCapacity{128}},
                              [&] {
                                ++fragile_rx;
                                (void)fragile_sub.getEvent();
                              },
                              [&](const ExceptionInfo&) { ++fragile_missing; });
  (void)hardened_sub.subscribe(hardened, AttributeList{attr::QueueCapacity{128}},
                               [&] {
                                 ++hardened_rx;
                                 (void)hardened_sub.getEvent();
                               },
                               [&](const ExceptionInfo&) { ++hardened_missing; });

  auto* loop = tasks.make();
  *loop = [&, loop] {
    Event a;
    a.content = {1, 2};
    (void)fragile_pub.publish(std::move(a));
    Event b;
    b.content = {3, 4};
    (void)hardened_pub.publish(std::move(b));
    scn.sim().schedule_after(10_ms, [loop] { (*loop)(); });
  };
  scn.sim().schedule_after(Duration::zero(), [loop] { (*loop)(); });

  const int rounds = 100;
  scn.run_for(10_ms * rounds + 1_ms);

  const auto& pc = sensor.middleware().hrt().counters();
  std::puts("channel    delivered  missing  tx-failures  redundant-copies");
  std::printf("fragile    %9d  %7d  %11d            --\n", fragile_rx,
              fragile_missing, fragile_failures);
  std::printf("hardened   %9d  %7d  %11d  %12llu\n", hardened_rx,
              hardened_missing, hardened_failures,
              static_cast<unsigned long long>(pc.retries));
  std::printf(
      "\nOver %d rounds: the hardened channel masked the same faults the\n"
      "fragile channel dropped, and used only %llu redundant transmissions\n"
      "(suppressed whenever the first copy succeeded) — the reservation's\n"
      "unused remainder was reclaimed by the bus automatically.\n",
      rounds, static_cast<unsigned long long>(pc.retries));
  return 0;
}
