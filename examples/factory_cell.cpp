// Factory automation cell — the industrial-automation workload class the
// paper positions its protocol for (vs. FTT-CAN/TTP which need a master).
//
//   node 1  cell controller    — HRT periodic setpoints to the conveyor
//   node 2  conveyor drive     — executes setpoints; SRT telemetry back
//   node 3  light barrier      — sporadic HRT emergency stop (reserved but
//                                almost always unused)
//   node 4  maintenance panel  — subscribes to telemetry with an
//                                expiration: stale readings are worthless;
//                                also pulls the drive's electronic data
//                                sheet over an NRT bulk channel
//
// The run deliberately overloads the SRT band for a while so telemetry
// deadline misses and expirations become visible — the paper's "awareness"
// exceptions in action.
//
// Run: ./build/examples/factory_cell

#include <cstdio>
#include <memory>

#include "core/hrtec.hpp"
#include "core/nrtec.hpp"
#include "core/scenario.hpp"
#include "lint_check.hpp"
#include "time/periodic.hpp"
#include "core/srtec.hpp"
#include "util/task_pool.hpp"

using namespace rtec;
using namespace rtec::literals;

int main() {
  TaskPool tasks;
  Scenario::Config cfg;
  cfg.calendar.round_length = 20_ms;
  Scenario scn{cfg};

  Node& controller = scn.add_node(1, {Duration::microseconds(4), 15'000, 1_us});
  Node& drive = scn.add_node(2, {Duration::microseconds(-6), -25'000, 1_us});
  Node& barrier = scn.add_node(3, {Duration::microseconds(9), 35'000, 1_us});
  Node& panel = scn.add_node(4, {Duration::microseconds(-3), -5'000, 1_us});
  (void)scn.enable_clock_sync(controller.id(), 600_us);

  // Reservations.
  const Subject setpoint_subject = subject_of("conveyor/setpoint");
  const Subject estop_subject = subject_of("cell/emergency_stop");
  {
    SlotSpec s;
    s.lst_offset = 2_ms;
    s.dlc = 4;
    s.fault.omission_degree = 1;
    s.etag = *scn.binding().bind(setpoint_subject);
    s.publisher = controller.id();
    if (!scn.calendar().reserve(s)) return 1;
  }
  {
    SlotSpec s;
    s.lst_offset = 4_ms;
    s.dlc = 1;
    s.fault.omission_degree = 2;
    s.etag = *scn.binding().bind(estop_subject);
    s.publisher = barrier.id();
    s.periodic = false;
    if (!scn.calendar().reserve(s)) return 1;
  }
  if (!examples::lint_calendar_or_report(scn.calendar(), "factory_cell"))
    return 1;

  scn.run_for(40_ms);  // sync warm-up

  // --- HRT: setpoints every round --------------------------------------
  Hrtec setpoint_pub{controller.middleware()};
  (void)setpoint_pub.announce(setpoint_subject,
                              AttributeList{attr::Periodic{20_ms}}, nullptr);
  Hrtec setpoint_sub{drive.middleware()};
  int setpoints = 0;
  (void)setpoint_sub.subscribe(setpoint_subject, {},
                               [&] {
                                 ++setpoints;
                                 (void)setpoint_sub.getEvent();
                               },
                               [](const ExceptionInfo& e) {
                                 std::printf("  [drive] setpoint channel: %s\n",
                                             to_string(e.error).data());
                               });
  auto* sp_loop = tasks.make();
  *sp_loop = [&, sp_loop] {
    Event e;
    e.content = {10, 0, 0, 0};
    (void)setpoint_pub.publish(std::move(e));
    controller.clock().schedule_at_local(controller.clock().now() + 20_ms,
                                         [sp_loop] { (*sp_loop)(); });
  };
  (*sp_loop)();

  // --- sporadic HRT: emergency stop ------------------------------------
  Hrtec estop_pub{barrier.middleware()};
  (void)estop_pub.announce(estop_subject, AttributeList{attr::Sporadic{20_ms}},
                           nullptr);
  Hrtec estop_sub{drive.middleware()};
  (void)estop_sub.subscribe(
      estop_subject, {},
      [&] {
        (void)estop_sub.getEvent();
        std::printf("  [drive] %8.3f ms: EMERGENCY STOP (guaranteed latency)\n",
                    drive.clock().now().ms());
      },
      nullptr);
  scn.sim().schedule_at(TimePoint::origin() + 173_ms, [&] {
    std::printf("  [barrier] %8.3f ms: light barrier interrupted!\n",
                barrier.clock().now().ms());
    Event e;
    e.content = {1};
    (void)estop_pub.publish(std::move(e));
  });

  // --- SRT telemetry with expiration ------------------------------------
  const Subject telemetry_subject = subject_of("drive/telemetry");
  Srtec telemetry_pub{drive.middleware()};
  int misses = 0;
  int expiries = 0;
  (void)telemetry_pub.announce(
      telemetry_subject,
      AttributeList{attr::Deadline{4_ms}, attr::Expiration{8_ms}},
      [&](const ExceptionInfo& e) {
        if (e.error == ChannelError::kDeadlineMissed) ++misses;
        if (e.error == ChannelError::kExpired) ++expiries;
      });
  Srtec telemetry_sub{panel.middleware()};
  int telemetry_rx = 0;
  (void)telemetry_sub.subscribe(telemetry_subject,
                                AttributeList{attr::QueueCapacity{64}},
                                [&] {
                                  ++telemetry_rx;
                                  (void)telemetry_sub.getEvent();
                                },
                                nullptr);
  auto* tele_loop = tasks.make();
  *tele_loop = [&, tele_loop] {
    Event e;
    e.content = {42, 17};
    (void)telemetry_pub.publish(std::move(e));
    scn.sim().schedule_after(2_ms, [tele_loop] { (*tele_loop)(); });
  };
  (*tele_loop)();

  // Overload pulse: between 200 ms and 300 ms the panel floods the SRT
  // band with urgent-deadline chatter, squeezing the telemetry stream.
  const Subject chatter_subject = subject_of("panel/chatter");
  Srtec chatter_pub{panel.middleware()};
  (void)chatter_pub.announce(chatter_subject,
                             AttributeList{attr::Deadline{500_us}}, nullptr);
  auto* chatter_loop = tasks.make();
  *chatter_loop = [&, chatter_loop] {
    const TimePoint now = scn.sim().now();
    if (now >= TimePoint::origin() + 200_ms &&
        now < TimePoint::origin() + 300_ms) {
      Event e;
      e.content = {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff};
      (void)chatter_pub.publish(std::move(e));
    }
    scn.sim().schedule_after(90_us, [chatter_loop] { (*chatter_loop)(); });
  };
  (*chatter_loop)();

  // --- NRT: electronic data sheet ---------------------------------------
  const Subject eds_subject = subject_of("drive/eds");
  const AttributeList frag{attr::Fragmentation{true}};
  Nrtec eds_pub{drive.middleware()};
  (void)eds_pub.announce(eds_subject, frag, nullptr);
  Nrtec eds_sub{panel.middleware()};
  (void)eds_sub.subscribe(eds_subject, frag,
                          [&] {
                            if (const auto e = eds_sub.getEvent())
                              std::printf(
                                  "  [panel] %8.3f ms: electronic data sheet "
                                  "received (%zu bytes)\n",
                                  panel.clock().now().ms(), e->content.size());
                          },
                          nullptr);
  scn.sim().schedule_at(TimePoint::origin() + 100_ms, [&] {
    Event eds;
    eds.content.assign(8192, 0xED);
    (void)eds_pub.publish(std::move(eds));
  });

  scn.run_for(400_ms);

  std::puts("\n--- summary -------------------------------------------------");
  std::printf("setpoints delivered: %d (missing: %llu)\n", setpoints,
              static_cast<unsigned long long>(
                  drive.middleware().hrt().counters().missing));
  std::printf("telemetry received: %d, deadline misses: %d, expired: %d\n",
              telemetry_rx, misses, expiries);
  std::puts("note: misses/expirations only during the 200-300 ms overload —");
  std::puts("the SRT exceptions give the application awareness, while HRT");
  std::puts("traffic (setpoints, emergency stop) was never disturbed.");
  return 0;
}
