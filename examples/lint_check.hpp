#pragma once

#include <cstdio>

#include "analysis/lint.hpp"

/// Shared post-configuration check for the examples: after the offline
/// phase has reserved its slots, run the static verifier over the calendar
/// the scenario will actually execute. This is the deployment workflow the
/// paper implies — the timeliness argument is established before the
/// system runs — and it keeps every example calendar covered by the lint
/// rule set as part of the example smoke tests.

namespace rtec::examples {

/// Lints `calendar` and prints the outcome; returns false when the report
/// contains errors (warnings are printed but do not fail the example).
inline bool lint_calendar_or_report(const Calendar& calendar,
                                    const char* what) {
  const analysis::LintReport report =
      analysis::lint_calendar(image_of(calendar));
  if (report.findings.empty()) {
    std::printf("rtec-lint: %s: ACCEPT, %zu slots, no findings\n", what,
                calendar.size());
    return true;
  }
  std::printf("rtec-lint: %s:\n%s", what,
              analysis::report_to_text(report).c_str());
  return !report.has_errors();
}

}  // namespace rtec::examples
