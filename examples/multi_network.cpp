// Multi-network deployment — the paper's §2.2.1 scenario: "publishers and
// subscribers are connected by a channel which spans multiple networks",
// with subscriber-side LocalOnly filtering of remote events.
//
//   network 0 (machine cell bus): press sensor, cell display
//   network 1 (plant backbone):   plant logger, SCADA panel
//   gateway node: one stack per bus, bridging the "press/status" SRT
//   channel and the "press/logfile" NRT bulk channel in both directions.
//
// Run: ./build/examples/multi_network

#include <cstdio>
#include <memory>

#include "core/gateway.hpp"
#include "core/scenario.hpp"
#include "lint_check.hpp"
#include "time/periodic.hpp"

using namespace rtec;
using namespace rtec::literals;

int main() {
  Scenario::Config cfg;
  cfg.networks = 2;
  Scenario scn{cfg};

  Node& press = scn.add_node(1, {Duration::microseconds(5), 20'000, 1_us}, 0);
  Node& display = scn.add_node(2, {Duration::microseconds(-4), -15'000, 1_us}, 0);
  Node& logger = scn.add_node(11, {Duration::microseconds(7), 30'000, 1_us}, 1);
  Node& scada = scn.add_node(12, {Duration::microseconds(-2), -8'000, 1_us}, 1);
  Node& gw_cell = scn.add_node(20, {}, 0);
  Node& gw_plant = scn.add_node(21, {}, 1);

  // Store-and-forward delay of the bridging stack; with a sharded
  // scenario this would double as the parallel engine's lookahead.
  Gateway gateway{gw_cell, gw_plant, scn.link_gateway(gw_cell, gw_plant, 50_us)};
  const Subject status = subject_of("press/status");
  const Subject logfile = subject_of("press/logfile");
  if (!gateway.bridge_srt(status, /*fwd deadline*/ 10_ms, /*expiry*/ 30_ms) ||
      !gateway.bridge_nrt(logfile, /*fragmented*/ true, 253)) {
    std::puts("bridge setup failed");
    return 1;
  }

  // Each network has its own reservation calendar; verify both.
  for (int net = 0; net < scn.network_count(); ++net) {
    char what[24];
    std::snprintf(what, sizeof what, "network %d", net);
    if (!examples::lint_calendar_or_report(scn.calendar(net), what)) return 1;
  }

  // Press publishes its status on the cell bus.
  Srtec status_pub{press.middleware()};
  (void)status_pub.announce(status, AttributeList{attr::Deadline{5_ms}},
                            nullptr);
  int cycle = 0;
  PeriodicLocalTask status_loop{press.clock(), 25_ms, [&] {
                                  Event e;
                                  e.content = {static_cast<std::uint8_t>(cycle++ & 0xff),
                                               0x01 /*running*/};
                                  (void)status_pub.publish(std::move(e));
                                }};
  status_loop.start();

  // Cell display wants only LOCAL events (it sits next to the machine and
  // must not act on stale forwarded copies if topologies ever loop).
  Srtec display_sub{display.middleware()};
  int local_updates = 0;
  (void)display_sub.subscribe(status, AttributeList{attr::LocalOnly{}},
                              [&] {
                                ++local_updates;
                                (void)display_sub.getEvent();
                              },
                              nullptr);

  // SCADA on the backbone receives the forwarded copies.
  Srtec scada_sub{scada.middleware()};
  int remote_updates = 0;
  (void)scada_sub.subscribe(status, {},
                            [&] {
                              if (const auto e = scada_sub.getEvent()) {
                                ++remote_updates;
                                if (remote_updates == 1)
                                  std::printf(
                                      "  [scada] first press status via gateway "
                                      "(origin tag 0x%02x) at %.3f ms\n",
                                      e->attributes.origin_network,
                                      scada.clock().now().ms());
                              }
                            },
                            nullptr);

  // Plant logger requests the press log (bulk) — it travels backbone->cell?
  // No: the press publishes its logfile on the cell bus; the gateway
  // forwards it up to the backbone where the logger subscribes.
  const AttributeList frag{attr::Fragmentation{true}};
  Nrtec log_pub{press.middleware()};
  (void)log_pub.announce(logfile, frag, nullptr);
  Nrtec log_sub{logger.middleware()};
  (void)log_sub.subscribe(logfile, frag,
                          [&] {
                            if (const auto e = log_sub.getEvent())
                              std::printf(
                                  "  [logger] press log received over the "
                                  "gateway: %zu bytes at %.3f ms\n",
                                  e->content.size(), logger.clock().now().ms());
                          },
                          nullptr);
  scn.sim().schedule_at(TimePoint::origin() + 60_ms, [&] {
    Event log;
    log.content.assign(4096, 0x10);
    (void)log_pub.publish(std::move(log));
  });

  scn.run_for(500_ms);

  std::puts("\n--- summary -------------------------------------------------");
  std::printf("press status: %d local deliveries (cell), %d forwarded (plant)\n",
              local_updates, remote_updates);
  std::printf("gateway: %llu events A->B, %llu B->A, %llu failures\n",
              static_cast<unsigned long long>(gateway.counters().forwarded_a_to_b),
              static_cast<unsigned long long>(gateway.counters().forwarded_b_to_a),
              static_cast<unsigned long long>(gateway.counters().forward_failures));
  std::puts("the cell display (LocalOnly) never saw a forwarded copy; the");
  std::puts("backbone received every status event plus the bulk log file.");
  return 0;
}
