// Automotive scenario — the paper's motivating domain ("CAN ... is a
// popular field bus ... particularly in the automotive area").
//
// One vehicle body network:
//   nodes 1-4  wheel-speed sensors     -> HRT periodic, one slot each
//   node 5     brake-by-wire pedal     -> HRT sporadic (slot reserved but
//                                         often unused: reclaimed)
//   node 6     body controller         -> subscribes to all of the above;
//                                         publishes SRT dashboard updates
//   node 7     dashboard               -> SRT subscriber
//   node 8     diagnostics unit        -> NRT bulk download of a 16 KiB
//                                         calibration image, running
//                                         underneath everything else
//
// Run: ./build/examples/automotive

#include <array>
#include <cstdio>
#include <memory>

#include "core/hrtec.hpp"
#include "core/nrtec.hpp"
#include "core/scenario.hpp"
#include "lint_check.hpp"
#include "time/periodic.hpp"
#include "core/srtec.hpp"
#include "trace/metrics.hpp"
#include "util/task_pool.hpp"

using namespace rtec;
using namespace rtec::literals;

namespace {

void every(TaskPool& tasks, Scenario& scn, Duration period,
           std::function<void()> body) {
  auto* loop = tasks.make();
  *loop = [&scn, period, body = std::move(body), loop] {
    body();
    scn.sim().schedule_after(period, [loop] { (*loop)(); });
  };
  scn.sim().schedule_after(Duration::zero(), [loop] { (*loop)(); });
}

}  // namespace

int main() {
  TaskPool tasks;
  Scenario::Config cfg;
  cfg.calendar.round_length = 5_ms;  // wheel speed every 5 ms
  Scenario scn{cfg};

  std::array<Node*, 4> wheels{};
  for (NodeId i = 1; i <= 4; ++i)
    wheels[i - 1] = &scn.add_node(i, {Duration::microseconds(i * 3), 20'000 * i, 1_us});
  Node& pedal = scn.add_node(5, {Duration::microseconds(-5), -40'000, 1_us});
  Node& body = scn.add_node(6, {Duration::microseconds(2), 10'000, 1_us});
  Node& dash = scn.add_node(7, {Duration::microseconds(-2), -10'000, 1_us});
  Node& diag = scn.add_node(8, {Duration::microseconds(1), 5'000, 1_us});

  (void)scn.enable_clock_sync(body.id(), 400_us);

  // --- reservations (offline configuration) ---------------------------
  const std::array<Subject, 4> wheel_subjects{
      subject_of("wheel/speed/fl"), subject_of("wheel/speed/fr"),
      subject_of("wheel/speed/rl"), subject_of("wheel/speed/rr")};
  for (std::size_t i = 0; i < 4; ++i) {
    SlotSpec s;
    s.lst_offset = 1_ms + Duration::microseconds(600) * static_cast<int>(i);
    s.dlc = 2;
    s.fault.omission_degree = 1;
    s.etag = *scn.binding().bind(wheel_subjects[i]);
    s.publisher = static_cast<NodeId>(i + 1);
    if (!scn.calendar().reserve(s)) {
      std::printf("wheel slot %zu rejected by admission test\n", i);
      return 1;
    }
  }
  const Subject brake_subject = subject_of("brake/command");
  {
    SlotSpec s;
    s.lst_offset = 4_ms;
    s.dlc = 1;
    s.fault.omission_degree = 2;  // brake: highest redundancy
    s.etag = *scn.binding().bind(brake_subject);
    s.publisher = pedal.id();
    s.periodic = false;  // sporadic: slot reclaimed when pedal idle
    if (!scn.calendar().reserve(s)) {
      std::puts("brake slot rejected");
      return 1;
    }
  }
  std::printf("calendar: %zu slots, %.1f%% of each round reserved\n",
              scn.calendar().size(), scn.calendar().reserved_fraction() * 100);
  if (!examples::lint_calendar_or_report(scn.calendar(), "automotive"))
    return 1;

  scn.run_for(10_ms);  // sync warm-up

  // --- wheel-speed publishers -----------------------------------------
  std::array<std::unique_ptr<Hrtec>, 4> wheel_pubs;
  for (std::size_t i = 0; i < 4; ++i) {
    wheel_pubs[i] = std::make_unique<Hrtec>(wheels[i]->middleware());
    (void)wheel_pubs[i]->announce(wheel_subjects[i],
                                  AttributeList{attr::Periodic{5_ms}}, nullptr);
    Node* node = wheels[i];
    Hrtec* chan = wheel_pubs[i].get();
    auto* loop = tasks.make();
    const auto speed0 = static_cast<int>(900 + 7 * i);
    *loop = [node, chan, loop, rpm = speed0]() mutable {
      Event e;
      e.content = {static_cast<std::uint8_t>(rpm & 0xff),
                   static_cast<std::uint8_t>(rpm >> 8)};
      (void)chan->publish(std::move(e));
      rpm += (rpm % 3) - 1;  // wander
      node->clock().schedule_at_local(node->clock().now() + 5_ms,
                                      [loop] { (*loop)(); });
    };
    (*loop)();
  }

  // --- body controller: HRT subscriber + SRT publisher ----------------
  std::array<std::unique_ptr<Hrtec>, 4> wheel_subs;
  std::array<int, 4> last_rpm{};
  std::array<int, 4> wheel_rx{};
  for (std::size_t i = 0; i < 4; ++i) {
    wheel_subs[i] = std::make_unique<Hrtec>(body.middleware());
    Hrtec* chan = wheel_subs[i].get();
    int* store = &last_rpm[i];
    int* count = &wheel_rx[i];
    (void)chan->subscribe(wheel_subjects[i], {},
                          [chan, store, count] {
                            if (const auto e = chan->getEvent()) {
                              *store = e->content[0] | (e->content[1] << 8);
                              ++*count;
                            }
                          },
                          [i](const ExceptionInfo& info) {
                            std::printf("  [body] wheel %zu: %s\n", i,
                                        to_string(info.error).data());
                          });
  }

  Hrtec brake_sub{body.middleware()};
  (void)brake_sub.subscribe(
      brake_subject, {},
      [&] {
        if (const auto e = brake_sub.getEvent())
          std::printf("  [body] %8.3f ms: BRAKE level %d (delivered on time)\n",
                      body.clock().now().ms(), e->content[0]);
      },
      nullptr);

  const Subject dash_subject = subject_of("dash/summary");
  Srtec dash_pub{body.middleware()};
  (void)dash_pub.announce(dash_subject,
                          AttributeList{attr::Deadline{20_ms},
                                        attr::Expiration{50_ms}},
                          [](const ExceptionInfo& e) {
                            std::printf("  [body] dash update: %s\n",
                                        to_string(e.error).data());
                          });
  every(tasks, scn, 10_ms, [&] {
    Event e;
    const int avg = (last_rpm[0] + last_rpm[1] + last_rpm[2] + last_rpm[3]) / 4;
    e.content = {static_cast<std::uint8_t>(avg & 0xff),
                 static_cast<std::uint8_t>(avg >> 8)};
    (void)dash_pub.publish(std::move(e));
  });

  Srtec dash_sub{dash.middleware()};
  int dash_updates = 0;
  (void)dash_sub.subscribe(dash_subject, {},
                           [&] {
                             ++dash_updates;
                             (void)dash_sub.getEvent();
                           },
                           nullptr);

  // --- pedal: sporadic brake events ------------------------------------
  Hrtec brake_pub{pedal.middleware()};
  (void)brake_pub.announce(brake_subject, AttributeList{attr::Sporadic{5_ms}},
                           nullptr);
  // Driver brakes twice during the run.
  for (const std::int64_t when_ms : {37, 81}) {
    scn.sim().schedule_at(TimePoint::origin() + Duration::milliseconds(when_ms),
                          [&brake_pub, when_ms] {
                            Event e;
                            e.content = {static_cast<std::uint8_t>(when_ms & 0x7f)};
                            (void)brake_pub.publish(std::move(e));
                            std::printf("  [pedal] brake pressed at %lld ms\n",
                                        static_cast<long long>(when_ms));
                          });
  }

  // --- diagnostics: NRT bulk download underneath ----------------------
  const Subject calib_subject = subject_of("diag/calibration");
  const AttributeList frag{attr::Fragmentation{true},
                           attr::FixedPriority{254}};
  Nrtec calib_pub{diag.middleware()};
  (void)calib_pub.announce(calib_subject, frag, nullptr);
  Nrtec calib_sub{body.middleware()};
  (void)calib_sub.subscribe(calib_subject, frag,
                            [&] {
                              if (const auto e = calib_sub.getEvent())
                                std::printf(
                                    "  [body] %8.3f ms: calibration image "
                                    "received (%zu bytes)\n",
                                    body.clock().now().ms(), e->content.size());
                            },
                            nullptr);
  {
    Event image;
    image.content.assign(16 * 1024, 0xC5);
    (void)calib_pub.publish(std::move(image));
  }

  // --- run -------------------------------------------------------------
  ClassUtilization util{scn.bus()};
  scn.run_for(Duration::milliseconds(400));

  std::puts("\n--- summary -------------------------------------------------");
  for (std::size_t i = 0; i < 4; ++i)
    std::printf("wheel %zu: rpm %d, %d readings delivered\n", i, last_rpm[i],
                wheel_rx[i]);
  std::printf("HRT totals at the body controller: %llu delivered, %llu missing\n",
              static_cast<unsigned long long>(
                  body.middleware().hrt().counters().delivered),
              static_cast<unsigned long long>(
                  body.middleware().hrt().counters().missing));
  std::printf("dashboard updates: %d (deadline misses: %llu)\n", dash_updates,
              static_cast<unsigned long long>(
                  body.middleware().srt().counters().deadline_missed));
  std::printf("bus utilization: HRT %.1f%%  SRT %.1f%%  NRT %.1f%%\n",
              util.fraction(TrafficClass::kHrt) * 100,
              util.fraction(TrafficClass::kSrt) * 100,
              util.fraction(TrafficClass::kNrt) * 100);
  return 0;
}
