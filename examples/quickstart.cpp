// Quickstart: the smallest complete rtec system.
//
// Three nodes on one simulated CAN bus:
//   node 1 — a temperature sensor publishing on a hard real-time channel
//   node 2 — a controller subscribing to it
//   node 3 — the clock-sync master
//
// Shows the paper's API (Fig. 1): announce / publish / subscribe /
// notification handler / getEvent, plus the offline slot reservation the
// HRT class requires.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/hrtec.hpp"
#include "core/scenario.hpp"
#include "lint_check.hpp"
#include "time/periodic.hpp"
#include "util/logging.hpp"

using namespace rtec;
using namespace rtec::literals;

int main() {
  Logger::instance().init_from_env();  // RTEC_LOG=debug for a trace
  // --- configuration phase (offline) ---------------------------------
  Scenario::Config cfg;
  cfg.calendar.round_length = 10_ms;  // one TDMA round = 10 ms
  cfg.calendar.gap = 40_us;           // ΔG_min from the paper
  Scenario scn{cfg};

  Node& sensor = scn.add_node(1, {Duration::microseconds(12), 50'000, 1_us});
  Node& controller = scn.add_node(2, {Duration::microseconds(-8), -30'000, 1_us});
  Node& master = scn.add_node(3);

  // Global time: master-based sync in its own reserved slot.
  if (!scn.enable_clock_sync(master.id(), 500_us)) {
    std::puts("failed to reserve the sync slot");
    return 1;
  }

  // Reserve one slot per round for the temperature channel: publisher is
  // node 1, message size 2 bytes, tolerate 1 omission fault.
  const Subject subject = subject_of("room/temperature");
  SlotSpec slot;
  slot.lst_offset = 2_ms;
  slot.dlc = 2;
  slot.fault.omission_degree = 1;
  slot.etag = *scn.binding().bind(subject);
  slot.publisher = sensor.id();
  if (!scn.calendar().reserve(slot)) {
    std::puts("admission test rejected the reservation");
    return 1;
  }
  std::printf("calendar: %zu slots, %.1f%% of the round reserved\n",
              scn.calendar().size(), scn.calendar().reserved_fraction() * 100);
  if (!examples::lint_calendar_or_report(scn.calendar(), "quickstart"))
    return 1;

  // Let the clocks synchronize for two rounds before real-time operation.
  scn.run_for(20_ms);

  // --- publisher ------------------------------------------------------
  Hrtec temperature{sensor.middleware()};
  if (!temperature.announce(subject, AttributeList{attr::Periodic{10_ms}},
                            [](const ExceptionInfo& e) {
                              std::printf("  [sensor] exception: %s\n",
                                          to_string(e.error).data());
                            })) {
    std::puts("announce failed");
    return 1;
  }

  // --- subscriber -----------------------------------------------------
  Hrtec display{controller.middleware()};
  (void)display.subscribe(
      subject, {},
      [&] {
        // Notification handler: retrieve the event from the middleware's
        // queue, exactly as in the paper's programming model.
        if (const auto event = display.getEvent()) {
          const int centi = event->content[0] | (event->content[1] << 8);
          std::printf("  [controller] %7.3f ms: temperature %d.%02d C\n",
                      controller.clock().now().ms(), centi / 100, centi % 100);
        }
      },
      [](const ExceptionInfo& e) {
        std::printf("  [controller] exception: %s\n", to_string(e.error).data());
      });

  // --- run: publish one reading per round -----------------------------
  int reading = 2150;  // 21.50 C
  PeriodicLocalTask sampler{sensor.clock(), 10_ms, [&] {
                              Event e;
                              e.content = {static_cast<std::uint8_t>(reading & 0xff),
                                           static_cast<std::uint8_t>(reading >> 8)};
                              (void)temperature.publish(std::move(e));
                              reading += 7;  // the room warms up slowly
                            }};
  sampler.start();

  scn.run_for(80_ms);

  std::printf("done: %llu events published, %llu delivered, precision %.1f us\n",
              static_cast<unsigned long long>(
                  sensor.middleware().hrt().counters().published),
              static_cast<unsigned long long>(
                  controller.middleware().hrt().counters().delivered),
              scn.clock_precision().us());
  return 0;
}
