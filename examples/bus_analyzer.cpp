// Bus analyzer — decode a candump log through the rtec identifier layout.
//
// Works on logs recorded by this simulator (trace/candump.hpp) or captured
// from a real interface running the protocol (`candump -l can0`). Prints
// per-class and per-channel statistics: frame counts, payload bytes, bus
// time at the configured bit rate, inter-arrival statistics per etag, and
// the observed priority bands.
//
// Usage:
//   bus_analyzer <logfile> [bitrate]
//   bus_analyzer --demo            # record a demo scenario, then analyze it
//
// Example:
//   ./build/examples/bus_analyzer --demo

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>

#include "core/hrtec.hpp"
#include "core/scenario.hpp"
#include "core/srtec.hpp"
#include "lint_check.hpp"
#include "sched/id_codec.hpp"
#include "time/periodic.hpp"
#include "trace/candump.hpp"
#include "util/stats.hpp"

using namespace rtec;
using namespace rtec::literals;

namespace {

std::string record_demo() {
  Scenario::Config cfg;
  cfg.calendar.round_length = 10_ms;
  Scenario scn{cfg};
  Node& a = scn.add_node(1);
  Node& b = scn.add_node(2);
  Node& master = scn.add_node(3);
  (void)scn.enable_clock_sync(master.id(), 500_us);
  const Subject subject = subject_of("demo/sensor");
  SlotSpec slot;
  slot.lst_offset = 2_ms;
  slot.dlc = 4;
  slot.fault.omission_degree = 1;
  slot.etag = *scn.binding().bind(subject);
  slot.publisher = a.id();
  (void)scn.calendar().reserve(slot);
  (void)examples::lint_calendar_or_report(scn.calendar(), "bus_analyzer demo");
  CandumpRecorder recorder{scn.bus(), "rtec0"};

  scn.run_for(20_ms);
  Hrtec pub{a.middleware()};
  (void)pub.announce(subject, AttributeList{attr::Periodic{10_ms}}, nullptr);
  Hrtec sub{b.middleware()};
  (void)sub.subscribe(subject, {}, nullptr, nullptr);
  PeriodicLocalTask task{a.clock(), 10_ms, [&] {
                           Event e;
                           e.content = {1, 2, 3, 4};
                           (void)pub.publish(std::move(e));
                         }};
  task.start();

  Srtec chat_pub{b.middleware()};
  (void)chat_pub.announce(subject_of("demo/chat"),
                          AttributeList{attr::Deadline{8_ms}}, nullptr);
  PeriodicLocalTask chat{b.clock(), 3_ms, [&] {
                           Event e;
                           e.content = {9, 9};
                           (void)chat_pub.publish(std::move(e));
                         }};
  chat.start();

  scn.run_for(500_ms);
  std::string text;
  for (const auto& line : recorder.lines()) text += line + "\n";
  return text;
}

const char* class_name(TrafficClass c) {
  switch (c) {
    case TrafficClass::kHrt: return "HRT";
    case TrafficClass::kSrt: return "SRT";
    case TrafficClass::kNrt: return "NRT";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  std::string text;
  BusConfig bus;
  if (argc >= 2 && std::strcmp(argv[1], "--demo") == 0) {
    std::puts("(recording a 0.5 s demo scenario first)\n");
    text = record_demo();
  } else if (argc >= 2) {
    std::ifstream in{argv[1]};
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 2;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    text = ss.str();
    if (argc >= 3) bus.bitrate_bps = std::atoll(argv[2]);
  } else {
    std::fprintf(stderr, "usage: %s <candump-log> [bitrate] | --demo\n",
                 argv[0]);
    return 2;
  }

  const auto entries = parse_candump(text);
  if (entries.empty()) {
    std::puts("no parsable frames in the log");
    return 1;
  }
  const Duration span = entries.back().at - entries.front().at;

  struct ClassStats {
    std::uint64_t frames = 0;
    std::uint64_t bytes = 0;
    std::int64_t wire_ns = 0;
  };
  std::map<TrafficClass, ClassStats> by_class;
  struct ChannelStats {
    std::uint64_t frames = 0;
    Priority min_prio = 255;
    Priority max_prio = 0;
    std::map<NodeId, std::uint64_t> senders;
    OnlineStats inter_arrival_us;
    TimePoint last;
    bool has_last = false;
  };
  std::map<Etag, ChannelStats> by_etag;

  for (const auto& e : entries) {
    if (!e.frame.extended) continue;  // base frames are not protocol traffic
    const CanIdFields f = decode_can_id(e.frame.id);
    ClassStats& cs = by_class[classify_priority(f.priority)];
    ++cs.frames;
    cs.bytes += e.frame.dlc;
    cs.wire_ns += frame_duration(e.frame, bus).ns();

    ChannelStats& ch = by_etag[f.etag];
    ++ch.frames;
    ch.min_prio = std::min(ch.min_prio, f.priority);
    ch.max_prio = std::max(ch.max_prio, f.priority);
    ++ch.senders[f.tx_node];
    if (ch.has_last)
      ch.inter_arrival_us.add((e.at - ch.last).us());
    ch.last = e.at;
    ch.has_last = true;
  }

  std::printf("%zu frames over %.3f s (bitrate %lld bit/s assumed)\n\n",
              entries.size(), span.sec(),
              static_cast<long long>(bus.bitrate_bps));
  std::puts("class  frames     payload-bytes  bus-time(ms)  bus-share");
  for (const auto& [cls, cs] : by_class) {
    std::printf("%-6s %-10llu %-14llu %-13.2f %.2f%%\n", class_name(cls),
                static_cast<unsigned long long>(cs.frames),
                static_cast<unsigned long long>(cs.bytes),
                static_cast<double>(cs.wire_ns) / 1e6,
                span.ns() > 0
                    ? 100.0 * static_cast<double>(cs.wire_ns) /
                          static_cast<double>(span.ns())
                    : 0.0);
  }

  std::puts("\netag   frames    senders  prio-band   mean-gap(ms)  gap-stddev");
  for (const auto& [etag, ch] : by_etag) {
    std::string senders;
    for (const auto& [node, count] : ch.senders) {
      if (!senders.empty()) senders += ",";
      senders += std::to_string(node);
    }
    std::printf("%-6u %-9llu %-8s %3u..%-6u %-13.3f %.3f\n", etag,
                static_cast<unsigned long long>(ch.frames), senders.c_str(),
                ch.min_prio, ch.max_prio,
                ch.inter_arrival_us.mean() / 1000.0,
                ch.inter_arrival_us.stddev() / 1000.0);
  }
  std::puts("\netag 0/1 = clock sync, 2/3 = binding protocol, >=4 = bound");
  std::puts("application subjects. An SRT channel under promotion shows a");
  std::puts("prio band wider than one level.");
  return 0;
}
