// Calendar planning tool — the offline configuration step of §3.1 as a
// command-line utility. Feed it the HRT streams your system needs and it
// prints the synthesized round: slot placement (ready / LST / deadline),
// reserved share, and the ΔG_min/ΔT_wait budget every slot carries.
//
// Usage:
//   plan_calendar                        # plan the built-in demo set
//   plan_calendar <etag:node:dlc:k:period_us> ...
//   plan_calendar --out image.cal ...    # also write the config image
//   plan_calendar --check image.cal      # validate an existing image
//   plan_calendar ... --srt p_us:d_us:dlc [...]
//                                        # also test SRT streams for EDF
//                                        # feasibility under this calendar
//
// Example:
//   ./build/examples/plan_calendar 10:1:8:1:10000 11:2:4:0:10000 12:3:2:2:20000

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "lint_check.hpp"
#include "sched/calendar_io.hpp"
#include "sched/planner.hpp"
#include "sched/srt_analysis.hpp"

using namespace rtec;
using namespace rtec::literals;

namespace {

std::vector<HrtStreamRequest> demo_set() {
  std::vector<HrtStreamRequest> reqs;
  const struct {
    Etag etag;
    NodeId node;
    int dlc;
    int k;
    std::int64_t period_us;
  } rows[] = {
      {10, 1, 8, 1, 10'000},  // wheel speed
      {11, 2, 8, 1, 10'000},
      {12, 3, 4, 0, 20'000},  // chassis state
      {13, 4, 1, 2, 10'000},  // brake command (sporadic, high redundancy)
      {14, 5, 2, 1, 40'000},  // battery telemetry
  };
  for (const auto& r : rows) {
    HrtStreamRequest q;
    q.etag = r.etag;
    q.publisher = r.node;
    q.dlc = r.dlc;
    q.fault.omission_degree = r.k;
    q.period = Duration::microseconds(r.period_us);
    reqs.push_back(q);
  }
  return reqs;
}

bool parse_request(const char* arg, HrtStreamRequest& out) {
  unsigned etag = 0;
  unsigned node = 0;
  int dlc = 0;
  int k = 0;
  long long period_us = 0;
  if (std::sscanf(arg, "%u:%u:%d:%d:%lld", &etag, &node, &dlc, &k,
                  &period_us) != 5)
    return false;
  out.etag = static_cast<Etag>(etag);
  out.publisher = static_cast<NodeId>(node);
  out.dlc = dlc;
  out.fault.omission_degree = k;
  out.period = Duration::microseconds(period_us);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<HrtStreamRequest> reqs;
  const char* out_path = nullptr;

  // --check: validate an existing configuration image and exit.
  if (argc == 3 && std::strcmp(argv[1], "--check") == 0) {
    std::ifstream in{argv[2]};
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[2]);
      return 2;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    const auto parsed = calendar_from_text(ss.str());
    if (!parsed) {
      std::printf("INVALID (line %d): %s\n", parsed.error().line,
                  parsed.error().message.c_str());
      return 1;
    }
    // Loadable — now run the full static rule set over the raw image
    // (rtec_lint gives the same verdict with per-rule JSON output).
    const auto image = parse_calendar_image(ss.str());
    const analysis::LintReport report = analysis::lint_calendar(*image);
    if (!report.findings.empty())
      std::fputs(analysis::report_to_text(report).c_str(), stdout);
    if (report.has_errors()) return 1;
    std::printf("OK: %zu slots, round %.3f ms, %.1f%% reserved\n",
                parsed->size(), parsed->config().round_length.ms(),
                parsed->reserved_fraction() * 100);
    return 0;
  }

  int arg = 1;
  if (argc > 2 && std::strcmp(argv[1], "--out") == 0) {
    out_path = argv[2];
    arg = 3;
  }
  std::vector<SrtStreamSpec> srt_streams;
  bool srt_mode = false;
  bool saw_hrt_args = false;
  for (int i = arg; i < argc; ++i) {
    if (std::strcmp(argv[i], "--srt") == 0) {
      srt_mode = true;
      continue;
    }
    if (srt_mode) {
      long long p_us = 0;
      long long d_us = 0;
      int dlc = 8;
      if (std::sscanf(argv[i], "%lld:%lld:%d", &p_us, &d_us, &dlc) < 2) {
        std::fprintf(stderr, "cannot parse SRT '%s' (want p_us:d_us[:dlc])\n",
                     argv[i]);
        return 2;
      }
      SrtStreamSpec s;
      s.id = static_cast<int>(srt_streams.size());
      s.period = Duration::microseconds(p_us);
      s.deadline = Duration::microseconds(d_us);
      s.dlc = dlc;
      srt_streams.push_back(s);
      continue;
    }
    HrtStreamRequest r;
    if (!parse_request(argv[i], r)) {
      std::fprintf(stderr,
                   "cannot parse '%s' (want etag:node:dlc:k:period_us)\n",
                   argv[i]);
      return 2;
    }
    reqs.push_back(r);
    saw_hrt_args = true;
  }
  if (!saw_hrt_args) {
    reqs = demo_set();
    std::puts("(no stream arguments: planning the built-in automotive demo set)\n");
  }

  Calendar::Config cfg;  // 1 Mbit/s, ΔG_min = 40 us
  const auto plan = plan_calendar(reqs, cfg, /*sync_master=*/0);
  if (!plan) {
    std::printf("no feasible calendar: %s\n  %s\n",
                to_string(plan.error().kind).data(),
                plan.error().detail.c_str());
    return 1;
  }

  const Calendar& cal = plan->calendar;
  std::printf("round length : %.3f ms\n", cal.config().round_length.ms());
  std::printf("ΔT_wait      : %.0f us   ΔG_min: %.0f us\n",
              cal.t_wait().us(), cal.config().gap.us());
  std::printf("reserved     : %.1f%% of the round (rest reclaimed by SRT/NRT)\n\n",
              plan->reserved_fraction * 100);

  std::printf("%-6s %-6s %-5s %-4s %-3s %-10s %-10s %-10s %-10s %s\n", "slot",
              "etag", "node", "dlc", "k", "ready(us)", "LST(us)",
              "deadline", "window", "kind");
  for (std::size_t i = 0; i < cal.size(); ++i) {
    const SlotSpec& s = cal.slot(i);
    const SlotTiming t = cal.timing(i);
    std::printf("%-6zu %-6u %-5u %-4d %-3d %-10.0f %-10.0f %-10.0f %-10.0f %s\n",
                i, s.etag, s.publisher, s.dlc, s.fault.omission_degree,
                t.ready_offset.us(), t.lst_offset.us(), t.deadline_offset.us(),
                (t.deadline_offset - t.ready_offset).us(),
                s.etag == kSyncRefEtag ? "sync"
                : s.periodic           ? "periodic"
                                       : "sporadic");
  }
  if (out_path != nullptr) {
    std::ofstream out{out_path};
    out << calendar_to_text(cal);
    if (out.good()) {
      std::printf("\nconfiguration image written to %s\n", out_path);
    } else {
      std::fprintf(stderr, "\nfailed writing %s\n", out_path);
      return 2;
    }
  }
  if (!srt_streams.empty()) {
    SrtAnalysisInput srt_in;
    srt_in.streams = srt_streams;
    srt_in.bus = cal.config().bus;
    srt_in.calendar = &cal;
    std::printf("\nSRT feasibility (%zu streams, utilization %.1f%% + %.1f%% HRT):\n",
                srt_streams.size(), srt_utilization(srt_in) * 100,
                plan->reserved_fraction * 100);
    if (const auto verdict = srt_edf_feasibility(srt_in)) {
      std::printf("  INFEASIBLE: %s\n", verdict->detail.c_str());
    } else {
      std::puts("  OK: every SRT stream meets its transmission deadline under");
      std::puts("  the stated blocking and HRT-interference assumptions.");
    }
  }

  if (!examples::lint_calendar_or_report(cal, "planned calendar")) return 1;

  std::puts("\nfeed these SlotSpecs into Scenario::calendar().reserve(), or");
  std::puts("load the image at boot with calendar_from_text() (see");
  std::puts("sched/calendar_io.hpp; validate with plan_calendar --check).");
  return 0;
}
