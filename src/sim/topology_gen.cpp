#include "sim/topology_gen.hpp"

#include <cassert>

#include "util/random.hpp"

namespace rtec {

namespace {

/// One latency draw per link, in creation order — the link list itself is
/// a pure function of (shape, segments), so the whole spec depends only
/// on the constructor arguments.
Duration draw_latency(Rng& rng, const TopoGenOptions& opt) {
  assert(opt.min_latency > Duration::zero() &&
         opt.min_latency <= opt.max_latency);
  const std::int64_t us = rng.uniform_int(opt.min_latency.ns() / 1000,
                                          opt.max_latency.ns() / 1000);
  return Duration::microseconds(us);
}

void add_link(TopoSpec& spec, Rng& rng, const TopoGenOptions& opt, int a,
              int b, int latency_scale = 1) {
  assert(a != b && a >= 0 && b >= 0 && a < spec.segments &&
         b < spec.segments);
  if (a > b) {
    const int t = a;
    a = b;
    b = t;
  }
  spec.links.push_back(TopoLink{a, b, draw_latency(rng, opt) * latency_scale});
}

}  // namespace

TopoSpec make_topology(TopoShape shape, int segments, std::uint64_t seed,
                       const TopoGenOptions& opt) {
  assert(segments >= 1);
  TopoSpec spec;
  spec.shape = shape;
  spec.segments = segments;
  spec.seed = seed;
  // Mix the shape and size into the stream so different specs with the
  // same seed do not share latency sequences.
  Rng rng{seed ^ (static_cast<std::uint64_t>(segments) << 32) ^
          (static_cast<std::uint64_t>(shape) << 16)};

  switch (shape) {
    case TopoShape::kChain:
      for (int i = 1; i < segments; ++i) add_link(spec, rng, opt, i - 1, i);
      break;

    case TopoShape::kFleetStar: {
      // Segment i is a hub when i % cluster == 0, else a leaf of the hub
      // at the start of its block. Hubs form a backbone chain, so the
      // shape stays connected at any size; a hub carries at most
      // cluster-1 leaf gateways plus two backbone gateways.
      const int cluster = opt.fleet_cluster < 2 ? 2 : opt.fleet_cluster;
      for (int i = 1; i < segments; ++i) {
        const int hub = i - i % cluster;
        if (i == hub) {
          // Backbone hops span the city, leaf links are local: 3x the
          // store-and-forward latency of a leaf gateway.
          add_link(spec, rng, opt, hub - cluster, hub, /*latency_scale=*/3);
        } else {
          add_link(spec, rng, opt, hub, i);  // leaf
        }
      }
      break;
    }

    case TopoShape::kCampusGrid: {
      // Near-square layout: cols = ceil(sqrt(segments)) without floating
      // point, row-major segment numbering, links right and down.
      int cols = 1;
      while (cols * cols < segments) ++cols;
      spec.grid_cols = cols;
      for (int i = 0; i < segments; ++i) {
        const bool row_end = (i + 1) % cols == 0;
        if (!row_end && i + 1 < segments) add_link(spec, rng, opt, i, i + 1);
        if (i + cols < segments) add_link(spec, rng, opt, i, i + cols);
      }
      break;
    }

    case TopoShape::kBackboneTree:
      // Complete binary tree rooted at 0: parent(i) = (i - 1) / 2.
      for (int i = 1; i < segments; ++i)
        add_link(spec, rng, opt, (i - 1) / 2, i);
      break;
  }
  return spec;
}

const char* topo_shape_name(TopoShape s) {
  switch (s) {
    case TopoShape::kChain:
      return "chain";
    case TopoShape::kFleetStar:
      return "fleet";
    case TopoShape::kCampusGrid:
      return "grid";
    case TopoShape::kBackboneTree:
      return "tree";
  }
  return "?";
}

bool topo_shape_from_name(std::string_view name, TopoShape& out) {
  if (name == "chain") {
    out = TopoShape::kChain;
  } else if (name == "fleet") {
    out = TopoShape::kFleetStar;
  } else if (name == "grid") {
    out = TopoShape::kCampusGrid;
  } else if (name == "tree") {
    out = TopoShape::kBackboneTree;
  } else {
    return false;
  }
  return true;
}

}  // namespace rtec
