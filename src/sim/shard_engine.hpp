#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "sim/handoff.hpp"
#include "sim/simulator.hpp"
#include "util/profile.hpp"
#include "util/time_types.hpp"

/// \file shard_engine.hpp
/// Conservative parallel discrete-event engine over sharded kernels.
///
/// A multi-segment scenario partitions its CAN segments into shards, one
/// `Simulator` per shard, coupled only through `HandoffChannel`s (gateway
/// forwarding). The engine advances all shards in lockstep epochs using
/// null-message/YAWNS-style lookahead synchronization with **per-link
/// lookahead**: each shard's safe horizon is computed from only the links
/// that can actually feed it, so weakly-coupled shards advance far past
/// the global minimum and epoch counts collapse on heterogeneous
/// topologies.
///
///   1. barrier: drain every direction batch into its destination kernel;
///      record N_j = each shard j's next pending event time
///   2. compute every shard's *earliest output time* — the lower bound on
///      when it could execute anything from now on, including events it
///      has not received yet — as the least fixpoint of
///        ET_j = min(N_j, min over incoming links (k -> j) of ET_k + L_kj)
///      (a single-source-free Dijkstra pass over the positive-latency
///      link graph, seeded with the N_j), then
///        H_i = min over incoming links (j -> i) of  ET_j + L_ji
///      where L_ji is the minimum latency over that direction's channels
///      (no incoming links, or every feeder drained: H_i = run bound)
///   3. every shard with N_i < H_i executes its events with timestamp
///      < H_i, in parallel; the rest idle this epoch
///
/// Safety: any event shard j ever executes from this barrier on — its own
/// pending events (t >= N_j) or relays of handoffs it has yet to receive
/// (which arrive no earlier than ET_k + L_kj from some feeder k) — has
/// timestamp >= ET_j by induction over relay chains, so any handoff it
/// commits toward shard i releases at >= ET_j + L_ji >= H_i: beyond what
/// shard i executes before the next barrier, where it is injected. The
/// transitive closure matters — bounding H_i by the feeders' *pending*
/// events alone (N_j + L_ji) is unsound, because a feeder can receive and
/// relay an event below its own N_j. Handoffs are the only cross-shard
/// influence, hence no shard can ever receive an event in its executed
/// past (asserted by the kernel's injected lane). Progress: every
/// cross-shard latency is > 0 (asserted), so the shard holding the global
/// minimum N has ET = N and every bound on it exceeds N — it always
/// executes at least one event per epoch.
///
/// The legacy PR 3 engine (one global horizon, N + min latency over *all*
/// links) is retained as `LookaheadMode::kGlobalMin` for paired
/// benchmarking and regression tests; per-link is the default and is
/// never slower in epochs (each H_i is >= the global horizon).
///
/// Determinism: results are bit-identical for every shard/thread count
/// and either lookahead mode. Within an epoch shards share no mutable
/// state (direction batches are written only by their source shard and
/// drained only at barriers), and the injected lane orders handoffs by
/// their (channel, seq) identity rather than by injection time, so
/// neither barrier placement nor batch drain order can perturb delivery
/// order — see simulator.hpp and docs/performance.md §4.
/// tests/test_multiseg.cpp verifies bit-identity across shard counts
/// {1, 2, N} × worker counts, seeds and topology shapes; the epoch
/// barriers are the only cross-thread synchronization, verified under
/// TSan.

namespace rtec {

/// Horizon policy for the conservative coordinator.
enum class LookaheadMode {
  /// Per-shard horizons from incoming links only (default).
  kPerLink,
  /// PR 3 behaviour: one global horizon N + min latency over all links.
  /// Kept for paired epoch-count benchmarking; produces identical traces.
  kGlobalMin,
};

class ShardEngine {
 public:
  ShardEngine() = default;
  ShardEngine(const ShardEngine&) = delete;
  ShardEngine& operator=(const ShardEngine&) = delete;

  /// Registers the next shard (configuration time). Shard indices follow
  /// registration order.
  void add_shard(Simulator& sim) { shards_.push_back(&sim); }

  /// Creates the handoff channel for segment traffic flowing from shard
  /// `from` into shard `to` (same shard allowed: the channel is then
  /// unbuffered and bypasses the barrier machinery). Cross-shard channels
  /// require `latency > 0` and share one direction batch per ordered
  /// (from, to) pair; the direction's lookahead is the minimum latency of
  /// its channels.
  HandoffChannel& link(std::size_t from, std::size_t to, Duration latency);

  /// Worker threads used for parallel epochs (clamped to the shard count;
  /// <= 1 executes shards in index order on the calling thread, which
  /// yields byte-identical results).
  void set_threads(unsigned n) { threads_ = n == 0 ? 1 : n; }
  [[nodiscard]] unsigned threads() const { return threads_; }

  void set_lookahead_mode(LookaheadMode m) { mode_ = m; }
  [[nodiscard]] LookaheadMode lookahead_mode() const { return mode_; }

  /// Runs every shard up to and including `t` and leaves all kernels with
  /// now() == t. Callable repeatedly; handoffs committed at exactly `t`
  /// stay buffered and are injected by the next call.
  void run_until(TimePoint t);

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  /// Minimum cross-shard channel latency (the kGlobalMin lookahead and a
  /// whole-topology diagnostic); Duration::max() when every channel is
  /// intra-shard.
  [[nodiscard]] Duration lookahead() const { return lookahead_; }
  /// Minimum latency over the links *into* `shard` — the per-link bound
  /// on how far it may trail its slowest feeder; Duration::max() when
  /// nothing feeds it.
  [[nodiscard]] Duration incoming_lookahead(std::size_t shard) const;

  /// Engine activity counters. CUMULATIVE across run_until() calls for
  /// the engine's lifetime (a scenario typically calls run_until many
  /// times while draining streams); call reset_stats() to start a fresh
  /// measurement window, e.g. after warm-up.
  ///
  /// Everything here except the two barrier counters is a pure function
  /// of the scenario (bit-identical across thread counts). barrier_spins
  /// and barrier_parks measure *host* scheduling — how often an epoch
  /// barrier wait was satisfied by spinning vs falling back to the parked
  /// condvar — and legitimately vary run to run; they exist to attribute
  /// parallel overhead (ROADMAP's speedup investigation), not to be
  /// diffed.
  struct Stats {
    std::uint64_t epochs = 0;      ///< lockstep windows executed
    std::uint64_t handoffs = 0;    ///< cross-shard handoffs injected
    std::uint64_t shard_runs = 0;  ///< shard executions summed over epochs
    std::uint64_t shard_skips = 0;  ///< shard-epochs idled (no safe work)
    std::uint64_t handoff_batches = 0;  ///< non-empty direction drains
    std::uint64_t handoff_bytes = 0;    ///< payload bytes those drains moved
    std::uint64_t barrier_spins = 0;  ///< barrier waits resolved by spinning
    std::uint64_t barrier_parks = 0;  ///< barrier waits that parked (condvar)
    /// log2 histogram of per-shard epoch advances: bucket b counts active
    /// shard-epochs whose horizon lay [2^b, 2^(b+1)) ns past the shard's
    /// next event — the distribution behind the mean lookahead quality.
    std::array<std::uint64_t, 64> horizon_advance_log2{};
    std::vector<std::uint64_t> per_shard_runs;   ///< indexed by shard
    std::vector<std::uint64_t> per_shard_skips;  ///< indexed by shard
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  /// Zeroes every counter (the per-shard vectors keep their size).
  void reset_stats();

  /// Enables simulated-time span profiling (nullptr disables; disabled
  /// hooks cost one branch). Records "engine.epoch_advance": how far the
  /// global minimum next-event time moved per epoch.
  void set_profiler(SpanProfiler* p);

 private:
  /// One ordered cross-shard pair with at least one channel. The batch
  /// address is stable (channels keep pointers into it).
  struct Direction {
    std::size_t from;
    std::size_t to;
    Duration min_latency;
    std::unique_ptr<HandoffBatch> batch;
  };
  /// One adjacency edge (used in both directions: the peer is the source
  /// in `incoming_` and the destination in `outgoing_`).
  struct Edge {
    std::size_t peer;
    Duration latency;
  };

  /// Barrier work: drains every direction batch and refreshes `next_`;
  /// returns the global minimum next-event time (TimePoint::max() when
  /// all kernels drained).
  TimePoint drain_and_peek();
  /// Fills `horizon_` and `active_` for one epoch given the global
  /// minimum `next_min` and the exclusive run bound.
  void compute_horizons(TimePoint end_excl, TimePoint next_min);
  void rebuild_incoming();

  std::vector<Simulator*> shards_;
  std::vector<std::unique_ptr<HandoffChannel>> channels_;
  std::vector<Direction> directions_;
  std::map<std::pair<std::size_t, std::size_t>, std::size_t> direction_index_;
  std::vector<std::vector<Edge>> incoming_;  ///< per destination shard
  std::vector<std::vector<Edge>> outgoing_;  ///< per source shard
  bool incoming_dirty_ = false;
  std::vector<TimePoint> next_;     ///< per-shard next event after barrier
  std::vector<TimePoint> et_;       ///< per-shard earliest output time
  std::vector<TimePoint> horizon_;  ///< per-shard epoch horizon (exclusive)
  std::vector<std::uint32_t> active_;  ///< shards with work this epoch
  Duration lookahead_ = Duration::max();
  bool has_cross_shard_ = false;
  unsigned threads_ = 1;
  LookaheadMode mode_ = LookaheadMode::kPerLink;
  Stats stats_;
  SpanStats* epoch_span_ = nullptr;  ///< nullptr: profiling disabled
};

}  // namespace rtec
