#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/handoff.hpp"
#include "sim/simulator.hpp"
#include "util/time_types.hpp"

/// \file shard_engine.hpp
/// Conservative parallel discrete-event engine over sharded kernels.
///
/// A multi-segment scenario partitions its CAN segments into shards, one
/// `Simulator` per shard, coupled only through `HandoffChannel`s (gateway
/// forwarding). The engine advances all shards in lockstep epochs using
/// classic null-message/YAWNS-style lookahead synchronization:
///
///   1. barrier: inject every buffered handoff into its destination kernel
///   2. N  = min over shards of the next pending event time
///   3. H  = N + L, where L = min latency over all cross-shard channels
///      (no cross-shard channels: H = run horizon — segments are
///      independent and each shard runs the whole window in one epoch)
///   4. every shard executes its events with timestamp < H, in parallel
///
/// Safety: an event executed in this epoch has timestamp t >= N, so any
/// handoff it commits releases at t + latency >= N + L = H — beyond what
/// any shard executes before the next barrier, where it is injected.
/// Progress: L > 0 (asserted per channel), so the shard holding the global
/// minimum always executes at least one event per epoch.
///
/// Determinism: results are bit-identical for every shard/thread count.
/// Within an epoch shards share no mutable state (channel buffers are
/// written only by their source shard and drained only at barriers), and
/// the injected lane orders handoffs by their (channel, seq) identity
/// rather than by injection time, so barrier placement cannot perturb
/// delivery order — see simulator.hpp and docs/performance.md §5.
/// tests/test_multiseg.cpp verifies bit-identity across shard counts
/// {1, 2, N} × worker counts, seeds and topologies; the epoch barriers are
/// the only cross-thread synchronization, verified under TSan.

namespace rtec {

class ShardEngine {
 public:
  ShardEngine() = default;
  ShardEngine(const ShardEngine&) = delete;
  ShardEngine& operator=(const ShardEngine&) = delete;

  /// Registers the next shard (configuration time). Shard indices follow
  /// registration order.
  void add_shard(Simulator& sim) { shards_.push_back(&sim); }

  /// Creates the handoff channel for segment traffic flowing from shard
  /// `from` into shard `to` (same shard allowed: the channel is then
  /// unbuffered and bypasses the barrier machinery). Cross-shard channels
  /// require `latency > 0`; the engine lookahead is their minimum.
  HandoffChannel& link(std::size_t from, std::size_t to, Duration latency);

  /// Worker threads used for parallel epochs (clamped to the shard count;
  /// <= 1 executes shards in index order on the calling thread, which
  /// yields byte-identical results).
  void set_threads(unsigned n) { threads_ = n == 0 ? 1 : n; }
  [[nodiscard]] unsigned threads() const { return threads_; }

  /// Runs every shard up to and including `t` and leaves all kernels with
  /// now() == t. Callable repeatedly; handoffs committed at exactly `t`
  /// stay buffered and are injected by the next call.
  void run_until(TimePoint t);

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  /// Minimum cross-shard channel latency (the conservative lookahead);
  /// Duration::max() when every channel is intra-shard.
  [[nodiscard]] Duration lookahead() const { return lookahead_; }

  struct Stats {
    std::uint64_t epochs = 0;         ///< lockstep windows executed
    std::uint64_t handoffs = 0;       ///< cross-shard handoffs injected
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  /// Barrier work: flushes channel buffers and returns the global minimum
  /// next-event time (TimePoint::max() when all kernels drained).
  TimePoint inject_and_peek();

  std::vector<Simulator*> shards_;
  std::vector<std::unique_ptr<HandoffChannel>> channels_;
  Duration lookahead_ = Duration::max();
  bool has_cross_shard_ = false;
  unsigned threads_ = 1;
  Stats stats_;
};

}  // namespace rtec
