#pragma once

#include <cassert>
#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

/// \file callable.hpp
/// Allocation-free type-erased callables for the event kernel.
///
/// `InlineCallable` stores small callables (up to kInlineBytes of captures)
/// directly inside the event slot — no heap traffic at all on the dominant
/// scheduling paths. Medium-sized captures fall back to a slab allocator
/// (`CallableSlab`) that recycles fixed-size blocks through a free list, so
/// steady-state simulation performs zero allocator calls. Only outsized
/// captures (> CallableSlab::kBlockBytes) reach `operator new`.

namespace rtec::detail {

/// Fixed-block slab with an intrusive free list. Blocks are carved from
/// geometrically growing chunks and never returned to the OS until the slab
/// is destroyed — timer churn therefore reuses the same hot cache lines.
class CallableSlab {
 public:
  static constexpr std::size_t kBlockBytes = 128;

  CallableSlab() = default;
  CallableSlab(const CallableSlab&) = delete;
  CallableSlab& operator=(const CallableSlab&) = delete;

  void* allocate() {
    if (free_ == nullptr) grow();
    Block* b = free_;
    free_ = b->next;
    return b;
  }

  void deallocate(void* p) {
    Block* b = static_cast<Block*>(p);
    b->next = free_;
    free_ = b;
  }

  /// Total blocks ever carved (diagnostics; bounded-memory tests).
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  union Block {
    Block* next;
    alignas(std::max_align_t) std::byte bytes[kBlockBytes];
  };

  void grow() {
    const std::size_t count = chunks_.empty() ? 16 : chunks_.back().count * 2;
    chunks_.push_back({std::make_unique<Block[]>(count), count});
    Block* base = chunks_.back().blocks.get();
    for (std::size_t i = 0; i < count; ++i) {
      base[i].next = free_;
      free_ = &base[i];
    }
    capacity_ += count;
  }

  struct Chunk {
    std::unique_ptr<Block[]> blocks;
    std::size_t count = 0;
  };

  Block* free_ = nullptr;
  std::vector<Chunk> chunks_;
  std::size_t capacity_ = 0;
};

/// Pinned type-erased `void()` callable with small-buffer optimisation and
/// slab-backed fallback. Unlike `std::function` it never allocates for
/// captures up to kInlineBytes, recycles slab blocks above that, and skips
/// the destructor indirection entirely for trivial captures. The whole
/// object is exactly one cache line, which is also what bounds the event
/// kernel's per-slot cold-memory cost.
class alignas(64) InlineCallable {
 public:
  /// Inline capture budget. 32 bytes covers the kernel-internal hot-path
  /// lambdas (a few pointers/integers) and a whole `std::function<void()>`
  /// (so legacy `Simulator::Callback` arguments stay allocation-free);
  /// bigger captures (e.g. the bus end-of-transmission continuation) take a
  /// recycled slab block.
  static constexpr std::size_t kInlineBytes = 32;
  /// Inline storage alignment; stricter captures go to the slab.
  static constexpr std::size_t kInlineAlign = 8;

  InlineCallable() = default;
  InlineCallable(const InlineCallable&) = delete;
  InlineCallable(InlineCallable&&) = delete;
  InlineCallable& operator=(const InlineCallable&) = delete;
  InlineCallable& operator=(InlineCallable&&) = delete;

  ~InlineCallable() { reset(); }

  /// Constructs `f` in place, choosing inline / slab / heap storage by size.
  /// Any previous occupant is destroyed first: cancellation defers the
  /// destruction of the old callable to this point (or to teardown), which
  /// keeps the cancel path from touching the slot's cache line at all.
  template <typename F>
  void emplace(F&& f, CallableSlab& slab) {
    using Fn = std::decay_t<F>;
    static_assert(std::is_invocable_v<Fn&>, "callable must be invocable");
    reset();
    invoke_ = [](void* p) { (*static_cast<Fn*>(p))(); };
    if constexpr (sizeof(Fn) <= kInlineBytes && alignof(Fn) <= kInlineAlign) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      kind_ = Kind::kInline;
      // destroy_ == nullptr means "trivial": reset() skips the indirect
      // call — the dominant case (kernel lambdas capture pointers and
      // integers).
      if constexpr (std::is_trivially_destructible_v<Fn>) {
        destroy_ = nullptr;
      } else {
        destroy_ = [](void* p) { static_cast<Fn*>(p)->~Fn(); };
      }
    } else if constexpr (sizeof(Fn) <= CallableSlab::kBlockBytes &&
                         alignof(Fn) <= alignof(std::max_align_t)) {
      obj_ = ::new (slab.allocate()) Fn(std::forward<F>(f));
      slab_ = &slab;
      kind_ = Kind::kSlab;
      if constexpr (std::is_trivially_destructible_v<Fn>) {
        destroy_ = nullptr;
      } else {
        destroy_ = [](void* p) { static_cast<Fn*>(p)->~Fn(); };
      }
    } else {
      obj_ = new Fn(std::forward<F>(f));
      kind_ = Kind::kHeap;
      destroy_ = [](void* p) { delete static_cast<Fn*>(p); };
    }
  }

  void operator()() {
    assert(kind_ != Kind::kEmpty);
    invoke_(target());
  }

  [[nodiscard]] explicit operator bool() const { return kind_ != Kind::kEmpty; }

  /// Invoke + destroy + clear in one pass over the slot's cache line (the
  /// fire hot path). The slot must be pinned for the duration of the call:
  /// the kernel keeps a firing slot off the free list, so nothing can
  /// emplace over it from inside the callback.
  void consume() {
    assert(kind_ != Kind::kEmpty);
    if (kind_ == Kind::kInline) {
      void (*const destroy)(void*) = destroy_;
      invoke_(buf_);
      if (destroy != nullptr) destroy(buf_);
    } else {
      void* const obj = obj_;
      const Kind k = kind_;
      void (*const destroy)(void*) = destroy_;
      CallableSlab* const slab = slab_;
      invoke_(obj);
      if (k == Kind::kSlab) {
        if (destroy != nullptr) destroy(obj);
        slab->deallocate(obj);
      } else {
        destroy(obj);  // kHeap: destroy_ also frees
      }
    }
    clear_fields();
  }

  /// Destroys the stored callable (returning slab blocks to their slab).
  void reset() noexcept {
    switch (kind_) {
      case Kind::kEmpty:
        return;
      case Kind::kInline:
        if (destroy_ != nullptr) destroy_(buf_);
        break;
      case Kind::kSlab:
        if (destroy_ != nullptr) destroy_(obj_);
        slab_->deallocate(obj_);
        break;
      case Kind::kHeap:
        destroy_(obj_);
        break;
    }
    clear_fields();
  }

 private:
  enum class Kind : unsigned char { kEmpty, kInline, kSlab, kHeap };

  [[nodiscard]] void* target() {
    return kind_ == Kind::kInline ? static_cast<void*>(buf_) : obj_;
  }

  /// Marks the callable empty. The remaining fields may go stale: emplace()
  /// rewrites every one it will read, and nothing reads them while kind_ is
  /// kEmpty.
  void clear_fields() noexcept {
    invoke_ = nullptr;
    kind_ = Kind::kEmpty;
  }

  void (*invoke_)(void*) = nullptr;
  void (*destroy_)(void*) = nullptr;
  CallableSlab* slab_ = nullptr;
  Kind kind_ = Kind::kEmpty;
  union {
    void* obj_;  ///< slab/heap storage (valid when kind_ is kSlab/kHeap)
    alignas(kInlineAlign) std::byte buf_[kInlineBytes];  ///< inline storage
  };
};

/// Exactly one cache line, line-aligned: a slot chunk is a dense array of
/// these, so under the sharded engine two kernels never share a slot cache
/// line and a worker's slot writes cannot false-share with another shard's.
static_assert(sizeof(InlineCallable) == 64 && alignof(InlineCallable) == 64,
              "event-slot callable must be exactly one aligned cache line");

}  // namespace rtec::detail
