#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"
#include "util/time_types.hpp"

/// \file handoff.hpp
/// One-directional FIFO handoff channel between two network segments —
/// the only way simulation state may cross a segment boundary (gateway
/// forwarding). Every handoff is stamped with a deterministic release
/// time, `send time + channel latency`, and a per-channel sequence
/// number; the destination kernel orders it by (release, channel, seq)
/// through the injected lane (Simulator::schedule_injected), so delivery
/// order is a pure function of the handoff's identity.
///
/// A channel runs in one of two modes, chosen by the topology partitioner:
///  * unbuffered — source and destination segments share one kernel; the
///    handoff is injected immediately (the release time is in that
///    kernel's future by construction since latency >= 0).
///  * buffered — the segments live on different shards; the handoff is
///    appended to a buffer owned by the source shard's thread and injected
///    by the coordinator at the next epoch barrier. The channel latency is
///    then the lookahead that makes the barrier placement safe: a handoff
///    sent at t cannot release before t + latency, so it is always
///    injected before the destination could possibly reach it.
///
/// Threading contract (TSan-verified): post() is called only from the
/// source shard's execution context; flush() only from the coordinator
/// between epochs. The epoch barrier orders the two.

namespace rtec {

class HandoffChannel {
 public:
  HandoffChannel(Simulator& dest, std::uint32_t id, Duration latency,
                 bool buffered)
      : dest_{dest}, id_{id}, latency_{latency}, buffered_{buffered} {
    assert(latency >= Duration::zero());
    // A buffered (cross-shard) channel's latency is the engine lookahead;
    // zero lookahead would stall the conservative coordinator.
    assert((!buffered || latency > Duration::zero()) &&
           "cross-shard handoff channels need a positive latency");
  }

  HandoffChannel(const HandoffChannel&) = delete;
  HandoffChannel& operator=(const HandoffChannel&) = delete;

  /// Commits one handoff sent at `send_time` (the source segment's current
  /// simulation time). `cb` runs in the destination segment's context at
  /// `send_time + latency()`.
  void post(TimePoint send_time, std::function<void()> cb) {
    assert(cb);
    const TimePoint release = send_time + latency_;
    const std::uint64_t seq = next_seq_++;
    if (buffered_) {
      buffer_.push_back(Pending{release, seq, std::move(cb)});
    } else {
      dest_.schedule_injected(release, id_, seq, std::move(cb));
    }
  }

  /// Injects every buffered handoff into the destination kernel
  /// (coordinator-only, between epochs).
  void flush() {
    for (Pending& p : buffer_)
      dest_.schedule_injected(p.release, id_, p.seq, std::move(p.cb));
    buffer_.clear();
  }

  [[nodiscard]] Duration latency() const { return latency_; }
  [[nodiscard]] bool buffered() const { return buffered_; }
  [[nodiscard]] std::uint32_t id() const { return id_; }
  /// Handoffs committed over the channel's lifetime.
  [[nodiscard]] std::uint64_t posted() const { return next_seq_; }
  /// Handoffs awaiting injection at the next barrier.
  [[nodiscard]] std::size_t pending() const { return buffer_.size(); }

 private:
  struct Pending {
    TimePoint release;
    std::uint64_t seq;
    std::function<void()> cb;
  };

  Simulator& dest_;
  std::uint32_t id_;
  Duration latency_;
  bool buffered_;
  std::uint64_t next_seq_ = 0;
  std::vector<Pending> buffer_;
};

}  // namespace rtec
