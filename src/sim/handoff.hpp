#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"
#include "util/time_types.hpp"

/// \file handoff.hpp
/// One-directional FIFO handoff channels between network segments — the
/// only way simulation state may cross a segment boundary (gateway
/// forwarding). Every handoff is stamped with a deterministic release
/// time, `send time + channel latency`, and a per-channel sequence
/// number; the destination kernel orders it by (release, channel, seq)
/// through the injected lane (Simulator::schedule_injected), so delivery
/// order is a pure function of the handoff's identity.
///
/// A channel runs in one of two modes, chosen by the topology partitioner:
///  * unbuffered — source and destination segments share one kernel; the
///    handoff is injected immediately (the release time is in that
///    kernel's future by construction since latency >= 0).
///  * batched — the segments live on different shards; the handoff is
///    appended to the *direction batch* shared by every channel flowing
///    from the source shard into the destination shard, and the whole
///    batch is drained into the destination kernel in one pass at the
///    next epoch barrier. The channel latency is then the per-link
///    lookahead that makes the barrier placement safe: a handoff sent at
///    t cannot release before t + latency, so it is always injected
///    before the destination could possibly reach it.
///
/// Draining per *direction* instead of per channel means the barrier cost
/// scales with the number of coupled shard pairs, not with the number of
/// bridged subjects, and the drain writes each destination kernel's heap
/// in one contiguous burst. Mixing channels inside one batch cannot
/// perturb results: the injected lane orders delivered handoffs by their
/// (channel, seq) identity, never by injection order.
///
/// Threading contract (TSan-verified): post() is called only from the
/// source shard's execution context; drain() only from the coordinator
/// between epochs. The epoch barrier orders the two — a direction batch
/// is a SPSC ring whose producer/consumer never run concurrently.

namespace rtec {

/// The batched buffer for one cross-shard direction (ordered shard pair).
/// Owned by the engine; every HandoffChannel for that direction appends
/// into it. Storage is retained across drains, so steady-state posting
/// never allocates.
class HandoffBatch {
 public:
  explicit HandoffBatch(Simulator& dest) : dest_{dest} {}

  HandoffBatch(const HandoffBatch&) = delete;
  HandoffBatch& operator=(const HandoffBatch&) = delete;

  /// Appends one handoff (source shard context only).
  void push(TimePoint release, std::uint32_t channel, std::uint64_t seq,
            std::function<void()> cb) {
    buffer_.push_back(Pending{release, channel, seq, std::move(cb)});
  }

  /// Injects every buffered handoff into the destination kernel and
  /// returns how many were delivered (coordinator-only, between epochs).
  /// The vector's capacity survives the clear — the ring reuses its
  /// storage on the next epoch.
  std::size_t drain() {
    const std::size_t n = buffer_.size();
    for (Pending& p : buffer_)
      dest_.schedule_injected(p.release, p.channel, p.seq, std::move(p.cb));
    buffer_.clear();
    return n;
  }

  /// Handoffs awaiting injection at the next barrier.
  [[nodiscard]] std::size_t pending() const { return buffer_.size(); }
  [[nodiscard]] Simulator& dest() const { return dest_; }
  /// Bytes one buffered handoff occupies (engine barrier-traffic stats).
  [[nodiscard]] static constexpr std::size_t pending_bytes() {
    return sizeof(Pending);
  }

 private:
  struct Pending {
    TimePoint release;
    std::uint32_t channel;
    std::uint64_t seq;
    std::function<void()> cb;
  };

  Simulator& dest_;
  std::vector<Pending> buffer_;
};

class HandoffChannel {
 public:
  /// `batch == nullptr` means source and destination share a kernel
  /// (unbuffered immediate injection); otherwise every post lands in the
  /// direction batch and is drained at the next epoch barrier.
  HandoffChannel(Simulator& dest, std::uint32_t id, Duration latency,
                 HandoffBatch* batch)
      : dest_{dest}, batch_{batch}, id_{id}, latency_{latency} {
    assert(latency >= Duration::zero());
    // A cross-shard channel's latency is the per-link lookahead between
    // its endpoint shards; zero lookahead would stall the conservative
    // coordinator.
    assert((batch == nullptr || latency > Duration::zero()) &&
           "cross-shard handoff channels need a positive latency");
    assert((batch == nullptr || &batch->dest() == &dest) &&
           "direction batch must target the channel's destination kernel");
  }

  HandoffChannel(const HandoffChannel&) = delete;
  HandoffChannel& operator=(const HandoffChannel&) = delete;

  /// Observes every post() in the SOURCE segment's execution context,
  /// before the handoff is batched — i.e. in the source's deterministic
  /// event order, which is what lets an RTEB recorder log handoffs
  /// byte-identically across shard/thread counts (trace/binary.hpp).
  using PostObserver = std::function<void(
      TimePoint send, TimePoint release, std::uint32_t channel,
      std::uint64_t seq)>;
  void set_post_observer(PostObserver o) { post_observer_ = std::move(o); }

  /// Commits one handoff sent at `send_time` (the source segment's current
  /// simulation time). `cb` runs in the destination segment's context at
  /// `send_time + latency()`.
  template <typename F>
  void post(TimePoint send_time, F&& cb) {
    const TimePoint release = send_time + latency_;
    const std::uint64_t seq = next_seq_++;
    if (post_observer_) post_observer_(send_time, release, id_, seq);
    if (batch_ != nullptr) {
      batch_->push(release, id_, seq,
                   std::function<void()>{std::forward<F>(cb)});
    } else {
      dest_.schedule_injected(release, id_, seq, std::forward<F>(cb));
    }
  }

  [[nodiscard]] Duration latency() const { return latency_; }
  [[nodiscard]] bool buffered() const { return batch_ != nullptr; }
  [[nodiscard]] std::uint32_t id() const { return id_; }
  /// Handoffs committed over the channel's lifetime.
  [[nodiscard]] std::uint64_t posted() const { return next_seq_; }

 private:
  Simulator& dest_;
  HandoffBatch* batch_;
  std::uint32_t id_;
  Duration latency_;
  std::uint64_t next_seq_ = 0;
  PostObserver post_observer_;
};

}  // namespace rtec
