#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "util/time_types.hpp"

/// \file topology_gen.hpp
/// Deterministic generator for city-scale multi-segment topology shapes.
///
/// A generated topology is a set of CAN segments (numbered 0..segments-1)
/// plus undirected gateway adjacencies with per-link forward latencies.
/// The same (shape, segments, seed) always yields the same spec — the
/// generator draws only from util/random.hpp's seeded Rng — so benches,
/// tests and the rtec_topogen CLI can all reconstruct identical worlds.
///
/// Shapes model the federated deployments the event-channel papers
/// target:
///  * kChain        — a backbone line of segments (PR 3's bench shape).
///  * kFleetStar    — vehicle fleet: hub segments in a backbone chain,
///                    each with a cluster of leaf segments (star per hub).
///  * kCampusGrid   — factory campus: segments on a near-square 2-D grid,
///                    gateways to the right and down neighbours (cyclic).
///  * kBackboneTree — building backbone: complete binary tree.
///
/// Latencies are drawn uniformly per link from [min_latency, max_latency]
/// at microsecond granularity. Heterogeneous latencies are the point:
/// per-link lookahead (sim/shard_engine.hpp) exploits exactly the links
/// whose latency or traffic differs from the global minimum.

namespace rtec {

enum class TopoShape { kChain, kFleetStar, kCampusGrid, kBackboneTree };

/// Undirected gateway adjacency between segments `a` and `b` (a < b);
/// builders create one store-and-forward gateway (two directed handoff
/// channels) per link.
struct TopoLink {
  int a = 0;
  int b = 0;
  Duration latency = Duration::zero();
};

struct TopoSpec {
  TopoShape shape = TopoShape::kChain;
  int segments = 0;
  std::uint64_t seed = 0;
  int grid_cols = 0;  ///< kCampusGrid only: row width of the layout
  std::vector<TopoLink> links;
};

struct TopoGenOptions {
  Duration min_latency = Duration::microseconds(200);
  Duration max_latency = Duration::microseconds(400);
  /// kFleetStar: segments per hub block (1 hub + cluster-1 leaves).
  int fleet_cluster = 16;
};

/// Builds the deterministic spec. `segments >= 1`; latencies and layout
/// depend only on (shape, segments, seed, options).
[[nodiscard]] TopoSpec make_topology(TopoShape shape, int segments,
                                     std::uint64_t seed,
                                     const TopoGenOptions& opt = {});

/// Stable lower-case shape names ("chain", "fleet", "grid", "tree") for
/// CLIs, bench metadata and test output.
[[nodiscard]] const char* topo_shape_name(TopoShape s);
/// Parses a shape name; returns false (out untouched) on unknown names.
[[nodiscard]] bool topo_shape_from_name(std::string_view name,
                                        TopoShape& out);

}  // namespace rtec
