#include "sim/simulator.hpp"

#include <cassert>
#include <utility>

namespace rtec {

Simulator::TimerHandle Simulator::schedule_at(TimePoint t, Callback cb) {
  assert(t >= now_ && "cannot schedule into the past");
  assert(cb && "null callback");
  const std::uint64_t id = next_id_++;
  queue_.push(Entry{t, next_seq_++, id});
  callbacks_.emplace(id, std::move(cb));
  return TimerHandle{id};
}

Simulator::TimerHandle Simulator::schedule_after(Duration d, Callback cb) {
  assert(d >= Duration::zero());
  return schedule_at(now_ + d, std::move(cb));
}

void Simulator::cancel(TimerHandle& h) {
  if (!h.valid()) return;
  callbacks_.erase(h.id_);  // heap entry removed lazily in step()
  h.id_ = 0;
}

bool Simulator::step() {
  while (!queue_.empty()) {
    const Entry e = queue_.top();
    queue_.pop();
    auto it = callbacks_.find(e.id);
    if (it == callbacks_.end()) continue;  // cancelled
    assert(e.at >= now_);
    now_ = e.at;
    // Move the callback out before erasing: the callback may (re)schedule
    // and thereby rehash callbacks_.
    Callback cb = std::move(it->second);
    callbacks_.erase(it);
    cb();
    return true;
  }
  return false;
}

void Simulator::run_until(TimePoint t) {
  assert(t >= now_);
  while (!queue_.empty()) {
    // Skip cancelled entries without advancing time.
    const Entry e = queue_.top();
    if (callbacks_.find(e.id) == callbacks_.end()) {
      queue_.pop();
      continue;
    }
    if (e.at > t) break;
    step();
  }
  now_ = t;
}

void Simulator::run() {
  while (step()) {
  }
}

}  // namespace rtec
