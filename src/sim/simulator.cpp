#include "sim/simulator.hpp"

#include <algorithm>
#include <utility>

namespace rtec {

std::uint32_t Simulator::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t idx = free_slots_.back();
    free_slots_.pop_back();
    return idx;
  }
  assert(slot_count_ < kSlotMask && "live-slot space exhausted");
  if ((slot_count_ & kSlotChunkMask) == 0)
    slot_chunks_.push_back(
        std::make_unique<detail::InlineCallable[]>(kSlotChunkMask + 1));
  slot_seq_.push_back(0);
  return slot_count_++;
}

void Simulator::release_slot(std::uint32_t idx) {
  // The callable is NOT destroyed here: emplace() on reuse (or teardown)
  // does it. Cancellation therefore never touches the slot's cache line —
  // only the dense identity array.
  slot_seq_[idx] = 0;  // invalidates outstanding heap entries / handles
  free_slots_.push_back(idx);
  --live_;
}

void Simulator::cancel(TimerHandle& h) {
  const std::uint32_t idx = slot_of(h.seqslot_);
  if (h.seqslot_ != 0 && idx < slot_count_ && slot_seq_[idx] == h.seqslot_) {
    release_slot(idx);
    ++stats_.cancelled;
    // Lazy deletion: reclaim heap memory once cancelled entries dominate.
    if (heap_.size() >= 64 && heap_.size() - live_ > heap_.size() / 2)
      compact();
  }
  h = TimerHandle{};
}

bool Simulator::step() {
  while (!heap_.empty()) {
    const Entry e = heap_.front();
    const std::uint32_t idx = slot_of(e.seqslot);
    if (slot_seq_[idx] != e.seqslot) {  // cancelled; drop lazily
      heap_pop_front();
      continue;
    }
    assert(e.at >= now_);
    heap_pop_front();
    now_ = e.at;
    // Invalidate the slot's handles and heap entries *before* invoking, but
    // keep it off the free list until the callback returns: the callable
    // runs in place (no move), so the slot must not be recycled by anything
    // the callback schedules. Cancelling the fired timer from inside its
    // own callback is an identity-mismatch no-op, exactly as after firing.
    slot_seq_[idx] = 0;
    --live_;
    ++stats_.fired;
    slot(idx).consume();
    free_slots_.push_back(idx);
    return true;
  }
  return false;
}

void Simulator::run_until(TimePoint t) {
  assert(t >= now_);
  while (!heap_.empty()) {
    // Skip cancelled entries without advancing time.
    const Entry e = heap_.front();
    if (stale(e)) {
      heap_pop_front();
      continue;
    }
    if (e.at > t) break;
    step();
  }
  now_ = t;
}

void Simulator::run_before(TimePoint h) {
  while (!heap_.empty()) {
    const Entry e = heap_.front();
    if (stale(e)) {
      heap_pop_front();
      continue;
    }
    if (e.at >= h) return;
    step();
  }
}

TimePoint Simulator::peek_next_time() {
  while (!heap_.empty() && stale(heap_.front())) heap_pop_front();
  return heap_.empty() ? TimePoint::max() : heap_.front().at;
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::heap_push(Entry e) {
  heap_.push_back(e);
  sift_up(heap_.size() - 1);
}

void Simulator::heap_pop_front() {
  assert(!heap_.empty());
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

void Simulator::sift_up(std::size_t i) {
  const Entry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!earlier(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void Simulator::sift_down(std::size_t i) {
  const Entry e = heap_[i];
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = kArity * i + 1;
    if (first >= n) break;
    const std::size_t last = std::min(first + kArity, n);
    std::size_t best = first;
    for (std::size_t c = first + 1; c < last; ++c)
      if (earlier(heap_[c], heap_[best])) best = c;
    if (!earlier(heap_[best], e)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = e;
}

void Simulator::compact() {
  ++stats_.compactions;
  std::erase_if(heap_, [this](const Entry& e) { return stale(e); });
  if (heap_.size() <= 1) return;
  // Re-heapify bottom-up; ordering is fully determined by (time, seq), so
  // the rebuilt heap dequeues in exactly the same order as the lazy one.
  for (std::size_t i = (heap_.size() - 2) / kArity + 1; i-- > 0;)
    sift_down(i);
}

}  // namespace rtec
