#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/time_types.hpp"

/// \file simulator.hpp
/// Deterministic single-threaded discrete-event simulation kernel. All bus,
/// clock and middleware activity is expressed as timers on this kernel.
///
/// Determinism rules:
///  * time is integer nanoseconds (no float accumulation),
///  * events at equal timestamps run in scheduling order (FIFO tie-break via
///    a monotonically increasing sequence number),
///  * the kernel is single-threaded — there is no hidden concurrency, so a
///    given scenario + seed always produces bit-identical traces.

namespace rtec {

class Simulator {
 public:
  using Callback = std::function<void()>;

  /// Opaque handle for cancelling a scheduled event. Default-constructed
  /// handles are inert.
  class TimerHandle {
   public:
    TimerHandle() = default;
    [[nodiscard]] bool valid() const { return id_ != 0; }

   private:
    friend class Simulator;
    explicit TimerHandle(std::uint64_t id) : id_{id} {}
    std::uint64_t id_ = 0;
  };

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedules `cb` to run at absolute time `t` (>= now, asserted).
  TimerHandle schedule_at(TimePoint t, Callback cb);

  /// Schedules `cb` to run `d` from now (d >= 0, asserted).
  TimerHandle schedule_after(Duration d, Callback cb);

  /// Cancels a scheduled event. Idempotent; harmless on fired/invalid
  /// handles. The handle is invalidated.
  void cancel(TimerHandle& h);

  /// Executes the next pending event (advancing `now`). Returns false when
  /// the queue is empty.
  bool step();

  /// Runs every event with timestamp <= `t`, then sets now = t.
  void run_until(TimePoint t);

  /// Runs until the event queue drains. Scenario code with periodic
  /// re-arming timers must use run_until instead.
  void run();

  /// Number of scheduled (non-cancelled) events.
  [[nodiscard]] std::size_t pending() const { return callbacks_.size(); }

 private:
  struct Entry {
    TimePoint at;
    std::uint64_t seq;
    std::uint64_t id;
    // std::priority_queue is a max-heap; invert so the earliest (time, seq)
    // is on top.
    bool operator<(const Entry& o) const {
      if (at != o.at) return at > o.at;
      return seq > o.seq;
    }
  };

  std::priority_queue<Entry> queue_;
  std::unordered_map<std::uint64_t, Callback> callbacks_;
  TimePoint now_ = TimePoint::origin();
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_id_ = 1;
};

}  // namespace rtec
