#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <type_traits>
#include <vector>

#include "sim/callable.hpp"
#include "util/time_types.hpp"

/// \file simulator.hpp
/// Deterministic single-threaded discrete-event simulation kernel. All bus,
/// clock and middleware activity is expressed as timers on this kernel.
///
/// Determinism rules:
///  * time is integer nanoseconds (no float accumulation),
///  * events at equal timestamps run in scheduling order (FIFO tie-break via
///    a monotonically increasing sequence number),
///  * the kernel is single-threaded — there is no hidden concurrency, so a
///    given scenario + seed always produces bit-identical traces.
///
/// Injected lane (multi-segment sharding, see docs/performance.md §5): an
/// event arriving from *another* kernel (a gateway handoff) is scheduled
/// through schedule_injected() with an explicit (channel, sequence)
/// identity. Injected events order after every locally scheduled event at
/// the same timestamp, then by (channel, sequence) — a total order that
/// depends only on the event's identity, never on *when* the handoff was
/// materialized into this kernel. That independence is what makes the
/// sharded parallel engine (sim/shard_engine.hpp) bit-identical to a
/// sequential single-kernel run: the conservative coordinator may inject a
/// handoff at any barrier preceding its release time without perturbing
/// the delivery order.
///
/// Implementation (see docs/performance.md): a 4-ary min-heap ordered by
/// (time, seq) whose entries reference slab-recycled slots carrying the
/// callback inline (small-buffer optimisation, no allocation on the hot
/// path). Handles are generation-tagged for O(1) lazy cancellation; the
/// heap compacts itself when cancelled entries outnumber live ones.

namespace rtec {

/// Cache-line aligned: under the sharded engine (sim/shard_engine.hpp)
/// each worker thread hammers its shard's kernel header (now_, heap_,
/// free-list heads) every event, so adjacent kernels must not share a
/// line.
class alignas(64) Simulator {
 public:
  /// Legacy alias; `schedule_*` accept any `void()` callable directly and
  /// store small ones without allocation.
  using Callback = std::function<void()>;

  /// Opaque handle for cancelling a scheduled event. Default-constructed
  /// handles are inert. A handle carries its event's packed (seq, slot)
  /// identity; sequence numbers never repeat, so a handle left over from a
  /// fired or cancelled event never aliases a newer one.
  class TimerHandle {
   public:
    TimerHandle() = default;
    [[nodiscard]] bool valid() const { return seqslot_ != 0; }

   private:
    friend class Simulator;
    explicit TimerHandle(std::uint64_t seqslot) : seqslot_{seqslot} {}
    std::uint64_t seqslot_ = 0;
  };

  /// Kernel activity counters, cumulative over the simulator's lifetime.
  /// Plain increments on paths that already touch the same cache lines —
  /// the cost is unmeasurable against heap traffic (bench_kernel).
  struct Stats {
    std::uint64_t scheduled = 0;    ///< local events scheduled
    std::uint64_t injected = 0;     ///< cross-kernel handoffs injected
    std::uint64_t cancelled = 0;    ///< successful cancels (not no-ops)
    std::uint64_t fired = 0;        ///< events executed
    std::uint64_t compactions = 0;  ///< lazy-cancel heap compactions
  };

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  [[nodiscard]] TimePoint now() const { return now_; }

  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Schedules `cb` to run at absolute time `t` (>= now, asserted).
  template <typename F>
  TimerHandle schedule_at(TimePoint t, F&& cb) {
    static_assert(std::is_invocable_v<std::decay_t<F>&>,
                  "callback must be invocable with no arguments");
    assert(t >= now_ && "cannot schedule into the past");
    if constexpr (std::is_constructible_v<bool, const std::decay_t<F>&>)
      assert(static_cast<bool>(cb) && "null callback");
    const std::uint32_t idx = acquire_slot();
    slot(idx).emplace(std::forward<F>(cb), slab_);
    assert(next_seq_ < (std::uint64_t{1} << kSeqBits) &&
           "sequence space exhausted");
    const std::uint64_t seqslot = next_seq_++ << kSlotBits | idx;
    slot_seq_[idx] = seqslot;
    heap_push(Entry{t, seqslot});
    ++live_;
    ++stats_.scheduled;
    return TimerHandle{seqslot};
  }

  /// Schedules `cb` to run `d` from now (d >= 0, asserted).
  template <typename F>
  TimerHandle schedule_after(Duration d, F&& cb) {
    assert(d >= Duration::zero());
    return schedule_at(now_ + d, std::forward<F>(cb));
  }

  /// Schedules a cross-kernel handoff at absolute time `t` (>= now,
  /// asserted). `channel` identifies the handoff channel (unique per
  /// destination kernel) and `seq` the event's position in that channel's
  /// FIFO; together they form the event's identity in the injected
  /// tie-break band: at equal timestamps injected events run after all
  /// locally scheduled ones, ordered by (channel, seq). Handoffs are not
  /// cancellable — the source segment has already committed them.
  template <typename F>
  void schedule_injected(TimePoint t, std::uint32_t channel, std::uint64_t seq,
                         F&& cb) {
    static_assert(std::is_invocable_v<std::decay_t<F>&>,
                  "callback must be invocable with no arguments");
    assert(t >= now_ && "cannot inject into the past");
    assert(channel < (std::uint32_t{1} << kChannelBits) &&
           "handoff channel id space exhausted");
    assert(seq < (std::uint64_t{1} << kChanSeqBits) &&
           "handoff channel sequence space exhausted");
    const std::uint32_t idx = acquire_slot();
    slot(idx).emplace(std::forward<F>(cb), slab_);
    const std::uint64_t seqslot =
        kInjectedBit | std::uint64_t{channel} << (kSlotBits + kChanSeqBits) |
        seq << kSlotBits | idx;
    slot_seq_[idx] = seqslot;
    heap_push(Entry{t, seqslot});
    ++live_;
    ++stats_.injected;
  }

  /// Cancels a scheduled event in O(1) (the heap entry is removed lazily).
  /// Idempotent; harmless on fired/invalid handles. The handle is
  /// invalidated.
  void cancel(TimerHandle& h);

  /// Executes the next pending event (advancing `now`). Returns false when
  /// the queue is empty.
  bool step();

  /// Runs every event with timestamp <= `t`, then sets now = t.
  void run_until(TimePoint t);

  /// Runs every event with timestamp strictly < `h` and leaves `now` at the
  /// last executed event (it does NOT advance to `h`). The conservative
  /// shard coordinator uses this to execute one epoch: handoffs released at
  /// or after the horizon can still be injected afterwards because `now`
  /// never passes them.
  void run_before(TimePoint h);

  /// Timestamp of the next live event, or TimePoint::max() when the queue
  /// is empty. Prunes lazily-cancelled entries from the heap front.
  [[nodiscard]] TimePoint peek_next_time();

  /// Runs until the event queue drains. Scenario code with periodic
  /// re-arming timers must use run_until instead.
  void run();

  /// Number of scheduled (non-cancelled) events.
  [[nodiscard]] std::size_t pending() const { return live_; }

  /// Raw heap entries, including lazily-cancelled ones awaiting compaction
  /// (diagnostics and bounded-memory tests; always >= pending()).
  [[nodiscard]] std::size_t heap_entries() const { return heap_.size(); }

 private:
  /// Heap entries are 16 bytes: the event's identity is one packed word,
  /// `seq << kSlotBits | slot`. The sequence number lives in the high bits
  /// so that comparing packed words at equal timestamps is exactly the FIFO
  /// seq comparison. Halving the entry from the naive 24-byte layout is a
  /// measured win — sift memory traffic dominates pop cost at realistic
  /// queue depths.
  struct Entry {
    TimePoint at;
    std::uint64_t seqslot;
  };

  /// Bit budget for the packed word: 2^39 locally scheduled events per
  /// simulation and 2^24 concurrently live slots (a slot is only reused
  /// after it frees, so slot count tracks the *peak* pending events, which
  /// at 64+ bytes per slot exhausts memory long before the index space).
  /// Both are asserted. The top bit selects the injected lane, whose
  /// identity word is (channel, channel-seq) instead of a local seq:
  ///
  ///   bit 63     | bits 53..62 | bits 24..52  | bits 0..23
  ///   lane (0/1) | channel     | channel seq  | slot index
  ///
  /// With the lane bit in the MSB and seq/channel above the slot index,
  /// comparing packed words at equal timestamps yields exactly the required
  /// order: all local events (FIFO by seq), then all injected events by
  /// (channel, channel seq) — independent of insertion time.
  static constexpr std::uint32_t kSlotBits = 24;
  static constexpr std::uint64_t kSeqBits = 39;
  static constexpr std::uint64_t kChanSeqBits = 29;
  static constexpr std::uint32_t kChannelBits = 10;
  static_assert(1 + kChannelBits + kChanSeqBits + kSlotBits == 64);
  static constexpr std::uint64_t kInjectedBit = std::uint64_t{1} << 63;
  static constexpr std::uint64_t kSlotMask = (std::uint64_t{1} << kSlotBits) - 1;

  static constexpr std::uint32_t slot_of(std::uint64_t seqslot) {
    return static_cast<std::uint32_t>(seqslot & kSlotMask);
  }

  /// Timer slots are one InlineCallable each (a single cache line). They
  /// live in fixed-size chunks (stable addresses, one allocation per 256
  /// slots) and are recycled through a free list. Each slot's *current*
  /// packed identity is mirrored in a separate dense array (`slot_seq_`):
  /// stale-entry checks in the heap paths touch 8 bytes per probe instead
  /// of a whole slot line, and because sequence numbers never repeat, a
  /// stale heap entry or handle can never resurrect a reused slot (the
  /// classic generation-tag scheme with the tag folded into the seq).
  static constexpr std::uint32_t kSlotChunkShift = 8;  // 256 slots per chunk
  static constexpr std::uint32_t kSlotChunkMask = (1u << kSlotChunkShift) - 1;

  [[nodiscard]] detail::InlineCallable& slot(std::uint32_t i) {
    return slot_chunks_[i >> kSlotChunkShift][i & kSlotChunkMask];
  }

  /// Strict (time, seq) ordering — the FIFO tie-break at equal timestamps
  /// (seq occupies the packed word's high bits, so comparing the words
  /// compares seqs).
  static bool earlier(const Entry& a, const Entry& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seqslot < b.seqslot;
  }

  [[nodiscard]] bool stale(const Entry& e) const {
    return slot_seq_[slot_of(e.seqslot)] != e.seqslot;
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);
  void heap_push(Entry e);
  void heap_pop_front();
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  /// Drops all stale entries and re-heapifies; called when cancelled
  /// entries exceed the live ones (so amortised O(1) per cancel).
  void compact();

  static constexpr std::size_t kArity = 4;

  std::vector<Entry> heap_;
  // slab_ must outlive slot_chunks_: slot destructors return their slab
  // blocks (members are destroyed in reverse declaration order).
  detail::CallableSlab slab_;
  std::vector<std::unique_ptr<detail::InlineCallable[]>> slot_chunks_;
  std::uint32_t slot_count_ = 0;  ///< slots constructed across all chunks
  /// Packed identity of each slot's current occupant (0 when free).
  std::vector<std::uint64_t> slot_seq_;
  std::vector<std::uint32_t> free_slots_;
  TimePoint now_ = TimePoint::origin();
  std::uint64_t next_seq_ = 1;
  std::size_t live_ = 0;
  Stats stats_;
};

}  // namespace rtec
