#include "sim/shard_engine.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>

namespace rtec {

namespace {

/// Saturating horizon arithmetic: a drained shard reports
/// TimePoint::max(), and max() + latency must stay "no constraint", not
/// wrap negative.
inline TimePoint saturating_add(TimePoint t, Duration d) {
  if (t > TimePoint::max() - d) return TimePoint::max();
  return t + d;
}

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// Scatter/gather worker pool for one run_until call. Workers pull
/// positions in the engine's active-shard list from a shared counter each
/// epoch (active shards are independent within an epoch, so which worker
/// runs which shard cannot affect results).
///
/// The barrier is adaptive spin-then-park: city-scale runs have epochs of
/// a few microseconds, where a condvar round-trip per epoch costs more
/// than the epoch itself. Both sides first spin on an atomic (bounded,
/// clock-free iteration budget that doubles after a spin hit and halves
/// after a park, so idle phases fall back to the condvar quickly) and
/// only then take the mutex. Happens-before edges (TSan-verified):
/// release/acquire on `epoch_` publishes the coordinator's barrier work
/// (batch drains, horizon/active arrays) to workers; release/acquire on
/// `remaining_` publishes every worker's kernel mutations back to the
/// coordinator. The parked paths re-check their predicate under the
/// mutex, so a notify can never slip between check and sleep.
class EpochPool {
 public:
  EpochPool(unsigned workers, const std::vector<Simulator*>& shards,
            const std::vector<TimePoint>& horizon,
            const std::vector<std::uint32_t>& active)
      : shards_{shards}, horizon_{horizon}, active_{active} {
    threads_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
      threads_.emplace_back([this] { worker(); });
  }

  ~EpochPool() {
    {
      const std::lock_guard<std::mutex> lk{m_};
      stop_.store(true, std::memory_order_release);
    }
    cv_start_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  /// Executes run_before(horizon[s]) for every s in the active list;
  /// returns when all are done.
  void run_epoch() {
    next_item_.store(0, std::memory_order_relaxed);
    remaining_.store(threads_.size(), std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_release);
    if (parked_.load(std::memory_order_seq_cst) != 0) {
      const std::lock_guard<std::mutex> lk{m_};
      cv_start_.notify_all();
    }
    for (int spins = spin_budget_;
         remaining_.load(std::memory_order_acquire) != 0; --spins) {
      if (spins <= 0) {
        std::unique_lock<std::mutex> lk{m_};
        coordinator_waiting_ = true;
        cv_done_.wait(lk, [this] {
          return remaining_.load(std::memory_order_acquire) == 0;
        });
        coordinator_waiting_ = false;
        spin_budget_ = std::max(kMinSpin, spin_budget_ / 2);
        park_waits_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      cpu_relax();
    }
    spin_budget_ = std::min(kMaxSpin, spin_budget_ * 2);
    spin_waits_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Barrier waits resolved without parking (coordinator + workers).
  /// Stable once run_epoch has returned: worker increments happen-before
  /// the remaining_ decrement the coordinator waits on.
  [[nodiscard]] std::uint64_t spin_waits() const {
    return spin_waits_.load(std::memory_order_acquire);
  }
  /// Barrier waits that fell back to the parked condvar path.
  [[nodiscard]] std::uint64_t park_waits() const {
    return park_waits_.load(std::memory_order_acquire);
  }

 private:
  // Iteration-count spin budgets (never wall-clock: src/sim is
  // deterministic-source linted). ~kMaxSpin pause iterations is on the
  // order of a short epoch; beyond that parking is cheaper.
  static constexpr int kMinSpin = 1 << 6;
  static constexpr int kMaxSpin = 1 << 14;

  void worker() {
    std::uint64_t seen = 0;
    int spin_budget = kMinSpin;
    for (;;) {
      bool parked = false;
      for (int spins = spin_budget;
           epoch_.load(std::memory_order_acquire) == seen; --spins) {
        if (stop_.load(std::memory_order_acquire)) return;
        if (spins <= 0) {
          std::unique_lock<std::mutex> lk{m_};
          parked_.fetch_add(1, std::memory_order_seq_cst);
          cv_start_.wait(lk, [&] {
            return stop_.load(std::memory_order_acquire) ||
                   epoch_.load(std::memory_order_acquire) != seen;
          });
          parked_.fetch_sub(1, std::memory_order_relaxed);
          parked = true;
          break;
        }
        cpu_relax();
      }
      if (stop_.load(std::memory_order_acquire)) return;
      // Wait accounting (relaxed: the remaining_ handshake below publishes
      // it); destruction-time waits never reach here.
      (parked ? park_waits_ : spin_waits_)
          .fetch_add(1, std::memory_order_relaxed);
      // The coordinator waits for remaining_ == 0 before starting the
      // next epoch, so at most one bump is outstanding here.
      seen = epoch_.load(std::memory_order_acquire);
      for (std::size_t i =
               next_item_.fetch_add(1, std::memory_order_relaxed);
           i < active_.size();
           i = next_item_.fetch_add(1, std::memory_order_relaxed)) {
        const std::uint32_t s = active_[i];
        shards_[s]->run_before(horizon_[s]);
      }
      if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        const std::lock_guard<std::mutex> lk{m_};
        if (coordinator_waiting_) cv_done_.notify_one();
      }
      spin_budget = parked ? std::max(kMinSpin, spin_budget / 2)
                           : std::min(kMaxSpin, spin_budget * 2);
    }
  }

  const std::vector<Simulator*>& shards_;
  const std::vector<TimePoint>& horizon_;
  const std::vector<std::uint32_t>& active_;
  std::vector<std::thread> threads_;
  std::mutex m_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::size_t> next_item_{0};
  std::atomic<std::size_t> remaining_{0};
  std::atomic<unsigned> parked_{0};
  std::atomic<std::uint64_t> spin_waits_{0};
  std::atomic<std::uint64_t> park_waits_{0};
  bool coordinator_waiting_ = false;  ///< guarded by m_
  std::atomic<bool> stop_{false};
  int spin_budget_ = kMinSpin;  ///< coordinator-side, adapted per epoch
};

}  // namespace

HandoffChannel& ShardEngine::link(std::size_t from, std::size_t to,
                                  Duration latency) {
  assert(from < shards_.size() && to < shards_.size());
  HandoffBatch* batch = nullptr;
  if (from != to) {
    has_cross_shard_ = true;
    lookahead_ = std::min(lookahead_, latency);
    const auto [it, inserted] =
        direction_index_.try_emplace(std::pair{from, to}, directions_.size());
    if (inserted) {
      directions_.push_back(Direction{
          from, to, latency, std::make_unique<HandoffBatch>(*shards_[to])});
    } else {
      Direction& d = directions_[it->second];
      d.min_latency = std::min(d.min_latency, latency);
    }
    batch = directions_[it->second].batch.get();
    incoming_dirty_ = true;
  }
  assert(channels_.size() < (std::size_t{1} << 10) &&
         "handoff channel id space exhausted (Simulator::kChannelBits)");
  channels_.push_back(std::make_unique<HandoffChannel>(
      *shards_[to], static_cast<std::uint32_t>(channels_.size()), latency,
      batch));
  return *channels_.back();
}

Duration ShardEngine::incoming_lookahead(std::size_t shard) const {
  Duration l = Duration::max();
  for (const Direction& d : directions_)
    if (d.to == shard) l = std::min(l, d.min_latency);
  return l;
}

void ShardEngine::rebuild_incoming() {
  incoming_.assign(shards_.size(), {});
  outgoing_.assign(shards_.size(), {});
  for (const Direction& d : directions_) {
    incoming_[d.to].push_back(Edge{d.from, d.min_latency});
    outgoing_[d.from].push_back(Edge{d.to, d.min_latency});
  }
  incoming_dirty_ = false;
}

TimePoint ShardEngine::drain_and_peek() {
  for (Direction& d : directions_) {
    const std::size_t n = d.batch->drain();
    stats_.handoffs += n;
    if (n > 0) {
      ++stats_.handoff_batches;
      stats_.handoff_bytes += n * HandoffBatch::pending_bytes();
    }
  }
  TimePoint next_min = TimePoint::max();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    next_[i] = shards_[i]->peek_next_time();
    next_min = std::min(next_min, next_[i]);
  }
  return next_min;
}

void ShardEngine::compute_horizons(TimePoint end_excl, TimePoint next_min) {
  active_.clear();
  const TimePoint global_h =
      has_cross_shard_
          ? std::min(end_excl, saturating_add(next_min, lookahead_))
          : end_excl;
  if (mode_ == LookaheadMode::kPerLink && has_cross_shard_) {
    // Earliest output time of each shard: the least fixpoint of
    //   ET_j = min(N_j, min over incoming (k -> j) of ET_k + L_kj),
    // i.e. multi-source Dijkstra over the positive-latency link graph
    // seeded with the pending-event times. A shard's pending queue alone
    // (N_j) is NOT a sound bound on what it may yet execute: it can
    // receive a handoff below N_j and relay it, so transitive chains must
    // be closed over. Saturated sources (drained shards, N == max) relax
    // to whatever reaches them through links.
    et_ = next_;
    // (time, shard), min-first; lazy deletion via the et_ check below.
    std::priority_queue<std::pair<TimePoint, std::size_t>,
                        std::vector<std::pair<TimePoint, std::size_t>>,
                        std::greater<>>
        q;
    for (std::size_t i = 0; i < shards_.size(); ++i)
      if (et_[i] < TimePoint::max()) q.emplace(et_[i], i);
    while (!q.empty()) {
      const auto [t, j] = q.top();
      q.pop();
      if (t > et_[j]) continue;
      for (const Edge& out : outgoing_[j]) {
        const TimePoint reach = saturating_add(t, out.latency);
        if (reach < et_[out.peer]) {
          et_[out.peer] = reach;
          q.emplace(reach, out.peer);
        }
      }
    }
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    TimePoint h = end_excl;
    if (mode_ == LookaheadMode::kGlobalMin) {
      h = global_h;
    } else {
      // H_i = min over incoming links (j -> i) of ET_j + L_ji. A feeder
      // nothing can ever reach (ET_j == max) imposes no constraint.
      for (const Edge& in : incoming_[i])
        h = std::min(h, saturating_add(et_[in.peer], in.latency));
    }
    horizon_[i] = h;
    if (next_[i] < h) {
      active_.push_back(static_cast<std::uint32_t>(i));
      ++stats_.per_shard_runs[i];
      // h <= end_excl < max and next_[i] < h, so the advance is a positive
      // int64; log2 bucket = position of its highest set bit.
      const auto advance = static_cast<std::uint64_t>((h - next_[i]).ns());
      ++stats_.horizon_advance_log2[static_cast<std::size_t>(
          std::bit_width(advance) - 1)];
    } else if (next_[i] < TimePoint::max()) {
      // Pending work but no safe horizon this epoch: the idle time the
      // speedup investigation wants attributed.
      ++stats_.shard_skips;
      ++stats_.per_shard_skips[i];
    }
  }
  // Progress: the shard holding next_min has ET == next_min (positive
  // latencies cannot lower it further), so every bound on it is at least
  // next_min + L > next_min and it is always active.
  assert(!active_.empty());
}

void ShardEngine::run_until(TimePoint t) {
  assert(t < TimePoint::max());
  const auto workers = static_cast<unsigned>(
      std::min<std::size_t>(threads_, shards_.size()));
  // The horizon bound is exclusive; run_before(t + 1ns) executes every
  // event with timestamp <= t, i.e. run_until(t) semantics.
  const TimePoint end_excl = t + Duration::nanoseconds(1);

  if (incoming_dirty_ || incoming_.size() != shards_.size())
    rebuild_incoming();
  next_.assign(shards_.size(), TimePoint::max());
  horizon_.assign(shards_.size(), TimePoint::max());
  active_.clear();
  active_.reserve(shards_.size());
  if (stats_.per_shard_runs.size() != shards_.size()) {
    stats_.per_shard_runs.resize(shards_.size(), 0);
    stats_.per_shard_skips.resize(shards_.size(), 0);
  }

  std::unique_ptr<EpochPool> pool;
  if (workers > 1)
    pool = std::make_unique<EpochPool>(workers, shards_, horizon_, active_);

  TimePoint prev_min = TimePoint::max();  // sentinel: no epoch yet
  for (;;) {
    const TimePoint next_min = drain_and_peek();
    if (next_min > t) break;
    if (epoch_span_ != nullptr && prev_min != TimePoint::max())
      epoch_span_->record((next_min - prev_min).ns());
    prev_min = next_min;
    compute_horizons(end_excl, next_min);
    ++stats_.epochs;
    stats_.shard_runs += active_.size();
    if (pool && active_.size() > 1) {
      pool->run_epoch();
    } else {
      // Serial path (and single-active-shard epochs, where the barrier
      // round-trip would cost more than it buys): index order, which is
      // irrelevant to results — active shards are independent within an
      // epoch.
      for (const std::uint32_t s : active_) shards_[s]->run_before(horizon_[s]);
    }
  }
  if (pool) {
    stats_.barrier_spins += pool->spin_waits();
    stats_.barrier_parks += pool->park_waits();
  }
  // All events <= t have executed and every pending handoff releasing
  // <= t has been injected (loop invariant); park each kernel at t.
  for (Simulator* s : shards_) s->run_until(t);
}

void ShardEngine::reset_stats() {
  stats_ = Stats{};
  stats_.per_shard_runs.assign(shards_.size(), 0);
  stats_.per_shard_skips.assign(shards_.size(), 0);
}

void ShardEngine::set_profiler(SpanProfiler* p) {
  epoch_span_ = p != nullptr ? p->slot("engine.epoch_advance") : nullptr;
}

}  // namespace rtec
