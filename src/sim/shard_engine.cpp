#include "sim/shard_engine.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace rtec {

namespace {

/// Scatter/gather worker pool for one run_until call. Workers pull shard
/// indices from a shared counter each epoch (shards are independent within
/// an epoch, so which worker runs which shard cannot affect results) and
/// the epoch barrier's mutex gives the coordinator↔worker happens-before
/// edges: channel buffers written by a worker are visible to the
/// coordinator's flush, and injected events are visible to next epoch's
/// workers.
class EpochPool {
 public:
  EpochPool(unsigned workers, std::vector<Simulator*>& shards)
      : shards_{shards} {
    threads_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
      threads_.emplace_back([this] { worker(); });
  }

  ~EpochPool() {
    {
      const std::lock_guard<std::mutex> lk{m_};
      stop_ = true;
    }
    cv_start_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  /// Executes run_before(h) on every shard; returns when all are done.
  void run_epoch(TimePoint h) {
    {
      const std::lock_guard<std::mutex> lk{m_};
      horizon_ = h;
      next_shard_.store(0, std::memory_order_relaxed);
      remaining_ = threads_.size();
      ++epoch_;
    }
    cv_start_.notify_all();
    std::unique_lock<std::mutex> lk{m_};
    cv_done_.wait(lk, [this] { return remaining_ == 0; });
  }

 private:
  void worker() {
    std::uint64_t seen = 0;
    for (;;) {
      TimePoint h;
      {
        std::unique_lock<std::mutex> lk{m_};
        cv_start_.wait(lk, [&] { return stop_ || epoch_ != seen; });
        if (stop_) return;
        seen = epoch_;
        h = horizon_;
      }
      for (std::size_t i = next_shard_.fetch_add(1, std::memory_order_relaxed);
           i < shards_.size();
           i = next_shard_.fetch_add(1, std::memory_order_relaxed))
        shards_[i]->run_before(h);
      {
        const std::lock_guard<std::mutex> lk{m_};
        if (--remaining_ == 0) cv_done_.notify_one();
      }
    }
  }

  std::vector<Simulator*>& shards_;
  std::vector<std::thread> threads_;
  std::mutex m_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  TimePoint horizon_;
  std::atomic<std::size_t> next_shard_{0};
  std::size_t remaining_ = 0;
  std::uint64_t epoch_ = 0;
  bool stop_ = false;
};

}  // namespace

HandoffChannel& ShardEngine::link(std::size_t from, std::size_t to,
                                  Duration latency) {
  assert(from < shards_.size() && to < shards_.size());
  const bool buffered = from != to;
  channels_.push_back(std::make_unique<HandoffChannel>(
      *shards_[to], static_cast<std::uint32_t>(channels_.size()), latency,
      buffered));
  if (buffered) {
    has_cross_shard_ = true;
    lookahead_ = std::min(lookahead_, latency);
  }
  return *channels_.back();
}

TimePoint ShardEngine::inject_and_peek() {
  for (const auto& c : channels_) {
    stats_.handoffs += c->pending();
    c->flush();
  }
  TimePoint next = TimePoint::max();
  for (Simulator* s : shards_) next = std::min(next, s->peek_next_time());
  return next;
}

void ShardEngine::run_until(TimePoint t) {
  assert(t < TimePoint::max());
  const auto workers = static_cast<unsigned>(
      std::min<std::size_t>(threads_, shards_.size()));
  // The horizon bound is exclusive; run_before(t + 1ns) executes every
  // event with timestamp <= t, i.e. run_until(t) semantics.
  const TimePoint end_excl = t + Duration::nanoseconds(1);

  std::unique_ptr<EpochPool> pool;
  if (workers > 1) pool = std::make_unique<EpochPool>(workers, shards_);

  for (;;) {
    const TimePoint next = inject_and_peek();
    if (next > t) break;
    TimePoint h = end_excl;
    if (has_cross_shard_ && next + lookahead_ < h) h = next + lookahead_;
    ++stats_.epochs;
    if (pool) {
      pool->run_epoch(h);
    } else {
      for (Simulator* s : shards_) s->run_before(h);
    }
  }
  // All events <= t have executed and every pending handoff releasing
  // <= t has been injected (loop invariant); park each kernel at t.
  for (Simulator* s : shards_) s->run_until(t);
}

}  // namespace rtec
