#include "baselines/dual_priority.hpp"

#include <cassert>

namespace rtec {

DualPrioritySender::DualPrioritySender(Simulator& sim,
                                       CanController& controller, Config cfg)
    : sim_{sim}, controller_{controller}, cfg_{cfg} {
  assert(cfg.high_min < cfg.low_min);
}

void DualPrioritySender::queue(NodeId node, Etag etag,
                               std::uint8_t static_priority, int dlc,
                               TimePoint deadline, Duration promotion_lead) {
  const std::uint64_t uid = next_uid_++;
  Pending p;
  p.frame.id = encode_can_id(
      {static_cast<Priority>(cfg_.low_min + static_priority), node, etag});
  p.frame.dlc = static_cast<std::uint8_t>(dlc);
  p.frame.data.fill(0xAA);  // match StaticPrioritySender's frame length
  p.high_priority = static_cast<Priority>(cfg_.high_min + static_priority);
  p.deadline = deadline;
  p.uid = uid;
  pending_.emplace(uid, p);

  const TimePoint promote_at = deadline - promotion_lead;
  const NodeId node_copy = node;
  const Etag etag_copy = etag;
  sim_.schedule_at(promote_at < sim_.now() ? sim_.now() : promote_at,
                   [this, uid, node_copy, etag_copy] {
                     const std::uint32_t high_id = [&] {
                       const auto it = pending_.find(uid);
                       const Priority hp = it != pending_.end()
                                               ? it->second.high_priority
                                               : Priority{0};
                       return encode_can_id({hp, node_copy, etag_copy});
                     }();
                     if (in_flight_ && in_flight_uid_ == uid && mailbox_) {
                       if (controller_.rewrite_id(*mailbox_, high_id))
                         ++outcome_.promotions;
                       return;
                     }
                     const auto it = pending_.find(uid);
                     if (it == pending_.end()) return;  // already sent
                     it->second.frame.id = high_id;
                     ++outcome_.promotions;
                   });
  pump();
}

void DualPrioritySender::pump() {
  if (in_flight_ || pending_.empty()) return;
  // Stage the most dominant current identifier (what a multi-mailbox
  // controller would offer to arbitration).
  auto best = pending_.begin();
  for (auto it = pending_.begin(); it != pending_.end(); ++it)
    if (it->second.frame.id < best->second.frame.id) best = it;

  const Pending p = best->second;
  const auto r = controller_.submit(
      p.frame, TxMode::kAutoRetransmit,
      [this](CanController::MailboxId, const CanFrame&, bool success,
             TimePoint end) {
        in_flight_ = false;
        mailbox_.reset();
        if (success) {
          ++outcome_.sent;
          if (end <= in_flight_deadline_) ++outcome_.sent_by_deadline;
        }
        pump();
      });
  if (!r) return;
  pending_.erase(best);
  in_flight_ = true;
  in_flight_uid_ = p.uid;
  mailbox_ = *r;
  in_flight_deadline_ = p.deadline;
}

}  // namespace rtec
