#pragma once

#include <cstdint>
#include <map>

#include "canbus/controller.hpp"
#include "sched/id_codec.hpp"
#include "sim/simulator.hpp"
#include "util/time_types.hpp"

/// \file dual_priority.hpp
/// Dual-priority baseline after Davis (YCS 230, 1994), one of the flexible
/// schemes §4 compares against: each message starts in a *low* priority
/// band and is promoted exactly once — at (deadline − promotion lead) — to
/// its static priority in the *high* band. Between the bands, best-effort
/// traffic can run. Unlike the paper's EDF mapping, the high-band priority
/// is static per stream, and there is only the single promotion step, so
/// the scheme's effective time horizon is the promotion lead itself.

namespace rtec {

class DualPrioritySender {
 public:
  struct Config {
    /// High band: [high_min, low_min) — promoted messages live here with
    /// their static per-stream priority.
    Priority high_min = kSrtPriorityMin;
    /// Low band starting priority for unpromoted messages.
    Priority low_min = 128;
  };

  DualPrioritySender(Simulator& sim, CanController& controller, Config cfg);

  struct Outcome {
    std::uint64_t sent = 0;
    std::uint64_t sent_by_deadline = 0;
    std::uint64_t promotions = 0;
  };

  /// Queues a message: starts at (low_min + static_priority), promoted to
  /// (high_min + static_priority) at `deadline - promotion_lead`.
  void queue(NodeId node, Etag etag, std::uint8_t static_priority, int dlc,
             TimePoint deadline, Duration promotion_lead);

  [[nodiscard]] const Outcome& outcome() const { return outcome_; }
  [[nodiscard]] std::size_t backlog() const { return pending_.size(); }

 private:
  struct Pending {
    CanFrame frame;
    Priority high_priority;
    TimePoint deadline;
    std::uint64_t uid;
  };
  void pump();

  Simulator& sim_;
  CanController& controller_;
  Config cfg_;
  std::map<std::uint64_t, Pending> pending_;  // FIFO by uid
  bool in_flight_ = false;
  std::uint64_t in_flight_uid_ = 0;
  std::optional<CanController::MailboxId> mailbox_;
  TimePoint in_flight_deadline_;
  std::uint64_t next_uid_ = 1;
  Outcome outcome_;
};

}  // namespace rtec
