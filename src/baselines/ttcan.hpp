#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "canbus/controller.hpp"
#include "sim/simulator.hpp"
#include "util/time_types.hpp"

/// \file ttcan.hpp
/// TTCAN-like time-triggered baseline (Führer et al., iCC 2000), modelling
/// exactly the two behaviours the paper contrasts with its own scheme
/// (§3.2, §4):
///
///  1. *Exclusive windows* belong to one sender; no other node may start a
///     transmission inside them — when the owner has nothing to send the
///     window's bandwidth is lost (no reclamation).
///  2. *Jitter avoidance by filling the slot*: the owner transmits its
///     message (and all its redundant copies, up to the configured
///     omission degree) regardless of earlier success — "this fills up the
///     reserved slot and avoids jitter but for the price of valuable
///     bandwidth".
///  3. *Arbitration windows* are the only place asynchronous (soft/non
///     real-time) traffic may contend, and a frame may only start if it is
///     guaranteed to finish before the window closes.
///
/// The driver runs on the same bus/controller substrate as the event
/// channel middleware, with a perfect global clock (TTCAN level-2 time
/// sync is idealized away — this only *favours* the baseline).

namespace rtec {

struct TtcanWindow {
  enum class Kind : std::uint8_t { kExclusive, kArbitration };
  Kind kind = Kind::kArbitration;
  Duration offset = Duration::zero();  ///< from basic-cycle start
  Duration length = Duration::zero();
  NodeId owner = 0;      ///< exclusive: the only permitted sender
  int copies = 1;        ///< exclusive: redundant transmissions (k+1)
};

struct TtcanSchedule {
  Duration basic_cycle = Duration::milliseconds(10);
  BusConfig bus{};  ///< for worst-case fit checks in arbitration windows
  std::vector<TtcanWindow> windows;
};

/// Per-node TTCAN driver: gates all transmissions of this node into the
/// windows the schedule allows.
class TtcanDriver {
 public:
  /// Called when an exclusive window owned by this node opens; returns the
  /// frame to send, or nullopt when there is no fresh data (the window then
  /// stays idle — that bandwidth is lost by design).
  using ExclusiveSource = std::function<std::optional<CanFrame>(std::size_t window,
                                                                std::uint64_t cycle)>;

  TtcanDriver(Simulator& sim, CanController& controller,
              const TtcanSchedule& schedule);

  /// Registers the data source for exclusive windows owned by this node.
  void set_exclusive_source(ExclusiveSource source);

  /// Queues an asynchronous frame; it will be sent in the next arbitration
  /// window with enough remaining room.
  void queue_async(const CanFrame& frame);

  void start();

  [[nodiscard]] std::uint64_t exclusive_sent() const { return exclusive_sent_; }
  [[nodiscard]] std::uint64_t async_sent() const { return async_sent_; }
  [[nodiscard]] std::size_t async_backlog() const { return async_.size(); }

 private:
  void on_window_open(std::size_t index, std::uint64_t cycle);
  void pump_async(std::size_t index, TimePoint window_end);
  void arm(std::size_t index, std::uint64_t cycle);

  Simulator& sim_;
  CanController& controller_;
  TtcanSchedule schedule_;
  ExclusiveSource exclusive_source_;
  /// The in-progress redundant-copy chain of the current exclusive window
  /// (exclusive windows of one owner never overlap, so one slot suffices;
  /// member storage keeps the self-referencing callable cycle-free).
  std::function<void(int)> copy_sender_;
  std::deque<CanFrame> async_;
  bool async_in_flight_ = false;
  std::uint64_t exclusive_sent_ = 0;
  std::uint64_t async_sent_ = 0;
  bool running_ = false;
};

}  // namespace rtec
