#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "canbus/controller.hpp"
#include "sched/id_codec.hpp"
#include "sim/simulator.hpp"
#include "util/time_types.hpp"

/// \file ftt_can.hpp
/// FTT-CAN-like baseline (Almeida/Fonseca/Fonseca, RTSS'98 WIP; paper §4):
/// flexible time-triggered communication driven by a *master*.
///
/// Time is divided into Elementary Cycles (ECs). At the start of each EC
/// the master broadcasts a Trigger Message (TM) whose payload encodes
/// which synchronous streams must transmit in this EC (the master can
/// re-plan every cycle — that is the "flexible" part). The EC is split
/// into a synchronous window (the polled streams contend by their CAN
/// ids, all of which beat asynchronous ids) and an asynchronous window
/// for everything else.
///
/// The paper's criticism, which this model reproduces faithfully:
///  * the master is a single point of failure — if its node dies, NO
///    synchronous traffic flows at all (slaves only send when polled);
///  * asynchronous traffic may only start inside the async window with
///    room to finish before the next TM.
///
/// The TM encodes up to 8 stream indices (one byte each, 0xff = unused) —
/// enough for the comparison scenarios.

namespace rtec {

struct FttStream {
  std::uint8_t index = 0;   ///< identity used in the trigger message
  NodeId node = 0;          ///< producing node
  int dlc = 8;
  Duration period;          ///< master schedules the stream at this period
};

struct FttConfig {
  Duration elementary_cycle = Duration::milliseconds(5);
  /// Start of the asynchronous window within the EC (after TM + sync
  /// window).
  Duration async_window_offset = Duration::milliseconds(2);
  BusConfig bus{};
  /// CAN id of the trigger message (most dominant id in the system).
  std::uint32_t tm_id = 0x1;
};

/// The scheduling master: plans and broadcasts the TM each EC.
class FttMaster {
 public:
  FttMaster(Simulator& sim, CanController& controller, FttConfig cfg);

  /// Registers a synchronous stream the master will poll periodically.
  void add_stream(const FttStream& stream);

  void start();
  void stop();

  [[nodiscard]] std::uint64_t cycles() const { return cycles_; }

 private:
  void run_cycle();

  Simulator& sim_;
  CanController& controller_;
  FttConfig cfg_;
  std::vector<FttStream> streams_;
  std::vector<Duration> elapsed_;  ///< time since each stream's last poll
  Simulator::TimerHandle timer_;
  std::uint64_t cycles_ = 0;
  bool running_ = false;
};

/// A producing/consuming slave node.
class FttSlave {
 public:
  /// Supplies the payload when stream `index` is polled; nullopt = no
  /// fresh data (the polled slot stays unused).
  using SyncSource =
      std::function<std::optional<CanFrame>(std::uint8_t index)>;

  FttSlave(Simulator& sim, CanController& controller, FttConfig cfg);

  /// Claims a stream index produced by this node.
  void produce(std::uint8_t index, SyncSource source);

  /// Queues an asynchronous frame for the next async window with room.
  void queue_async(const CanFrame& frame);

  [[nodiscard]] std::uint64_t sync_sent() const { return sync_sent_; }
  [[nodiscard]] std::uint64_t async_sent() const { return async_sent_; }
  [[nodiscard]] std::uint64_t polls_seen() const { return polls_seen_; }

 private:
  void on_frame(const CanFrame& frame, TimePoint now);
  void pump_async(TimePoint window_end);

  Simulator& sim_;
  CanController& controller_;
  FttConfig cfg_;
  std::map<std::uint8_t, SyncSource> produced_;
  std::deque<CanFrame> async_;
  bool async_in_flight_ = false;
  std::uint64_t sync_sent_ = 0;
  std::uint64_t async_sent_ = 0;
  std::uint64_t polls_seen_ = 0;
};

}  // namespace rtec
