#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "canbus/can_types.hpp"
#include "canbus/controller.hpp"
#include "sched/id_codec.hpp"
#include "sim/simulator.hpp"
#include "util/time_types.hpp"

/// \file fixed_priority.hpp
/// Fixed-priority CAN baseline after Tindell & Burns (iCC 1994), the
/// deadline-monotonic comparison point of the paper's §4: every message
/// stream gets one static priority for its lifetime; an offline
/// response-time analysis decides feasibility. Supports only static
/// systems and "does not distinguish hard and soft deadlines".

namespace rtec {

/// Static description of one periodic/sporadic message stream.
struct StreamSpec {
  int id = 0;              ///< stream identity (becomes the etag field)
  NodeId node = 0;         ///< sending node
  Duration period;         ///< period / minimum inter-arrival
  Duration deadline;       ///< relative deadline (<= period for the RTA)
  int dlc = 8;
};

/// Deadline-monotonic priority order: shorter deadline → more dominant
/// priority. Returns the streams sorted and their assigned priorities
/// (within the SRT band so the comparison runs on the same identifier
/// layout). Ties break by stream id.
struct PriorityAssignment {
  StreamSpec stream;
  Priority priority = 0;
};
[[nodiscard]] std::vector<PriorityAssignment> deadline_monotonic_assignment(
    std::vector<StreamSpec> streams, Priority first = kSrtPriorityMin);

/// Classic CAN response-time analysis (Tindell/Burns):
///   R_i = w_i + C_i,   w_i = B_i + Σ_{j ∈ hp(i)} ⌈(w_i + τ_bit)/T_j⌉ C_j
/// with B_i = the longest lower-priority frame (non-preemptable blocking).
/// Returns the worst-case response time per stream in the given priority
/// order (index-aligned with `assignment`), or nullopt for streams whose
/// recurrence diverges past their deadline (infeasible).
[[nodiscard]] std::vector<std::optional<Duration>> response_time_analysis(
    const std::vector<PriorityAssignment>& assignment, const BusConfig& bus);

/// True when every stream's worst-case response time meets its deadline.
[[nodiscard]] bool feasible(const std::vector<PriorityAssignment>& assignment,
                            const BusConfig& bus);

/// Runtime driver: sends each queued message at its stream's static
/// priority (auto-retransmit). One mailbox at a time per driver, FIFO by
/// priority then arrival, mirroring the SRT engine's staging discipline so
/// the comparison isolates the scheduling policy.
class StaticPrioritySender {
 public:
  StaticPrioritySender(Simulator& sim, CanController& controller);

  struct Outcome {
    std::uint64_t sent = 0;
    std::uint64_t sent_by_deadline = 0;
  };

  /// Queues a message of `spec` with the given assigned priority and
  /// absolute deadline (for accounting only — priority never changes).
  void queue(const StreamSpec& spec, Priority priority, TimePoint deadline,
             TimePoint now);

  [[nodiscard]] const Outcome& outcome() const { return outcome_; }
  [[nodiscard]] std::size_t backlog() const { return queue_.size(); }

  /// Drops every queued message whose deadline+grace has passed (models an
  /// expiration policy equivalent to the SRT engine's, so overload
  /// comparisons are apples-to-apples). Returns how many were dropped.
  std::size_t drop_expired(TimePoint now, Duration grace);

 private:
  struct Pending {
    CanFrame frame;
    Priority priority;
    TimePoint deadline;
  };
  void pump();

  Simulator& sim_;
  CanController& controller_;
  std::vector<Pending> queue_;  // kept sorted by (priority, arrival)
  bool in_flight_ = false;
  TimePoint in_flight_deadline_;
  Outcome outcome_;
};

}  // namespace rtec
