#include "baselines/fixed_priority.hpp"

#include <algorithm>
#include <cassert>

#include "canbus/frame.hpp"

namespace rtec {

std::vector<PriorityAssignment> deadline_monotonic_assignment(
    std::vector<StreamSpec> streams, Priority first) {
  std::sort(streams.begin(), streams.end(),
            [](const StreamSpec& a, const StreamSpec& b) {
              if (a.deadline != b.deadline) return a.deadline < b.deadline;
              return a.id < b.id;
            });
  std::vector<PriorityAssignment> out;
  out.reserve(streams.size());
  Priority p = first;
  for (const StreamSpec& s : streams) {
    assert(p <= kSrtPriorityMax && "more streams than priority levels");
    out.push_back({s, p});
    ++p;
  }
  return out;
}

std::vector<std::optional<Duration>> response_time_analysis(
    const std::vector<PriorityAssignment>& assignment, const BusConfig& bus) {
  const auto c_of = [&](const StreamSpec& s) {
    return worst_case_frame_duration(s.dlc, /*extended=*/true, bus);
  };
  std::vector<std::optional<Duration>> result(assignment.size());

  for (std::size_t i = 0; i < assignment.size(); ++i) {
    const StreamSpec& me = assignment[i].stream;
    const Duration ci = c_of(me);

    // Blocking: longest frame of any lower-priority stream (worst case: a
    // full 8-byte frame if unknown lower-priority traffic exists — we use
    // the declared set).
    Duration blocking = Duration::zero();
    for (std::size_t j = i + 1; j < assignment.size(); ++j)
      blocking = std::max(blocking, c_of(assignment[j].stream));

    Duration w = blocking;
    bool converged = false;
    for (int iter = 0; iter < 1000; ++iter) {
      Duration next = blocking;
      for (std::size_t j = 0; j < i; ++j) {
        const StreamSpec& hp = assignment[j].stream;
        const std::int64_t n =
            (w.ns() + bus.bit_time().ns() + hp.period.ns() - 1) / hp.period.ns();
        next += c_of(hp) * n;
      }
      if (next == w) {
        converged = true;
        break;
      }
      w = next;
      if (w + ci > me.deadline) break;  // already infeasible
    }
    if (converged && w + ci <= me.deadline) {
      result[i] = w + ci;
    } else {
      result[i] = std::nullopt;
    }
  }
  return result;
}

bool feasible(const std::vector<PriorityAssignment>& assignment,
              const BusConfig& bus) {
  for (const auto& r : response_time_analysis(assignment, bus))
    if (!r) return false;
  return true;
}

StaticPrioritySender::StaticPrioritySender(Simulator& sim,
                                           CanController& controller)
    : sim_{sim}, controller_{controller} {}

void StaticPrioritySender::queue(const StreamSpec& spec, Priority priority,
                                 TimePoint deadline, TimePoint now) {
  (void)now;
  CanFrame f;
  f.id = encode_can_id(
      {priority, spec.node, static_cast<Etag>(spec.id & kMaxEtag)});
  f.dlc = static_cast<std::uint8_t>(spec.dlc);
  f.data.fill(0xAA);  // representative payload; keeps frame lengths
                      // comparable across scheduler baselines
  // Insert keeping (priority, arrival) order: stable position after the
  // last entry with priority <= ours.
  auto it = std::find_if(queue_.begin(), queue_.end(),
                         [&](const Pending& p) { return p.priority > priority; });
  queue_.insert(it, Pending{f, priority, deadline});
  pump();
}

std::size_t StaticPrioritySender::drop_expired(TimePoint now, Duration grace) {
  const std::size_t before = queue_.size();
  std::erase_if(queue_, [&](const Pending& p) {
    return p.deadline + grace < now;
  });
  return before - queue_.size();
}

void StaticPrioritySender::pump() {
  if (in_flight_ || queue_.empty()) return;
  const Pending next = queue_.front();
  const auto r = controller_.submit(
      next.frame, TxMode::kAutoRetransmit,
      [this](CanController::MailboxId, const CanFrame&, bool success,
             TimePoint end) {
        in_flight_ = false;
        if (success) {
          ++outcome_.sent;
          if (end <= in_flight_deadline_) ++outcome_.sent_by_deadline;
        }
        pump();
      });
  if (!r) return;  // controller saturated; retried on next queue()/pump()
  queue_.erase(queue_.begin());
  in_flight_ = true;
  in_flight_deadline_ = next.deadline;
}

}  // namespace rtec
