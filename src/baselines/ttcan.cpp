#include "baselines/ttcan.hpp"

#include <cassert>
#include <memory>

#include "canbus/frame.hpp"

namespace rtec {

TtcanDriver::TtcanDriver(Simulator& sim, CanController& controller,
                         const TtcanSchedule& schedule)
    : sim_{sim}, controller_{controller}, schedule_{schedule} {
  assert(schedule_.basic_cycle > Duration::zero());
}

void TtcanDriver::set_exclusive_source(ExclusiveSource source) {
  exclusive_source_ = std::move(source);
}

void TtcanDriver::queue_async(const CanFrame& frame) {
  async_.push_back(frame);
}

void TtcanDriver::start() {
  if (running_) return;
  running_ = true;
  for (std::size_t i = 0; i < schedule_.windows.size(); ++i) arm(i, 0);
}

void TtcanDriver::arm(std::size_t index, std::uint64_t cycle) {
  const TtcanWindow& w = schedule_.windows[index];
  const TimePoint at = TimePoint::origin() +
                       schedule_.basic_cycle * static_cast<std::int64_t>(cycle) +
                       w.offset;
  sim_.schedule_at(at, [this, index, cycle] {
    on_window_open(index, cycle);
    arm(index, cycle + 1);
  });
}

void TtcanDriver::on_window_open(std::size_t index, std::uint64_t cycle) {
  const TtcanWindow& w = schedule_.windows[index];
  const TimePoint window_end = sim_.now() + w.length;

  if (w.kind == TtcanWindow::Kind::kExclusive) {
    if (w.owner != controller_.node() || !exclusive_source_) return;
    const auto frame = exclusive_source_(index, cycle);
    if (!frame) return;  // empty exclusive window: bandwidth lost by design

    // Send all `copies` transmissions back-to-back, success or not — the
    // TTCAN-style "fill the reserved slot" redundancy.
    copy_sender_ = [this, frame](int remaining) {
      if (remaining <= 0) return;
      (void)controller_.submit(
          *frame, TxMode::kSingleShot,
          [this, remaining](CanController::MailboxId, const CanFrame&,
                            bool success, TimePoint) {
            if (success) ++exclusive_sent_;
            copy_sender_(remaining - 1);
          });
    };
    copy_sender_(w.copies);
    return;
  }

  // Arbitration window: release queued async traffic, gated so no frame
  // can overrun into the following exclusive window.
  pump_async(index, window_end);
}

void TtcanDriver::pump_async(std::size_t index, TimePoint window_end) {
  if (async_in_flight_ || async_.empty()) return;
  const CanFrame frame = async_.front();
  const Duration worst =
      worst_case_frame_duration(frame.dlc, frame.extended, schedule_.bus) +
      schedule_.bus.bit_time() * kIntermissionBits;
  if (sim_.now() + worst > window_end) return;  // would not fit

  const auto mb = controller_.submit(
      frame, TxMode::kAutoRetransmit,
      [this, index, window_end](CanController::MailboxId, const CanFrame&,
                                bool success, TimePoint) {
        async_in_flight_ = false;
        if (success) {
          ++async_sent_;
          async_.pop_front();
        }
        pump_async(index, window_end);
      });
  if (!mb) return;
  async_in_flight_ = true;

  // Safety gate: if the frame has not left by the last safe start instant
  // (it kept losing arbitration), pull it back for the next window.
  const CanController::MailboxId mailbox = *mb;
  sim_.schedule_at(window_end - worst, [this, mailbox] {
    if (controller_.abort(mailbox)) async_in_flight_ = false;
  });
}

}  // namespace rtec
