#include "baselines/ftt_can.hpp"

#include <cassert>

#include "canbus/frame.hpp"

namespace rtec {

FttMaster::FttMaster(Simulator& sim, CanController& controller, FttConfig cfg)
    : sim_{sim}, controller_{controller}, cfg_{cfg} {}

void FttMaster::add_stream(const FttStream& stream) {
  assert(streams_.size() < 8 && "TM encodes at most 8 stream slots");
  streams_.push_back(stream);
  // Start "due" so every stream is polled in the first cycle.
  elapsed_.push_back(stream.period);
}

void FttMaster::start() {
  if (running_) return;
  running_ = true;
  run_cycle();
}

void FttMaster::stop() {
  running_ = false;
  sim_.cancel(timer_);
}

void FttMaster::run_cycle() {
  if (!running_) return;
  // Plan this EC: poll every stream whose period has elapsed. (A real
  // FTT master also packs by window capacity; our scenarios keep the sync
  // window feasible by construction.)
  CanFrame tm;
  tm.id = cfg_.tm_id;
  tm.dlc = 8;
  tm.data.fill(0xff);
  std::size_t cursor = 0;
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    elapsed_[i] += cfg_.elementary_cycle;
    if (elapsed_[i] >= streams_[i].period && cursor < 8) {
      tm.data[cursor++] = streams_[i].index;
      elapsed_[i] = Duration::zero();
    }
  }
  (void)controller_.submit(tm, TxMode::kAutoRetransmit);
  ++cycles_;

  timer_ = sim_.schedule_after(cfg_.elementary_cycle, [this] { run_cycle(); });
}

FttSlave::FttSlave(Simulator& sim, CanController& controller, FttConfig cfg)
    : sim_{sim}, controller_{controller}, cfg_{cfg} {
  controller.add_rx_listener(
      [this](const CanFrame& frame, TimePoint now) { on_frame(frame, now); });
}

void FttSlave::produce(std::uint8_t index, SyncSource source) {
  produced_.emplace(index, std::move(source));
}

void FttSlave::queue_async(const CanFrame& frame) {
  async_.push_back(frame);
}

void FttSlave::on_frame(const CanFrame& frame, TimePoint now) {
  if (frame.id != cfg_.tm_id) return;
  ++polls_seen_;

  // Synchronous phase: transmit every one of our polled streams. All
  // polled producers contend right after the TM; their ids decide the
  // order inside the sync window.
  for (std::uint8_t i = 0; i < frame.dlc; ++i) {
    const std::uint8_t index = frame.data[i];
    if (index == 0xff) continue;
    const auto it = produced_.find(index);
    if (it == produced_.end()) continue;
    if (auto produced_frame = it->second(index)) {
      (void)controller_.submit(
          *produced_frame, TxMode::kAutoRetransmit,
          [this](CanController::MailboxId, const CanFrame&, bool ok,
                 TimePoint) {
            if (ok) ++sync_sent_;
          });
    }
  }

  // Asynchronous window of this EC: [now + offset, EC end), gated so no
  // frame overruns the next TM.
  const TimePoint window_start = now + cfg_.async_window_offset;
  const TimePoint window_end =
      now + cfg_.elementary_cycle -
      cfg_.bus.bit_time() * kIntermissionBits;  // leave the TM a clean start
  sim_.schedule_at(window_start, [this, window_end] { pump_async(window_end); });
}

void FttSlave::pump_async(TimePoint window_end) {
  if (async_in_flight_ || async_.empty()) return;
  const CanFrame frame = async_.front();
  const Duration worst =
      worst_case_frame_duration(frame.dlc, frame.extended, cfg_.bus) +
      cfg_.bus.bit_time() * kIntermissionBits;
  if (sim_.now() + worst > window_end) return;

  const auto mb = controller_.submit(
      frame, TxMode::kAutoRetransmit,
      [this, window_end](CanController::MailboxId, const CanFrame&,
                         bool success, TimePoint) {
        async_in_flight_ = false;
        if (success) {
          ++async_sent_;
          async_.pop_front();
        }
        pump_async(window_end);
      });
  if (!mb) return;
  async_in_flight_ = true;
  const CanController::MailboxId mailbox = *mb;
  sim_.schedule_at(window_end - worst, [this, mailbox] {
    if (controller_.abort(mailbox)) async_in_flight_ = false;
  });
}

}  // namespace rtec
