#pragma once

#include <string>

#include "sched/calendar.hpp"
#include "util/expected.hpp"

/// \file calendar_io.hpp
/// Portable text format for reservation calendars — the "configuration
/// image" distributed to every node during the configuration phase
/// (§3.1: reservations are made offline). The planner CLI writes it; a
/// deployment loads it into each node's Calendar at boot.
///
/// Format (one directive per line, `#` starts a comment):
///
///   calendar v1
///   round_ns  10000000
///   gap_ns    40000
///   bitrate   1000000
///   slot lst_ns=1000000 dlc=8 k=1 etag=10 node=1 periodic=1 m=1 phase=0
///
/// Parsing re-runs the admission test on every slot, so a tampered or
/// stale image cannot produce an inconsistent calendar.

namespace rtec {

struct CalendarIoError {
  int line = 0;          ///< 1-based line of the problem (0 = structural)
  std::string message;
};

/// Serializes the calendar (config + all slots) to the text format.
[[nodiscard]] std::string calendar_to_text(const Calendar& calendar);

/// Parses a configuration image. Every slot goes through the admission
/// test; the first failure aborts with its line number.
[[nodiscard]] Expected<Calendar, CalendarIoError> calendar_from_text(
    const std::string& text);

}  // namespace rtec
