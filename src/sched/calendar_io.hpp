#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sched/calendar.hpp"
#include "util/expected.hpp"

/// \file calendar_io.hpp
/// Portable text format for reservation calendars — the "configuration
/// image" distributed to every node during the configuration phase
/// (§3.1: reservations are made offline). The planner CLI writes it; a
/// deployment loads it into each node's Calendar at boot; the static
/// verifier (analysis/lint.hpp, tools/rtec_lint) checks it without
/// running anything.
///
/// Format (one directive per line, `#` starts a comment):
///
///   calendar v1
///   round_ns  10000000
///   gap_ns    40000
///   bitrate   1000000
///   slot lst_ns=1000000 dlc=8 k=1 etag=10 node=1 periodic=1 m=1 phase=0
///        ... window_ns=506000   (one line; wrapped here for width)
///
/// `window_ns` is the *declared* reserved window (ΔT_wait + WCTT) the
/// planner stamped when the image was produced. It is redundant — the
/// window is derivable from dlc/k/bitrate — and exactly that redundancy
/// makes a stale or tampered image detectable: the linter recomputes the
/// window from sched/wctt and flags any declaration that no longer covers
/// it (rule RTEC-C003).
///
/// Loading an image is a two-stage pipeline:
///   1. parse_calendar_image — strict *syntactic* parse into a raw
///      CalendarImage. No admission, but no silent defaults either:
///      unknown/duplicate keys, truncated directives, non-numeric or
///      overflowing values and out-of-range ids are all hard errors.
///   2. calendar_from_text — stage 1 plus the Calendar admission test on
///      every slot, so a tampered image cannot produce an inconsistent
///      calendar. The linter instead runs its rule catalog on the raw
///      image (it must be able to *describe* an inadmissible calendar).

namespace rtec {

struct CalendarIoError {
  int line = 0;          ///< 1-based line of the problem (0 = structural)
  std::string message;
};

/// One slot line of an image, before admission.
struct ImageSlot {
  SlotSpec spec;
  int line = 0;  ///< source line in the image text (0 = built in memory)
  /// window_ns= as written in the image; nullopt when the image predates
  /// the key (the linter then derives it and only cross-checks ranges).
  std::optional<std::int64_t> declared_window_ns;
};

/// Raw, un-admitted calendar description: exactly what the image says.
struct CalendarImage {
  Calendar::Config config;
  std::vector<ImageSlot> slots;
};

/// Strict syntactic parse of a configuration image (stage 1 above).
/// Field ranges that would not survive the round-trip through SlotSpec's
/// integer types (etag, node, and int-typed fields) are checked here;
/// *semantic* validity (windows inside the round, overlap, period/phase
/// consistency) is deliberately not — that is the linter's and the
/// admission test's job.
[[nodiscard]] Expected<CalendarImage, CalendarIoError> parse_calendar_image(
    const std::string& text);

/// Parses a configuration image and admits every slot into a Calendar;
/// the first failure aborts with its line number.
[[nodiscard]] Expected<Calendar, CalendarIoError> calendar_from_text(
    const std::string& text);

/// Serializes a raw image (config + all slots, declared windows included).
[[nodiscard]] std::string image_to_text(const CalendarImage& image);

/// Serializes the calendar (config + all slots) to the text format,
/// stamping each slot's derived window as window_ns.
[[nodiscard]] std::string calendar_to_text(const Calendar& calendar);

/// The image describing a live calendar: every reserved slot with its
/// derived window declared. This is the bridge from a constructed
/// Calendar to the static verifier.
[[nodiscard]] CalendarImage image_of(const Calendar& calendar);

}  // namespace rtec
