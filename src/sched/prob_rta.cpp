#include "sched/prob_rta.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

namespace rtec {

namespace {

[[nodiscard]] std::size_t next_pow2(std::size_t n) {
  std::size_t cap = 1;
  while (cap < n) cap <<= 1;
  return cap;
}

[[nodiscard]] double clamp01(double p) { return std::clamp(p, 0.0, 1.0); }

}  // namespace

// --- BitPmf -----------------------------------------------------------------

BitPmf BitPmf::point(std::int64_t bit) {
  BitPmf pmf;
  pmf.first_ = bit;
  pmf.probs_.assign(1, 1.0);
  return pmf;
}

BitPmf BitPmf::from_span(std::int64_t first_bit, std::span<const double> probs) {
  BitPmf pmf;
  pmf.first_ = first_bit;
  pmf.probs_.assign(probs.begin(), probs.end());
  return pmf;
}

double BitPmf::at(std::int64_t bit) const {
  if (bit < first_ || bit > last_bit()) return 0.0;
  return probs_[static_cast<std::size_t>(bit - first_)];
}

double BitPmf::mass() const {
  double total = 0.0;
  for (const double v : probs_) total += v;
  return total;
}

double BitPmf::cdf(std::int64_t bit) const {
  double total = 0.0;
  const std::int64_t last = std::min(bit, last_bit());
  for (std::int64_t b = first_; b <= last; ++b)
    total += probs_[static_cast<std::size_t>(b - first_)];
  return total;
}

std::int64_t BitPmf::quantile(double q) const {
  if (probs_.empty()) return 0;
  const double target = clamp01(q) * mass();
  double cum = 0.0;
  for (std::size_t i = 0; i < probs_.size(); ++i) {
    cum += probs_[i];
    if (cum >= target) return first_ + static_cast<std::int64_t>(i);
  }
  return last_bit();  // floating-point shortfall at q = 1
}

double BitPmf::mean() const {
  const double m = mass();
  if (m <= 0.0) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < probs_.size(); ++i)
    acc += probs_[i] *
           static_cast<double>(first_ + static_cast<std::int64_t>(i));
  return acc / m;
}

void BitPmf::scale(double w) {
  for (double& v : probs_) v *= w;
  pruned_ *= w;
}

void BitPmf::add_scaled(const BitPmf& other, double w) {
  if (other.probs_.empty() || w == 0.0) return;
  if (probs_.empty()) {
    first_ = other.first_;
    probs_.assign(other.probs_.size(), 0.0);
  } else {
    if (other.first_ < first_) {
      probs_.insert(probs_.begin(),
                    static_cast<std::size_t>(first_ - other.first_), 0.0);
      first_ = other.first_;
    }
    if (other.last_bit() > last_bit())
      probs_.resize(static_cast<std::size_t>(other.last_bit() - first_) + 1,
                    0.0);
  }
  const auto offset = static_cast<std::size_t>(other.first_ - first_);
  for (std::size_t i = 0; i < other.probs_.size(); ++i)
    probs_[offset + i] += w * other.probs_[i];
}

void BitPmf::prune(double eps) {
  double budget = eps;
  std::size_t lead = 0;
  while (lead < probs_.size() && probs_[lead] <= budget) {
    budget -= probs_[lead];
    pruned_ += probs_[lead];
    ++lead;
  }
  std::size_t tail = probs_.size();
  while (tail > lead && probs_[tail - 1] <= budget) {
    budget -= probs_[tail - 1];
    pruned_ += probs_[tail - 1];
    --tail;
  }
  if (lead > 0 || tail < probs_.size()) {
    probs_.erase(probs_.begin() + static_cast<std::ptrdiff_t>(tail),
                 probs_.end());
    probs_.erase(probs_.begin(), probs_.begin() + static_cast<std::ptrdiff_t>(lead));
    first_ += static_cast<std::int64_t>(lead);
    if (probs_.empty()) first_ = 0;
  }
}

// --- ConvRing ---------------------------------------------------------------

ConvRing::ConvRing(const BitPmf& initial) {
  const std::size_t cap = next_pow2(std::max<std::size_t>(initial.support(), 16));
  ring_.assign(cap, 0.0);
  mask_ = cap - 1;
  len_ = initial.probs_.size();
  first_ = initial.first_;
  pruned_ = initial.pruned_;
  for (std::size_t i = 0; i < len_; ++i) ring_[i] = initial.probs_[i];
}

void ConvRing::reserve(std::size_t need) {
  if (need <= ring_.size()) return;
  std::vector<double> grown(next_pow2(need), 0.0);
  for (std::size_t i = 0; i < len_; ++i) grown[i] = slot(i);
  ring_ = std::move(grown);
  mask_ = ring_.size() - 1;
  head_ = 0;
}

void ConvRing::convolve(const BitPmf& term) {
  if (term.probs_.empty() || len_ == 0) {
    len_ = 0;
    first_ = 0;
    return;
  }
  const std::size_t tlen = term.probs_.size();
  const std::size_t new_len = len_ + tlen - 1;
  reserve(new_len);
  // In place, high target index to low: new[t] reads only old[t'] with
  // t' ≤ t, and every slot above t has already been rewritten — so the
  // single ring buffer holds both operand and result.
  for (std::size_t t = new_len; t-- > 0;) {
    const std::size_t j_lo = t >= len_ ? t - len_ + 1 : 0;
    const std::size_t j_hi = std::min(tlen - 1, t);
    double v = 0.0;
    for (std::size_t j = j_lo; j <= j_hi; ++j)
      v += term.probs_[j] * slot(t - j);
    slot(t) = v;
  }
  len_ = new_len;
  first_ += term.first_;
}

void ConvRing::prune(double eps) {
  double budget = eps;
  while (len_ > 0 && slot(0) <= budget) {
    budget -= slot(0);
    pruned_ += slot(0);
    head_ = (head_ + 1) & mask_;
    ++first_;
    --len_;
  }
  while (len_ > 0 && slot(len_ - 1) <= budget) {
    budget -= slot(len_ - 1);
    pruned_ += slot(len_ - 1);
    --len_;
  }
}

void ConvRing::accumulate_into(BitPmf& acc, double weight) const {
  if (len_ == 0 || weight == 0.0) return;
  if (acc.probs_.empty()) {
    acc.first_ = first_;
    acc.probs_.assign(len_, 0.0);
  } else {
    if (first_ < acc.first_) {
      acc.probs_.insert(acc.probs_.begin(),
                        static_cast<std::size_t>(acc.first_ - first_), 0.0);
      acc.first_ = first_;
    }
    const std::int64_t last = first_ + static_cast<std::int64_t>(len_) - 1;
    if (last > acc.last_bit())
      acc.probs_.resize(static_cast<std::size_t>(last - acc.first_) + 1, 0.0);
  }
  const auto offset = static_cast<std::size_t>(first_ - acc.first_);
  for (std::size_t i = 0; i < len_; ++i)
    acc.probs_[offset + i] += weight * slot(i);
}

BitPmf ConvRing::to_pmf() const {
  BitPmf pmf;
  pmf.first_ = first_;
  pmf.probs_.resize(len_);
  for (std::size_t i = 0; i < len_; ++i) pmf.probs_[i] = slot(i);
  pmf.pruned_ = pruned_;
  return pmf;
}

// --- fault model ------------------------------------------------------------

BitPmf error_recovery_pmf(int frame_bits, const OmissionModel& model) {
  assert(frame_bits >= 1);
  const int overhead = kErrorFrameBits + kIntermissionBits;
  const double f0 = clamp01(model.min_fraction);
  if (model.worst_case_position || f0 >= 1.0)
    return BitPmf::point(frame_bits + overhead);

  // The simulator draws frac uniform on [f0, 1) and charges
  // max(1, ceil(frac · L)) data bits: P(bits = b) is the measure of
  // ((b-1)/L, b/L] inside [f0, 1), normalised by the span 1 − f0.
  const auto length = static_cast<double>(frame_bits);
  const int b_min = std::max(
      1, static_cast<int>(std::ceil(f0 * length - 1e-9)));
  std::vector<double> probs(static_cast<std::size_t>(frame_bits - b_min) + 1,
                            0.0);
  for (int b = b_min; b <= frame_bits; ++b) {
    const double lo = std::max(f0, static_cast<double>(b - 1) / length);
    const double hi = static_cast<double>(b) / length;
    probs[static_cast<std::size_t>(b - b_min)] =
        std::max(0.0, hi - lo) / (1.0 - f0);
  }
  return BitPmf::from_span(b_min + overhead, probs);
}

// --- HRT (sole publisher, provisioned retries) ------------------------------

ResponseDistribution hrt_response_distribution(int frame_bits,
                                               int omission_degree,
                                               const OmissionModel& model,
                                               const ProbRtaOptions& options) {
  assert(frame_bits >= 1 && omission_degree >= 0);
  const double p = clamp01(model.p);
  ResponseDistribution out;
  out.miss_probability = std::pow(p, omission_degree + 1);

  BitPmf acc = BitPmf::point(0);
  acc.scale(1.0 - p);  // j = 0: clean first attempt
  double truncated = 0.0;
  double ring_pruned = 0.0;
  if (omission_degree > 0 && p > 0.0 && p < 1.0) {
    const BitPmf recovery = error_recovery_pmf(frame_bits, model);
    ConvRing ring{recovery};  // term E^{⊛j}, starting at j = 1
    double weight = (1.0 - p) * p;
    for (int j = 1;; ++j) {
      ring.prune(options.prune_eps);
      ring.accumulate_into(acc, weight);
      if (j == omission_degree) break;
      if (weight * p < options.tail_eps * (1.0 - p)) {
        // Remaining in-assumption weights Σ_{j'>j} p^j'(1−p) are below the
        // tail budget; account them instead of convolving further.
        truncated = std::pow(p, j + 1) - std::pow(p, omission_degree + 1);
        break;
      }
      ring.convolve(recovery);
      weight *= p;
    }
    // Each unit of relative mass pruned from the term costs at most its
    // mixture-weight sum (≤ 1) of absolute mass.
    ring_pruned = ring.pruned();
  } else if (p >= 1.0) {
    acc = BitPmf{};  // every attempt corrupted: never delivered
  }
  acc.shift(frame_bits);
  out.tail_epsilon = ring_pruned + truncated;
  out.pmf = std::move(acc);
  return out;
}

// --- hop admission (busy-window, conservative) ------------------------------

namespace {

/// Service-time PMF of one frame under unbounded geometric retries:
/// Σ_{j≥0} p^j (1−p) (E^{⊛j} ⊕ frame_bits), truncated once the remaining
/// weight drops below the tail budget, the term starts past `horizon`
/// (those sample paths miss the deadline regardless of how they end), or
/// max_failures is hit. The mass deficit (1 − mass) is the caller's
/// conservative miss/loss accounting.
BitPmf geometric_service(int frame_bits, const OmissionModel& model,
                         const ProbRtaOptions& options, std::int64_t horizon) {
  const double p = clamp01(model.p);
  if (p >= 1.0) return BitPmf{};  // never delivered
  BitPmf acc = BitPmf::point(0);
  acc.scale(1.0 - p);
  if (p > 0.0) {
    const BitPmf recovery = error_recovery_pmf(frame_bits, model);
    ConvRing ring{recovery};
    double weight = (1.0 - p) * p;
    for (int j = 1; j <= options.max_failures; ++j) {
      ring.prune(options.prune_eps);
      ring.accumulate_into(acc, weight);
      if (weight * p < options.tail_eps * (1.0 - p)) break;
      if (ring.first_bit() + frame_bits > horizon) break;
      ring.convolve(recovery);
      weight *= p;
    }
  }
  acc.shift(frame_bits);
  return acc;
}

}  // namespace

ResponseDistribution hop_response_distribution(const HopQuery& query,
                                               const ProbRtaOptions& options) {
  assert(query.frame_bits >= 1);
  ResponseDistribution out;
  const std::int64_t deadline = query.deadline_bits;
  const BitPmf own =
      geometric_service(query.frame_bits, query.faults, options, deadline);
  if (own.empty()) {
    out.miss_probability = 1.0;
    return out;
  }

  struct Occ {
    BitPmf service;
    std::int64_t period = 0;
    std::int64_t counted = 0;
  };
  std::vector<Occ> occs;
  for (const HopInterferer& i : query.interferers) {
    if (i.frame_bits <= 0 || i.period_bits <= 0) continue;
    Occ occ;
    occ.service =
        geometric_service(i.frame_bits, query.faults, options, deadline);
    occ.period = i.period_bits;
    if (!occ.service.empty()) occs.push_back(std::move(occ));
  }

  // Busy-window fixpoint under critical-instant phasing: interferer i has
  // ceil(w / T_i) instances with arrivals inside the window w. Arrivals at
  // or after the deadline only delay sample paths that already miss, so
  // the window is capped there and the loop terminates.
  ConvRing ring{own};
  for (bool changed = true; changed;) {
    changed = false;
    const std::int64_t window =
        std::min(query.blocking_bits + ring.first_bit() +
                     static_cast<std::int64_t>(ring.length()) - 1,
                 deadline);
    for (Occ& occ : occs) {
      const std::int64_t want =
          std::max<std::int64_t>(0, window + occ.period - 1) / occ.period;
      while (occ.counted < want) {
        ring.convolve(occ.service);
        ring.prune(options.prune_eps);
        ++occ.counted;
        changed = true;
      }
    }
  }

  BitPmf pmf = ring.to_pmf();
  pmf.shift(query.blocking_bits);
  out.tail_epsilon = std::max(0.0, 1.0 - pmf.mass());
  out.miss_probability = std::min(1.0, 1.0 - pmf.cdf(deadline));
  out.pmf = std::move(pmf);
  return out;
}

double compose_route_miss(std::span<const double> hop_miss) {
  double survive = 1.0;
  for (const double p : hop_miss) survive *= 1.0 - clamp01(p);
  return 1.0 - survive;
}

std::int64_t duration_to_bits(Duration d, const BusConfig& bus) {
  const std::int64_t bit_ns = bus.bit_time().ns();
  if (bit_ns <= 0 || d.ns() <= 0) return 0;
  return d.ns() / bit_ns;
}

}  // namespace rtec
