#include "sched/planner.hpp"

#include <algorithm>
#include <numeric>

namespace rtec {

std::string_view to_string(PlanError::Kind k) {
  switch (k) {
    case PlanError::Kind::kNoStreams: return "no_streams";
    case PlanError::Kind::kNonHarmonicPeriods: return "non_harmonic_periods";
    case PlanError::Kind::kOverSubscribed: return "over_subscribed";
    case PlanError::Kind::kPlacementFailed: return "placement_failed";
  }
  return "unknown";
}

Expected<CalendarPlan, PlanError> plan_calendar(
    const std::vector<HrtStreamRequest>& requests, Calendar::Config base_cfg,
    int sync_master) {
  if (requests.empty())
    return Unexpected{PlanError{PlanError::Kind::kNoStreams, "empty request set"}};

  // The round is the shortest period; all others must be harmonic.
  Duration round = requests.front().period;
  for (const auto& r : requests) round = std::min(round, r.period);
  if (round <= Duration::zero())
    return Unexpected{
        PlanError{PlanError::Kind::kNonHarmonicPeriods, "non-positive period"}};
  for (const auto& r : requests) {
    if (r.period.ns() % round.ns() != 0)
      return Unexpected{PlanError{
          PlanError::Kind::kNonHarmonicPeriods,
          "period " + std::to_string(r.period.ns()) +
              " ns is not a multiple of the round " +
              std::to_string(round.ns()) + " ns"}};
  }

  base_cfg.round_length = round;
  Calendar calendar{base_cfg};
  const Duration t_wait = calendar.t_wait();

  // Collect the windows to place: optional sync slot first, then the
  // requests, largest window first (canonical packing order; placement is
  // sequential so order only affects which stream sits where).
  struct Item {
    int request = -1;  // -1: the sync slot
    SlotSpec spec;
    Duration window;
  };
  std::vector<Item> items;
  if (sync_master >= 0) {
    Item s;
    s.spec.dlc = 8;
    s.spec.fault.omission_degree = 1;
    s.spec.etag = kSyncRefEtag;  // by convention; see Scenario
    s.spec.publisher = static_cast<NodeId>(sync_master);
    s.spec.periodic = true;
    s.window = t_wait + hrt_wctt(8, {1}, base_cfg.bus);
    items.push_back(s);
  }
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const HrtStreamRequest& r = requests[i];
    Item it;
    it.request = static_cast<int>(i);
    it.spec.dlc = r.dlc;
    it.spec.fault = r.fault;
    it.spec.etag = r.etag;
    it.spec.publisher = r.publisher;
    it.spec.periodic = r.periodic;
    // Streams slower than the round become sub-rate slots: instances every
    // m-th round, with full missing-message detection on exactly those.
    it.spec.period_rounds = static_cast<int>(r.period.ns() / round.ns());
    it.window = t_wait + hrt_wctt(r.dlc, r.fault, base_cfg.bus);
    items.push_back(it);
  }
  std::stable_sort(items.begin(), items.end(),
                   [](const Item& a, const Item& b) { return a.window > b.window; });

  const Duration total = std::accumulate(
      items.begin(), items.end(), Duration::zero(),
      [&](Duration acc, const Item& it) { return acc + it.window + base_cfg.gap; });
  if (total > round)
    return Unexpected{PlanError{
        PlanError::Kind::kOverSubscribed,
        "windows+gaps need " + std::to_string(total.us()) + " us, round is " +
            std::to_string(round.us()) + " us"}};

  // Sequential placement: window i starts right after window i-1 + gap.
  CalendarPlan plan{std::move(calendar), std::vector<std::size_t>(requests.size()), 0};
  Duration cursor = Duration::zero();
  for (Item& it : items) {
    it.spec.lst_offset = cursor + t_wait;
    const auto reserved = plan.calendar.reserve(it.spec);
    if (!reserved)
      return Unexpected{PlanError{PlanError::Kind::kPlacementFailed,
                                  "admission rejected a planned slot"}};
    if (it.request >= 0)
      plan.slot_of_request[static_cast<std::size_t>(it.request)] = *reserved;
    cursor += it.window + base_cfg.gap;
  }
  plan.reserved_fraction = plan.calendar.reserved_fraction();
  return plan;
}

}  // namespace rtec
