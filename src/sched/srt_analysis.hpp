#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sched/calendar.hpp"
#include "sched/priority_map.hpp"
#include "util/time_types.hpp"

/// \file srt_analysis.hpp
/// Offline schedulability test for the SRT class — the design-time
/// companion of the EDF-over-priorities runtime (the paper's analysis
/// reference is Livani/Kaiser/Jia, Control Engineering Practice 1999).
///
/// Model: sporadic SRT streams (minimum inter-arrival T, relative
/// transmission deadline D ≤ T, worst frame time C) scheduled EDF, subject
/// to
///   * non-preemptive blocking by one maximal lower-urgency frame,
///   * the Δt_p band quantization (two deadlines within one priority slot
///     may be served out of order — absorbed as extra blocking),
///   * interference from the reserved HRT calendar (each round can steal
///     up to the calendar's summed window time).
///
/// Demand-bound test: for every absolute deadline t in the test set,
///
///   Σ_i (⌊(t − D_i)/T_i⌋ + 1)⁺ · C_i  +  B  +  Δt_p  +  hrt(t)  ≤  t
///
/// with hrt(t) = (⌈t/R⌉ + 1) · W_total (conservative: a partial round at
/// each end). The test is sufficient, not necessary — anything it accepts
/// is guaranteed; rejections may still work in practice.

namespace rtec {

/// One sporadic SRT stream for analysis.
struct SrtStreamSpec {
  int id = 0;
  Duration period;    ///< minimum inter-arrival time
  Duration deadline;  ///< relative transmission deadline (<= period)
  int dlc = 8;
};

struct SrtInfeasible {
  /// Absolute deadline at which demand first exceeds supply.
  Duration at;
  Duration demand;
  Duration supply;
  std::string detail;
};

struct SrtAnalysisInput {
  std::vector<SrtStreamSpec> streams;
  BusConfig bus{};
  /// Δt_p of the deployment's priority map (quantization slack).
  Duration priority_slot = Duration::microseconds(160);
  /// The HRT calendar whose reserved windows steal bus time; nullptr =
  /// no HRT traffic.
  const Calendar* calendar = nullptr;
  /// Largest NRT frame that can block (0 bytes disables the extra term —
  /// an SRT frame of max size still blocks).
  int max_nrt_dlc = 8;
};

/// Total SRT utilization (Σ C/T), HRT reserved share excluded.
[[nodiscard]] double srt_utilization(const SrtAnalysisInput& in);

/// Sufficient EDF feasibility test; nullopt = accepted (every stream meets
/// its transmission deadline under the stated assumptions).
[[nodiscard]] std::optional<SrtInfeasible> srt_edf_feasibility(
    const SrtAnalysisInput& in);

}  // namespace rtec
