#pragma once

#include <cassert>
#include <cstdint>

#include "sched/id_codec.hpp"
#include "util/time_types.hpp"

/// \file priority_map.hpp
/// Deadline→priority mapping for soft real-time messages (paper §3.4).
///
/// CAN arbitration is fixed-priority per frame, while EDF needs the
/// priority order to track deadlines as time advances. The paper's scheme
/// discretizes laxity (deadline − now) into *priority slots* of length
/// Δt_p: a message whose deadline lies within the next Δt_p gets the
/// highest SRT band P_min, within (Δt_p, 2Δt_p] the next band, and so on.
/// As time passes a queued message crosses slot boundaries and its priority
/// must be *increased* (the dynamic promotion the middleware performs by
/// rewriting the TX mailbox identifier).
///
/// The trade-off E6 measures:
///  * small Δt_p  → few same-band collisions (good EDF fidelity) but a
///    short time horizon ΔH = (P_max − P_min + 1)·Δt_p — deadlines beyond
///    ΔH saturate at the lowest band and may be scheduled out of order;
///  * large Δt_p → long horizon, but close deadlines collapse into one
///    band where the order is decided arbitrarily by TxNode/etag bits.

namespace rtec {

class DeadlinePriorityMap {
 public:
  struct Config {
    Priority p_min = kSrtPriorityMin;  ///< most urgent SRT band
    Priority p_max = kSrtPriorityMax;  ///< least urgent SRT band
    Duration slot_length = Duration::microseconds(160);  ///< Δt_p (≈ 1 frame)
  };

  explicit DeadlinePriorityMap(Config cfg) : cfg_{cfg} {
    assert(cfg.p_min <= cfg.p_max);
    assert(cfg.slot_length > Duration::zero());
  }

  [[nodiscard]] const Config& config() const { return cfg_; }

  /// Time horizon ΔH: laxities at or beyond it all map to p_max.
  [[nodiscard]] Duration horizon() const {
    return cfg_.slot_length * (cfg_.p_max - cfg_.p_min + 1);
  }

  /// Band for a message with the given transmission deadline at time `now`:
  /// laxity in (k·Δt_p, (k+1)·Δt_p] maps to p_min + k; laxity <= 0 maps to
  /// p_min (overdue messages contend at the most urgent band).
  [[nodiscard]] Priority priority_for(TimePoint now, TimePoint deadline) const {
    const std::int64_t laxity = (deadline - now).ns();
    if (laxity <= 0) return cfg_.p_min;
    const std::int64_t k = (laxity - 1) / cfg_.slot_length.ns();  // ceil - 1
    const std::int64_t cap = cfg_.p_max - cfg_.p_min;
    return static_cast<Priority>(cfg_.p_min + (k < cap ? k : cap));
  }

  /// The instant at which a message queued with the band returned by
  /// priority_for(now, deadline) must be promoted to the next band, i.e.
  /// when its laxity drops to the next lower slot boundary. Returns
  /// TimePoint::max() when already at p_min.
  [[nodiscard]] TimePoint next_promotion(TimePoint now, TimePoint deadline) const {
    const Priority p = priority_for(now, deadline);
    if (p == cfg_.p_min) return TimePoint::max();
    const std::int64_t k = p - cfg_.p_min;  // current slot index >= 1
    return deadline - cfg_.slot_length * k;
  }

 private:
  Config cfg_;
};

}  // namespace rtec
