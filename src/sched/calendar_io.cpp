#include "sched/calendar_io.hpp"

#include <array>
#include <limits>
#include <sstream>

#include "util/kv_text.hpp"

namespace rtec {

std::string image_to_text(const CalendarImage& image) {
  std::ostringstream out;
  out << "calendar v1\n";
  out << "round_ns  " << image.config.round_length.ns() << "\n";
  out << "gap_ns    " << image.config.gap.ns() << "\n";
  out << "bitrate   " << image.config.bus.bitrate_bps << "\n";
  for (const ImageSlot& slot : image.slots) {
    const SlotSpec& s = slot.spec;
    out << "slot lst_ns=" << s.lst_offset.ns() << " dlc=" << s.dlc
        << " k=" << s.fault.omission_degree << " etag=" << s.etag
        << " node=" << static_cast<int>(s.publisher)
        << " periodic=" << (s.periodic ? 1 : 0) << " m=" << s.period_rounds
        << " phase=" << s.phase_round;
    if (slot.declared_window_ns)
      out << " window_ns=" << *slot.declared_window_ns;
    out << "\n";
  }
  return out.str();
}

CalendarImage image_of(const Calendar& calendar) {
  CalendarImage image;
  image.config = calendar.config();
  image.slots.reserve(calendar.size());
  for (std::size_t i = 0; i < calendar.size(); ++i) {
    ImageSlot slot;
    slot.spec = calendar.slot(i);
    const SlotTiming t = calendar.timing(i);
    slot.declared_window_ns = (t.deadline_offset - t.ready_offset).ns();
    image.slots.push_back(slot);
  }
  return image;
}

std::string calendar_to_text(const Calendar& calendar) {
  return image_to_text(image_of(calendar));
}

namespace {

constexpr std::int64_t kIntMax = std::numeric_limits<int>::max();

/// Format caps. Durations beyond ~11.6 days of nanoseconds (and bit rates
/// beyond 1 Gbit/s, whose bit time is sub-nanosecond) cannot arise from
/// any real CAN deployment, and rejecting them at parse time keeps every
/// downstream window computation inside 64-bit arithmetic — a truncated
/// or fuzzed image can never push the analysis into overflow.
constexpr std::int64_t kMaxDurationNs = 1'000'000'000'000'000;
constexpr std::int64_t kMaxBitrate = 1'000'000'000;

/// Reads a single-value directive ("round_ns 10000000"): exactly one
/// integer token in (0, max], nothing after it.
Expected<std::int64_t, std::string> parse_value_directive(
    std::istringstream& ls, const std::string& word, std::int64_t max) {
  std::string value;
  if (!(ls >> value)) return Unexpected{"missing value for " + word};
  std::string extra;
  if (ls >> extra)
    return Unexpected{"trailing token '" + extra + "' after " + word};
  KvMap one;
  one.values.emplace(word, value);
  const auto v = one.get_int_in(word, 1, max);
  if (!v) return Unexpected{"bad value for " + word + ": " + v.error()};
  return *v;
}

}  // namespace

Expected<CalendarImage, CalendarIoError> parse_calendar_image(
    const std::string& text) {
  std::istringstream in{text};
  std::string line;
  int line_no = 0;

  auto fail = [&](std::string msg) {
    return Unexpected{CalendarIoError{line_no, std::move(msg)}};
  };

  bool have_header = false;
  std::optional<std::int64_t> round_ns;
  std::optional<std::int64_t> gap_ns;
  std::optional<std::int64_t> bitrate;
  std::vector<ImageSlot> slots;

  static constexpr std::array<std::string_view, 9> kSlotKeys = {
      "lst_ns", "dlc", "k", "etag", "node", "periodic", "m", "phase",
      "window_ns"};

  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments and skip blanks.
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls{line};
    std::string word;
    if (!(ls >> word)) continue;

    if (word == "calendar") {
      if (have_header) return fail("duplicate 'calendar' header");
      std::string version;
      if (!(ls >> version) || version != "v1")
        return fail("unsupported calendar version");
      std::string extra;
      if (ls >> extra)
        return fail("trailing token '" + extra + "' after header");
      have_header = true;
      continue;
    }
    if (!have_header) return fail("missing 'calendar v1' header");

    if (word == "round_ns" || word == "gap_ns" || word == "bitrate") {
      auto& field = word == "round_ns" ? round_ns
                    : word == "gap_ns" ? gap_ns
                                       : bitrate;
      if (field) return fail("duplicate " + word + " directive");
      const auto v = parse_value_directive(
          ls, word, word == "bitrate" ? kMaxBitrate : kMaxDurationNs);
      if (!v) return fail(v.error());
      field = *v;
      continue;
    }

    if (word == "slot") {
      if (!round_ns || !gap_ns || !bitrate)
        return fail("slot before round_ns/gap_ns/bitrate");
      std::string rest;
      std::getline(ls, rest);
      const auto kv = parse_kv_tokens(rest, kSlotKeys);
      if (!kv) return fail("malformed slot line: " + kv.error());
      for (const char* required : {"lst_ns", "dlc", "k", "etag", "node"}) {
        if (!kv->contains(required))
          return fail(std::string{"slot missing "} + required);
      }
      // Every present field must parse and fit its SlotSpec type; fields
      // that stay absent keep the documented SlotSpec defaults (periodic
      // slot, every round) — that is the format's contract, not a silent
      // fallback on malformed input.
      const auto lst = kv->get_int_in("lst_ns", -kMaxDurationNs, kMaxDurationNs);
      if (!lst) return fail("bad slot: " + lst.error());
      const auto dlc = kv->get_int_in("dlc", 0, kIntMax);
      if (!dlc) return fail("bad slot: " + dlc.error());
      const auto k = kv->get_int_in("k", 0, kIntMax);
      if (!k) return fail("bad slot: " + k.error());
      const auto etag = kv->get_int_in("etag", 0, kMaxEtag);
      if (!etag) return fail("bad slot: " + etag.error());
      const auto node = kv->get_int_in("node", 0, kMaxNodeId);
      if (!node) return fail("bad slot: " + node.error());

      ImageSlot slot;
      slot.line = line_no;
      SlotSpec& s = slot.spec;
      s.lst_offset = Duration::nanoseconds(*lst);
      s.dlc = static_cast<int>(*dlc);
      s.fault.omission_degree = static_cast<int>(*k);
      s.etag = static_cast<Etag>(*etag);
      s.publisher = static_cast<NodeId>(*node);
      if (kv->contains("periodic")) {
        const auto periodic = kv->get_int_in("periodic", 0, 1);
        if (!periodic) return fail("bad slot: " + periodic.error());
        s.periodic = *periodic != 0;
      }
      if (kv->contains("m")) {
        const auto m = kv->get_int_in("m", 0, kIntMax);
        if (!m) return fail("bad slot: " + m.error());
        s.period_rounds = static_cast<int>(*m);
      }
      if (kv->contains("phase")) {
        const auto phase = kv->get_int_in("phase", 0, kIntMax);
        if (!phase) return fail("bad slot: " + phase.error());
        s.phase_round = static_cast<int>(*phase);
      }
      if (kv->contains("window_ns")) {
        const auto window = kv->get_int_in("window_ns", 0, kMaxDurationNs);
        if (!window) return fail("bad slot: " + window.error());
        slot.declared_window_ns = *window;
      }
      slots.push_back(std::move(slot));
      continue;
    }
    return fail("unknown directive '" + word + "'");
  }

  if (!have_header) {
    line_no = 0;
    return fail("empty input");
  }
  if (!round_ns || !gap_ns || !bitrate) {
    line_no = 0;
    return fail("incomplete header (round_ns/gap_ns/bitrate required)");
  }

  CalendarImage image;
  image.config.round_length = Duration::nanoseconds(*round_ns);
  image.config.gap = Duration::nanoseconds(*gap_ns);
  image.config.bus.bitrate_bps = *bitrate;
  image.slots = std::move(slots);
  return image;
}

Expected<Calendar, CalendarIoError> calendar_from_text(
    const std::string& text) {
  auto image = parse_calendar_image(text);
  if (!image) return Unexpected{image.error()};

  Calendar calendar{image->config};
  for (const ImageSlot& slot : image->slots) {
    const auto reserved = calendar.reserve(slot.spec);
    if (!reserved) {
      const char* why = "";
      switch (reserved.error()) {
        case AdmissionError::kBadSpec: why = "bad slot spec"; break;
        case AdmissionError::kWindowOutsideRound:
          why = "window outside round";
          break;
        case AdmissionError::kOverlap: why = "window overlap"; break;
      }
      return Unexpected{CalendarIoError{
          slot.line, std::string{"admission rejected slot: "} + why}};
    }
    // The declared window is a stamp of ΔT_wait + WCTT(dlc, k) at image
    // production time; a disagreeing stamp means the image was edited by
    // hand or produced against different bus parameters — reject rather
    // than trust either value (rtec_lint reports the same condition as
    // RTEC-C003 without rejecting, for diagnosis).
    if (slot.declared_window_ns) {
      const SlotTiming t = calendar.timing(*reserved);
      const std::int64_t derived = (t.deadline_offset - t.ready_offset).ns();
      if (*slot.declared_window_ns != derived)
        return Unexpected{CalendarIoError{
            slot.line,
            "declared window_ns=" + std::to_string(*slot.declared_window_ns) +
                " disagrees with the window derived from dlc/k/bitrate (" +
                std::to_string(derived) + " ns)"}};
    }
  }
  return calendar;
}

}  // namespace rtec
