#include "sched/calendar_io.hpp"

#include <cstdio>
#include <map>
#include <optional>
#include <sstream>

namespace rtec {

std::string calendar_to_text(const Calendar& calendar) {
  std::ostringstream out;
  out << "calendar v1\n";
  out << "round_ns  " << calendar.config().round_length.ns() << "\n";
  out << "gap_ns    " << calendar.config().gap.ns() << "\n";
  out << "bitrate   " << calendar.config().bus.bitrate_bps << "\n";
  for (std::size_t i = 0; i < calendar.size(); ++i) {
    const SlotSpec& s = calendar.slot(i);
    out << "slot lst_ns=" << s.lst_offset.ns() << " dlc=" << s.dlc
        << " k=" << s.fault.omission_degree << " etag=" << s.etag
        << " node=" << static_cast<int>(s.publisher)
        << " periodic=" << (s.periodic ? 1 : 0) << " m=" << s.period_rounds
        << " phase=" << s.phase_round << "\n";
  }
  return out.str();
}

namespace {

/// Parses "key=value" tokens of a slot line into a map.
std::optional<std::map<std::string, long long>> parse_kv(std::istringstream& ls) {
  std::map<std::string, long long> kv;
  std::string token;
  while (ls >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) return std::nullopt;
    try {
      kv[token.substr(0, eq)] = std::stoll(token.substr(eq + 1));
    } catch (...) {
      return std::nullopt;
    }
  }
  return kv;
}

}  // namespace

Expected<Calendar, CalendarIoError> calendar_from_text(const std::string& text) {
  std::istringstream in{text};
  std::string line;
  int line_no = 0;

  auto fail = [&](std::string msg) {
    return Unexpected{CalendarIoError{line_no, std::move(msg)}};
  };

  // Header.
  bool have_header = false;
  std::optional<std::int64_t> round_ns;
  std::optional<std::int64_t> gap_ns;
  std::optional<std::int64_t> bitrate;
  std::optional<Calendar> calendar;

  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments and skip blanks.
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls{line};
    std::string word;
    if (!(ls >> word)) continue;

    if (word == "calendar") {
      std::string version;
      if (!(ls >> version) || version != "v1")
        return fail("unsupported calendar version");
      have_header = true;
      continue;
    }
    if (!have_header) return fail("missing 'calendar v1' header");

    if (word == "round_ns" || word == "gap_ns" || word == "bitrate") {
      long long v = 0;
      if (!(ls >> v) || v <= 0) return fail("bad value for " + word);
      if (word == "round_ns") round_ns = v;
      if (word == "gap_ns") gap_ns = v;
      if (word == "bitrate") bitrate = v;
      continue;
    }

    if (word == "slot") {
      if (!round_ns || !gap_ns || !bitrate)
        return fail("slot before round_ns/gap_ns/bitrate");
      if (!calendar) {
        Calendar::Config cfg;
        cfg.round_length = Duration::nanoseconds(*round_ns);
        cfg.gap = Duration::nanoseconds(*gap_ns);
        cfg.bus.bitrate_bps = *bitrate;
        calendar.emplace(cfg);
      }
      const auto kv = parse_kv(ls);
      if (!kv) return fail("malformed slot line");
      for (const char* required :
           {"lst_ns", "dlc", "k", "etag", "node"}) {
        if (!kv->contains(required))
          return fail(std::string{"slot missing "} + required);
      }
      SlotSpec s;
      s.lst_offset = Duration::nanoseconds(kv->at("lst_ns"));
      s.dlc = static_cast<int>(kv->at("dlc"));
      s.fault.omission_degree = static_cast<int>(kv->at("k"));
      const long long etag = kv->at("etag");
      const long long node = kv->at("node");
      if (etag < 0 || etag > kMaxEtag) return fail("etag out of range");
      if (node < 0 || node > kMaxNodeId) return fail("node out of range");
      s.etag = static_cast<Etag>(etag);
      s.publisher = static_cast<NodeId>(node);
      s.periodic = kv->contains("periodic") ? kv->at("periodic") != 0 : true;
      s.period_rounds =
          kv->contains("m") ? static_cast<int>(kv->at("m")) : 1;
      s.phase_round =
          kv->contains("phase") ? static_cast<int>(kv->at("phase")) : 0;

      const auto reserved = calendar->reserve(s);
      if (!reserved) {
        const char* why = "";
        switch (reserved.error()) {
          case AdmissionError::kBadSpec: why = "bad slot spec"; break;
          case AdmissionError::kWindowOutsideRound:
            why = "window outside round";
            break;
          case AdmissionError::kOverlap: why = "window overlap"; break;
        }
        return fail(std::string{"admission rejected slot: "} + why);
      }
      continue;
    }
    return fail("unknown directive '" + word + "'");
  }

  if (!have_header) {
    line_no = 0;
    return fail("empty input");
  }
  if (!calendar) {
    if (!round_ns || !gap_ns || !bitrate) {
      line_no = 0;
      return fail("incomplete header (round_ns/gap_ns/bitrate required)");
    }
    Calendar::Config cfg;
    cfg.round_length = Duration::nanoseconds(*round_ns);
    cfg.gap = Duration::nanoseconds(*gap_ns);
    cfg.bus.bitrate_bps = *bitrate;
    calendar.emplace(cfg);
  }
  return std::move(*calendar);
}

}  // namespace rtec
