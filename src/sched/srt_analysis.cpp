#include "sched/srt_analysis.hpp"

#include <algorithm>
#include <set>
#include <string>

#include "canbus/frame.hpp"

namespace rtec {

namespace {

Duration frame_cost(int dlc, const BusConfig& bus) {
  return worst_case_frame_duration(dlc, /*extended=*/true, bus) +
         bus.bit_time() * kIntermissionBits;
}

Duration hrt_windows_per_round(const Calendar& cal) {
  Duration sum = Duration::zero();
  for (std::size_t i = 0; i < cal.size(); ++i) {
    const SlotTiming t = cal.timing(i);
    sum += t.deadline_offset - t.ready_offset;
  }
  return sum;
}

/// Exact (grid-resolution) worst-case HRT bus time inside ANY interval of
/// a given length: the reserved pattern is round-periodic, so
///   cover(t) = floor(t/R)·W + max_s reserved([s, s + t mod R))
/// with the sliding-window maximum computed from a 1 µs prefix sum.
class HrtCoverage {
 public:
  explicit HrtCoverage(const Calendar& cal)
      : round_ns_{cal.config().round_length.ns()},
        per_round_{hrt_windows_per_round(cal)} {
    const std::size_t cells =
        static_cast<std::size_t>(round_ns_ / kGridNs) + 1;
    std::vector<std::int64_t> reserved(cells, 0);  // ns reserved per cell
    for (std::size_t i = 0; i < cal.size(); ++i) {
      const SlotTiming t = cal.timing(i);
      for (std::int64_t ns = t.ready_offset.ns(); ns < t.deadline_offset.ns();
           ns += kGridNs) {
        const auto cell = static_cast<std::size_t>((ns % round_ns_) / kGridNs);
        reserved[cell % cells] += std::min<std::int64_t>(
            kGridNs, t.deadline_offset.ns() - ns);
      }
    }
    prefix_.resize(2 * cells + 1, 0);
    for (std::size_t i = 0; i < 2 * cells; ++i)
      prefix_[i + 1] = prefix_[i] + reserved[i % cells];
  }

  [[nodiscard]] Duration max_in(Duration t) const {
    if (t <= Duration::zero()) return Duration::zero();
    const std::int64_t full_rounds = t.ns() / round_ns_;
    const std::int64_t rem_ns = t.ns() % round_ns_;
    const auto rem_cells =
        static_cast<std::size_t>((rem_ns + kGridNs - 1) / kGridNs);
    std::int64_t best = 0;
    const std::size_t cells = (prefix_.size() - 1) / 2;
    for (std::size_t s = 0; s < cells; ++s)
      best = std::max(best, prefix_[s + rem_cells] - prefix_[s]);
    return per_round_ * full_rounds + Duration::nanoseconds(best);
  }

 private:
  static constexpr std::int64_t kGridNs = 1000;  // 1 µs resolution
  std::int64_t round_ns_;
  Duration per_round_;
  std::vector<std::int64_t> prefix_;
};

}  // namespace

double srt_utilization(const SrtAnalysisInput& in) {
  double u = 0;
  for (const SrtStreamSpec& s : in.streams) {
    u += frame_cost(s.dlc, in.bus).sec() / s.period.sec();
  }
  return u;
}

std::optional<SrtInfeasible> srt_edf_feasibility(const SrtAnalysisInput& in) {
  if (in.streams.empty()) return std::nullopt;
  for (const SrtStreamSpec& s : in.streams) {
    if (s.period <= Duration::zero() || s.deadline <= Duration::zero() ||
        s.deadline > s.period)
      return SrtInfeasible{Duration::zero(), Duration::zero(), Duration::zero(),
                           "stream " + std::to_string(s.id) +
                               ": need 0 < deadline <= period"};
  }

  // Blocking: one non-preemptable lower-urgency frame (largest of any SRT
  // stream or the largest NRT frame), plus one Δt_p of band-quantization
  // slack (a deadline inside the same priority slot may be served first).
  Duration blocking = Duration::zero();
  for (const SrtStreamSpec& s : in.streams)
    blocking = std::max(blocking, frame_cost(s.dlc, in.bus));
  if (in.max_nrt_dlc > 0)
    blocking = std::max(blocking, frame_cost(in.max_nrt_dlc, in.bus));
  blocking += in.priority_slot;

  const Duration hrt_per_round =
      in.calendar != nullptr ? hrt_windows_per_round(*in.calendar)
                             : Duration::zero();
  const Duration round = in.calendar != nullptr
                             ? in.calendar->config().round_length
                             : Duration::milliseconds(1);
  std::optional<HrtCoverage> coverage;
  if (in.calendar != nullptr) coverage.emplace(*in.calendar);

  // Effective utilization including HRT share must be < 1, otherwise the
  // demand recursion has no bound.
  const double hrt_share =
      in.calendar != nullptr
          ? static_cast<double>(hrt_per_round.ns()) /
                static_cast<double>(round.ns())
          : 0.0;
  const double total_u = srt_utilization(in) + hrt_share;
  if (total_u >= 1.0) {
    return SrtInfeasible{Duration::zero(), Duration::zero(), Duration::zero(),
                         "total utilization " + std::to_string(total_u) +
                             " >= 1 (incl. HRT share " +
                             std::to_string(hrt_share) + ")"};
  }

  // Test horizon: the busy period is bounded by
  //   L = (B + Σ C_i + 2*W) / (1 - U_total)
  // (standard DBF argument); check all absolute deadlines k*T_i + D_i <= L.
  Duration c_sum = Duration::zero();
  for (const SrtStreamSpec& s : in.streams)
    c_sum += frame_cost(s.dlc, in.bus);
  const double l_ns =
      static_cast<double>((blocking + c_sum + hrt_per_round * 2).ns()) /
      (1.0 - total_u);
  const Duration horizon = Duration::nanoseconds(
      std::min<std::int64_t>(static_cast<std::int64_t>(l_ns),
                             Duration::seconds(10).ns()));

  std::set<std::int64_t> checkpoints;
  for (const SrtStreamSpec& s : in.streams) {
    for (Duration t = s.deadline; t <= horizon; t += s.period) {
      checkpoints.insert(t.ns());
      if (checkpoints.size() > 200'000) break;  // practicality guard
    }
  }

  for (const std::int64_t t_ns : checkpoints) {
    const Duration t = Duration::nanoseconds(t_ns);
    Duration demand = blocking;
    for (const SrtStreamSpec& s : in.streams) {
      if (t < s.deadline) continue;
      const std::int64_t jobs =
          (t - s.deadline).ns() / s.period.ns() + 1;
      demand += frame_cost(s.dlc, in.bus) * jobs;
    }
    // HRT interference: exact worst-case reserved time any interval of
    // length t can contain (periodic sliding-window maximum).
    if (coverage) demand += coverage->max_in(t);

    if (demand > t) {
      return SrtInfeasible{
          t, demand, t,
          "demand " + std::to_string(demand.us()) + " us over supply " +
              std::to_string(t.us()) + " us"};
    }
  }
  return std::nullopt;
}

}  // namespace rtec
