#pragma once

#include <cassert>
#include <cstdint>

#include "canbus/can_types.hpp"

/// \file id_codec.hpp
/// Structure of the 29-bit CAN 2.0B identifier (paper §3.5):
///
///   bit 28..21  priority   (8 bits, 256 levels; lower value = higher prio)
///   bit 20..14  TxNode     (7 bits; guarantees identifier uniqueness)
///   bit 13..0   etag       (14 bits; the bound subject of the event channel)
///
/// Priority bands (paper §3.3, example partition):
///   0        = HRT (exclusively reserved)
///   1..250   = SRT (EDF deadline bands)
///   251..255 = NRT (fixed application priorities)
/// enforcing 0 <= P_HRT < P_SRT < P_NRT — so an NRT or SRT message can never
/// win the bus against a pending HRT message.

namespace rtec {

using Etag = std::uint16_t;
using Priority = std::uint8_t;

inline constexpr Etag kMaxEtag = (1u << 14) - 1;

/// Etags reserved for infrastructure services (identifier-space
/// convention, enforced by the binding registry): clock-sync rounds and
/// the runtime binding request/reply channel.
inline constexpr Etag kSyncRefEtag = 0;
inline constexpr Etag kSyncFollowEtag = 1;
inline constexpr Etag kBindingRequestEtag = 2;
inline constexpr Etag kBindingReplyEtag = 3;
inline constexpr Etag kFirstApplicationEtag = 4;

inline constexpr Priority kHrtPriority = 0;
inline constexpr Priority kSrtPriorityMin = 1;    ///< highest-urgency SRT band
inline constexpr Priority kSrtPriorityMax = 250;  ///< lowest-urgency SRT band
inline constexpr Priority kNrtPriorityMin = 251;
inline constexpr Priority kNrtPriorityMax = 255;

enum class TrafficClass : std::uint8_t { kHrt, kSrt, kNrt };

[[nodiscard]] constexpr TrafficClass classify_priority(Priority p) {
  if (p == kHrtPriority) return TrafficClass::kHrt;
  if (p <= kSrtPriorityMax) return TrafficClass::kSrt;
  return TrafficClass::kNrt;
}

struct CanIdFields {
  Priority priority = 0;
  NodeId tx_node = 0;
  Etag etag = 0;

  friend bool operator==(const CanIdFields&, const CanIdFields&) = default;
};

[[nodiscard]] constexpr std::uint32_t encode_can_id(const CanIdFields& f) {
  assert(f.tx_node <= kMaxNodeId);
  assert(f.etag <= kMaxEtag);
  return (static_cast<std::uint32_t>(f.priority) << 21) |
         (static_cast<std::uint32_t>(f.tx_node) << 14) |
         static_cast<std::uint32_t>(f.etag);
}

[[nodiscard]] constexpr CanIdFields decode_can_id(std::uint32_t id) {
  CanIdFields f;
  f.priority = static_cast<Priority>((id >> 21) & 0xff);
  f.tx_node = static_cast<NodeId>((id >> 14) & 0x7f);
  f.etag = static_cast<Etag>(id & 0x3fff);
  return f;
}

/// Priority of a raw identifier (the top 8 bits).
[[nodiscard]] constexpr Priority id_priority(std::uint32_t id) {
  return static_cast<Priority>((id >> 21) & 0xff);
}

}  // namespace rtec
