#pragma once

#include <cassert>
#include <cstdint>
#include <map>
#include <optional>

#include "util/time_types.hpp"

/// \file edf_queue.hpp
/// Earliest-deadline-first send queue for SRT messages. Only the head of
/// this queue occupies a controller TX mailbox; the rest wait here. Keys
/// are (transmission deadline, arrival sequence) so equal deadlines resolve
/// in FIFO order deterministically.

namespace rtec {

template <typename T>
class EdfQueue {
 public:
  /// Stable handle for removing a queued entry (expiry, cancellation).
  struct Handle {
    TimePoint deadline;
    std::uint64_t seq = 0;
    friend auto operator<=>(const Handle&, const Handle&) = default;
  };

  /// Inserts an item; returns its removal handle.
  Handle push(TimePoint deadline, T item) {
    const Handle h{deadline, next_seq_++};
    entries_.emplace(h, std::move(item));
    return h;
  }

  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Earliest-deadline entry, if any.
  [[nodiscard]] const T* peek() const {
    return entries_.empty() ? nullptr : &entries_.begin()->second;
  }
  [[nodiscard]] std::optional<Handle> peek_handle() const {
    if (entries_.empty()) return std::nullopt;
    return entries_.begin()->first;
  }
  [[nodiscard]] TimePoint earliest_deadline() const {
    assert(!entries_.empty());
    return entries_.begin()->first.deadline;
  }

  /// Removes and returns the earliest-deadline entry.
  [[nodiscard]] std::optional<T> pop() {
    if (entries_.empty()) return std::nullopt;
    auto it = entries_.begin();
    T item = std::move(it->second);
    entries_.erase(it);
    return item;
  }

  /// Removes an arbitrary entry; returns it if still present.
  [[nodiscard]] std::optional<T> remove(const Handle& h) {
    auto it = entries_.find(h);
    if (it == entries_.end()) return std::nullopt;
    T item = std::move(it->second);
    entries_.erase(it);
    return item;
  }

  [[nodiscard]] bool contains(const Handle& h) const {
    return entries_.find(h) != entries_.end();
  }

 private:
  std::map<Handle, T> entries_;
  std::uint64_t next_seq_ = 1;
};

}  // namespace rtec
