#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "canbus/can_types.hpp"
#include "util/time_types.hpp"

/// \file prob_rta.hpp
/// Convolution-based probabilistic response-time analysis for CAN messages
/// — the analytic fast path behind `rtec_verify --prob` and the
/// bench_analytic cross-validation harness.
///
/// wctt.hpp answers the paper's admission question with a single number:
/// the worst case under an assumed omission degree k. This module answers
/// the refined question "with what probability?": given a per-attempt
/// corruption probability p (the fault framework's RandomOmissionFaults),
/// it computes the full response-time *distribution* of a message and the
/// probability that the fault assumption itself is violated — in
/// microseconds, instead of the minutes of simulation the same quantiles
/// cost empirically (following the convolution-based CAN analyses, e.g.
/// arXiv 2411.05835).
///
/// Everything lives on the bit-time grid. The simulator charges corrupted
/// attempts in whole bit times (`max(1, ceil(frac · frame_bits))` data
/// bits + error frame + intermission, canbus/bus.cpp), arbitration is a
/// zero-delay event, and frames are integral bit counts — so every
/// latency the simulator can produce is an exact multiple of
/// BusConfig::bit_time(), and a discrete PMF indexed by bit count
/// represents it without quantisation error. Distributions are composed
/// by direct (FFT-free) convolution in a power-of-two circular buffer
/// with in-place accumulation and sub-epsilon tail pruning; the pruned
/// mass is tracked, so every result carries its own total-variation error
/// bound instead of silently losing probability.

namespace rtec {

/// Discrete sub-probability mass function on the bit-time grid: `at(b)` is
/// the probability that the quantity equals exactly `b` bit times. Mass
/// may sum to less than one — the remainder is either structural (e.g.
/// the probability the message is never delivered) or tracked pruning
/// loss (`pruned()`), never silent.
class BitPmf {
 public:
  BitPmf() = default;

  /// Deterministic value: all mass at `bit`.
  [[nodiscard]] static BitPmf point(std::int64_t bit);
  /// Mass `probs[i]` at `first_bit + i`.
  [[nodiscard]] static BitPmf from_span(std::int64_t first_bit,
                                        std::span<const double> probs);

  [[nodiscard]] bool empty() const { return probs_.empty(); }
  [[nodiscard]] std::int64_t first_bit() const { return first_; }
  [[nodiscard]] std::int64_t last_bit() const {
    return first_ + static_cast<std::int64_t>(probs_.size()) - 1;
  }
  [[nodiscard]] std::size_t support() const { return probs_.size(); }

  [[nodiscard]] double at(std::int64_t bit) const;
  /// Total retained mass Σ at(b).
  [[nodiscard]] double mass() const;
  /// Mass discarded by prune() calls over this PMF's history — an upper
  /// bound on the total-variation distance to the unpruned distribution.
  [[nodiscard]] double pruned() const { return pruned_; }
  /// P(X ≤ bit), counting retained mass only (pruned mass is *not*
  /// assumed below `bit`, so cdf is a guaranteed lower bound).
  [[nodiscard]] double cdf(std::int64_t bit) const;
  /// Smallest b with cdf(b) ≥ q · mass() — the nearest-rank quantile of
  /// the distribution conditioned on the retained mass. 0 when empty.
  [[nodiscard]] std::int64_t quantile(double q) const;
  /// Mean of the distribution conditioned on the retained mass.
  [[nodiscard]] double mean() const;

  /// X + bits (grid shift; support moves, masses unchanged).
  void shift(std::int64_t bits) { first_ += bits; }
  /// Multiply every mass by w (mixture weighting).
  void scale(double w);
  /// acc += w · other, in place, growing the support as needed.
  void add_scaled(const BitPmf& other, double w);
  /// Trim leading/trailing tail atoms while the total mass dropped stays
  /// ≤ eps; the dropped mass is added to pruned().
  void prune(double eps);

 private:
  friend class ConvRing;
  std::int64_t first_ = 0;
  std::vector<double> probs_;
  double pruned_ = 0.0;
};

/// The convolution kernel: a power-of-two circular buffer holding the
/// "current term" of a compound convolution (e.g. E^{⊛j} while expanding
/// a geometric number of error recoveries). `convolve()` multiplies the
/// term by another PMF *in place*, walking target indices from high to
/// low so no scratch buffer is needed; `prune()` advances the ring head,
/// recycling the vacated front slots for the growing back without any
/// data movement. Capacity grows by doubling (mask indexing), so the
/// whole expansion of a k-term compound costs O(k · support(E)²) work and
/// one buffer — near-linear in practice once tails are pruned.
class ConvRing {
 public:
  explicit ConvRing(const BitPmf& initial);

  /// this ← this ⊛ term, in place.
  void convolve(const BitPmf& term);
  /// Trim sub-epsilon tails (mass budget eps, tracked), advancing the
  /// ring head past dropped leading atoms.
  void prune(double eps);
  /// acc += weight · this, in place.
  void accumulate_into(BitPmf& acc, double weight) const;

  [[nodiscard]] BitPmf to_pmf() const;
  [[nodiscard]] std::size_t length() const { return len_; }
  [[nodiscard]] std::int64_t first_bit() const { return first_; }
  [[nodiscard]] double pruned() const { return pruned_; }
  /// Ring capacity — always a power of two (exposed for tests).
  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }

 private:
  [[nodiscard]] double& slot(std::size_t logical) {
    return ring_[(head_ + logical) & mask_];
  }
  [[nodiscard]] const double& slot(std::size_t logical) const {
    return ring_[(head_ + logical) & mask_];
  }
  void reserve(std::size_t need);

  std::vector<double> ring_;  ///< capacity a power of two
  std::size_t mask_ = 0;
  std::size_t head_ = 0;      ///< ring index of the first retained atom
  std::size_t len_ = 0;       ///< retained atoms
  std::int64_t first_ = 0;    ///< grid value of the first retained atom
  double pruned_ = 0.0;
};

/// Per-attempt omission-fault model mirroring the simulator's
/// RandomOmissionFaults: each transmission attempt is corrupted
/// independently with probability `p`; the error hits at a frame fraction
/// drawn uniformly from [min_fraction, 1), or always at the last bit when
/// `worst_case_position` (the adversarial variant the differential test
/// gates on, where the response distribution is purely atomic).
struct OmissionModel {
  double p = 0.0;
  bool worst_case_position = false;
  double min_fraction = 0.05;  ///< RandomOmissionFaults' floor
};

/// Numerical policy of the engine. `prune_eps` is the per-convolution
/// tail-pruning budget; `tail_eps` stops expanding geometric retry terms
/// once the remaining weight is below it. Both losses are tracked and
/// surface in ResponseDistribution::tail_epsilon — the documented error
/// bound on every reported probability.
struct ProbRtaOptions {
  double prune_eps = 1e-13;
  double tail_eps = 1e-12;
  int max_failures = 256;  ///< hard cap on modeled consecutive failures
};

/// PMF of the bus time one corrupted attempt consumes before the retry
/// can start: error-position data bits (the simulator charges
/// max(1, ceil(frac · frame_bits))) + the 20-bit error frame + the 3-bit
/// intermission. Exact mirror of canbus/bus.cpp's charging rule.
[[nodiscard]] BitPmf error_recovery_pmf(int frame_bits,
                                        const OmissionModel& model);

/// A response-time distribution plus the probabilities the analysis
/// cannot place on the grid: `miss_probability` is the chance the message
/// is not delivered in time (fault assumption violated, or — for the hop
/// model — deadline exceeded); `tail_epsilon` bounds the mass lost to
/// pruning/truncation (all of it conservatively counted into
/// `miss_probability` where a deadline is involved). The PMF is
/// sub-probability: mass() ≈ 1 − miss_probability − tail_epsilon, and
/// quantile() conditions on delivery.
struct ResponseDistribution {
  BitPmf pmf;
  double miss_probability = 0.0;
  double tail_epsilon = 0.0;
};

/// Response distribution (ready → end of successful frame, in bit times)
/// of a sole-publisher HRT slot with `omission_degree` provisioned
/// retries: R = frame_bits + Σ_{i≤j} recovery_i with j ≤ omission_degree
/// failures, P(j failures) = p^j (1−p); the fault assumption is violated
/// with probability exactly p^(omission_degree+1). With no blocker and
/// priority 0, nothing else interposes (§3.2 of the paper) — this is an
/// *exact* model of the simulator, which the differential test exploits.
[[nodiscard]] ResponseDistribution hrt_response_distribution(
    int frame_bits, int omission_degree, const OmissionModel& model,
    const ProbRtaOptions& options = {});

/// One competing message stream in a hop admission query, in bit times.
struct HopInterferer {
  int frame_bits = 0;
  std::int64_t period_bits = 0;
};

/// Admission query for one message on one segment: the message itself, a
/// worst-case non-preemptable blocker, the competing streams that can win
/// arbitration against it, the segment's fault rate and the transmission
/// deadline the route promises on this hop.
struct HopQuery {
  int frame_bits = 0;
  std::int64_t blocking_bits = 0;
  std::int64_t deadline_bits = 0;
  OmissionModel faults;
  std::vector<HopInterferer> interferers;
};

/// Conservative busy-window response distribution of one hop: worst-case
/// blocker as a point mass, all interferers released at the critical
/// instant and re-released every period (each instance carrying its own
/// geometric error-recovery compound), the message's own retries
/// unbounded but truncated at the deadline. The result stochastically
/// dominates every feasible phasing, so miss_probability is a sound upper
/// bound — the probabilistic analogue of the T009/T010 bounds.
[[nodiscard]] ResponseDistribution hop_response_distribution(
    const HopQuery& query, const ProbRtaOptions& options = {});

/// Union-bound composition of per-hop miss probabilities along a route:
/// 1 − Π (1 − p_i), the probability at least one hop misses.
[[nodiscard]] double compose_route_miss(std::span<const double> hop_miss);

/// Floor conversion of a duration to whole bit times.
[[nodiscard]] std::int64_t duration_to_bits(Duration d, const BusConfig& bus);

}  // namespace rtec
