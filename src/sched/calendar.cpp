#include "sched/calendar.hpp"

#include <algorithm>
#include <cassert>

namespace rtec {

Calendar::Calendar(Config cfg)
    : cfg_{cfg}, t_wait_{max_blocking_time(cfg.bus)} {
  assert(cfg.round_length > Duration::zero());
  assert(cfg.gap >= Duration::zero());
}

SlotTiming Calendar::timing_of(const SlotSpec& spec) const {
  SlotTiming t;
  t.lst_offset = spec.lst_offset;
  t.ready_offset = spec.lst_offset - t_wait_;
  t.deadline_offset = spec.lst_offset + hrt_wctt(spec.dlc, spec.fault, cfg_.bus);
  return t;
}

SlotTiming Calendar::timing(std::size_t i) const {
  assert(i < slots_.size());
  return timing_of(slots_[i]);
}

Expected<std::size_t, AdmissionError> Calendar::reserve(const SlotSpec& spec) {
  if (spec.dlc < 0 || spec.dlc > 8 || spec.etag > kMaxEtag ||
      spec.publisher > kMaxNodeId || spec.fault.omission_degree < 0 ||
      spec.fault.omission_degree > kMaxOmissionDegree ||
      spec.period_rounds < 1 || spec.period_rounds > kMaxPeriodRounds ||
      spec.phase_round < 0 || spec.phase_round >= spec.period_rounds)
    return Unexpected{AdmissionError::kBadSpec};
  // Reject LST offsets outside the round before deriving the window: any
  // admissible window needs ready >= 0 and deadline <= round anyway, and
  // checking first keeps timing_of's arithmetic bounded by the round.
  if (spec.lst_offset < Duration::zero() ||
      spec.lst_offset > cfg_.round_length)
    return Unexpected{AdmissionError::kWindowOutsideRound};

  const SlotTiming t = timing_of(spec);
  if (t.ready_offset < Duration::zero() ||
      t.deadline_offset > cfg_.round_length)
    return Unexpected{AdmissionError::kWindowOutsideRound};

  // Pairwise separation, circular over the round boundary. Two windows on
  // the round circle are disjoint with gap >= ΔG_min iff the forward gap
  // from each window's end to the other's start is >= ΔG_min *and* the two
  // gaps plus the two window lengths tile the whole round (the consistency
  // condition rejects containment/equality, where both "gaps" wrap).
  const std::int64_t round_ns = cfg_.round_length.ns();
  auto fwd = [round_ns](Duration from, Duration to) {
    std::int64_t d = (to - from).ns() % round_ns;
    if (d < 0) d += round_ns;
    return d;
  };
  for (const SlotSpec& other : slots_) {
    const SlotTiming o = timing_of(other);
    const std::int64_t gap_to = fwd(o.deadline_offset, t.ready_offset);
    const std::int64_t gap_from = fwd(t.deadline_offset, o.ready_offset);
    const std::int64_t len_t = (t.deadline_offset - t.ready_offset).ns();
    const std::int64_t len_o = (o.deadline_offset - o.ready_offset).ns();
    const bool consistent = gap_to + gap_from + len_t + len_o == round_ns;
    if (!consistent || gap_to < cfg_.gap.ns() || gap_from < cfg_.gap.ns())
      return Unexpected{AdmissionError::kOverlap};
  }

  slots_.push_back(spec);
  return slots_.size() - 1;
}

double Calendar::reserved_fraction() const {
  Duration sum = Duration::zero();
  for (const SlotSpec& s : slots_) {
    const SlotTiming t = timing_of(s);
    sum += (t.deadline_offset - t.ready_offset) + cfg_.gap;
  }
  return static_cast<double>(sum.ns()) /
         static_cast<double>(cfg_.round_length.ns());
}

Calendar::Instance Calendar::instance_at_or_after(std::size_t i,
                                                  TimePoint after) const {
  assert(i < slots_.size());
  const SlotSpec& spec = slots_[i];
  const SlotTiming t = timing(i);
  const std::int64_t round_ns = cfg_.round_length.ns();
  // A sub-rate slot (period_rounds = m) only carries instances in rounds
  // r with r % m == phase; its effective period is m rounds.
  const std::int64_t period_ns = round_ns * spec.period_rounds;
  const std::int64_t first_ready =
      t.ready_offset.ns() + round_ns * spec.phase_round;

  std::int64_t n = 0;
  const std::int64_t delta = after.ns() - first_ready;
  if (delta > 0) n = (delta + period_ns - 1) / period_ns;  // ceil

  Instance inst;
  inst.round = static_cast<std::uint64_t>(spec.phase_round +
                                          n * spec.period_rounds);
  const TimePoint round_start =
      TimePoint::origin() +
      cfg_.round_length * static_cast<std::int64_t>(inst.round);
  inst.ready = round_start + t.ready_offset;
  inst.lst = round_start + t.lst_offset;
  inst.deadline = round_start + t.deadline_offset;
  return inst;
}

}  // namespace rtec
