#include "sched/wctt.hpp"

#include <cassert>

namespace rtec {

Duration max_blocking_time(const BusConfig& bus) {
  const int bits = worst_case_wire_bits(8, /*extended=*/true) + kIntermissionBits;
  return bus.bit_time() * bits;
}

Duration hrt_wctt(int dlc, const FaultAssumption& fault, const BusConfig& bus) {
  assert(dlc >= 0 && dlc <= 8);
  assert(fault.omission_degree >= 0 &&
         fault.omission_degree <= kMaxOmissionDegree);
  const int c_max = worst_case_wire_bits(dlc, /*extended=*/true);
  const int failed_attempt = c_max + kErrorFrameBits + kIntermissionBits;
  const int total_bits = fault.omission_degree * failed_attempt + c_max;
  return bus.bit_time() * total_bits;
}

Duration hrt_slot_window(int dlc, const FaultAssumption& fault,
                         const BusConfig& bus) {
  return max_blocking_time(bus) + hrt_wctt(dlc, fault, bus);
}

}  // namespace rtec
