#pragma once

#include <cstdint>
#include <vector>

#include "canbus/can_types.hpp"
#include "sched/id_codec.hpp"
#include "sched/wctt.hpp"
#include "util/expected.hpp"
#include "util/time_types.hpp"

/// \file calendar.hpp
/// The reservation calendar for hard real-time event channels (paper §3.1):
/// communication is organized in rounds; a round is divided into time slots
/// assigned to HRTECs. The calendar corresponds to the Round Descriptor
/// List (RODL) of TTP. Reservations are made offline; the admission test
/// verifies them before any reservation is confirmed.
///
/// Each slot is specified by its Latest Start Time (LST) within the round.
/// Derived window (Fig. 3):
///
///    ready = LST − ΔT_wait      message must be in the controller here
///    [ready ............ LST]  absorbs one non-preemptable blocker
///    [LST ........ deadline ]  WCTT under the slot's fault assumption
///
/// Adjacent windows must be separated by at least ΔG_min, the worst-case
/// disagreement of any two synchronized node clocks, so that slot owners
/// can never overlap even with maximally skewed clocks.

namespace rtec {

/// One HRT slot reservation. A channel with multiple publishers needs one
/// slot per publishing node (§3.1); a channel with a higher rate than the
/// round may reserve multiple slots per round; a channel *slower* than the
/// round declares `period_rounds` > 1 and only has instances every m-th
/// round (the window is still reserved each round by the admission test —
/// conservative, but the unused instances are reclaimed by lower-priority
/// traffic anyway, which is the protocol's whole point).
struct SlotSpec {
  Duration lst_offset = Duration::zero();  ///< LST relative to round start
  int dlc = 8;                             ///< reserved message size
  FaultAssumption fault;                   ///< omission degree the slot absorbs
  Etag etag = 0;                           ///< bound subject of the channel
  NodeId publisher = 0;                    ///< the only node allowed to send here
  bool periodic = true;  ///< sporadic slots may legitimately stay unused
  int period_rounds = 1; ///< instances every m-th round (m >= 1)
  int phase_round = 0;   ///< which round of the m-cycle carries the instance
};

/// Upper bound on period_rounds the admission test accepts. A channel a
/// million times slower than the round has no business reserving a window
/// every round, and the bound keeps instance arithmetic
/// (round_length * period_rounds) inside 64-bit nanoseconds.
inline constexpr int kMaxPeriodRounds = 1'000'000;

/// Derived absolute offsets of a slot within the round.
struct SlotTiming {
  Duration ready_offset;     ///< LST − ΔT_wait
  Duration lst_offset;       ///< guaranteed latest transmission start
  Duration deadline_offset;  ///< LST + WCTT: transmission & delivery deadline
};

enum class AdmissionError : std::uint8_t {
  kBadSpec,             ///< dlc/etag/node out of range
  kWindowOutsideRound,  ///< ready < 0 or deadline > round length
  kOverlap,             ///< violates window separation >= ΔG_min
};

class Calendar {
 public:
  struct Config {
    Duration round_length = Duration::milliseconds(10);
    /// ΔG_min: minimal gap between adjacent windows; the paper assumes a
    /// conservative 40 µs for its clock-sync quality.
    Duration gap = Duration::microseconds(40);
    BusConfig bus;
  };

  explicit Calendar(Config cfg);

  /// Admission test + reservation (paper §3.1: "the correctness of the
  /// reservations regarding timing conflicts and temporal overlap are
  /// checked by an admission test ... before any new reservation is
  /// confirmed"). Returns the slot index on success.
  Expected<std::size_t, AdmissionError> reserve(const SlotSpec& spec);

  [[nodiscard]] const Config& config() const { return cfg_; }
  [[nodiscard]] std::size_t size() const { return slots_.size(); }
  [[nodiscard]] const SlotSpec& slot(std::size_t i) const { return slots_[i]; }
  [[nodiscard]] SlotTiming timing(std::size_t i) const;
  [[nodiscard]] SlotTiming timing_of(const SlotSpec& spec) const;

  /// ΔT_wait for this bus: the non-preemptable blocking any slot absorbs.
  [[nodiscard]] Duration t_wait() const { return t_wait_; }

  /// Fraction of the round covered by reserved windows (incl. gaps) — the
  /// "conservative worst-case share" the paper argues can be reclaimed.
  [[nodiscard]] double reserved_fraction() const;

  /// One concrete occurrence of a slot on a clock's timeline.
  struct Instance {
    std::uint64_t round = 0;
    TimePoint ready;     ///< latest ready time
    TimePoint lst;       ///< latest start time
    TimePoint deadline;  ///< transmission & delivery deadline
  };

  /// Earliest instance of slot `i` whose ready time is >= `after`. Times are
  /// on the same timeline as `after` (callers pass node-local time).
  [[nodiscard]] Instance instance_at_or_after(std::size_t i, TimePoint after) const;

 private:
  Config cfg_;
  Duration t_wait_;
  std::vector<SlotSpec> slots_;
};

}  // namespace rtec
