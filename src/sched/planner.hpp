#pragma once

#include <string>
#include <vector>

#include "sched/calendar.hpp"
#include "util/expected.hpp"

/// \file planner.hpp
/// Offline calendar synthesis — the tooling side of §3.1's "reservations
/// are made off-line". Given the HRT streams a system needs (period,
/// message size, fault assumption, publisher), the planner chooses a
/// round length and places the slots so the admission test accepts them,
/// or explains why no calendar exists.
///
/// Strategy: the round is the shortest requested period (every stream
/// with a longer period gets one slot per round and simply leaves some
/// instances unused — sporadic-style, reclaimed on the bus); slots are
/// placed first-fit in decreasing window order after the optional
/// infrastructure (sync) slot. This is deliberately simple and
/// conservative; anything it accepts is guaranteed feasible because the
/// Calendar's own admission test re-checks every placement.

namespace rtec {

struct HrtStreamRequest {
  Etag etag = 0;
  NodeId publisher = 0;
  int dlc = 8;
  FaultAssumption fault;
  /// Desired publication period. Must be an integer multiple of the
  /// shortest requested period (harmonic sets; non-harmonic periods would
  /// need per-round schedules, which the paper's single-calendar model
  /// does not cover).
  Duration period;
  bool periodic = true;
};

struct PlanError {
  enum class Kind {
    kNoStreams,
    kNonHarmonicPeriods,
    kOverSubscribed,   ///< windows + gaps exceed the round
    kPlacementFailed,  ///< first-fit could not place a slot
  };
  Kind kind{};
  std::string detail;
};

struct CalendarPlan {
  Calendar calendar;
  /// Index of each request's slot in the calendar (request order).
  std::vector<std::size_t> slot_of_request;
  double reserved_fraction = 0;
};

/// Synthesizes a calendar for the requests. When `sync_master` is
/// non-negative the first slot is reserved for the clock-sync round
/// (etag kSyncRefEtag) as Scenario::enable_clock_sync expects.
[[nodiscard]] Expected<CalendarPlan, PlanError> plan_calendar(
    const std::vector<HrtStreamRequest>& requests, Calendar::Config base_cfg,
    int sync_master = -1);

[[nodiscard]] std::string_view to_string(PlanError::Kind k);

}  // namespace rtec
