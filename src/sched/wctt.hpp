#pragma once

#include "canbus/can_types.hpp"
#include "canbus/frame.hpp"
#include "util/time_types.hpp"

/// \file wctt.hpp
/// Worst-case transmission time (WCTT) analysis for hard real-time messages
/// under the paper's fault assumption, following Livani & Kaiser (WPDRTS'99).
///
/// An HRT message is released into the controller at the *latest ready time*
/// LST − ΔT_wait with the exclusive priority 0. From that point:
///  * at most one non-preemptable lower-priority frame can block it, for at
///    most ΔT_wait (the longest possible frame + intermission);
///  * each of up to k corrupted attempts (omission degree k) occupies the
///    bus for at most a worst-case frame plus an error frame plus the
///    intermission before the retry — nothing else can interpose because
///    priority 0 wins every re-arbitration;
///  * the final, successful attempt takes one worst-case frame.
/// The transmission deadline (= guaranteed delivery point, where the
/// middleware releases the event to subscribers) is LST + hrt_wctt().

namespace rtec {

/// The paper's fault assumption for one HRT channel: at most
/// `omission_degree` consecutive corrupted transmissions of one message.
struct FaultAssumption {
  int omission_degree = 0;
};

/// Upper bound on the omission degree the model accepts. The paper works
/// with single-digit k (each masked fault costs a worst-case frame of
/// reserved window); 64 retries of one message is already far past any
/// sensible fault assumption, and the bound keeps every window
/// computation comfortably inside 64-bit nanoseconds.
inline constexpr int kMaxOmissionDegree = 64;

/// Longest time a just-started lower-priority frame can occupy the bus:
/// a worst-case 8-byte extended data frame plus the intermission. This is
/// ΔT_wait from Fig. 3 (the paper quotes ≈154 µs at 1 Mbit/s with slightly
/// less conservative stuffing accounting; the exact worst case of this
/// simulator's frame model is used instead).
[[nodiscard]] Duration max_blocking_time(const BusConfig& bus);

/// Worst-case bus time from LST until the message's end-of-frame delivery,
/// assuming it is already in the controller and no blocking (blocking is
/// accounted separately via ΔT_wait):
/// k * (C_max + error frame + intermission) + C_max.
[[nodiscard]] Duration hrt_wctt(int dlc, const FaultAssumption& fault,
                                const BusConfig& bus);

/// Total reserved window length for one HRT slot:
/// ΔT_wait (pre-LST blocking absorption) + hrt_wctt (from LST to delivery).
[[nodiscard]] Duration hrt_slot_window(int dlc, const FaultAssumption& fault,
                                       const BusConfig& bus);

}  // namespace rtec
