#pragma once

#include <array>
#include <cassert>
#include <cstddef>
#include <optional>

/// \file ring_buffer.hpp
/// Bounded FIFO ring buffer. Backs the subscriber-side event queues that the
/// paper's API passes to subscribe() ("the middleware stores the event in
/// some predefined memory area") and the NRT fragment pipelines.

namespace rtec {

template <typename T, std::size_t N>
class RingBuffer {
  static_assert(N > 0);

 public:
  [[nodiscard]] static constexpr std::size_t capacity() { return N; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] bool full() const { return size_ == N; }

  /// Enqueues `v`; returns false (and drops `v`) when full.
  [[nodiscard]] bool push(const T& v) {
    if (full()) return false;
    buf_[(head_ + size_) % N] = v;
    ++size_;
    return true;
  }

  /// Enqueues `v`, evicting the oldest element when full. Returns true when
  /// an eviction happened. Used by overwrite-on-overflow event queues where
  /// a subscriber prefers the freshest sensor reading over a backlog.
  bool push_overwrite(const T& v) {
    const bool evicted = full();
    if (evicted) (void)pop();
    const bool ok = push(v);
    assert(ok);
    (void)ok;
    return evicted;
  }

  /// Dequeues the oldest element; empty optional when there is none.
  [[nodiscard]] std::optional<T> pop() {
    if (empty()) return std::nullopt;
    T v = std::move(buf_[head_]);
    head_ = (head_ + 1) % N;
    --size_;
    return v;
  }

  [[nodiscard]] const T& front() const {
    assert(!empty());
    return buf_[head_];
  }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  std::array<T, N> buf_{};
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace rtec
