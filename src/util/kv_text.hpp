#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>

#include "util/expected.hpp"

/// \file kv_text.hpp
/// Strict "key=value" token parsing shared by the configuration-image
/// formats (sched/calendar_io.hpp, analysis/scenario_spec.hpp). The
/// parsers are deliberately unforgiving: configuration images are the
/// artifact the paper's offline admission argument rests on, so a
/// truncated or tampered line must produce a diagnostic, never a silent
/// default (unknown keys, duplicate keys, non-numeric or overflowing
/// values are all hard errors).

namespace rtec {

/// Parsed key=value tokens of one directive line, values kept as raw text.
class KvMap {
 public:
  std::map<std::string, std::string, std::less<>> values;

  [[nodiscard]] bool contains(std::string_view key) const {
    return values.find(key) != values.end();
  }

  /// The value of `key` parsed as a decimal signed 64-bit integer.
  /// Errors: key absent, empty/non-numeric value, trailing garbage,
  /// value outside int64 range.
  [[nodiscard]] Expected<std::int64_t, std::string> get_int(
      std::string_view key) const;

  /// get_int, but additionally rejects values outside [lo, hi].
  [[nodiscard]] Expected<std::int64_t, std::string> get_int_in(
      std::string_view key, std::int64_t lo, std::int64_t hi) const;

  /// The value of `key` parsed as a finite decimal floating-point number
  /// (scientific notation accepted — fault rates and miss targets live at
  /// 1e-9 scale). Same strictness as get_int: trailing garbage, inf/nan
  /// and overflow are errors.
  [[nodiscard]] Expected<double, std::string> get_double(
      std::string_view key) const;

  /// get_double, but additionally rejects values outside [lo, hi].
  [[nodiscard]] Expected<double, std::string> get_double_in(
      std::string_view key, double lo, double hi) const;

  /// The raw text value (for non-numeric fields such as class=srt).
  [[nodiscard]] Expected<std::string, std::string> get_str(
      std::string_view key) const;
};

/// Splits the whitespace-separated remainder of a directive line into
/// key=value pairs. Every key must appear in `allowed` and at most once;
/// a token without '=', with an empty key, or with an empty value is
/// rejected. Returns a message describing the first problem.
[[nodiscard]] Expected<KvMap, std::string> parse_kv_tokens(
    std::string_view rest, std::span<const std::string_view> allowed);

}  // namespace rtec
