#include "util/logging.hpp"

#include <cstdlib>
#include <cstring>

namespace rtec {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

namespace {
const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "error";
    case LogLevel::kWarn: return "warn ";
    case LogLevel::kInfo: return "info ";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kOff: break;
  }
  return "?    ";
}
}  // namespace

void Logger::init_from_env() {
  const char* env = std::getenv("RTEC_LOG");
  if (env == nullptr) return;
  if (std::strcmp(env, "error") == 0) set_level(LogLevel::kError);
  else if (std::strcmp(env, "warn") == 0) set_level(LogLevel::kWarn);
  else if (std::strcmp(env, "info") == 0) set_level(LogLevel::kInfo);
  else if (std::strcmp(env, "debug") == 0) set_level(LogLevel::kDebug);
  else set_level(LogLevel::kOff);
}

void Logger::log(LogLevel level, TimePoint now, std::string_view component,
                 std::string_view message) {
  if (!enabled(level)) return;
  std::fprintf(stderr, "[%12.3fms] [%s] %.*s: %.*s\n", now.ms(), level_tag(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace rtec
