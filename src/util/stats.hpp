#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/time_types.hpp"

/// \file stats.hpp
/// Measurement primitives used by the trace layer and benches: streaming
/// moments (Welford) and an exact-quantile sample collector. Latency and
/// jitter figures in EXPERIMENTS.md come from these.

namespace rtec {

/// Nearest-rank index of the q-quantile among n ascending samples — the
/// ONE quantile convention of the repo. SampleSet, trace::Histogram and
/// the bench median helpers all delegate here, so analytic-vs-simulated
/// quantile comparisons (bench_analytic) can never disagree about rank
/// arithmetic. q is clamped to [0, 1]; n must be ≥ 1.
[[nodiscard]] std::size_t quantile_rank(std::size_t n, double q);

/// Streaming mean / variance / extrema without storing samples.
class OnlineStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }
  /// Peak-to-peak spread — the paper's notion of (latency) jitter bound.
  [[nodiscard]] double span() const { return n_ > 0 ? max_ - min_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Stores every sample; provides exact quantiles. Fine for bench-scale runs
/// (millions of samples at 8 bytes each).
class SampleSet {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  void add(Duration d) { add(static_cast<double>(d.ns())); }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  /// Exact q-quantile by nearest-rank (q in [0,1]); 0 when empty.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }
  [[nodiscard]] double min() const { return quantile(0.0); }
  [[nodiscard]] double max() const { return quantile(1.0); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;

  /// Raw samples (order unspecified once a quantile has been taken).
  [[nodiscard]] const std::vector<double>& values() const { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

}  // namespace rtec
