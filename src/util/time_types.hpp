#pragma once

#include <cstdint>
#include <compare>
#include <limits>

/// \file time_types.hpp
/// Strong integer time types used throughout the simulator and middleware.
///
/// All simulated time is kept as signed 64-bit nanoseconds. A signed
/// representation lets intermediate arithmetic (deadline - now, clock offset
/// corrections) go negative without wrapping. At nanosecond resolution the
/// range covers ~292 years of simulated time, far beyond any run.

namespace rtec {

/// A span of time (difference of two TimePoints), integer nanoseconds.
class Duration {
 public:
  constexpr Duration() = default;

  static constexpr Duration nanoseconds(std::int64_t v) { return Duration{v}; }
  static constexpr Duration microseconds(std::int64_t v) { return Duration{v * 1000}; }
  static constexpr Duration milliseconds(std::int64_t v) { return Duration{v * 1'000'000}; }
  static constexpr Duration seconds(std::int64_t v) { return Duration{v * 1'000'000'000}; }

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double us() const { return static_cast<double>(ns_) / 1e3; }
  [[nodiscard]] constexpr double ms() const { return static_cast<double>(ns_) / 1e6; }
  [[nodiscard]] constexpr double sec() const { return static_cast<double>(ns_) / 1e9; }

  [[nodiscard]] static constexpr Duration zero() { return Duration{0}; }
  [[nodiscard]] static constexpr Duration max() {
    return Duration{std::numeric_limits<std::int64_t>::max()};
  }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration operator+(Duration o) const { return Duration{ns_ + o.ns_}; }
  constexpr Duration operator-(Duration o) const { return Duration{ns_ - o.ns_}; }
  constexpr Duration operator-() const { return Duration{-ns_}; }
  constexpr Duration operator*(std::int64_t k) const { return Duration{ns_ * k}; }
  constexpr std::int64_t operator/(Duration o) const { return ns_ / o.ns_; }
  constexpr Duration operator/(std::int64_t k) const { return Duration{ns_ / k}; }
  constexpr Duration operator%(Duration o) const { return Duration{ns_ % o.ns_}; }
  constexpr Duration& operator+=(Duration o) { ns_ += o.ns_; return *this; }
  constexpr Duration& operator-=(Duration o) { ns_ -= o.ns_; return *this; }

 private:
  explicit constexpr Duration(std::int64_t v) : ns_{v} {}
  std::int64_t ns_ = 0;
};

/// An absolute point on a timeline (simulated "perfect" time, or a node's
/// local clock reading), integer nanoseconds since the timeline origin.
class TimePoint {
 public:
  constexpr TimePoint() = default;

  static constexpr TimePoint from_ns(std::int64_t v) { return TimePoint{v}; }

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double us() const { return static_cast<double>(ns_) / 1e3; }
  [[nodiscard]] constexpr double ms() const { return static_cast<double>(ns_) / 1e6; }
  [[nodiscard]] constexpr double sec() const { return static_cast<double>(ns_) / 1e9; }

  [[nodiscard]] static constexpr TimePoint origin() { return TimePoint{0}; }
  [[nodiscard]] static constexpr TimePoint max() {
    return TimePoint{std::numeric_limits<std::int64_t>::max()};
  }

  constexpr auto operator<=>(const TimePoint&) const = default;

  constexpr TimePoint operator+(Duration d) const { return TimePoint{ns_ + d.ns()}; }
  constexpr TimePoint operator-(Duration d) const { return TimePoint{ns_ - d.ns()}; }
  constexpr Duration operator-(TimePoint o) const {
    return Duration::nanoseconds(ns_ - o.ns_);
  }
  constexpr TimePoint& operator+=(Duration d) { ns_ += d.ns(); return *this; }
  constexpr TimePoint& operator-=(Duration d) { ns_ -= d.ns(); return *this; }

 private:
  explicit constexpr TimePoint(std::int64_t v) : ns_{v} {}
  std::int64_t ns_ = 0;
};

namespace literals {
constexpr Duration operator""_ns(unsigned long long v) {
  return Duration::nanoseconds(static_cast<std::int64_t>(v));
}
constexpr Duration operator""_us(unsigned long long v) {
  return Duration::microseconds(static_cast<std::int64_t>(v));
}
constexpr Duration operator""_ms(unsigned long long v) {
  return Duration::milliseconds(static_cast<std::int64_t>(v));
}
constexpr Duration operator""_s(unsigned long long v) {
  return Duration::seconds(static_cast<std::int64_t>(v));
}
}  // namespace literals

}  // namespace rtec
