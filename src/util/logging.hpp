#pragma once

#include <cstdio>
#include <string_view>

#include "util/time_types.hpp"

/// \file logging.hpp
/// Minimal leveled logger for the simulator. Off by default (benches and
/// tests run silent); examples turn on Info to narrate the scenario.
/// Deliberately not thread-aware: the simulation kernel is single-threaded
/// by design (deterministic discrete-event execution).

namespace rtec {

enum class LogLevel : int { kOff = 0, kError = 1, kWarn = 2, kInfo = 3, kDebug = 4 };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const {
    return static_cast<int>(level) <= static_cast<int>(level_);
  }

  /// Writes one line: "[  12.345ms] [info ] <component>: <message>".
  void log(LogLevel level, TimePoint now, std::string_view component,
           std::string_view message);

  /// printf-style convenience; formatting is skipped when the level is off.
  template <typename... Args>
  void logf(LogLevel level, TimePoint now, std::string_view component,
            const char* fmt, Args... args) {
    if (!enabled(level)) return;
    char buf[160];
    std::snprintf(buf, sizeof buf, fmt, args...);
    log(level, now, component, buf);
  }

  /// Sets the level from the RTEC_LOG environment variable
  /// (off|error|warn|info|debug); examples call this at startup.
  void init_from_env();

 private:
  LogLevel level_ = LogLevel::kOff;
};

}  // namespace rtec
