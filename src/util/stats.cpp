#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace rtec {

std::size_t quantile_rank(std::size_t n, double q) {
  q = std::clamp(q, 0.0, 1.0);
  return static_cast<std::size_t>(q * static_cast<double>(n - 1) + 0.5);
}

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double SampleSet::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  return samples_[quantile_rank(samples_.size(), q)];
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double SampleSet::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double s : samples_) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

}  // namespace rtec
