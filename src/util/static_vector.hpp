#pragma once

#include <array>
#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <new>
#include <type_traits>
#include <utility>

/// \file static_vector.hpp
/// Fixed-capacity vector with in-place storage — the workhorse container of
/// the middleware. On the 8/16-bit targets the paper's prototype ran on,
/// heap allocation on the event path is unacceptable; every queue in this
/// library is bounded and declared up front, so capacity overflow is a
/// configuration error surfaced by the admission layer, not a runtime
/// allocation.

namespace rtec {

template <typename T, std::size_t N>
class StaticVector {
 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  StaticVector() = default;

  StaticVector(std::initializer_list<T> init) {
    assert(init.size() <= N);
    for (const T& v : init) push_back(v);
  }

  StaticVector(const StaticVector& other) {
    for (const T& v : other) push_back(v);
  }
  StaticVector(StaticVector&& other) noexcept {
    for (T& v : other) push_back(std::move(v));
    other.clear();
  }
  StaticVector& operator=(const StaticVector& other) {
    if (this != &other) {
      clear();
      for (const T& v : other) push_back(v);
    }
    return *this;
  }
  StaticVector& operator=(StaticVector&& other) noexcept {
    if (this != &other) {
      clear();
      for (T& v : other) push_back(std::move(v));
      other.clear();
    }
    return *this;
  }
  ~StaticVector() { clear(); }

  [[nodiscard]] static constexpr std::size_t capacity() { return N; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] bool full() const { return size_ == N; }

  /// Appends a copy; asserts on overflow (bounded queues are sized by the
  /// admission layer — overflow is a configuration bug).
  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    assert(size_ < N && "StaticVector overflow");
    T* p = ::new (slot(size_)) T(std::forward<Args>(args)...);
    ++size_;
    return *p;
  }

  /// Non-asserting append for paths where overflow is an expected runtime
  /// condition (e.g. an RX queue under overload). Returns false when full.
  [[nodiscard]] bool try_push_back(const T& v) {
    if (full()) return false;
    push_back(v);
    return true;
  }

  void pop_back() {
    assert(size_ > 0);
    --size_;
    std::destroy_at(ptr(size_));
  }

  /// Removes the element at `i`, preserving the order of the remainder.
  void erase_at(std::size_t i) {
    assert(i < size_);
    for (std::size_t j = i + 1; j < size_; ++j) *ptr(j - 1) = std::move(*ptr(j));
    pop_back();
  }

  void clear() {
    while (size_ > 0) pop_back();
  }

  [[nodiscard]] T& operator[](std::size_t i) {
    assert(i < size_);
    return *ptr(i);
  }
  [[nodiscard]] const T& operator[](std::size_t i) const {
    assert(i < size_);
    return *ptr(i);
  }
  [[nodiscard]] T& front() { return (*this)[0]; }
  [[nodiscard]] const T& front() const { return (*this)[0]; }
  [[nodiscard]] T& back() { return (*this)[size_ - 1]; }
  [[nodiscard]] const T& back() const { return (*this)[size_ - 1]; }

  [[nodiscard]] iterator begin() { return ptr(0); }
  [[nodiscard]] iterator end() { return ptr(size_); }
  [[nodiscard]] const_iterator begin() const { return ptr(0); }
  [[nodiscard]] const_iterator end() const { return ptr(size_); }

 private:
  [[nodiscard]] void* slot(std::size_t i) { return &storage_[i]; }
  [[nodiscard]] T* ptr(std::size_t i) {
    return std::launder(reinterpret_cast<T*>(&storage_[i]));
  }
  [[nodiscard]] const T* ptr(std::size_t i) const {
    return std::launder(reinterpret_cast<const T*>(&storage_[i]));
  }

  alignas(T) std::array<std::byte[sizeof(T)], N> storage_;
  std::size_t size_ = 0;
};

}  // namespace rtec
