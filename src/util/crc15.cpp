#include "util/crc15.hpp"

namespace rtec {

std::uint16_t crc15(std::span<const bool> bits) {
  std::uint16_t crc = 0;
  for (bool b : bits) crc = crc15_step(crc, b);
  return crc;
}

}  // namespace rtec
