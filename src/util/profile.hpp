#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

/// \file profile.hpp
/// Simulated-time span profiling for engine components.
///
/// A span is a named duration population (count / total / min / max) over
/// *simulated* nanoseconds — e.g. how long each bus occupancy lasted, or
/// how far each parallel epoch advanced a shard. Everything here is
/// deterministic: spans measure the simulation's own timeline, never wall
/// clocks (which the determinism lint bans from engine sources), so a
/// profile is bit-identical across shard/thread counts just like the
/// traces.
///
/// The hook pattern keeps disabled profiling at zero cost: a component
/// holds a `SpanStats*` that defaults to nullptr and guards each record
/// with one branch. Enabling is wiring the pointer to a SpanProfiler slot
/// (slot addresses are stable for the profiler's lifetime); there is no
/// registry lookup, no string hashing and no allocation on the hot path.
/// trace/registry.hpp exports a profiler into a MetricsRegistry snapshot.

namespace rtec {

/// One span population. Plain aggregates; record() is branch-free beyond
/// the min/max updates.
struct SpanStats {
  std::uint64_t count = 0;
  std::int64_t total_ns = 0;
  std::int64_t min_ns = std::numeric_limits<std::int64_t>::max();
  std::int64_t max_ns = std::numeric_limits<std::int64_t>::min();

  void record(std::int64_t ns) {
    ++count;
    total_ns += ns;
    if (ns < min_ns) min_ns = ns;
    if (ns > max_ns) max_ns = ns;
  }

  [[nodiscard]] double mean_ns() const {
    return count > 0 ? static_cast<double>(total_ns) /
                           static_cast<double>(count)
                     : 0.0;
  }
};

/// Owns named SpanStats slots with stable addresses. Slots are created on
/// first request and iterated in creation order (which is deterministic —
/// components are wired in program order).
class SpanProfiler {
 public:
  SpanProfiler() = default;
  SpanProfiler(const SpanProfiler&) = delete;
  SpanProfiler& operator=(const SpanProfiler&) = delete;

  /// Finds or creates the slot for `name`. The returned pointer stays
  /// valid for the profiler's lifetime.
  [[nodiscard]] SpanStats* slot(std::string_view name) {
    for (const Slot& s : slots_)
      if (s.name == name) return s.stats.get();
    slots_.push_back(Slot{std::string{name}, std::make_unique<SpanStats>()});
    return slots_.back().stats.get();
  }

  [[nodiscard]] std::size_t size() const { return slots_.size(); }
  [[nodiscard]] const std::string& name(std::size_t i) const {
    return slots_[i].name;
  }
  [[nodiscard]] const SpanStats& at(std::size_t i) const {
    return *slots_[i].stats;
  }

 private:
  struct Slot {
    std::string name;
    std::unique_ptr<SpanStats> stats;  ///< stable address across growth
  };
  std::vector<Slot> slots_;
};

}  // namespace rtec
