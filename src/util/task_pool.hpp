#pragma once

#include <deque>
#include <functional>

/// \file task_pool.hpp
/// Stable storage for self-rescheduling callables.
///
/// Scenario scripts often need a callable that re-arms itself from inside
/// a timer or TX-completion callback:
///
///   TaskPool tasks;
///   auto* loop = tasks.make();
///   *loop = [&, loop] {
///     do_work();
///     sim.schedule_after(10_ms, [loop] { (*loop)(); });
///   };
///   (*loop)();
///
/// The pool owns every callable; the lambdas only capture the raw pointer,
/// so there is no shared_ptr ownership cycle (the classic
/// `make_shared<function<void()>>` self-capture idiom leaks by design —
/// LeakSanitizer rightly complains). Keep the pool alive for as long as
/// the simulation may invoke the tasks — typically as a local beside the
/// Scenario, or as a test-fixture member.

namespace rtec {

class TaskPool {
 public:
  /// Allocates an empty callable with a stable address (deque storage:
  /// existing elements never relocate when the pool grows).
  std::function<void()>* make() { return &pool_.emplace_back(); }

  [[nodiscard]] std::size_t size() const { return pool_.size(); }

 private:
  std::deque<std::function<void()>> pool_;
};

}  // namespace rtec
