#pragma once

#include <cstdint>
#include <span>

/// \file bytes.hpp
/// Little-endian scalar (de)serialization for CAN payloads. Explicit
/// byte-order helpers rather than memcpy: the simulated network is
/// "hardware" and its wire format must not depend on host endianness.

namespace rtec {

inline void store_le16(std::span<std::uint8_t> out, std::uint16_t v) {
  out[0] = static_cast<std::uint8_t>(v & 0xff);
  out[1] = static_cast<std::uint8_t>((v >> 8) & 0xff);
}

inline void store_le32(std::span<std::uint8_t> out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>((v >> (8 * i)) & 0xff);
}

inline void store_le64(std::span<std::uint8_t> out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>((v >> (8 * i)) & 0xff);
}

[[nodiscard]] inline std::uint16_t load_le16(std::span<const std::uint8_t> in) {
  return static_cast<std::uint16_t>(in[0] | (static_cast<std::uint16_t>(in[1]) << 8));
}

[[nodiscard]] inline std::uint32_t load_le32(std::span<const std::uint8_t> in) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | in[static_cast<std::size_t>(i)];
  return v;
}

[[nodiscard]] inline std::uint64_t load_le64(std::span<const std::uint8_t> in) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | in[static_cast<std::size_t>(i)];
  return v;
}

inline void store_le_i64(std::span<std::uint8_t> out, std::int64_t v) {
  store_le64(out, static_cast<std::uint64_t>(v));
}

[[nodiscard]] inline std::int64_t load_le_i64(std::span<const std::uint8_t> in) {
  return static_cast<std::int64_t>(load_le64(in));
}

}  // namespace rtec
