#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>

/// \file random.hpp
/// Deterministic PRNG (xoshiro256**) for workload generation and fault
/// injection. Every experiment seeds its generators explicitly so runs are
/// exactly reproducible; std::mt19937 is avoided because its distributions
/// are not portable across standard libraries.

namespace rtec {

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm),
/// seeded through SplitMix64 so that any 64-bit seed yields a well-mixed
/// state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : s_) {
      // SplitMix64 step.
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    assert(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    // Modulo bias is negligible for the span sizes used here (<< 2^64).
    return lo + static_cast<std::int64_t>(next_u64() % span);
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Exponential variate with the given mean (for Poisson arrivals).
  double exponential(double mean) {
    double u = uniform();
    if (u <= 0.0) u = 0x1.0p-53;  // avoid log(0)
    return -mean * std::log(u);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

}  // namespace rtec
