#pragma once

#include <cstdint>
#include <span>

/// \file crc15.hpp
/// The CAN CRC-15 (polynomial x^15 + x^14 + x^10 + x^8 + x^7 + x^4 + x^3 + 1,
/// i.e. 0x4599) as specified in Bosch CAN 2.0 §3.1.1. The simulator computes
/// the real CRC over the frame's stuffable bit region so that the stuffed
/// frame length — and therefore every transmission duration — is exact for
/// the concrete payload, not just a worst-case formula.

namespace rtec {

inline constexpr std::uint16_t kCrc15Poly = 0x4599;

/// Feeds one bit into a running CRC-15 register (Bosch 2.0 §3.1.1 algorithm).
[[nodiscard]] constexpr std::uint16_t crc15_step(std::uint16_t crc, bool bit) {
  const bool crc_next = bit != (((crc >> 14) & 1U) != 0);
  crc = static_cast<std::uint16_t>((crc << 1) & 0x7fff);
  if (crc_next) crc = static_cast<std::uint16_t>(crc ^ kCrc15Poly);
  return crc;
}

/// CRC-15 of a bit sequence given as booleans (MSB-first frame order).
[[nodiscard]] std::uint16_t crc15(std::span<const bool> bits);

}  // namespace rtec
