#pragma once

#include <cassert>
#include <utility>
#include <variant>

/// \file expected.hpp
/// Minimal std::expected stand-in (we target C++20; std::expected is C++23).
/// Used for all fallible middleware operations so that error handling is
/// explicit and allocation-free.

namespace rtec {

/// Tag wrapper to construct an Expected holding an error.
template <typename E>
struct Unexpected {
  E error;
};

template <typename E>
Unexpected(E) -> Unexpected<E>;

/// Either a value of type T or an error of type E.
template <typename T, typename E>
class [[nodiscard]] Expected {
 public:
  Expected(T value) : v_{std::in_place_index<0>, std::move(value)} {}  // NOLINT(google-explicit-constructor)
  Expected(Unexpected<E> u) : v_{std::in_place_index<1>, std::move(u.error)} {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool has_value() const { return v_.index() == 0; }
  explicit operator bool() const { return has_value(); }

  [[nodiscard]] T& value() & {
    assert(has_value());
    return std::get<0>(v_);
  }
  [[nodiscard]] const T& value() const& {
    assert(has_value());
    return std::get<0>(v_);
  }
  [[nodiscard]] T&& value() && {
    assert(has_value());
    return std::get<0>(std::move(v_));
  }
  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] T& operator*() & { return value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }
  [[nodiscard]] T* operator->() { return &value(); }

  [[nodiscard]] const E& error() const {
    assert(!has_value());
    return std::get<1>(v_);
  }

  [[nodiscard]] T value_or(T fallback) const {
    return has_value() ? std::get<0>(v_) : std::move(fallback);
  }

 private:
  std::variant<T, E> v_;
};

/// Specialization for operations that produce no value, only success/error.
template <typename E>
class [[nodiscard]] Expected<void, E> {
 public:
  Expected() = default;
  Expected(Unexpected<E> u) : error_{std::move(u.error)}, ok_{false} {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool has_value() const { return ok_; }
  explicit operator bool() const { return ok_; }

  [[nodiscard]] const E& error() const {
    assert(!ok_);
    return error_;
  }

 private:
  E error_{};
  bool ok_ = true;
};

}  // namespace rtec
