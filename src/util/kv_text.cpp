#include "util/kv_text.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <sstream>

namespace rtec {

Expected<std::int64_t, std::string> KvMap::get_int(std::string_view key) const {
  const auto it = values.find(key);
  if (it == values.end())
    return Unexpected{std::string{"missing "} + std::string{key}};
  const std::string& text = it->second;
  std::int64_t v = 0;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, v);
  if (ec == std::errc::result_out_of_range)
    return Unexpected{std::string{key} + " value out of range"};
  if (ec != std::errc{} || ptr != last)
    return Unexpected{std::string{"non-numeric value for "} + std::string{key}};
  return v;
}

Expected<std::int64_t, std::string> KvMap::get_int_in(std::string_view key,
                                                      std::int64_t lo,
                                                      std::int64_t hi) const {
  auto v = get_int(key);
  if (!v) return v;
  if (*v < lo || *v > hi)
    return Unexpected{std::string{key} + " out of range [" +
                      std::to_string(lo) + ", " + std::to_string(hi) + "]"};
  return v;
}

Expected<double, std::string> KvMap::get_double(std::string_view key) const {
  const auto it = values.find(key);
  if (it == values.end())
    return Unexpected{std::string{"missing "} + std::string{key}};
  const std::string& text = it->second;
  double v = 0.0;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, v);
  if (ec == std::errc::result_out_of_range)
    return Unexpected{std::string{key} + " value out of range"};
  if (ec != std::errc{} || ptr != last || !std::isfinite(v))
    return Unexpected{std::string{"non-numeric value for "} + std::string{key}};
  return v;
}

Expected<double, std::string> KvMap::get_double_in(std::string_view key,
                                                   double lo, double hi) const {
  auto v = get_double(key);
  if (!v) return v;
  if (*v < lo || *v > hi) {
    std::ostringstream msg;
    msg << key << " out of range [" << lo << ", " << hi << "]";
    return Unexpected{msg.str()};
  }
  return v;
}

Expected<std::string, std::string> KvMap::get_str(std::string_view key) const {
  const auto it = values.find(key);
  if (it == values.end())
    return Unexpected{std::string{"missing "} + std::string{key}};
  return it->second;
}

Expected<KvMap, std::string> parse_kv_tokens(
    std::string_view rest, std::span<const std::string_view> allowed) {
  KvMap kv;
  std::istringstream ls{std::string{rest}};
  std::string token;
  while (ls >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == token.size())
      return Unexpected{"malformed token '" + token + "' (want key=value)"};
    std::string key = token.substr(0, eq);
    if (std::find(allowed.begin(), allowed.end(), key) == allowed.end())
      return Unexpected{"unknown key '" + key + "'"};
    if (kv.contains(key)) return Unexpected{"duplicate key '" + key + "'"};
    kv.values.emplace(std::move(key), token.substr(eq + 1));
  }
  return kv;
}

}  // namespace rtec
