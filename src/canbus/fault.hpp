#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "canbus/can_types.hpp"
#include "canbus/frame.hpp"
#include "util/random.hpp"
#include "util/time_types.hpp"

/// \file fault.hpp
/// Fault injection for the CAN simulator.
///
/// The paper's fault model is *network omission faults and temporary node
/// faults*: a transmission is corrupted, every node (including the sender)
/// observes the error frame, the frame is consistently dropped everywhere,
/// and the sender knows it failed. HRT guarantees hold under an assumed
/// omission degree k (at most k consecutive corruptions of one message);
/// E2 probes both sides of that assumption.

namespace rtec {

/// Where inside the frame a deterministic fault model reports the error by
/// default: halfway through the transmission. Models that need the exact
/// worst case (last bit) or a near-immediate abort pass their own value.
inline constexpr double kDefaultErrorPosition = 0.5;

/// Everything a fault model may condition on.
struct FaultContext {
  const CanFrame& frame;
  NodeId sender;
  TimePoint start;   ///< transmission start (perfect time)
  int attempt;       ///< 1-based attempt number for this submission
};

/// Decides, per transmission attempt, whether the frame is corrupted.
class FaultModel {
 public:
  virtual ~FaultModel() = default;

  /// Returns the fraction of the frame (0, 1] at which the error hits, or
  /// nullopt for a clean transmission. The fraction determines how much bus
  /// time the aborted attempt consumes before the error frame.
  virtual std::optional<double> corrupt(const FaultContext& ctx) = 0;
};

/// Fault-free bus.
class NoFaults final : public FaultModel {
 public:
  std::optional<double> corrupt(const FaultContext&) override { return std::nullopt; }
};

/// Independent per-transmission omission faults with probability `p`; the
/// error position is uniform over the frame, unless `fixed_position` pins
/// it (1.0 = the error hits on the very last bit — the worst case the
/// analytic engine's `worst_case_position` mirrors exactly, which makes
/// fixed-position runs the tight differential oracle for sched/prob_rta).
/// A pinned position still consumes the uniform draw, so the Bernoulli
/// fault *pattern* of a given seed is identical in both modes.
class RandomOmissionFaults final : public FaultModel {
 public:
  RandomOmissionFaults(double p, std::uint64_t seed,
                       std::optional<double> fixed_position = std::nullopt)
      : p_{p}, fixed_position_{fixed_position}, rng_{seed} {}

  std::optional<double> corrupt(const FaultContext&) override {
    if (!rng_.bernoulli(p_)) return std::nullopt;
    const double u = 0.05 + 0.95 * rng_.uniform();  // past the first bits
    return fixed_position_.value_or(u);
  }

 private:
  double p_;
  std::optional<double> fixed_position_;
  Rng rng_;
};

/// Every transmission inside [from, to) is corrupted — models EMI bursts.
/// `error_position` (0, 1] is where inside the frame the error hits, which
/// fixes how much bus time each aborted attempt burns.
class BurstFaults final : public FaultModel {
 public:
  BurstFaults(TimePoint from, TimePoint to,
              double error_position = kDefaultErrorPosition)
      : from_{from}, to_{to}, error_position_{error_position} {}

  std::optional<double> corrupt(const FaultContext& ctx) override {
    if (ctx.start >= from_ && ctx.start < to_) return error_position_;
    return std::nullopt;
  }

 private:
  TimePoint from_;
  TimePoint to_;
  double error_position_;
};

/// Deterministic rule-based faults, e.g. "corrupt the first k attempts of
/// every frame with priority 0" — the workhorse of the HRT redundancy tests.
/// Rules are evaluated in add order and the first match wins (later rules
/// are not consulted), so stateful rules can rely on that short-circuit.
class ScriptedFaults final : public FaultModel {
 public:
  using Rule = std::function<bool(const FaultContext&)>;

  explicit ScriptedFaults(double error_position = kDefaultErrorPosition)
      : error_position_{error_position} {}

  void add_rule(Rule r) { rules_.push_back(std::move(r)); }

  std::optional<double> corrupt(const FaultContext& ctx) override {
    for (const auto& rule : rules_)
      if (rule(ctx)) return error_position_;
    return std::nullopt;
  }

 private:
  std::vector<Rule> rules_;
  double error_position_;
};

/// First child reporting a fault wins; later children are not consulted for
/// that transmission (their RNG streams only advance when reached). Owns
/// its children, so a composite handed to Scenario::set_fault_model keeps
/// every part alive for the scenario's whole lifetime.
class CompositeFaults final : public FaultModel {
 public:
  /// Takes ownership; returns the child for further configuration.
  FaultModel& add(std::unique_ptr<FaultModel> child) {
    children_.push_back(std::move(child));
    return *children_.back();
  }

  std::optional<double> corrupt(const FaultContext& ctx) override {
    for (const auto& c : children_)
      if (auto f = c->corrupt(ctx)) return f;
    return std::nullopt;
  }

 private:
  std::vector<std::unique_ptr<FaultModel>> children_;
};

}  // namespace rtec
