#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "canbus/can_types.hpp"
#include "canbus/frame.hpp"
#include "util/expected.hpp"
#include "util/time_types.hpp"

/// \file controller.hpp
/// Model of a CAN communication controller as seen by the middleware: a
/// small set of TX mailboxes with abort capability, hardware acceptance
/// filtering on the 29-bit identifier, per-attempt TX result notification,
/// and the standard transmit/receive error counters with error-passive and
/// bus-off behaviour.
///
/// Two properties of real controllers matter for the paper's protocol and
/// are modelled faithfully:
///  * a frame whose transmission has started cannot be aborted (this is why
///    HRT slots must be extended by ΔT_wait), and
///  * the transmitter knows whether the frame was received consistently
///    (CAN ACK + error signalling), which enables suppressing redundant
///    HRT copies and reclaiming slot bandwidth.

namespace rtec {

class CanBus;
class Simulator;

/// Transmission mode of a mailbox.
enum class TxMode : std::uint8_t {
  kAutoRetransmit,  ///< controller retries on error until success or abort
  kSingleShot,      ///< one attempt; failure is reported to the owner
};

enum class TxError : std::uint8_t {
  kNoFreeMailbox,
  kBusOff,
  kOffline,
  kInvalidFrame,
};

class CanController {
 public:
  struct Config {
    std::size_t tx_mailboxes = 4;
    /// TEC threshold for bus-off (ISO 11898 value).
    int bus_off_threshold = 256;
    /// When positive, the controller re-joins the bus this long after
    /// entering bus-off (models the 128 x 11-recessive-bit recovery
    /// sequence; ~1.41 ms at 1 Mbit/s). Zero disables auto-recovery (the
    /// application must call reset_errors()).
    Duration auto_recovery_delay = Duration::zero();
  };

  using MailboxId = std::size_t;

  /// Hardware acceptance filter: accept when (id & mask) == (match & mask).
  struct AcceptanceFilter {
    std::uint32_t match = 0;
    std::uint32_t mask = 0;
  };

  /// Called for every accepted received frame, at end-of-frame time.
  using RxHandler = std::function<void(const CanFrame&, TimePoint)>;
  /// Called when a submission leaves its mailbox: success, single-shot
  /// failure, or abort-by-bus-off.
  using TxResultHandler =
      std::function<void(MailboxId, const CanFrame&, bool success, TimePoint)>;

  CanController(Simulator& sim, NodeId node) : CanController(sim, node, Config{}) {}
  CanController(Simulator& sim, NodeId node, Config cfg);

  CanController(const CanController&) = delete;
  CanController& operator=(const CanController&) = delete;

  [[nodiscard]] NodeId node() const { return node_; }

  /// Registers an RX listener; every accepted frame is delivered to all
  /// listeners in registration order (middleware and services such as clock
  /// sync share one controller per node).
  void add_rx_listener(RxHandler h) { rx_listeners_.push_back(std::move(h)); }

  void add_acceptance_filter(AcceptanceFilter f) { filters_.push_back(f); }
  void clear_acceptance_filters() { filters_.clear(); }

  /// Queues a frame for transmission. The frame competes in bus arbitration
  /// with the other mailboxes of this and every other controller.
  /// `on_result` (optional) is invoked when the submission leaves its
  /// mailbox: success, single-shot failure, or abort-by-bus-off.
  Expected<MailboxId, TxError> submit(const CanFrame& frame, TxMode mode,
                                      TxResultHandler on_result = nullptr);

  /// Aborts a pending mailbox. Returns false when the mailbox is empty or
  /// its frame is currently on the wire (non-preemptive transmission).
  bool abort(MailboxId mb);

  /// Rewrites the identifier of a pending mailbox (the EDF promotion path:
  /// cheaper than abort+resubmit on real controllers). Fails like abort()
  /// when the frame is on the wire.
  bool rewrite_id(MailboxId mb, std::uint32_t new_id);

  [[nodiscard]] bool mailbox_pending(MailboxId mb) const;
  [[nodiscard]] bool has_free_mailbox() const;
  [[nodiscard]] std::size_t pending_count() const;

  /// Node crash / restart. Going offline clears all mailboxes silently.
  void set_online(bool online);
  [[nodiscard]] bool online() const { return online_; }

  [[nodiscard]] int tec() const { return tec_; }
  [[nodiscard]] int rec() const { return rec_; }
  [[nodiscard]] bool bus_off() const { return bus_off_; }
  [[nodiscard]] bool error_passive() const { return tec_ >= 128 || rec_ >= 128; }

  /// Recovers from bus-off (models the 128*11-recessive-bit recovery, which
  /// the middleware initiates explicitly).
  void reset_errors();

  // ------- interface used by CanBus (not by application code) -------

  /// Lowest-ID pending mailbox eligible for arbitration, if any.
  [[nodiscard]] std::optional<MailboxId> arbitration_candidate() const;
  [[nodiscard]] const CanFrame& mailbox_frame(MailboxId mb) const;
  [[nodiscard]] int mailbox_attempts(MailboxId mb) const;
  /// Exact wire bits of the pending frame, cached on the mailbox so
  /// retransmission attempts do not re-serialize and re-CRC the frame. The
  /// cache is invalidated whenever the mailbox content changes (submit,
  /// rewrite_id).
  [[nodiscard]] int mailbox_wire_bits(MailboxId mb) const;

  void on_tx_started(MailboxId mb);
  void on_tx_completed(MailboxId mb, bool success, TimePoint now);
  void on_rx(const CanFrame& frame, TimePoint now);
  /// A corrupted frame was observed on the bus (this node was receiving):
  /// bumps the receive error counter (ISO 11898 rule: +1 per receive
  /// error, decremented on each good reception).
  void on_rx_error();

 private:
  friend class CanBus;

  struct Mailbox {
    bool pending = false;
    bool transmitting = false;
    CanFrame frame;
    TxMode mode = TxMode::kAutoRetransmit;
    int attempts = 0;
    /// Lazily computed frame_wire_bits(frame); -1 = not yet computed.
    mutable int wire_bits = -1;
    TxResultHandler on_result;
  };

  [[nodiscard]] bool accepts(std::uint32_t id) const;
  void release_mailbox(MailboxId mb, bool success, TimePoint now);
  void enter_bus_off(TimePoint now);

  /// Any mailbox state change may move the arbitration winner, so drop the
  /// memoised candidate (recomputed on the next bus scan).
  void invalidate_arb_cache() { arb_cache_valid_ = false; }

  Simulator& sim_;
  NodeId node_;
  Config cfg_;
  CanBus* bus_ = nullptr;  // set by CanBus::attach
  std::vector<Mailbox> mailboxes_;
  /// Memoised arbitration_candidate() result. Every bus arbitration polls
  /// every attached controller, so without this cache large networks spend
  /// most of their wall time rescanning unchanged mailboxes (measured ~35%
  /// of bench_scale at 64 nodes).
  mutable std::optional<MailboxId> arb_cache_;
  mutable bool arb_cache_valid_ = false;
  std::vector<AcceptanceFilter> filters_;
  std::vector<RxHandler> rx_listeners_;
  bool online_ = true;
  bool bus_off_ = false;
  int tec_ = 0;
  int rec_ = 0;
};

}  // namespace rtec
