#include "canbus/attack.hpp"

#include <algorithm>
#include <cassert>

#include "sched/id_codec.hpp"

namespace rtec {

bool AttackModel::inject(const AttackContext& ctx, const CanFrame& frame) {
  assert(ctx.attacker != nullptr);
  // Single-shot: a real attacker that loses the slot it stole gains
  // nothing from the controller babbling retransmissions forever, and
  // single-shot keeps each injection's bus occupancy bounded.
  const auto mb = ctx.attacker->submit(
      frame, TxMode::kSingleShot,
      [this](CanController::MailboxId, const CanFrame&, bool success,
             TimePoint) {
        if (success) ++delivered_;
      });
  if (!mb) return false;
  ++injected_;
  return true;
}

// ---------------------------------------------------------------- spoofing

void SpoofingAttack::arm(const AttackContext& ctx) {
  assert(ctx.sim != nullptr && ctx.attacker != nullptr);
  assert(cfg_.period > Duration::zero());
  rng_ = Rng{ctx.seed};
  ctx.sim->schedule_at(cfg_.from, [this, ctx] { fire(ctx, cfg_.from); });
}

void SpoofingAttack::fire(const AttackContext& ctx, TimePoint slot) {
  if (slot >= cfg_.to) return;
  // Per-injection phase noise in [0, jitter] after the nominal point. The
  // draw is consumed even when jitter is zero so the injection *pattern*
  // of a given seed is invariant under jitter configuration.
  const std::int64_t noise =
      rng_.uniform_int(0, std::max<std::int64_t>(cfg_.jitter.ns(), 0));
  CanFrame f;
  f.id = cfg_.id;
  f.dlc = cfg_.dlc;
  f.data = cfg_.data;
  ctx.sim->schedule_at(slot + Duration::nanoseconds(noise),
                       [this, ctx, f] { (void)inject(ctx, f); });
  const TimePoint next = slot + cfg_.period;
  ctx.sim->schedule_at(next, [this, ctx, next] { fire(ctx, next); });
}

// ----------------------------------------------------------------- fuzzing

void FuzzingAttack::arm(const AttackContext& ctx) {
  assert(ctx.sim != nullptr && ctx.attacker != nullptr);
  assert(cfg_.mean_gap > Duration::zero());
  assert(cfg_.priority_min <= cfg_.priority_max);
  assert(cfg_.etag_min <= cfg_.etag_max && cfg_.etag_max <= kMaxEtag);
  rng_ = Rng{ctx.seed};
  ctx.sim->schedule_at(cfg_.from, [this, ctx] { fire(ctx); });
}

void FuzzingAttack::fire(const AttackContext& ctx) {
  if (ctx.sim->now() >= cfg_.to) return;
  CanIdFields fields;
  fields.priority = static_cast<Priority>(
      rng_.uniform_int(cfg_.priority_min, cfg_.priority_max));
  fields.tx_node = cfg_.forge_tx_node
                       ? static_cast<NodeId>(rng_.uniform_int(0, kMaxNodeId))
                       : ctx.attacker->node();
  fields.etag =
      static_cast<Etag>(rng_.uniform_int(cfg_.etag_min, cfg_.etag_max));
  CanFrame f;
  f.id = encode_can_id(fields);
  f.dlc = static_cast<std::uint8_t>(rng_.uniform_int(0, 8));
  for (std::size_t i = 0; i < f.dlc; ++i)
    f.data[i] = static_cast<std::uint8_t>(rng_.uniform_int(0, 255));
  (void)inject(ctx, f);

  const auto gap = static_cast<std::int64_t>(
      rng_.exponential(static_cast<double>(cfg_.mean_gap.ns())));
  ctx.sim->schedule_after(Duration::nanoseconds(std::max<std::int64_t>(gap, 1)),
                          [this, ctx] { fire(ctx); });
}

// ------------------------------------------------------------------ replay

void ReplayAttack::arm(const AttackContext& ctx) {
  assert(ctx.sim != nullptr && ctx.bus != nullptr && ctx.attacker != nullptr);
  assert(cfg_.record_from <= cfg_.record_to);
  assert(cfg_.replay_at >= cfg_.record_to &&
         "replay must start after the recording window closes");
  tape_.reserve(std::min<std::size_t>(cfg_.max_frames, 1024));
  const NodeId self = ctx.attacker->node();
  ctx.bus->add_observer([this, self](const CanBus::FrameEvent& ev) {
    if (!ev.success || ev.sender == self) return;
    if (ev.end < cfg_.record_from || ev.end >= cfg_.record_to) return;
    if ((ev.frame.id & cfg_.id_mask) != (cfg_.id_match & cfg_.id_mask)) return;
    if (tape_.size() >= cfg_.max_frames) return;
    tape_.push_back({ev.frame, ev.end - cfg_.record_from});
  });
  // The tape is complete when replay_at arrives (replay_at >= record_to).
  ctx.sim->schedule_at(cfg_.replay_at, [this, ctx] {
    for (const Recorded& r : tape_) {
      const CanFrame f = r.frame;
      ctx.sim->schedule_at(cfg_.replay_at + r.offset,
                           [this, ctx, f] { (void)inject(ctx, f); });
    }
  });
}

// -------------------------------------------------------------- suspension

void SuspensionAttack::arm(const AttackContext& ctx) {
  assert(ctx.sim != nullptr);
  assert(cfg_.from <= cfg_.to);
  ctx.sim->schedule_at(cfg_.from, [this, ctx] {
    if (CanController* victim =
            ctx.victim_controller ? ctx.victim_controller(cfg_.victim)
                                  : nullptr)
      victim->set_online(false);
  });
  ctx.sim->schedule_at(cfg_.to, [this, ctx] {
    if (CanController* victim =
            ctx.victim_controller ? ctx.victim_controller(cfg_.victim)
                                  : nullptr)
      victim->set_online(true);
  });
}

}  // namespace rtec
