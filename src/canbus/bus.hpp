#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "canbus/can_types.hpp"
#include "canbus/controller.hpp"
#include "canbus/fault.hpp"
#include "canbus/frame.hpp"
#include "sim/simulator.hpp"
#include "util/profile.hpp"
#include "util/time_types.hpp"

/// \file bus.hpp
/// Shared CAN bus with CSMA/CR arbitration, modelled at frame granularity
/// with bit-accurate durations.
///
/// Arbitration model: whenever the bus is free (after the 3-bit
/// intermission) every controller with a pending mailbox offers its
/// lowest-ID frame; the globally lowest identifier wins and transmits
/// non-preemptively. Requests arriving during a transmission wait for the
/// next arbitration point — exactly the granularity at which real CAN
/// decides bus access. Frame durations include the exact per-frame stuff
/// bits, so all timing properties (ΔT_wait, slot sizing, promotion windows)
/// are reproduced at 1-bit-time resolution.
///
/// Error semantics: a corrupted transmission occupies the bus up to the
/// error position plus a worst-case active error frame; all receivers
/// consistently drop it, and the sender is told the attempt failed. A
/// successful end-of-frame is delivered to every other online controller
/// and confirms to the sender that *all* operational nodes received it —
/// CAN's consistency property, which the paper exploits to suppress
/// redundant HRT copies.
///
/// Identifier collisions (attack scenarios): the middleware's TxNode field
/// rules out two *well-behaved* nodes offering the same identifier, but a
/// spoofing attacker (canbus/attack.hpp) forges exactly that. When two
/// controllers offer the same id at one arbitration point, both transmit
/// superimposed — arbitration cannot separate them — and the bus resolves
/// it the way real CAN does: at the first serialized bit where the two
/// frames differ, one node reads back the complement of what it drove and
/// signals an error; the attempt is corrupted at that bit position and
/// both transmitters take the tx-error hit. If the two frames are
/// bit-identical the transmissions superimpose cleanly: one frame appears
/// on the wire and both senders see it acknowledged. The deterministic
/// "primary" (the FrameEvent's sender) is the lower NodeId.

namespace rtec {

class CanBus {
 public:
  /// One completed bus occupancy (frame attempt), for observers.
  struct FrameEvent {
    NodeId sender = 0;
    CanFrame frame;
    TimePoint start;       ///< SOF time
    TimePoint end;         ///< end of frame / error delimiter
    bool success = false;  ///< false: corrupted, consistently dropped
    int wire_bits = 0;     ///< bits the bus was occupied (incl. error frame)
    int attempt = 0;       ///< sender-side attempt number
    /// Two nodes offered this identifier simultaneously (spoofing attack
    /// meeting its victim); `sender` is the lower-NodeId transmitter.
    bool collision = false;
  };
  using Observer = std::function<void(const FrameEvent&)>;

  explicit CanBus(Simulator& sim, BusConfig cfg = {});

  CanBus(const CanBus&) = delete;
  CanBus& operator=(const CanBus&) = delete;

  /// Attaches a controller; the bus does not own it.
  void attach(CanController& c);

  /// Installs the fault model (not owned); nullptr = fault-free.
  void set_fault_model(FaultModel* faults) { faults_ = faults; }

  void add_observer(Observer o) { observers_.push_back(std::move(o)); }

  /// Enables simulated-time span profiling of bus occupancies (nullptr
  /// disables; disabled hooks cost one branch per finished transmission).
  /// Records "<prefix>.occupancy_ok" / "<prefix>.occupancy_error": the
  /// wire time of each successful / corrupted attempt, arbitration-win to
  /// end-of-frame (resp. error delimiter).
  void set_profiler(SpanProfiler* p, const std::string& prefix = "bus");

  [[nodiscard]] const BusConfig& config() const { return cfg_; }
  [[nodiscard]] Simulator& simulator() { return sim_; }
  [[nodiscard]] bool idle() const { return state_ == State::kIdle; }

  // --- accounting (over the whole run) ---
  [[nodiscard]] Duration busy_time() const { return busy_time_; }
  [[nodiscard]] Duration error_time() const { return error_time_; }
  [[nodiscard]] std::uint64_t frames_ok() const { return frames_ok_; }
  [[nodiscard]] std::uint64_t frames_error() const { return frames_error_; }

  /// Fraction of [0, now) the bus carried anything (frames or error frames).
  [[nodiscard]] double utilization() const;

  /// Called by controllers when a mailbox becomes pending.
  void notify_tx_request();

 private:
  enum class State { kIdle, kTransmitting, kIntermission };

  void schedule_arbitration();
  void arbitrate();
  /// `rival` (nullable) is a second transmitter that offered the same
  /// identifier and drove the bus superimposed with `sender`.
  void finish_transmission(CanController* sender, CanController::MailboxId mb,
                           CanFrame frame, TimePoint start, bool success,
                           int wire_bits, int attempt, CanController* rival,
                           CanController::MailboxId rival_mb);
  void end_intermission();

  Simulator& sim_;
  BusConfig cfg_;
  std::vector<CanController*> controllers_;
  FaultModel* faults_ = nullptr;
  std::vector<Observer> observers_;

  State state_ = State::kIdle;
  bool arbitration_scheduled_ = false;

  Duration busy_time_ = Duration::zero();
  Duration error_time_ = Duration::zero();
  std::uint64_t frames_ok_ = 0;
  std::uint64_t frames_error_ = 0;
  SpanStats* span_ok_ = nullptr;   ///< nullptr: profiling disabled
  SpanStats* span_error_ = nullptr;
};

}  // namespace rtec
