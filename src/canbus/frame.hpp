#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "canbus/can_types.hpp"
#include "util/time_types.hpp"

/// \file frame.hpp
/// CAN 2.0 frame model with exact on-wire timing.
///
/// The protocol mechanisms this library reproduces (LST release, ΔT_wait
/// blocking extension, slot sizing, EDF promotion windows) are all defined
/// in terms of frame transmission times, so the simulator computes the
/// *exact* stuffed length of each concrete frame: it serializes the
/// stuffable bit region (SOF .. CRC sequence), applies the 5-bit stuffing
/// rule, and adds the fixed unstuffed tail (CRC delimiter, ACK slot, ACK
/// delimiter, EOF). Worst-case formulas (Davis et al. style) are provided
/// separately for the WCTT analysis in `sched/wctt.hpp`.

namespace rtec {

/// One CAN 2.0 frame. The middleware always uses 29-bit extended IDs
/// (CAN 2.0B) as required by the paper's identifier layout; 11-bit base
/// frames are supported for completeness and for the frame-format tests.
struct CanFrame {
  std::uint32_t id = 0;      ///< 29-bit (extended) or 11-bit (base) identifier.
  bool extended = true;      ///< IDE: extended (29-bit) format.
  bool rtr = false;          ///< Remote transmission request (no data field).
  std::uint8_t dlc = 0;      ///< Data length code, 0..8.
  std::array<std::uint8_t, 8> data{};

  [[nodiscard]] std::span<const std::uint8_t> payload() const {
    return {data.data(), dlc};
  }
};

inline constexpr std::uint32_t kMaxExtendedId = (1u << 29) - 1;
inline constexpr std::uint32_t kMaxBaseId = (1u << 11) - 1;

/// Unstuffed frame tail after the CRC sequence: CRC delimiter + ACK slot +
/// ACK delimiter + 7-bit EOF. Shared by the exact per-frame length and the
/// worst-case (Davis-style) bound.
inline constexpr int kFrameTailBits = 1 + 1 + 1 + 7;

/// Serialized stuffable bit region of a frame (SOF through CRC sequence),
/// with the CRC computed over the preceding bits. Maximum length:
/// 1+11+1+1+18+1+2+4+64+15 = 118 bits (extended, 8 data bytes).
struct FrameBits {
  std::array<bool, 128> bits{};
  int count = 0;
};

/// Builds the unstuffed stuffable region (including the real CRC-15).
[[nodiscard]] FrameBits frame_stuffable_bits(const CanFrame& f);

/// Number of stuff bits the 5-identical-bits rule inserts into `region`.
[[nodiscard]] int count_stuff_bits(std::span<const bool> region);

/// Exact number of bits this concrete frame occupies on the wire, from SOF
/// through the last EOF bit (intermission NOT included).
[[nodiscard]] int frame_wire_bits(const CanFrame& f);

/// Exact wire duration of this frame at the given bus config (intermission
/// NOT included).
[[nodiscard]] Duration frame_duration(const CanFrame& f, const BusConfig& cfg);

/// 1-based index of the first stuffable-region bit at which the two frames'
/// serialized streams differ (two nodes driving the bus with these frames
/// simultaneously corrupt each other at this bit). Returns 0 when the
/// regions are bit-identical — the transmissions superimpose cleanly.
[[nodiscard]] int frame_first_difference_bit(const CanFrame& a,
                                             const CanFrame& b);

/// Worst-case wire bits for a frame with `dlc` data bytes, assuming maximal
/// bit stuffing: g + 8*dlc + 10 + floor((g + 8*dlc - 1) / 4), where g = 34
/// for base format and g = 54 for extended format, plus CRC delimiter, ACK
/// and EOF. (Equivalently the classic schedulability-analysis bound.)
[[nodiscard]] int worst_case_wire_bits(int dlc, bool extended);

/// Worst-case wire duration (intermission NOT included).
[[nodiscard]] Duration worst_case_frame_duration(int dlc, bool extended,
                                                 const BusConfig& cfg);

}  // namespace rtec
