#pragma once

#include <cstdint>

#include "util/time_types.hpp"

/// \file can_types.hpp
/// Shared basic types for the CAN simulator.

namespace rtec {

/// Node identity on the bus. The middleware maps this into the 7-bit TxNode
/// field of the 29-bit identifier, so valid values are 0..127.
using NodeId = std::uint8_t;

inline constexpr NodeId kMaxNodeId = 127;

/// Static bus parameters.
struct BusConfig {
  /// Nominal bit rate in bits per second. CAN 2.0 tops out at 1 Mbit/s,
  /// the rate the paper assumes (154 us longest frame).
  std::int64_t bitrate_bps = 1'000'000;

  [[nodiscard]] constexpr Duration bit_time() const {
    return Duration::nanoseconds(1'000'000'000 / bitrate_bps);
  }
};

/// CAN interframe space (intermission) in bit times (ISO 11898 / Bosch 2.0).
inline constexpr int kIntermissionBits = 3;

/// Active error frame: 6-bit error flag + up to 6 echoed flag bits from
/// other nodes + 8-bit error delimiter. We charge the worst case (20 bits)
/// to the bus whenever a transmission is corrupted.
inline constexpr int kErrorFrameBits = 20;

}  // namespace rtec
