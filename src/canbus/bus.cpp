#include "canbus/bus.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace rtec {

CanBus::CanBus(Simulator& sim, BusConfig cfg) : sim_{sim}, cfg_{cfg} {}

void CanBus::attach(CanController& c) {
  assert(c.bus_ == nullptr && "controller already attached to a bus");
  // Identifier uniqueness across nodes is a CAN requirement; the middleware
  // guarantees it via the TxNode field. The simulator enforces distinct
  // node ids here.
  for ([[maybe_unused]] const CanController* existing : controllers_)
    assert(existing->node() != c.node() && "duplicate node id on bus");
  c.bus_ = this;
  controllers_.push_back(&c);
}

void CanBus::set_profiler(SpanProfiler* p, const std::string& prefix) {
  span_ok_ = p != nullptr ? p->slot(prefix + ".occupancy_ok") : nullptr;
  span_error_ = p != nullptr ? p->slot(prefix + ".occupancy_error") : nullptr;
}

double CanBus::utilization() const {
  const Duration elapsed = sim_.now() - TimePoint::origin();
  if (elapsed <= Duration::zero()) return 0.0;
  return static_cast<double>(busy_time_.ns()) / static_cast<double>(elapsed.ns());
}

void CanBus::notify_tx_request() {
  if (state_ != State::kIdle) return;  // picked up at the next idle point
  schedule_arbitration();
}

void CanBus::schedule_arbitration() {
  if (arbitration_scheduled_) return;
  arbitration_scheduled_ = true;
  // Zero-delay event: all submissions that happen at the same simulated
  // nanosecond participate in the same arbitration (they all "see" the SOF).
  sim_.schedule_after(Duration::zero(), [this] {
    arbitration_scheduled_ = false;
    if (state_ == State::kIdle) arbitrate();
  });
}

void CanBus::arbitrate() {
  assert(state_ == State::kIdle);

  // Winner = globally lowest identifier; among several nodes offering the
  // SAME identifier (a spoofing attacker meeting its victim — see the
  // header), the lowest NodeId is the deterministic primary transmitter
  // and the next-lowest the superimposed rival.
  CanController* winner = nullptr;
  CanController::MailboxId winner_mb = 0;
  std::uint32_t winner_id = 0;
  CanController* rival = nullptr;
  CanController::MailboxId rival_mb = 0;
  for (CanController* c : controllers_) {
    const auto mb = c->arbitration_candidate();
    if (!mb) continue;
    const std::uint32_t id = c->mailbox_frame(*mb).id;
    if (winner == nullptr || id < winner_id) {
      winner = c;
      winner_mb = *mb;
      winner_id = id;
      rival = nullptr;
    } else if (id == winner_id) {
      if (c->node() < winner->node()) {
        if (rival == nullptr || winner->node() < rival->node()) {
          rival = winner;
          rival_mb = winner_mb;
        }
        winner = c;
        winner_mb = *mb;
      } else if (rival == nullptr || c->node() < rival->node()) {
        rival = c;
        rival_mb = *mb;
      }
    }
  }
  if (winner == nullptr) return;  // bus stays idle

  state_ = State::kTransmitting;
  winner->on_tx_started(winner_mb);
  const CanFrame frame = winner->mailbox_frame(winner_mb);
  const int attempt = winner->mailbox_attempts(winner_mb);
  const TimePoint start = sim_.now();
  // Cached on the mailbox: retransmission-heavy fault sweeps would otherwise
  // re-serialize and re-CRC the identical frame on every attempt.
  const int frame_bits = winner->mailbox_wire_bits(winner_mb);

  bool success = true;
  int occupied_bits = frame_bits;
  if (rival != nullptr) {
    rival->on_tx_started(rival_mb);
    const int diff_bit =
        frame_first_difference_bit(frame, rival->mailbox_frame(rival_mb));
    if (diff_bit > 0) {
      // One of the two reads back the complement of what it drove at the
      // first differing bit and signals an error there. Bit positions in
      // the unstuffed region approximate the stuffed wire position at
      // frame-level fidelity; the result is deterministic either way.
      success = false;
      occupied_bits = std::min(diff_bit, frame_bits) + kErrorFrameBits;
    }
    // Bit-identical frames superimpose cleanly: one frame on the wire,
    // both senders see the ACK (the normal fault path below still applies).
  }
  if (success && faults_ != nullptr) {
    const FaultContext ctx{frame, winner->node(), start, attempt};
    if (const auto pos = faults_->corrupt(ctx)) {
      success = false;
      const double frac = std::clamp(*pos, 0.0, 1.0);
      const int error_at =
          std::max(1, static_cast<int>(std::ceil(frac * frame_bits)));
      occupied_bits = error_at + kErrorFrameBits;
    }
  }

  const Duration occupied = cfg_.bit_time() * occupied_bits;
  sim_.schedule_after(occupied, [this, winner, winner_mb, frame, start, success,
                                 occupied_bits, attempt, rival, rival_mb] {
    finish_transmission(winner, winner_mb, frame, start, success, occupied_bits,
                        attempt, rival, rival_mb);
  });
}

void CanBus::finish_transmission(CanController* sender,
                                 CanController::MailboxId mb, CanFrame frame,
                                 TimePoint start, bool success, int wire_bits,
                                 int attempt, CanController* rival,
                                 CanController::MailboxId rival_mb) {
  assert(state_ == State::kTransmitting);
  const TimePoint end = sim_.now();
  const Duration occupied = end - start;
  busy_time_ += occupied;
  if (success) {
    ++frames_ok_;
    if (span_ok_ != nullptr) span_ok_->record(occupied.ns());
  } else {
    ++frames_error_;
    error_time_ += occupied;
    if (span_error_ != nullptr) span_error_->record(occupied.ns());
  }

  // Transmitters learn the attempt outcome first (their ACK/error
  // observation), then receivers get the frame (or the error) at
  // end-of-frame time, then observers.
  sender->on_tx_completed(mb, success, end);
  if (rival != nullptr) rival->on_tx_completed(rival_mb, success, end);
  for (CanController* c : controllers_) {
    if (c == sender || c == rival) continue;
    if (success) {
      c->on_rx(frame, end);
    } else {
      c->on_rx_error();
    }
  }
  const FrameEvent ev{sender->node(), frame,   start,
                      end,            success, wire_bits,
                      attempt,        rival != nullptr};
  for (const Observer& o : observers_) o(ev);

  state_ = State::kIntermission;
  sim_.schedule_after(cfg_.bit_time() * kIntermissionBits,
                      [this] { end_intermission(); });
}

void CanBus::end_intermission() {
  assert(state_ == State::kIntermission);
  state_ = State::kIdle;
  schedule_arbitration();
}

}  // namespace rtec
