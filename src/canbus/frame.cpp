#include "canbus/frame.hpp"

#include <cassert>

#include "util/crc15.hpp"

namespace rtec {

namespace {

void append_bit(FrameBits& fb, bool bit) {
  assert(fb.count < static_cast<int>(fb.bits.size()));
  fb.bits[static_cast<std::size_t>(fb.count++)] = bit;
}

void append_field(FrameBits& fb, std::uint32_t value, int width) {
  for (int i = width - 1; i >= 0; --i) append_bit(fb, ((value >> i) & 1u) != 0);
}

}  // namespace

FrameBits frame_stuffable_bits(const CanFrame& f) {
  assert(f.dlc <= 8);
  FrameBits fb;
  append_bit(fb, false);  // SOF (dominant)
  if (f.extended) {
    assert(f.id <= kMaxExtendedId);
    append_field(fb, f.id >> 18, 11);  // ID-28..18
    append_bit(fb, true);              // SRR (recessive)
    append_bit(fb, true);              // IDE = 1 (extended)
    append_field(fb, f.id & 0x3ffff, 18);  // ID-17..0
    append_bit(fb, f.rtr);
    append_bit(fb, false);  // r1
    append_bit(fb, false);  // r0
  } else {
    assert(f.id <= kMaxBaseId);
    append_field(fb, f.id, 11);
    append_bit(fb, f.rtr);
    append_bit(fb, false);  // IDE = 0 (base)
    append_bit(fb, false);  // r0
  }
  append_field(fb, f.dlc, 4);
  const int data_bytes = f.rtr ? 0 : f.dlc;
  for (int i = 0; i < data_bytes; ++i)
    append_field(fb, f.data[static_cast<std::size_t>(i)], 8);

  const std::uint16_t crc =
      crc15({fb.bits.data(), static_cast<std::size_t>(fb.count)});
  append_field(fb, crc, 15);
  return fb;
}

int count_stuff_bits(std::span<const bool> region) {
  // Simulate the transmitter: after five consecutive identical bits a
  // complement bit is inserted; the inserted bit participates in subsequent
  // run counting.
  int stuffed = 0;
  int run = 0;
  bool run_bit = false;
  for (bool b : region) {
    if (run == 0 || b == run_bit) {
      run_bit = (run == 0) ? b : run_bit;
      ++run;
    } else {
      run_bit = b;
      run = 1;
    }
    if (run == 5) {
      ++stuffed;
      // The stuff bit is the complement and starts a new run of length 1.
      run_bit = !run_bit;
      run = 1;
    }
  }
  return stuffed;
}

int frame_wire_bits(const CanFrame& f) {
  const FrameBits fb = frame_stuffable_bits(f);
  const int stuff =
      count_stuff_bits({fb.bits.data(), static_cast<std::size_t>(fb.count)});
  return fb.count + stuff + kFrameTailBits;
}

Duration frame_duration(const CanFrame& f, const BusConfig& cfg) {
  return cfg.bit_time() * frame_wire_bits(f);
}

int frame_first_difference_bit(const CanFrame& a, const CanFrame& b) {
  const FrameBits fa = frame_stuffable_bits(a);
  const FrameBits fb = frame_stuffable_bits(b);
  const int common = fa.count < fb.count ? fa.count : fb.count;
  for (int i = 0; i < common; ++i) {
    if (fa.bits[static_cast<std::size_t>(i)] !=
        fb.bits[static_cast<std::size_t>(i)])
      return i + 1;
  }
  if (fa.count != fb.count) return common + 1;
  return 0;
}

int worst_case_wire_bits(int dlc, bool extended) {
  assert(dlc >= 0 && dlc <= 8);
  const int g = extended ? 54 : 34;  // stuffable control + CRC bits
  const int stuffable = g + 8 * dlc;
  const int max_stuff = (stuffable - 1) / 4;
  return stuffable + max_stuff + kFrameTailBits;
}

Duration worst_case_frame_duration(int dlc, bool extended, const BusConfig& cfg) {
  return cfg.bit_time() * worst_case_wire_bits(dlc, extended);
}

}  // namespace rtec
